// Benchmarks that regenerate every table and figure of the paper's
// empirical study (§3) and evaluation (§6). Each benchmark executes the
// corresponding experiment harness end to end; run with
//
//	go test -bench=. -benchmem
//
// The -v output of cmd/experiments prints the actual rows/series; these
// benchmarks measure the cost of regenerating them and double as smoke tests
// that every experiment stays runnable.
package relm_test

import (
	"math"
	"testing"

	"relm"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := relm.ExperimentConfig{Seed: 1, Quick: true}
	for i := 0; i < b.N; i++ {
		res, err := relm.RunExperiment(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.String() == "" {
			b.Fatalf("%s rendered empty", id)
		}
	}
}

// --- §3 empirical study -------------------------------------------------

func BenchmarkTable4_Defaults(b *testing.B)              { benchExperiment(b, "table4") }
func BenchmarkFigure4_ContainersPerNode(b *testing.B)    { benchExperiment(b, "figure4") }
func BenchmarkFigure5_Failures(b *testing.B)             { benchExperiment(b, "figure5") }
func BenchmarkFigure6_TaskConcurrency(b *testing.B)      { benchExperiment(b, "figure6") }
func BenchmarkFigure7_CacheShuffleCapacity(b *testing.B) { benchExperiment(b, "figure7") }
func BenchmarkFigure8_NewRatioCache(b *testing.B)        { benchExperiment(b, "figure8") }
func BenchmarkFigure9_NewRatioGC(b *testing.B)           { benchExperiment(b, "figure9") }
func BenchmarkFigure10_NewRatioShuffle(b *testing.B)     { benchExperiment(b, "figure10") }
func BenchmarkFigure11_RSSTimeline(b *testing.B)         { benchExperiment(b, "figure11") }
func BenchmarkTable5_ManualPageRank(b *testing.B)        { benchExperiment(b, "table5") }

// --- §4 RelM ---------------------------------------------------------------

func BenchmarkTable6_Statistics(b *testing.B)        { benchExperiment(b, "table6") }
func BenchmarkFigure13_ArbitratorTrace(b *testing.B) { benchExperiment(b, "figure13") }

// --- §6 evaluation ----------------------------------------------------------

func BenchmarkTable7_LHSSamples(b *testing.B)              { benchExperiment(b, "table7") }
func BenchmarkFigure16_TrainingOverheads(b *testing.B)     { benchExperiment(b, "figure16") }
func BenchmarkFigure17_RecommendationQuality(b *testing.B) { benchExperiment(b, "figure17") }
func BenchmarkTable8_Recommendations(b *testing.B)         { benchExperiment(b, "table8") }
func BenchmarkTable9_BORunLog(b *testing.B)                { benchExperiment(b, "table9") }
func BenchmarkTable10_AlgorithmOverheads(b *testing.B)     { benchExperiment(b, "table10") }
func BenchmarkFigure18_KMeansBoxes(b *testing.B)           { benchExperiment(b, "figure18") }
func BenchmarkFigure19_SVMBoxes(b *testing.B)              { benchExperiment(b, "figure19") }
func BenchmarkFigure20_Convergence(b *testing.B)           { benchExperiment(b, "figure20") }
func BenchmarkFigure21_TPCH(b *testing.B)                  { benchExperiment(b, "figure21") }
func BenchmarkFigure22_ProfileSensitivity(b *testing.B)    { benchExperiment(b, "figure22") }
func BenchmarkFigure23_EstimateVariance(b *testing.B)      { benchExperiment(b, "figure23") }
func BenchmarkFigure24_UtilityRanking(b *testing.B)        { benchExperiment(b, "figure24") }
func BenchmarkFigure25_SurrogateAccuracy(b *testing.B)     { benchExperiment(b, "figure25") }
func BenchmarkFigure26_SurrogateChoice(b *testing.B)       { benchExperiment(b, "figure26") }
func BenchmarkFigure27_DDPGGenerality(b *testing.B)        { benchExperiment(b, "figure27") }

// --- ablations (DESIGN.md §3: design-choice studies) -------------------------

func BenchmarkAblationGBOComponents(b *testing.B) { benchExperiment(b, "ablation-gbo") }
func BenchmarkAblationRelMDelta(b *testing.B)     { benchExperiment(b, "ablation-relm-delta") }
func BenchmarkAblationModelReuse(b *testing.B)    { benchExperiment(b, "ablation-reuse") }

// --- component micro-benchmarks ---------------------------------------------

// BenchmarkSimulateRun measures one full simulated application run — the
// unit of stress-testing cost every tuning policy pays per experiment.
func BenchmarkSimulateRun(b *testing.B) {
	cl := relm.ClusterA()
	wl, err := relm.WorkloadByName("K-means")
	if err != nil {
		b.Fatal(err)
	}
	cfg := relm.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := relm.Simulate(cl, wl, cfg, uint64(i))
		if res.RuntimeSec <= 0 {
			b.Fatal("bad run")
		}
	}
}

// BenchmarkStatsGeneration measures the §4.1 statistics derivation — the
// "Statistics Collection" row of Table 10.
func BenchmarkStatsGeneration(b *testing.B) {
	cl := relm.ClusterA()
	wl, _ := relm.WorkloadByName("PageRank")
	_, prof := relm.Simulate(cl, wl, relm.DefaultConfig(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relm.GenerateStats(prof)
	}
}

// BenchmarkRelMRecommend measures the full Enumerator+Initializer+Arbitrator
// pipeline — the "Model Fitting"+"Model Probing" rows for RelM in Table 10.
func BenchmarkRelMRecommend(b *testing.B) {
	cl := relm.ClusterA()
	wl, _ := relm.WorkloadByName("PageRank")
	_, prof := relm.Simulate(cl, wl, relm.DefaultConfig(), 1)
	st := relm.GenerateStats(prof)
	tuner := relm.NewRelM(cl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tuner.Recommend(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBOIteration measures one full Bayesian-optimization run on SVM
// (bootstrap + adaptive samples + surrogate fits + acquisition search).
func BenchmarkBOIteration(b *testing.B) {
	cl := relm.ClusterA()
	wl, _ := relm.WorkloadByName("SVM")
	for i := 0; i < b.N; i++ {
		ev := relm.NewEvaluator(cl, wl, uint64(i))
		res := relm.RunBO(ev, relm.BOOptions{Seed: uint64(i), MaxIterations: 4, MinNewSamples: 2})
		if !res.Found {
			b.Fatal("BO found nothing")
		}
	}
}

// BenchmarkDDPGStep measures the RL loop (simulation + state featurization +
// minibatch updates) per tuning step.
func BenchmarkDDPGStep(b *testing.B) {
	cl := relm.ClusterA()
	wl, _ := relm.WorkloadByName("SVM")
	for i := 0; i < b.N; i++ {
		ev := relm.NewEvaluator(cl, wl, uint64(i))
		res := relm.RunDDPG(ev, nil, relm.DDPGOptions{MaxSteps: 2, Seed: uint64(i)})
		if !res.Found {
			b.Fatal("DDPG found nothing")
		}
	}
}

// BenchmarkServiceSuggestObserve measures one suggest+observe round trip
// through the tuning service's session manager (lookup, locking, objective
// bookkeeping, surrogate update) — the per-request cost baseline for the
// HTTP API, excluding network and JSON. Sessions are recycled every 16
// observations so the surrogate-fit cost stays representative of a live
// session rather than growing cubically with history length.
func BenchmarkServiceSuggestObserve(b *testing.B) {
	m := relm.NewServiceManager(relm.ServiceOptions{Workers: 1})
	defer m.Close()

	var id string
	newSession := func() {
		st, err := m.Create(relm.SessionSpec{Backend: "bo", Workload: "SVM", Seed: 1, MaxIterations: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		id = st.ID
	}
	newSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, done, err := m.Suggest(id)
		if err != nil {
			b.Fatal(err)
		}
		if done {
			_ = m.CloseSession(id)
			newSession()
			continue
		}
		rt := 100 + 10*math.Sin(float64(i))
		if _, err := m.Observe(id, relm.SessionObservation{Config: cfg, RuntimeSec: rt}); err != nil {
			b.Fatal(err)
		}
		if (i+1)%16 == 0 {
			_ = m.CloseSession(id)
			newSession()
		}
	}
}

// BenchmarkServiceSuggestObserveBare is the same round trip with
// observability disabled (no stage histograms, no timestamps on the hot
// path) — the uninstrumented reference CI holds the instrumented
// benchmark above to within 5% of.
func BenchmarkServiceSuggestObserveBare(b *testing.B) {
	m := relm.NewServiceManager(relm.ServiceOptions{Workers: 1, NoObs: true})
	defer m.Close()

	var id string
	newSession := func() {
		st, err := m.Create(relm.SessionSpec{Backend: "bo", Workload: "SVM", Seed: 1, MaxIterations: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		id = st.ID
	}
	newSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, done, err := m.Suggest(id)
		if err != nil {
			b.Fatal(err)
		}
		if done {
			_ = m.CloseSession(id)
			newSession()
			continue
		}
		rt := 100 + 10*math.Sin(float64(i))
		if _, err := m.Observe(id, relm.SessionObservation{Config: cfg, RuntimeSec: rt}); err != nil {
			b.Fatal(err)
		}
		if (i+1)%16 == 0 {
			_ = m.CloseSession(id)
			newSession()
		}
	}
}

// BenchmarkExhaustiveGrid measures the full 144-point grid search the paper
// uses as its quality baseline.
func BenchmarkExhaustiveGrid(b *testing.B) {
	cl := relm.ClusterA()
	wl, _ := relm.WorkloadByName("WordCount")
	for i := 0; i < b.N; i++ {
		ev := relm.NewEvaluator(cl, wl, uint64(i))
		if best, _ := relm.ExhaustiveSearch(ev); best.RuntimeSec <= 0 {
			b.Fatal("no best")
		}
	}
}
