// Command benchgate turns `go test -bench` output into a machine-readable
// result file and gates it against a checked-in baseline — the CI bench
// job's comparison step.
//
// It parses the benchmark lines of one or more `go test -bench -count N`
// runs, aggregates each benchmark's ns/op across its repetitions with the
// median (benchstat's robust center), and writes the result as JSON. Given
// a baseline file (a previous result), it fails — exit status 1 — when any
// benchmark's median ns/op regressed by more than the threshold, or when a
// baseline benchmark disappeared from the run. Because absolute wall-clock
// medians do not transfer across hardware, the absolute gate downgrades to
// warnings when the baseline's recorded CPU differs from the run's;
// repeatable -ratio gates (invariants between two benchmarks of the same
// run, e.g. "group commit beats per-record fsync 3x") are enforced on any
// hardware. Allocation counts transfer across hardware too, so allocs/op
// is gated everywhere it is known: repeatable -allocs gates cap a
// benchmark's absolute allocs/op median, and any baseline benchmark that
// recorded allocs/op is compared at the same fractional threshold as
// ns/op, with no cross-CPU downgrade. Every gate is evaluated before the
// exit status is decided and
// the verdicts are rendered as one per-family summary table, so a single
// run reports the whole regression picture instead of aborting at the
// first failure.
//
// The baseline is refreshed by copying a trusted run's result file over
// it (e.g. after landing an intentional perf change or moving CI to new
// hardware):
//
//	go test -run '^$' -bench 'StoreAppend|StoreReplay|ServiceSuggestObserve' \
//	    -benchmem -count 6 ./internal/store ./internal/service . | \
//	    go run ./cmd/benchgate -out BENCH_baseline.json
//
// Usage:
//
//	benchgate [-input bench.txt] [-out result.json]
//	          [-baseline BENCH_baseline.json] [-threshold 0.35]
//	          [-ratio 'NUM|DEN|MAX'] [-allocs 'NAME|MAX']
//	          [-note "free-form context recorded in the result"]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Result is the file benchgate writes and compares.
type Result struct {
	Note string `json:"note,omitempty"`
	// CPU is the `cpu:` line of the bench output. Absolute ns/op gates
	// only apply when the baseline's CPU matches the current run's —
	// wall-clock medians do not transfer across hardware — otherwise they
	// downgrade to warnings and only ratio gates (-ratio) are enforced.
	CPU        string               `json:"cpu,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// Benchmark aggregates one benchmark's repetitions.
type Benchmark struct {
	Runs        int       `json:"runs"`
	NsPerOp     float64   `json:"ns_per_op"` // median across runs
	NsPerOpAll  []float64 `json:"ns_per_op_all,omitempty"`
	BPerOp      float64   `json:"b_per_op,omitempty"`      // median, with -benchmem
	AllocsPerOp float64   `json:"allocs_per_op,omitempty"` // median, with -benchmem
	// MemRuns counts the repetitions that carried -benchmem columns; it
	// distinguishes a genuine 0 allocs/op from "not measured".
	MemRuns int `json:"mem_runs,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkStoreAppendParallel/fsync=on/goroutines=64-8  49050  7209 ns/op  1613 B/op  3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

func main() {
	var (
		input     = flag.String("input", "", "bench output file (default stdin)")
		out       = flag.String("out", "", "write the aggregated result JSON here")
		baseline  = flag.String("baseline", "", "baseline result JSON to gate against")
		threshold = flag.Float64("threshold", 0.35, "allowed fractional ns/op regression vs the baseline (0.35 = +35%)")
		note      = flag.String("note", "", "free-form context recorded in the result file")
	)
	var ratios []ratioGate
	flag.Func("ratio", "hardware-independent gate 'NUM|DEN|MAX': fail unless ns/op(NUM)/ns/op(DEN) <= MAX; repeatable", func(v string) error {
		g, err := parseRatioGate(v)
		if err != nil {
			return err
		}
		ratios = append(ratios, g)
		return nil
	})
	var allocGates []allocsGate
	flag.Func("allocs", "hardware-independent gate 'NAME|MAX': fail unless allocs/op(NAME) <= MAX (requires -benchmem output); repeatable", func(v string) error {
		g, err := parseAllocsGate(v)
		if err != nil {
			return err
		}
		allocGates = append(allocGates, g)
		return nil
	})
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatalf("open input: %v", err)
		}
		defer f.Close()
		r = f
	}
	res, err := parse(r, *note)
	if err != nil {
		fatalf("parse bench output: %v", err)
	}
	if len(res.Benchmarks) == 0 {
		fatalf("no benchmark lines found in the input")
	}

	if *out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatalf("encode result: %v", err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatalf("write result: %v", err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(res.Benchmarks), *out)
	}

	// Evaluate every gate — ratio invariants and per-family absolute
	// comparisons — then render one summary table and exit once, so a
	// single run reports the full regression picture instead of aborting
	// at the first failure.
	var rows []gateRow
	for _, g := range ratios {
		rows = append(rows, g.row(res))
	}
	for _, g := range allocGates {
		rows = append(rows, g.row(res))
	}
	if *baseline != "" {
		base, err := readResult(*baseline)
		if err != nil {
			fatalf("read baseline: %v", err)
		}
		cpuMismatch := base.CPU != "" && base.CPU != res.CPU
		if cpuMismatch {
			// The baseline was recorded on different hardware: absolute
			// ns/op medians do not transfer, so absolute failures
			// downgrade to warnings. Refresh the baseline from a run on
			// this runner class to re-arm the gate; ratio gates (between
			// benchmarks of the same run) stay enforced regardless.
			fmt.Fprintf(os.Stderr, "benchgate: baseline CPU %q != current %q; absolute comparisons are warnings only\n", base.CPU, res.CPU)
		}
		rows = append(rows, compare(base, res, *threshold, cpuMismatch)...)
	}
	printTable(rows)
	failed := 0
	for _, row := range rows {
		if row.status == statusFail {
			failed++
		}
	}
	if failed > 0 {
		fatalf("%d of %d gates failed", failed, len(rows))
	}
	if len(rows) > 0 {
		fmt.Printf("benchgate: all %d gates passed\n", len(rows))
	}
}

// Gate outcomes.
const (
	statusOK   = "ok"
	statusFail = "FAIL"
	statusWarn = "warn" // absolute regression on mismatched hardware
)

// gateRow is one line of the summary table: one benchmark family under one
// gate.
type gateRow struct {
	family string
	gate   string // "ratio" or "absolute"
	status string
	detail string
}

// printTable renders the per-family gate summary.
func printTable(rows []gateRow) {
	if len(rows) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].gate != rows[j].gate {
			return rows[i].gate < rows[j].gate
		}
		return rows[i].family < rows[j].family
	})
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "STATUS\tGATE\tFAMILY\tDETAIL")
	for _, row := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", row.status, row.gate, row.family, row.detail)
	}
	w.Flush()
}

// ratioGate is one hardware-independent invariant between two benchmarks
// of the same run (e.g. group commit must beat per-record fsync 3x).
type ratioGate struct {
	num, den string
	max      float64
}

func parseRatioGate(v string) (ratioGate, error) {
	parts := strings.Split(v, "|")
	if len(parts) != 3 {
		return ratioGate{}, fmt.Errorf("ratio gate %q: want 'NUM|DEN|MAX'", v)
	}
	max, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || max <= 0 {
		return ratioGate{}, fmt.Errorf("ratio gate %q: bad MAX", v)
	}
	return ratioGate{num: parts[0], den: parts[1], max: max}, nil
}

// allocsGate caps one benchmark's absolute allocs/op median. Allocation
// counts are a property of the code, not the hardware, so the gate is
// enforced unconditionally.
type allocsGate struct {
	name string
	max  float64
}

func parseAllocsGate(v string) (allocsGate, error) {
	parts := strings.Split(v, "|")
	if len(parts) != 2 {
		return allocsGate{}, fmt.Errorf("allocs gate %q: want 'NAME|MAX'", v)
	}
	max, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || max < 0 {
		return allocsGate{}, fmt.Errorf("allocs gate %q: bad MAX", v)
	}
	return allocsGate{name: parts[0], max: max}, nil
}

// row evaluates the gate against one run.
func (g allocsGate) row(res *Result) gateRow {
	row := gateRow{family: g.name, gate: "allocs"}
	b, ok := res.Benchmarks[g.name]
	switch {
	case !ok:
		row.status = statusFail
		row.detail = "benchmark missing from this run"
	case b.MemRuns == 0:
		row.status = statusFail
		row.detail = "no allocs/op recorded (run with -benchmem)"
	default:
		row.status = statusOK
		if b.AllocsPerOp > g.max {
			row.status = statusFail
		}
		row.detail = fmt.Sprintf("%.0f allocs/op (limit %.0f)", b.AllocsPerOp, g.max)
	}
	return row
}

// row evaluates the gate against one run.
func (g ratioGate) row(res *Result) gateRow {
	row := gateRow{family: g.num, gate: "ratio"}
	num, ok1 := res.Benchmarks[g.num]
	den, ok2 := res.Benchmarks[g.den]
	switch {
	case !ok1 || !ok2:
		row.status = statusFail
		row.detail = fmt.Sprintf("vs %s: benchmark missing from this run", g.den)
	case den.NsPerOp <= 0:
		row.status = statusFail
		row.detail = fmt.Sprintf("%s: zero ns/op denominator", g.den)
	default:
		ratio := num.NsPerOp / den.NsPerOp
		row.status = statusOK
		if ratio > g.max {
			row.status = statusFail
		}
		row.detail = fmt.Sprintf("/ %s = %.3f (limit %.3f)", g.den, ratio, g.max)
	}
	return row
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}

// parse aggregates every benchmark line of a `go test -bench` run.
func parse(r io.Reader, note string) (*Result, error) {
	ns := make(map[string][]float64)
	bs := make(map[string][]float64)
	allocs := make(map[string][]float64)
	var cpu string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		if c, ok := strings.CutPrefix(sc.Text(), "cpu: "); ok {
			cpu = strings.TrimSpace(c)
			continue
		}
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		ns[name] = append(ns[name], v)
		if m[3] != "" {
			if v, err := strconv.ParseFloat(m[3], 64); err == nil {
				bs[name] = append(bs[name], v)
			}
		}
		if m[4] != "" {
			if v, err := strconv.ParseFloat(m[4], 64); err == nil {
				allocs[name] = append(allocs[name], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	res := &Result{Note: note, CPU: cpu, Benchmarks: make(map[string]Benchmark, len(ns))}
	for name, runs := range ns {
		res.Benchmarks[name] = Benchmark{
			Runs:        len(runs),
			NsPerOp:     median(runs),
			NsPerOpAll:  runs,
			BPerOp:      median(bs[name]),
			AllocsPerOp: median(allocs[name]),
			MemRuns:     len(allocs[name]),
		}
	}
	return res, nil
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func readResult(path string) (*Result, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := json.Unmarshal(buf, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// compare produces one summary row per baseline benchmark: within the
// threshold, regressed past it, or missing from the run. A ns/op
// regression on mismatched hardware downgrades to a warning (absolute
// medians do not transfer across CPUs); a missing benchmark fails
// regardless — deleting a family is a gate escape, not a hardware
// artifact. New benchmarks (in res but not base) pass freely — they gate
// once they enter the baseline. Baseline benchmarks that recorded
// allocation medians additionally gate allocs/op at the same fractional
// threshold, with no hardware downgrade: allocation counts are a property
// of the code.
func compare(base, res *Result, threshold float64, cpuMismatch bool) []gateRow {
	var names []string
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []gateRow
	for _, name := range names {
		b := base.Benchmarks[name]
		row := gateRow{family: name, gate: "absolute"}
		cur, ok := res.Benchmarks[name]
		switch {
		case !ok:
			row.status = statusFail
			row.detail = "present in baseline but missing from this run"
		case b.NsPerOp <= 0:
			row.status = statusOK
			row.detail = "baseline has no ns/op"
		default:
			ratio := cur.NsPerOp / b.NsPerOp
			row.status = statusOK
			row.detail = fmt.Sprintf("%.0f ns/op vs baseline %.0f ns/op (%.2fx, limit %.2fx)",
				cur.NsPerOp, b.NsPerOp, ratio, 1+threshold)
			if ratio > 1+threshold {
				row.status = statusFail
				if cpuMismatch {
					row.status = statusWarn
				}
			}
		}
		rows = append(rows, row)
		// MemRuns marks a baseline that measured allocations (including a
		// genuine 0 allocs/op); pre-MemRuns baselines only reveal it
		// through a nonzero median.
		if ok && (b.MemRuns > 0 || b.AllocsPerOp > 0) && cur.MemRuns > 0 {
			arow := gateRow{family: name, gate: "allocs", status: statusOK}
			if b.AllocsPerOp <= 0 {
				// A zero-alloc baseline admits no ratio: any allocation at
				// all is the regression.
				arow.detail = fmt.Sprintf("%.0f allocs/op vs zero-alloc baseline", cur.AllocsPerOp)
				if cur.AllocsPerOp > 0 {
					arow.status = statusFail
				}
			} else {
				ratio := cur.AllocsPerOp / b.AllocsPerOp
				arow.detail = fmt.Sprintf("%.0f allocs/op vs baseline %.0f (%.2fx, limit %.2fx)",
					cur.AllocsPerOp, b.AllocsPerOp, ratio, 1+threshold)
				if ratio > 1+threshold {
					arow.status = statusFail
				}
			}
			rows = append(rows, arow)
		}
	}
	return rows
}
