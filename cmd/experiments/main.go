// Command experiments regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	experiments -list
//	experiments -id figure4 [-seed 1] [-reps 5]
//	experiments -all
package main

import (
	"flag"
	"fmt"
	"os"

	"relm/internal/experiments"
)

func main() {
	var (
		id    = flag.String("id", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every registered experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		seed  = flag.Uint64("seed", 1, "random seed")
		reps  = flag.Int("reps", 0, "repetitions (0 = per-experiment default)")
		quick = flag.Bool("quick", false, "reduced budgets for a fast pass")
		chart = flag.Bool("chart", false, "also render ASCII charts where available")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Reps: *reps, Quick: *quick}
	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Printf("%-20s %s\n", id, experiments.Describe(id))
		}
	case *all:
		for _, id := range experiments.IDs() {
			run(id, cfg, *chart)
		}
	case *id != "":
		run(*id, cfg, *chart)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// charter is implemented by results that can render an ASCII figure.
type charter interface{ Chart() string }

func run(id string, cfg experiments.Config, chart bool) {
	res, err := experiments.Run(id, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(res)
	if c, ok := res.(charter); ok && chart {
		fmt.Println(c.Chart())
	}
}
