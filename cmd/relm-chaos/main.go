// relm-chaos is the invariant checker a chaos run ends with: it takes the
// artifacts of a faulted soak — the loadgen ack log, the surviving WAL
// directories, the loadgen report, the fault-status snapshots, and the
// router's cluster view — and asserts the system's durability and
// determinism contracts held:
//
//  1. No acked write lost: every create/observe the service acknowledged
//     is recoverable from the union of the surviving WALs (closed
//     sessions excepted — their history is legitimately compacted away).
//  2. Bit-exact replay: replaying each WAL twice yields byte-identical
//     recovered state (service.ExtractHandoff is deterministic).
//  3. Every client-visible error was retriable: the loadgen error
//     breakdown contains only kinds in the -retriable set.
//  4. Fault accounting is consistent with the schedule: a rule whose
//     window was fully traversed fired exactly its planned count, and no
//     rule ever fired more than planned.
//  5. Promotions match expectation (-expect-promotions, -1 to skip).
//
// Any violation is printed, written to -out, and fails the process.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"relm/internal/fault"
	"relm/internal/loadgen"
	"relm/internal/service"
	"relm/internal/store"
)

func main() {
	var (
		ackLog      = flag.String("ack-log", "", "loadgen ack log (JSONL) to verify against the WALs")
		dataDirs    = flag.String("data-dirs", "", "comma-separated store directories of the (stopped) backends")
		reportPath  = flag.String("report", "", "loadgen report JSON (error-kind check)")
		retriable   = flag.String("retriable", "status_503,timeout,transport,status_429", "error kinds a chaos run may surface to clients")
		faultsPaths = flag.String("faults", "", "comma-separated saved GET /v1/faults JSON snapshots (accounting check)")
		clusterPath = flag.String("cluster", "", "saved GET /v1/cluster JSON (promotion check)")
		expectPromo = flag.Int("expect-promotions", -1, "exact promotions_total expected (-1 = skip)")
		out         = flag.String("out", "", "write the invariant report JSON here")
	)
	flag.Parse()

	rep := report{Checks: map[string]int{}}

	var union map[string]*sessionFacts
	if *dataDirs != "" {
		union = map[string]*sessionFacts{}
		for _, dir := range splitList(*dataDirs) {
			checkReplayDeterminism(&rep, dir)
			mergeWAL(&rep, union, dir)
		}
	}
	if *ackLog != "" {
		checkAcks(&rep, *ackLog, union)
	}
	if *reportPath != "" {
		checkErrorKinds(&rep, *reportPath, splitList(*retriable))
	}
	for _, p := range splitList(*faultsPaths) {
		checkFaultAccounting(&rep, p)
	}
	if *clusterPath != "" && *expectPromo >= 0 {
		checkPromotions(&rep, *clusterPath, *expectPromo)
	}

	rep.Violations = len(rep.Details)
	buf, _ := json.MarshalIndent(&rep, "", "  ")
	if *out != "" {
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatalf("write -out: %v", err)
		}
	}
	fmt.Println(string(buf))
	if rep.Violations > 0 {
		os.Exit(1)
	}
}

// report is the machine-readable verdict: which checks ran (with how many
// items each covered) and every violation found.
type report struct {
	Checks     map[string]int `json:"checks"`
	Violations int            `json:"violations"`
	Details    []string       `json:"details,omitempty"`
}

func (r *report) violate(format string, args ...any) {
	r.Details = append(r.Details, fmt.Sprintf(format, args...))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "relm-chaos: "+format+"\n", args...)
	os.Exit(2)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// sessionFacts is what the WAL union knows about one session.
type sessionFacts struct {
	created  bool
	closed   bool
	observes int // highest recovered observation count
}

// loadWAL opens one store directory exactly like a restarting node would
// (torn active-segment tails are truncated) and returns its snapshot and
// log suffix.
func loadWAL(dir string) (*store.Snapshot, []store.Event, error) {
	st, err := store.OpenFile(dir)
	if err != nil {
		return nil, nil, err
	}
	snap, events, err := st.Load()
	if cerr := st.Close(); err == nil {
		err = cerr
	}
	return snap, events, err
}

// mergeWAL folds one directory's recovered state into the union.
func mergeWAL(rep *report, union map[string]*sessionFacts, dir string) {
	snap, events, err := loadWAL(dir)
	if err != nil {
		rep.violate("wal %s: %v", dir, err)
		return
	}
	get := func(id string) *sessionFacts {
		f := union[id]
		if f == nil {
			f = &sessionFacts{}
			union[id] = f
		}
		return f
	}
	if snap != nil {
		for _, s := range snap.Sessions {
			f := get(s.ID)
			f.created = true
			f.observes = max(f.observes, len(s.History))
		}
		for _, id := range snap.Closed {
			f := get(id)
			f.created, f.closed = true, true
		}
		// Harvested sessions are terminal: their history was folded into
		// the repository and the session itself may be compacted away.
		for _, id := range snap.Harvested {
			f := get(id)
			f.created, f.closed = true, true
		}
	}
	for i := range events {
		ev := &events[i]
		switch ev.Type {
		case store.EventCreate:
			get(ev.ID).created = true
		case store.EventObserve:
			f := get(ev.ID)
			f.created = true
			f.observes = max(f.observes, ev.N+1)
		case store.EventClose:
			f := get(ev.ID)
			f.created, f.closed = true, true
		}
	}
	rep.Checks["wal_dirs"]++
}

// checkReplayDeterminism replays one WAL directory into recovered state
// twice and demands byte-identical results.
func checkReplayDeterminism(rep *report, dir string) {
	node := filepath.Base(dir)
	d1, err := handoffDigest(dir, node)
	if err != nil {
		rep.violate("replay %s: %v", dir, err)
		return
	}
	d2, err := handoffDigest(dir, node)
	if err != nil {
		rep.violate("replay %s (second pass): %v", dir, err)
		return
	}
	if d1 != d2 {
		rep.violate("replay %s: two replays of the same WAL diverged (%s vs %s)", dir, d1, d2)
	}
	rep.Checks["replays"]++
}

func handoffDigest(dir, node string) (string, error) {
	h, err := service.ExtractHandoff(dir, node)
	if err != nil {
		return "", err
	}
	buf, err := json.Marshal(h)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:8]), nil
}

// checkAcks verifies the durability ledger against the WAL union. Sessions
// whose close the client itself saw acked are exempt: once a session is
// closed, compaction may prune its tombstone (and harvest folds its history
// into the repository), so the WALs legitimately forget it.
func checkAcks(rep *report, path string, union map[string]*sessionFacts) {
	if union == nil {
		fatalf("-ack-log needs -data-dirs to verify against")
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		fatalf("read -ack-log: %v", err)
	}
	var acks []loadgen.Ack
	closedByAck := map[string]bool{}
	dec := json.NewDecoder(bytes.NewReader(buf))
	for {
		var a loadgen.Ack
		if err := dec.Decode(&a); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			rep.violate("ack log %s: %v", path, err)
			break
		}
		acks = append(acks, a)
		if a.Op == "close" {
			closedByAck[a.Session] = true
		}
	}
	for _, a := range acks {
		rep.Checks["acks"]++
		if closedByAck[a.Session] {
			rep.Checks["acks_closed_exempt"]++
			continue
		}
		facts := union[a.Session]
		switch {
		case facts == nil:
			rep.violate("acked %s of %s: session absent from every WAL", a.Op, a.Session)
		case a.Op == "observe" && !facts.closed && facts.observes < a.N:
			rep.violate("acked observe #%d of %s: WALs recover only %d observations", a.N, a.Session, facts.observes)
		}
	}
}

// checkErrorKinds demands every client-visible error kind be retriable.
func checkErrorKinds(rep *report, path string, retriable []string) {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatalf("read -report: %v", err)
	}
	var lr loadgen.Report
	if err := json.Unmarshal(buf, &lr); err != nil {
		fatalf("decode -report: %v", err)
	}
	ok := make(map[string]bool, len(retriable))
	for _, k := range retriable {
		ok[k] = true
	}
	for _, e := range lr.Errors {
		rep.Checks["error_kinds"]++
		if !ok[e.Kind] {
			rep.violate("non-retriable error surfaced to clients: stage=%s kind=%s count=%d sample=%q",
				e.Stage, e.Kind, e.Count, e.Sample)
		}
	}
}

// checkFaultAccounting verifies one node's fault-status snapshot: fired
// never exceeds planned, and a fully traversed window fired exactly its
// plan — the determinism contract (same seed, same fault sequence).
func checkFaultAccounting(rep *report, path string) {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatalf("read faults snapshot %s: %v", path, err)
	}
	var st fault.Status
	if err := json.Unmarshal(buf, &st); err != nil {
		fatalf("decode faults snapshot %s: %v", path, err)
	}
	for _, r := range st.Rules {
		rep.Checks["fault_rules"]++
		if r.Fired > uint64(r.Planned) {
			rep.violate("%s: rule %s fired %d times, planned only %d", path, r.Point, r.Fired, r.Planned)
		}
		if r.Hits >= uint64(r.After)+uint64(r.Window) && r.Fired != uint64(r.Planned) {
			rep.violate("%s: rule %s traversed its window (%d hits) but fired %d of %d planned",
				path, r.Point, r.Hits, r.Fired, r.Planned)
		}
	}
}

// checkPromotions compares the router's promotions_total to expectation.
func checkPromotions(rep *report, path string, want int) {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatalf("read -cluster: %v", err)
	}
	var cl struct {
		Promotions uint64 `json:"promotions_total"`
	}
	if err := json.Unmarshal(buf, &cl); err != nil {
		fatalf("decode -cluster: %v", err)
	}
	rep.Checks["promotions"]++
	if cl.Promotions != uint64(want) {
		rep.violate("promotions_total=%d, expected %d", cl.Promotions, want)
	}
}
