// Command relm-loadgen is the trace-driven load harness: it generates a
// reproducible session-lifecycle trace from a declarative scenario (or
// replays a previously captured trace file) against a relm-router or
// relm-serve target, and reports bucket-exact per-stage percentiles,
// sustained throughput, and an error breakdown.
//
// Typical runs:
//
//	# generate from a scenario and drive a router
//	relm-loadgen -scenario scripts/scenarios/smoke.json -target http://localhost:8080
//
//	# materialize the trace only (no target needed)
//	relm-loadgen -scenario scripts/scenarios/soak.json -trace soak.trace
//
//	# replay a captured trace byte-for-byte
//	relm-loadgen -replay soak.trace -target http://localhost:8080
//
// The report is written as JSON to -out (default LOAD_pr8.json) and
// printed as a human table on stdout. Exit status is non-zero when the
// run saw any unexpected error, so CI can gate on it directly.
// docs/LOADGEN.md documents the scenario schema and the trace format.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"relm/internal/loadgen"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "scenario JSON to generate the trace from")
		replayPath   = flag.String("replay", "", "replay an existing trace file instead of generating")
		tracePath    = flag.String("trace", "", "write the generated trace to this path")
		target       = flag.String("target", "", "base URL of the router or node under test")
		out          = flag.String("out", "LOAD_pr8.json", "report JSON output path")
		runID        = flag.String("run-id", "", "session-ID namespace for this run (default: random)")
		concurrency  = flag.Int("concurrency", 0, "override the scenario's worker-pool size")
		timeout      = flag.Duration("timeout", 0, "override the scenario's per-request deadline")
		quiet        = flag.Bool("quiet", false, "suppress progress logging")
		ackLog       = flag.String("ack-log", "", "write one JSON line per acknowledged create/observe/close to this file (chaos-run durability ledger)")
	)
	flag.Parse()
	log.SetFlags(0)

	if (*scenarioPath == "") == (*replayPath == "") {
		log.Fatal("relm-loadgen: need exactly one of -scenario or -replay")
	}

	var (
		tr  *loadgen.Trace
		sc  *loadgen.Scenario
		err error
	)
	switch {
	case *replayPath != "":
		tr, err = loadgen.ReadTraceFile(*replayPath)
		if err != nil {
			log.Fatalf("relm-loadgen: %v", err)
		}
	default:
		sc, err = loadgen.LoadScenario(*scenarioPath)
		if err != nil {
			log.Fatalf("relm-loadgen: %v", err)
		}
		tr, err = loadgen.Generate(sc)
		if err != nil {
			log.Fatalf("relm-loadgen: %v", err)
		}
	}

	if *tracePath != "" {
		if err := tr.WriteFile(*tracePath); err != nil {
			log.Fatalf("relm-loadgen: %v", err)
		}
		if !*quiet {
			log.Printf("relm-loadgen: wrote %d-session trace (%s of arrivals, %d ops) to %s",
				len(tr.Sessions), tr.Duration().Round(time.Millisecond), tr.Ops(), *tracePath)
		}
	}
	if *target == "" {
		if *tracePath == "" {
			log.Fatal("relm-loadgen: nothing to do — give -target to drive load, or -trace to write the trace")
		}
		return
	}

	opts := loadgen.Options{Target: *target, RunID: *runID, AckPath: *ackLog}
	if sc != nil {
		opts.Concurrency = sc.Concurrency
		opts.RequestTimeout = sc.RequestTimeout()
	}
	if *concurrency > 0 {
		opts.Concurrency = *concurrency
	}
	if *timeout > 0 {
		opts.RequestTimeout = *timeout
	}
	if !*quiet {
		opts.Logf = log.Printf
	}
	d, err := loadgen.NewDriver(opts)
	if err != nil {
		log.Fatalf("relm-loadgen: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if !*quiet {
		log.Printf("relm-loadgen: replaying %d sessions (%d ops over %s of arrivals) against %s",
			len(tr.Sessions), tr.Ops(), tr.Duration().Round(time.Millisecond), *target)
	}
	rep, runErr := d.Run(ctx, tr)
	if rep != nil {
		if err := rep.WriteFile(*out); err != nil {
			log.Fatalf("relm-loadgen: %v", err)
		}
		fmt.Print(rep.Table())
		if !*quiet {
			log.Printf("relm-loadgen: report written to %s", *out)
		}
	}
	if runErr != nil {
		log.Fatalf("relm-loadgen: run aborted: %v", runErr)
	}
	if rep.UnexpectedErrors() > 0 {
		log.Fatalf("relm-loadgen: %d unexpected errors", rep.UnexpectedErrors())
	}
}
