// Command relm-router is the stateless HTTP front door of a multi-node
// tuning cluster: it partitions sessions across relm-serve backends by
// rendezvous hashing on the session ID, proxies the whole /v1/sessions
// lifecycle to each session's home node, merges the cluster-wide read
// endpoints (/v1/sessions, /v1/metrics, /v1/repository), health-checks the
// backends with exponential backoff, and orchestrates node drain/hand-off.
//
// Because placement is a pure function of (session ID, healthy-node set),
// any number of router replicas can run side by side with no shared state.
//
// Usage:
//
//	relm-router -backends a=http://10.0.0.1:8080,b=http://10.0.0.2:8080 \
//	            [-addr :8090] [-check-interval 2s] [-check-backoff-max 30s] \
//	            [-fail-after 2] [-timeout 15s] [-retry-budget 2] \
//	            [-breaker-threshold 3] [-breaker-probe 1s] [-breaker-probe-max 30s] \
//	            [-promote] [-log-level info] [-slow-log 0] [-pprof-addr ""]
//
// Observability: the router times its own stages (placement pick, each
// proxy hop, fan-outs) into latency histograms exposed on GET /metrics
// (Prometheus text, router-local: backend gauges, breaker counters,
// stage latencies). It mints a trace ID per request, propagates it to
// the backends via X-Relm-Trace, and keeps its own span ring at GET
// /v1/traces; -slow-log logs slow requests span-by-span and -pprof-addr
// serves net/http/pprof on a side port.
//
// Each backend has a circuit breaker on the data path: after
// -breaker-threshold consecutive transport failures it stops receiving
// requests entirely, then admits a single probe after an exponentially
// growing delay (-breaker-probe up to -breaker-probe-max); a served
// request closes it. Routed requests spend at most -retry-budget retries
// on further candidates after a transport failure or a 503-draining
// answer.
//
// With -promote the router is also the fail-over controller: when a
// backend dies without draining (health-check death), the router locates
// the dead node's WAL replica on a surviving follower (the backends run
// with -replicate-to), promotes it, and re-creates every lost
// non-terminal session — original IDs, full replayed history — on the
// survivors.
//
// Cluster operations:
//
//	curl -s localhost:8090/v1/cluster                 # node table, breaker + promotion state
//	curl -s -X POST localhost:8090/v1/cluster/drain/a # drain node a, hand sessions to survivors
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relm/internal/fault"
	"relm/internal/obs"
	"relm/internal/router"
)

func main() {
	var (
		addr       = flag.String("addr", ":8090", "listen address")
		backends   = flag.String("backends", "", "comma-separated backends, each 'name=url' (name must match the node's -node-id)")
		checkIvl   = flag.Duration("check-interval", 2*time.Second, "healthy-backend poll period")
		backoffMax = flag.Duration("check-backoff-max", 30*time.Second, "failing-backend poll backoff cap")
		failAfter  = flag.Int("fail-after", 2, "consecutive health-check failures before a backend is routed around")
		timeout    = flag.Duration("timeout", 15*time.Second, "per-request backend timeout")
		retryBud   = flag.Int("retry-budget", 2, "extra candidates a routed request may be retried on after a transport failure or 503-draining answer")
		brThresh   = flag.Int("breaker-threshold", 3, "consecutive transport failures that open a backend's circuit breaker")
		brProbe    = flag.Duration("breaker-probe", time.Second, "initial open-breaker probe delay (doubles per failed probe)")
		brProbeMax = flag.Duration("breaker-probe-max", 30*time.Second, "open-breaker probe delay cap")
		promote    = flag.Bool("promote", false, "enable automatic fail-over: promote a dead backend's WAL replica and re-create its sessions on the survivors")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		slowLog    = flag.Duration("slow-log", 0, "log any request slower than this span-by-span (0 = off)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
		faultsPath = flag.String("faults", "", "JSON fault-injection schedule armed at startup (testing; see docs/OPERATIONS.md)")
	)
	flag.Parse()

	logger := obs.NewLogger("router", obs.ParseLevel(*logLevel))

	if *faultsPath != "" {
		if err := fault.ApplyFile(*faultsPath); err != nil {
			log.Fatalf("arm -faults: %v", err)
		}
		logger.Warn("fault injection armed", "schedule", *faultsPath)
	}

	if *pprofAddr != "" {
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	bs, err := parseBackends(*backends)
	if err != nil {
		log.Fatalf("parse -backends: %v", err)
	}
	r, err := router.New(router.Options{
		Backends:         bs,
		CheckInterval:    *checkIvl,
		BackoffMax:       *backoffMax,
		FailAfter:        *failAfter,
		Timeout:          *timeout,
		RetryBudget:      *retryBud,
		BreakerThreshold: *brThresh,
		BreakerProbe:     *brProbe,
		BreakerProbeMax:  *brProbeMax,
		Promote:          *promote,
		Logf:             logger.Logf(obs.LevelInfo),
		SlowLog:          *slowLog,
	})
	if err != nil {
		log.Fatalf("start router: %v", err)
	}
	defer r.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           r,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("relm-router listening", "addr", *addr, "backends", len(bs), "check_interval", *checkIvl)

	select {
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
}

// parseBackends splits "a=http://host:port,b=..." into Backend specs.
func parseBackends(s string) ([]router.Backend, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("no backends given (want -backends 'name=url,name=url')")
	}
	var out []router.Backend
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, u, ok := strings.Cut(part, "=")
		if !ok || name == "" || u == "" {
			return nil, fmt.Errorf("bad backend %q (want 'name=url')", part)
		}
		out = append(out, router.Backend{Name: name, URL: u})
	}
	return out, nil
}
