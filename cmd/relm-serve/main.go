// Command relm-serve runs the tuning service: a long-lived HTTP server
// multiplexing concurrent tuning sessions over every policy in the
// repository (RelM, BO, GBO, DDPG). Remote clients drive the
// suggest/observe loop with real measurements; auto-mode sessions are
// driven by the server's worker pool on the simulator.
//
// Usage:
//
//	relm-serve [-addr :8080] [-workers 4] [-ttl 30m] [-max-sessions 4096]
//
// One full remote tuning loop:
//
//	curl -s -X POST localhost:8080/v1/sessions \
//	    -d '{"backend":"gbo","workload":"K-means","cluster":"A","seed":1}'
//	curl -s -X POST localhost:8080/v1/sessions/sess-1/suggest
//	curl -s -X POST localhost:8080/v1/sessions/sess-1/observe \
//	    -d '{"config":{...},"runtime_sec":212.4}'
//	curl -s localhost:8080/v1/sessions/sess-1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"relm/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 4, "auto-tuning worker pool size")
		ttl         = flag.Duration("ttl", 30*time.Minute, "idle-session eviction TTL")
		maxSessions = flag.Int("max-sessions", 4096, "live-session limit")
	)
	flag.Parse()

	m := service.NewManager(service.Options{
		TTL:         *ttl,
		Workers:     *workers,
		MaxSessions: *maxSessions,
	})
	defer m.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(m),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("relm-serve listening on %s (workers=%d ttl=%s)", *addr, *workers, *ttl)

	select {
	case <-ctx.Done():
		log.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
}
