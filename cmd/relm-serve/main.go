// Command relm-serve runs the tuning service: a long-lived HTTP server
// multiplexing concurrent tuning sessions over every policy in the
// repository (RelM, BO, GBO, DDPG). Remote clients drive the
// suggest/observe loop with real measurements; auto-mode sessions are
// driven by the server's worker pool on the simulator.
//
// With -data-dir the server is durable: every session event is journaled
// to a segmented append-only write-ahead log (<dir>/wal-000001.jsonl, …)
// with periodic compacted snapshots (<dir>/snapshot.json), a restarted
// server resumes every open session with full history, and completed
// sessions feed a persisted model repository that warm-starts later
// sessions on the same workload (§6.6 model re-use). Segments rotate at
// -wal-segment-bytes, so compaction deletes sealed segments instead of
// rewriting the log; with -fsync, appends are group-committed — concurrent
// observations share one fsync batch, optionally coalescing for an extra
// -commit-interval (the latency cap).
// A PR-2-format data directory (single wal.jsonl) is adopted transparently.
// The model repository is bounded by -repo-cap with least-recently-matched
// eviction and inspectable at GET /v1/repository.
//
// Usage:
//
//	relm-serve [-addr :8080] [-workers 4] [-ttl 30m] [-max-sessions 4096]
//	           [-data-dir relm-data] [-snapshot-every 1024] [-fsync]
//	           [-wal-segment-bytes 4194304] [-commit-interval 0]
//	           [-warm-distance 0.25] [-repo-cap 1024] [-surrogate-budget 0]
//	           [-node-id a] [-advertise http://10.0.0.1:8080]
//	           [-replicate-to b=http://10.0.0.2:8080,c=http://10.0.0.3:8080]
//	           [-replica-dir <data-dir>/replicas] [-replicate-every 500ms]
//	           [-replica-factor 1]
//	           [-log-level info] [-slow-log 0] [-pprof-addr ""]
//
// Observability: every hot stage (suggest/observe/create, surrogate
// append vs. refit, acquisition scoring, WAL append and group-commit
// flush wait, replica ship/ingest) is timed into lock-free latency
// histograms, exposed as percentile digests on GET /v1/metrics and in
// Prometheus text form on GET /metrics. Every request carries a trace
// (X-Relm-Trace, minted here or adopted from the router) whose timed
// spans land in the GET /v1/traces ring; -slow-log logs any request
// slower than the threshold span-by-span, and -pprof-addr serves
// net/http/pprof on a side port. Logs are leveled key=value lines
// filtered by -log-level.
//
// In a multi-node cluster each node runs with a unique -node-id (session
// IDs become "<node>-sess-N", unique without coordination) and a
// relm-router in front partitions sessions across the nodes; see
// cmd/relm-router.
//
// With -replicate-to the node ships its write-ahead log (snapshot +
// sealed segments + active-segment tail) to -replica-factor
// rendezvous-chosen peers and ingests other primaries' logs under
// -replica-dir. When a node dies without draining, a router started with
// -promote fences the dead node's replica on a follower, replays it, and
// re-creates the lost sessions on the survivors — automatic fail-over.
//
// One full remote tuning loop:
//
//	curl -s -X POST localhost:8080/v1/sessions \
//	    -d '{"backend":"gbo","workload":"K-means","cluster":"A","seed":1}'
//	curl -s -X POST localhost:8080/v1/sessions/sess-1/suggest
//	curl -s -X POST localhost:8080/v1/sessions/sess-1/observe \
//	    -d '{"config":{...},"runtime_sec":212.4}'
//	curl -s localhost:8080/v1/sessions/sess-1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"relm/internal/fault"
	"relm/internal/obs"
	"relm/internal/replica"
	"relm/internal/service"
	"relm/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 4, "auto-tuning worker pool size")
		ttl          = flag.Duration("ttl", 30*time.Minute, "idle-session eviction TTL")
		maxSessions  = flag.Int("max-sessions", 4096, "live-session limit")
		dataDir      = flag.String("data-dir", "", "durable store directory (empty = in-memory only, nothing survives a restart)")
		snapEvery    = flag.Int("snapshot-every", 1024, "compact the write-ahead log after this many events")
		fsync        = flag.Bool("fsync", false, "fsync the write-ahead log on every event, group-committed (survives machine crashes)")
		segmentBytes = flag.Int64("wal-segment-bytes", 4<<20, "rotate write-ahead-log segments at this size")
		commitIvl    = flag.Duration("commit-interval", 0, "group-commit latency cap: extra time an fsync batch coalesces (with -fsync; 0 = flush as soon as the committer is free)")
		warmDistance = flag.Float64("warm-distance", 0.25, "default fingerprint-distance threshold for warm-start matching")
		surBudget    = flag.Int("surrogate-budget", 0, "default GP active-set cap for BO/GBO sessions: >0 enables the budgeted sparse surrogate (sessions may override per spec; 0 = exact GP)")
		repoCap      = flag.Int("repo-cap", 1024, "model-repository capacity; least-recently-matched entries are evicted past it (negative = unbounded)")
		nodeID       = flag.String("node-id", "", "node identity in a multi-node cluster: prefixes session IDs, reported by /healthz for router verification")
		advertise    = flag.String("advertise", "", "URL routers should reach this node at (informational, surfaced by /healthz)")
		replicateTo  = flag.String("replicate-to", "", "comma-separated replication peers, each 'name=url' (self filtered out by name); enables WAL log-shipping and replica ingest (requires -data-dir and -node-id)")
		replicaDir   = flag.String("replica-dir", "", "directory for ingesting other primaries' replicas (default <data-dir>/replicas)")
		replicateIvl = flag.Duration("replicate-every", 500*time.Millisecond, "log-shipping interval: how often the active segment tail and new sealed segments are shipped to followers")
		replicaN     = flag.Int("replica-factor", 1, "followers per primary (1 or 2): how many rendezvous-chosen peers receive this node's log")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		slowLog      = flag.Duration("slow-log", 0, "log any request slower than this span-by-span (0 = off)")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
		faultsPath   = flag.String("faults", "", "JSON fault-injection schedule armed at startup (testing; see docs/OPERATIONS.md)")
	)
	flag.Parse()

	logNode := *nodeID
	if logNode == "" {
		logNode = "serve"
	}
	logger := obs.NewLogger(logNode, obs.ParseLevel(*logLevel))
	reg := obs.NewRegistry()

	if *faultsPath != "" {
		if err := fault.ApplyFile(*faultsPath); err != nil {
			log.Fatalf("arm -faults: %v", err)
		}
		logger.Warn("fault injection armed", "schedule", *faultsPath)
	}

	if *pprofAddr != "" {
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	opts := service.Options{
		TTL:             *ttl,
		Workers:         *workers,
		MaxSessions:     *maxSessions,
		SnapshotEvery:   *snapEvery,
		WarmMaxDistance: *warmDistance,
		SurrogateBudget: *surBudget,
		RepoCapacity:    *repoCap,
		NodeID:          *nodeID,
		Advertise:       *advertise,
		Obs:             reg,
		SlowLog:         *slowLog,
		SlowLogf:        logger.Logf(obs.LevelWarn),
	}
	var st *store.File
	if *dataDir != "" {
		var err error
		st, err = store.OpenFile(*dataDir, store.FileOptions{
			SyncEachAppend: *fsync,
			SegmentBytes:   *segmentBytes,
			CommitInterval: *commitIvl,
			AppendHist:     reg.Histogram("wal.append"),
			FlushWaitHist:  reg.Histogram("wal.flush_wait"),
		})
		if err != nil {
			log.Fatalf("open store: %v", err)
		}
		opts.Store = st
	}

	if *replicateTo != "" {
		if *dataDir == "" || *nodeID == "" {
			log.Fatalf("-replicate-to requires -data-dir and -node-id")
		}
		peers, err := parsePeers(*replicateTo)
		if err != nil {
			log.Fatalf("parse -replicate-to: %v", err)
		}
		dir := *replicaDir
		if dir == "" {
			dir = filepath.Join(*dataDir, "replicas")
		}
		set, err := replica.New(replica.Options{
			Self:       *nodeID,
			Peers:      peers,
			Factor:     *replicaN,
			Dir:        dir,
			Source:     st,
			Interval:   *replicateIvl,
			Logf:       logger.Logf(obs.LevelInfo),
			ShipHist:   reg.Histogram("replica.ship"),
			IngestHist: reg.Histogram("replica.ingest"),
		})
		if err != nil {
			log.Fatalf("start replication: %v", err)
		}
		defer set.Close()
		opts.Replica = set
		followers := make([]string, 0, *replicaN)
		for _, p := range replica.Followers(*nodeID, peers, *replicaN) {
			followers = append(followers, p.Name)
		}
		logger.Info("replicating WAL", "followers", fmt.Sprintf("%v", followers), "interval", *replicateIvl, "ingest_dir", dir)
	}

	m, err := service.Open(opts)
	if err != nil {
		log.Fatalf("restore sessions: %v", err)
	}
	defer m.Close()
	if *dataDir != "" {
		mt := m.Metrics()
		logger.Info("restored sessions", "sessions", mt.Sessions, "observations", mt.Observations,
			"repo_models", mt.RepoEntries, "dir", *dataDir)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(m),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("relm-serve listening", "addr", *addr, "node", *nodeID, "workers", *workers, "ttl", *ttl, "data_dir", *dataDir)

	select {
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
}

// parsePeers splits "a=http://host:port,b=..." into replication peers.
func parsePeers(s string) ([]replica.Peer, error) {
	var out []replica.Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, u, ok := strings.Cut(part, "=")
		if !ok || name == "" || u == "" {
			return nil, fmt.Errorf("bad peer %q (want 'name=url')", part)
		}
		out = append(out, replica.Peer{Name: name, URL: u})
	}
	if len(out) == 0 {
		return nil, errors.New("no peers given")
	}
	return out, nil
}
