// Command relm-tune runs the RelM white-box tuner against a workload: it
// profiles the application once (twice when the first profile lacks full-GC
// events), prints the Table 6 statistics, the per-container-size candidates
// with their utility scores, and the final recommendation, then verifies the
// recommendation with a fresh run.
//
// Usage:
//
//	relm-tune -workload PageRank [-cluster A] [-seed 1] [-trace]
package main

import (
	"flag"
	"fmt"
	"os"

	"relm/internal/core"
	"relm/internal/profile"
	"relm/internal/sim"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/tune"
)

func main() {
	var (
		wlName = flag.String("workload", "PageRank", "workload to tune")
		clName = flag.String("cluster", "A", "cluster spec: A or B")
		seed   = flag.Uint64("seed", 1, "random seed")
		trace  = flag.Bool("trace", false, "print the Arbitrator trace of the chosen candidate")
	)
	flag.Parse()

	wl, ok := workload.ByName(*wlName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wlName)
		os.Exit(2)
	}
	cl := cluster.A()
	if *clName == "B" {
		cl = cluster.B()
	}

	ev := tune.NewEvaluator(cl, wl, *seed)
	tuner := core.New(cl)
	rec, cands, err := tuner.TuneWorkload(ev)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relm:", err)
		os.Exit(1)
	}

	prof := ev.History()[0].Profile
	fmt.Println("profile:", prof)
	fmt.Println("stats:  ", profile.Generate(prof))
	fmt.Printf("profiling runs: %d (%.1f min stress-testing)\n\n", ev.Evals(), ev.TotalRuntime()/60)

	fmt.Println("candidates:")
	for _, c := range cands {
		status := "ok"
		if !c.Feasible {
			status = "infeasible"
		}
		fmt.Printf("  n=%d  U=%.3f  %-10s  %v\n", c.Containers, c.Utility, status, c.Config)
		if *trace && c.Config == rec {
			for _, s := range c.Trace {
				fmt.Printf("    %-8s p=%d mc=%.0fMB NR=%d mo=%.0fMB\n",
					s.Action, s.Pools.P, s.Pools.McMB, s.Pools.NewRatio, s.Pools.MoMB)
			}
		}
	}

	fmt.Printf("\nrecommendation: %v\n", rec)
	res, _ := sim.Run(cl, wl, rec, *seed+999)
	fmt.Printf("verification run: %.1f min aborted=%v failures=%d gc=%.2f H=%.2f\n",
		res.RuntimeMin(), res.Aborted, res.ContainerFailures, res.GCOverhead, res.CacheHitRatio)

	def := ev.Space.Default()
	dres, _ := sim.Run(cl, wl, def, *seed+555)
	fmt.Printf("default run:      %.1f min aborted=%v failures=%d gc=%.2f H=%.2f\n",
		dres.RuntimeMin(), dres.Aborted, dres.ContainerFailures, dres.GCOverhead, dres.CacheHitRatio)
}
