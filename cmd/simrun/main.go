// Command simrun executes one (workload, configuration) pair on a simulated
// cluster and prints the run metrics and the Table 6 statistics derived from
// its profile.
//
// Usage:
//
//	simrun -workload PageRank -cluster A -n 1 -p 2 -cache 0.6 -shuffle 0 -nr 2 [-seed 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"relm/internal/conf"
	"relm/internal/profile"
	"relm/internal/sim"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
)

func main() {
	var (
		wlName  = flag.String("workload", "PageRank", "workload name (WordCount, SortByKey, K-means, SVM, PageRank, TPC-H Qn)")
		clName  = flag.String("cluster", "A", "cluster spec: A or B")
		n       = flag.Int("n", 1, "containers per node")
		p       = flag.Int("p", 2, "task concurrency")
		cache   = flag.Float64("cache", 0.6, "cache capacity fraction")
		shuffle = flag.Float64("shuffle", 0, "shuffle capacity fraction")
		nr      = flag.Int("nr", 2, "NewRatio")
		sr      = flag.Int("sr", 8, "SurvivorRatio")
		seed    = flag.Uint64("seed", 1, "random seed")
		reps    = flag.Int("reps", 1, "number of repeated runs")
		profOut = flag.String("profile", "", "write the first run's profile as JSON to this file")
	)
	flag.Parse()

	wl, ok := workload.ByName(*wlName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wlName)
		os.Exit(2)
	}
	cl := cluster.A()
	if *clName == "B" {
		cl = cluster.B()
	}
	cfg := conf.Config{
		ContainersPerNode: *n, TaskConcurrency: *p,
		CacheCapacity: *cache, ShuffleCapacity: *shuffle,
		NewRatio: *nr, SurvivorRatio: *sr,
	}
	for i := 0; i < *reps; i++ {
		res, prof := sim.Run(cl, wl, cfg, *seed+uint64(i)*7919)
		fmt.Printf("run %d: %.1f min aborted=%v failures=%d heapUtil=%.2f cpu=%.2f disk=%.2f gc=%.2f H=%.2f S=%.2f\n",
			i, res.RuntimeMin(), res.Aborted, res.ContainerFailures,
			res.MaxHeapUtil, res.CPUAvg, res.DiskAvg, res.GCOverhead,
			res.CacheHitRatio, res.SpillFraction)
		if i == 0 {
			fmt.Println("stats:", profile.Generate(prof))
			if *profOut != "" {
				if err := writeProfileJSON(*profOut, prof); err != nil {
					fmt.Fprintln(os.Stderr, "profile export:", err)
					os.Exit(1)
				}
				fmt.Println("profile written to", *profOut)
			}
		}
	}
}

// writeProfileJSON exports the full profiling artifact (timelines, GC and
// task events) for external analysis.
func writeProfileJSON(path string, prof *profile.Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(prof); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
