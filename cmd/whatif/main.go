// Command whatif answers what-if questions about a memory configuration
// using only white-box models — no cluster run: given a workload's profile
// (obtained from one default-configuration run) and a candidate
// configuration, it prints RelM's safety verdict and GBO's guide metrics
// (Equation 8), then optionally validates them against a simulated run.
//
// Usage:
//
//	whatif -workload K-means -n 2 -p 4 -cache 0.8 -nr 2 [-validate]
package main

import (
	"flag"
	"fmt"
	"os"

	"relm/internal/conf"
	"relm/internal/core"
	"relm/internal/gbo"
	"relm/internal/profile"
	"relm/internal/sim"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
)

func main() {
	var (
		wlName   = flag.String("workload", "K-means", "workload name")
		clName   = flag.String("cluster", "A", "cluster spec: A or B")
		n        = flag.Int("n", 1, "containers per node")
		p        = flag.Int("p", 2, "task concurrency")
		cache    = flag.Float64("cache", 0.6, "cache capacity fraction")
		shuffle  = flag.Float64("shuffle", 0, "shuffle capacity fraction")
		nr       = flag.Int("nr", 2, "NewRatio")
		seed     = flag.Uint64("seed", 1, "random seed for the profiling run")
		validate = flag.Bool("validate", false, "also simulate the configuration to check the prediction")
	)
	flag.Parse()

	wl, ok := workload.ByName(*wlName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wlName)
		os.Exit(2)
	}
	cl := cluster.A()
	if *clName == "B" {
		cl = cluster.B()
	}
	cfg := conf.Config{
		ContainersPerNode: *n, TaskConcurrency: *p,
		CacheCapacity: *cache, ShuffleCapacity: *shuffle,
		NewRatio: *nr, SurvivorRatio: 8,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// One profiling run on the defaults builds the white-box models.
	def := conf.Default()
	if !wl.UsesCache {
		def = conf.DefaultShuffle()
	}
	_, prof := sim.Run(cl, wl, def, *seed)
	st := profile.Generate(prof)
	fmt.Println("profile statistics:", st)

	// GBO's model Q: the three Equation 8 indicators.
	q := gbo.NewModel(cl, st).Metrics(cfg)
	fmt.Printf("\nwhat-if for %v:\n", cfg)
	fmt.Printf("  q1 expected heap occupancy:   %.2f  %s\n", q[0], verdict(q[0] > 1, "OVER-COMMITTED (unsafe)", q[0] < 0.45, "under-utilized", "healthy"))
	fmt.Printf("  q2 long-term memory fit:      %.2f  %s\n", q[1], verdict(q[1] > 1.25, "long-lived data will not fit (GC/disk overheads)", false, "", "fits"))
	fmt.Printf("  q3 shuffle vs half-Eden:      %.2f  %s\n", q[2], verdict(q[2] > 1, "spill batches exceed half of Eden (full-GC storms)", false, "", "bounded"))

	// RelM's Arbitrator verdict for this container size.
	tuner := core.New(cl)
	pools := tuner.Initialize(st, cfg.ContainersPerNode)
	pools.P = cfg.TaskConcurrency
	pools.McMB = cfg.CacheCapacity * cl.HeapPerContainer(cfg.ContainersPerNode)
	if _, feasible := tuner.Arbitrate(st, pools); feasible {
		fmt.Println("  RelM arbitration: a safe variant of this container size exists")
	} else {
		fmt.Println("  RelM arbitration: INFEASIBLE at this container size")
	}

	if *validate {
		res, _ := sim.Run(cl, wl, cfg, *seed+999)
		fmt.Printf("\nsimulated truth: %.1f min aborted=%v failures=%d gc=%.2f H=%.2f\n",
			res.RuntimeMin(), res.Aborted, res.ContainerFailures, res.GCOverhead, res.CacheHitRatio)
	}
}

func verdict(bad bool, badMsg string, warn bool, warnMsg, okMsg string) string {
	switch {
	case bad:
		return "⚠ " + badMsg
	case warn:
		return "~ " + warnMsg
	default:
		return "✓ " + okMsg
	}
}
