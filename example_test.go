package relm_test

import (
	"fmt"

	"relm"
)

// ExampleSimulate runs one application on the simulated cluster and prints
// the headline metrics.
func ExampleSimulate() {
	cl := relm.ClusterA()
	wl, _ := relm.WorkloadByName("SVM")
	res, _ := relm.Simulate(cl, wl, relm.DefaultConfig(), 1)
	fmt.Printf("aborted=%v hit=%.2f\n", res.Aborted, res.CacheHitRatio)
	// Output: aborted=false hit=1.00
}

// ExampleGenerateStats derives the Table 6 statistics from a profile.
func ExampleGenerateStats() {
	cl := relm.ClusterA()
	wl, _ := relm.WorkloadByName("PageRank")
	_, prof := relm.Simulate(cl, wl, relm.DefaultConfig(), 1)
	st := relm.GenerateStats(prof)
	fmt.Printf("N=%d P=%d heap=%.0fMB\n", st.N, st.P, st.MhMB)
	// Output: N=1 P=2 heap=4404MB
}

// ExampleNewRelM tunes a workload from a single profile.
func ExampleNewRelM() {
	cl := relm.ClusterA()
	wl, _ := relm.WorkloadByName("PageRank")
	ev := relm.NewEvaluator(cl, wl, 1)
	cfg, _, err := relm.NewRelM(cl).TuneWorkload(ev)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("profiling runs: %d, concurrency: %d\n", ev.Evals(), cfg.TaskConcurrency)
	// Output: profiling runs: 1, concurrency: 1
}

// ExampleRunBO runs Bayesian Optimization with the paper's Table 7 bootstrap.
func ExampleRunBO() {
	cl := relm.ClusterA()
	wl, _ := relm.WorkloadByName("WordCount")
	ev := relm.NewEvaluator(cl, wl, 1)
	res := relm.RunBO(ev, relm.BOOptions{Seed: 1, UsePaperLHS: true, MaxIterations: 3, MinNewSamples: 1})
	fmt.Printf("found=%v evals>=4: %v\n", res.Found, ev.Evals() >= 4)
	// Output: found=true evals>=4: true
}

// ExampleExperimentIDs lists a few reproducible paper artifacts.
func ExampleExperimentIDs() {
	ids := relm.ExperimentIDs()
	fmt.Println(len(ids) >= 28, ids[0])
	// Output: true ablation-gbo
}
