// PageRank walk-through: reproduces the paper's §3.5 manual-tuning study and
// the §4.3 Arbitrator working example on the application that fails under
// the default setup.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"

	"relm"
)

func main() {
	cl := relm.ClusterA()
	wl, err := relm.WorkloadByName("PageRank")
	if err != nil {
		log.Fatal(err)
	}

	// §3.5: the four manual configurations of Table 5.
	fmt.Println("manual tuning (Table 5):")
	manual := []relm.Config{
		relm.DefaultConfig(), // row 1: unreliable defaults
		{ContainersPerNode: 1, TaskConcurrency: 1, CacheCapacity: 0.6, NewRatio: 2, SurvivorRatio: 8},
		{ContainersPerNode: 1, TaskConcurrency: 2, CacheCapacity: 0.4, NewRatio: 2, SurvivorRatio: 8},
		{ContainersPerNode: 1, TaskConcurrency: 2, CacheCapacity: 0.6, NewRatio: 5, SurvivorRatio: 8},
	}
	for i, cfg := range manual {
		res, _ := relm.Simulate(cl, wl, cfg, uint64(10+i))
		note := ""
		if res.Aborted {
			note = " (aborted)"
		}
		fmt.Printf("  %v → %.0f min%s, %d failures, hit %.2f, GC %.2f\n",
			cfg, res.RuntimeMin(), note, res.ContainerFailures, res.CacheHitRatio, res.GCOverhead)
	}

	// §4: RelM does the same repair automatically from one profile.
	ev := relm.NewEvaluator(cl, wl, 1)
	tuner := relm.NewRelM(cl)
	rec, cands, err := tuner.TuneWorkload(ev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nArbitrator trace for the recommended container size (Figure 13):")
	for _, c := range cands {
		if c.Config != rec {
			continue
		}
		for i, s := range c.Trace {
			fmt.Printf("  (%d) %-7s p=%d mc=%.1fGB NR=%d mo=%.1fGB\n",
				i+1, s.Action, s.Pools.P, s.Pools.McMB/1024, s.Pools.NewRatio, s.Pools.MoMB/1024)
		}
	}
	res, _ := relm.Simulate(cl, wl, rec, 99)
	fmt.Printf("\nRelM recommendation %v\n→ %.0f min, aborted=%v, %d failures\n",
		rec, res.RuntimeMin(), res.Aborted, res.ContainerFailures)
}
