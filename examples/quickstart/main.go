// Quickstart: simulate a workload on its default configuration, derive the
// Table 6 statistics from the profile, let RelM recommend a memory
// configuration, and compare the two.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"relm"
)

func main() {
	cl := relm.ClusterA()
	wl, err := relm.WorkloadByName("K-means")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Run the application once on the MaxResourceAllocation defaults and
	//    collect its profile.
	defCfg := relm.DefaultConfig()
	defRes, prof := relm.Simulate(cl, wl, defCfg, 1)
	fmt.Printf("default  %v\n         → %.1f min (GC %.0f%%, cache hit %.0f%%)\n",
		defCfg, defRes.RuntimeMin(), 100*defRes.GCOverhead, 100*defRes.CacheHitRatio)

	// 2. Derive the Table 6 statistics the tuner works from.
	st := relm.GenerateStats(prof)
	fmt.Println("profile:", st)

	// 3. RelM: analytical recommendation from this single profile.
	tuner := relm.NewRelM(cl)
	rec, cands, err := tuner.Recommend(st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncandidates (one per container size, ranked by memory utility):")
	for _, c := range cands {
		state := "ok"
		if !c.Feasible {
			state = "infeasible"
		}
		fmt.Printf("  n=%d  U=%.3f  %-10s %v\n", c.Containers, c.Utility, state, c.Config)
	}

	// 4. Verify the recommendation.
	recRes, _ := relm.Simulate(cl, wl, rec, 2)
	fmt.Printf("\nRelM     %v\n         → %.1f min (%.0f%% of default, %d container failures)\n",
		rec, recRes.RuntimeMin(), 100*recRes.RuntimeSec/defRes.RuntimeSec, recRes.ContainerFailures)
}
