// TPC-H: runs the 22-query SQL workload on Cluster B under the
// MaxResourceAllocation defaults, tunes it with RelM from one profile, and
// reports the per-query and total savings (the paper's Figure 21: 66 → 40
// minutes, a 40% saving).
//
//	go run ./examples/tpch
package main

import (
	"fmt"
	"log"

	"relm"
)

func main() {
	cl := relm.ClusterB()
	queries := relm.TPCHWorkloads()

	// Pass 1: defaults, keeping the profile of the heaviest query.
	var heaviest *relm.Profile
	var heaviestSec, totalDefault float64
	defaults := make([]float64, len(queries))
	for i, q := range queries {
		res, prof := relm.Simulate(cl, q, relm.DefaultShuffleConfig(), uint64(i))
		defaults[i] = res.RuntimeSec
		totalDefault += res.RuntimeSec
		if res.RuntimeSec > heaviestSec {
			heaviestSec, heaviest = res.RuntimeSec, prof
		}
	}

	// RelM recommendation from the heaviest query's profile.
	tuner := relm.NewRelM(cl)
	rec, _, err := tuner.Recommend(relm.GenerateStats(heaviest))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RelM recommendation: %v\n\n", rec)

	// Pass 2: tuned.
	fmt.Printf("%-5s  %8s  %8s\n", "query", "default", "RelM")
	var totalTuned float64
	for i, q := range queries {
		res, _ := relm.Simulate(cl, q, rec, uint64(1000+i))
		totalTuned += res.RuntimeSec
		fmt.Printf("Q%-4d  %7.1fm  %7.1fm\n", i+1, defaults[i]/60, res.RuntimeSec/60)
	}
	fmt.Printf("\ntotal: %.0f min → %.0f min (%.0f%% saving)\n",
		totalDefault/60, totalTuned/60, 100*(1-totalTuned/totalDefault))
}
