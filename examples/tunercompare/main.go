// Tuner comparison: runs all five tuning policies — exhaustive search, RelM,
// BO, GBO, and DDPG — on one workload and reports recommendation quality and
// training overheads side by side (the paper's Figures 16 and 17 for a
// single application).
//
//	go run ./examples/tunercompare [-workload SVM]
package main

import (
	"flag"
	"fmt"
	"log"

	"relm"
)

func main() {
	wlName := flag.String("workload", "SVM", "workload to tune")
	flag.Parse()

	cl := relm.ClusterA()
	wl, err := relm.WorkloadByName(*wlName)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: exhaustive grid search (the quality reference).
	exhEv := relm.NewEvaluator(cl, wl, 100)
	exhBest, grid := relm.ExhaustiveSearch(exhEv)
	fmt.Printf("exhaustive search: %d configs, %.0f min of stress testing\n",
		len(grid), exhEv.TotalRuntime()/60)
	fmt.Printf("  best: %v → %.1f min\n\n", exhBest.Config, exhBest.RuntimeSec/60)

	defRes, _ := relm.Simulate(cl, wl, relm.NewEvaluator(cl, wl, 1).Space.Default(), 55)
	fmt.Printf("%-6s %-45s %9s %7s %9s\n", "policy", "recommendation", "runtime", "evals", "overhead")
	report := func(policy string, cfg relm.Config, evals int, stressSec float64) {
		res, _ := relm.Simulate(cl, wl, cfg, 777)
		fmt.Printf("%-6s %-45v %7.1fm  %6d  %7.1fm  (%.0f%% of default)\n",
			policy, cfg, res.RuntimeMin(), evals, stressSec/60,
			100*res.RuntimeSec/defRes.RuntimeSec)
	}

	// RelM: one or two profiling runs, analytical recommendation.
	ev := relm.NewEvaluator(cl, wl, 200)
	rec, _, err := relm.NewRelM(cl).TuneWorkload(ev)
	if err != nil {
		log.Fatal(err)
	}
	report("RelM", rec, ev.Evals(), ev.TotalRuntime())

	// BO.
	ev = relm.NewEvaluator(cl, wl, 300)
	boRes := relm.RunBO(ev, relm.BOOptions{Seed: 300, UsePaperLHS: true})
	report("BO", boRes.Best.Config, ev.Evals(), ev.TotalRuntime())

	// GBO.
	ev = relm.NewEvaluator(cl, wl, 400)
	gboRes, _ := relm.RunGBO(ev, relm.BOOptions{Seed: 400, UsePaperLHS: true})
	report("GBO", gboRes.Best.Config, ev.Evals(), ev.TotalRuntime())

	// DDPG.
	ev = relm.NewEvaluator(cl, wl, 500)
	ddRes := relm.RunDDPG(ev, nil, relm.DDPGOptions{Seed: 500})
	report("DDPG", ddRes.Best.Config, ev.Evals(), ev.TotalRuntime())
}
