module relm

go 1.24
