package relm_test

import (
	"testing"

	"relm"
)

// TestHeadlineClaimsAcrossSeeds pins the paper's headline results against
// seed choice, so simulator recalibrations cannot silently break them:
//
//  1. RelM tunes from at most two profiling runs and its recommendation
//     never aborts.
//  2. The recommendation beats the MaxResourceAllocation default.
//  3. The black-box optimizers also beat the default, at a higher
//     experiment count.
func TestHeadlineClaimsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-seed sweep")
	}
	cl := relm.ClusterA()
	for _, seed := range []uint64{3, 17, 101} {
		for _, name := range []string{"WordCount", "K-means", "SVM"} {
			wl, err := relm.WorkloadByName(name)
			if err != nil {
				t.Fatal(err)
			}
			// Default reference (median of 3).
			var defRuntimes []float64
			for i := uint64(0); i < 3; i++ {
				res, _ := relm.Simulate(cl, wl, defaultFor(wl), seed*100+i)
				defRuntimes = append(defRuntimes, res.RuntimeSec)
			}
			def := median(defRuntimes)

			// RelM.
			ev := relm.NewEvaluator(cl, wl, seed)
			cfg, _, err := relm.NewRelM(cl).TuneWorkload(ev)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			if ev.Evals() > 2 {
				t.Errorf("seed %d %s: RelM used %d profiling runs", seed, name, ev.Evals())
			}
			var recRuntimes []float64
			for i := uint64(0); i < 3; i++ {
				res, _ := relm.Simulate(cl, wl, cfg, seed*200+i)
				if res.Aborted {
					t.Errorf("seed %d %s: RelM recommendation aborted", seed, name)
				}
				recRuntimes = append(recRuntimes, res.RuntimeSec)
			}
			if rec := median(recRuntimes); rec >= def {
				t.Errorf("seed %d %s: RelM %v not faster than default %v", seed, name, rec, def)
			}

			// BO must also beat the default, using more experiments.
			evBO := relm.NewEvaluator(cl, wl, seed+7)
			bo := relm.RunBO(evBO, relm.BOOptions{Seed: seed + 7, UsePaperLHS: true})
			if !bo.Found {
				t.Fatalf("seed %d %s: BO found nothing", seed, name)
			}
			if bo.Best.Objective >= def {
				t.Errorf("seed %d %s: BO best %v not faster than default %v", seed, name, bo.Best.Objective, def)
			}
			if evBO.Evals() <= ev.Evals() {
				t.Errorf("seed %d %s: BO should need more experiments than RelM", seed, name)
			}
		}
	}
}

func defaultFor(wl relm.Workload) relm.Config {
	if wl.UsesCache {
		return relm.DefaultConfig()
	}
	return relm.DefaultShuffleConfig()
}

func median(xs []float64) float64 {
	// Small fixed-size inputs; insertion sort suffices.
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
