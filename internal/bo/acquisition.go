package bo

import (
	"relm/internal/conf"
	"relm/internal/gp"
)

// poolSize is the random-search pool of the acquisition maximizer —
// unchanged from the original implementation, but now scored in one batch.
const poolSize = 256

// acqScratch holds every buffer of one acquisition maximization: the
// candidate pool, its decoded configurations and feature rows, the batched
// posterior, and the hill-climb probes. It lives on the Tuner, so one
// session reuses it across observations and concurrent sessions never
// contend on allocation.
type acqScratch struct {
	flat  []float64   // candidate pool backing array, poolSize×dim
	cands [][]float64 // row views into flat
	cfgs  []conf.Config

	featFlat []float64   // feature-row backing (distinct from cands when an Extra hook is set)
	featOffs []int       // row boundaries in featFlat
	feats    [][]float64 // row views into featFlat

	means []float64
	vars  []float64
	gps   gp.Scratch

	best  []float64 // incumbent acquisition point
	probe []float64 // hill-climb candidate
	pfeat []float64 // its feature row
}

// grow readies the pool buffers for dim-dimensional candidates.
func (a *acqScratch) grow(dim int) {
	if cap(a.flat) < poolSize*dim {
		a.flat = make([]float64, poolSize*dim)
		a.cands = make([][]float64, poolSize)
	}
	a.flat = a.flat[:poolSize*dim]
	a.cands = a.cands[:poolSize]
	for i := range a.cands {
		a.cands[i] = a.flat[i*dim : (i+1)*dim]
	}
	if cap(a.cfgs) < poolSize {
		a.cfgs = make([]conf.Config, poolSize)
		a.means = make([]float64, poolSize)
		a.vars = make([]float64, poolSize)
	}
	a.cfgs = a.cfgs[:poolSize]
	a.means = a.means[:poolSize]
	a.vars = a.vars[:poolSize]
	if cap(a.best) < dim {
		a.best = make([]float64, dim)
		a.probe = make([]float64, dim)
	}
	a.best = a.best[:dim]
	a.probe = a.probe[:dim]
}

// maximizeEI runs the paper's acquisition search — random sampling plus
// coordinate hill-climbing over the normalized space, skipping
// already-observed configurations — scoring the candidate pool through the
// surrogate's batched, allocation-free path (every gp.Surrogate provides
// it; non-GP models simply ignore the scratch). The probe order, RNG stream
// and tie-breaking are identical to the original per-candidate
// implementation, so it selects the same point; only the evaluation
// plumbing changed. Returns a freshly copied point (or nil when every
// candidate was already observed) and its expected improvement.
func (t *Tuner) maximizeEI(model gp.Surrogate, tau float64) ([]float64, float64) {
	a := &t.acq
	dim := t.sp.Dim()
	a.grow(dim)

	// Random pool: same RNG draw order as the scalar implementation.
	for _, x := range a.cands {
		for d := range x {
			x[d] = t.rng.Float64()
		}
	}
	for i, x := range a.cands {
		a.cfgs[i] = t.sp.Decode(x)
	}
	feats := t.poolFeatures()
	model.PredictBatch(feats, a.means, a.vars, &a.gps)
	bestEI := -1.0
	bestIdx := -1
	for i := range a.cands {
		if t.seen[a.cfgs[i]] {
			continue
		}
		ei := ExpectedImprovement(a.means[i], a.vars[i], tau)
		if t.pen != nil {
			ei *= t.pen(a.cands[i], a.cfgs[i])
		}
		if ei > bestEI {
			bestEI, bestIdx = ei, i
		}
	}
	if bestIdx < 0 {
		return nil, 0
	}
	copy(a.best, a.cands[bestIdx])

	// Coordinate hill-climb from the incumbent acquisition point.
	eiAt := func(x []float64) float64 {
		cfg := t.sp.Decode(x)
		f := t.probeFeatures(x, cfg)
		mean, variance := model.PredictInto(f, &a.gps)
		ei := ExpectedImprovement(mean, variance, tau)
		if t.pen != nil {
			ei *= t.pen(x, cfg)
		}
		return ei
	}
	step := 0.25
	for step > 0.02 {
		improved := false
		for d := 0; d < dim; d++ {
			for _, dir := range []float64{-1, 1} {
				copy(a.probe, a.best)
				a.probe[d] = clamp01(a.probe[d] + dir*step)
				if t.seen[t.sp.Decode(a.probe)] {
					continue
				}
				if ei := eiAt(a.probe); ei > bestEI {
					bestEI = ei
					copy(a.best, a.probe)
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return append([]float64(nil), a.best...), bestEI
}

// poolFeatures maps the candidate pool through the Extra hook. Without a
// hook the candidates are their own feature rows; with one, combined rows
// are packed into a reused flat buffer (views are built only after the
// buffer stops growing, so reallocation cannot strand them).
func (t *Tuner) poolFeatures() [][]float64 {
	a := &t.acq
	if t.extra == nil {
		return a.cands
	}
	flat := a.featFlat[:0]
	offs := a.featOffs[:0]
	for i, x := range a.cands {
		offs = append(offs, len(flat))
		flat = append(flat, x...)
		flat = append(flat, t.extra(x, a.cfgs[i])...)
	}
	offs = append(offs, len(flat))
	a.featFlat, a.featOffs = flat, offs
	feats := a.feats[:0]
	for i := 0; i+1 < len(offs); i++ {
		feats = append(feats, flat[offs[i]:offs[i+1]])
	}
	a.feats = feats
	return feats
}

// probeFeatures builds the feature row of one hill-climb probe into a
// reused buffer.
func (t *Tuner) probeFeatures(x []float64, cfg conf.Config) []float64 {
	if t.extra == nil {
		return x
	}
	a := &t.acq
	a.pfeat = append(a.pfeat[:0], x...)
	a.pfeat = append(a.pfeat, t.extra(x, cfg)...)
	return a.pfeat
}
