// Package bo implements Bayesian Optimization over the memory-configuration
// space (§5.1): a Gaussian-Process surrogate, the Expected Improvement
// acquisition function (Equation 7) maximized by random sampling plus
// coordinate hill-climbing, Latin-Hypercube bootstrap (Table 7), and the
// CherryPick stopping rule (EI below 10% of the incumbent and at least six
// new samples).
//
// The Extra hook injects additional surrogate features and the Penalty hook
// shapes the acquisition; package gbo uses them to plug in the white-box
// model Q (Equation 8), turning BO into GBO.
package bo

import (
	"math"

	"relm/internal/conf"
	"relm/internal/gp"
	"relm/internal/obs"
	"relm/internal/tune"
)

// SurrogateConfig groups everything that shapes the response-surface model:
// the kernel family, the exact-vs-budgeted choice, the re-selection
// schedule, warm-start priors, and the full-model override. The zero value
// selects the paper's settings (exact incremental GP, RBF kernel).
type SurrogateConfig struct {
	// Kernel selects the kernel family: "rbf" (default) or "matern52".
	Kernel string
	// Model overrides the surrogate entirely (e.g. the Random-Forest
	// adapter in internal/rf); when nil a hyperparameter-tuned GP is used.
	Model gp.Surrogate
	// Budget caps the GP's active set: >0 selects the budgeted sparse GP
	// (gp.Sparse) compressing to at most Budget points, so appends and
	// predictions stay at m-point cost no matter how long the session runs.
	// 0 keeps the exact incremental GP. Ignored when Model is set.
	Budget int
	// RefitEvery throttles hyperparameter re-selection (grid + ARD) to once
	// per this many incremental observations; between selections a new
	// sample is absorbed by an O(n²) GP append instead of an O(n³) refit.
	// Default 8; 1 restores the legacy re-selection on every observation.
	RefitEvery int
	// RefitDrift re-selects hyperparameters early when the surrogate's
	// per-point log marginal likelihood has dropped this much since the
	// last selection (default 0.25; negative disables the drift trigger).
	RefitDrift float64
	// ARDIters bounds the per-dimension length-scale gradient ascent run on
	// top of the grid at each re-selection (default gp.DefaultARDIters;
	// negative disables ARD and restores the pure grid).
	ARDIters int
	// Prior warm-starts the surrogate with observations from a previous
	// session (OtterTune-style model re-use, §6.6). Prior points join every
	// surrogate fit but cost no experiments and never become the incumbent.
	Prior []PriorPoint
}

// Options tunes the optimizer. Zero values select the paper's settings.
type Options struct {
	// InitSamples is the LHS bootstrap size (default 4 — the space's
	// dimensionality, as in §6.1).
	InitSamples int
	// MinNewSamples must be observed after bootstrap before the EI stopping
	// rule may fire (default 6, from CherryPick).
	MinNewSamples int
	// EIFraction stops the search when the maximum expected improvement
	// drops below this fraction of the incumbent objective (default 0.10).
	EIFraction float64
	// MaxIterations caps the adaptive samples (default 25).
	MaxIterations int
	// Surrogate configures the response-surface model.
	Surrogate SurrogateConfig
	// UsePaperLHS bootstraps with the exact Table 7 samples instead of a
	// seeded random Latin hypercube.
	UsePaperLHS bool
	// Seed drives the acquisition sampling.
	Seed uint64
	// SurrogateAppendHist, SurrogateRefitHist, and AcquisitionHist, when
	// set, record per-stage latency: incremental GP appends, full
	// hyperparameter re-selections, and EI maximization respectively.
	SurrogateAppendHist *obs.Histogram
	SurrogateRefitHist  *obs.Histogram
	AcquisitionHist     *obs.Histogram

	// Kernel is a deprecated alias for Surrogate.Kernel; the nested field
	// wins when both are set.
	Kernel string
	// Fit is the deprecated func-valued surrogate override; it is wrapped
	// onto the gp.Surrogate interface and retrains from the full matrix on
	// every data change. Use Surrogate.Model instead.
	Fit SurrogateFit
	// RefitEvery is a deprecated alias for Surrogate.RefitEvery.
	RefitEvery int
	// RefitDrift is a deprecated alias for Surrogate.RefitDrift.
	RefitDrift float64
	// Prior is a deprecated alias for Surrogate.Prior.
	Prior []PriorPoint
}

func (o *Options) fill() {
	if o.InitSamples == 0 {
		o.InitSamples = 4
	}
	if o.MinNewSamples == 0 {
		o.MinNewSamples = 6
	}
	if o.EIFraction == 0 {
		o.EIFraction = 0.10
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 25
	}
	// Merge the deprecated flat aliases into the nested config; a set
	// nested field always wins.
	s := &o.Surrogate
	if s.Kernel == "" {
		s.Kernel = o.Kernel
	}
	if s.Kernel == "" {
		s.Kernel = "rbf"
	}
	if s.Model == nil && o.Fit != nil {
		s.Model = &fitSurrogate{fn: o.Fit}
	}
	if s.RefitEvery == 0 {
		s.RefitEvery = o.RefitEvery
	}
	if s.RefitDrift == 0 {
		s.RefitDrift = o.RefitDrift
	}
	if s.Prior == nil {
		s.Prior = o.Prior
	}
	// Keep the aliases readable after fill so code holding an Options value
	// sees one consistent story.
	o.Kernel, o.RefitEvery, o.RefitDrift, o.Prior = s.Kernel, s.RefitEvery, s.RefitDrift, s.Prior
}

// Extra computes additional surrogate features for a candidate point.
// x is the normalized configuration; cfg its decoded form. It is consulted
// at surrogate-fit time, so implementations may evolve as profiles arrive
// (GBO builds its guide model from the first bootstrap sample's profile).
type Extra func(x []float64, cfg conf.Config) []float64

// Penalty scales the acquisition value of a candidate (1 = neutral); GBO
// uses it to de-prioritize regions its white-box model marks unsafe or
// wasteful.
type Penalty func(x []float64, cfg conf.Config) float64

// Surrogate is the minimal Predict-only view of a response-surface model,
// kept for Result.FinalModel consumers and the deprecated SurrogateFit
// override. The tuner itself drives the richer gp.Surrogate interface.
type Surrogate interface {
	Predict(x []float64) (mean, variance float64)
}

// SurrogateFit trains a surrogate on the observations collected so far.
//
// Deprecated: implement gp.Surrogate and set SurrogateConfig.Model instead;
// a func override forces a full retrain on every observation.
type SurrogateFit func(xs [][]float64, ys []float64) (Surrogate, error)

// Result reports one optimization run.
type Result struct {
	Best       tune.Sample
	Found      bool
	Iterations int       // adaptive samples taken after bootstrap
	Curve      []float64 // best objective so far, one entry per evaluation
	FinalModel Surrogate
}

// Run optimizes the evaluator's workload by driving the incremental Tuner
// to completion. Each Eval is one stress-test experiment on the (simulated)
// cluster. extra and penalty may be nil.
func Run(ev *tune.Evaluator, opts Options, extra Extra, penalty ...Penalty) Result {
	var pen Penalty
	if len(penalty) > 0 {
		pen = penalty[0]
	}
	t := NewTuner(ev.Space, opts, extra, pen)
	tune.Drive(t, ev, 0)
	res := t.Result()
	if !res.Found {
		if best, ok := ev.Best(); ok {
			res.Best, res.Found = best, true
		}
	}
	return res
}

func bestObjective(ys []float64) float64 {
	best := math.Inf(1)
	for _, y := range ys {
		if y < best {
			best = y
		}
	}
	return best
}

// ExpectedImprovement is Equation 7 for minimization: the expected amount by
// which a sample at (mean, variance) improves on the incumbent tau.
func ExpectedImprovement(mean, variance, tau float64) float64 {
	sd := math.Sqrt(variance)
	if sd < 1e-12 {
		if mean < tau {
			return tau - mean
		}
		return 0
	}
	z := (tau - mean) / sd
	return (tau-mean)*normCDF(z) + sd*normPDF(z)
}

func normCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }
func normPDF(z float64) float64 { return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi) }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
