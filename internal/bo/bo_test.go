package bo

import (
	"math"
	"testing"
	"testing/quick"

	"relm/internal/conf"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/tune"
)

func TestExpectedImprovementProperties(t *testing.T) {
	// Mean far below the incumbent with no noise improves by the gap.
	if ei := ExpectedImprovement(5, 1e-18, 10); math.Abs(ei-5) > 1e-6 {
		t.Fatalf("deterministic EI = %v, want 5", ei)
	}
	// Mean above the incumbent with no variance: no improvement.
	if ei := ExpectedImprovement(15, 1e-18, 10); ei != 0 {
		t.Fatalf("EI above incumbent = %v", ei)
	}
	// Variance creates hope even above the incumbent.
	if ei := ExpectedImprovement(11, 4, 10); ei <= 0 {
		t.Fatalf("EI with uncertainty = %v, want > 0", ei)
	}
}

// Property: EI is non-negative and increases with variance.
func TestEIMonotoneInVariance(t *testing.T) {
	f := func(m, tau float64) bool {
		mean := math.Mod(math.Abs(nz(m)), 100)
		incumbent := math.Mod(math.Abs(nz(tau)), 100)
		lo := ExpectedImprovement(mean, 1, incumbent)
		hi := ExpectedImprovement(mean, 9, incumbent)
		return lo >= 0 && hi >= lo-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func nz(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return v
}

func TestRunBootstrapsWithPaperLHS(t *testing.T) {
	ev := tune.NewEvaluator(cluster.A(), workload.SVM(), 1)
	res := Run(ev, Options{Seed: 1, UsePaperLHS: true, MaxIterations: 2, MinNewSamples: 1}, nil)
	if !res.Found {
		t.Fatal("no best found")
	}
	if ev.Evals() < 4 {
		t.Fatalf("bootstrap missing: %d evals", ev.Evals())
	}
	hist := ev.History()
	want := tune.PaperLHS(ev.Space)
	for i := range want {
		if hist[i].Config != want[i] {
			t.Fatalf("bootstrap sample %d = %v, want %v", i, hist[i].Config, want[i])
		}
	}
}

func TestRunImprovesOnDefault(t *testing.T) {
	ev := tune.NewEvaluator(cluster.A(), workload.SVM(), 2)
	def := ev.Eval(ev.Space.Default())
	res := Run(ev, Options{Seed: 2, UsePaperLHS: true}, nil)
	if !res.Found {
		t.Fatal("no best")
	}
	if res.Best.Objective > def.Objective {
		t.Fatalf("BO best %v worse than default %v", res.Best.Objective, def.Objective)
	}
}

func TestCurveIsMonotone(t *testing.T) {
	ev := tune.NewEvaluator(cluster.A(), workload.WordCount(), 3)
	res := Run(ev, Options{Seed: 3}, nil)
	prev := math.Inf(1)
	for i, v := range res.Curve {
		if v > prev+1e-9 {
			t.Fatalf("best-so-far curve rose at %d: %v > %v", i, v, prev)
		}
		prev = v
	}
	if len(res.Curve) != ev.Evals() {
		t.Fatalf("curve length %d != evals %d", len(res.Curve), ev.Evals())
	}
}

func TestStoppingRuleBoundsIterations(t *testing.T) {
	ev := tune.NewEvaluator(cluster.A(), workload.SVM(), 4)
	res := Run(ev, Options{Seed: 4, MaxIterations: 6, MinNewSamples: 2}, nil)
	if res.Iterations > 6 {
		t.Fatalf("iteration cap exceeded: %d", res.Iterations)
	}
	if ev.Evals() > 4+6 {
		t.Fatalf("evaluations exceeded bootstrap+cap: %d", ev.Evals())
	}
}

func TestExtraFeaturesAreConsulted(t *testing.T) {
	ev := tune.NewEvaluator(cluster.A(), workload.KMeans(), 5)
	calls := 0
	res := Run(ev, Options{Seed: 5, MaxIterations: 3, MinNewSamples: 1},
		func(x []float64, cfg conf.Config) []float64 {
			calls++
			return []float64{cfg.CacheCapacity}
		})
	if calls == 0 {
		t.Fatal("Extra hook never consulted")
	}
	if !res.Found {
		t.Fatal("run with extra features found nothing")
	}
}

func TestPenaltyShapesAcquisition(t *testing.T) {
	// A penalty that forbids most of the space should still leave the
	// optimizer functional.
	ev := tune.NewEvaluator(cluster.A(), workload.SVM(), 6)
	res := Run(ev, Options{Seed: 6, MaxIterations: 4, MinNewSamples: 1}, nil,
		func(x []float64, _ conf.Config) float64 {
			if x[0] > 0.5 {
				return 0.01
			}
			return 1
		})
	if !res.Found {
		t.Fatal("penalized run found nothing")
	}
}

func TestRFSurrogateDropIn(t *testing.T) {
	// Fit override is exercised in the rf package tests via Options.Fit;
	// here verify a trivial constant surrogate is accepted.
	ev := tune.NewEvaluator(cluster.A(), workload.WordCount(), 7)
	res := Run(ev, Options{
		Seed: 7, MaxIterations: 3, MinNewSamples: 1,
		Fit: func(xs [][]float64, ys []float64) (Surrogate, error) {
			return constSurrogate{mean: avg(ys)}, nil
		},
	}, nil)
	if !res.Found {
		t.Fatal("custom surrogate run found nothing")
	}
}

type constSurrogate struct{ mean float64 }

func (c constSurrogate) Predict([]float64) (float64, float64) { return c.mean, 1 }

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
