package bo

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"time"

	"relm/internal/conf"
	"relm/internal/profile"
	"relm/internal/tune"
)

// PriorPoint is one observation carried over from a previous tuning session;
// it participates in the surrogate fit but costs no new experiment.
type PriorPoint struct {
	X   []float64
	Cfg conf.Config
	Y   float64
}

// RepoEntry is a persisted tuning session: the workload's fingerprint (the
// Table 6 statistics measured on the default configuration) plus the
// observations the optimizer collected. As the paper notes (Table 10), a BO
// "model" is its training data, so this is the entire saved state.
type RepoEntry struct {
	Workload    string
	ClusterName string
	Fingerprint profile.Stats
	// DefaultSec is the default-configuration runtime, used to rescale
	// observations between workloads of different magnitudes.
	DefaultSec float64
	Points     []PriorPoint

	// Lifecycle bookkeeping for capacity eviction: Hits counts warm-start
	// matches this entry served, AddedAt is when it was harvested, and
	// LastUsed is the later of AddedAt and its latest match. Zero values
	// (entries saved before this bookkeeping existed) rank as never used.
	Hits     uint64    `json:",omitempty"`
	AddedAt  time.Time `json:",omitzero"`
	LastUsed time.Time `json:",omitzero"`
}

// Repository implements the OtterTune-style model re-use of §6.6: workloads
// are matched by the distance between their performance fingerprints, and a
// matched workload's observations warm-start the optimizer. The paper notes
// (and this implementation inherits) that saved regression models cannot be
// adapted across hardware changes — Match refuses entries from a different
// cluster.
type Repository struct {
	Entries []RepoEntry
}

// Add stores a completed tuning session.
func (r *Repository) Add(workload, clusterName string, fp profile.Stats, defaultSec float64, history []tune.Sample) {
	e := RepoEntry{
		Workload:    workload,
		ClusterName: clusterName,
		Fingerprint: fp,
		DefaultSec:  defaultSec,
	}
	for _, s := range history {
		e.Points = append(e.Points, PriorPoint{
			X:   append([]float64(nil), s.X...),
			Cfg: s.Config,
			Y:   s.Objective,
		})
	}
	r.Entries = append(r.Entries, e)
}

// Touch records a warm-start match served by entry e at time now.
func (e *RepoEntry) Touch(now time.Time) {
	e.Hits++
	if now.After(e.LastUsed) {
		e.LastUsed = now
	}
}

// EvictDown removes the lowest-ranked entries until the repository holds at
// most capacity, returning the evicted entries. Ranking is LRU refined by
// usefulness: the least-recently-used entry goes first, ties broken by
// fewer hits, then by age (older first). capacity <= 0 means unbounded.
func (r *Repository) EvictDown(capacity int) []RepoEntry {
	if capacity <= 0 || len(r.Entries) <= capacity {
		return nil
	}
	worse := func(a, b *RepoEntry) bool {
		if !a.LastUsed.Equal(b.LastUsed) {
			return a.LastUsed.Before(b.LastUsed)
		}
		if a.Hits != b.Hits {
			return a.Hits < b.Hits
		}
		return a.AddedAt.Before(b.AddedAt)
	}
	var evicted []RepoEntry
	for len(r.Entries) > capacity {
		victim := 0
		for i := 1; i < len(r.Entries); i++ {
			if worse(&r.Entries[i], &r.Entries[victim]) {
				victim = i
			}
		}
		evicted = append(evicted, r.Entries[victim])
		r.Entries = append(r.Entries[:victim], r.Entries[victim+1:]...)
	}
	return evicted
}

// FingerprintDistance is the Euclidean distance between two Table 6
// fingerprints over the scale-free statistics (utilizations, pool fractions
// of heap, hit and spill ratios). Re-profiles of one workload land within
// ~0.05 of each other; different workload classes differ by 0.5 or more
// (a cache-heavy app and a shuffle-only app disagree on whole dimensions).
func FingerprintDistance(a, b profile.Stats) float64 {
	av, bv := fingerprintVector(a), fingerprintVector(b)
	var s float64
	for i := range av {
		d := av[i] - bv[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// FingerprintVector returns the scale-free fingerprint coordinates of a
// Table 6 statistics record (the space FingerprintDistance measures in);
// the repository inspection endpoint exposes it.
func FingerprintVector(st profile.Stats) []float64 { return fingerprintVector(st) }

func fingerprintVector(st profile.Stats) []float64 {
	mh := st.MhMB
	if mh <= 0 {
		mh = 1
	}
	return []float64{
		st.CPUAvg,
		st.DiskAvg,
		st.MiMB / mh,
		st.McMB / mh,
		st.MsMB / mh,
		st.MuMB / mh,
		st.H,
		st.S,
	}
}

// RescaledPoints returns the entry's observations as prior points for a
// new session whose default-configuration runtime is defaultSec:
// objectives are multiplied by the ratio of default runtimes, bridging
// workload-magnitude differences; the scale is 1 when either runtime is
// unknown.
func (e *RepoEntry) RescaledPoints(defaultSec float64) []PriorPoint {
	scale := 1.0
	if e.DefaultSec > 0 && defaultSec > 0 {
		scale = defaultSec / e.DefaultSec
	}
	points := make([]PriorPoint, 0, len(e.Points))
	for _, p := range e.Points {
		points = append(points, PriorPoint{X: p.X, Cfg: p.Cfg, Y: p.Y * scale})
	}
	return points
}

// Match returns the closest same-cluster entry and its distance; ok is false
// when the repository holds no candidate within maxDistance.
func (r *Repository) Match(clusterName string, fp profile.Stats, maxDistance float64) (*RepoEntry, float64, bool) {
	var best *RepoEntry
	bestD := math.Inf(1)
	for i := range r.Entries {
		e := &r.Entries[i]
		if e.ClusterName != clusterName {
			continue // saved models do not transfer across hardware (§6.6)
		}
		if d := FingerprintDistance(e.Fingerprint, fp); d < bestD {
			best, bestD = e, d
		}
	}
	if best == nil || bestD > maxDistance {
		return nil, bestD, false
	}
	return best, bestD, true
}

// Save serializes the repository.
func (r *Repository) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(r)
}

// LoadRepository reads a repository written by Save.
func LoadRepository(rd io.Reader) (*Repository, error) {
	var r Repository
	if err := gob.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bo: load repository: %w", err)
	}
	return &r, nil
}

// RunWithReuse profiles the workload once on the default configuration,
// matches it against the repository, and — on a hit — warm-starts the
// optimizer with the matched session's observations rescaled by the ratio
// of default runtimes. On a miss it falls back to a cold-start Run. The
// completed session is added to the repository either way.
func RunWithReuse(ev *tune.Evaluator, opts Options, repo *Repository, maxDistance float64) (Result, bool) {
	def := ev.Space.Default()
	s := ev.Eval(def)
	fp := profile.Generate(s.Profile)

	reused := false
	if entry, _, ok := repo.Match(ev.Cluster.Name, fp, maxDistance); ok {
		opts.Prior = entry.RescaledPoints(s.RuntimeSec)
		// The warm start replaces most of the bootstrap, and a trusted prior
		// shortens the adaptive phase: the session only needs to confirm and
		// locally refine the matched model's optimum.
		opts.InitSamples = 1
		opts.UsePaperLHS = false
		if opts.MaxIterations == 0 || opts.MaxIterations > 6 {
			opts.MaxIterations = 6
		}
		if opts.MinNewSamples == 0 || opts.MinNewSamples > 3 {
			opts.MinNewSamples = 3
		}
		reused = true
	}

	res := Run(ev, opts, nil)
	if !s.Result.Aborted && (!res.Found || s.Objective < res.Best.Objective) {
		res.Best, res.Found = s, true
	}
	repo.Add(ev.Workload.Name, ev.Cluster.Name, fp, s.RuntimeSec, ev.History())
	return res, reused
}
