package bo

import (
	"bytes"
	"testing"
	"time"

	"relm/internal/profile"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/tune"
)

func fingerprint(t *testing.T, wlName string, seed uint64) (profile.Stats, *tune.Evaluator) {
	t.Helper()
	wl, ok := workload.ByName(wlName)
	if !ok {
		t.Fatalf("workload %s", wlName)
	}
	ev := tune.NewEvaluator(cluster.A(), wl, seed)
	s := ev.Eval(ev.Space.Default())
	return profile.Generate(s.Profile), ev
}

func TestFingerprintDistanceProperties(t *testing.T) {
	svm, _ := fingerprint(t, "SVM", 1)
	svm2, _ := fingerprint(t, "SVM", 2)
	wc, _ := fingerprint(t, "WordCount", 3)

	if d := FingerprintDistance(svm, svm); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	same := FingerprintDistance(svm, svm2)
	diff := FingerprintDistance(svm, wc)
	if same >= diff {
		t.Fatalf("same workload must be closer than a different one: %v vs %v", same, diff)
	}
}

func TestRepositoryMatch(t *testing.T) {
	repo := &Repository{}
	svm, evSVM := fingerprint(t, "SVM", 1)
	km, _ := fingerprint(t, "K-means", 2)
	repo.Add("SVM", "A", svm, 500, evSVM.History())
	repo.Add("K-means", "A", km, 1100, nil)

	probe, _ := fingerprint(t, "SVM", 9)
	entry, d, ok := repo.Match("A", probe, 0.5)
	if !ok || entry.Workload != "SVM" {
		t.Fatalf("match = %v (d=%v)", entry, d)
	}
	// Hardware changes invalidate saved models (§6.6).
	if _, _, ok := repo.Match("B", probe, 0.5); ok {
		t.Fatal("cross-cluster match must be refused")
	}
	// An impossible distance bound yields no match.
	if _, _, ok := repo.Match("A", probe, 1e-9); ok {
		t.Fatal("tight bound should refuse")
	}
}

func TestRepositorySaveLoad(t *testing.T) {
	repo := &Repository{}
	svm, ev := fingerprint(t, "SVM", 4)
	repo.Add("SVM", "A", svm, 480, ev.History())

	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Entries) != 1 || loaded.Entries[0].Workload != "SVM" {
		t.Fatalf("loaded %+v", loaded.Entries)
	}
	if len(loaded.Entries[0].Points) != len(ev.History()) {
		t.Fatal("points lost in round trip")
	}
}

func TestLoadRepositoryRejectsGarbage(t *testing.T) {
	if _, err := LoadRepository(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunWithReuseWarmStart(t *testing.T) {
	wl, _ := workload.ByName("SVM")
	repo := &Repository{}

	// Session 1: cold start fills the repository.
	ev1 := tune.NewEvaluator(cluster.A(), wl, 10)
	res1, reused1 := RunWithReuse(ev1, Options{Seed: 10, MaxIterations: 6, MinNewSamples: 2}, repo, 0.3)
	if reused1 {
		t.Fatal("first session cannot re-use")
	}
	if !res1.Found || len(repo.Entries) != 1 {
		t.Fatal("session not recorded")
	}
	coldEvals := ev1.Evals()

	// Session 2: the same workload matches and warm-starts.
	ev2 := tune.NewEvaluator(cluster.A(), wl, 11)
	res2, reused2 := RunWithReuse(ev2, Options{Seed: 11, MaxIterations: 6, MinNewSamples: 2}, repo, 0.3)
	if !reused2 {
		t.Fatal("second session should re-use the model")
	}
	if !res2.Found {
		t.Fatal("warm-started session found nothing")
	}
	// Warm start replaces the 4-sample bootstrap with a single probe, so the
	// second session must use fewer experiments than the first's bootstrap
	// would imply.
	if ev2.Evals() > coldEvals {
		t.Fatalf("warm session used %d evals vs cold %d", ev2.Evals(), coldEvals)
	}
	if len(repo.Entries) != 2 {
		t.Fatal("second session not recorded")
	}
}

func TestPriorPointsNeverBecomeIncumbent(t *testing.T) {
	wl, _ := workload.ByName("WordCount")
	ev := tune.NewEvaluator(cluster.A(), wl, 12)
	// A fake prior claiming an absurdly good objective must not be returned
	// as the best sample.
	prior := []PriorPoint{{
		X:   []float64{0.5, 0.5, 0.5, 0.5},
		Cfg: ev.Space.Decode([]float64{0.5, 0.5, 0.5, 0.5}),
		Y:   0.001,
	}}
	res := Run(ev, Options{Seed: 12, MaxIterations: 2, MinNewSamples: 1, Prior: prior}, nil)
	if !res.Found {
		t.Fatal("no best")
	}
	if res.Best.Objective <= 0.01 {
		t.Fatal("a prior point leaked into the incumbent")
	}
}

// TestRepositoryEviction: EvictDown ranks least-recently-used first, with
// hit count and age as tie breaks, and never evicts below capacity.
func TestRepositoryEviction(t *testing.T) {
	at := func(sec int64) time.Time { return time.Unix(sec, 0) }
	repo := &Repository{Entries: []RepoEntry{
		{Workload: "old-unused", AddedAt: at(10), LastUsed: at(10)},
		{Workload: "hot", AddedAt: at(20), LastUsed: at(20)},
		{Workload: "cold", AddedAt: at(30), LastUsed: at(30)},
		{Workload: "fresh", AddedAt: at(40), LastUsed: at(40)},
	}}
	// Matching "hot" refreshes its recency and hit count.
	repo.Entries[1].Touch(at(100))
	if repo.Entries[1].Hits != 1 || !repo.Entries[1].LastUsed.Equal(at(100)) {
		t.Fatalf("touch bookkeeping: %+v", repo.Entries[1])
	}

	if ev := repo.EvictDown(4); ev != nil {
		t.Fatalf("eviction below capacity: %+v", ev)
	}
	if ev := repo.EvictDown(0); ev != nil {
		t.Fatalf("capacity 0 must mean unbounded, evicted %+v", ev)
	}
	evicted := repo.EvictDown(2)
	if len(evicted) != 2 || evicted[0].Workload != "old-unused" || evicted[1].Workload != "cold" {
		t.Fatalf("evicted %+v, want old-unused then cold (LRU order)", evicted)
	}
	var left []string
	for _, e := range repo.Entries {
		left = append(left, e.Workload)
	}
	if len(left) != 2 || left[0] != "hot" || left[1] != "fresh" {
		t.Fatalf("survivors = %v, want [hot fresh]", left)
	}

	// Same recency: fewer hits goes first.
	repo2 := &Repository{Entries: []RepoEntry{
		{Workload: "a", AddedAt: at(1), LastUsed: at(50), Hits: 3},
		{Workload: "b", AddedAt: at(2), LastUsed: at(50), Hits: 1},
	}}
	if ev := repo2.EvictDown(1); len(ev) != 1 || ev[0].Workload != "b" {
		t.Fatalf("hit-count tie break failed: %+v", ev)
	}
}
