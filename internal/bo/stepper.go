package bo

import (
	"math"
	"time"

	"relm/internal/conf"
	"relm/internal/gp"
	"relm/internal/simrand"
	"relm/internal/tune"
)

// Tuner is the incremental (steppable) form of Bayesian Optimization: the
// Run loop inverted behind the unified tune.Tuner interface. The caller
// drives the suggest/observe cycle, so observations may come from the
// simulator, from a remote client reporting real measurements, or from a
// replayed history. The next suggestion and the stopping decision are
// computed eagerly after each observation, reproducing Run's exact
// fit/acquisition sequence (and therefore its results) when driven in
// lockstep.
type Tuner struct {
	sp    tune.Space
	opts  Options
	extra Extra
	pen   Penalty
	rng   *simrand.Rand
	sur   gp.Surrogate // the response-surface model (exact GP, sparse GP, or override)

	queue []conf.Config // bootstrap configurations not yet suggested

	seen  map[conf.Config]bool
	rawXs [][]float64
	cfgs  []conf.Config
	ys    []float64

	best  tune.Sample
	found bool
	curve []float64
	model Surrogate

	// Reusable per-session buffers: the feature matrix rebuilt each round
	// and the acquisition scratch. Sessions own their Tuner exclusively, so
	// concurrent sessions never contend on these.
	featRows [][]float64
	featYs   []float64
	featFlat []float64
	featOffs []int
	acq      acqScratch

	newSamples      int
	pending         *conf.Config
	pendingAdaptive bool
	done            bool
}

var _ tune.Tuner = (*Tuner)(nil)

// NewTuner builds an incremental Bayesian optimizer over a configuration
// space. extra and penalty may be nil (vanilla BO); package gbo supplies
// them to obtain guided BO.
func NewTuner(sp tune.Space, opts Options, extra Extra, penalty Penalty) *Tuner {
	opts.fill()
	t := &Tuner{
		sp:    sp,
		opts:  opts,
		extra: extra,
		pen:   penalty,
		rng:   simrand.New(opts.Seed ^ 0x9e3779b97f4a7c15),
		seen:  map[conf.Config]bool{},
	}

	if opts.UsePaperLHS {
		t.queue = append(t.queue, tune.PaperLHS(sp)...)
	} else {
		for _, x := range tune.LatinHypercube(t.rng, opts.InitSamples, sp.Dim()) {
			t.queue = append(t.queue, sp.Decode(x))
		}
	}

	t.sur = opts.Surrogate.Model
	if t.sur == nil {
		// Default surrogate: a hyperparameter-tuned GP (grid + ARD gradient
		// ascent) absorbing new observations through O(n²) appends, with
		// re-selection throttled to the RefitEvery/RefitDrift schedule. A
		// positive Budget swaps in the budgeted sparse variant, which
		// compresses the active set so long sessions keep m-point cost.
		sc := opts.Surrogate
		if sc.Budget > 0 {
			t.sur = &gp.Sparse{
				Kind:       sc.Kernel,
				BaseDims:   sp.Dim(),
				Budget:     sc.Budget,
				RefitEvery: sc.RefitEvery,
				LMLDrift:   sc.RefitDrift,
				ARDIters:   sc.ARDIters,
				AppendHist: opts.SurrogateAppendHist,
				RefitHist:  opts.SurrogateRefitHist,
			}
		} else {
			t.sur = &gp.Incremental{
				Kind:       sc.Kernel,
				BaseDims:   sp.Dim(),
				RefitEvery: sc.RefitEvery,
				LMLDrift:   sc.RefitDrift,
				ARDIters:   sc.ARDIters,
				AppendHist: opts.SurrogateAppendHist,
				RefitHist:  opts.SurrogateRefitHist,
			}
		}
	}

	// Prior observations (model re-use) mark their configurations as seen
	// so the acquisition proposes genuinely new points.
	for _, p := range opts.Surrogate.Prior {
		t.seen[p.Cfg] = true
	}

	t.advance()
	return t
}

// WarmStart seeds the optimizer with prior observations transferred from a
// matched repository entry (§6.6 model re-use), replacing any prior set at
// construction. The trusted prior replaces the bootstrap: the next
// suggestion becomes a single confirmation run of the prior's best
// configuration, the rest of the bootstrap queue is dropped, and the
// adaptive phase is tightened the same way RunWithReuse tightens a batch
// session (at most 6 new iterations, stopping rule armed after 3). Call it
// before the first observation; the service applies it at session creation
// or, for auto sessions, right after the fingerprinting run.
func (t *Tuner) WarmStart(points []PriorPoint) {
	if len(points) == 0 {
		return
	}
	t.opts.Surrogate.Prior = append([]PriorPoint(nil), points...)
	t.opts.Prior = t.opts.Surrogate.Prior
	best := points[0]
	for _, p := range points {
		t.seen[p.Cfg] = true
		if p.Y < best.Y {
			best = p
		}
	}
	t.queue = nil
	if !t.done {
		cfg := best.Cfg
		t.pending, t.pendingAdaptive = &cfg, false
	}
	if t.opts.MaxIterations > 6 {
		t.opts.MaxIterations = 6
	}
	if t.opts.MinNewSamples > 3 {
		t.opts.MinNewSamples = 3
	}
}

// buildFeatures assembles the surrogate's (features, targets) matrix —
// prior observations first, then measured samples — into buffers reused
// across rounds. Without an Extra hook the normalized knob vectors are
// their own feature rows; with one, combined rows are packed into a flat
// buffer and row views are built only after it stops growing.
func (t *Tuner) buildFeatures() ([][]float64, []float64) {
	rows := t.featRows[:0]
	ys := t.featYs[:0]
	prior := t.opts.Surrogate.Prior
	if t.extra == nil {
		for i := range prior {
			rows = append(rows, prior[i].X)
			ys = append(ys, prior[i].Y)
		}
		rows = append(rows, t.rawXs...)
		ys = append(ys, t.ys...)
	} else {
		flat := t.featFlat[:0]
		offs := t.featOffs[:0]
		add := func(x []float64, cfg conf.Config, y float64) {
			offs = append(offs, len(flat))
			flat = append(flat, x...)
			flat = append(flat, t.extra(x, cfg)...)
			ys = append(ys, y)
		}
		for _, p := range prior {
			add(p.X, p.Cfg, p.Y)
		}
		for i := range t.rawXs {
			add(t.rawXs[i], t.cfgs[i], t.ys[i])
		}
		offs = append(offs, len(flat))
		for i := 0; i+1 < len(offs); i++ {
			rows = append(rows, flat[offs[i]:offs[i+1]])
		}
		t.featFlat, t.featOffs = flat, offs
	}
	t.featRows, t.featYs = rows, ys
	return rows, ys
}

// SurrogateStats reports the surrogate's cumulative hyperparameter
// selections and incremental appends — the observability hook for tests and
// service metrics. SurrogateInfo carries the full counter set.
func (t *Tuner) SurrogateStats() (fits, appends int) {
	st := t.sur.Stats()
	return st.Fits, st.Appends
}

// SurrogateInfo reports the surrogate's full work counters, including the
// compactions a budgeted model performed to stay within its point cap.
func (t *Tuner) SurrogateInfo() gp.SurrogateStats { return t.sur.Stats() }

// advance computes the next suggestion or fires the stopping rule. It is
// called from the constructor and after every observation, mirroring one
// head-of-loop pass of the batch driver: bound the adaptive samples, fit
// the surrogate, maximize the acquisition, and apply the CherryPick rule.
func (t *Tuner) advance() {
	if t.done || t.pending != nil {
		return
	}
	if len(t.queue) > 0 {
		cfg := t.queue[0]
		t.queue = t.queue[1:]
		t.pending, t.pendingAdaptive = &cfg, false
		return
	}
	if t.newSamples >= t.opts.MaxIterations {
		t.done = true
		return
	}

	// Feature vectors are rebuilt each round so an Extra that matured
	// after the first profile applies to the bootstrap samples too. The
	// incremental surrogate reconciles: it appends only the new tail when
	// the prefix is unchanged and refits when features shifted under it.
	feats, fitYs := t.buildFeatures()
	if err := t.sur.SetData(feats, fitYs); err != nil {
		t.done = true
		return
	}
	t.model = surrogateModel{s: t.sur}

	// The incumbent for the EI criterion includes (rescaled) prior
	// observations: with a trusted warm start, marginal improvements over
	// what the prior already located are not worth new experiments.
	tau := bestObjective(t.ys)
	for _, p := range t.opts.Surrogate.Prior {
		if p.Y < tau {
			tau = p.Y
		}
	}
	var acqStart time.Time
	if t.opts.AcquisitionHist != nil {
		acqStart = time.Now()
	}
	x, ei := t.maximizeEI(t.sur, tau)
	if !acqStart.IsZero() {
		t.opts.AcquisitionHist.Record(time.Since(acqStart))
	}
	if x == nil {
		t.done = true
		return
	}
	// Stopping rule: enough new samples and the expected improvement is
	// marginal relative to the incumbent.
	if t.newSamples >= t.opts.MinNewSamples && ei < t.opts.EIFraction*tau {
		t.done = true
		return
	}
	cfg := t.sp.Decode(x)
	t.pending, t.pendingAdaptive = &cfg, true
}

// Suggest returns the next configuration to measure (stable until the next
// Observe). After Done it returns the best known configuration.
func (t *Tuner) Suggest() conf.Config {
	if t.pending != nil {
		return *t.pending
	}
	if t.found {
		return t.best.Config
	}
	return t.sp.Default()
}

// Observe incorporates one measured sample and eagerly prepares the next
// suggestion. Samples with no normalized coordinates or objective (remote
// observations) are completed from Config and RuntimeSec. An unsolicited
// observation — one that doesn't match the outstanding suggestion — joins
// the surrogate's data but leaves the suggestion pending, so bootstrap
// design points are never silently dropped.
func (t *Tuner) Observe(s tune.Sample) {
	if s.X == nil {
		s.X = t.sp.Encode(s.Config)
	}
	if s.Objective <= 0 {
		s.Objective = s.RuntimeSec
	}
	wasAdaptive := false
	if t.pending != nil && s.Config == *t.pending {
		wasAdaptive = t.pendingAdaptive
		t.pending, t.pendingAdaptive = nil, false
	}

	t.seen[s.Config] = true
	t.rawXs = append(t.rawXs, s.X)
	t.cfgs = append(t.cfgs, s.Config)
	t.ys = append(t.ys, s.Objective)
	if !s.Result.Aborted && (!t.found || s.Objective < t.best.Objective) {
		t.best, t.found = s, true
	}
	cur := math.Inf(1)
	if t.found {
		cur = t.best.Objective
	}
	t.curve = append(t.curve, cur)
	if wasAdaptive {
		t.newSamples++
	}
	t.advance()
}

// Best returns the incumbent non-aborted sample.
func (t *Tuner) Best() (tune.Sample, bool) { return t.best, t.found }

// Done reports whether the stopping rule has fired.
func (t *Tuner) Done() bool { return t.done }

// Result assembles the batch-style report from the steps taken so far.
func (t *Tuner) Result() Result {
	return Result{
		Best:       t.best,
		Found:      t.found,
		Iterations: t.newSamples,
		Curve:      append([]float64(nil), t.curve...),
		FinalModel: t.model,
	}
}
