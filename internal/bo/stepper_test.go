package bo

import (
	"math"
	"testing"

	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/tune"
)

// TestStepperMatchesBatchRun drives the incremental Tuner by hand and
// checks it reproduces Run exactly — same evaluation sequence, same best,
// same curve.
func TestStepperMatchesBatchRun(t *testing.T) {
	cl := cluster.A()
	wl, _ := workload.ByName("K-means")
	opts := Options{Seed: 5, MaxIterations: 4, MinNewSamples: 2}

	evBatch := tune.NewEvaluator(cl, wl, 9)
	batch := Run(evBatch, opts, nil)

	evStep := tune.NewEvaluator(cl, wl, 9)
	st := NewTuner(evStep.Space, opts, nil, nil)
	for !st.Done() {
		cfg := st.Suggest()
		if again := st.Suggest(); again != cfg {
			t.Fatalf("Suggest not stable: %v then %v", cfg, again)
		}
		st.Observe(evStep.Eval(cfg))
	}
	inc := st.Result()

	if !inc.Found || !batch.Found {
		t.Fatalf("found: inc=%v batch=%v", inc.Found, batch.Found)
	}
	if inc.Best.Config != batch.Best.Config {
		t.Fatalf("best diverged: %v vs %v", inc.Best.Config, batch.Best.Config)
	}
	if inc.Iterations != batch.Iterations {
		t.Fatalf("iterations: %d vs %d", inc.Iterations, batch.Iterations)
	}
	if len(inc.Curve) != len(batch.Curve) {
		t.Fatalf("curve lengths: %d vs %d", len(inc.Curve), len(batch.Curve))
	}
	for i := range inc.Curve {
		if inc.Curve[i] != batch.Curve[i] && !(math.IsInf(inc.Curve[i], 1) && math.IsInf(batch.Curve[i], 1)) {
			t.Fatalf("curve[%d]: %v vs %v", i, inc.Curve[i], batch.Curve[i])
		}
	}

	// Histories must match experiment by experiment.
	hb, hs := evBatch.History(), evStep.History()
	if len(hb) != len(hs) {
		t.Fatalf("history lengths: %d vs %d", len(hb), len(hs))
	}
	for i := range hb {
		if hb[i].Config != hs[i].Config {
			t.Fatalf("experiment %d diverged: %v vs %v", i, hb[i].Config, hs[i].Config)
		}
	}
}

// TestStepperUnsolicitedObserveKeepsSuggestion: an observation that doesn't
// match the outstanding suggestion joins the data but must not consume the
// suggestion — bootstrap design points are never dropped.
func TestStepperUnsolicitedObserveKeepsSuggestion(t *testing.T) {
	cl := cluster.A()
	wl, _ := workload.ByName("K-means")
	sp := tune.NewSpace(cl, wl)
	st := NewTuner(sp, Options{Seed: 1}, nil, nil)

	suggested := st.Suggest()
	other := sp.Build(3, 2, 0.3, 5)
	if other == suggested {
		other = sp.Build(4, 1, 0.7, 2)
	}
	st.Observe(tune.Sample{Config: other, RuntimeSec: 140})
	if got := st.Suggest(); got != suggested {
		t.Fatalf("unsolicited observe consumed the suggestion: %v -> %v", suggested, got)
	}
	st.Observe(tune.Sample{Config: suggested, RuntimeSec: 120})
	if got := st.Suggest(); got == suggested {
		t.Fatal("matching observe did not advance the suggestion")
	}
}

// TestStepperRemoteObservations drives the tuner with plain runtime
// reports — no simulator Result, X, or Objective — as a remote client
// would, and checks it still converges to a best.
func TestStepperRemoteObservations(t *testing.T) {
	cl := cluster.A()
	wl, _ := workload.ByName("SVM")
	sp := tune.NewSpace(cl, wl)
	st := NewTuner(sp, Options{Seed: 2, MaxIterations: 3, MinNewSamples: 1}, nil, nil)

	for i := 0; !st.Done() && i < 20; i++ {
		cfg := st.Suggest()
		st.Observe(tune.Sample{Config: cfg, RuntimeSec: 100 + 13*math.Sin(float64(i))})
	}
	if !st.Done() {
		t.Fatal("never finished")
	}
	best, ok := st.Best()
	if !ok || best.Objective <= 0 {
		t.Fatalf("best: ok=%v %+v", ok, best)
	}
}

// TestWarmStartSeedsStepper: a warm-started stepper suggests the prior's
// best configuration first (a confirmation run of the transferred
// optimum), drops the rest of the bootstrap, and stops in fewer
// evaluations than a cold session, with the prior joining the surrogate.
func TestWarmStartSeedsStepper(t *testing.T) {
	cl := cluster.A()
	wl, _ := workload.ByName("K-means")
	opts := Options{Seed: 5}

	evCold := tune.NewEvaluator(cl, wl, 9)
	cold := NewTuner(evCold.Space, opts, nil, nil)
	for !cold.Done() {
		cold.Observe(evCold.Eval(cold.Suggest()))
	}
	coldEvals := evCold.Evals()
	coldBest, ok := cold.Best()
	if !ok {
		t.Fatal("cold session found no incumbent")
	}

	prior := make([]PriorPoint, 0, coldEvals)
	for _, s := range evCold.History() {
		prior = append(prior, PriorPoint{X: s.X, Cfg: s.Config, Y: s.Objective})
	}

	evWarm := tune.NewEvaluator(cl, wl, 9)
	warm := NewTuner(evWarm.Space, opts, nil, nil)
	warm.WarmStart(prior)
	if got := warm.Suggest(); got != coldBest.Config {
		t.Fatalf("first warm suggestion = %+v, want transferred optimum %+v", got, coldBest.Config)
	}
	for !warm.Done() {
		warm.Observe(evWarm.Eval(warm.Suggest()))
	}
	if evWarm.Evals() >= coldEvals {
		t.Fatalf("warm start took %d evals, cold took %d — no savings", evWarm.Evals(), coldEvals)
	}
	warmBest, ok := warm.Best()
	if !ok {
		t.Fatal("warm session found no incumbent")
	}
	// The confirmation run re-measures the transferred optimum, so the warm
	// incumbent is at worst a re-draw of the cold one (simulator noise).
	if warmBest.Objective > coldBest.Objective*1.25 {
		t.Fatalf("warm best %.1f much worse than cold best %.1f", warmBest.Objective, coldBest.Objective)
	}
}

// TestIncrementalSurrogateSchedule: on the default path the surrogate
// absorbs most observations through O(n²) appends, re-selecting
// hyperparameters only on the RefitEvery schedule — while RefitEvery=1
// restores a grid selection on every observation (and therefore records no
// net savings).
func TestIncrementalSurrogateSchedule(t *testing.T) {
	cl := cluster.A()
	wl, _ := workload.ByName("SVM")

	drive := func(opts Options, steps int) (fits, appends int) {
		ev := tune.NewEvaluator(cl, wl, 3)
		tn := NewTuner(ev.Space, opts, nil, nil)
		for i := 0; i < steps && !tn.Done(); i++ {
			tn.Observe(ev.Eval(tn.Suggest()))
		}
		return tn.SurrogateStats()
	}

	fits, appends := drive(Options{Seed: 7, MaxIterations: 30, MinNewSamples: 30, EIFraction: -1}, 24)
	if appends == 0 {
		t.Fatal("scheduled path recorded no incremental appends")
	}
	if fits >= appends {
		t.Fatalf("scheduled path: %d full fits vs %d appends — appends should dominate", fits, appends)
	}

	fits1, appends1 := drive(Options{Seed: 7, MaxIterations: 30, MinNewSamples: 30, EIFraction: -1, RefitEvery: 1}, 24)
	if appends1 != 0 {
		t.Fatalf("RefitEvery=1 must re-select every observation, got %d appends (%d fits)", appends1, fits1)
	}
	if fits1 == 0 {
		t.Fatal("RefitEvery=1 recorded no fits")
	}
}

// A custom surrogate override (e.g. the Random-Forest ablation) bypasses
// the incremental GP entirely: the deprecated func override retrains from
// the full matrix on every data change, so the stats report one fit per
// round and no incremental appends.
func TestCustomFitBypassesIncrementalPath(t *testing.T) {
	cl := cluster.A()
	wl, _ := workload.ByName("K-means")
	ev := tune.NewEvaluator(cl, wl, 4)
	opts := Options{Seed: 9, MaxIterations: 2, MinNewSamples: 1,
		Fit: func(xs [][]float64, ys []float64) (Surrogate, error) {
			return constSurrogate{mean: 100}, nil
		}}
	tn := NewTuner(ev.Space, opts, nil, nil)
	rounds := 0
	for !tn.Done() {
		tn.Observe(ev.Eval(tn.Suggest()))
		rounds++
	}
	fits, appends := tn.SurrogateStats()
	if appends != 0 {
		t.Fatalf("func override has no incremental path, got %d appends", appends)
	}
	if fits == 0 || fits > rounds+1 {
		t.Fatalf("func override should retrain once per round: fits=%d rounds=%d", fits, rounds)
	}
}
