package bo

import (
	"math"

	"relm/internal/gp"
)

// fitSurrogate adapts the deprecated func-valued SurrogateFit override onto
// the gp.Surrogate interface: it keeps its own copy of the full observation
// matrix and retrains from scratch on every data change — the behavior the
// func override always had, now expressed through the same seam as the real
// models.
type fitSurrogate struct {
	fn    SurrogateFit
	xs    [][]float64
	ys    []float64
	model Surrogate
	stats gp.SurrogateStats
}

var _ gp.Surrogate = (*fitSurrogate)(nil)

func (f *fitSurrogate) SetData(xs [][]float64, ys []float64) error {
	f.xs = f.xs[:0]
	for _, x := range xs {
		f.xs = append(f.xs, append([]float64(nil), x...))
	}
	f.ys = append(f.ys[:0], ys...)
	return f.retrain()
}

func (f *fitSurrogate) Append(x []float64, y float64) error {
	f.xs = append(f.xs, append([]float64(nil), x...))
	f.ys = append(f.ys, y)
	f.stats.Appends++
	return f.retrain()
}

func (f *fitSurrogate) retrain() error {
	m, err := f.fn(f.xs, f.ys)
	if err != nil {
		return err
	}
	f.model = m
	f.stats.Fits++
	return nil
}

func (f *fitSurrogate) PredictInto(x []float64, _ *gp.Scratch) (mean, variance float64) {
	if f.model == nil {
		return 0, 1
	}
	return f.model.Predict(x)
}

func (f *fitSurrogate) PredictBatch(xs [][]float64, means, vars []float64, _ *gp.Scratch) {
	for i, x := range xs {
		means[i], vars[i] = f.PredictInto(x, nil)
	}
}

func (f *fitSurrogate) LogMarginalLikelihood() float64 { return math.NaN() }

func (f *fitSurrogate) Stats() gp.SurrogateStats { return f.stats }

// surrogateModel exposes a gp.Surrogate through the legacy Predict-only
// Surrogate interface for Result.FinalModel consumers. Each Predict uses a
// fresh scratch, so the view is safe to share across goroutines (matching
// the old *gp.GP FinalModel).
type surrogateModel struct {
	s gp.Surrogate
}

func (m surrogateModel) Predict(x []float64) (mean, variance float64) {
	var sc gp.Scratch
	return m.s.PredictInto(x, &sc)
}
