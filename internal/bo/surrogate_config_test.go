package bo

import (
	"fmt"
	"testing"

	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/tune"
)

// Satellite acceptance: the deprecated flat Options fields are aliases of
// the nested SurrogateConfig — both spellings must fill to the same config
// and drive byte-identical sessions.
func TestFlatOptionsAliasNestedConfig(t *testing.T) {
	flat := Options{Seed: 3, Kernel: "matern52", RefitEvery: 5, RefitDrift: 0.1,
		Prior: []PriorPoint{{X: []float64{0.1, 0.2, 0.3, 0.4}, Y: 120}}}
	nested := Options{Seed: 3, Surrogate: SurrogateConfig{Kernel: "matern52", RefitEvery: 5, RefitDrift: 0.1,
		Prior: []PriorPoint{{X: []float64{0.1, 0.2, 0.3, 0.4}, Y: 120}}}}
	flat.fill()
	nested.fill()
	if flat.Surrogate.Kernel != nested.Surrogate.Kernel ||
		flat.Surrogate.RefitEvery != nested.Surrogate.RefitEvery ||
		flat.Surrogate.RefitDrift != nested.Surrogate.RefitDrift ||
		len(flat.Surrogate.Prior) != len(nested.Surrogate.Prior) {
		t.Fatalf("flat aliases filled differently:\nflat   %+v\nnested %+v", flat.Surrogate, nested.Surrogate)
	}
	// After fill the aliases read back the merged values.
	if flat.Kernel != "matern52" || nested.Kernel != "matern52" {
		t.Fatalf("aliases not synced back: flat=%q nested=%q", flat.Kernel, nested.Kernel)
	}
	// The nested field wins when both are set.
	both := Options{Kernel: "matern52", Surrogate: SurrogateConfig{Kernel: "rbf"}}
	both.fill()
	if both.Surrogate.Kernel != "rbf" || both.Kernel != "rbf" {
		t.Fatalf("nested kernel should win over the flat alias, got %q/%q", both.Surrogate.Kernel, both.Kernel)
	}
}

// Both spellings of the same surrogate configuration must drive identical
// sessions: same suggestions, same incumbent.
func TestFlatAndNestedOptionsDriveIdenticalSessions(t *testing.T) {
	cl := cluster.A()
	wl, _ := workload.ByName("K-means")

	run := func(opts Options) (best tune.Sample, trace []string) {
		ev := tune.NewEvaluator(cl, wl, 21)
		tn := NewTuner(ev.Space, opts, nil, nil)
		for i := 0; !tn.Done() && i < 40; i++ {
			cfg := tn.Suggest()
			trace = append(trace, fmt.Sprintf("%+v", cfg))
			tn.Observe(ev.Eval(cfg))
		}
		best, _ = tn.Best()
		return best, trace
	}

	flatBest, flatTrace := run(Options{Seed: 13, Kernel: "matern52", RefitEvery: 3})
	nestedBest, nestedTrace := run(Options{Seed: 13, Surrogate: SurrogateConfig{Kernel: "matern52", RefitEvery: 3}})
	if len(flatTrace) != len(nestedTrace) {
		t.Fatalf("session lengths diverged: %d vs %d", len(flatTrace), len(nestedTrace))
	}
	for i := range flatTrace {
		if flatTrace[i] != nestedTrace[i] {
			t.Fatalf("suggestion %d diverged:\nflat   %s\nnested %s", i, flatTrace[i], nestedTrace[i])
		}
	}
	if flatBest.Config != nestedBest.Config {
		t.Fatalf("best diverged: %+v vs %+v", flatBest.Config, nestedBest.Config)
	}
}

// Tentpole acceptance (bounded degradation): a session whose surrogate is
// compressed far below its observation count must still land an incumbent
// in the same league as the exact model — the budget trades a little
// incumbent quality for O(m²) cost, not convergence.
func TestBudgetedSurrogateBoundedDegradation(t *testing.T) {
	cl := cluster.A()
	wl, _ := workload.ByName("K-means")

	run := func(budget int) (best float64, compactions int) {
		ev := tune.NewEvaluator(cl, wl, 11)
		opts := Options{Seed: 11, MaxIterations: 40, MinNewSamples: 40, EIFraction: -1}
		opts.Surrogate.Budget = budget
		tn := NewTuner(ev.Space, opts, nil, nil)
		for i := 0; !tn.Done() && i < 60; i++ {
			tn.Observe(ev.Eval(tn.Suggest()))
		}
		b, ok := tn.Best()
		if !ok {
			t.Fatal("session found no incumbent")
		}
		return b.Objective, tn.SurrogateInfo().Compactions
	}

	exact, exactComp := run(0)
	sparse, sparseComp := run(12)
	if exactComp != 0 {
		t.Fatalf("exact surrogate recorded %d compactions", exactComp)
	}
	if sparseComp == 0 {
		t.Fatal("budgeted surrogate recorded no compactions despite n >> budget")
	}
	// Fixed seeds make both runs deterministic; the bound is the acceptance
	// criterion, not a statistical guess.
	if sparse > exact*1.5 {
		t.Fatalf("budgeted incumbent %.1f degraded past 1.5x the exact incumbent %.1f", sparse, exact)
	}
}
