// Package conf defines the memory-management configuration knobs tuned
// throughout the repository — the parameters of Table 1 in the paper:
//
//	Containers per Node  → how node memory is carved into containers
//	Task Concurrency     → execution slots per container
//	Cache Capacity       → cache storage as a fraction of heap
//	Shuffle Capacity     → shuffle memory as a fraction of heap
//	NewRatio             → Old:Young capacity ratio of the JVM heap
//	SurvivorRatio        → Eden:Survivor capacity ratio
//
// Heap Size is derived (node heap budget divided equally among containers),
// mirroring the paper's homogeneous-container enumeration.
package conf

import (
	"errors"
	"fmt"
)

// Config is one point in the memory-configuration space.
type Config struct {
	// ContainersPerNode is the number of homogeneous containers carved out
	// of one worker node (1..4 in the paper's evaluation).
	ContainersPerNode int
	// TaskConcurrency is the number of tasks running concurrently in one
	// container (execution slots).
	TaskConcurrency int
	// CacheCapacity is the fraction of heap reserved for cache storage.
	CacheCapacity float64
	// ShuffleCapacity is the fraction of heap reserved for shuffle memory.
	ShuffleCapacity float64
	// NewRatio is the JVM ParallelGC ratio of Old capacity to Young capacity.
	NewRatio int
	// SurvivorRatio is the ratio of Eden capacity to one Survivor space.
	SurvivorRatio int
}

// Default returns the configuration implied by Amazon EMR's
// MaxResourceAllocation policy plus the Spark and JVM framework defaults
// (Table 4): one fat container per node, two slots, a 0.6 unified pool
// (attributed to the dominant pool by the caller), NewRatio 2, SurvivorRatio 8.
func Default() Config {
	return Config{
		ContainersPerNode: 1,
		TaskConcurrency:   2,
		CacheCapacity:     0.6,
		ShuffleCapacity:   0.0,
		NewRatio:          2,
		SurvivorRatio:     8,
	}
}

// DefaultShuffle is Default with the unified pool attributed to shuffle,
// for map/reduce workloads that do not cache.
func DefaultShuffle() Config {
	c := Default()
	c.CacheCapacity, c.ShuffleCapacity = 0, 0.6
	return c
}

// UnifiedFraction is the fraction of heap given to Spark's unified memory
// pool (cache + shuffle), the quantity spark.memory.fraction controls.
func (c Config) UnifiedFraction() float64 {
	return c.CacheCapacity + c.ShuffleCapacity
}

// Validate reports whether the configuration is structurally legal
// (independent of any particular cluster's limits).
func (c Config) Validate() error {
	switch {
	case c.ContainersPerNode < 1:
		return errors.New("conf: ContainersPerNode must be >= 1")
	case c.TaskConcurrency < 1:
		return errors.New("conf: TaskConcurrency must be >= 1")
	case c.CacheCapacity < 0 || c.CacheCapacity > 1:
		return fmt.Errorf("conf: CacheCapacity %.2f outside [0,1]", c.CacheCapacity)
	case c.ShuffleCapacity < 0 || c.ShuffleCapacity > 1:
		return fmt.Errorf("conf: ShuffleCapacity %.2f outside [0,1]", c.ShuffleCapacity)
	case c.UnifiedFraction() > 1:
		return fmt.Errorf("conf: unified pool fraction %.2f exceeds 1", c.UnifiedFraction())
	case c.NewRatio < 1:
		return errors.New("conf: NewRatio must be >= 1")
	case c.SurvivorRatio < 1:
		return errors.New("conf: SurvivorRatio must be >= 1")
	}
	return nil
}

// String renders the configuration compactly for logs and tables.
func (c Config) String() string {
	return fmt.Sprintf("n=%d p=%d cache=%.2f shuffle=%.2f NR=%d SR=%d",
		c.ContainersPerNode, c.TaskConcurrency, c.CacheCapacity,
		c.ShuffleCapacity, c.NewRatio, c.SurvivorRatio)
}
