package conf

import (
	"strings"
	"testing"
)

func TestDefaultMatchesTable4(t *testing.T) {
	d := Default()
	if d.ContainersPerNode != 1 || d.TaskConcurrency != 2 {
		t.Fatalf("default containers/concurrency wrong: %+v", d)
	}
	if d.UnifiedFraction() != 0.6 {
		t.Fatalf("unified pool = %v, want 0.6", d.UnifiedFraction())
	}
	if d.NewRatio != 2 || d.SurvivorRatio != 8 {
		t.Fatalf("default GC knobs wrong: %+v", d)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultShuffle(t *testing.T) {
	d := DefaultShuffle()
	if d.CacheCapacity != 0 || d.ShuffleCapacity != 0.6 {
		t.Fatalf("shuffle default wrong: %+v", d)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := Default()
	mutations := map[string]func(Config) Config{
		"containers":  func(c Config) Config { c.ContainersPerNode = 0; return c },
		"concurrency": func(c Config) Config { c.TaskConcurrency = 0; return c },
		"cacheNeg":    func(c Config) Config { c.CacheCapacity = -0.1; return c },
		"cacheBig":    func(c Config) Config { c.CacheCapacity = 1.1; return c },
		"shuffleNeg":  func(c Config) Config { c.ShuffleCapacity = -0.1; return c },
		"unified>1":   func(c Config) Config { c.CacheCapacity, c.ShuffleCapacity = 0.7, 0.7; return c },
		"newRatio":    func(c Config) Config { c.NewRatio = 0; return c },
		"survivor":    func(c Config) Config { c.SurvivorRatio = 0; return c },
	}
	for name, mutate := range mutations {
		if mutate(base).Validate() == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestString(t *testing.T) {
	s := Default().String()
	for _, frag := range []string{"n=1", "p=2", "cache=0.60", "NR=2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String %q missing %q", s, frag)
		}
	}
}
