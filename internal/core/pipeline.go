package core

import (
	"relm/internal/conf"
	"relm/internal/profile"
	"relm/internal/tune"
)

// TuneWorkload runs the complete RelM workflow against an evaluator:
// profile the application once on the default configuration, regenerate the
// profile with the §4.1 heuristics when it contains no full-GC events
// (decrease heap size, increase task concurrency, increase NewRatio — all
// of which raise GC pressure), then recommend analytically. RelM's entire
// stress-testing overhead is the one or two profiling runs.
func (t *Tuner) TuneWorkload(ev *tune.Evaluator) (conf.Config, []Candidate, error) {
	inc := t.Incremental(ev.Space)
	for !inc.Done() && !inc.HasRecommendation() {
		inc.Observe(ev.Eval(inc.Suggest()))
	}
	return inc.Recommendation()
}

// reprofileConfig applies the full-GC-inducing heuristics: halve the heap
// (two containers per node), double the task concurrency, and raise
// NewRatio.
func reprofileConfig(def conf.Config, sp tune.Space) conf.Config {
	re := def
	if re.ContainersPerNode < 2 {
		re.ContainersPerNode = 2
	}
	maxP := sp.MaxConcurrency(re.ContainersPerNode)
	re.TaskConcurrency = clampInt(re.TaskConcurrency*2, 1, maxP)
	re.NewRatio = clampInt(re.NewRatio+2, 1, sp.MaxNewRatio)
	return re
}

// RecommendFromProfile is the single-profile entry point used by callers
// that already hold a profile artifact (e.g. the CLI).
func (t *Tuner) RecommendFromProfile(p *profile.Profile) (conf.Config, []Candidate, error) {
	return t.Recommend(profile.Generate(p))
}
