// Package core implements RelM, the paper's white-box memory autotuner
// (§4). RelM processes a single application profile into the Table 6
// statistics, enumerates the feasible container sizes, initializes every
// memory pool independently with the analytical models of §4.2 (Equations
// 1–4), arbitrates the pools for safety and low GC overheads with
// Algorithm 1 (§4.3), and ranks the candidates by a memory-utility score.
//
// RelM's objectives, in priority order:
//
//  1. Safety: resource usage within allocation at all times.
//  2. High task concurrency / high cache hit ratio (proportionally fair).
//  3. Low GC overheads.
package core

import (
	"fmt"
	"math"

	"relm/internal/conf"
	"relm/internal/profile"
	"relm/internal/sim/cluster"
)

// Options configures the tuner.
type Options struct {
	// Delta is the safety factor δ: the fraction of memory kept unassigned
	// as a guard against out-of-memory errors. The paper uses 0.1.
	Delta float64
	// MaxNewRatio caps NewRatio (the paper uses 9 so Young keeps ≥10% of
	// heap).
	MaxNewRatio int
	// SurvivorRatio is kept at the JVM default.
	SurvivorRatio int
	// MaxContainers bounds the container-size enumeration.
	MaxContainers int
}

// DefaultOptions returns the paper's settings.
func DefaultOptions() Options {
	return Options{Delta: 0.1, MaxNewRatio: 9, SurvivorRatio: 8, MaxContainers: 4}
}

// Tuner is the RelM tuner for one cluster.
type Tuner struct {
	Cluster cluster.Spec
	Opts    Options
}

// New returns a RelM tuner with default options.
func New(cl cluster.Spec) *Tuner {
	return &Tuner{Cluster: cl, Opts: DefaultOptions()}
}

// Pools is an absolute-MB view of a candidate's memory pools.
type Pools struct {
	HeapMB   float64
	McMB     float64 // Cache Storage
	MsMB     float64 // per-task Task Shuffle
	MoMB     float64 // Old generation
	MeMB     float64 // Eden
	P        int     // Task Concurrency
	NewRatio int
}

// Step records one Arbitrator action for the working-example trace
// (Figure 13).
type Step struct {
	Action string // "init", "p--", "mc-=Mu", "mo+=Mu", "final"
	Pools  Pools
}

// Candidate is the arbitrated configuration for one container size.
type Candidate struct {
	Containers int
	Config     conf.Config
	Pools      Pools
	Utility    float64
	Feasible   bool
	Trace      []Step
}

// Initialize applies the §4.2 analytical models (Equations 1–4) for a
// candidate container size: Cache Storage scaled by the hit ratio, Task
// Shuffle scaled by the spillage fraction, GC pools sized to hold the
// long-term requirements, and Task Concurrency bounded by each of the CPU,
// disk and memory bottlenecks.
func (t *Tuner) Initialize(st profile.Stats, n int) Pools {
	delta := t.Opts.Delta
	mh := t.Cluster.HeapPerContainer(n)

	// Eq 1: cache storage requirement, scaled by the observed hit ratio.
	mc := 0.0
	if st.McMB > 0 {
		frac := st.McMB / (math.Max(st.H, 1e-6) * st.MhMB)
		mc = mh * math.Min(frac, 1-delta)
	}

	// Eq 2: shuffle memory per task, scaled by the spillage fraction.
	ms := 0.0
	if st.MsMB > 0 {
		p := float64(maxInt(st.P, 1))
		ms = math.Min(st.MsMB/(1-st.S/p), (1-delta)*mh)
	}

	// Eq 3: GC pools — Old must hold the long-term requirements.
	nr := t.newRatioFor(st.MiMB, mc, mh)
	mo, me := t.gcPools(mh, nr)

	// Eq 4: task concurrency from the CPU, disk and memory bottlenecks,
	// assuming linear scaling of per-task usage.
	p := t.concurrencyFor(st, n, mh)

	return Pools{HeapMB: mh, McMB: mc, MsMB: ms, MoMB: mo, MeMB: me, P: p, NewRatio: nr}
}

// newRatioFor sizes NewRatio so Old just covers the long-term pools (Eq 3).
func (t *Tuner) newRatioFor(mi, mc, mh float64) int {
	den := mh - mi - mc
	if den <= 0 {
		return t.Opts.MaxNewRatio
	}
	nr := int(math.Ceil((mi + mc) / den))
	return clampInt(nr, 1, t.Opts.MaxNewRatio)
}

// gcPools returns (Old, Eden) capacities for a NewRatio using the paper's
// Eq 3 (with the (SR−2)/SR Eden approximation).
func (t *Tuner) gcPools(mh float64, nr int) (mo, me float64) {
	sr := float64(t.Opts.SurvivorRatio)
	mo = mh * float64(nr) / float64(nr+1)
	me = mh * (1 / float64(nr+1)) * (sr - 2) / sr
	return mo, me
}

// concurrencyFor is Eq 4.
func (t *Tuner) concurrencyFor(st profile.Stats, n int, mh float64) int {
	delta := t.Opts.Delta
	pProf := float64(maxInt(st.P, 1))
	perTaskCPU := st.CPUAvg / pProf
	perTaskDisk := st.DiskAvg / pProf

	pCPU := math.Inf(1)
	if perTaskCPU > 0 {
		pCPU = (1 - delta) / (float64(n) * perTaskCPU)
	}
	pDisk := math.Inf(1)
	if perTaskDisk > 0 {
		pDisk = (1 - delta) / (float64(n) * perTaskDisk)
	}
	pMem := math.Inf(1)
	if st.MuMB > 0 {
		pMem = (1 - delta) * mh / st.MuMB
	}
	p := int(math.Min(pCPU, math.Min(pDisk, pMem)))
	maxP := t.Cluster.MaxConcurrencyPerContainer(n)
	return clampInt(p, 1, maxP)
}

// Arbitrate is Algorithm 1: it repairs an initialized candidate for safety
// (the long-term plus tenured task memory must fit in Old) by round-robin
// application of three actions — decrease Task Concurrency, decrease Cache
// Capacity (re-fitting the GC pools), and grow Old — then bounds the shuffle
// memory by half of the per-task Eden share (Observation 7) and computes the
// memory-utility score.
func (t *Tuner) Arbitrate(st profile.Stats, pools Pools) (Candidate, bool) {
	delta := t.Opts.Delta
	mh := pools.HeapMB
	cand := Candidate{Pools: pools}
	cand.Trace = append(cand.Trace, Step{Action: "init", Pools: pools})

	// Line 1: bare minimum — one task must fit.
	if st.MiMB+st.MuMB > (1-delta)*mh {
		return cand, false
	}

	demand := func() float64 { return st.MiMB + float64(pools.P)*st.MuMB + pools.McMB }
	action := 0
	blocked := 0
	for demand() > pools.MoMB {
		applied := false
		switch action % 3 {
		case 0: // I: decrease task concurrency
			if pools.P > 1 {
				pools.P--
				applied = true
				cand.Trace = append(cand.Trace, Step{Action: "p--", Pools: pools})
			}
		case 1: // II: reduce cache, re-fit GC pools to the new long-term size
			if pools.McMB-st.MuMB > 0 {
				pools.McMB -= st.MuMB
				pools.NewRatio = t.newRatioFor(st.MiMB, pools.McMB, mh)
				pools.MoMB, pools.MeMB = t.gcPools(mh, pools.NewRatio)
				applied = true
				cand.Trace = append(cand.Trace, Step{Action: "mc-=Mu", Pools: pools})
			}
		case 2: // III: grow Old (trading GC overhead for safety, Obs 6)
			if pools.MoMB+st.MuMB < (1-delta)*mh {
				mo := pools.MoMB + st.MuMB
				nr := int(math.Round(mo / (mh - mo)))
				nr = clampInt(nr, 1, t.Opts.MaxNewRatio)
				if mo2, _ := t.gcPools(mh, nr); mo2 > pools.MoMB {
					pools.NewRatio = nr
					pools.MoMB, pools.MeMB = t.gcPools(mh, pools.NewRatio)
					applied = true
					cand.Trace = append(cand.Trace, Step{Action: "mo+=Mu", Pools: pools})
				}
			}
		}
		action++
		if applied {
			blocked = 0
		} else if blocked++; blocked >= 3 {
			// All three actions exhausted without reaching safety: this
			// container size cannot hold the workload reliably.
			return cand, false
		}
	}

	// Line 11: bound shuffle memory by half the per-task Eden share.
	pools.MsMB = math.Min(pools.MsMB, 0.5*pools.MeMB/float64(maxInt(pools.P, 1)))

	// Line 13: utility — fraction of heap put to productive use.
	cand.Pools = pools
	cand.Utility = (st.MiMB + pools.McMB + float64(pools.P)*(st.MuMB+pools.MsMB)) / mh
	cand.Trace = append(cand.Trace, Step{Action: "final", Pools: pools})
	return cand, true
}

// Recommend runs the full §4 pipeline — Enumerator over container sizes,
// Initializer, Arbitrator, Selector — and returns the best configuration
// with all ranked candidates.
func (t *Tuner) Recommend(st profile.Stats) (conf.Config, []Candidate, error) {
	var cands []Candidate
	for n := 1; n <= t.Opts.MaxContainers; n++ {
		pools := t.Initialize(st, n)
		cand, ok := t.Arbitrate(st, pools)
		cand.Containers = n
		cand.Feasible = ok
		cand.Config = t.configFrom(n, cand.Pools)
		cands = append(cands, cand)
	}
	bestIdx := -1
	for i, c := range cands {
		if !c.Feasible {
			continue
		}
		if bestIdx < 0 || c.Utility > cands[bestIdx].Utility {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return conf.Config{}, cands, fmt.Errorf("relm: no feasible configuration (insufficient memory for one task)")
	}
	return cands[bestIdx].Config, cands, nil
}

// configFrom converts arbitrated pools to the framework's knob space.
func (t *Tuner) configFrom(n int, p Pools) conf.Config {
	mh := p.HeapMB
	cacheFrac := 0.0
	if p.McMB > 0 {
		cacheFrac = round2(p.McMB / mh)
	}
	shuffleFrac := 0.0
	if p.MsMB > 0 {
		shuffleFrac = round2(float64(p.P) * p.MsMB / mh)
	}
	return conf.Config{
		ContainersPerNode: n,
		TaskConcurrency:   p.P,
		CacheCapacity:     cacheFrac,
		ShuffleCapacity:   shuffleFrac,
		NewRatio:          p.NewRatio,
		SurvivorRatio:     t.Opts.SurvivorRatio,
	}
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
