package core

import (
	"math"
	"testing"
	"testing/quick"

	"relm/internal/profile"
	"relm/internal/sim"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/tune"
)

// pageRankStats reproduces the Table 6 example column.
func pageRankStats() profile.Stats {
	return profile.Stats{
		N: 1, MhMB: 4404,
		CPUAvg: 0.35, DiskAvg: 0.02,
		MiMB: 115, McMB: 2300, MsMB: 0, MuMB: 770,
		P: 2, H: 0.3, S: 0,
		HadFullGC: true, CoresPerNode: 8,
	}
}

func TestInitializerMatchesPaperExample(t *testing.T) {
	// §4.2's example: PageRank on n=1, mh=4404, δ=0.1 gives mc≈3.8-4.0GB,
	// ms=0, p=5, NR=9.
	tuner := New(cluster.A())
	pools := tuner.Initialize(pageRankStats(), 1)
	if pools.HeapMB != 4404 {
		t.Fatalf("heap = %v", pools.HeapMB)
	}
	// Eq 1: mc = mh·min(Mc/(H·Mh), 1−δ) = 4404·0.9 = 3963.6 (requirement
	// exceeds the cap).
	if math.Abs(pools.McMB-3963.6) > 1 {
		t.Fatalf("mc = %v, want ≈3964", pools.McMB)
	}
	if pools.MsMB != 0 {
		t.Fatalf("ms = %v, want 0", pools.MsMB)
	}
	// Eq 4: pCPU = 0.9/(0.35/2) ≈ 5.14; pMem = 0.9·4404/770 ≈ 5.15 → p = 5.
	if pools.P != 5 {
		t.Fatalf("p = %d, want 5", pools.P)
	}
	// Eq 3: NR = ceil((115+3964)/(4404−115−3964)) = ceil(12.5) = 13 → cap 9.
	if pools.NewRatio != 9 {
		t.Fatalf("NR = %d, want 9", pools.NewRatio)
	}
}

func TestGCPoolsEquation(t *testing.T) {
	tuner := New(cluster.A())
	mo, me := tuner.gcPools(4404, 2)
	if math.Abs(mo-4404.0*2/3) > 1e-9 {
		t.Fatalf("mo = %v", mo)
	}
	// Eq 3 Eden approximation: mh/(NR+1)·(SR−2)/SR = 4404/3·0.75.
	if math.Abs(me-4404.0/3*0.75) > 1e-9 {
		t.Fatalf("me = %v", me)
	}
}

func TestShuffleEquation(t *testing.T) {
	// Eq 2: ms = Ms/(1 − S/P), capped at (1−δ)·mh.
	tuner := New(cluster.A())
	st := pageRankStats()
	st.McMB, st.H = 0, 1
	st.MsMB = 400
	st.S = 0.5
	st.P = 2
	pools := tuner.Initialize(st, 1)
	want := 400 / (1 - 0.5/2)
	if math.Abs(pools.MsMB-want) > 1 {
		t.Fatalf("ms = %v, want %v", pools.MsMB, want)
	}
}

func TestArbitratorSafetyInvariant(t *testing.T) {
	tuner := New(cluster.A())
	st := pageRankStats()
	for n := 1; n <= 4; n++ {
		pools := tuner.Initialize(st, n)
		cand, ok := tuner.Arbitrate(st, pools)
		if !ok {
			continue
		}
		got := st.MiMB + float64(cand.Pools.P)*st.MuMB + cand.Pools.McMB
		if got > cand.Pools.MoMB+1e-6 {
			t.Errorf("n=%d: safety violated: %v > mo %v", n, got, cand.Pools.MoMB)
		}
		// Shuffle memory bounded by half the per-task Eden (Obs 7).
		if cand.Pools.MsMB > 0.5*cand.Pools.MeMB/float64(cand.Pools.P)+1e-9 {
			t.Errorf("n=%d: shuffle bound violated", n)
		}
		if cand.Utility <= 0 || cand.Utility > 1.01 {
			t.Errorf("n=%d: utility %v out of range", n, cand.Utility)
		}
	}
}

func TestArbitratorTraceActions(t *testing.T) {
	tuner := New(cluster.A())
	st := pageRankStats()
	pools := tuner.Initialize(st, 1)
	cand, ok := tuner.Arbitrate(st, pools)
	if !ok {
		t.Fatal("n=1 should be feasible for PageRank")
	}
	if len(cand.Trace) < 3 {
		t.Fatal("expected several arbitration steps")
	}
	if cand.Trace[0].Action != "init" || cand.Trace[len(cand.Trace)-1].Action != "final" {
		t.Fatal("trace must start with init and end with final")
	}
	// Concurrency and cache only ever decrease through the trace.
	prevP := cand.Trace[0].Pools.P
	prevMc := cand.Trace[0].Pools.McMB
	for _, s := range cand.Trace[1:] {
		if s.Pools.P > prevP {
			t.Fatal("p increased during arbitration")
		}
		if s.Pools.McMB > prevMc+1e-9 {
			t.Fatal("mc increased during arbitration")
		}
		prevP, prevMc = s.Pools.P, s.Pools.McMB
	}
}

func TestInsufficientMemoryInfeasible(t *testing.T) {
	tuner := New(cluster.A())
	st := pageRankStats()
	st.MuMB = 5000 // a single task cannot fit in any container
	for n := 1; n <= 4; n++ {
		pools := tuner.Initialize(st, n)
		if _, ok := tuner.Arbitrate(st, pools); ok && n > 1 {
			t.Errorf("n=%d should be infeasible with Mu=5GB", n)
		}
	}
	if _, _, err := tuner.Recommend(st); err == nil {
		// n=1 (4404MB heap) may barely admit one 5000MB task — it cannot:
		// 115+5000 > 0.9·4404, so recommendation must fail entirely.
		t.Fatal("expected no feasible configuration")
	}
}

func TestRecommendPrefersHighestUtility(t *testing.T) {
	tuner := New(cluster.A())
	rec, cands, err := tuner.Recommend(pageRankStats())
	if err != nil {
		t.Fatal(err)
	}
	bestU := -1.0
	for _, c := range cands {
		if c.Feasible && c.Utility > bestU {
			bestU = c.Utility
		}
	}
	for _, c := range cands {
		if c.Config == rec && math.Abs(c.Utility-bestU) > 1e-9 {
			t.Fatal("recommendation is not the best-utility candidate")
		}
	}
}

func TestRecommendationIsSafeInSimulator(t *testing.T) {
	// The headline claim: RelM recommendations avoid out-of-memory aborts.
	cl := cluster.A()
	for _, wl := range workload.Benchmarks() {
		ev := tune.NewEvaluator(cl, wl, 21)
		tuner := New(cl)
		rec, _, err := tuner.TuneWorkload(ev)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		aborts := 0
		for seed := uint64(0); seed < 4; seed++ {
			r, _ := sim.Run(cl, wl, rec, 1000+seed)
			if r.Aborted {
				aborts++
			}
		}
		if aborts > 1 {
			t.Errorf("%s: RelM recommendation aborted %d/4 runs (%v)", wl.Name, aborts, rec)
		}
	}
}

func TestRecommendationBeatsDefault(t *testing.T) {
	cl := cluster.A()
	for _, wl := range []workload.Spec{workload.WordCount(), workload.SVM(), workload.KMeans()} {
		ev := tune.NewEvaluator(cl, wl, 22)
		rec, _, err := New(cl).TuneWorkload(ev)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		recRes, _ := sim.Run(cl, wl, rec, 555)
		defRes, _ := sim.Run(cl, wl, ev.Space.Default(), 555)
		if recRes.Aborted || recRes.RuntimeSec >= defRes.RuntimeSec {
			t.Errorf("%s: RelM %v not better than default %v", wl.Name, recRes.RuntimeSec, defRes.RuntimeSec)
		}
	}
}

func TestReprofileOnMissingFullGC(t *testing.T) {
	// SVM's default profile lacks full-GC events, so RelM must take a second
	// profiling run with the GC-pressure heuristics (§4.1).
	cl := cluster.A()
	ev := tune.NewEvaluator(cl, workload.SVM(), 23)
	_, _, err := New(cl).TuneWorkload(ev)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Evals() != 2 {
		t.Fatalf("SVM should need exactly 2 profiling runs, used %d", ev.Evals())
	}
	second := ev.History()[1].Config
	first := ev.History()[0].Config
	if second.ContainersPerNode <= first.ContainersPerNode &&
		second.TaskConcurrency <= first.TaskConcurrency &&
		second.NewRatio <= first.NewRatio {
		t.Fatal("re-profile must raise GC pressure")
	}
}

func TestSingleProfileForFullGCWorkloads(t *testing.T) {
	cl := cluster.A()
	ev := tune.NewEvaluator(cl, workload.PageRank(), 24)
	_, _, err := New(cl).TuneWorkload(ev)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Evals() != 1 {
		t.Fatalf("PageRank should need a single profiling run, used %d", ev.Evals())
	}
}

// Property: arbitration always terminates and never violates the safety
// condition for feasible outcomes, across randomized statistics.
func TestArbitrateProperty(t *testing.T) {
	tuner := New(cluster.A())
	f := func(mi, mc, mu uint16, h float64, p uint8, n uint8) bool {
		st := profile.Stats{
			N: 1, MhMB: 4404,
			CPUAvg: 0.3, DiskAvg: 0.05,
			MiMB: float64(mi%400) + 20,
			McMB: float64(mc % 3500),
			MuMB: float64(mu%2000) + 10,
			P:    2, H: clamp01(h),
			HadFullGC: true, CoresPerNode: 8,
		}
		if st.H < 0.05 {
			st.H = 0.05
		}
		nn := int(n%4) + 1
		pools := tuner.Initialize(st, nn)
		cand, ok := tuner.Arbitrate(st, pools)
		if !ok {
			return true // infeasible is a legal outcome
		}
		demand := st.MiMB + float64(cand.Pools.P)*st.MuMB + cand.Pools.McMB
		return demand <= cand.Pools.MoMB+1e-6 && cand.Pools.P >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	v = math.Abs(math.Mod(v, 1))
	if v == 0 {
		return 0.5
	}
	return v
}
