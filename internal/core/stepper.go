package core

import (
	"errors"

	"relm/internal/conf"
	"relm/internal/profile"
	"relm/internal/tune"
)

// Incremental is the steppable form of the RelM workflow behind the unified
// tune.Tuner interface. Its suggest/observe cycle walks the §4 pipeline one
// experiment at a time:
//
//  1. profile the default configuration;
//  2. when that profile has no full-GC events, re-profile with the
//     GC-pressure heuristics (§4.1);
//  3. recommend analytically and suggest the recommendation once as a
//     verification run.
//
// Unlike the black-box adapters, observations must carry profile
// statistics (a simulator Profile or a remote client's pre-derived Stats) —
// RelM is white-box, its models consume Table 6 statistics, not runtimes.
type Incremental struct {
	tuner *Tuner
	sp    tune.Space

	phase     int // 0 = default profile, 1 = re-profile, 2 = verify, 3 = done
	st        profile.Stats
	haveStats bool
	rec       conf.Config
	cands     []Candidate
	recErr    error
	haveRec   bool

	pending *conf.Config
	best    tune.Sample
	found   bool
}

var _ tune.Tuner = (*Incremental)(nil)

// Incremental returns a steppable adapter for this tuner over a
// configuration space.
func (t *Tuner) Incremental(sp tune.Space) *Incremental {
	return &Incremental{tuner: t, sp: sp}
}

// Suggest returns the next configuration to profile; after the
// recommendation is computed it is suggested once for verification.
func (inc *Incremental) Suggest() conf.Config {
	if inc.pending != nil {
		return *inc.pending
	}
	var cfg conf.Config
	switch inc.phase {
	case 0:
		cfg = inc.sp.Default()
	case 1:
		cfg = reprofileConfig(inc.sp.Default(), inc.sp)
	case 2:
		cfg = inc.rec
	default:
		if inc.found {
			return inc.best.Config
		}
		return inc.sp.Default()
	}
	inc.pending = &cfg
	return cfg
}

// Observe incorporates one profiled run and advances the pipeline.
func (inc *Incremental) Observe(s tune.Sample) {
	inc.pending = nil
	if s.Objective <= 0 {
		s.Objective = s.RuntimeSec
	}
	if !s.Result.Aborted && s.RuntimeSec > 0 && (!inc.found || s.Objective < inc.best.Objective) {
		inc.best, inc.found = s, true
	}

	switch inc.phase {
	case 0:
		st, ok := s.DeriveStats()
		if !ok {
			inc.recErr = errors.New("relm: observation carries no profile statistics (RelM needs a Profile or Stats)")
			inc.phase = 3
			return
		}
		inc.st, inc.haveStats = st, true
		if st.HadFullGC {
			inc.recommend()
		} else {
			inc.phase = 1
		}
	case 1:
		if st2, ok := s.DeriveStats(); ok && st2.HadFullGC {
			inc.st = st2
		}
		inc.recommend()
	case 2:
		inc.phase = 3
	}
}

// recommend runs the analytic pipeline on the retained statistics.
func (inc *Incremental) recommend() {
	if !inc.haveStats {
		inc.recErr = errors.New("relm: no profile statistics retained")
		inc.phase = 3
		return
	}
	inc.rec, inc.cands, inc.recErr = inc.tuner.Recommend(inc.st)
	inc.haveRec = true
	if inc.recErr != nil {
		inc.phase = 3
		return
	}
	inc.phase = 2
}

// Best returns the best profiled run. Note RelM's recommendation itself is
// available through Recommendation; Best reflects what was measured.
func (inc *Incremental) Best() (tune.Sample, bool) { return inc.best, inc.found }

// Done reports whether the pipeline has completed (or failed).
func (inc *Incremental) Done() bool { return inc.phase >= 3 }

// HasRecommendation reports whether the analytic recommendation has been
// computed (it is, before the verification run is suggested).
func (inc *Incremental) HasRecommendation() bool { return inc.haveRec }

// Recommendation returns the analytic result: the recommended
// configuration and every ranked candidate, or the pipeline error.
func (inc *Incremental) Recommendation() (conf.Config, []Candidate, error) {
	if !inc.haveRec && inc.recErr == nil {
		return conf.Config{}, nil, errors.New("relm: recommendation not computed yet (profile runs outstanding)")
	}
	return inc.rec, inc.cands, inc.recErr
}

// Err surfaces a pipeline failure (infeasible cluster, missing statistics).
func (inc *Incremental) Err() error { return inc.recErr }
