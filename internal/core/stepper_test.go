package core

import (
	"testing"

	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/tune"
)

// TestIncrementalMatchesTuneWorkload: the steppable RelM adapter must
// produce the same recommendation as the batch pipeline and then suggest it
// once as a verification run.
func TestIncrementalMatchesTuneWorkload(t *testing.T) {
	cl := cluster.A()
	for _, wlName := range []string{"PageRank", "WordCount"} {
		wl, _ := workload.ByName(wlName)

		evBatch := tune.NewEvaluator(cl, wl, 3)
		tuner := New(cl)
		cfgBatch, _, errBatch := tuner.TuneWorkload(evBatch)

		evStep := tune.NewEvaluator(cl, wl, 3)
		inc := New(cl).Incremental(evStep.Space)
		steps := 0
		for !inc.Done() && steps < 10 {
			inc.Observe(evStep.Eval(inc.Suggest()))
			steps++
		}
		cfgStep, cands, errStep := inc.Recommendation()

		if (errBatch == nil) != (errStep == nil) {
			t.Fatalf("%s: errors diverged: %v vs %v", wlName, errBatch, errStep)
		}
		if errBatch != nil {
			continue
		}
		if cfgBatch != cfgStep {
			t.Fatalf("%s: recommendation diverged: %v vs %v", wlName, cfgBatch, cfgStep)
		}
		if len(cands) == 0 {
			t.Fatalf("%s: no candidates", wlName)
		}

		// The incremental form runs one extra experiment: the verification
		// run of the recommendation itself.
		if got, want := evStep.Evals(), evBatch.Evals()+1; got != want {
			t.Fatalf("%s: evals = %d, want %d (profiles + verification)", wlName, got, want)
		}
		last := evStep.History()[evStep.Evals()-1]
		if last.Config != cfgStep {
			t.Fatalf("%s: last experiment %v is not the recommendation %v", wlName, last.Config, cfgStep)
		}
		if _, ok := inc.Best(); !ok {
			t.Fatalf("%s: no best recorded", wlName)
		}
	}
}

// TestIncrementalWithoutStats fails fast when observations carry no
// profile statistics (RelM is white-box).
func TestIncrementalWithoutStats(t *testing.T) {
	cl := cluster.A()
	wl, _ := workload.ByName("PageRank")
	inc := New(cl).Incremental(tune.NewSpace(cl, wl))

	cfg := inc.Suggest()
	inc.Observe(tune.Sample{Config: cfg, RuntimeSec: 100})
	if !inc.Done() {
		t.Fatal("should be done after statless observation")
	}
	if _, _, err := inc.Recommendation(); err == nil {
		t.Fatal("want error from Recommendation")
	}
}
