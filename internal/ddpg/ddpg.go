// Package ddpg implements Deep Deterministic Policy Gradient (§5.3): an
// actor-critic, model-free reinforcement-learning agent over the continuous
// configuration space, with target networks, an experience-replay memory,
// Ornstein-Uhlenbeck exploration noise, and the CDBTune reward function that
// compares performance against both the previous step and the initial
// (default-configuration) run.
//
// Following the paper, the state is the set of resource-usage statistics of
// Table 6 augmented with the GBO guide metrics q1..q3 (Equation 8), giving
// the agent visibility into the internal memory pools.
package ddpg

import (
	"math"

	"relm/internal/nn"
	"relm/internal/simrand"
)

// Transition is one (s, a, r, s') experience.
type Transition struct {
	State     []float64
	Action    []float64
	Reward    float64
	NextState []float64
	Done      bool
}

// Replay is a bounded experience-replay memory with uniform sampling.
type Replay struct {
	buf  []Transition
	cap  int
	next int
	full bool
}

// NewReplay returns a memory holding up to capacity transitions.
func NewReplay(capacity int) *Replay {
	if capacity < 1 {
		capacity = 1
	}
	return &Replay{cap: capacity}
}

// Add stores a transition, evicting the oldest when full.
func (r *Replay) Add(t Transition) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, t)
		return
	}
	r.buf[r.next] = t
	r.next = (r.next + 1) % r.cap
	r.full = true
}

// Len returns the number of stored transitions.
func (r *Replay) Len() int { return len(r.buf) }

// Sample draws n transitions uniformly with replacement.
func (r *Replay) Sample(rng *simrand.Rand, n int) []Transition {
	out := make([]Transition, 0, n)
	for i := 0; i < n && len(r.buf) > 0; i++ {
		out = append(out, r.buf[rng.Intn(len(r.buf))])
	}
	return out
}

// OUNoise is an Ornstein-Uhlenbeck process for temporally correlated
// exploration noise on continuous actions.
type OUNoise struct {
	Theta, Sigma, Mu float64
	state            []float64
	rng              *simrand.Rand
}

// NewOUNoise returns a process over dim dimensions.
func NewOUNoise(rng *simrand.Rand, dim int, theta, sigma float64) *OUNoise {
	return &OUNoise{Theta: theta, Sigma: sigma, state: make([]float64, dim), rng: rng}
}

// Sample advances the process and returns the current noise vector.
func (o *OUNoise) Sample() []float64 {
	out := make([]float64, len(o.state))
	for i := range o.state {
		o.state[i] += o.Theta*(o.Mu-o.state[i]) + o.Sigma*o.rng.Norm(0, 1)
		out[i] = o.state[i]
	}
	return out
}

// Reset zeroes the process state.
func (o *OUNoise) Reset() {
	for i := range o.state {
		o.state[i] = 0
	}
}

// Options configures the agent; zero values select CDBTune-style defaults.
type Options struct {
	StateDim  int
	ActionDim int
	Hidden    int     // hidden width (default 64)
	Gamma     float64 // discount (default 0.9)
	Tau       float64 // target soft-update rate (default 0.01)
	ActorLR   float64 // default 1e-3
	CriticLR  float64 // default 1e-3
	Batch     int     // default 16
	ReplayCap int     // default 1024
	Noise     float64 // OU sigma (default 0.3)
	Seed      uint64
}

func (o *Options) fill() {
	if o.Hidden == 0 {
		o.Hidden = 64
	}
	if o.Gamma == 0 {
		o.Gamma = 0.9
	}
	if o.Tau == 0 {
		o.Tau = 0.01
	}
	if o.ActorLR == 0 {
		o.ActorLR = 1e-3
	}
	if o.CriticLR == 0 {
		o.CriticLR = 1e-3
	}
	if o.Batch == 0 {
		o.Batch = 16
	}
	if o.ReplayCap == 0 {
		o.ReplayCap = 1024
	}
	if o.Noise == 0 {
		o.Noise = 0.3
	}
}

// Agent is a DDPG learner.
type Agent struct {
	Opts Options

	actor        *nn.Net
	actorTarget  *nn.Net
	critic       *nn.Net
	criticTarget *nn.Net
	replay       *Replay
	noise        *OUNoise
	rng          *simrand.Rand
}

// NewAgent builds an agent for the given state/action dimensions.
func NewAgent(opts Options) *Agent {
	opts.fill()
	rng := simrand.New(opts.Seed ^ 0x6a09e667f3bcc909)
	a := &Agent{
		Opts:   opts,
		rng:    rng,
		replay: NewReplay(opts.ReplayCap),
		noise:  NewOUNoise(rng.Fork(1), opts.ActionDim, 0.15, opts.Noise),
	}
	h := opts.Hidden
	a.actor = nn.NewNet(rng.Fork(2), []int{opts.StateDim, h, h, opts.ActionDim}, nn.ReLU, nn.Tanh)
	a.critic = nn.NewNet(rng.Fork(3), []int{opts.StateDim + opts.ActionDim, h, h, 1}, nn.ReLU, nn.Linear)
	a.actorTarget = a.actor.Clone()
	a.criticTarget = a.critic.Clone()
	return a
}

// Act returns the policy action for a state, in [-1,1]^ActionDim. With
// explore set, OU noise is added and the result re-clipped.
func (a *Agent) Act(state []float64, explore bool) []float64 {
	out := a.actor.Forward(state, nil)
	if explore {
		noise := a.noise.Sample()
		for i := range out {
			out[i] = clip(out[i]+noise[i], -1, 1)
		}
	}
	return out
}

// Observe stores a transition in the replay memory.
func (a *Agent) Observe(t Transition) { a.replay.Add(t) }

// ReplayLen exposes the replay size.
func (a *Agent) ReplayLen() int { return a.replay.Len() }

// Train runs one minibatch update of the critic and actor plus the soft
// target updates. It is a no-op until the replay holds a minibatch.
func (a *Agent) Train() {
	batch := a.Opts.Batch
	if a.replay.Len() < batch {
		return
	}
	trans := a.replay.Sample(a.rng, batch)

	criticGrads := a.critic.NewGrads()
	actorGrads := a.actor.NewGrads()

	for _, t := range trans {
		// --- Critic target: y = r + γ·Q'(s', µ'(s')). ---
		y := t.Reward
		if !t.Done {
			a2 := a.actorTarget.Forward(t.NextState, nil)
			q2 := a.criticTarget.Forward(concat(t.NextState, a2), nil)[0]
			y += a.Opts.Gamma * q2
		}
		// --- Critic loss: (Q(s,a) − y)². ---
		var tape nn.Tape
		q := a.critic.Forward(concat(t.State, t.Action), &tape)[0]
		a.critic.Backward(&tape, []float64{2 * (q - y)}, criticGrads)

		// --- Actor: ascend Q(s, µ(s)). ---
		var atape nn.Tape
		act := a.actor.Forward(t.State, &atape)
		var qtape nn.Tape
		a.critic.Forward(concat(t.State, act), &qtape)
		// dQ/d[state,action]; take the action part, negate for ascent.
		gradIn := a.critic.Backward(&qtape, []float64{1}, a.critic.NewGrads())
		dqda := gradIn[len(t.State):]
		neg := make([]float64, len(dqda))
		for i, g := range dqda {
			neg[i] = -g
		}
		a.actor.Backward(&atape, neg, actorGrads)
	}

	a.critic.AdamStep(criticGrads, a.Opts.CriticLR, batch)
	a.actor.AdamStep(actorGrads, a.Opts.ActorLR, batch)
	a.criticTarget.SoftUpdate(a.critic, a.Opts.Tau)
	a.actorTarget.SoftUpdate(a.actor, a.Opts.Tau)
}

// ModelSizeBytes approximates the persisted model size (float32 weights), the
// quantity Table 10 reports.
func (a *Agent) ModelSizeBytes() int {
	return 4 * (a.actor.ParamCount() + a.critic.ParamCount())
}

// CDBTuneReward is the reward of §5.3: it rewards improvement over both the
// initial performance perf0 and the previous step perfPrev (runtimes; lower
// is better).
func CDBTuneReward(perf0, perfPrev, perf float64) float64 {
	d0 := (perf0 - perf) / perf0
	dPrev := (perfPrev - perf) / perfPrev
	if d0 > 0 {
		return ((1+d0)*(1+d0) - 1) * math.Abs(1+dPrev)
	}
	return -((1-d0)*(1-d0) - 1) * math.Abs(1-dPrev)
}

func clip(v, lo, hi float64) float64 {
	if math.IsNaN(v) {
		return lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func concat(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}
