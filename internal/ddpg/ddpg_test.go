package ddpg

import (
	"math"
	"testing"

	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/simrand"
	"relm/internal/tune"
)

func TestReplayCapacityAndEviction(t *testing.T) {
	r := NewReplay(3)
	for i := 0; i < 5; i++ {
		r.Add(Transition{Reward: float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("replay len = %d", r.Len())
	}
	// Oldest entries (0 and 1) must have been evicted.
	rewards := map[float64]bool{}
	for _, tr := range r.buf {
		rewards[tr.Reward] = true
	}
	if rewards[0] || rewards[1] {
		t.Fatal("eviction order wrong")
	}
}

func TestReplaySample(t *testing.T) {
	r := NewReplay(10)
	for i := 0; i < 4; i++ {
		r.Add(Transition{Reward: float64(i)})
	}
	rng := simrand.New(1)
	batch := r.Sample(rng, 8)
	if len(batch) != 8 {
		t.Fatalf("sample size = %d", len(batch))
	}
	empty := NewReplay(4)
	if len(empty.Sample(rng, 3)) != 0 {
		t.Fatal("sampling an empty replay should return nothing")
	}
}

func TestOUNoiseMeanReverts(t *testing.T) {
	rng := simrand.New(2)
	n := NewOUNoise(rng, 2, 0.15, 0.2)
	var sum float64
	const draws = 5000
	for i := 0; i < draws; i++ {
		for _, v := range n.Sample() {
			sum += v
		}
	}
	mean := sum / (2 * draws)
	if math.Abs(mean) > 0.25 {
		t.Fatalf("OU mean = %v, expected near 0", mean)
	}
	n.Reset()
	for _, v := range n.state {
		if v != 0 {
			t.Fatal("reset failed")
		}
	}
}

func TestCDBTuneRewardSigns(t *testing.T) {
	// Faster than both the initial and the previous run: positive reward.
	if r := CDBTuneReward(100, 90, 80); r <= 0 {
		t.Fatalf("improvement reward = %v", r)
	}
	// Slower than the initial run: negative reward.
	if r := CDBTuneReward(100, 110, 130); r >= 0 {
		t.Fatalf("regression reward = %v", r)
	}
	// Bigger improvements earn bigger rewards.
	small := CDBTuneReward(100, 100, 95)
	big := CDBTuneReward(100, 100, 60)
	if big <= small {
		t.Fatal("reward must grow with improvement")
	}
}

func TestActBoundsAndDeterminism(t *testing.T) {
	agent := NewAgent(Options{StateDim: 5, ActionDim: 3, Seed: 3})
	state := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	a1 := agent.Act(state, false)
	a2 := agent.Act(state, false)
	for i := range a1 {
		if a1[i] < -1 || a1[i] > 1 {
			t.Fatalf("action out of bounds: %v", a1[i])
		}
		if a1[i] != a2[i] {
			t.Fatal("exploitation action must be deterministic")
		}
	}
	// Exploration perturbs but stays clipped.
	ae := agent.Act(state, true)
	for _, v := range ae {
		if v < -1 || v > 1 {
			t.Fatalf("explored action out of bounds: %v", v)
		}
	}
}

func TestTrainNoopUntilBatch(t *testing.T) {
	agent := NewAgent(Options{StateDim: 3, ActionDim: 2, Batch: 8, Seed: 4})
	agent.Train() // must not panic with an empty replay
	if agent.ReplayLen() != 0 {
		t.Fatal("replay should be empty")
	}
}

func TestTrainKeepsWeightsFinite(t *testing.T) {
	agent := NewAgent(Options{StateDim: 4, ActionDim: 2, Batch: 8, Seed: 5})
	rng := simrand.New(5)
	for i := 0; i < 64; i++ {
		s := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		a := []float64{rng.Range(-1, 1), rng.Range(-1, 1)}
		agent.Observe(Transition{State: s, Action: a, Reward: rng.Norm(0, 1), NextState: s})
	}
	for i := 0; i < 50; i++ {
		agent.Train()
	}
	out := agent.Act([]float64{0.5, 0.5, 0.5, 0.5}, false)
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("training produced non-finite policy outputs")
		}
	}
}

// The critic should learn a trivially predictable reward landscape: reward
// equals the first action coordinate. After training, the actor should
// prefer high first coordinates.
func TestAgentLearnsTrivialPolicy(t *testing.T) {
	agent := NewAgent(Options{StateDim: 2, ActionDim: 1, Batch: 16, Seed: 6, ActorLR: 3e-3, CriticLR: 3e-3})
	rng := simrand.New(6)
	state := []float64{0.5, 0.5}
	for i := 0; i < 400; i++ {
		a := []float64{rng.Range(-1, 1)}
		agent.Observe(Transition{State: state, Action: a, Reward: a[0], NextState: state, Done: true})
	}
	for i := 0; i < 400; i++ {
		agent.Train()
	}
	if out := agent.Act(state, false); out[0] < 0.5 {
		t.Fatalf("actor did not learn to maximize the reward: action %v", out[0])
	}
}

func TestModelSizeBytes(t *testing.T) {
	agent := NewAgent(Options{StateDim: StateDim, ActionDim: 4, Seed: 7})
	if agent.ModelSizeBytes() <= 0 {
		t.Fatal("model size must be positive")
	}
}

func TestTuneEndToEnd(t *testing.T) {
	ev := tune.NewEvaluator(cluster.A(), workload.SVM(), 8)
	res := Tune(ev, nil, TuneOptions{MaxSteps: 5, Seed: 8})
	if !res.Found {
		t.Fatal("tuning found nothing")
	}
	if ev.Evals() != 6 { // initial default + 5 steps
		t.Fatalf("evals = %d, want 6", ev.Evals())
	}
	if len(res.Curve) != 6 {
		t.Fatalf("curve length = %d", len(res.Curve))
	}
	if res.Agent == nil {
		t.Fatal("agent must be returned for re-use")
	}
}

func TestTuneAgentReuse(t *testing.T) {
	evA := tune.NewEvaluator(cluster.A(), workload.SVM(), 9)
	first := Tune(evA, nil, TuneOptions{MaxSteps: 4, Seed: 9})
	evB := tune.NewEvaluator(cluster.B(), workload.SVM(), 10)
	second := Tune(evB, first.Agent, TuneOptions{MaxSteps: 3, Seed: 10})
	if second.Agent != first.Agent {
		t.Fatal("agent must be carried through")
	}
	if !second.Found {
		t.Fatal("re-used agent found nothing")
	}
}

func TestStateDimMatches(t *testing.T) {
	ev := tune.NewEvaluator(cluster.A(), workload.KMeans(), 11)
	res := Tune(ev, nil, TuneOptions{MaxSteps: 1, Seed: 11})
	if res.Agent.Opts.StateDim != StateDim {
		t.Fatal("agent state dimension mismatch")
	}
}
