package ddpg

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"relm/internal/nn"
)

// SavedAgent is the serializable form of a trained agent: the actor/critic
// parameters plus the options needed to rebuild the architecture. The replay
// memory is not persisted — as in CDBTune, the saved model is the policy,
// and fresh experience is collected on the new environment (§6.6).
type SavedAgent struct {
	Opts   Options
	Actor  nn.Snapshot
	Critic nn.Snapshot
}

// Save serializes the agent (Table 10's "Model Size" is the size of this
// stream).
func (a *Agent) Save(w io.Writer) error {
	s := SavedAgent{
		Opts:   a.Opts,
		Actor:  a.actor.Snapshot(),
		Critic: a.critic.Snapshot(),
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load reconstructs an agent from a stream produced by Save. Target networks
// are initialized to the loaded parameters.
func Load(r io.Reader) (*Agent, error) {
	var s SavedAgent
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("ddpg: load: %w", err)
	}
	a := NewAgent(s.Opts)
	if err := a.actor.Restore(s.Actor); err != nil {
		return nil, fmt.Errorf("ddpg: restore actor: %w", err)
	}
	if err := a.critic.Restore(s.Critic); err != nil {
		return nil, fmt.Errorf("ddpg: restore critic: %w", err)
	}
	a.actorTarget.CopyFrom(a.actor)
	a.criticTarget.CopyFrom(a.critic)
	return a, nil
}

// SavedSizeBytes returns the exact serialized size of the agent.
func (a *Agent) SavedSizeBytes() (int, error) {
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}
