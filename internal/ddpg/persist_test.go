package ddpg

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	agent := NewAgent(Options{StateDim: 6, ActionDim: 3, Seed: 1})
	// Train a little so the weights are non-trivial.
	for i := 0; i < 40; i++ {
		s := make([]float64, 6)
		s[0] = float64(i%5) / 5
		agent.Observe(Transition{State: s, Action: []float64{0.1, -0.2, 0.3}, Reward: s[0], NextState: s})
	}
	for i := 0; i < 20; i++ {
		agent.Train()
	}

	var buf bytes.Buffer
	if err := agent.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	state := []float64{0.2, 0.4, 0.6, 0.8, 1.0, 0.5}
	a1 := agent.Act(state, false)
	a2 := loaded.Act(state, false)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("loaded policy diverges: %v vs %v", a1, a2)
		}
	}
}

func TestSavedSizeBytes(t *testing.T) {
	agent := NewAgent(Options{StateDim: StateDim, ActionDim: 4, Seed: 2})
	n, err := agent.SavedSizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("empty serialization")
	}
	// gob float64 weights: the stream should be within a small factor of the
	// float32 estimate used by Table 10.
	if n < agent.ModelSizeBytes()/2 {
		t.Fatalf("serialized size %d implausibly small vs %d params", n, agent.ModelSizeBytes())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadedAgentContinuesTraining(t *testing.T) {
	agent := NewAgent(Options{StateDim: 4, ActionDim: 2, Batch: 8, Seed: 3})
	var buf bytes.Buffer
	if err := agent.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		s := []float64{0.1, 0.2, 0.3, 0.4}
		loaded.Observe(Transition{State: s, Action: []float64{0, 0}, Reward: 1, NextState: s})
	}
	loaded.Train() // must not panic; the replay/optimizer state is fresh
}
