package ddpg

import (
	"relm/internal/conf"
	"relm/internal/gbo"
	"relm/internal/sim/cluster"
	"relm/internal/tune"
)

// Tuner is the incremental form of the DDPG loop (Figure 15) behind the
// unified tune.Tuner interface. The first suggestion is the default
// configuration (the tuning request's starting state in CDBTune); every
// subsequent suggestion is the actor's action on the latest state. Each
// observation forms a transition, feeds the replay buffer, and trains the
// agent, reproducing Tune's exact agent-interaction sequence when driven in
// lockstep.
type Tuner struct {
	cl    cluster.Spec
	sp    tune.Space
	opts  TuneOptions
	agent *Agent

	qmodel   *gbo.Model
	state    []float64
	perf0    float64
	perfPrev float64

	initialized bool
	steps       int // adaptive observations taken after the initial one

	// pendingAction caches the actor's action between Suggest and Observe
	// so repeated Suggest calls neither re-query the actor nor consume
	// exploration noise.
	pendingAction []float64
	pendingCfg    *conf.Config

	best  tune.Sample
	found bool
	curve []float64
	done  bool
}

var _ tune.Tuner = (*Tuner)(nil)

// NewTuner builds an incremental DDPG tuner. Pass a previously trained
// agent to re-use its model on a new environment (§6.6), or nil to start
// fresh.
func NewTuner(cl cluster.Spec, sp tune.Space, agent *Agent, opts TuneOptions) *Tuner {
	opts.fill()
	if agent == nil {
		agent = NewAgent(Options{StateDim: StateDim, ActionDim: sp.Dim(), Seed: opts.Seed})
	}
	return &Tuner{cl: cl, sp: sp, opts: opts, agent: agent}
}

// Suggest returns the next configuration to measure.
func (t *Tuner) Suggest() conf.Config {
	if t.pendingCfg != nil {
		return *t.pendingCfg
	}
	if !t.initialized {
		cfg := t.sp.Default()
		t.pendingCfg = &cfg
		return cfg
	}
	if t.done {
		if t.found {
			return t.best.Config
		}
		return t.sp.Default()
	}
	action := t.agent.Act(t.state, true)
	cfg := actionToConfig(t.sp, action)
	t.pendingAction, t.pendingCfg = action, &cfg
	return cfg
}

// Observe incorporates one measured sample: the first observation seeds the
// guide model Q and the starting state; later ones form transitions and
// train the agent. An unsolicited observation — one that doesn't match the
// outstanding suggestion — updates the incumbent but neither produces a
// transition (no action led to it) nor consumes the pending suggestion.
func (t *Tuner) Observe(s tune.Sample) {
	if s.Objective <= 0 {
		s.Objective = s.RuntimeSec
	}
	t.record(s)
	solicited := t.pendingCfg != nil && s.Config == *t.pendingCfg

	if !t.initialized {
		t.initialized = true
		t.ensureModel(s)
		t.state = stateOf(s, t.qmodel)
		t.perf0 = s.Objective
		t.perfPrev = s.Objective
		if solicited {
			t.pendingAction, t.pendingCfg = nil, nil
		}
		return
	}

	// A runtime-only first observation leaves Q unbuilt; adopt the first
	// later sample that does carry statistics.
	t.ensureModel(s)
	next := stateOf(s, t.qmodel)
	switch {
	case solicited:
		if t.pendingAction != nil {
			reward := CDBTuneReward(t.perf0, t.perfPrev, s.Objective)
			t.agent.Observe(Transition{
				State:     t.state,
				Action:    t.pendingAction,
				Reward:    reward,
				NextState: next,
				Done:      t.steps == t.opts.MaxSteps-1,
			})
			for i := 0; i < t.opts.TrainPerStep; i++ {
				t.agent.Train()
			}
			t.steps++
		}
		t.pendingAction, t.pendingCfg = nil, nil
		t.state = next
		t.perfPrev = s.Objective
	case t.pendingCfg == nil:
		// No suggestion outstanding: fold the extra observation into the
		// environment state.
		t.state = next
		t.perfPrev = s.Objective
	default:
		// Unsolicited while a suggestion is outstanding: leave the RL state
		// untouched so the eventual transition stays consistent with the
		// state its action was computed from.
	}
	if t.steps >= t.opts.MaxSteps {
		t.done = true
	}
}

// ensureModel builds the guide model Q from the first sample that carries
// profile statistics.
func (t *Tuner) ensureModel(s tune.Sample) {
	if t.qmodel != nil {
		return
	}
	if st, ok := s.DeriveStats(); ok {
		t.qmodel = gbo.NewModel(t.cl, st)
	}
}

func (t *Tuner) record(s tune.Sample) {
	if !s.Result.Aborted && (!t.found || s.Objective < t.best.Objective) {
		t.best, t.found = s, true
	}
	cur := s.Objective
	if t.found {
		cur = t.best.Objective
	}
	t.curve = append(t.curve, cur)
}

// Best returns the incumbent non-aborted sample.
func (t *Tuner) Best() (tune.Sample, bool) { return t.best, t.found }

// Done reports whether the step budget is exhausted.
func (t *Tuner) Done() bool { return t.done }

// Agent exposes the trained agent for persistence and cross-environment
// re-use (Figure 27).
func (t *Tuner) Agent() *Agent { return t.agent }

// Result assembles the batch-style report from the steps taken so far.
func (t *Tuner) Result() TuneResult {
	return TuneResult{
		Best:       t.best,
		Found:      t.found,
		Iterations: t.steps,
		Curve:      append([]float64(nil), t.curve...),
		Agent:      t.agent,
	}
}
