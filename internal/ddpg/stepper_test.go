package ddpg

import (
	"testing"

	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/tune"
)

// TestStepperMatchesBatchTune drives the incremental DDPG tuner by hand and
// checks it reproduces Tune exactly: same experiments, same best, and an
// equally trained agent.
func TestStepperMatchesBatchTune(t *testing.T) {
	cl := cluster.A()
	wl, _ := workload.ByName("SVM")
	opts := TuneOptions{MaxSteps: 3, Seed: 4}

	evBatch := tune.NewEvaluator(cl, wl, 6)
	batch := Tune(evBatch, nil, opts)

	evStep := tune.NewEvaluator(cl, wl, 6)
	st := NewTuner(cl, evStep.Space, nil, opts)
	for !st.Done() {
		cfg := st.Suggest()
		if again := st.Suggest(); again != cfg {
			t.Fatalf("Suggest not stable: %v then %v", cfg, again)
		}
		st.Observe(evStep.Eval(cfg))
	}
	inc := st.Result()

	if inc.Best.Config != batch.Best.Config || inc.Found != batch.Found {
		t.Fatalf("best diverged: %v vs %v", inc.Best.Config, batch.Best.Config)
	}
	hb, hs := evBatch.History(), evStep.History()
	if len(hb) != len(hs) {
		t.Fatalf("history lengths: %d vs %d", len(hb), len(hs))
	}
	for i := range hb {
		if hb[i].Config != hs[i].Config {
			t.Fatalf("experiment %d diverged: %v vs %v", i, hb[i].Config, hs[i].Config)
		}
	}
	if st.Agent() == nil || st.Agent().ReplayLen() != opts.MaxSteps {
		t.Fatalf("agent replay: %d, want %d", st.Agent().ReplayLen(), opts.MaxSteps)
	}
}

// TestStepperRuntimeOnlyObservations: a remote client reporting plain
// runtimes (no profiles) must still drive the RL loop to completion — on
// shuffle workloads too, where an all-zero guide model once produced NaN
// states and NaN suggested configurations.
func TestStepperRuntimeOnlyObservations(t *testing.T) {
	cl := cluster.A()
	for _, wlName := range []string{"K-means", "WordCount"} {
		wl, _ := workload.ByName(wlName)
		st := NewTuner(cl, tune.NewSpace(cl, wl), nil, TuneOptions{MaxSteps: 2, Seed: 1})

		for i := 0; !st.Done() && i < 10; i++ {
			cfg := st.Suggest()
			if cfg.CacheCapacity != cfg.CacheCapacity || cfg.ShuffleCapacity != cfg.ShuffleCapacity {
				t.Fatalf("%s: NaN in suggested config %+v", wlName, cfg)
			}
			st.Observe(tune.Sample{Config: cfg, RuntimeSec: float64(100 + i)})
		}
		if !st.Done() {
			t.Fatalf("%s: never finished", wlName)
		}
		if best, ok := st.Best(); !ok || best.RuntimeSec <= 0 {
			t.Fatalf("%s: best: ok=%v %+v", wlName, ok, best)
		}
	}
}
