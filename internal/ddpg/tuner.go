package ddpg

import (
	"relm/internal/conf"
	"relm/internal/gbo"
	"relm/internal/tune"
)

// TuneOptions drives the RL tuning loop of Figure 15.
type TuneOptions struct {
	// MaxSteps is the stopping budget of new samples (the paper stops DDPG
	// after observing 10 new samples).
	MaxSteps int
	// TrainPerStep is the number of minibatch updates after each
	// observation.
	TrainPerStep int
	Seed         uint64
}

func (o *TuneOptions) fill() {
	if o.MaxSteps == 0 {
		o.MaxSteps = 10
	}
	if o.TrainPerStep == 0 {
		o.TrainPerStep = 8
	}
}

// TuneResult reports one RL tuning run.
type TuneResult struct {
	Best       tune.Sample
	Found      bool
	Iterations int
	Curve      []float64 // best objective so far per evaluation
	Agent      *Agent    // reusable across environments (Figure 27)
}

// StateDim is the dimensionality of the environment state: the Table 6
// statistics (normalized) plus the three Q guide metrics and two run
// outcomes (heap utilization, GC overhead).
const StateDim = 13

// stateOf featurizes a sample for the agent. Samples without profile
// statistics (remote observations reporting plain runtimes) featurize to
// zeroed resource statistics, and a nil guide model (no profiled sample
// yet) to zeroed guide metrics — the agent still sees the run outcome.
func stateOf(s tune.Sample, q *gbo.Model) []float64 {
	st, _ := s.DeriveStats()
	mh := st.MhMB
	if mh <= 0 {
		mh = 1
	}
	var metrics [3]float64
	if q != nil {
		metrics = q.Metrics(s.Config)
	}
	aborted := 0.0
	if s.Result.Aborted {
		aborted = 1
	}
	return []float64{
		st.CPUAvg,
		st.DiskAvg,
		st.MiMB / mh,
		st.McMB / mh,
		st.MsMB / mh,
		st.MuMB / mh,
		float64(st.P) / 8,
		st.H,
		st.S,
		s.Result.GCOverhead,
		clip(metrics[0], 0, 2) / 2,
		clip(metrics[1], 0, 3) / 3,
		aborted,
	}
}

// actionToConfig maps an action in [-1,1]^4 to a configuration through the
// normalized space.
func actionToConfig(sp tune.Space, a []float64) conf.Config {
	x := make([]float64, len(a))
	for i, v := range a {
		x[i] = (v + 1) / 2
	}
	return sp.Decode(x)
}

// Tune runs the DDPG loop against an evaluator by driving the incremental
// Tuner to completion, optionally continuing with a pre-trained agent
// (model re-use across clusters or datasets, §6.6).
func Tune(ev *tune.Evaluator, agent *Agent, opts TuneOptions) TuneResult {
	t := NewTuner(ev.Cluster, ev.Space, agent, opts)
	tune.Drive(t, ev, 0)
	res := t.Result()
	if !res.Found {
		if best, ok := ev.Best(); ok {
			res.Best, res.Found = best, true
		}
	}
	return res
}
