package experiments

import (
	"fmt"
	"strings"

	"relm/internal/bo"
	"relm/internal/conf"
	"relm/internal/core"
	"relm/internal/gbo"
	"relm/internal/profile"
	"relm/internal/sim"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/stats"
	"relm/internal/tune"
)

func init() {
	register("ablation-gbo", "GBO component ablation: guide features vs acquisition penalty", func(c Config) fmt.Stringer { return AblationGBO(c) })
	register("ablation-relm-delta", "RelM safety-factor δ sweep: safety vs performance", func(c Config) fmt.Stringer { return AblationRelMDelta(c) })
	register("ablation-reuse", "OtterTune-style BO model re-use across sessions (§6.6)", func(c Config) fmt.Stringer { return AblationReuse(c) })
}

// AblationGBOResult compares GBO variants with pieces disabled.
type AblationGBOResult struct {
	Rows []struct {
		App       string
		Variant   string // full, features-only, penalty-only, none (=BO)
		MeanIters float64
		MeanPct   float64 // % of exhaustive stress time to reach top-5%
	}
}

func (r *AblationGBOResult) String() string {
	t := &table{header: []string{"app", "variant", "iterations", "% of exhaustive"}}
	for _, row := range r.Rows {
		t.add(row.App, row.Variant, f1(row.MeanIters), f1(row.MeanPct))
	}
	return "== Ablation: GBO components (which part of the guide pays?)\n" + t.String()
}

// gboVariant runs guided BO with the chosen components enabled.
func gboVariant(ev *tune.Evaluator, seed uint64, features, penalty bool) {
	var model *gbo.Model
	ensure := func() *gbo.Model {
		if model == nil {
			if h := ev.History(); len(h) > 0 && h[0].Profile != nil {
				model = gbo.NewModel(ev.Cluster, profile.Generate(h[0].Profile))
			}
		}
		return model
	}
	var extra bo.Extra
	if features {
		extra = func(_ []float64, cfg conf.Config) []float64 {
			if m := ensure(); m != nil {
				return m.ExtraFeatures(cfg)
			}
			return []float64{0, 0, 0}
		}
	}
	var pen bo.Penalty
	if penalty {
		pen = func(_ []float64, cfg conf.Config) float64 {
			if m := ensure(); m != nil {
				return m.AcquisitionPenalty(cfg)
			}
			return 1
		}
	}
	opts := bo.Options{Seed: seed, UsePaperLHS: true}
	if pen != nil {
		bo.Run(ev, opts, extra, pen)
	} else {
		bo.Run(ev, opts, extra)
	}
}

// AblationGBO isolates GBO's two mechanisms — the Q-derived surrogate
// features (Eq 8→9) and the Q-derived acquisition penalty — against vanilla
// BO, measuring time-to-top-5% like Figure 16.
func AblationGBO(c Config) *AblationGBOResult {
	cl := cluster.A()
	res := &AblationGBOResult{}
	reps := c.reps(4)
	variants := []struct {
		name              string
		features, penalty bool
	}{
		{"none (BO)", false, false},
		{"features-only", true, false},
		{"penalty-only", false, true},
		{"full GBO", true, true},
	}
	for _, wl := range []workload.Spec{workload.KMeans(), workload.PageRank()} {
		base := baselineFor(cl, wl, c.seed()+801)
		for _, v := range variants {
			var iters, pct float64
			for rep := 0; rep < reps; rep++ {
				seed := c.seed() + uint64(rep*101+len(v.name))
				ev := tune.NewEvaluator(cl, wl, seed)
				gboVariant(ev, seed, v.features, v.penalty)
				it, stress := timeToTop5(ev, base.Top5Sec)
				iters += float64(it)
				pct += 100 * stress / base.TotalSec
			}
			res.Rows = append(res.Rows, struct {
				App       string
				Variant   string
				MeanIters float64
				MeanPct   float64
			}{wl.Name, v.name, iters / float64(reps), pct / float64(reps)})
		}
	}
	return res
}

// AblationRelMDeltaResult sweeps the safety factor.
type AblationRelMDeltaResult struct {
	Rows []struct {
		Delta      float64
		RuntimeMin float64 // mean over apps, scaled to default = 1
		Aborts     int
		Failures   int
	}
}

func (r *AblationRelMDeltaResult) String() string {
	t := &table{header: []string{"delta", "scaled runtime (mean)", "aborts", "failures"}}
	for _, row := range r.Rows {
		t.add(f2(row.Delta), f2(row.RuntimeMin), fmt.Sprint(row.Aborts), fmt.Sprint(row.Failures))
	}
	return "== Ablation: RelM safety factor δ (paper uses 0.1)\n" + t.String()
}

// AblationRelMDelta sweeps δ from 0 to 0.3: small values chase utilization
// at the cost of reliability; large values waste memory. The paper's 0.1
// should sit near the knee.
func AblationRelMDelta(c Config) *AblationRelMDeltaResult {
	cl := cluster.A()
	res := &AblationRelMDeltaResult{}
	apps := []workload.Spec{workload.KMeans(), workload.SVM(), workload.PageRank()}
	for _, delta := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		var scaledSum float64
		aborts, failures, count := 0, 0, 0
		for ai, wl := range apps {
			ev := tune.NewEvaluator(cl, wl, c.seed()+uint64(ai)*37)
			tuner := core.New(cl)
			tuner.Opts.Delta = delta
			rec, _, err := tuner.TuneWorkload(ev)
			if err != nil {
				aborts++
				continue
			}
			def, _ := sim.Run(cl, wl, ev.Space.Default(), c.seed()+991)
			for s := uint64(0); s < 3; s++ {
				r, _ := sim.Run(cl, wl, rec, c.seed()+1000+s)
				scaledSum += r.RuntimeSec / def.RuntimeSec
				count++
				failures += r.ContainerFailures
				if r.Aborted {
					aborts++
				}
			}
		}
		row := struct {
			Delta      float64
			RuntimeMin float64
			Aborts     int
			Failures   int
		}{Delta: delta, Aborts: aborts, Failures: failures}
		if count > 0 {
			row.RuntimeMin = scaledSum / float64(count)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// AblationReuseResult reports the model re-use study.
type AblationReuseResult struct {
	Lines []string
}

func (r *AblationReuseResult) String() string {
	return "== Ablation: OtterTune-style BO model re-use (§6.6)\n" + strings.Join(r.Lines, "\n") + "\n"
}

// AblationReuse tunes SVM twice through a model repository: the second
// session matches the first's fingerprint and warm-starts, cutting the
// experiments needed to reach the same quality. A different workload must
// not match.
func AblationReuse(c Config) *AblationReuseResult {
	cl := cluster.A()
	wl := workload.SVM()
	repo := &bo.Repository{}
	res := &AblationReuseResult{}

	reps := c.reps(3)
	var coldIters, warmIters, coldBest, warmBest []float64
	for rep := 0; rep < reps; rep++ {
		// Cold session.
		ev1 := tune.NewEvaluator(cl, wl, c.seed()+uint64(rep)*71)
		r1, reused1 := bo.RunWithReuse(ev1, bo.Options{Seed: c.seed() + uint64(rep)*71}, &bo.Repository{}, 0.25)
		coldIters = append(coldIters, float64(ev1.Evals()))
		coldBest = append(coldBest, r1.Best.RuntimeSec/60)
		if reused1 {
			res.Lines = append(res.Lines, "unexpected re-use in cold session")
		}

		// Warm session against a repository seeded by a prior session.
		seedEv := tune.NewEvaluator(cl, wl, c.seed()+5000+uint64(rep))
		bo.RunWithReuse(seedEv, bo.Options{Seed: c.seed() + 5000 + uint64(rep)}, repo, 0.25)
		ev2 := tune.NewEvaluator(cl, wl, c.seed()+9000+uint64(rep))
		r2, reused2 := bo.RunWithReuse(ev2, bo.Options{Seed: c.seed() + 9000 + uint64(rep)}, repo, 0.25)
		warmIters = append(warmIters, float64(ev2.Evals()))
		warmBest = append(warmBest, r2.Best.RuntimeSec/60)
		if !reused2 {
			res.Lines = append(res.Lines, "warm session failed to match")
		}
	}
	res.Lines = append(res.Lines,
		fmt.Sprintf("cold start: mean %.1f experiments, best %.1f min", stats.Mean(coldIters), stats.Mean(coldBest)),
		fmt.Sprintf("warm start: mean %.1f experiments, best %.1f min", stats.Mean(warmIters), stats.Mean(warmBest)))

	// A dissimilar workload must not match the SVM fingerprint.
	wc := workload.WordCount()
	evWC := tune.NewEvaluator(cl, wc, c.seed()+777)
	_, reusedWC := bo.RunWithReuse(evWC, bo.Options{Seed: c.seed() + 777, MaxIterations: 2, MinNewSamples: 1}, repo, 0.25)
	res.Lines = append(res.Lines, fmt.Sprintf("WordCount matched SVM models: %v (must be false)", reusedWC))
	return res
}
