package experiments

import (
	"strings"
	"testing"
)

func TestAblationsRegistered(t *testing.T) {
	for _, id := range []string{"ablation-gbo", "ablation-relm-delta", "ablation-reuse"} {
		if _, err := Run(id, quickCfg()); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestAblationRelMDeltaTradeoff(t *testing.T) {
	res := AblationRelMDelta(Config{Seed: 1})
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Large safety factors must be safe (no aborts) and slower than small
	// ones; the paper's δ = 0.1 sits before the performance cliff.
	byDelta := map[float64]struct {
		runtime float64
		aborts  int
	}{}
	for _, row := range res.Rows {
		byDelta[row.Delta] = struct {
			runtime float64
			aborts  int
		}{row.RuntimeMin, row.Aborts}
	}
	if byDelta[0.3].aborts > 0 {
		t.Error("δ=0.3 must be abort-free")
	}
	if byDelta[0.1].runtime > byDelta[0.3].runtime {
		t.Errorf("δ=0.1 (%v) should be faster than δ=0.3 (%v)", byDelta[0.1].runtime, byDelta[0.3].runtime)
	}
}

func TestAblationGBOFullNotWorstEverywhere(t *testing.T) {
	res := AblationGBO(quickCfg())
	// Per app, full GBO must not be the strictly worst variant: the two
	// mechanisms should compose, not interfere.
	byApp := map[string]map[string]float64{}
	for _, row := range res.Rows {
		if byApp[row.App] == nil {
			byApp[row.App] = map[string]float64{}
		}
		byApp[row.App][row.Variant] = row.MeanPct
	}
	for app, m := range byApp {
		full := m["full GBO"]
		worst := 0.0
		for _, pct := range m {
			if pct > worst {
				worst = pct
			}
		}
		if full >= worst && len(m) == 4 && full > m["none (BO)"]*1.5 {
			t.Errorf("%s: full GBO is the worst variant (%v vs worst %v)", app, full, worst)
		}
	}
}

func TestAblationReuseSavesExperiments(t *testing.T) {
	res := AblationReuse(Config{Seed: 1, Reps: 2})
	out := res.String()
	if strings.Contains(out, "failed to match") {
		t.Fatalf("warm sessions must match:\n%s", out)
	}
	if !strings.Contains(out, "matched SVM models: false") {
		t.Fatalf("cross-workload matching must be refused:\n%s", out)
	}
}
