package experiments

import (
	"fmt"
	"math"
	"strings"
)

// chart renders a small ASCII bar chart — enough to eyeball the shape of a
// paper figure in terminal output. Values are scaled to the observed range.
type chart struct {
	title  string
	labels []string
	values []float64
	marks  []string // optional per-bar annotation (e.g. "*" for failures)
	width  int
}

func newChart(title string) *chart { return &chart{title: title, width: 40} }

func (c *chart) bar(label string, v float64, mark string) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, v)
	c.marks = append(c.marks, mark)
}

func (c *chart) String() string {
	if len(c.values) == 0 {
		return c.title + ": (no data)\n"
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range c.values {
		if v > maxV {
			maxV = v
		}
		if len(c.labels[i]) > maxLabel {
			maxLabel = len(c.labels[i])
		}
	}
	if maxV <= 0 || math.IsNaN(maxV) || math.IsInf(maxV, 0) {
		maxV = 1
	}
	var b strings.Builder
	if c.title != "" {
		b.WriteString(c.title)
		b.WriteByte('\n')
	}
	for i, v := range c.values {
		n := int(math.Round(v / maxV * float64(c.width)))
		if n < 0 {
			n = 0
		}
		if v > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "  %-*s |%s %.2f%s\n", maxLabel, c.labels[i], strings.Repeat("█", n), v, c.marks[i])
	}
	return b.String()
}

// Chart renders the sweep's scaled-runtime series per app as bar charts —
// a terminal approximation of the paper's figure panels.
func (r *SweepResult) Chart() string {
	byApp := map[string][]SweepPoint{}
	var order []string
	for _, p := range r.Points {
		if _, ok := byApp[p.App]; !ok {
			order = append(order, p.App)
		}
		byApp[p.App] = append(byApp[p.App], p)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (scaled runtime; * = failed)\n", r.ID, r.Title)
	for _, app := range order {
		ch := newChart(app)
		for _, p := range byApp[app] {
			mark := ""
			if p.Failed {
				mark = " *"
			}
			ch.bar(fmt.Sprintf("%.2f", p.X), p.Scaled, mark)
		}
		b.WriteString(ch.String())
	}
	return b.String()
}

// Chart renders the recommendation-quality comparison per app.
func (r *Figure17Result) Chart() string {
	byApp := map[string][]int{}
	var order []string
	for i, row := range r.Rows {
		if _, ok := byApp[row.App]; !ok {
			order = append(order, row.App)
		}
		byApp[row.App] = append(byApp[row.App], i)
	}
	var b strings.Builder
	b.WriteString("Figure 17 — runtime scaled to MaxResourceAllocation (* = container failures)\n")
	for _, app := range order {
		ch := newChart(app)
		for _, i := range byApp[app] {
			row := r.Rows[i]
			mark := ""
			if row.Failures > 0 || row.Aborted {
				mark = fmt.Sprintf(" *%d", row.Failures)
			}
			ch.bar(row.Policy, row.Scaled, mark)
		}
		b.WriteString(ch.String())
	}
	return b.String()
}

// Chart renders the GC-overhead curve (Figure 9).
func (r *Figure9Result) Chart() string {
	ch := newChart("Figure 9 — K-means per-task GC overhead vs NewRatio (cache 0.6)")
	for i, nr := range r.NewRatios {
		ch.bar(fmt.Sprintf("NR=%d", nr), r.GCOver[i], "")
	}
	return ch.String()
}
