package experiments

import (
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	ch := newChart("title")
	ch.bar("a", 1, "")
	ch.bar("b", 2, " *")
	out := ch.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "a") {
		t.Fatalf("chart missing pieces:\n%s", out)
	}
	// The larger value must render a longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "█") >= strings.Count(lines[2], "█") {
		t.Fatalf("bar lengths not proportional:\n%s", out)
	}
	if !strings.Contains(lines[2], "*") {
		t.Fatal("mark lost")
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	if out := newChart("t").String(); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
	ch := newChart("zeros")
	ch.bar("a", 0, "")
	if out := ch.String(); out == "" {
		t.Fatal("zero-value chart must still render")
	}
}

func TestSweepChart(t *testing.T) {
	res := &SweepResult{ID: "Figure X", Title: "test"}
	res.Points = append(res.Points,
		SweepPoint{App: "A", X: 1, Scaled: 1},
		SweepPoint{App: "A", X: 2, Scaled: 0.5, Failed: true},
	)
	out := res.Chart()
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "*") {
		t.Fatalf("sweep chart:\n%s", out)
	}
}

func TestFigure9Chart(t *testing.T) {
	r := &Figure9Result{NewRatios: []int{1, 2}, GCOver: []float64{0.4, 0.1}, GCStd: []float64{0, 0}}
	out := r.Chart()
	if !strings.Contains(out, "NR=1") || !strings.Contains(out, "NR=2") {
		t.Fatalf("figure 9 chart:\n%s", out)
	}
}

func TestFigure17Chart(t *testing.T) {
	res := Figure17(quickCfg())
	out := res.Chart()
	if !strings.Contains(out, "RelM") || !strings.Contains(out, "Exhaustive") {
		t.Fatalf("figure 17 chart missing policies:\n%s", out)
	}
}
