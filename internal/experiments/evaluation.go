package experiments

import (
	"fmt"
	"math"
	"strings"

	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/simrand"
	"relm/internal/stats"
	"relm/internal/tune"
)

func init() {
	register("table4", "default configuration (MaxResourceAllocation + framework defaults)", func(c Config) fmt.Stringer { return Table4(c) })
	register("table7", "Latin Hypercube bootstrap samples", func(c Config) fmt.Stringer { return Table7(c) })
	register("figure16", "training overheads of tuning policies vs exhaustive search", func(c Config) fmt.Stringer { return Figure16(c) })
	register("figure17", "quality of recommended configurations (scaled to defaults)", func(c Config) fmt.Stringer { return Figure17(c) })
	register("table8", "recommended configurations per app per policy", func(c Config) fmt.Stringer { return Table8(c) })
	register("table9", "log of one BO run on SVM", func(c Config) fmt.Stringer { return Table9(c) })
	register("figure18", "BO vs GBO training-time distribution for K-means", func(c Config) fmt.Stringer { return Figure18(c) })
	register("figure19", "BO vs GBO training-time distribution for SVM", func(c Config) fmt.Stringer { return Figure19(c) })
	register("figure20", "convergence of tuning policies on K-means", func(c Config) fmt.Stringer { return Figure20(c) })
}

func simrandFor(seed uint64) *simrand.Rand { return simrand.New(seed ^ 0xabcdef12345) }

// Table4Result prints the Table 4 defaults for Cluster A.
type Table4Result struct {
	HeapMB float64
	Config fmt.Stringer
}

func (r *Table4Result) String() string {
	return fmt.Sprintf("== Table 4: MaxResourceAllocation + framework defaults (Cluster A)\nHeap Size: %.0fMB\n%v\n", r.HeapMB, r.Config)
}

// Table4 reports the default configuration.
func Table4(Config) *Table4Result {
	cl := cluster.A()
	sp := tune.NewSpace(cl, workload.KMeans())
	return &Table4Result{HeapMB: cl.HeapPerContainer(1), Config: sp.Default()}
}

// Table7Result lists the LHS bootstrap configurations.
type Table7Result struct{ Rows []string }

func (r *Table7Result) String() string {
	return "== Table 7: LHS bootstrap samples\n" + strings.Join(r.Rows, "\n") + "\n"
}

// Table7 reproduces the bootstrap sample set.
func Table7(Config) *Table7Result {
	sp := tune.NewSpace(cluster.A(), workload.KMeans())
	res := &Table7Result{}
	for _, c := range tune.PaperLHS(sp) {
		res.Rows = append(res.Rows, c.String())
	}
	return res
}

// evalApps returns the five benchmark workloads of the evaluation.
func evalApps() []workload.Spec { return workload.Benchmarks() }

// PolicyComparison aggregates the policy runs behind Figures 16/17 and
// Table 8. Building it once serves all three experiments.
type PolicyComparison struct {
	Baselines map[string]Baseline
	Runs      []PolicyRun // one per (app, policy, rep): reps only for quality stats
}

// comparePolicies trains every policy on every app.
func comparePolicies(c Config, policies []string) *PolicyComparison {
	cl := cluster.A()
	out := &PolicyComparison{Baselines: map[string]Baseline{}}
	for ai, wl := range evalApps() {
		base := baselineFor(cl, wl, c.seed()+uint64(ai)*101)
		out.Baselines[wl.Name] = base
		for pi, p := range policies {
			run := trainPolicy(p, cl, wl, c.seed()+uint64(ai*10+pi)*7919, base.Top5Sec)
			out.Runs = append(out.Runs, run)
		}
	}
	return out
}

// Figure16Result reports training overheads as % of exhaustive search.
type Figure16Result struct {
	Rows []struct {
		App        string
		Policy     string
		Iterations int
		PctOfExh   float64
	}
}

func (r *Figure16Result) String() string {
	t := &table{header: []string{"app", "policy", "iterations", "% of exhaustive"}}
	for _, row := range r.Rows {
		t.add(row.App, row.Policy, fmt.Sprint(row.Iterations), f1(row.PctOfExh))
	}
	return "== Figure 16: training overheads (time to reach top-5% of exhaustive)\n" + t.String()
}

// Figure16 trains DDPG, BO, GBO and RelM on each app until they reach the
// top-5-percentile bar, repeating the process several times as the paper
// does (5-10 reps, mean values plotted), and reports the mean stress-testing
// time as a percentage of the exhaustive search with mean iteration counts.
func Figure16(c Config) *Figure16Result {
	cl := cluster.A()
	res := &Figure16Result{}
	reps := c.reps(5)
	for ai, wl := range evalApps() {
		base := baselineFor(cl, wl, c.seed()+uint64(ai)*101)
		for _, policy := range []string{"DDPG", "BO", "GBO", "RelM"} {
			var iterSum, stressSum float64
			for rep := 0; rep < reps; rep++ {
				run := trainPolicy(policy, cl, wl, c.seed()+uint64(ai*100+rep*17+len(policy))*7919, base.Top5Sec)
				iters, stress := run.IterToTop5, run.StressToTop5
				if iters == 0 { // never reached the bar: charge the full training
					iters, stress = run.Iterations, run.StressSec
				}
				iterSum += float64(iters)
				stressSum += stress
			}
			res.Rows = append(res.Rows, struct {
				App        string
				Policy     string
				Iterations int
				PctOfExh   float64
			}{wl.Name, policy, int(iterSum/float64(reps) + 0.5), 100 * stressSum / float64(reps) / base.TotalSec})
		}
	}
	return res
}

// Figure17Result reports recommendation quality scaled to the defaults.
type Figure17Result struct {
	Rows []struct {
		App        string
		Policy     string
		Scaled     float64
		RuntimeMin float64
		Failures   int
		Aborted    bool
	}
}

func (r *Figure17Result) String() string {
	t := &table{header: []string{"app", "policy", "scaled", "runtime(min)", "failures", "aborted"}}
	for _, row := range r.Rows {
		t.add(row.App, row.Policy, f2(row.Scaled), f1(row.RuntimeMin), fmt.Sprint(row.Failures), fmt.Sprintf("%v", row.Aborted))
	}
	return "== Figure 17: runtime of recommended configurations scaled to MaxResourceAllocation\n" + t.String()
}

// Figure17 compares the recommendation quality of every policy, scaled to
// the MaxResourceAllocation default, with container-failure labels.
func Figure17(c Config) *Figure17Result {
	cmp := comparePolicies(c, []string{"DDPG", "BO", "GBO", "RelM"})
	res := &Figure17Result{}
	add := func(app, policy string, runtimeMin float64, failures int, aborted bool) {
		base := cmp.Baselines[app]
		res.Rows = append(res.Rows, struct {
			App        string
			Policy     string
			Scaled     float64
			RuntimeMin float64
			Failures   int
			Aborted    bool
		}{app, policy, runtimeMin / base.DefaultMin, runtimeMin, failures, aborted})
	}
	for _, wl := range evalApps() {
		base := cmp.Baselines[wl.Name]
		add(wl.Name, "MaxResourceAllocation", base.DefaultMin, 0, false)
		add(wl.Name, "Exhaustive", base.BestMin, 0, false)
	}
	for _, run := range cmp.Runs {
		add(run.App, run.Policy, run.RuntimeMin, run.FailedCont, run.Aborted)
	}
	return res
}

// Table8Result lists the recommended configurations.
type Table8Result struct {
	Rows []struct {
		App    string
		Policy string
		Config string
	}
}

func (r *Table8Result) String() string {
	t := &table{header: []string{"app", "policy", "configuration"}}
	for _, row := range r.Rows {
		t.add(row.App, row.Policy, row.Config)
	}
	return "== Table 8: recommendations by tuning policies\n" + t.String()
}

// Table8 collects the recommendations of every policy.
func Table8(c Config) *Table8Result {
	cmp := comparePolicies(c, []string{"DDPG", "BO", "GBO", "RelM"})
	res := &Table8Result{}
	for _, wl := range evalApps() {
		base := cmp.Baselines[wl.Name]
		res.Rows = append(res.Rows, struct {
			App    string
			Policy string
			Config string
		}{wl.Name, "Exhaustive", base.BestCfg.String()})
	}
	for _, run := range cmp.Runs {
		res.Rows = append(res.Rows, struct {
			App    string
			Policy string
			Config string
		}{run.App, run.Policy, run.Config.String()})
	}
	return res
}

// Table9Result is the BO run log for SVM.
type Table9Result struct {
	Rows []struct {
		Sample     string
		Config     string
		RuntimeMin float64
	}
}

func (r *Table9Result) String() string {
	t := &table{header: []string{"sample", "configuration", "runtime(min)"}}
	for _, row := range r.Rows {
		t.add(row.Sample, row.Config, f1(row.RuntimeMin))
	}
	return "== Table 9: one BO run on SVM (samples 0* are the LHS bootstrap)\n" + t.String()
}

// Table9 logs a single BO run on SVM, bootstrap samples first.
func Table9(c Config) *Table9Result {
	cl := cluster.A()
	wl := workload.SVM()
	ev := tune.NewEvaluator(cl, wl, c.seed())
	boRun(ev, c.seed())
	res := &Table9Result{}
	for i, s := range ev.History() {
		label := fmt.Sprint(i - 3)
		if i < 4 {
			label = fmt.Sprintf("0.%d", i+1)
		}
		res.Rows = append(res.Rows, struct {
			Sample     string
			Config     string
			RuntimeMin float64
		}{label, s.Config.String(), s.RuntimeSec / 60})
	}
	return res
}

// Figure18 and Figure19: training time + iteration distributions.
type BoxesResult struct {
	ID, App string
	Boxes   map[string]stats.BoxSummary // policy → training-minutes box
	Iters   map[string]stats.BoxSummary // policy → iterations box
}

func (r *BoxesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: BO vs GBO training distributions for %s\n", r.ID, r.App)
	for _, p := range []string{"BO", "GBO"} {
		box := r.Boxes[p]
		it := r.Iters[p]
		fmt.Fprintf(&b, "%-4s time(min): min %.0f  q25 %.0f  med %.0f  q75 %.0f  max %.0f   iters: %.0f/%.0f/%.0f\n",
			p, box.Min, box.Q25, box.Median, box.Q75, box.Max, it.Q25, it.Median, it.Q75)
	}
	return b.String()
}

func boxesFor(c Config, wl workload.Spec, id string) *BoxesResult {
	cl := cluster.A()
	base := baselineFor(cl, wl, c.seed()+911)
	res := &BoxesResult{ID: id, App: wl.Name, Boxes: map[string]stats.BoxSummary{}, Iters: map[string]stats.BoxSummary{}}
	reps := c.reps(7)
	for _, policy := range []string{"BO", "GBO"} {
		var mins, iters []float64
		for rep := 0; rep < reps; rep++ {
			run := trainPolicy(policy, cl, wl, c.seed()+uint64(rep)*4241+uint64(len(policy)), base.Top5Sec)
			stress, it := run.StressToTop5, run.IterToTop5
			if it == 0 {
				stress, it = run.StressSec, run.Iterations
			}
			mins = append(mins, stress/60)
			iters = append(iters, float64(it))
		}
		res.Boxes[policy] = stats.Box(mins)
		res.Iters[policy] = stats.Box(iters)
	}
	return res
}

// Figure18 runs the distribution study for K-means.
func Figure18(c Config) *BoxesResult { return boxesFor(c, workload.KMeans(), "Figure 18") }

// Figure19 runs the distribution study for SVM.
func Figure19(c Config) *BoxesResult { return boxesFor(c, workload.SVM(), "Figure 19") }

// Figure20Result holds convergence curves for K-means.
type Figure20Result struct {
	DefaultMin float64
	Top5Min    float64
	Curves     map[string][][]float64 // policy → per-rep best-so-far (minutes)
}

func (r *Figure20Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Figure 20: convergence on K-means (default %.1fmin, top-5%% bar %.1fmin)\n", r.DefaultMin, r.Top5Min)
	for _, p := range []string{"DDPG", "BO", "GBO"} {
		reps := r.Curves[p]
		if len(reps) == 0 {
			continue
		}
		n := 0
		for _, c := range reps {
			if len(c) > n {
				n = len(c)
			}
		}
		fmt.Fprintf(&b, "%-5s best-so-far(min) mean over %d reps:", p, len(reps))
		for i := 0; i < n; i++ {
			var vals []float64
			for _, c := range reps {
				v := math.Inf(1)
				if i < len(c) {
					v = c[i]
				} else if len(c) > 0 {
					v = c[len(c)-1]
				}
				if !math.IsInf(v, 0) {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				b.WriteString(" -") // no completed run yet at this sample
				continue
			}
			fmt.Fprintf(&b, " %.1f", stats.Mean(vals)/60)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure20 collects best-so-far convergence curves of DDPG, BO and GBO on
// K-means across repetitions.
func Figure20(c Config) *Figure20Result {
	cl := cluster.A()
	wl := workload.KMeans()
	base := baselineFor(cl, wl, c.seed()+912)
	res := &Figure20Result{
		DefaultMin: base.DefaultMin,
		Top5Min:    base.Top5Sec / 60,
		Curves:     map[string][][]float64{},
	}
	reps := c.reps(5)
	for _, policy := range []string{"DDPG", "BO", "GBO"} {
		for rep := 0; rep < reps; rep++ {
			run := trainPolicy(policy, cl, wl, c.seed()+uint64(rep)*6007+uint64(len(policy)*13), base.Top5Sec)
			res.Curves[policy] = append(res.Curves[policy], run.Curve)
		}
	}
	return res
}
