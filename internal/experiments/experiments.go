// Package experiments regenerates every table and figure of the paper's
// empirical study (§3) and evaluation (§6) on the simulated cluster. Each
// harness returns a typed result that formats itself like the paper's
// corresponding artifact; the registry maps experiment IDs ("figure4",
// "table8", ...) to their runners for the CLI and the benchmark suite.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives all randomness; a fixed seed reproduces a run exactly.
	Seed uint64
	// Reps is the number of repetitions where the paper repeats runs
	// (failure studies, tuning-policy distributions).
	Reps int
	// Quick reduces repetition counts and budgets for fast test runs.
	Quick bool
}

func (c Config) reps(def int) int {
	if c.Reps > 0 {
		def = c.Reps
	}
	if c.Quick && def > 2 {
		def = 2
	}
	return def
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// Runner produces a printable result.
type Runner func(Config) fmt.Stringer

// registry of all experiments by ID.
var registry = map[string]Runner{}

// descriptions for the CLI listing.
var descriptions = map[string]string{}

func register(id, desc string, r Runner) {
	registry[id] = r
	descriptions[id] = desc
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of an experiment.
func Describe(id string) string { return descriptions[id] }

// Run executes one experiment by ID.
func Run(id string, cfg Config) (fmt.Stringer, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(cfg), nil
}

// table is a small helper for fixed-width text tables.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	line(separators(widths))
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func separators(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
