package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 1, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of DESIGN.md's per-experiment index.
	want := []string{
		"table4", "table5", "table6", "table7", "table8", "table9", "table10",
		"figure4", "figure5", "figure6", "figure7", "figure8", "figure9",
		"figure10", "figure11", "figure13", "figure16", "figure17",
		"figure18", "figure19", "figure20", "figure21", "figure22",
		"figure23", "figure24", "figure25", "figure26", "figure27",
	}
	ids := map[string]bool{}
	for _, id := range IDs() {
		ids[id] = true
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("experiment %q not registered", id)
		}
		if Describe(id) == "" {
			t.Errorf("experiment %q has no description", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestFigure4Shapes(t *testing.T) {
	res := Figure4(quickCfg())
	byApp := map[string][]SweepPoint{}
	for _, p := range res.Points {
		byApp[p.App] = append(byApp[p.App], p)
	}
	// WordCount and SortByKey improve on thin containers (Obs 1).
	for _, app := range []string{"WordCount", "SortByKey"} {
		pts := byApp[app]
		if pts[3].Scaled >= 1 {
			t.Errorf("%s should speed up at n=4: scaled %v", app, pts[3].Scaled)
		}
	}
	// K-means fails at n=4 (§3.1).
	km := byApp["K-means"]
	if !km[3].Failed {
		t.Error("K-means must fail with 4 containers per node")
	}
	// CPU utilization rises with container count.
	wc := byApp["WordCount"]
	if wc[3].CPUUtil <= wc[0].CPUUtil {
		t.Error("CPU utilization must rise with thin containers")
	}
}

func TestFigure5Variability(t *testing.T) {
	res := Figure5(Config{Seed: 1, Reps: 5})
	totalFailures := 0
	aborts := 0
	for _, r := range res.Runs {
		totalFailures += r.Failures
		if r.Aborted {
			aborts++
		}
	}
	if totalFailures == 0 {
		t.Fatal("unsafe configurations must produce container failures")
	}
	if aborts == 0 {
		t.Fatal("some unsafe runs must abort")
	}
	if aborts == len(res.Runs) {
		t.Fatal("not every unsafe run aborts (high variability is the point)")
	}
}

func TestFigure6ConcurrencyPlateau(t *testing.T) {
	res := Figure6(quickCfg())
	byApp := map[string][]SweepPoint{}
	for _, p := range res.Points {
		byApp[p.App] = append(byApp[p.App], p)
	}
	// Every app improves from p=1 to its best point.
	for app, pts := range byApp {
		best := pts[0].Scaled
		for _, p := range pts {
			if p.Scaled < best {
				best = p.Scaled
			}
		}
		if best >= 1 && app != "PageRank" {
			t.Errorf("%s never improved with concurrency", app)
		}
	}
	// PageRank fails for p >= 2 region (the paper's OOM note).
	pr := byApp["PageRank"]
	failed := 0
	for _, p := range pr[1:] {
		if p.Failed {
			failed++
		}
	}
	if failed == 0 {
		t.Error("PageRank should fail at higher concurrency")
	}
}

func TestFigure7CacheCurves(t *testing.T) {
	res := Figure7(quickCfg())
	var svm []SweepPoint
	for _, p := range res.Points {
		if p.App == "SVM" {
			svm = append(svm, p)
		}
	}
	// SVM reaches hit ratio 1 once capacity ≥ ~0.5 (Obs 4 / Figure 7d).
	for _, p := range svm {
		if p.X >= 0.55 && p.HitRatio < 0.99 {
			t.Errorf("SVM at capacity %v: hit ratio %v", p.X, p.HitRatio)
		}
		if p.X <= 0.2 && p.HitRatio > 0.95 {
			t.Errorf("SVM at capacity %v: hit ratio %v (should miss)", p.X, p.HitRatio)
		}
	}
}

func TestFigure8NewRatioOneThrashes(t *testing.T) {
	res := Figure8(quickCfg())
	var nr1hi, nr2hi *HeatCell
	for i := range res.Cells {
		c := &res.Cells[i]
		if c.Capacity == 0.6 && c.NewRatio == 1 {
			nr1hi = c
		}
		if c.Capacity == 0.6 && c.NewRatio == 2 {
			nr2hi = c
		}
	}
	if nr1hi == nil || nr2hi == nil {
		t.Fatal("cells missing")
	}
	if !nr1hi.Failed && nr1hi.GCOver <= nr2hi.GCOver {
		t.Errorf("NR=1 must thrash vs NR=2 at cache 0.6: %v vs %v", nr1hi.GCOver, nr2hi.GCOver)
	}
}

func TestFigure9MinimumNearTwo(t *testing.T) {
	res := Figure9(quickCfg())
	if len(res.NewRatios) != 8 {
		t.Fatal("expected NR 1..8")
	}
	best := 0
	for i, v := range res.GCOver {
		if v > 0 && (res.GCOver[best] == 0 || v < res.GCOver[best]) {
			best = i
		}
	}
	if nr := res.NewRatios[best]; nr < 2 || nr > 3 {
		t.Errorf("GC-overhead minimum at NR=%d, expected 2-3", nr)
	}
	if res.GCOver[0] <= res.GCOver[1] {
		t.Error("NR=1 (Old < cache) must have higher overhead than NR=2")
	}
}

func TestFigure10ShuffleInteraction(t *testing.T) {
	res := Figure10(quickCfg())
	// At fixed NewRatio, GC overhead grows with shuffle capacity; at fixed
	// capacity 0.3, it grows with NewRatio (Eden shrink).
	get := func(nr int, cap float64) HeatCell {
		for _, c := range res.Cells {
			if c.NewRatio == nr && c.Capacity == cap {
				return c
			}
		}
		t.Fatalf("cell NR=%d cap=%v missing", nr, cap)
		return HeatCell{}
	}
	if get(1, 0.3).GCOver <= get(1, 0.05).GCOver {
		t.Error("GC overhead must rise with shuffle capacity at NR=1")
	}
	if get(3, 0.3).GCOver <= get(1, 0.3).GCOver {
		t.Error("GC overhead must rise with NewRatio at shuffle 0.3")
	}
}

func TestFigure11NewRatioContrast(t *testing.T) {
	res := Figure11(quickCfg())
	if !res.Exceeds[2] {
		t.Error("NewRatio 2 must exceed the physical cap (Figure 11 left)")
	}
	if res.Exceeds[5] {
		t.Error("NewRatio 5 must stay under the cap (Figure 11 right)")
	}
	if res.GCInterval[2] <= res.GCInterval[5] {
		t.Error("NewRatio 2 must collect less frequently")
	}
}

func TestTable5Ordering(t *testing.T) {
	res := Table5(Config{Seed: 1, Reps: 4})
	if len(res.Rows) != 4 {
		t.Fatal("Table 5 has four rows")
	}
	def := res.Rows[0]
	for i, row := range res.Rows[1:] {
		if !def.Aborted && row.RuntimeMin >= def.RuntimeMin*1.3 {
			t.Errorf("manual fix %d should not be much slower than the default", i+1)
		}
		if row.Aborted {
			t.Errorf("manual fix %d should be reliable", i+1)
		}
	}
}

func TestTable6MatchesPaperColumn(t *testing.T) {
	st := Table6(quickCfg()).Stats
	// The paper's example column: Mi=115, Mc=2300, Mu=770, P=2, H=0.3.
	if st.MiMB < 90 || st.MiMB > 140 {
		t.Errorf("Mi = %v, paper 115", st.MiMB)
	}
	if st.McMB < 2000 || st.McMB > 2800 {
		t.Errorf("Mc = %v, paper 2300", st.McMB)
	}
	if st.MuMB < 650 || st.MuMB > 900 {
		t.Errorf("Mu = %v, paper 770", st.MuMB)
	}
	if st.H < 0.2 || st.H > 0.45 {
		t.Errorf("H = %v, paper 0.3", st.H)
	}
}

func TestFigure13TraceStructure(t *testing.T) {
	res := Figure13(quickCfg())
	if len(res.Steps) < 4 {
		t.Fatal("expected several arbitrator steps")
	}
	actions := map[string]bool{}
	for _, s := range res.Steps {
		actions[s.Action] = true
	}
	for _, a := range []string{"init", "p--", "mc-=Mu", "final"} {
		if !actions[a] {
			t.Errorf("trace missing action %q", a)
		}
	}
}

func TestFigure22OverestimateWithoutFullGC(t *testing.T) {
	res := Figure22(quickCfg())
	var withGC, withoutGC []float64
	for _, p := range res.Points {
		if p.FullGC {
			withGC = append(withGC, p.MuEstimate)
		} else {
			withoutGC = append(withoutGC, p.MuEstimate)
		}
	}
	if len(withGC) == 0 || len(withoutGC) == 0 {
		t.Fatalf("need both profile kinds: %d with, %d without", len(withGC), len(withoutGC))
	}
	avg := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if avg(withoutGC) < 3*avg(withGC) {
		t.Errorf("no-full-GC profiles must grossly over-estimate Mu: %v vs %v", avg(withoutGC), avg(withGC))
	}
	// Estimates from full-GC profiles cluster near the true value.
	for _, v := range withGC {
		if v > 3*res.TrueMu {
			t.Errorf("full-GC estimate %v too far from true %v", v, res.TrueMu)
		}
	}
}

func TestFigure16RelMCheapest(t *testing.T) {
	res := Figure16(quickCfg())
	cost := map[string]map[string]float64{}
	for _, r := range res.Rows {
		if cost[r.App] == nil {
			cost[r.App] = map[string]float64{}
		}
		cost[r.App][r.Policy] = r.PctOfExh
	}
	for app, m := range cost {
		for policy, pct := range m {
			if policy == "RelM" {
				continue
			}
			if m["RelM"] > pct {
				t.Errorf("%s: RelM (%v%%) must be cheaper than %s (%v%%)", app, m["RelM"], policy, pct)
			}
		}
		if m["RelM"] > 3 {
			t.Errorf("%s: RelM overhead %v%% too high", app, m["RelM"])
		}
	}
}

func TestFigure17QualityBounds(t *testing.T) {
	res := Figure17(quickCfg())
	for _, row := range res.Rows {
		if row.Policy == "MaxResourceAllocation" {
			if row.Scaled != 1 {
				t.Errorf("%s default must scale to 1", row.App)
			}
			continue
		}
		// Black-box policies may recommend unreliable configurations (the
		// paper's GBO does for PageRank); those runs carry failure labels.
		if row.Scaled > 1.35 && row.Failures == 0 && !row.Aborted {
			t.Errorf("%s/%s recommendation much worse than default without failures: %v",
				row.App, row.Policy, row.Scaled)
		}
		if row.Policy == "Exhaustive" && row.Scaled > 1 {
			t.Errorf("%s: exhaustive best cannot be worse than default", row.App)
		}
		// RelM treats safety as a first-class goal: no aborts, and close to
		// or better than the default.
		if row.Policy == "RelM" {
			if row.Aborted {
				t.Errorf("%s: RelM recommendation aborted", row.App)
			}
			if row.Scaled > 1.2 {
				t.Errorf("%s: RelM recommendation worse than default: %v", row.App, row.Scaled)
			}
		}
	}
}

func TestTable9LogShape(t *testing.T) {
	res := Table9(quickCfg())
	if len(res.Rows) < 5 {
		t.Fatalf("BO log too short: %d", len(res.Rows))
	}
	for i := 0; i < 4; i++ {
		if !strings.HasPrefix(res.Rows[i].Sample, "0.") {
			t.Errorf("row %d should be a bootstrap sample", i)
		}
	}
}

func TestFigure21RelMSavesTime(t *testing.T) {
	res := Figure21(quickCfg())
	if res.TotalRelM >= res.TotalDefault {
		t.Fatalf("RelM must cut TPC-H time: %v vs %v", res.TotalRelM, res.TotalDefault)
	}
	saving := 1 - res.TotalRelM/res.TotalDefault
	if saving < 0.15 {
		t.Errorf("TPC-H saving %v too small (paper: 40%%)", saving)
	}
}

func TestFigure24PositiveCorrelation(t *testing.T) {
	res := Figure24(quickCfg())
	positive := 0
	for _, row := range res.Rows {
		if row.Spearman > 0 {
			positive++
		}
	}
	if positive < len(res.Rows)/2+1 {
		t.Errorf("utility ranking should correlate with runtime ranking for most apps: %d/%d", positive, len(res.Rows))
	}
}

func TestFigure27AgentTransfers(t *testing.T) {
	res := Figure27(quickCfg())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The cross-tested agent (5 samples) should not be dramatically worse
	// than the scratch-trained one (the paper's adaptability claim).
	cross, scratch := res.Rows[0].RuntimeMin, res.Rows[1].RuntimeMin
	if cross > scratch*1.6 {
		t.Errorf("cross-cluster agent too weak: %v vs %v", cross, scratch)
	}
	if res.Rows[0].Samples >= res.Rows[1].Samples {
		t.Error("cross-testing must use fewer samples")
	}
}

func TestTable4AndTable7Render(t *testing.T) {
	if !strings.Contains(Table4(quickCfg()).String(), "4404") {
		t.Error("Table 4 must show the 4404MB heap")
	}
	t7 := Table7(quickCfg()).String()
	for _, frag := range []string{"n=1 p=4", "n=2 p=1", "n=3 p=2", "n=4 p=2"} {
		if !strings.Contains(t7, frag) {
			t.Errorf("Table 7 missing %q", frag)
		}
	}
}

func TestAllExperimentsRenderNonEmpty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, id := range IDs() {
		res, err := Run(id, quickCfg())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.String() == "" {
			t.Errorf("%s renders empty", id)
		}
	}
}
