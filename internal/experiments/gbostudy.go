package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"relm/internal/bo"
	"relm/internal/conf"
	"relm/internal/core"
	"relm/internal/ddpg"
	"relm/internal/gbo"
	"relm/internal/gp"
	"relm/internal/profile"
	"relm/internal/rf"
	"relm/internal/sim"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/stats"
	"relm/internal/tune"
)

func init() {
	register("figure25", "surrogate accuracy (R²) on a validation set: BO vs GBO", func(c Config) fmt.Stringer { return Figure25(c) })
	register("figure26", "GP vs Random Forest surrogates under BO and GBO", func(c Config) fmt.Stringer { return Figure26(c) })
	register("figure27", "DDPG generality: cross-cluster and cross-dataset reuse", func(c Config) fmt.Stringer { return Figure27(c) })
	register("figure21", "TPC-H: MaxResourceAllocation vs RelM on Cluster B", func(c Config) fmt.Stringer { return Figure21(c) })
	register("table10", "per-iteration algorithm overheads and model sizes", func(c Config) fmt.Stringer { return Table10(c) })
}

// Figure25Result tracks surrogate R² against sample count.
type Figure25Result struct {
	Samples []int
	R2BO    []float64
	R2GBO   []float64
	// PearsonBO/GBO report the strongest feature correlation with runtime
	// in each model's feature set (§6.5's analysis).
	PearsonBO  float64
	PearsonGBO float64
}

func (r *Figure25Result) String() string {
	var b strings.Builder
	b.WriteString("== Figure 25: surrogate R² on a validation set (K-means)\n")
	t := &table{header: []string{"samples", "R2 BO", "R2 GBO"}}
	for i, n := range r.Samples {
		t.add(fmt.Sprint(n), f2(r.R2BO[i]), f2(r.R2GBO[i]))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "strongest |Pearson| with runtime — BO features: %.2f, GBO guide metrics: %.2f\n",
		r.PearsonBO, r.PearsonGBO)
	return b.String()
}

// Figure25 trains the BO and GBO surrogates on growing sample sets and
// measures the coefficient of determination on a held-out validation set
// (~10% of the exhaustive grid), reproducing the accuracy-vs-samples study.
func Figure25(c Config) *Figure25Result {
	cl := cluster.A()
	wl := workload.KMeans()
	sp := tune.NewSpace(cl, wl)

	// Validation set: every 10th grid configuration, evaluated once.
	grid := sp.Grid()
	var valCfg []conf.Config
	var valY []float64
	for i := 0; i < len(grid); i += 10 {
		r, _ := sim.Run(cl, wl, grid[i], c.seed()+uint64(i))
		if r.Aborted {
			continue
		}
		valCfg = append(valCfg, grid[i])
		valY = append(valY, r.RuntimeSec)
	}

	// Training stream: LHS bootstrap then random probes, shared by both
	// models so the comparison isolates the feature sets.
	ev := tune.NewEvaluator(cl, wl, c.seed()+5001)
	var train []tune.Sample
	for _, cfg := range tune.PaperLHS(sp) {
		train = append(train, ev.Eval(cfg))
	}
	rng := simrandFor(c.seed() + 77)
	maxN := 20
	if c.Quick {
		maxN = 8
	}
	for len(train) < maxN {
		x := make([]float64, sp.Dim())
		for d := range x {
			x[d] = rng.Float64()
		}
		train = append(train, ev.Eval(sp.Decode(x)))
	}

	qm := gbo.NewModel(cl, profile.Generate(train[0].Profile))
	gboFeat := func(s tune.Sample) []float64 {
		return append(append([]float64(nil), s.X...), qm.ExtraFeatures(s.Config)...)
	}
	gboFeatCfg := func(cfg conf.Config) []float64 {
		return append(append([]float64(nil), sp.Encode(cfg)...), qm.ExtraFeatures(cfg)...)
	}

	// The accuracy study models the completed-run response surface in
	// log-runtime space (abort penalties are an objective-shaping device,
	// not part of the surface).
	logValY := make([]float64, len(valY))
	for i, v := range valY {
		logValY[i] = math.Log(v)
	}
	res := &Figure25Result{}
	for n := 4; n <= len(train); n += 2 {
		var xsBO, xsGBO [][]float64
		var ys []float64
		for _, s := range train[:n] {
			if s.Result.Aborted {
				continue
			}
			xsBO = append(xsBO, s.X)
			xsGBO = append(xsGBO, gboFeat(s))
			ys = append(ys, math.Log(s.RuntimeSec))
		}
		if len(ys) < 3 {
			continue
		}
		r2 := func(xs [][]float64, encode func(conf.Config) []float64, baseDims int) float64 {
			model, err := fitGP(xs, ys, baseDims)
			if err != nil {
				return 0
			}
			var pred []float64
			for _, cfg := range valCfg {
				m, _ := model.Predict(encode(cfg))
				pred = append(pred, m)
			}
			return stats.RSquared(logValY, pred)
		}
		res.Samples = append(res.Samples, n)
		res.R2BO = append(res.R2BO, r2(xsBO, func(cfg conf.Config) []float64 { return sp.Encode(cfg) }, sp.Dim()))
		res.R2GBO = append(res.R2GBO, r2(xsGBO, gboFeatCfg, sp.Dim()))
	}

	// Feature correlations on the full training set.
	var ys []float64
	for _, s := range train {
		ys = append(ys, s.Objective)
	}
	maxAbs := func(featAt func(tune.Sample) []float64, dims int) float64 {
		best := 0.0
		for d := 0; d < dims; d++ {
			var col []float64
			for _, s := range train {
				col = append(col, featAt(s)[d])
			}
			if r := stats.Pearson(col, ys); r*r > best*best {
				best = r
			}
		}
		if best < 0 {
			best = -best
		}
		return best
	}
	res.PearsonBO = maxAbs(func(s tune.Sample) []float64 { return s.X }, sp.Dim())
	res.PearsonGBO = maxAbs(func(s tune.Sample) []float64 { return qm.ExtraFeatures(s.Config) }, 3)
	return res
}

func fitGP(xs [][]float64, ys []float64, baseDims int) (bo.Surrogate, error) {
	return fitGPKind("rbf", xs, ys, baseDims)
}

// Figure26Result compares surrogate choices.
type Figure26Result struct {
	Rows []struct {
		App        string
		Variant    string // BO-GP, GBO-GP, BO-RF, GBO-RF
		Iterations int
		TrainMin   float64
	}
}

func (r *Figure26Result) String() string {
	t := &table{header: []string{"app", "variant", "iterations", "training time (min)"}}
	for _, row := range r.Rows {
		t.add(row.App, row.Variant, fmt.Sprint(row.Iterations), f0(row.TrainMin))
	}
	return "== Figure 26: Gaussian Process vs Random Forest surrogates\n" + t.String()
}

// Figure26 swaps the Gaussian Process for a Random Forest under both BO and
// GBO on K-means and SVM.
func Figure26(c Config) *Figure26Result {
	cl := cluster.A()
	res := &Figure26Result{}
	reps := c.reps(3)
	for _, wl := range []workload.Spec{workload.KMeans(), workload.SVM()} {
		base := baselineFor(cl, wl, c.seed()+601)
		for _, variant := range []string{"BO-GP", "GBO-GP", "BO-RF", "GBO-RF"} {
			var iterSum, minSum float64
			for rep := 0; rep < reps; rep++ {
				seed := c.seed() + uint64(rep*31+len(variant))
				opts := bo.Options{Seed: seed, UsePaperLHS: rep == 0}
				if strings.HasSuffix(variant, "-RF") {
					opts.Surrogate.Model = &rf.Surrogate{Opts: rf.Options{Seed: seed}}
				}
				ev := tune.NewEvaluator(cl, wl, seed)
				var run bo.Result
				if strings.HasPrefix(variant, "GBO") {
					run, _ = gbo.Run(ev, opts)
				} else {
					run = bo.Run(ev, opts, nil)
				}
				_ = run
				iters, stress := timeToTop5(ev, base.Top5Sec)
				iterSum += float64(iters)
				minSum += stress / 60
			}
			res.Rows = append(res.Rows, struct {
				App        string
				Variant    string
				Iterations int
				TrainMin   float64
			}{wl.Name, variant, int(iterSum/float64(reps) + 0.5), minSum / float64(reps)})
		}
	}
	return res
}

func timeToTop5(ev *tune.Evaluator, top5 float64) (int, float64) {
	var acc float64
	for i, s := range ev.History() {
		acc += s.RuntimeSec
		if top5 > 0 && !s.Result.Aborted && s.RuntimeSec <= top5 {
			return i + 1, acc
		}
	}
	return ev.Evals(), ev.TotalRuntime()
}

// Figure27Result reports DDPG model re-use.
type Figure27Result struct {
	Rows []struct {
		Scenario   string
		RuntimeMin float64
		Samples    int
	}
}

func (r *Figure27Result) String() string {
	t := &table{header: []string{"scenario", "best runtime (min)", "samples used"}}
	for _, row := range r.Rows {
		t.add(row.Scenario, f1(row.RuntimeMin), fmt.Sprint(row.Samples))
	}
	return "== Figure 27: DDPG generality (SVM; cross-cluster and cross-dataset)\n" + t.String()
}

// scaledSVM returns the SVM workload with its dataset scaled by factor (the
// s1→s2 dataset change of §6.6).
func scaledSVM(factor float64) workload.Spec {
	return workload.Scale(workload.SVM(), factor)
}

// Figure27 trains DDPG for SVM on Cluster A, then re-uses the agent on
// Cluster B with only 5 test samples (DDPG^B_A), comparing against an agent
// trained from scratch on B (DDPG^B_B); and repeats the exercise across a
// dataset-scale change on B.
func Figure27(c Config) *Figure27Result {
	res := &Figure27Result{}
	add := func(name string, best tune.Sample, samples int) {
		res.Rows = append(res.Rows, struct {
			Scenario   string
			RuntimeMin float64
			Samples    int
		}{name, best.RuntimeSec / 60, samples})
	}

	// Train on Cluster A.
	evA := tune.NewEvaluator(cluster.A(), workload.SVM(), c.seed())
	trained := ddpg.Tune(evA, nil, ddpg.TuneOptions{Seed: c.seed()})

	// Cross-test on Cluster B with 5 samples, reusing the agent (noise off
	// would be pure exploitation; the paper allows light exploration).
	evB := tune.NewEvaluator(cluster.B(), workload.SVM(), c.seed()+11)
	cross := ddpg.Tune(evB, trained.Agent, ddpg.TuneOptions{MaxSteps: 5, Seed: c.seed() + 11})
	add("DDPG^B_A (A-trained, 5 samples on B)", cross.Best, evB.Evals())

	// From scratch on B.
	evB2 := tune.NewEvaluator(cluster.B(), workload.SVM(), c.seed()+12)
	scratch := ddpg.Tune(evB2, nil, ddpg.TuneOptions{Seed: c.seed() + 12})
	add("DDPG^B_B (trained on B)", scratch.Best, evB2.Evals())

	// Dataset scale change s1 → s2 on B.
	evS1 := tune.NewEvaluator(cluster.B(), scaledSVM(1), c.seed()+13)
	s1 := ddpg.Tune(evS1, nil, ddpg.TuneOptions{Seed: c.seed() + 13})
	evS2 := tune.NewEvaluator(cluster.B(), scaledSVM(2), c.seed()+14)
	s2cross := ddpg.Tune(evS2, s1.Agent, ddpg.TuneOptions{MaxSteps: 5, Seed: c.seed() + 14})
	add("DDPG^s2_s1 (s1-trained, 5 samples on s2)", s2cross.Best, evS2.Evals())
	evS2b := tune.NewEvaluator(cluster.B(), scaledSVM(2), c.seed()+15)
	s2 := ddpg.Tune(evS2b, nil, ddpg.TuneOptions{Seed: c.seed() + 15})
	add("DDPG^s2_s2 (trained on s2)", s2.Best, evS2b.Evals())
	return res
}

// Figure21Result is the TPC-H study.
type Figure21Result struct {
	Rows []struct {
		Query      string
		DefaultMin float64
		RelMMin    float64
	}
	TotalDefault float64
	TotalRelM    float64
}

func (r *Figure21Result) String() string {
	t := &table{header: []string{"query", "MaxResourceAllocation (min)", "RelM (min)"}}
	for _, row := range r.Rows {
		t.add(row.Query, f1(row.DefaultMin), f1(row.RelMMin))
	}
	return fmt.Sprintf("== Figure 21: TPC-H on Cluster B\n%stotal: default %.0f min → RelM %.0f min (%.0f%% saving)\n",
		t, r.TotalDefault, r.TotalRelM, 100*(1-r.TotalRelM/r.TotalDefault))
}

// Figure21 runs the 22 TPC-H queries on Cluster B under the default policy,
// tunes the workload with RelM using the profile of the longest-running
// query's run, and re-runs all queries under the recommendation.
func Figure21(c Config) *Figure21Result {
	cl := cluster.B()
	res := &Figure21Result{}
	tuner := core.New(cl)

	queries := workload.TPCH()
	if c.Quick {
		queries = queries[:6]
	}

	// Profile pass at the defaults; keep the heaviest query's profile.
	var heaviest *profile.Profile
	var heaviestSec float64
	defaults := make([]float64, len(queries))
	for i, q := range queries {
		r, prof := sim.Run(cl, q, conf.DefaultShuffle(), c.seed()+uint64(i))
		defaults[i] = r.RuntimeSec
		if r.RuntimeSec > heaviestSec {
			heaviestSec, heaviest = r.RuntimeSec, prof
		}
	}
	rec := conf.DefaultShuffle()
	if heaviest != nil {
		if cfg, _, err := tuner.Recommend(profile.Generate(heaviest)); err == nil {
			rec = cfg
		}
	}
	for i, q := range queries {
		r, _ := sim.Run(cl, q, rec, c.seed()+uint64(1000+i))
		res.Rows = append(res.Rows, struct {
			Query      string
			DefaultMin float64
			RelMMin    float64
		}{fmt.Sprintf("Q%d", i+1), defaults[i] / 60, r.RuntimeSec / 60})
		res.TotalDefault += defaults[i] / 60
		res.TotalRelM += r.RuntimeSec / 60
	}
	return res
}

// Table10Result reports measured per-iteration overheads.
type Table10Result struct {
	Rows []struct {
		Component string
		DDPG      string
		BO        string
		GBO       string
		RelM      string
	}
}

func (r *Table10Result) String() string {
	t := &table{header: []string{"component", "DDPG", "BO", "GBO", "RelM"}}
	for _, row := range r.Rows {
		t.add(row.Component, row.DDPG, row.BO, row.GBO, row.RelM)
	}
	return "== Table 10: tuning-algorithm overheads (measured on this host)\n" + t.String()
}

// Table10 measures the wall-clock cost of one iteration of each algorithm's
// components — statistics collection, model fitting, model probing — and
// the persisted model sizes, mirroring the paper's methodology on our host.
func Table10(c Config) *Table10Result {
	cl := cluster.A()
	wl := workload.KMeans()
	sp := tune.NewSpace(cl, wl)
	_, prof := sim.Run(cl, wl, conf.Default(), c.seed())

	// Statistics collection.
	statsDur := timeIt(func() { _ = profile.Generate(prof) })

	// Observation set for the model-based policies.
	ev := tune.NewEvaluator(cl, wl, c.seed()+31)
	var xs [][]float64
	var ys []float64
	for _, cfg := range tune.PaperLHS(sp) {
		s := ev.Eval(cfg)
		xs = append(xs, s.X)
		ys = append(ys, s.Objective)
	}
	for i := 0; i < 8; i++ {
		x := make([]float64, sp.Dim())
		rng := simrandFor(c.seed() + uint64(i))
		for d := range x {
			x[d] = rng.Float64()
		}
		s := ev.Eval(sp.Decode(x))
		xs = append(xs, s.X)
		ys = append(ys, s.Objective)
	}
	st := profile.Generate(prof)
	qm := gbo.NewModel(cl, st)
	gboXs := make([][]float64, len(xs))
	for i := range xs {
		gboXs[i] = append(append([]float64(nil), xs[i]...), qm.ExtraFeatures(ev.History()[i].Config)...)
	}

	// Model fitting.
	var boModel, gboModel bo.Surrogate
	boFit := timeIt(func() { boModel, _ = fitGPKind("rbf", xs, ys, sp.Dim()) })
	gboFit := timeIt(func() { gboModel, _ = fitGPKind("rbf", gboXs, ys, sp.Dim()) })
	agent := ddpg.NewAgent(ddpg.Options{StateDim: ddpg.StateDim, ActionDim: 4, Seed: c.seed()})
	for i := 0; i < 32; i++ {
		agent.Observe(ddpg.Transition{
			State:     make([]float64, ddpg.StateDim),
			Action:    make([]float64, 4),
			NextState: make([]float64, ddpg.StateDim),
			Reward:    float64(i % 3),
		})
	}
	ddpgFit := timeIt(func() { agent.Train() })
	tuner := core.New(cl)
	relmFit := timeIt(func() { _ = tuner.Initialize(st, 1) })

	// Model probing.
	probe := func(model bo.Surrogate) func() {
		return func() {
			rng := simrandFor(c.seed() + 97)
			for i := 0; i < 256; i++ {
				x := make([]float64, sp.Dim())
				for d := range x {
					x[d] = rng.Float64()
				}
				model.Predict(x)
			}
		}
	}
	boProbe := timeIt(probe(padding(boModel, 0)))
	gboProbe := timeIt(probe(padding(gboModel, 3)))
	ddpgProbe := timeIt(func() { agent.Act(make([]float64, ddpg.StateDim), false) })
	relmProbe := timeIt(func() { _, _, _ = tuner.Recommend(st) })

	// Model sizes: BO stores the training data; DDPG the network weights.
	boSize := 8 * len(xs) * (len(xs[0]) + 1)
	gboSize := 8 * len(gboXs) * (len(gboXs[0]) + 1)
	ddpgSize := agent.ModelSizeBytes()

	res := &Table10Result{}
	add := func(component, d, b, g, r string) {
		res.Rows = append(res.Rows, struct {
			Component string
			DDPG      string
			BO        string
			GBO       string
			RelM      string
		}{component, d, b, g, r})
	}
	add("Statistics Collection", ms(statsDur), "-", ms(statsDur), ms(statsDur))
	add("Model Fitting", ms(ddpgFit), ms(boFit), ms(gboFit), ms(relmFit))
	add("Model Probing", ms(ddpgProbe), ms(boProbe), ms(gboProbe), ms(relmProbe))
	add("Model Size", fmt.Sprintf("%.1fKb", float64(ddpgSize)/1024), fmt.Sprintf("%.1fKb", float64(boSize)/1024), fmt.Sprintf("%.1fKb", float64(gboSize)/1024), "-")
	return res
}

// padding adapts a surrogate trained on base+extra dims to probes of base
// dims by zero-padding (overhead measurement only).
func padding(model bo.Surrogate, extra int) bo.Surrogate {
	if extra == 0 || model == nil {
		return model
	}
	return padded{model, extra}
}

type padded struct {
	inner bo.Surrogate
	extra int
}

func (p padded) Predict(x []float64) (float64, float64) {
	return p.inner.Predict(append(append([]float64(nil), x...), make([]float64, p.extra)...))
}

func fitGPKind(kind string, xs [][]float64, ys []float64, baseDims int) (bo.Surrogate, error) {
	return gp.FitBestGrouped(kind, xs, ys, baseDims)
}

func ms(d time.Duration) string {
	if d < time.Millisecond {
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	}
	return fmt.Sprintf("%dms", d.Milliseconds())
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
