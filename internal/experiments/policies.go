package experiments

import (
	"relm/internal/bo"
	"relm/internal/conf"
	"relm/internal/core"
	"relm/internal/ddpg"
	"relm/internal/gbo"
	"relm/internal/sim"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/stats"
	"relm/internal/tune"
)

// PolicyRun is the outcome of training one tuning policy on one workload.
type PolicyRun struct {
	Policy string
	App    string
	// Recommended configuration and its fresh-run verification.
	Config     conf.Config
	RuntimeMin float64
	Aborted    bool
	FailedCont int
	// Training cost.
	Iterations int     // experiments taken (including bootstrap/profiling)
	StressSec  float64 // total stress-testing time
	// IterToTop5 is the number of experiments until a run within the top 5
	// percentile of exhaustive search was observed (0 when never).
	IterToTop5   int
	StressToTop5 float64
	// Curve is the best-so-far objective after each experiment (seconds).
	Curve []float64
}

// Baseline holds the exhaustive-search reference for one workload.
type Baseline struct {
	App        string
	BestMin    float64 // best non-aborted runtime, minutes
	Top5Sec    float64 // top-5-percentile runtime threshold, seconds
	TotalSec   float64 // total stress-testing time of the grid
	DefaultMin float64 // MaxResourceAllocation runtime, minutes
	DefaultCfg conf.Config
	BestCfg    conf.Config
	Samples    []tune.Sample
}

// baselineFor runs the exhaustive grid once per workload (plus the default
// configuration) and caches nothing — callers reuse the returned struct.
func baselineFor(cl cluster.Spec, wl workload.Spec, seed uint64) Baseline {
	ev := tune.NewEvaluator(cl, wl, seed)
	best, samples := tune.Exhaustive(ev)
	b := Baseline{
		App:      wl.Name,
		BestMin:  best.RuntimeSec / 60,
		Top5Sec:  tune.TopPercentile(samples, 5),
		TotalSec: ev.TotalRuntime(),
		BestCfg:  best.Config,
		Samples:  samples,
	}
	b.DefaultCfg = ev.Space.Default()
	// The default can itself be unreliable (PageRank aborts under it); the
	// median over completed runs gives a stable scaling reference. Aborted
	// runs end early and would deflate the baseline, so they only count
	// when nothing completes (then the longest attempt stands in, the way
	// the paper quotes its aborted 66-minute PageRank default).
	var completed, all []float64
	for i := uint64(0); i < 5; i++ {
		dres, _ := sim.Run(cl, wl, b.DefaultCfg, seed+33331+i*977)
		all = append(all, dres.RuntimeSec)
		if !dres.Aborted {
			completed = append(completed, dres.RuntimeSec)
		}
	}
	if len(completed) > 0 {
		b.DefaultMin = stats.Median(completed) / 60
	} else {
		b.DefaultMin = stats.Max(all) / 60
	}
	return b
}

// boRun executes one vanilla BO run on an evaluator (Table 9's log).
func boRun(ev *tune.Evaluator, seed uint64) bo.Result {
	return bo.Run(ev, bo.Options{Seed: seed, UsePaperLHS: true}, nil)
}

// trainPolicy runs one policy on a fresh evaluator and fills a PolicyRun.
// top5 (seconds) marks the quality bar for the time-to-quality metrics.
func trainPolicy(policy string, cl cluster.Spec, wl workload.Spec, seed uint64, top5 float64) PolicyRun {
	ev := tune.NewEvaluator(cl, wl, seed)
	run := PolicyRun{Policy: policy, App: wl.Name}

	switch policy {
	case "RelM":
		tuner := core.New(cl)
		cfg, _, err := tuner.TuneWorkload(ev)
		if err != nil {
			cfg = ev.Space.Default()
		}
		run.Config = cfg
	case "BO":
		res := bo.Run(ev, bo.Options{Seed: seed, UsePaperLHS: true}, nil)
		run.Config = res.Best.Config
		run.Curve = res.Curve
	case "GBO":
		res, _ := gbo.Run(ev, bo.Options{Seed: seed, UsePaperLHS: true})
		run.Config = res.Best.Config
		run.Curve = res.Curve
	case "DDPG":
		res := ddpg.Tune(ev, nil, ddpg.TuneOptions{Seed: seed})
		run.Config = res.Best.Config
		run.Curve = res.Curve
	case "RRS":
		rng := simrandFor(seed)
		best, _ := tune.RecursiveRandomSearch(ev, rng, 12)
		run.Config = best.Config
	case "Default":
		run.Config = ev.Space.Default()
	default:
		panic("unknown policy " + policy)
	}

	run.Iterations = ev.Evals()
	run.StressSec = ev.TotalRuntime()

	// Time-to-quality against the exhaustive top-5% bar.
	var acc float64
	for i, s := range ev.History() {
		acc += s.RuntimeSec
		if top5 > 0 && !s.Result.Aborted && s.RuntimeSec <= top5 && run.IterToTop5 == 0 {
			run.IterToTop5 = i + 1
			run.StressToTop5 = acc
		}
	}

	// Verify the recommendation with fresh runs; report the median so a
	// single unlucky failure does not misrepresent the configuration.
	var runs []sim.Result
	for i := uint64(0); i < 3; i++ {
		res, _ := sim.Run(cl, wl, run.Config, seed+77777+i*131)
		runs = append(runs, res)
	}
	for i := 1; i < len(runs); i++ {
		for j := i; j > 0 && runs[j].RuntimeSec < runs[j-1].RuntimeSec; j-- {
			runs[j], runs[j-1] = runs[j-1], runs[j]
		}
	}
	med := runs[1]
	run.RuntimeMin = med.RuntimeSec / 60
	run.Aborted = med.Aborted
	run.FailedCont = med.ContainerFailures
	return run
}
