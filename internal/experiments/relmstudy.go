package experiments

import (
	"fmt"
	"strings"

	"relm/internal/conf"
	"relm/internal/core"
	"relm/internal/profile"
	"relm/internal/sim"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/stats"
)

func init() {
	register("table6", "Table 6 statistics derived from a PageRank profile", func(c Config) fmt.Stringer { return Table6(c) })
	register("figure13", "Arbitrator working example on PageRank", func(c Config) fmt.Stringer { return Figure13(c) })
	register("figure22", "RelM sensitivity to profiles with/without full GC events (SVM)", func(c Config) fmt.Stringer { return Figure22(c) })
	register("figure23", "Mi/Mu estimate variability across 16 initial profiles", func(c Config) fmt.Stringer { return Figure23(c) })
	register("figure24", "utility-score rank vs runtime rank per container count", func(c Config) fmt.Stringer { return Figure24(c) })
}

// Table6Result carries the derived statistics.
type Table6Result struct{ Stats profile.Stats }

func (r *Table6Result) String() string {
	return "== Table 6: statistics from a PageRank profile (defaults)\n" + r.Stats.String() + "\n"
}

// Table6 profiles PageRank on the default setup and derives Table 6.
func Table6(c Config) *Table6Result {
	_, prof := sim.Run(cluster.A(), workload.PageRank(), conf.Default(), c.seed())
	return &Table6Result{Stats: profile.Generate(prof)}
}

// Figure13Result is the Arbitrator trace.
type Figure13Result struct {
	Containers int
	Steps      []core.Step
	Final      conf.Config
}

func (r *Figure13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Figure 13: Arbitrator steps on PageRank (n=%d)\n", r.Containers)
	for i, s := range r.Steps {
		fmt.Fprintf(&b, "(%d) %-7s p=%d mc=%.1fGB NR=%d mo=%.1fGB\n",
			i+1, s.Action, s.Pools.P, s.Pools.McMB/1024, s.Pools.NewRatio, s.Pools.MoMB/1024)
	}
	fmt.Fprintf(&b, "final: %v\n", r.Final)
	return b.String()
}

// Figure13 reproduces the working example: the Arbitrator's round-robin
// repair steps on the PageRank profile at one container per node.
func Figure13(c Config) *Figure13Result {
	cl := cluster.A()
	_, prof := sim.Run(cl, workload.PageRank(), conf.Default(), c.seed())
	st := profile.Generate(prof)
	tuner := core.New(cl)
	pools := tuner.Initialize(st, 1)
	cand, _ := tuner.Arbitrate(st, pools)
	cand.Config = conf.Config{}
	_, cands, err := tuner.Recommend(st)
	final := conf.Config{}
	if err == nil {
		for _, cd := range cands {
			if cd.Containers == 1 {
				final = cd.Config
			}
		}
	}
	return &Figure13Result{Containers: 1, Steps: cand.Trace, Final: final}
}

// Figure22Point is one profiled-configuration → recommendation outcome.
type Figure22Point struct {
	ProfileCfg string
	FullGC     bool
	MuEstimate float64
	RecRuntime float64 // minutes of the resulting recommendation
	RecAborted bool
}

// Figure22Result is the profile-sensitivity study.
type Figure22Result struct {
	TrueMu float64
	Points []Figure22Point
}

func (r *Figure22Result) String() string {
	t := &table{header: []string{"profile config", "fullGC", "Mu est (MB)", "over-estimate x", "rec runtime(min)"}}
	for _, p := range r.Points {
		rec := f1(p.RecRuntime)
		if p.RecRuntime == 0 {
			// With a grossly over-estimated Mu the Arbitrator can find no
			// feasible container size at all.
			rec = "no feasible rec"
		}
		t.add(p.ProfileCfg, fmt.Sprintf("%v", p.FullGC), f0(p.MuEstimate), f1(p.MuEstimate/r.TrueMu), rec)
	}
	return fmt.Sprintf("== Figure 22: RelM sensitivity to the initial SVM profile (true Mu ≈ %.0fMB)\n%s", r.TrueMu, t)
}

// Figure22 invokes RelM with SVM profiles generated from many initial
// configurations. Profiles without full-GC events over-estimate Mu by up to
// two orders of magnitude and produce reliable but sub-optimal
// recommendations; profiles with full GC cluster tightly.
func Figure22(c Config) *Figure22Result {
	cl := cluster.A()
	wl := workload.SVM()
	tuner := core.New(cl)
	res := &Figure22Result{TrueMu: wl.Stages[1].UnmanagedMBPerTask}
	for _, n := range []int{1, 2} {
		for _, p := range []int{1, 2, 3, 4} {
			for _, nr := range []int{2, 4, 6} {
				cfg := conf.Default()
				cfg.ContainersPerNode = n
				cfg.TaskConcurrency = p
				cfg.NewRatio = nr
				_, prof := sim.Run(cl, wl, cfg, c.seed()+uint64(n*100+p*10+nr))
				st := profile.Generate(prof)
				rec, _, err := tuner.Recommend(st)
				point := Figure22Point{
					ProfileCfg: fmt.Sprintf("n=%d p=%d NR=%d", n, p, nr),
					FullGC:     st.HadFullGC,
					MuEstimate: st.MuMB,
				}
				if err == nil {
					r, _ := sim.Run(cl, wl, rec, c.seed()+4242)
					point.RecRuntime = r.RuntimeMin()
					point.RecAborted = r.Aborted
				}
				res.Points = append(res.Points, point)
			}
		}
	}
	return res
}

// Figure23Result reports per-app Mi/Mu estimate spread across profiles.
type Figure23Result struct {
	Rows []struct {
		App                string
		MiMean, MiStdErr   float64
		MuMean, MuStdErr   float64
		ProfilesWithFullGC int
	}
}

func (r *Figure23Result) String() string {
	t := &table{header: []string{"app", "Mi mean(MB)", "Mi stderr", "Mu mean(MB)", "Mu stderr", "profiles w/ full GC"}}
	for _, row := range r.Rows {
		t.add(row.App, f0(row.MiMean), f1(row.MiStdErr), f0(row.MuMean), f1(row.MuStdErr), fmt.Sprint(row.ProfilesWithFullGC))
	}
	return "== Figure 23: Mi/Mu estimates across 16 initial profiles (full-GC profiles only)\n" + t.String()
}

// Figure23 invokes the statistics generator with 16 unique initial profiles
// per application and reports the spread of the Mi and Mu estimates (only
// profiles containing full-GC events contribute, as in the paper).
func Figure23(c Config) *Figure23Result {
	cl := cluster.A()
	res := &Figure23Result{}
	for _, wl := range evalApps() {
		var mis, mus []float64
		withFull := 0
		count := 0
		for _, n := range []int{1, 2} {
			for _, p := range []int{2, 4} {
				for _, nr := range []int{2, 4} {
					if count >= 16 {
						break
					}
					cfg := defaultFor(wl)
					cfg.ContainersPerNode = n
					cfg.TaskConcurrency = p
					cfg.NewRatio = nr
					// Two seeds per configuration → 16 unique profiles.
					for s := uint64(0); s < 2; s++ {
						_, prof := sim.Run(cl, wl, cfg, c.seed()+uint64(n*1000+p*100+nr*10)+s)
						st := profile.Generate(prof)
						count++
						if !st.HadFullGC {
							continue
						}
						withFull++
						mis = append(mis, st.MiMB)
						mus = append(mus, st.MuMB)
					}
				}
			}
		}
		res.Rows = append(res.Rows, struct {
			App                string
			MiMean, MiStdErr   float64
			MuMean, MuStdErr   float64
			ProfilesWithFullGC int
		}{wl.Name, stats.Mean(mis), stats.StdErr(mis), stats.Mean(mus), stats.StdErr(mus), withFull})
	}
	return res
}

// Figure24Result reports the rank correlation between RelM's utility score
// and the measured runtime across container counts.
type Figure24Result struct {
	Rows []struct {
		App         string
		Utilities   []float64 // per container count 1..4 (0 = infeasible)
		RuntimesMin []float64
		Spearman    float64 // correlation of U rank vs (negated) runtime rank
	}
}

func (r *Figure24Result) String() string {
	t := &table{header: []string{"app", "U(n=1..4)", "runtime(min, n=1..4)", "rank corr"}}
	for _, row := range r.Rows {
		var us, rs []string
		for i := range row.Utilities {
			us = append(us, f2(row.Utilities[i]))
			rs = append(rs, f1(row.RuntimesMin[i]))
		}
		t.add(row.App, strings.Join(us, " "), strings.Join(rs, " "), f2(row.Spearman))
	}
	return "== Figure 24: RelM utility-score ranking vs measured runtime ranking\n" + t.String()
}

// Figure24 evaluates, for every app and container count, the best RelM
// candidate's utility score against the measured runtime of that candidate,
// and reports the Spearman correlation between the two rankings (high
// utility should mean low runtime).
func Figure24(c Config) *Figure24Result {
	cl := cluster.A()
	tuner := core.New(cl)
	res := &Figure24Result{}
	for _, wl := range evalApps() {
		cfg := defaultFor(wl)
		_, prof := sim.Run(cl, wl, cfg, c.seed())
		st := profile.Generate(prof)
		if !st.HadFullGC {
			re := cfg
			re.ContainersPerNode = 2
			re.TaskConcurrency = cfg.TaskConcurrency * 2
			re.NewRatio = cfg.NewRatio + 2
			_, prof2 := sim.Run(cl, wl, re, c.seed()+7)
			if st2 := profile.Generate(prof2); st2.HadFullGC {
				st = st2
			}
		}
		_, cands, err := tuner.Recommend(st)
		if err != nil {
			continue
		}
		row := struct {
			App         string
			Utilities   []float64
			RuntimesMin []float64
			Spearman    float64
		}{App: wl.Name}
		var us, negRuntimes []float64
		for _, cand := range cands {
			u := 0.0
			runtime := 0.0
			if cand.Feasible {
				u = cand.Utility
				r, _ := sim.Run(cl, wl, cand.Config, c.seed()+uint64(cand.Containers)*991)
				runtime = r.RuntimeMin()
				if r.Aborted {
					runtime *= 2
				}
				us = append(us, u)
				negRuntimes = append(negRuntimes, -runtime)
			}
			row.Utilities = append(row.Utilities, u)
			row.RuntimesMin = append(row.RuntimesMin, runtime)
		}
		row.Spearman = stats.Spearman(us, negRuntimes)
		res.Rows = append(res.Rows, row)
	}
	return res
}
