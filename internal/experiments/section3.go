package experiments

import (
	"fmt"
	"strings"

	"relm/internal/conf"
	"relm/internal/sim"
	"relm/internal/sim/cluster"
	"relm/internal/sim/jvm"
	"relm/internal/sim/workload"
	"relm/internal/stats"
)

func init() {
	register("figure4", "containers per node 1-4: runtime, heap/CPU/disk utilization", func(c Config) fmt.Stringer { return Figure4(c) })
	register("figure5", "failure counts on three unsafe configurations, 5 runs each", func(c Config) fmt.Stringer { return Figure5(c) })
	register("figure6", "task concurrency 1-8 sweep", func(c Config) fmt.Stringer { return Figure6(c) })
	register("figure7", "cache/shuffle capacity sweep", func(c Config) fmt.Stringer { return Figure7(c) })
	register("figure8", "NewRatio x CacheCapacity heatmaps for K-means", func(c Config) fmt.Stringer { return Figure8(c) })
	register("figure9", "NewRatio vs GC overhead for K-means (cache 0.6)", func(c Config) fmt.Stringer { return Figure9(c) })
	register("figure10", "NewRatio x ShuffleCapacity for SortByKey", func(c Config) fmt.Stringer { return Figure10(c) })
	register("figure11", "RSS timeline: NewRatio 2 vs 5 under native-buffer pressure", func(c Config) fmt.Stringer { return Figure11(c) })
	register("table5", "manual tuning of PageRank (4 configurations)", func(c Config) fmt.Stringer { return Table5(c) })
}

// sweepConfig builds the default config with the unified pool assigned to
// the app's dominant pool.
func defaultFor(wl workload.Spec) conf.Config {
	if wl.UsesCache {
		return conf.Default()
	}
	return conf.DefaultShuffle()
}

// SweepPoint is one measured configuration of a §3 sweep.
type SweepPoint struct {
	App      string
	X        float64 // swept parameter value
	Runtime  float64 // minutes (non-aborted runs)
	Scaled   float64 // runtime normalized to the sweep's reference point
	HeapUtil float64
	CPUUtil  float64
	DiskUtil float64
	GCOver   float64
	HitRatio float64
	Failed   bool // aborted under this setting
}

// SweepResult is a collection of sweep points with a title.
type SweepResult struct {
	ID     string
	Title  string
	Points []SweepPoint
}

// String renders the sweep as a table.
func (r *SweepResult) String() string {
	t := &table{header: []string{"app", "x", "scaled", "runtime(min)", "heapUtil", "cpu", "disk", "gc", "hit", "failed"}}
	for _, p := range r.Points {
		t.add(p.App, f2(p.X), f2(p.Scaled), f1(p.Runtime), f2(p.HeapUtil), f2(p.CPUUtil),
			f2(p.DiskUtil), f2(p.GCOver), f2(p.HitRatio), fmt.Sprintf("%v", p.Failed))
	}
	return fmt.Sprintf("== %s: %s\n%s", r.ID, r.Title, t)
}

// medianRun executes reps runs and returns the median-runtime result among
// completed runs; failed reports whether the majority aborted.
func medianRun(cl cluster.Spec, wl workload.Spec, cfg conf.Config, seed uint64, reps int) (sim.Result, bool) {
	var ok []sim.Result
	aborts := 0
	var last sim.Result
	for i := 0; i < reps; i++ {
		r, _ := sim.Run(cl, wl, cfg, seed+uint64(i)*7919)
		last = r
		if r.Aborted {
			aborts++
		} else {
			ok = append(ok, r)
		}
	}
	if len(ok) == 0 {
		return last, true
	}
	// median by runtime
	best := ok[0]
	runtimes := make([]float64, len(ok))
	for i, r := range ok {
		runtimes[i] = r.RuntimeSec
	}
	med := stats.Median(runtimes)
	for _, r := range ok {
		if abs(r.RuntimeSec-med) < abs(best.RuntimeSec-med) {
			best = r
		}
	}
	return best, aborts > len(ok)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Figure4 sweeps Containers per Node from 1 to 4 for the four §3.1 apps
// (PageRank is excluded: it fails under every setting, as in the paper).
func Figure4(c Config) *SweepResult {
	cl := cluster.A()
	res := &SweepResult{ID: "Figure 4", Title: "impact of containers per node (runtime scaled to n=1)"}
	apps := []workload.Spec{workload.WordCount(), workload.SortByKey(), workload.KMeans(), workload.SVM()}
	reps := c.reps(3)
	for _, wl := range apps {
		var ref float64
		for n := 1; n <= 4; n++ {
			cfg := defaultFor(wl)
			cfg.ContainersPerNode = n
			r, failed := medianRun(cl, wl, cfg, c.seed(), reps)
			if n == 1 {
				ref = r.RuntimeSec
			}
			res.Points = append(res.Points, SweepPoint{
				App: wl.Name, X: float64(n),
				Runtime: r.RuntimeMin(), Scaled: r.RuntimeSec / ref,
				HeapUtil: r.MaxHeapUtil, CPUUtil: r.CPUAvg, DiskUtil: r.DiskAvg,
				GCOver: r.GCOverhead, HitRatio: r.CacheHitRatio, Failed: failed,
			})
		}
	}
	return res
}

// FailureRun is one repetition of a Figure 5 setup.
type FailureRun struct {
	Setup      string
	Run        int
	RuntimeMin float64
	Failures   int
	Aborted    bool
}

// Figure5Result holds the §3.1 failure study.
type Figure5Result struct{ Runs []FailureRun }

// String renders Figure 5's points (runtime with failure labels, * = abort).
func (r *Figure5Result) String() string {
	t := &table{header: []string{"setup", "run", "runtime(min)", "container failures", "aborted"}}
	for _, run := range r.Runs {
		mark := ""
		if run.Aborted {
			mark = "*"
		}
		t.add(run.Setup, fmt.Sprint(run.Run), f1(run.RuntimeMin), fmt.Sprintf("%d%s", run.Failures, mark), fmt.Sprintf("%v", run.Aborted))
	}
	return "== Figure 5: failures on unsafe configurations (* aborted)\n" + t.String()
}

// Figure5 probes the paper's three unsafe setups five times each:
// SortByKey with 70% heap for shuffle, K-means with 4 containers per node,
// and PageRank at the defaults.
func Figure5(c Config) *Figure5Result {
	cl := cluster.A()
	reps := c.reps(5)
	res := &Figure5Result{}

	type setup struct {
		name string
		wl   workload.Spec
		cfg  conf.Config
	}
	sbk := conf.DefaultShuffle()
	sbk.ShuffleCapacity = 0.7
	km := conf.Default()
	km.ContainersPerNode = 4
	setups := []setup{
		{"SortByKey shuffle=0.7", workload.SortByKey(), sbk},
		{"K-means 4 containers", workload.KMeans(), km},
		{"PageRank defaults", workload.PageRank(), conf.Default()},
	}
	for si, s := range setups {
		for i := 0; i < reps; i++ {
			r, _ := sim.Run(cl, s.wl, s.cfg, c.seed()+uint64(si*1000+i)*7919)
			res.Runs = append(res.Runs, FailureRun{
				Setup: s.name, Run: i,
				RuntimeMin: r.RuntimeMin(), Failures: r.ContainerFailures, Aborted: r.Aborted,
			})
		}
	}
	return res
}

// Figure6 sweeps Task Concurrency 1..8 for the five benchmark apps
// (runtime scaled to p=1). PageRank runs out of memory for p >= 2.
func Figure6(c Config) *SweepResult {
	cl := cluster.A()
	res := &SweepResult{ID: "Figure 6", Title: "impact of task concurrency (runtime scaled to p=1)"}
	reps := c.reps(3)
	for _, wl := range workload.Benchmarks() {
		var ref float64
		for p := 1; p <= 8; p++ {
			cfg := defaultFor(wl)
			cfg.TaskConcurrency = p
			r, failed := medianRun(cl, wl, cfg, c.seed(), reps)
			if p == 1 {
				ref = r.RuntimeSec
			}
			res.Points = append(res.Points, SweepPoint{
				App: wl.Name, X: float64(p),
				Runtime: r.RuntimeMin(), Scaled: r.RuntimeSec / ref,
				HeapUtil: r.MaxHeapUtil, CPUUtil: r.CPUAvg, DiskUtil: r.DiskAvg,
				GCOver: r.GCOverhead, HitRatio: r.CacheHitRatio, Failed: failed,
			})
		}
	}
	return res
}

// Figure7 sweeps the dominant pool capacity 0.1..0.9: Shuffle Capacity for
// WordCount and SortByKey, Cache Capacity for K-means, SVM and PageRank
// (runtime scaled to the 0.1 point; PageRank uses Task Concurrency 1 as in
// the paper, to avoid its default-concurrency OOMs).
func Figure7(c Config) *SweepResult {
	cl := cluster.A()
	res := &SweepResult{ID: "Figure 7", Title: "impact of cache/shuffle capacity (runtime scaled to 0.1)"}
	reps := c.reps(3)
	for _, wl := range workload.Benchmarks() {
		var ref float64
		for _, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
			cfg := defaultFor(wl)
			if wl.UsesCache {
				cfg.CacheCapacity = frac
			} else {
				cfg.ShuffleCapacity = frac
			}
			if wl.Name == "PageRank" {
				cfg.TaskConcurrency = 1
			}
			r, failed := medianRun(cl, wl, cfg, c.seed(), reps)
			if ref == 0 {
				ref = r.RuntimeSec
			}
			res.Points = append(res.Points, SweepPoint{
				App: wl.Name, X: frac,
				Runtime: r.RuntimeMin(), Scaled: r.RuntimeSec / ref,
				HeapUtil: r.MaxHeapUtil, CPUUtil: r.CPUAvg, DiskUtil: r.DiskAvg,
				GCOver: r.GCOverhead, HitRatio: r.CacheHitRatio, Failed: failed,
			})
		}
	}
	return res
}

// HeatCell is one (NewRatio, capacity) measurement.
type HeatCell struct {
	NewRatio int
	Capacity float64
	Runtime  float64
	GCOver   float64
	HitRatio float64
	Failed   bool
}

// HeatResult is a NewRatio × capacity study (Figures 8 and 10).
type HeatResult struct {
	ID, Title string
	Cells     []HeatCell
}

// String renders the heatmap cells as rows.
func (r *HeatResult) String() string {
	t := &table{header: []string{"NewRatio", "capacity", "runtime(min)", "gc", "hit", "failed"}}
	for _, cell := range r.Cells {
		t.add(fmt.Sprint(cell.NewRatio), f2(cell.Capacity), f1(cell.Runtime), f2(cell.GCOver), f2(cell.HitRatio), fmt.Sprintf("%v", cell.Failed))
	}
	return fmt.Sprintf("== %s: %s\n%s", r.ID, r.Title, t)
}

// Figure8 maps NewRatio (1-4) × Cache Capacity (0.4-0.8) for K-means.
func Figure8(c Config) *HeatResult {
	cl := cluster.A()
	wl := workload.KMeans()
	res := &HeatResult{ID: "Figure 8", Title: "K-means: NewRatio x CacheCapacity"}
	reps := c.reps(3)
	for nr := 1; nr <= 4; nr++ {
		for _, cap := range []float64{0.4, 0.5, 0.6, 0.7, 0.8} {
			cfg := conf.Default()
			cfg.NewRatio = nr
			cfg.CacheCapacity = cap
			r, failed := medianRun(cl, wl, cfg, c.seed(), reps)
			res.Cells = append(res.Cells, HeatCell{
				NewRatio: nr, Capacity: cap,
				Runtime: r.RuntimeMin(), GCOver: r.GCOverhead, HitRatio: r.CacheHitRatio, Failed: failed,
			})
		}
	}
	return res
}

// Figure9Result is the NewRatio → GC overhead curve for K-means.
type Figure9Result struct {
	NewRatios []int
	GCOver    []float64
	GCStd     []float64
}

// String renders the curve.
func (r *Figure9Result) String() string {
	t := &table{header: []string{"NewRatio", "gcOverhead", "std"}}
	for i, nr := range r.NewRatios {
		t.add(fmt.Sprint(nr), f2(r.GCOver[i]), f2(r.GCStd[i]))
	}
	return "== Figure 9: K-means GC overhead vs NewRatio (cache 0.6)\n" + t.String()
}

// Figure9 sweeps NewRatio 1..8 for K-means at Cache Capacity 0.6.
func Figure9(c Config) *Figure9Result {
	cl := cluster.A()
	wl := workload.KMeans()
	res := &Figure9Result{}
	reps := c.reps(4)
	for nr := 1; nr <= 8; nr++ {
		cfg := conf.Default()
		cfg.NewRatio = nr
		var overs []float64
		for i := 0; i < reps; i++ {
			r, _ := sim.Run(cl, wl, cfg, c.seed()+uint64(i)*31)
			if !r.Aborted {
				overs = append(overs, r.GCOverhead)
			}
		}
		res.NewRatios = append(res.NewRatios, nr)
		res.GCOver = append(res.GCOver, stats.Mean(overs))
		res.GCStd = append(res.GCStd, stats.Std(overs))
	}
	return res
}

// Figure10 maps NewRatio (1-3) × Shuffle Capacity (0.05-0.3) for SortByKey.
func Figure10(c Config) *HeatResult {
	cl := cluster.A()
	wl := workload.SortByKey()
	res := &HeatResult{ID: "Figure 10", Title: "SortByKey: NewRatio x ShuffleCapacity"}
	reps := c.reps(3)
	for nr := 1; nr <= 3; nr++ {
		for _, cap := range []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3} {
			cfg := conf.DefaultShuffle()
			cfg.NewRatio = nr
			cfg.ShuffleCapacity = cap
			r, failed := medianRun(cl, wl, cfg, c.seed(), reps)
			res.Cells = append(res.Cells, HeatCell{
				NewRatio: nr, Capacity: cap,
				Runtime: r.RuntimeMin(), GCOver: r.GCOverhead, Failed: failed,
			})
		}
	}
	return res
}

// Figure11Result compares native-memory growth between two NewRatio
// settings on a fetch-heavy container.
type Figure11Result struct {
	PhysCapMB  float64
	HeapMB     float64
	Timelines  map[int][]float64 // NewRatio → RSS samples (MB, 1s apart)
	PeakRSS    map[int]float64
	GCInterval map[int]float64
	Exceeds    map[int]bool
}

// String summarizes the two timelines.
func (r *Figure11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Figure 11: RSS growth vs physical cap (%.0fMB, heap %.0fMB)\n", r.PhysCapMB, r.HeapMB)
	for _, nr := range []int{2, 5} {
		fmt.Fprintf(&b, "NewRatio=%d: peak RSS %.0fMB, GC interval %.1fs, exceeds cap: %v\n",
			nr, r.PeakRSS[nr], r.GCInterval[nr], r.Exceeds[nr])
		tl := r.Timelines[nr]
		step := len(tl) / 12
		if step < 1 {
			step = 1
		}
		fmt.Fprintf(&b, "  rss(MB):")
		for i := 0; i < len(tl); i += step {
			fmt.Fprintf(&b, " %.0f", tl[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure11 reproduces the memory-usage timeline contrast: a PageRank-style
// fetch-heavy container under NewRatio 2 grows its resident set past the
// resource-manager cap between collections, while NewRatio 5 collects the
// native buffers frequently enough to stay under it (Observation 6).
func Figure11(c Config) *Figure11Result {
	cl := cluster.A()
	wl := workload.PageRank()
	res := &Figure11Result{
		PhysCapMB:  cl.PhysCapPerContainer(1),
		HeapMB:     cl.HeapPerContainer(1),
		Timelines:  map[int][]float64{},
		PeakRSS:    map[int]float64{},
		GCInterval: map[int]float64{},
		Exceeds:    map[int]bool{},
	}
	for _, nr := range []int{2, 5} {
		layout := jvm.Layout{HeapMB: res.HeapMB, NewRatio: nr, SurvivorRatio: 8}
		heap := jvm.New(layout, jvm.DefaultCostModel())
		heap.Tenure(wl.CodeOverheadMB)
		st := wl.Stages[0] // the coalesce stage
		load := jvm.WaveLoad{
			Duration:       40,
			AllocMB:        2 * (st.BytesProcessed() + st.NetworkMBPerTask*0.3) * st.AllocFactor,
			LiveShortMB:    2 * st.UnmanagedMBPerTask,
			PromoteMB:      st.CacheWriteMBPerTask,
			LongLivedMB:    wl.CodeOverheadMB + st.CacheWriteMBPerTask,
			NativeRateMBps: 60,
			Tasks:          2,
		}
		gc := heap.SimulateWave(load)
		res.PeakRSS[nr] = gc.PeakRSS
		res.GCInterval[nr] = gc.GCEvery
		res.Exceeds[nr] = gc.PeakRSS > res.PhysCapMB

		// Reconstruct the sawtooth the paper plots: native buffers grow at
		// the fetch rate and drop at each effective collection.
		base := res.HeapMB*1.03 + jvm.DefaultCostModel().NativeBaseMB
		var tl []float64
		t := 0.0
		for t < load.Duration {
			phase := t - float64(int(t/gc.GCEvery))*gc.GCEvery
			tl = append(tl, base+load.NativeRateMBps*phase)
			t += 1
		}
		res.Timelines[nr] = tl
	}
	return res
}

// Table5Row is one manual-tuning step of §3.5.
type Table5Row struct {
	Containers  int
	Concurrency int
	Cache       float64
	NewRatio    int
	RuntimeMin  float64
	Aborted     bool
	HitRatio    float64
	GCOverhead  float64
}

// Table5Result is the manual PageRank tuning study.
type Table5Result struct{ Rows []Table5Row }

// String renders Table 5.
func (r *Table5Result) String() string {
	t := &table{header: []string{"n", "p", "cache", "NR", "runtime(min)", "hit", "gc"}}
	for _, row := range r.Rows {
		rt := f0(row.RuntimeMin)
		if row.Aborted {
			rt += " (aborted)"
		}
		t.add(fmt.Sprint(row.Containers), fmt.Sprint(row.Concurrency), f2(row.Cache),
			fmt.Sprint(row.NewRatio), rt, f2(row.HitRatio), f2(row.GCOverhead))
	}
	return "== Table 5: manual tuning of PageRank\n" + t.String()
}

// Table5 replays the paper's four manual PageRank configurations.
func Table5(c Config) *Table5Result {
	cl := cluster.A()
	wl := workload.PageRank()
	res := &Table5Result{}
	reps := c.reps(5)
	rows := []conf.Config{
		{ContainersPerNode: 1, TaskConcurrency: 2, CacheCapacity: 0.6, NewRatio: 2, SurvivorRatio: 8},
		{ContainersPerNode: 1, TaskConcurrency: 1, CacheCapacity: 0.6, NewRatio: 2, SurvivorRatio: 8},
		{ContainersPerNode: 1, TaskConcurrency: 2, CacheCapacity: 0.4, NewRatio: 2, SurvivorRatio: 8},
		{ContainersPerNode: 1, TaskConcurrency: 2, CacheCapacity: 0.6, NewRatio: 5, SurvivorRatio: 8},
	}
	for i, cfg := range rows {
		// The paper reports a representative run per row (the first row's
		// default setup aborts); we report the median of reps runs, marking
		// the row aborted when most runs abort.
		var runtimes []float64
		aborts := 0
		var hit, gc float64
		for rep := 0; rep < reps; rep++ {
			r, _ := sim.Run(cl, wl, cfg, c.seed()+uint64(i*100+rep)*7919)
			runtimes = append(runtimes, r.RuntimeSec)
			if r.Aborted {
				aborts++
			}
			hit += r.CacheHitRatio
			gc += r.GCOverhead
		}
		res.Rows = append(res.Rows, Table5Row{
			Containers: cfg.ContainersPerNode, Concurrency: cfg.TaskConcurrency,
			Cache: cfg.CacheCapacity, NewRatio: cfg.NewRatio,
			RuntimeMin: stats.Median(runtimes) / 60,
			Aborted:    aborts*2 > reps,
			HitRatio:   hit / float64(reps),
			GCOverhead: gc / float64(reps),
		})
	}
	return res
}
