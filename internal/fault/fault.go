// Package fault is the deterministic fault-injection subsystem: a registry
// of named failpoints compiled into the hot paths of the store, replica,
// router, and service layers. A disarmed failpoint is a single atomic
// pointer load returning nil — zero allocations, no locks, cheap enough to
// leave in production builds (CI gates it at 0 allocs and within 5% of the
// uninstrumented service round trip). An armed failpoint applies actions —
// return an injected error/ENOSPC, truncate a write (torn record), inject
// latency, stall, corrupt or drop bytes — according to a seeded schedule:
// each rule precomputes WHICH of its matched hits fire from a PCG stream
// derived from (schedule seed, failpoint name, rule index), so the same
// seed reproduces the same fault sequence, hit for hit, across runs and
// machines. That determinism is what makes a chaos soak replayable: the
// invariant checker can assert the injected-fault counts match the plan,
// and a failing run is re-entered from its seed alone.
//
// Schedules arrive as JSON (a -faults file at boot, or POST /v1/faults at
// runtime via Handler):
//
//	{
//	  "seed": 42,
//	  "rules": [
//	    {"point": "store.write", "action": "error", "count": 5, "window": 200},
//	    {"point": "router.proxy", "action": "latency", "arg": 50, "count": 10, "window": 400, "match": "node-b"}
//	  ]
//	}
//
// A rule fires on exactly count of the window matched hits starting after
// the first after hits; which ones is the seeded draw. count >= window
// makes the rule fire on every hit in the window (a deterministic burst).
// match filters by the site-supplied tag (e.g. the backend a proxy send
// targets), so partitions can single out one peer.
package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Action is what an armed failpoint does to its call site.
type Action uint8

const (
	// None is the zero Action; Eval never returns it.
	None Action = iota
	// Error makes the site fail with Fire.Err without touching anything —
	// a clean failure injected before the real operation.
	Error
	// Torn makes a write site persist only the first Fire.N bytes of the
	// record before failing — the on-disk signature of a crash mid-write.
	Torn
	// Latency makes the site sleep Fire.Delay and then proceed normally.
	Latency
	// Stall is Latency with a long default — a hung disk or peer, bounded
	// only by the caller's own timeouts.
	Stall
	// Corrupt makes the site flip Fire.N bytes of its payload and proceed.
	Corrupt
	// Drop makes the site silently discard its payload while reporting
	// success — acknowledged data that never existed.
	Drop
)

func (a Action) String() string {
	switch a {
	case Error:
		return "error"
	case Torn:
		return "torn"
	case Latency:
		return "latency"
	case Stall:
		return "stall"
	case Corrupt:
		return "corrupt"
	case Drop:
		return "drop"
	default:
		return "none"
	}
}

// ErrInjected is the base of every injected failure, so call sites and
// error mappers can recognise a fault-layer error with errors.Is.
var ErrInjected = errors.New("fault: injected error")

// errENOSPC chains ErrInjected with the real ENOSPC errno, so code that
// special-cases disk-full (errors.Is(err, syscall.ENOSPC)) sees the
// injected fault exactly as it would see the real one.
var errENOSPC = fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)

// Fire is one armed decision: what the call site must do. The pointer a
// site receives aliases the rule's prebuilt Fire — read-only, never
// mutated, never allocated per hit.
type Fire struct {
	Action Action
	Err    error         // Error/Torn: the error to return
	Delay  time.Duration // Latency/Stall: how long to sleep
	N      int           // Torn: bytes to persist; Corrupt: bytes to flip
}

// Sleep blocks for the fire's delay (Latency/Stall); a no-op otherwise.
func (f *Fire) Sleep() {
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
}

// Rule is one line of a schedule: inject action on count of the window
// matched hits of point, starting after the first after hits, at
// seed-determined positions.
type Rule struct {
	// Point names the failpoint ("store.write", "router.proxy", …).
	Point string `json:"point"`
	// Action is one of error, eio, enospc, torn, latency, stall, corrupt,
	// drop.
	Action string `json:"action"`
	// Arg parameterizes the action: milliseconds for latency/stall
	// (defaults 25 / 2000), byte count for torn/corrupt (defaults 0 / 1).
	Arg int `json:"arg,omitempty"`
	// Count is how many hits fire inside the window.
	Count int `json:"count"`
	// Window is how many matched hits the count is drawn from (default
	// Count: the first Count hits all fire).
	Window int `json:"window,omitempty"`
	// After skips the first After matched hits before the window opens.
	After int `json:"after,omitempty"`
	// Match restricts the rule to hits whose site-supplied tag contains
	// this substring (e.g. one backend's name). Empty matches every hit,
	// including tagless ones.
	Match string `json:"match,omitempty"`
}

// Schedule is the wire form of a fault plan: a seed plus rules.
type Schedule struct {
	Seed  uint64 `json:"seed"`
	Rules []Rule `json:"rules"`
}

// armedRule is one Rule compiled against a seed: the prebuilt Fire and the
// set of window positions that fire.
type armedRule struct {
	rule    Rule
	fire    Fire
	planned map[uint64]struct{} // window-relative hit indices that fire
	hits    atomic.Uint64       // matched hits observed (monotonic)
	fired   atomic.Uint64       // hits that fired
}

// program is the armed state of one failpoint: the rules targeting it.
type program struct {
	rules []*armedRule
}

// eval runs one hit through the program's rules; the first firing rule
// wins. Rule counters advance even when a later rule fires first, so the
// hit streams stay deterministic per rule.
func (p *program) eval(tag string) *Fire {
	var out *Fire
	for _, r := range p.rules {
		if r.rule.Match != "" && !strings.Contains(tag, r.rule.Match) {
			continue
		}
		h := r.hits.Add(1) - 1
		after, window := uint64(r.rule.After), uint64(r.rule.Window)
		if h < after || h >= after+window {
			continue
		}
		if _, ok := r.planned[h-after]; ok {
			r.fired.Add(1)
			if out == nil {
				out = &r.fire
			}
		}
	}
	return out
}

// Failpoint is one named injection site. The zero-cost contract: while
// disarmed, Eval is one atomic load and a nil check.
type Failpoint struct {
	name string
	prog atomic.Pointer[program]
}

// Name returns the failpoint's registered name.
func (f *Failpoint) Name() string { return f.name }

// Eval returns the action to apply on this hit, or nil (the common case:
// disarmed, or armed but this hit is not scheduled to fire).
func (f *Failpoint) Eval() *Fire {
	p := f.prog.Load()
	if p == nil {
		return nil
	}
	return p.eval("")
}

// EvalTag is Eval with a site-supplied tag for rules carrying a match
// filter (e.g. the peer a request targets).
func (f *Failpoint) EvalTag(tag string) *Fire {
	p := f.prog.Load()
	if p == nil {
		return nil
	}
	return p.eval(tag)
}

// --- registry ---------------------------------------------------------------

var reg struct {
	mu     sync.Mutex
	points map[string]*Failpoint
	seed   uint64
	armed  bool
}

// Register returns the failpoint named name, creating it (disarmed) on
// first use. Consumers register their points as package-level variables so
// the names exist before any schedule arrives.
func Register(name string) *Failpoint {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.points == nil {
		reg.points = make(map[string]*Failpoint)
	}
	if f, ok := reg.points[name]; ok {
		return f
	}
	f := &Failpoint{name: name}
	reg.points[name] = f
	return f
}

// Points lists the registered failpoint names, sorted.
func Points() []string {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	out := make([]string, 0, len(reg.points))
	for name := range reg.points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Apply compiles a schedule and arms it, replacing any previous schedule
// wholesale (points without rules in the new schedule are disarmed). Every
// rule is validated before anything is armed, so a bad schedule changes
// nothing.
func Apply(s Schedule) error {
	progs := make(map[string][]*armedRule)
	for i, r := range s.Rules {
		ar, err := compileRule(r, s.Seed, uint64(i))
		if err != nil {
			return fmt.Errorf("fault: rule %d: %w", i, err)
		}
		progs[r.Point] = append(progs[r.Point], ar)
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for name := range progs {
		if reg.points == nil || reg.points[name] == nil {
			known := make([]string, 0, len(reg.points))
			for n := range reg.points {
				known = append(known, n)
			}
			sort.Strings(known)
			return fmt.Errorf("fault: unknown failpoint %q (registered: %s)", name, strings.Join(known, ", "))
		}
	}
	for name, f := range reg.points {
		if rules, ok := progs[name]; ok {
			f.prog.Store(&program{rules: rules})
		} else {
			f.prog.Store(nil)
		}
	}
	reg.seed = s.Seed
	reg.armed = len(s.Rules) > 0
	return nil
}

// ApplyFile loads a JSON schedule from disk and arms it (the -faults flag).
func ApplyFile(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("fault: read schedule: %w", err)
	}
	var s Schedule
	if err := json.Unmarshal(buf, &s); err != nil {
		return fmt.Errorf("fault: decode schedule %s: %w", path, err)
	}
	if err := Apply(s); err != nil {
		return err
	}
	return nil
}

// DisarmAll removes every armed rule; every failpoint returns to the
// zero-overhead path.
func DisarmAll() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, f := range reg.points {
		f.prog.Store(nil)
	}
	reg.armed = false
}

// RuleStatus is the observable state of one armed rule: its definition,
// the size of its seeded fire plan, and live hit/fired counters.
type RuleStatus struct {
	Rule
	Planned int    `json:"planned"` // fires the seed scheduled in the window
	Hits    uint64 `json:"hits"`    // matched hits so far
	Fired   uint64 `json:"fired"`   // hits that fired so far
}

// Status is the wire form of GET /v1/faults: the armed schedule and its
// progress. Two runs of the same seed and workload produce identical
// Fired vectors once every rule's window is fully traversed — the
// determinism the chaos checker asserts.
type Status struct {
	Armed  bool         `json:"armed"`
	Seed   uint64       `json:"seed,omitempty"`
	Points []string     `json:"points"`
	Rules  []RuleStatus `json:"rules,omitempty"`
}

// Snapshot reports the armed schedule and per-rule progress.
func Snapshot() Status {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	st := Status{Armed: reg.armed, Seed: reg.seed}
	names := make([]string, 0, len(reg.points))
	for name := range reg.points {
		names = append(names, name)
	}
	sort.Strings(names)
	st.Points = names
	for _, name := range names {
		p := reg.points[name].prog.Load()
		if p == nil {
			continue
		}
		for _, r := range p.rules {
			st.Rules = append(st.Rules, RuleStatus{
				Rule:    r.rule,
				Planned: len(r.planned),
				Hits:    r.hits.Load(),
				Fired:   r.fired.Load(),
			})
		}
	}
	return st
}

// --- compilation ------------------------------------------------------------

func compileRule(r Rule, seed, idx uint64) (*armedRule, error) {
	if r.Point == "" {
		return nil, errors.New("missing point")
	}
	if r.Count <= 0 {
		return nil, fmt.Errorf("point %s: count must be positive", r.Point)
	}
	if r.Window < 0 || r.After < 0 || r.Arg < 0 {
		return nil, fmt.Errorf("point %s: window/after/arg must be non-negative", r.Point)
	}
	if r.Window == 0 {
		r.Window = r.Count
	}
	if r.Count > r.Window {
		r.Count = r.Window
	}
	ar := &armedRule{rule: r}
	switch r.Action {
	case "error", "eio":
		ar.fire = Fire{Action: Error, Err: ErrInjected}
	case "enospc":
		ar.fire = Fire{Action: Error, Err: errENOSPC}
	case "torn":
		ar.fire = Fire{Action: Torn, Err: ErrInjected, N: r.Arg}
	case "latency":
		ms := r.Arg
		if ms == 0 {
			ms = 25
		}
		ar.fire = Fire{Action: Latency, Delay: time.Duration(ms) * time.Millisecond}
	case "stall":
		ms := r.Arg
		if ms == 0 {
			ms = 2000
		}
		ar.fire = Fire{Action: Stall, Delay: time.Duration(ms) * time.Millisecond}
	case "corrupt":
		n := r.Arg
		if n == 0 {
			n = 1
		}
		ar.fire = Fire{Action: Corrupt, N: n}
	case "drop":
		ar.fire = Fire{Action: Drop}
	default:
		return nil, fmt.Errorf("point %s: unknown action %q", r.Point, r.Action)
	}
	ar.planned = planFires(seed, r.Point, idx, r.Count, r.Window)
	return ar, nil
}

// planFires draws count distinct fire positions from [0, window) using a
// PCG stream keyed by (seed, point name, rule index) — a pure function of
// the schedule, so every process arms the identical plan.
func planFires(seed uint64, point string, idx uint64, count, window int) map[uint64]struct{} {
	out := make(map[uint64]struct{}, count)
	if count >= window {
		for i := 0; i < window; i++ {
			out[uint64(i)] = struct{}{}
		}
		return out
	}
	// Partial Fisher-Yates over the window: positions[0:count] after count
	// seeded swaps is a uniform count-subset.
	positions := make([]uint64, window)
	for i := range positions {
		positions[i] = uint64(i)
	}
	rng := newPCG(seed ^ fnv64(point) ^ (idx+1)*0x9e3779b97f4a7c15)
	for i := 0; i < count; i++ {
		j := i + int(rng.uint64n(uint64(window-i)))
		positions[i], positions[j] = positions[j], positions[i]
	}
	for _, p := range positions[:count] {
		out[p] = struct{}{}
	}
	return out
}

func fnv64(s string) uint64 {
	const prime = 1099511628211
	x := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= prime
	}
	return x
}

// pcg is a PCG-XSH-RR 64/32 generator — tiny, seedable, and identical
// everywhere, which is all the schedule needs.
type pcg struct {
	state uint64
	inc   uint64
}

func newPCG(seed uint64) *pcg {
	p := &pcg{inc: (seed << 1) | 1}
	p.state = seed + p.inc
	p.next()
	return p
}

func (p *pcg) next() uint32 {
	old := p.state
	p.state = old*6364136223846793005 + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

func (p *pcg) uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	v := (uint64(p.next()) << 32) | uint64(p.next())
	return v % n
}
