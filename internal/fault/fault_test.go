package fault

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// firePattern runs n hits through f and returns which ones fired.
func firePattern(f *Failpoint, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = f.Eval() != nil
	}
	return out
}

func TestDisarmedEvalIsNil(t *testing.T) {
	f := Register("test.disarmed")
	if f.Eval() != nil || f.EvalTag("x") != nil {
		t.Fatal("disarmed failpoint fired")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	a := Register("test.idempotent")
	b := Register("test.idempotent")
	if a != b {
		t.Fatal("Register returned distinct failpoints for one name")
	}
}

func TestSameSeedSameSequence(t *testing.T) {
	defer DisarmAll()
	f := Register("test.seq")
	sched := Schedule{Seed: 42, Rules: []Rule{
		{Point: "test.seq", Action: "error", Count: 7, Window: 50},
	}}
	if err := Apply(sched); err != nil {
		t.Fatal(err)
	}
	first := firePattern(f, 60)
	if err := Apply(sched); err != nil { // re-arm resets counters
		t.Fatal(err)
	}
	second := firePattern(f, 60)
	fires := 0
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("hit %d: run1=%v run2=%v — schedule not deterministic", i, first[i], second[i])
		}
		if first[i] {
			fires++
		}
	}
	if fires != 7 {
		t.Fatalf("fired %d times over the full window, want 7", fires)
	}
}

func TestDifferentSeedDifferentSequence(t *testing.T) {
	defer DisarmAll()
	f := Register("test.seeddiff")
	rule := Rule{Point: "test.seeddiff", Action: "error", Count: 10, Window: 200}
	if err := Apply(Schedule{Seed: 1, Rules: []Rule{rule}}); err != nil {
		t.Fatal(err)
	}
	a := firePattern(f, 200)
	if err := Apply(Schedule{Seed: 2, Rules: []Rule{rule}}); err != nil {
		t.Fatal(err)
	}
	b := firePattern(f, 200)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fire patterns over 200 hits")
	}
}

func TestAfterAndWindowBounds(t *testing.T) {
	defer DisarmAll()
	f := Register("test.window")
	err := Apply(Schedule{Seed: 9, Rules: []Rule{
		{Point: "test.window", Action: "error", Count: 5, Window: 5, After: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	pat := firePattern(f, 30)
	for i, fired := range pat {
		inWindow := i >= 10 && i < 15
		if fired != inWindow {
			t.Fatalf("hit %d fired=%v, want %v (count==window burst in [10,15))", i, fired, inWindow)
		}
	}
}

func TestMatchTagFilter(t *testing.T) {
	defer DisarmAll()
	f := Register("test.match")
	err := Apply(Schedule{Seed: 3, Rules: []Rule{
		{Point: "test.match", Action: "error", Count: 100, Window: 100, Match: "node-b"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if f.EvalTag("node-a") != nil {
		t.Fatal("rule matched the wrong tag")
	}
	if f.Eval() != nil {
		t.Fatal("match rule fired on a tagless hit")
	}
	if f.EvalTag("node-b") == nil {
		t.Fatal("rule did not match its tag")
	}
	st := Snapshot()
	if len(st.Rules) != 1 || st.Rules[0].Hits != 1 || st.Rules[0].Fired != 1 {
		t.Fatalf("snapshot counters wrong: %+v", st.Rules)
	}
}

func TestActions(t *testing.T) {
	defer DisarmAll()
	f := Register("test.actions")
	cases := []struct {
		action string
		arg    int
		check  func(t *testing.T, fire *Fire)
	}{
		{"error", 0, func(t *testing.T, fire *Fire) {
			if fire.Action != Error || !errors.Is(fire.Err, ErrInjected) {
				t.Fatalf("error action: %+v", fire)
			}
		}},
		{"enospc", 0, func(t *testing.T, fire *Fire) {
			if !errors.Is(fire.Err, syscall.ENOSPC) || !errors.Is(fire.Err, ErrInjected) {
				t.Fatalf("enospc should chain both ErrInjected and ENOSPC: %v", fire.Err)
			}
		}},
		{"torn", 12, func(t *testing.T, fire *Fire) {
			if fire.Action != Torn || fire.N != 12 || fire.Err == nil {
				t.Fatalf("torn action: %+v", fire)
			}
		}},
		{"latency", 3, func(t *testing.T, fire *Fire) {
			if fire.Action != Latency || fire.Delay != 3*time.Millisecond {
				t.Fatalf("latency action: %+v", fire)
			}
		}},
		{"stall", 0, func(t *testing.T, fire *Fire) {
			if fire.Action != Stall || fire.Delay != 2*time.Second {
				t.Fatalf("stall default: %+v", fire)
			}
		}},
		{"corrupt", 0, func(t *testing.T, fire *Fire) {
			if fire.Action != Corrupt || fire.N != 1 {
				t.Fatalf("corrupt default: %+v", fire)
			}
		}},
		{"drop", 0, func(t *testing.T, fire *Fire) {
			if fire.Action != Drop {
				t.Fatalf("drop action: %+v", fire)
			}
		}},
	}
	for _, tc := range cases {
		err := Apply(Schedule{Seed: 1, Rules: []Rule{
			{Point: "test.actions", Action: tc.action, Arg: tc.arg, Count: 1},
		}})
		if err != nil {
			t.Fatalf("%s: %v", tc.action, err)
		}
		fire := f.Eval()
		if fire == nil {
			t.Fatalf("%s: count=1 window=1 should fire on first hit", tc.action)
		}
		tc.check(t, fire)
	}
}

func TestApplyValidation(t *testing.T) {
	defer DisarmAll()
	Register("test.valid")
	bad := []Schedule{
		{Rules: []Rule{{Point: "no.such.point", Action: "error", Count: 1}}},
		{Rules: []Rule{{Point: "test.valid", Action: "frobnicate", Count: 1}}},
		{Rules: []Rule{{Point: "test.valid", Action: "error"}}}, // count 0
		{Rules: []Rule{{Point: "", Action: "error", Count: 1}}},
		{Rules: []Rule{{Point: "test.valid", Action: "error", Count: 1, After: -1}}},
	}
	for i, s := range bad {
		if err := Apply(s); err == nil {
			t.Fatalf("schedule %d should have been rejected", i)
		}
	}
	// A rejected schedule must not partially arm.
	if Snapshot().Armed {
		t.Fatal("failed Apply left the registry armed")
	}
}

func TestApplyReplacesWholesale(t *testing.T) {
	defer DisarmAll()
	a := Register("test.rep.a")
	b := Register("test.rep.b")
	if err := Apply(Schedule{Seed: 1, Rules: []Rule{{Point: "test.rep.a", Action: "error", Count: 10}}}); err != nil {
		t.Fatal(err)
	}
	if a.Eval() == nil {
		t.Fatal("a should be armed")
	}
	if err := Apply(Schedule{Seed: 1, Rules: []Rule{{Point: "test.rep.b", Action: "error", Count: 10}}}); err != nil {
		t.Fatal(err)
	}
	if a.Eval() != nil {
		t.Fatal("a should be disarmed after a schedule that omits it")
	}
	if b.Eval() == nil {
		t.Fatal("b should be armed")
	}
	DisarmAll()
	if b.Eval() != nil {
		t.Fatal("DisarmAll left b armed")
	}
}

func TestApplyFile(t *testing.T) {
	defer DisarmAll()
	f := Register("test.file")
	path := filepath.Join(t.TempDir(), "sched.json")
	buf, _ := json.Marshal(Schedule{Seed: 5, Rules: []Rule{
		{Point: "test.file", Action: "latency", Arg: 1, Count: 2, Window: 4},
	}})
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ApplyFile(path); err != nil {
		t.Fatal(err)
	}
	fires := 0
	for i := 0; i < 4; i++ {
		if f.Eval() != nil {
			fires++
		}
	}
	if fires != 2 {
		t.Fatalf("fired %d, want 2", fires)
	}
	if err := ApplyFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing schedule file should error")
	}
}

func TestSnapshotPlanned(t *testing.T) {
	defer DisarmAll()
	Register("test.snap")
	err := Apply(Schedule{Seed: 8, Rules: []Rule{
		{Point: "test.snap", Action: "error", Count: 3, Window: 100, After: 5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	st := Snapshot()
	if !st.Armed || st.Seed != 8 {
		t.Fatalf("snapshot header: %+v", st)
	}
	if len(st.Rules) != 1 || st.Rules[0].Planned != 3 {
		t.Fatalf("planned: %+v", st.Rules)
	}
}

func TestConcurrentEvalCountsExact(t *testing.T) {
	defer DisarmAll()
	f := Register("test.conc")
	const workers, perWorker = 8, 500
	err := Apply(Schedule{Seed: 11, Rules: []Rule{
		{Point: "test.conc", Action: "error", Count: 40, Window: 1000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func() {
			n := 0
			for i := 0; i < perWorker; i++ {
				if f.Eval() != nil {
					n++
				}
			}
			done <- n
		}()
	}
	total := 0
	for w := 0; w < workers; w++ {
		total += <-done
	}
	// 4000 hits fully traverse the window: exactly Count fires, regardless
	// of interleaving — the property the chaos determinism check relies on.
	if total != 40 {
		t.Fatalf("concurrent fires = %d, want exactly 40", total)
	}
	st := Snapshot()
	if st.Rules[0].Hits != workers*perWorker || st.Rules[0].Fired != 40 {
		t.Fatalf("counters: %+v", st.Rules[0])
	}
}

// BenchmarkFaultDisarmed gates the zero-overhead contract: a disarmed
// failpoint on a hot path must cost one atomic load and zero allocations.
func BenchmarkFaultDisarmed(b *testing.B) {
	f := Register("bench.disarmed")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if f.Eval() != nil {
			b.Fatal("disarmed failpoint fired")
		}
	}
}

// BenchmarkFaultDisarmedTag is the tagged variant used by proxy/ship
// sites; the tag must not force an allocation while disarmed.
func BenchmarkFaultDisarmedTag(b *testing.B) {
	f := Register("bench.disarmed.tag")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if f.EvalTag("node-a") != nil {
			b.Fatal("disarmed failpoint fired")
		}
	}
}

// BenchmarkFaultArmedMiss measures an armed failpoint on hits outside the
// window — the steady state after a schedule has played out.
func BenchmarkFaultArmedMiss(b *testing.B) {
	defer DisarmAll()
	f := Register("bench.armedmiss")
	err := Apply(Schedule{Seed: 1, Rules: []Rule{
		{Point: "bench.armedmiss", Action: "error", Count: 1, Window: 1},
	}})
	if err != nil {
		b.Fatal(err)
	}
	f.Eval() // consume the single planned fire
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.Eval() != nil {
			b.Fatal("armed failpoint fired past its window")
		}
	}
}
