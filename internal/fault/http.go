package fault

import (
	"encoding/json"
	"net/http"
)

// Handler serves the /v1/faults control endpoint for a binary:
//
//	GET    — the armed schedule and per-rule hit/fired counters (Status)
//	POST   — arm a Schedule (replacing the previous one wholesale)
//	DELETE — disarm everything
//
// Both relm-serve and relm-router mount it, so a chaos harness can arm,
// inspect, and tear down fault schedules per process at runtime.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeStatus(w, http.StatusOK)
		case http.MethodPost:
			var s Schedule
			dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&s); err != nil {
				httpError(w, http.StatusBadRequest, "decode schedule: "+err.Error())
				return
			}
			if err := Apply(s); err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			writeStatus(w, http.StatusOK)
		case http.MethodDelete:
			DisarmAll()
			writeStatus(w, http.StatusOK)
		default:
			w.Header().Set("Allow", "GET, POST, DELETE")
			httpError(w, http.StatusMethodNotAllowed, "method not allowed")
		}
	})
}

func writeStatus(w http.ResponseWriter, code int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(Snapshot())
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
