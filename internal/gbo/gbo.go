// Package gbo implements Guided Bayesian Optimization (§5.2): a white-box
// model Q derived from one application profile computes three guide metrics
// for any candidate configuration — expected heap occupancy (q1), long-term
// memory efficiency (q2), and shuffle-memory efficiency (q3) (Equation 8) —
// and those metrics are appended to the Bayesian optimizer's surrogate
// features (Equation 9). The guide separates expensive regions of the
// configuration space from promising ones from the very first samples,
// which is where GBO's ~2× speedup over vanilla BO comes from (§6.5).
package gbo

import (
	"math"

	"relm/internal/bo"
	"relm/internal/conf"
	"relm/internal/profile"
	"relm/internal/sim/cluster"
	"relm/internal/tune"
)

// Model is the guiding white-box model Q.
type Model struct {
	Cluster cluster.Spec
	Stats   profile.Stats
	// Delta is the safety factor used when deriving requirements (0.1).
	Delta float64
}

// NewModel builds Q from a profile's statistics.
func NewModel(cl cluster.Spec, st profile.Stats) *Model {
	return &Model{Cluster: cl, Stats: st, Delta: 0.1}
}

// requirements returns the cache and per-task shuffle requirements under a
// candidate heap size, via the RelM initializer models (Eqs 1 and 2).
func (m *Model) requirements(mh float64) (mcReq, msReq float64) {
	st := m.Stats
	if st.McMB > 0 {
		frac := st.McMB / (math.Max(st.H, 1e-6) * st.MhMB)
		mcReq = mh * math.Min(frac, 1-m.Delta)
	}
	if st.MsMB > 0 {
		p := float64(maxInt(st.P, 1))
		msReq = math.Min(st.MsMB/(1-st.S/p), (1-m.Delta)*mh)
	}
	return mcReq, msReq
}

// Metrics computes q = {q1, q2, q3} for a candidate configuration
// (Equation 8).
func (m *Model) Metrics(c conf.Config) [3]float64 {
	st := m.Stats
	mh := m.Cluster.HeapPerContainer(c.ContainersPerNode)
	mcX := c.CacheCapacity * mh
	msX := c.ShuffleCapacity * mh / float64(maxInt(c.TaskConcurrency, 1))
	moX := mh * float64(c.NewRatio) / float64(c.NewRatio+1)
	sr := float64(c.SurvivorRatio)
	if sr < 1 {
		sr = 8
	}
	meX := mh * (1 / float64(c.NewRatio+1)) * (sr - 2) / sr
	p := float64(c.TaskConcurrency)

	mcReq, msReq := m.requirements(mh)

	// q1: expected heap occupancy — both under-utilization (low) and unsafe
	// over-commitment (above 1) are visible.
	q1 := (st.MiMB + math.Min(mcX, mcReq) + p*(st.MuMB+math.Min(msX, msReq))) / mh

	// q2: long-term memory efficiency — the long-lived requirement against
	// the storage the configuration actually provides (bounded by both the
	// Old pool and the cache capacity).
	longTermNeed := st.MiMB + mcReq
	longTermAvail := math.Min(moX, mcX+st.MiMB)
	if longTermAvail < st.MiMB {
		longTermAvail = st.MiMB
	}
	// Zero-statistics profiles (remote runtime-only observations) can leave
	// both sides at 0; keep q2 finite rather than 0/0.
	q2 := 0.0
	if longTermAvail > 0 {
		q2 = longTermNeed / longTermAvail
	} else if longTermNeed > 0 {
		q2 = 10 // nothing provided for a real need: deep in penalty range
	}

	// q3: shuffle-memory efficiency — shuffle batches beyond half of Eden
	// cause full-GC storms (Observation 7).
	q3 := p * math.Min(msX, msReq) / (0.5 * meX)

	return [3]float64{q1, q2, q3}
}

// ExtraFeatures squashes Q into surrogate features on the scale of the
// normalized knobs.
func (m *Model) ExtraFeatures(cfg conf.Config) []float64 {
	q := m.Metrics(cfg)
	return []float64{squash(q[0]), squash(q[1] / 2), squash(q[2] / 2)}
}

// squash maps [0,∞) smoothly into [0,1.5) keeping the unit neighbourhood
// roughly linear.
func squash(v float64) float64 {
	if v < 0 {
		v = 0
	}
	return 1.5 * v / (1 + v/1.5)
}

// AcquisitionPenalty down-weights the acquisition value of configurations Q
// marks as unsafe (expected occupancy above capacity), memory-wasting (low
// occupancy), long-term-thrashing (q2 high) or spill-storming (q3 high) —
// the "expensive region" separation of §5.2.
func (m *Model) AcquisitionPenalty(c conf.Config) float64 {
	q := m.Metrics(c)
	p := 1.0
	switch {
	case q[0] > 1.5: // far beyond capacity: aborts likely
		p *= 0.2
	case q[0] > 1.15: // over-committed: risky
		p *= 0.7
	case q[0] < 0.45: // wasting memory
		p *= 0.6
	}
	if q[1] > 1.4 {
		p *= 0.6
	}
	if q[2] > 1.2 {
		p *= 0.7
	}
	return p
}

// Run executes guided Bayesian optimization by driving the incremental
// Tuner to completion. The guide model Q is built from the first bootstrap
// sample's profile (§5.2: the profiled statistics may come from a prior
// execution with any configuration), so GBO pays no extra profiling run
// over BO.
func Run(ev *tune.Evaluator, opts bo.Options) (bo.Result, *Model) {
	t := NewTuner(ev.Cluster, ev.Space, opts)
	tune.Drive(t, ev, 0)
	res := t.Result()
	if !res.Found {
		if best, ok := ev.Best(); ok {
			res.Best, res.Found = best, true
		}
	}
	return res, t.Model()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
