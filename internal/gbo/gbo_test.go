package gbo

import (
	"math"
	"testing"

	"relm/internal/bo"
	"relm/internal/conf"
	"relm/internal/profile"
	"relm/internal/sim"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/tune"
)

// statsFixture builds Table 6-like statistics for the model tests.
func statsFixture() profile.Stats {
	return profile.Stats{
		N: 1, MhMB: 4404, CPUAvg: 0.2, DiskAvg: 0.05,
		MiMB: 115, McMB: 2300, MsMB: 0, MuMB: 770,
		P: 2, H: 0.3, S: 0, HadFullGC: true, CoresPerNode: 8,
	}
}

func model() *Model { return NewModel(cluster.A(), statsFixture()) }

func TestQ1DetectsOverCommitment(t *testing.T) {
	m := model()
	// Generous cache and high concurrency on a small heap over-commits.
	unsafe := conf.Config{ContainersPerNode: 4, TaskConcurrency: 2, CacheCapacity: 0.8, NewRatio: 2, SurvivorRatio: 8}
	safe := conf.Config{ContainersPerNode: 1, TaskConcurrency: 1, CacheCapacity: 0.3, NewRatio: 2, SurvivorRatio: 8}
	qU, qS := m.Metrics(unsafe), m.Metrics(safe)
	if qU[0] <= 1 {
		t.Fatalf("unsafe q1 = %v, want > 1", qU[0])
	}
	if qS[0] >= qU[0] {
		t.Fatal("safe configuration must have lower expected occupancy")
	}
}

func TestQ2DetectsLongTermShortfall(t *testing.T) {
	m := model()
	// Tiny Old pool and tiny cache: long-term data cannot be stored.
	starved := conf.Config{ContainersPerNode: 1, TaskConcurrency: 2, CacheCapacity: 0.1, NewRatio: 1, SurvivorRatio: 8}
	roomy := conf.Config{ContainersPerNode: 1, TaskConcurrency: 2, CacheCapacity: 0.85, NewRatio: 6, SurvivorRatio: 8}
	if m.Metrics(starved)[1] <= m.Metrics(roomy)[1] {
		t.Fatal("q2 must flag long-term memory shortfall")
	}
}

func TestQ3DetectsShuffleOverEden(t *testing.T) {
	st := statsFixture()
	st.McMB, st.H = 0, 1
	st.MsMB = 1300 // shuffle-heavy profile
	m := NewModel(cluster.A(), st)
	storm := conf.Config{ContainersPerNode: 1, TaskConcurrency: 2, ShuffleCapacity: 0.7, NewRatio: 3, SurvivorRatio: 8}
	lean := conf.Config{ContainersPerNode: 1, TaskConcurrency: 2, ShuffleCapacity: 0.08, NewRatio: 1, SurvivorRatio: 8}
	qStorm, qLean := m.Metrics(storm), m.Metrics(lean)
	if qStorm[2] <= 1 {
		t.Fatalf("storm q3 = %v, want > 1 (batches beyond half Eden)", qStorm[2])
	}
	if qLean[2] >= qStorm[2] {
		t.Fatal("lean shuffle must score lower q3")
	}
}

func TestMetricsFiniteAcrossSpace(t *testing.T) {
	m := model()
	sp := tune.NewSpace(cluster.A(), workload.KMeans())
	for _, cfg := range sp.Grid() {
		q := m.Metrics(cfg)
		for i, v := range q {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("q%d = %v for %v", i+1, v, cfg)
			}
		}
	}
}

func TestPenaltyRange(t *testing.T) {
	m := model()
	sp := tune.NewSpace(cluster.A(), workload.KMeans())
	for _, cfg := range sp.Grid() {
		p := m.AcquisitionPenalty(cfg)
		if p <= 0 || p > 1 {
			t.Fatalf("penalty %v out of (0,1] for %v", p, cfg)
		}
	}
}

func TestSquash(t *testing.T) {
	if squash(-1) != 0 {
		t.Fatal("negative squash")
	}
	if squash(0) != 0 {
		t.Fatal("zero squash")
	}
	if squash(1) <= squash(0.5) {
		t.Fatal("squash must be increasing")
	}
	if squash(1e9) >= 2.26 {
		t.Fatalf("squash unbounded: %v", squash(1e9))
	}
}

func TestRunBuildsModelFromFirstSample(t *testing.T) {
	ev := tune.NewEvaluator(cluster.A(), workload.KMeans(), 1)
	res, m := Run(ev, bo.Options{Seed: 1, UsePaperLHS: true, MaxIterations: 3, MinNewSamples: 1})
	if m == nil {
		t.Fatal("guide model missing")
	}
	if !res.Found {
		t.Fatal("no best found")
	}
	// The model must be derived from the first bootstrap sample.
	first := ev.History()[0]
	want := profile.Generate(first.Profile)
	if m.Stats.MhMB != want.MhMB {
		t.Fatal("model not built from the first profile")
	}
}

func TestGBOBeatsDefault(t *testing.T) {
	ev := tune.NewEvaluator(cluster.A(), workload.SVM(), 2)
	res, _ := Run(ev, bo.Options{Seed: 2, UsePaperLHS: true})
	def, _ := sim.Run(cluster.A(), workload.SVM(), conf.Default(), 999)
	if res.Best.RuntimeSec >= def.RuntimeSec {
		t.Fatalf("GBO best %v should beat default %v", res.Best.RuntimeSec, def.RuntimeSec)
	}
}

func TestExtraFeatureDimensionStable(t *testing.T) {
	m := model()
	a := m.ExtraFeatures(conf.Default())
	b := m.ExtraFeatures(conf.DefaultShuffle())
	if len(a) != 3 || len(b) != 3 {
		t.Fatal("guide features must be 3-dimensional")
	}
}
