package gbo

import (
	"fmt"
	"math"
	"sort"

	"relm/internal/conf"
	"relm/internal/stats"
	"relm/internal/tune"
)

// MetricFunc computes one guide indicator for a candidate configuration
// given the profiled model.
type MetricFunc func(m *Model, c conf.Config) float64

// NamedMetric pairs a metric with its identifier.
type NamedMetric struct {
	Name string
	Fn   MetricFunc
}

// Registry holds the guide metrics available to GBO. The paper's §5.2 notes
// that the q-set "could be expanded to add more indicators of the RelM
// goals" with a mechanism that keeps the features independent and ranked by
// importance; Registry implements that mechanism.
type Registry struct {
	metrics []NamedMetric
}

// NewRegistry returns a registry pre-populated with the Equation 8 metrics.
func NewRegistry() *Registry {
	r := &Registry{}
	r.Register("q1-heap-occupancy", func(m *Model, c conf.Config) float64 {
		return m.Metrics(c)[0]
	})
	r.Register("q2-longterm-efficiency", func(m *Model, c conf.Config) float64 {
		return m.Metrics(c)[1]
	})
	r.Register("q3-shuffle-efficiency", func(m *Model, c conf.Config) float64 {
		return m.Metrics(c)[2]
	})
	return r
}

// Register adds a metric; duplicate names are rejected.
func (r *Registry) Register(name string, fn MetricFunc) error {
	for _, m := range r.metrics {
		if m.Name == name {
			return fmt.Errorf("gbo: metric %q already registered", name)
		}
	}
	r.metrics = append(r.metrics, NamedMetric{Name: name, Fn: fn})
	return nil
}

// Names lists the registered metrics in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = m.Name
	}
	return out
}

// RankedMetric is a metric with its measured importance.
type RankedMetric struct {
	NamedMetric
	// AbsPearson is |Pearson correlation| between the metric's values and
	// the observed objective across the samples.
	AbsPearson float64
}

// Rank scores every metric against the observed samples and returns them in
// decreasing importance.
func (r *Registry) Rank(m *Model, samples []tune.Sample) []RankedMetric {
	ys := make([]float64, len(samples))
	for i, s := range samples {
		ys[i] = s.Objective
	}
	out := make([]RankedMetric, 0, len(r.metrics))
	for _, nm := range r.metrics {
		col := make([]float64, len(samples))
		for i, s := range samples {
			col[i] = nm.Fn(m, s.Config)
		}
		out = append(out, RankedMetric{NamedMetric: nm, AbsPearson: math.Abs(stats.Pearson(col, ys))})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].AbsPearson > out[b].AbsPearson })
	return out
}

// SelectIndependent returns the most important metrics whose pairwise
// correlation (measured on the samples) stays below maxMutualCorr — a greedy
// forward selection that keeps the feature set independent, as the paper
// requires of additions to Q.
func (r *Registry) SelectIndependent(m *Model, samples []tune.Sample, maxMutualCorr float64) []RankedMetric {
	ranked := r.Rank(m, samples)
	cols := map[string][]float64{}
	for _, rm := range ranked {
		col := make([]float64, len(samples))
		for i, s := range samples {
			col[i] = rm.Fn(m, s.Config)
		}
		cols[rm.Name] = col
	}
	var selected []RankedMetric
	for _, cand := range ranked {
		independent := true
		for _, have := range selected {
			if math.Abs(stats.Pearson(cols[cand.Name], cols[have.Name])) > maxMutualCorr {
				independent = false
				break
			}
		}
		if independent {
			selected = append(selected, cand)
		}
	}
	return selected
}

// Features builds a feature vector from the selected metrics for one
// candidate configuration (squashed like the built-in q features).
func Features(m *Model, selected []RankedMetric, c conf.Config) []float64 {
	out := make([]float64, len(selected))
	for i, rm := range selected {
		out[i] = squash(rm.Fn(m, c) / 2)
	}
	return out
}
