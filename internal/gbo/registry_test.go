package gbo

import (
	"testing"

	"relm/internal/conf"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/tune"
)

func TestRegistryBuiltins(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) != 3 {
		t.Fatalf("builtins = %v", names)
	}
	if names[0] != "q1-heap-occupancy" {
		t.Fatalf("first builtin = %s", names[0])
	}
}

func TestRegisterDuplicateRejected(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("custom", func(*Model, conf.Config) float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("custom", func(*Model, conf.Config) float64 { return 1 }); err == nil {
		t.Fatal("duplicate registration must fail")
	}
}

func TestRankOrdersByCorrelation(t *testing.T) {
	m := model()
	// Synthetic samples: objective equals the cache capacity, so a metric
	// returning the cache capacity must rank first.
	sp := tune.NewSpace(cluster.A(), workload.KMeans())
	var samples []tune.Sample
	for _, capv := range []float64{0.1, 0.3, 0.5, 0.7, 0.8} {
		cfg := sp.Build(1, 2, capv, 2)
		samples = append(samples, tune.Sample{Config: cfg, X: sp.Encode(cfg), Objective: capv * 100})
	}
	r := NewRegistry()
	if err := r.Register("oracle", func(_ *Model, c conf.Config) float64 { return c.CacheCapacity }); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("noise", func(*Model, conf.Config) float64 { return 0.42 }); err != nil {
		t.Fatal(err)
	}
	ranked := r.Rank(m, samples)
	// The oracle correlates perfectly (as may q1, which also tracks the
	// cache capacity); either way the top rank must carry |r| ≈ 1 and the
	// oracle must be ranked above the constant noise metric.
	if ranked[0].AbsPearson < 0.999 {
		t.Fatalf("top metric correlation = %v", ranked[0].AbsPearson)
	}
	var oracleRank, noiseRank int
	for i, rm := range ranked {
		switch rm.Name {
		case "oracle":
			oracleRank = i
		case "noise":
			noiseRank = i
		}
	}
	if oracleRank >= noiseRank {
		t.Fatalf("oracle (rank %d) must beat noise (rank %d)", oracleRank, noiseRank)
	}
	if ranked[len(ranked)-1].AbsPearson != 0 {
		t.Fatalf("weakest metric should have zero correlation: %+v", ranked[len(ranked)-1])
	}
}

func TestSelectIndependentDropsDuplicates(t *testing.T) {
	m := model()
	sp := tune.NewSpace(cluster.A(), workload.KMeans())
	var samples []tune.Sample
	for _, capv := range []float64{0.1, 0.2, 0.4, 0.6, 0.8} {
		cfg := sp.Build(1, 2, capv, 2)
		samples = append(samples, tune.Sample{Config: cfg, X: sp.Encode(cfg), Objective: capv * 100})
	}
	r := NewRegistry()
	r.Register("oracle", func(_ *Model, c conf.Config) float64 { return c.CacheCapacity })
	r.Register("oracle-copy", func(_ *Model, c conf.Config) float64 { return 2 * c.CacheCapacity })
	selected := r.SelectIndependent(m, samples, 0.95)
	if len(selected) == 0 {
		t.Fatal("nothing selected")
	}
	names := map[string]bool{}
	for _, s := range selected {
		names[s.Name] = true
	}
	if names["oracle"] && names["oracle-copy"] {
		t.Fatal("perfectly correlated metrics must not both be selected")
	}
	// The top selection must be maximally informative.
	if selected[0].AbsPearson < 0.999 {
		t.Fatalf("top selected correlation = %v", selected[0].AbsPearson)
	}
}

func TestFeaturesVector(t *testing.T) {
	m := model()
	r := NewRegistry()
	sp := tune.NewSpace(cluster.A(), workload.KMeans())
	var samples []tune.Sample
	for _, cfg := range sp.Grid()[:10] {
		samples = append(samples, tune.Sample{Config: cfg, X: sp.Encode(cfg), Objective: 100})
	}
	selected := r.SelectIndependent(m, samples, 0.9)
	f := Features(m, selected, conf.Default())
	if len(f) != len(selected) {
		t.Fatalf("feature dim %d vs %d selected", len(f), len(selected))
	}
	for _, v := range f {
		if v < 0 {
			t.Fatal("squashed feature negative")
		}
	}
}
