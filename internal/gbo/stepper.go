package gbo

import (
	"relm/internal/bo"
	"relm/internal/conf"
	"relm/internal/gp"
	"relm/internal/sim/cluster"
	"relm/internal/tune"
)

// Tuner is the incremental form of Guided Bayesian Optimization: a bo.Tuner
// whose Extra/Penalty hooks consult the white-box model Q. Q is built
// lazily from the first observed sample that carries profile statistics
// (§5.2: the profiled statistics may come from a prior execution with any
// configuration), so remote sessions that report plain runtimes degrade
// gracefully to vanilla BO until a profile arrives.
type Tuner struct {
	inner *bo.Tuner
	cl    cluster.Spec
	model *Model
}

var _ tune.Tuner = (*Tuner)(nil)

// NewTuner builds an incremental guided Bayesian optimizer.
func NewTuner(cl cluster.Spec, sp tune.Space, opts bo.Options) *Tuner {
	t := &Tuner{cl: cl}
	extra := func(_ []float64, cfg conf.Config) []float64 {
		if t.model != nil {
			return t.model.ExtraFeatures(cfg)
		}
		return []float64{0, 0, 0}
	}
	penalty := func(_ []float64, cfg conf.Config) float64 {
		if t.model != nil {
			return t.model.AcquisitionPenalty(cfg)
		}
		return 1
	}
	t.inner = bo.NewTuner(sp, opts, extra, penalty)
	return t
}

// Suggest returns the next configuration to measure.
func (t *Tuner) Suggest() conf.Config { return t.inner.Suggest() }

// Observe incorporates one sample, building the guide model Q from the
// first sample with derivable statistics.
func (t *Tuner) Observe(s tune.Sample) {
	if t.model == nil {
		if st, ok := s.DeriveStats(); ok {
			t.model = NewModel(t.cl, st)
		}
	}
	t.inner.Observe(s)
}

// WarmStart seeds the inner optimizer with prior observations transferred
// from a matched repository entry (§6.6 model re-use).
func (t *Tuner) WarmStart(points []bo.PriorPoint) { t.inner.WarmStart(points) }

// Best returns the incumbent non-aborted sample.
func (t *Tuner) Best() (tune.Sample, bool) { return t.inner.Best() }

// Done reports whether the stopping rule has fired.
func (t *Tuner) Done() bool { return t.inner.Done() }

// Model returns the guide model Q, or nil before any profiled observation.
func (t *Tuner) Model() *Model { return t.model }

// SurrogateStats reports the inner surrogate's cumulative hyperparameter
// grid selections and incremental appends. Guided BO exercises the
// reconciling path: when Q matures it rewrites every feature row, which
// the incremental surrogate answers with one full re-selection.
func (t *Tuner) SurrogateStats() (fits, appends int) { return t.inner.SurrogateStats() }

// SurrogateInfo reports the inner surrogate's full work counters, including
// budget compactions.
func (t *Tuner) SurrogateInfo() gp.SurrogateStats { return t.inner.SurrogateInfo() }

// Result assembles the batch-style report from the steps taken so far.
func (t *Tuner) Result() bo.Result { return t.inner.Result() }
