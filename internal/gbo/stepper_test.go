package gbo

import (
	"math"
	"testing"

	"relm/internal/bo"
	"relm/internal/profile"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/tune"
)

// TestMetricsFiniteWithZeroStats: a guide model built from empty statistics
// (a remote runtime-only observation) must stay finite over the whole
// space, including shuffle workloads where every pool requirement is zero.
func TestMetricsFiniteWithZeroStats(t *testing.T) {
	cl := cluster.A()
	m := NewModel(cl, profile.Stats{})
	for _, wlName := range []string{"WordCount", "K-means"} {
		wl, _ := workload.ByName(wlName)
		sp := tune.NewSpace(cl, wl)
		for _, cfg := range sp.Grid() {
			q := m.Metrics(cfg)
			for i, v := range q {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: q%d = %v for %v", wlName, i+1, v, cfg)
				}
			}
			for i, f := range m.ExtraFeatures(cfg) {
				if math.IsNaN(f) || math.IsInf(f, 0) {
					t.Fatalf("%s: feature %d = %v for %v", wlName, i, f, cfg)
				}
			}
		}
	}
}

// TestStepperRuntimeOnlyObservations drives incremental GBO with plain
// runtime reports; with no profile it must degrade to vanilla BO and still
// finish.
func TestStepperRuntimeOnlyObservations(t *testing.T) {
	cl := cluster.A()
	wl, _ := workload.ByName("WordCount")
	st := NewTuner(cl, tune.NewSpace(cl, wl), bo.Options{Seed: 3, MaxIterations: 3, MinNewSamples: 1})

	for i := 0; !st.Done() && i < 30; i++ {
		cfg := st.Suggest()
		st.Observe(tune.Sample{Config: cfg, RuntimeSec: 100 + float64(i%7)})
	}
	if !st.Done() {
		t.Fatal("never finished")
	}
	if st.Model() != nil {
		t.Fatal("model built with no statistics")
	}
	if _, ok := st.Best(); !ok {
		t.Fatal("no best")
	}
}

// TestGuideMaturationForcesSurrogateReselection: while observations are
// runtime-only, surrogate fits see zero guide features; the first profiled
// sample builds Q and rewrites every feature row retroactively, which the
// incremental surrogate must answer with a full hyperparameter
// re-selection (not a bogus append onto a stale factor).
func TestGuideMaturationForcesSurrogateReselection(t *testing.T) {
	cl := cluster.A()
	wl, _ := workload.ByName("K-means")
	ev := tune.NewEvaluator(cl, wl, 7)
	st := NewTuner(cl, ev.Space, bo.Options{Seed: 7, MaxIterations: 20, MinNewSamples: 20, EIFraction: -1})

	// Runtime-only observations past the bootstrap: fits happen with the
	// placeholder guide features.
	for i := 0; i < 7 && !st.Done(); i++ {
		cfg := st.Suggest()
		smp := ev.Eval(cfg)
		smp.Profile, smp.Stats = nil, nil // strip the profile
		st.Observe(smp)
	}
	if st.Model() != nil {
		t.Fatal("guide model built without statistics")
	}
	fitsBefore, appendsBefore := st.SurrogateStats()
	if fitsBefore == 0 || appendsBefore == 0 {
		t.Fatalf("degraded phase: fits=%d appends=%d — want both nonzero", fitsBefore, appendsBefore)
	}

	// The first profiled observation matures Q.
	cfg := st.Suggest()
	st.Observe(ev.Eval(cfg))
	if st.Model() == nil {
		t.Fatal("guide model not built from profiled sample")
	}
	fitsAfter, _ := st.SurrogateStats()
	if fitsAfter <= fitsBefore {
		t.Fatalf("guide maturation must force a full re-selection: fits %d -> %d", fitsBefore, fitsAfter)
	}
}
