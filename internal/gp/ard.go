package gp

import (
	"math"

	"relm/internal/linalg"
)

// DefaultARDIters is the default gradient-ascent budget of FitBestARD: how
// many accepted-or-backtracked steps the per-dimension length-scale
// refinement may take per re-selection.
const DefaultARDIters = 6

// FitBestARD selects hyperparameters in two stages: the coarse two-group
// grid of FitBestGrouped locates the right order of magnitude, then ARD
// gradient ascent refines every dimension's length scale independently by
// maximizing the log marginal likelihood (iters steps; 0 selects
// DefaultARDIters, negative disables refinement and returns the pure grid
// result). Steps are only ever accepted when they improve the likelihood,
// so the result is never worse than the grid starting point.
func FitBestARD(kind string, xs [][]float64, ys []float64, baseDims, iters int) (*GP, error) {
	if iters == 0 {
		iters = DefaultARDIters
	}
	g, err := FitBestGrouped(kind, xs, ys, baseDims)
	if err != nil || iters < 0 {
		return g, err
	}
	return ardRefine(g, kind, xs, ys, iters), nil
}

// ARD length scales are clamped to this range (in length space) so a noisy
// gradient cannot drive a dimension to a degenerate kernel.
const (
	ardMinLength = 1e-2
	ardMaxLength = 1e2
)

// ardRefine runs bounded gradient ascent on the per-dimension log length
// scales, starting from the grid-selected model. The gradient is analytic —
// ∂L/∂θ = ½ tr((ααᵀ − K⁻¹) ∂K/∂θ) through the cached Cholesky factor — and
// a backtracking line search accepts a step only when the refitted marginal
// likelihood improves, so the returned model's LML is monotonically ≥ the
// starting point's.
func ardRefine(g *GP, kind string, xs [][]float64, ys []float64, iters int) *GP {
	if len(xs) == 0 {
		return g
	}
	dim := len(xs[0])
	lengths, ok := kernelLengths(g.Kernel, dim)
	if !ok {
		return g
	}
	theta := make([]float64, dim)
	for d := range theta {
		theta[d] = math.Log(lengths[d])
	}
	trial := make([]float64, dim)
	trialLen := make([]float64, dim)
	grad := make([]float64, dim)

	cur, curLML := g, g.LogMarginalLikelihood()
	step := 0.25
	logMin, logMax := math.Log(ardMinLength), math.Log(ardMaxLength)
	for it := 0; it < iters; it++ {
		ardGradient(cur, grad)
		gmax := 0.0
		for _, v := range grad {
			if a := math.Abs(v); a > gmax {
				gmax = a
			}
		}
		if gmax < 1e-10 {
			break
		}
		for d := range trial {
			t := theta[d] + step*grad[d]/gmax
			if t < logMin {
				t = logMin
			} else if t > logMax {
				t = logMax
			}
			trial[d] = t
			trialLen[d] = math.Exp(t)
		}
		var k Kernel
		if kind == "matern52" {
			k = Matern52{Variance: 1, Length: append([]float64(nil), trialLen...)}
		} else {
			k = RBF{Variance: 1, Length: append([]float64(nil), trialLen...)}
		}
		cand := New(k, cur.Noise)
		if err := cand.Fit(xs, ys); err != nil {
			step /= 2
			continue
		}
		if ml := cand.LogMarginalLikelihood(); ml > curLML {
			copy(theta, trial)
			cur, curLML = cand, ml
			if step *= 1.3; step > 1 {
				step = 1
			}
		} else {
			if step /= 2; step < 1e-3 {
				break
			}
		}
	}
	return cur
}

// kernelLengths expands the fitted kernel's length scales to dense
// per-dimension values (the "missing or non-positive means 1" convention).
// ok is false for kernel types ARD does not understand.
func kernelLengths(k Kernel, dim int) ([]float64, bool) {
	var raw []float64
	switch kk := k.(type) {
	case RBF:
		raw = kk.Length
	case Matern52:
		raw = kk.Length
	default:
		return nil, false
	}
	ls := make([]float64, dim)
	for d := range ls {
		if d < len(raw) && raw[d] > 0 {
			ls[d] = raw[d]
		} else {
			ls[d] = 1
		}
	}
	return ls, true
}

// ardGradient computes ∂LML/∂θ_d for θ_d = log l_d into grad, reading the
// fitted model's cached Cholesky factor and dual weights. Cost: O(n³) for
// K⁻¹ (the same order as the fit that produced the factor) plus O(n²·d)
// for the pairwise accumulation.
func ardGradient(g *GP, grad []float64) {
	n := len(g.xs)
	dim := len(grad)
	for d := range grad {
		grad[d] = 0
	}
	if n == 0 {
		return
	}
	lengths, ok := kernelLengths(g.Kernel, dim)
	if !ok {
		return
	}
	variance := 1.0
	matern := false
	switch kk := g.Kernel.(type) {
	case RBF:
		variance = kk.Variance
	case Matern52:
		variance = kk.Variance
		matern = true
	}
	inv := make([]float64, dim)
	for d := range inv {
		inv[d] = 1 / lengths[d]
	}

	// K⁻¹ column by column through the cached factor.
	kinv := linalg.NewMatrix(n, n)
	col := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := range col {
			col[j] = 0
		}
		col[i] = 1
		linalg.CholSolveInto(g.chol, col, col)
		for j := range col {
			kinv.Set(j, i, col[j])
		}
	}

	// Pairwise accumulation. The diagonal contributes nothing: Δ = 0 makes
	// every ∂K_ii/∂θ_d zero.
	u := make([]float64, dim)
	for i := 0; i < n; i++ {
		xi := g.xs[i]
		ai := g.alpha[i]
		for j := i + 1; j < n; j++ {
			xj := g.xs[j]
			var s float64
			for d := 0; d < dim; d++ {
				diff := (xi[d] - xj[d]) * inv[d]
				ud := diff * diff
				u[d] = ud
				s += ud
			}
			// dk/ds of the kernel value at squared scaled distance s.
			var base float64
			if matern {
				c := math.Sqrt(5 * s)
				base = -(5.0 / 6.0) * variance * math.Exp(-c) * (1 + c)
			} else {
				base = -0.5 * variance * math.Exp(-0.5*s)
			}
			// ∂s/∂θ_d = −2·u_d; symmetry doubles the pair, the ½ in the
			// trace halves it back.
			coef := (ai*g.alpha[j] - kinv.At(i, j)) * base * -2
			for d := 0; d < dim; d++ {
				grad[d] += coef * u[d]
			}
		}
	}
}
