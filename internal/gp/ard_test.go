package gp

import (
	"math"
	"testing"

	"relm/internal/simrand"
)

// Satellite acceptance: ARD refinement accepts a step only when the log
// marginal likelihood improves, so FitBestARD never returns a model below
// the grid starting point — for either kernel family.
func TestARDNeverBelowGrid(t *testing.T) {
	rng := simrand.New(77)
	for trial := 0; trial < 6; trial++ {
		dim := 2 + rng.Intn(3)
		n := 12 + rng.Intn(28)
		xs, ys := synth(rng, n, dim)
		for _, kind := range []string{"rbf", "matern52"} {
			grid, err := FitBestARD(kind, xs, ys, dim, -1) // pure grid
			if err != nil {
				t.Fatalf("trial %d %s: grid: %v", trial, kind, err)
			}
			ard, err := FitBestARD(kind, xs, ys, dim, 0) // default ascent budget
			if err != nil {
				t.Fatalf("trial %d %s: ard: %v", trial, kind, err)
			}
			gl, al := grid.LogMarginalLikelihood(), ard.LogMarginalLikelihood()
			if al < gl-1e-9 {
				t.Fatalf("trial %d %s: ARD returned LML %v below grid %v", trial, kind, al, gl)
			}
		}
	}
}

// Negative iters must return the untouched grid selection.
func TestARDNegativeItersIsPureGrid(t *testing.T) {
	rng := simrand.New(88)
	xs, ys := synth(rng, 20, 3)
	grid, err := FitBestGrouped("rbf", xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	pure, err := FitBestARD("rbf", xs, ys, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	if gl, pl := grid.LogMarginalLikelihood(), pure.LogMarginalLikelihood(); gl != pl {
		t.Fatalf("iters<0 should be the grid result: LML %v vs %v", pl, gl)
	}
}

// On a strongly anisotropic surface — one active dimension, one pure noise
// dimension — the per-dimension ascent should strictly beat the grouped
// grid, which is forced to share one length across both.
func TestARDImprovesAnisotropicFit(t *testing.T) {
	rng := simrand.New(99)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 30; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, math.Sin(9*x[0])+rng.Norm(0, 0.01))
	}
	grid, err := FitBestARD("rbf", xs, ys, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	ard, err := FitBestARD("rbf", xs, ys, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if ard.LogMarginalLikelihood() <= grid.LogMarginalLikelihood() {
		t.Fatalf("ARD did not improve an anisotropic fit: %v vs grid %v",
			ard.LogMarginalLikelihood(), grid.LogMarginalLikelihood())
	}
}
