package gp

import (
	"fmt"
	"math"
	"testing"

	"relm/internal/simrand"
)

// BenchmarkGPFitPredict measures the surrogate hot path at session length n:
//
//   - observe=refit: what absorbing one observation cost before the
//     incremental path — the full hyperparameter grid search
//     (FitBestGrouped), each cell rebuilding the Gram matrix and running an
//     O(n³) Cholesky.
//   - observe=append: the incremental path — one O(n²) GP.Append.
//   - predict: one allocation-free posterior evaluation (PredictInto).
//   - predict=batch256: scoring a 256-candidate acquisition pool
//     (PredictBatch) through one reused scratch.
//
// CI enforces observe=append ≤ 0.1× observe=refit at n=100 as a
// hardware-independent ratio gate.
func BenchmarkGPFitPredict(b *testing.B) {
	const dim = 6
	for _, n := range []int{25, 100} {
		xs, ys := benchData(n+64, dim)

		b.Run(fmt.Sprintf("observe=refit/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := FitBestGrouped("rbf", xs[:n], ys[:n], 4); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("observe=append/n=%d", n), func(b *testing.B) {
			kern := RBF{Variance: 1, Length: constLengths(dim, 0.35)}
			var g *GP
			rebase := func() {
				g = New(kern, 1e-4)
				if err := g.Fit(xs[:n], ys[:n]); err != nil {
					b.Fatal(err)
				}
			}
			rebase()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if g.N() >= n+32 {
					b.StopTimer()
					rebase()
					b.StartTimer()
				}
				if err := g.Append(xs[g.N()], ys[g.N()]); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("predict/n=%d", n), func(b *testing.B) {
			g := New(RBF{Variance: 1, Length: constLengths(dim, 0.35)}, 1e-4)
			if err := g.Fit(xs[:n], ys[:n]); err != nil {
				b.Fatal(err)
			}
			x := xs[n]
			var s Scratch
			g.PredictInto(x, &s) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, v := g.PredictInto(x, &s); v <= 0 {
					b.Fatal("bad variance")
				}
			}
		})

		b.Run(fmt.Sprintf("predict=batch256/n=%d", n), func(b *testing.B) {
			g := New(RBF{Variance: 1, Length: constLengths(dim, 0.35)}, 1e-4)
			if err := g.Fit(xs[:n], ys[:n]); err != nil {
				b.Fatal(err)
			}
			cands, _ := benchData(256, dim)
			means := make([]float64, 256)
			vars := make([]float64, 256)
			var s Scratch
			g.PredictBatch(cands, means, vars, &s) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.PredictBatch(cands, means, vars, &s)
			}
		})
	}
}

// BenchmarkGPSparse measures the budgeted surrogate at stream lengths far
// past its active-set cap — the regime the budget exists for:
//
//   - append: absorbing one observation into an at-budget active set — a
//     conditional-variance score, an eviction (or rejection), and a
//     bordered re-append, all O(m²) in the budget m, independent of the
//     stream length n.
//   - predict: one allocation-free posterior evaluation through the capped
//     active set.
//   - predict=exact/n=256: the exact model at the budget size — the floor
//     the budgeted predict is gated against. CI enforces
//     predict/n=10000 ≤ 1.5× predict=exact/n=256 as a hardware-independent
//     ratio gate, plus 0 allocs/op on the budgeted predict: a 10k-point
//     session must predict like a 256-point one.
//
// Re-selection is suppressed (huge RefitEvery, drift and ARD disabled) so
// the timings isolate the steady-state paths from the scheduled O(m³)
// hyperparameter searches.
func BenchmarkGPSparse(b *testing.B) {
	const dim, budget = 6, 256

	build := func(b *testing.B, n int) (*Sparse, [][]float64, []float64) {
		xs, ys := benchData(n+512, dim)
		s := &Sparse{Kind: "rbf", BaseDims: dim, Budget: budget,
			RefitEvery: 1 << 30, LMLDrift: -1, ARDIters: -1}
		if err := s.SetData(xs[:n], ys[:n]); err != nil {
			b.Fatal(err)
		}
		return s, xs, ys
	}

	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("append/n=%d", n), func(b *testing.B) {
			s, xs, ys := build(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := n + i%512
				if err := s.Append(xs[j], ys[j]); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("predict/n=%d", n), func(b *testing.B) {
			s, xs, _ := build(b, n)
			x := xs[n]
			var sc Scratch
			s.PredictInto(x, &sc) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, v := s.PredictInto(x, &sc); v <= 0 {
					b.Fatal("bad variance")
				}
			}
		})
	}

	b.Run("predict=exact/n=256", func(b *testing.B) {
		xs, ys := benchData(budget+1, dim)
		inc := &Incremental{Kind: "rbf", BaseDims: dim,
			RefitEvery: 1 << 30, LMLDrift: -1, ARDIters: -1}
		if err := inc.SetData(xs[:budget], ys[:budget]); err != nil {
			b.Fatal(err)
		}
		x := xs[budget]
		var sc Scratch
		inc.PredictInto(x, &sc) // warm the scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, v := inc.PredictInto(x, &sc); v <= 0 {
				b.Fatal("bad variance")
			}
		}
	})
}

func benchData(n, dim int) ([][]float64, []float64) {
	rng := simrand.New(1234)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, dim)
		for d := range x {
			x[d] = rng.Float64()
		}
		xs[i] = x
		ys[i] = 100 + 30*math.Sin(4*x[0]) + 10*x[1]*x[2] + rng.Norm(0, 1)
	}
	return xs, ys
}

func constLengths(dim int, v float64) []float64 {
	ls := make([]float64, dim)
	for d := range ls {
		ls[d] = v
	}
	return ls
}
