// Package gp implements Gaussian Process regression — the surrogate model of
// the paper's Bayesian Optimization (§5.1, Equation 6): kernels (ARD RBF and
// Matérn-5/2), exact inference via Cholesky factorization, posterior mean and
// variance, and a small marginal-likelihood grid search for the kernel
// hyperparameters.
//
// The regressor supports two training paths. Fit is the batch path: it
// rebuilds the Gram matrix and runs a fresh O(n³) factorization. Append is
// the incremental path: conditioning on one new observation extends the
// cached Cholesky factor by a bordered row in O(n²), producing bit-for-bit
// the factor a batch refit would (falling back to a jittered batch refit
// when the bordered pivot is not numerically positive). Prediction has
// allocation-free variants (PredictInto, PredictBatch) that write into a
// caller-owned Scratch, and Incremental schedules hyperparameter
// re-selection so streaming observations pay the grid search only every few
// appends instead of on every one.
package gp

import (
	"errors"
	"math"

	"relm/internal/linalg"
)

// Kernel is a positive-semidefinite covariance function.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
}

// RBF is the squared-exponential kernel with automatic relevance
// determination: k(a,b) = σ²·exp(-½ Σ ((a_d-b_d)/l_d)²).
type RBF struct {
	Variance float64
	Length   []float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	var s float64
	for d := range a {
		l := 1.0
		if d < len(k.Length) && k.Length[d] > 0 {
			l = k.Length[d]
		}
		diff := (a[d] - b[d]) / l
		s += diff * diff
	}
	return k.Variance * math.Exp(-0.5*s)
}

// Matern52 is the Matérn kernel with ν = 5/2, a standard choice for
// response surfaces that are less smooth than the RBF assumes.
type Matern52 struct {
	Variance float64
	Length   []float64
}

// Eval implements Kernel.
func (k Matern52) Eval(a, b []float64) float64 {
	var s float64
	for d := range a {
		l := 1.0
		if d < len(k.Length) && k.Length[d] > 0 {
			l = k.Length[d]
		}
		diff := (a[d] - b[d]) / l
		s += diff * diff
	}
	r := math.Sqrt(s)
	c := math.Sqrt(5) * r
	return k.Variance * (1 + c + 5.0/3.0*s) * math.Exp(-c)
}

// preparedRBF is RBF with the length-scale normalization hoisted out of the
// inner loop: inverse length scales are materialized per dimension at
// construction, so Eval does one fused multiply per dimension with no
// branching. Built by prepareKernel once the input dimension is known.
type preparedRBF struct {
	variance float64
	inv      []float64
}

func (k preparedRBF) Eval(a, b []float64) float64 {
	var s float64
	inv := k.inv
	for d, ad := range a {
		diff := (ad - b[d]) * inv[d]
		s += diff * diff
	}
	return k.variance * math.Exp(-0.5*s)
}

// preparedMatern52 is Matern52 with hoisted inverse length scales.
type preparedMatern52 struct {
	variance float64
	inv      []float64
}

func (k preparedMatern52) Eval(a, b []float64) float64 {
	var s float64
	inv := k.inv
	for d, ad := range a {
		diff := (ad - b[d]) * inv[d]
		s += diff * diff
	}
	r := math.Sqrt(s)
	c := math.Sqrt(5) * r
	return k.variance * (1 + c + 5.0/3.0*s) * math.Exp(-c)
}

// invLengths expands a (possibly short or zero-filled) length-scale slice
// into dense per-dimension inverse scales, applying the same "missing or
// non-positive means 1" convention as the public kernels.
func invLengths(length []float64, dim int) []float64 {
	inv := make([]float64, dim)
	for d := range inv {
		if d < len(length) && length[d] > 0 {
			inv[d] = 1 / length[d]
		} else {
			inv[d] = 1
		}
	}
	return inv
}

// prepareKernel specializes a kernel to a known input dimension, hoisting
// per-call normalization work into construction. Unknown kernel types pass
// through unchanged.
//
// Note the prepared forms multiply by precomputed reciprocals where the
// public Eval divides; the results can differ in the last ULP, which is far
// inside every tolerance this package guarantees.
func prepareKernel(k Kernel, dim int) Kernel {
	switch kk := k.(type) {
	case RBF:
		return preparedRBF{variance: kk.Variance, inv: invLengths(kk.Length, dim)}
	case Matern52:
		return preparedMatern52{variance: kk.Variance, inv: invLengths(kk.Length, dim)}
	}
	return k
}

// GP is a Gaussian Process regressor. Targets are standardized internally so
// kernel variances stay O(1). The kernel (and its prepared form) is captured
// at Fit/Append time; mutating the Kernel field after fitting has no effect
// until the next batch Fit.
type GP struct {
	Kernel Kernel
	Noise  float64 // observation noise σ² (on standardized targets)

	eval  Kernel // dimension-specialized kernel, set by Fit
	xs    [][]float64
	ys    []float64 // raw targets, kept for incremental re-standardization
	yn    []float64 // standardized targets, kept for the O(n) marginal likelihood
	alpha []float64
	chol  *linalg.Matrix
	meanY float64
	stdY  float64
	kbuf  []float64 // scratch kernel column for Append
}

// New returns an unfitted GP.
func New(k Kernel, noise float64) *GP {
	if noise <= 0 {
		noise = 1e-6
	}
	return &GP{Kernel: k, Noise: noise}
}

// ErrNoData is returned by Fit with empty inputs.
var ErrNoData = errors.New("gp: no training data")

// Fit conditions the process on the observations.
func (g *GP) Fit(xs [][]float64, ys []float64) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return ErrNoData
	}
	n := len(xs)
	cx := make([][]float64, n)
	for i, x := range xs {
		cx[i] = append([]float64(nil), x...)
	}
	cy := append([]float64(nil), ys...)
	eval := prepareKernel(g.Kernel, len(cx[0]))

	// Gram matrix + noise.
	gram := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := eval.Eval(cx[i], cx[j])
			gram.Set(i, j, v)
			gram.Set(j, i, v)
		}
	}
	gram.AddDiag(g.Noise)
	l, err := linalg.CholeskyJitter(gram)
	if err != nil {
		return err
	}
	g.xs, g.ys, g.eval, g.chol = cx, cy, eval, l
	g.restandardize()
	return nil
}

// Append conditions the fitted process on one additional observation in
// O(n²): the cached Cholesky factor grows by a bordered row (bit-matching
// what a batch refit would compute), targets are re-standardized, and the
// dual weights re-solved against the extended factor. If the bordered pivot
// is not numerically positive — the incremental path's equivalent of
// needing jitter — it falls back to a full batch Fit. Appending to an
// unfitted GP is a batch Fit of one point.
func (g *GP) Append(x []float64, y float64) error {
	if g.chol == nil {
		return g.Fit([][]float64{x}, []float64{y})
	}
	n := len(g.xs)
	xc := append([]float64(nil), x...)
	if cap(g.kbuf) < n {
		g.kbuf = make([]float64, n, n+n/2+8)
	}
	k := g.kbuf[:n]
	for i, xi := range g.xs {
		k[i] = g.eval.Eval(xc, xi)
	}
	d := g.eval.Eval(xc, xc) + g.Noise
	chol, err := linalg.CholAppendRow(g.chol, k, d)
	if err != nil {
		return g.Fit(append(g.xs, xc), append(g.ys, y))
	}
	g.chol = chol
	g.xs = append(g.xs, xc)
	g.ys = append(g.ys, y)
	g.restandardize()
	return nil
}

// deleteAt removes training point j from the fitted process in O((n-j)²):
// the cached Cholesky factor shrinks by the matching row/column (a compact
// plus a rank-1 update of the trailing block — no refactorization), targets
// are re-standardized, and the dual weights re-solved. This is the eviction
// half of the budgeted Sparse surrogate's replace cycle; together with
// Append it swaps a point in O(n²).
func (g *GP) deleteAt(j int) {
	n := len(g.xs)
	if j < 0 || j >= n {
		return
	}
	if n == 1 {
		g.xs, g.ys = g.xs[:0], g.ys[:0]
		g.yn, g.alpha = g.yn[:0], g.alpha[:0]
		g.chol = nil
		return
	}
	g.kbuf = growVec(g.kbuf, n)
	g.chol = linalg.CholDeleteRowCol(g.chol, j, g.kbuf)
	copy(g.xs[j:], g.xs[j+1:])
	g.xs = g.xs[:n-1]
	copy(g.ys[j:], g.ys[j+1:])
	g.ys = g.ys[:n-1]
	g.restandardize()
}

// restandardize recomputes the target standardization and dual weights from
// the raw targets and the current factor, in O(n²) and without allocating
// once the buffers have grown to size.
func (g *GP) restandardize() {
	n := len(g.ys)
	var mean float64
	for _, y := range g.ys {
		mean += y
	}
	mean /= float64(n)
	var varY float64
	for _, y := range g.ys {
		d := y - mean
		varY += d * d
	}
	varY /= float64(n)
	std := math.Sqrt(varY)
	if std < 1e-12 {
		std = 1
	}
	g.meanY, g.stdY = mean, std
	g.yn = growVec(g.yn, n)
	for i, y := range g.ys {
		g.yn[i] = (y - mean) / std
	}
	g.alpha = growVec(g.alpha, n)
	linalg.CholSolveInto(g.chol, g.yn, g.alpha)
}

// growVec returns s resized to n, reallocating (with headroom) only when
// the capacity is exhausted.
func growVec(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n, n+n/2+8)
}

// N returns the number of training points.
func (g *GP) N() int { return len(g.xs) }

// Scratch holds the reusable buffers of the allocation-free prediction
// path. A zero Scratch is ready to use; it grows to the size of the largest
// GP it has served. A Scratch may be reused across models but must not be
// shared by concurrent goroutines (the GP itself is safe for concurrent
// PredictInto calls with distinct scratches).
type Scratch struct {
	k []float64
	v []float64
}

// Predict returns the posterior mean and variance at x (Equation 6).
func (g *GP) Predict(x []float64) (mean, variance float64) {
	var s Scratch
	return g.PredictInto(x, &s)
}

// PredictInto is Predict writing through caller-owned scratch, performing
// no allocation in steady state.
func (g *GP) PredictInto(x []float64, s *Scratch) (mean, variance float64) {
	if g.chol == nil {
		return g.meanY, 1
	}
	n := len(g.xs)
	s.k = growVec(s.k, n)
	s.v = growVec(s.v, n)
	k := s.k
	for i, xi := range g.xs {
		k[i] = g.eval.Eval(x, xi)
	}
	mu := linalg.Dot(k, g.alpha)
	v := linalg.SolveLowerInto(g.chol, k, s.v)
	variance = g.eval.Eval(x, x) - linalg.Dot(v, v)
	if variance < 1e-12 {
		variance = 1e-12
	}
	// De-standardize.
	mean = g.meanY + g.stdY*mu
	variance *= g.stdY * g.stdY
	return mean, variance
}

// PredictBatch scores a batch of candidate points, writing the posterior
// means and variances into means and vars (which must be at least
// len(xs) long). It allocates nothing in steady state.
func (g *GP) PredictBatch(xs [][]float64, means, vars []float64, s *Scratch) {
	if len(means) < len(xs) || len(vars) < len(xs) {
		panic("gp: PredictBatch output length mismatch")
	}
	for i, x := range xs {
		means[i], vars[i] = g.PredictInto(x, s)
	}
}

// LogMarginalLikelihood returns log p(y|X) of the fitted model (up to the
// constant term), used for hyperparameter selection. It reads the
// standardized targets stored at fit time, so it costs O(n) — no kernel
// re-evaluation.
func (g *GP) LogMarginalLikelihood() float64 {
	if g.chol == nil {
		return math.Inf(-1)
	}
	n := len(g.yn)
	fit := -0.5 * linalg.Dot(g.yn, g.alpha)
	det := -0.5 * linalg.LogDetFromChol(g.chol)
	return fit + det - 0.5*float64(n)*math.Log(2*math.Pi)
}

// FitBest grid-searches isotropic length scales and noise levels, keeping
// the model with the highest marginal likelihood. The kind selects RBF
// ("rbf") or Matérn-5/2 ("matern52").
func FitBest(kind string, xs [][]float64, ys []float64) (*GP, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	return FitBestGrouped(kind, xs, ys, len(xs[0]))
}

// FitBestGrouped grid-searches two length-scale groups — the first baseDims
// dimensions (the configuration knobs) and the remainder (guide features) —
// keeping the model with the highest marginal likelihood.
func FitBestGrouped(kind string, xs [][]float64, ys []float64, baseDims int) (*GP, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	dim := len(xs[0])
	if baseDims > dim {
		baseDims = dim
	}
	baseLengths := []float64{0.1, 0.2, 0.35, 0.6, 1.0}
	extraLengths := []float64{1.0}
	if dim > baseDims {
		extraLengths = []float64{0.15, 0.35, 0.8}
	}
	noises := []float64{1e-4, 1e-2}
	var best *GP
	bestML := math.Inf(-1)
	for _, lb := range baseLengths {
		for _, le := range extraLengths {
			ls := make([]float64, dim)
			for d := range ls {
				if d < baseDims {
					ls[d] = lb
				} else {
					ls[d] = le
				}
			}
			var k Kernel
			if kind == "matern52" {
				k = Matern52{Variance: 1, Length: ls}
			} else {
				k = RBF{Variance: 1, Length: ls}
			}
			for _, noise := range noises {
				cand := New(k, noise)
				if err := cand.Fit(xs, ys); err != nil {
					continue
				}
				if ml := cand.LogMarginalLikelihood(); ml > bestML {
					best, bestML = cand, ml
				}
			}
		}
	}
	if best == nil {
		return nil, errors.New("gp: no hyperparameter setting produced a valid fit")
	}
	return best, nil
}
