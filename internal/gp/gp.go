// Package gp implements Gaussian Process regression — the surrogate model of
// the paper's Bayesian Optimization (§5.1, Equation 6): kernels (ARD RBF and
// Matérn-5/2), exact inference via Cholesky factorization, posterior mean and
// variance, and a small marginal-likelihood grid search for the kernel
// hyperparameters.
package gp

import (
	"errors"
	"math"

	"relm/internal/linalg"
)

// Kernel is a positive-semidefinite covariance function.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
}

// RBF is the squared-exponential kernel with automatic relevance
// determination: k(a,b) = σ²·exp(-½ Σ ((a_d-b_d)/l_d)²).
type RBF struct {
	Variance float64
	Length   []float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	var s float64
	for d := range a {
		l := k.length(d)
		diff := (a[d] - b[d]) / l
		s += diff * diff
	}
	return k.Variance * math.Exp(-0.5*s)
}

func (k RBF) length(d int) float64 {
	if d < len(k.Length) && k.Length[d] > 0 {
		return k.Length[d]
	}
	return 1
}

// Matern52 is the Matérn kernel with ν = 5/2, a standard choice for
// response surfaces that are less smooth than the RBF assumes.
type Matern52 struct {
	Variance float64
	Length   []float64
}

// Eval implements Kernel.
func (k Matern52) Eval(a, b []float64) float64 {
	var s float64
	for d := range a {
		l := 1.0
		if d < len(k.Length) && k.Length[d] > 0 {
			l = k.Length[d]
		}
		diff := (a[d] - b[d]) / l
		s += diff * diff
	}
	r := math.Sqrt(s)
	c := math.Sqrt(5) * r
	return k.Variance * (1 + c + 5.0/3.0*s) * math.Exp(-c)
}

// GP is a Gaussian Process regressor. Targets are standardized internally so
// kernel variances stay O(1).
type GP struct {
	Kernel Kernel
	Noise  float64 // observation noise σ² (on standardized targets)

	xs    [][]float64
	alpha []float64
	chol  *linalg.Matrix
	meanY float64
	stdY  float64
}

// New returns an unfitted GP.
func New(k Kernel, noise float64) *GP {
	if noise <= 0 {
		noise = 1e-6
	}
	return &GP{Kernel: k, Noise: noise}
}

// ErrNoData is returned by Fit with empty inputs.
var ErrNoData = errors.New("gp: no training data")

// Fit conditions the process on the observations.
func (g *GP) Fit(xs [][]float64, ys []float64) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return ErrNoData
	}
	n := len(xs)
	g.xs = make([][]float64, n)
	for i, x := range xs {
		g.xs[i] = append([]float64(nil), x...)
	}

	// Standardize targets.
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)
	var varY float64
	for _, y := range ys {
		d := y - mean
		varY += d * d
	}
	varY /= float64(n)
	std := math.Sqrt(varY)
	if std < 1e-12 {
		std = 1
	}
	g.meanY, g.stdY = mean, std
	yn := make([]float64, n)
	for i, y := range ys {
		yn[i] = (y - mean) / std
	}

	// Gram matrix + noise.
	gram := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.Kernel.Eval(g.xs[i], g.xs[j])
			gram.Set(i, j, v)
			gram.Set(j, i, v)
		}
	}
	gram.AddDiag(g.Noise)
	l, err := linalg.CholeskyJitter(gram)
	if err != nil {
		return err
	}
	g.chol = l
	g.alpha = linalg.CholSolve(l, yn)
	return nil
}

// N returns the number of training points.
func (g *GP) N() int { return len(g.xs) }

// Predict returns the posterior mean and variance at x (Equation 6).
func (g *GP) Predict(x []float64) (mean, variance float64) {
	if g.chol == nil {
		return g.meanY, 1
	}
	n := len(g.xs)
	k := make([]float64, n)
	for i := range g.xs {
		k[i] = g.Kernel.Eval(x, g.xs[i])
	}
	mu := linalg.Dot(k, g.alpha)
	v := linalg.SolveLower(g.chol, k)
	variance = g.Kernel.Eval(x, x) - linalg.Dot(v, v)
	if variance < 1e-12 {
		variance = 1e-12
	}
	// De-standardize.
	mean = g.meanY + g.stdY*mu
	variance *= g.stdY * g.stdY
	return mean, variance
}

// LogMarginalLikelihood returns log p(y|X) of the fitted model (up to the
// constant term), used for hyperparameter selection.
func (g *GP) LogMarginalLikelihood() float64 {
	if g.chol == nil {
		return math.Inf(-1)
	}
	n := len(g.xs)
	yn := make([]float64, n)
	// Recover standardized targets from alpha: y = K·alpha. Cheaper: use
	// 0.5·yᵀα with y reconstructed; store during Fit instead.
	for i := range yn {
		var s float64
		for j := range g.xs {
			s += g.Kernel.Eval(g.xs[i], g.xs[j]) * g.alpha[j]
		}
		// Add the noise term contribution.
		s += g.Noise * g.alpha[i]
		yn[i] = s
	}
	fit := -0.5 * linalg.Dot(yn, g.alpha)
	det := -0.5 * linalg.LogDetFromChol(g.chol)
	return fit + det - 0.5*float64(n)*math.Log(2*math.Pi)
}

// FitBest grid-searches isotropic length scales and noise levels, keeping
// the model with the highest marginal likelihood. The kind selects RBF
// ("rbf") or Matérn-5/2 ("matern52").
func FitBest(kind string, xs [][]float64, ys []float64) (*GP, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	return FitBestGrouped(kind, xs, ys, len(xs[0]))
}

// FitBestGrouped grid-searches two length-scale groups — the first baseDims
// dimensions (the configuration knobs) and the remainder (guide features) —
// keeping the model with the highest marginal likelihood.
func FitBestGrouped(kind string, xs [][]float64, ys []float64, baseDims int) (*GP, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	dim := len(xs[0])
	if baseDims > dim {
		baseDims = dim
	}
	baseLengths := []float64{0.1, 0.2, 0.35, 0.6, 1.0}
	extraLengths := []float64{1.0}
	if dim > baseDims {
		extraLengths = []float64{0.15, 0.35, 0.8}
	}
	noises := []float64{1e-4, 1e-2}
	var best *GP
	bestML := math.Inf(-1)
	for _, lb := range baseLengths {
		for _, le := range extraLengths {
			ls := make([]float64, dim)
			for d := range ls {
				if d < baseDims {
					ls[d] = lb
				} else {
					ls[d] = le
				}
			}
			var k Kernel
			if kind == "matern52" {
				k = Matern52{Variance: 1, Length: ls}
			} else {
				k = RBF{Variance: 1, Length: ls}
			}
			for _, noise := range noises {
				cand := New(k, noise)
				if err := cand.Fit(xs, ys); err != nil {
					continue
				}
				if ml := cand.LogMarginalLikelihood(); ml > bestML {
					best, bestML = cand, ml
				}
			}
		}
	}
	if best == nil {
		return nil, errors.New("gp: no hyperparameter setting produced a valid fit")
	}
	return best, nil
}
