package gp

import (
	"math"
	"testing"
	"testing/quick"

	"relm/internal/linalg"
	"relm/internal/simrand"
	"relm/internal/stats"
)

func TestKernelBasics(t *testing.T) {
	k := RBF{Variance: 2, Length: []float64{1, 1}}
	x := []float64{0.3, 0.7}
	if got := k.Eval(x, x); math.Abs(got-2) > 1e-12 {
		t.Fatalf("k(x,x) = %v, want variance", got)
	}
	far := k.Eval([]float64{0, 0}, []float64{10, 10})
	near := k.Eval([]float64{0, 0}, []float64{0.1, 0.1})
	if far >= near {
		t.Fatal("RBF must decay with distance")
	}
}

func TestMatern52Basics(t *testing.T) {
	k := Matern52{Variance: 1, Length: []float64{0.5}}
	if got := k.Eval([]float64{1}, []float64{1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("k(x,x) = %v", got)
	}
	if k.Eval([]float64{0}, []float64{3}) >= k.Eval([]float64{0}, []float64{0.2}) {
		t.Fatal("Matérn must decay with distance")
	}
}

// Property: kernels are symmetric and produce PSD Gram matrices (their
// Cholesky succeeds with jitter).
func TestKernelPSDProperty(t *testing.T) {
	rng := simrand.New(5)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		for _, k := range []Kernel{
			RBF{Variance: 1, Length: []float64{0.3, 0.3, 0.3}},
			Matern52{Variance: 1, Length: []float64{0.3, 0.3, 0.3}},
		} {
			gram := linalg.NewMatrix(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					v := k.Eval(xs[i], xs[j])
					if math.Abs(v-k.Eval(xs[j], xs[i])) > 1e-12 {
						t.Fatal("kernel asymmetric")
					}
					gram.Set(i, j, v)
				}
			}
			if _, err := linalg.CholeskyJitter(gram); err != nil {
				t.Fatalf("Gram not PSD: %v", err)
			}
		}
	}
}

func TestFitEmptyFails(t *testing.T) {
	g := New(RBF{Variance: 1}, 1e-4)
	if err := g.Fit(nil, nil); err == nil {
		t.Fatal("empty fit should fail")
	}
	if _, err := FitBest("rbf", nil, nil); err == nil {
		t.Fatal("empty FitBest should fail")
	}
}

func TestInterpolatesTrainingPoints(t *testing.T) {
	xs := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	ys := []float64{1, 3, 2, 5, 4}
	g := New(RBF{Variance: 1, Length: []float64{0.2}}, 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mean, variance := g.Predict(x)
		if math.Abs(mean-ys[i]) > 0.05 {
			t.Errorf("predict(train[%d]) = %v, want %v", i, mean, ys[i])
		}
		if variance < 0 {
			t.Error("negative variance")
		}
	}
}

func TestVarianceGrowsAwayFromData(t *testing.T) {
	xs := [][]float64{{0.4}, {0.5}, {0.6}}
	ys := []float64{1, 2, 1}
	g := New(RBF{Variance: 1, Length: []float64{0.1}}, 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	_, nearVar := g.Predict([]float64{0.5})
	_, farVar := g.Predict([]float64{3.0})
	if farVar <= nearVar {
		t.Fatalf("variance must grow away from data: near %v, far %v", nearVar, farVar)
	}
}

func TestPredictUnfitted(t *testing.T) {
	g := New(RBF{Variance: 1}, 1e-4)
	mean, variance := g.Predict([]float64{0.5})
	if mean != 0 || variance <= 0 {
		t.Fatal("unfitted prediction should be the (zero) prior with positive variance")
	}
}

func TestFitBestLearnsSmoothFunction(t *testing.T) {
	rng := simrand.New(11)
	f := func(x []float64) float64 {
		return 3*math.Sin(3*x[0]) + x[1]*x[1]
	}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 30; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, f(x))
	}
	g, err := FitBest("rbf", xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	var obs, pred []float64
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		m, _ := g.Predict(x)
		obs = append(obs, f(x))
		pred = append(pred, m)
	}
	if r2 := stats.RSquared(obs, pred); r2 < 0.9 {
		t.Fatalf("FitBest R² = %v on a smooth function", r2)
	}
}

func TestFitBestGroupedHandlesExtraDims(t *testing.T) {
	rng := simrand.New(13)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 20; i++ {
		base := rng.Float64()
		// 2 base dims + 1 informative extra dim.
		xs = append(xs, []float64{base, rng.Float64(), base * base})
		ys = append(ys, 5*base)
	}
	g, err := FitBestGrouped("rbf", xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := g.Predict([]float64{0.5, 0.5, 0.25})
	if math.Abs(m-2.5) > 0.8 {
		t.Fatalf("grouped fit prediction = %v, want ≈2.5", m)
	}
}

func TestLogMarginalLikelihoodPrefersGoodFit(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{0, 1, 0}
	good := New(RBF{Variance: 1, Length: []float64{0.3}}, 1e-4)
	if err := good.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	bad := New(RBF{Variance: 1, Length: []float64{100}}, 1e-4)
	if err := bad.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if good.LogMarginalLikelihood() <= bad.LogMarginalLikelihood() {
		t.Fatal("marginal likelihood should prefer the matching length scale")
	}
}

// Property: posterior variance is always positive.
func TestPositiveVarianceProperty(t *testing.T) {
	xs := [][]float64{{0.1}, {0.4}, {0.9}}
	ys := []float64{1, -1, 2}
	g := New(RBF{Variance: 1, Length: []float64{0.3}}, 1e-4)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0.5
		}
		_, variance := g.Predict([]float64{math.Mod(math.Abs(v), 2)})
		return variance > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestN(t *testing.T) {
	g := New(RBF{Variance: 1, Length: []float64{1}}, 1e-4)
	if g.N() != 0 {
		t.Fatal("unfitted N")
	}
	if err := g.Fit([][]float64{{0}, {1}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 {
		t.Fatal("N after fit")
	}
}
