package gp

import (
	"math"
	"time"

	"relm/internal/obs"
)

// Incremental is the exact Surrogate: a hyperparameter-tuned GP over the
// full growing observation set, absorbing new points through O(n²) Append
// and throttling the O(n³) hyperparameter selection (the coarse grid of
// FitBestGrouped refined by ARD gradient ascent, FitBestARD) to a schedule:
// every RefitEvery appends, or earlier when the per-point log marginal
// likelihood drifts down by more than LMLDrift — the signal that the length
// scales selected a few observations ago no longer explain the data.
//
// SetData is reconciling rather than purely appending: callers hand it the
// full (features, targets) matrix each round, and it appends only the new
// tail when the prefix is unchanged. When the prefix did change — feature
// vectors are rebuilt retroactively when a guide model matures, or a prior
// is swapped in by a warm start — it falls back to a full re-selection, so
// the incremental path is never wrong, only sometimes slower.
type Incremental struct {
	// Kind selects the kernel family ("rbf" or "matern52").
	Kind string
	// BaseDims is the grouped-length-scale split passed to FitBestGrouped.
	BaseDims int
	// RefitEvery re-selects hyperparameters after this many appends
	// (default 8; 1 restores the legacy refit-per-observation behavior).
	RefitEvery int
	// LMLDrift re-selects early when the per-point log marginal likelihood
	// has dropped this much since the last selection (default 0.25; ≤0
	// disables the drift trigger).
	LMLDrift float64
	// ARDIters bounds the per-dimension length-scale gradient ascent run
	// on top of the grid at each re-selection (default 6; negative
	// disables ARD and restores the pure grid).
	ARDIters int
	// AppendHist/RefitHist, when set, record the latency of the
	// incremental-append path vs. the full re-selection, so a slow
	// observe can be attributed to the right half of the surrogate.
	AppendHist *obs.Histogram
	RefitHist  *obs.Histogram

	gp      *GP
	appends int
	selLML  float64 // per-point LML right after the last selection

	stats SurrogateStats
}

func (inc *Incremental) fill() {
	if inc.RefitEvery == 0 {
		inc.RefitEvery = 8
	}
	if inc.LMLDrift == 0 {
		inc.LMLDrift = 0.25
	}
	if inc.ARDIters == 0 {
		inc.ARDIters = DefaultARDIters
	}
}

// SetData reconciles the model with the full observation matrix. xs rows
// are copied when retained, so callers may reuse their buffers.
func (inc *Incremental) SetData(xs [][]float64, ys []float64) error {
	inc.fill()
	if inc.gp == nil || !inc.prefixUnchanged(xs, ys) {
		return inc.refit(xs, ys)
	}
	g := inc.gp
	// When absorbing the new tail would land on the schedule anyway, skip
	// straight to the re-selection instead of appending work it would
	// discard (RefitEvery=1 therefore never appends).
	if inc.appends+(len(xs)-len(g.xs)) >= inc.RefitEvery {
		return inc.refit(xs, ys)
	}
	var appendStart time.Time
	if inc.AppendHist != nil && len(xs) > len(g.xs) {
		appendStart = time.Now()
	}
	for i := len(g.xs); i < len(xs); i++ {
		if err := g.Append(xs[i], ys[i]); err != nil {
			return inc.refit(xs, ys)
		}
		inc.appends++
		inc.stats.Appends++
	}
	if !appendStart.IsZero() {
		inc.AppendHist.Record(time.Since(appendStart))
	}
	if inc.LMLDrift > 0 && g.N() > 0 {
		if inc.selLML-g.LogMarginalLikelihood()/float64(g.N()) > inc.LMLDrift {
			return inc.refit(xs, ys)
		}
	}
	return nil
}

// Append conditions the model on one additional observation through the
// same schedule as SetData.
func (inc *Incremental) Append(x []float64, y float64) error {
	inc.fill()
	if inc.gp == nil {
		return inc.refit([][]float64{x}, []float64{y})
	}
	g := inc.gp
	if inc.appends+1 >= inc.RefitEvery {
		return inc.refit(append(g.xs[:len(g.xs):len(g.xs)], x), append(g.ys[:len(g.ys):len(g.ys)], y))
	}
	var appendStart time.Time
	if inc.AppendHist != nil {
		appendStart = time.Now()
	}
	if err := g.Append(x, y); err != nil {
		return inc.refit(g.xs, g.ys)
	}
	inc.appends++
	inc.stats.Appends++
	if !appendStart.IsZero() {
		inc.AppendHist.Record(time.Since(appendStart))
	}
	if inc.LMLDrift > 0 {
		if inc.selLML-g.LogMarginalLikelihood()/float64(g.N()) > inc.LMLDrift {
			return inc.refit(g.xs, g.ys)
		}
	}
	return nil
}

// PredictInto evaluates the posterior at x through caller-owned scratch,
// allocation-free. An unfitted model predicts the prior (0, 1).
func (inc *Incremental) PredictInto(x []float64, s *Scratch) (mean, variance float64) {
	if inc.gp == nil {
		return 0, 1
	}
	return inc.gp.PredictInto(x, s)
}

// PredictBatch scores a batch of candidates through one scratch.
func (inc *Incremental) PredictBatch(xs [][]float64, means, vars []float64, s *Scratch) {
	if inc.gp == nil {
		for i := range xs {
			means[i], vars[i] = 0, 1
		}
		return
	}
	inc.gp.PredictBatch(xs, means, vars, s)
}

// LogMarginalLikelihood reports the fitted model's selection objective
// (-Inf before the first fit).
func (inc *Incremental) LogMarginalLikelihood() float64 {
	if inc.gp == nil {
		return math.Inf(-1)
	}
	return inc.gp.LogMarginalLikelihood()
}

// Model returns the current GP (nil before the first successful SetData).
func (inc *Incremental) Model() *GP { return inc.gp }

// Stats reports the cumulative work counters — the observability hook for
// tests and metrics. Compactions is always zero: the exact model never
// evicts.
func (inc *Incremental) Stats() SurrogateStats { return inc.stats }

// prefixUnchanged reports whether the model's conditioned data is exactly
// the leading rows of (xs, ys). Exact float equality is the right test:
// unchanged feature pipelines reproduce identical bits, and any retroactive
// change — however small — invalidates the cached factor.
func (inc *Incremental) prefixUnchanged(xs [][]float64, ys []float64) bool {
	g := inc.gp
	if len(xs) < len(g.xs) || len(ys) != len(xs) {
		return false
	}
	for i, have := range g.xs {
		if g.ys[i] != ys[i] {
			return false
		}
		row := xs[i]
		if len(row) != len(have) {
			return false
		}
		for d := range have {
			if have[d] != row[d] {
				return false
			}
		}
	}
	return true
}

func (inc *Incremental) refit(xs [][]float64, ys []float64) error {
	var start time.Time
	if inc.RefitHist != nil {
		start = time.Now()
	}
	g, err := FitBestARD(inc.Kind, xs, ys, inc.BaseDims, inc.ARDIters)
	if !start.IsZero() {
		inc.RefitHist.Record(time.Since(start))
	}
	if err != nil {
		return err
	}
	inc.gp = g
	inc.appends = 0
	inc.stats.Fits++
	inc.selLML = g.LogMarginalLikelihood() / float64(len(xs))
	return nil
}
