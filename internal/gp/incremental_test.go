package gp

import (
	"math"
	"sync"
	"testing"

	"relm/internal/simrand"
)

// synth builds a mildly noisy response surface over [0,1]^dim.
func synth(rng *simrand.Rand, n, dim int) (xs [][]float64, ys []float64) {
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		for d := range x {
			x[d] = rng.Float64()
		}
		y := 3*math.Sin(3*x[0]) + x[1%dim]*x[1%dim] + rng.Norm(0, 0.05)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return xs, ys
}

// Property (tentpole acceptance): incrementally appending observations in a
// randomized order produces the same posterior as one batch Fit of the same
// (reordered) data — means, variances and marginal likelihood within 1e-9.
func TestAppendMatchesBatchFit(t *testing.T) {
	rng := simrand.New(42)
	for trial := 0; trial < 12; trial++ {
		dim := 2 + rng.Intn(4)
		n := 5 + rng.Intn(36)
		xs, ys := synth(rng, n, dim)

		// Randomize the append order.
		perm := rng.Perm(n)
		pxs := make([][]float64, n)
		pys := make([]float64, n)
		for i, j := range perm {
			pxs[i], pys[i] = xs[j], ys[j]
		}

		kern := RBF{Variance: 1, Length: []float64{0.3, 0.5}}
		batch := New(kern, 1e-4)
		if err := batch.Fit(pxs, pys); err != nil {
			t.Fatalf("trial %d: batch fit: %v", trial, err)
		}

		inc := New(kern, 1e-4)
		seed := 1 + rng.Intn(n)
		if err := inc.Fit(pxs[:seed], pys[:seed]); err != nil {
			t.Fatalf("trial %d: seed fit: %v", trial, err)
		}
		for i := seed; i < n; i++ {
			if err := inc.Append(pxs[i], pys[i]); err != nil {
				t.Fatalf("trial %d: append %d: %v", trial, i, err)
			}
		}

		var s Scratch
		for probe := 0; probe < 20; probe++ {
			x := make([]float64, dim)
			for d := range x {
				x[d] = rng.Float64() * 1.2
			}
			bm, bv := batch.Predict(x)
			im, iv := inc.PredictInto(x, &s)
			if math.Abs(bm-im) > 1e-9 || math.Abs(bv-iv) > 1e-9 {
				t.Fatalf("trial %d: posterior diverges at %v: batch (%v, %v) vs incremental (%v, %v)",
					trial, x, bm, bv, im, iv)
			}
		}
		if bl, il := batch.LogMarginalLikelihood(), inc.LogMarginalLikelihood(); math.Abs(bl-il) > 1e-9 {
			t.Fatalf("trial %d: LML diverges: batch %v vs incremental %v", trial, bl, il)
		}
	}
}

// Appending near-duplicate points must survive via the jittered batch-refit
// fallback rather than corrupting the factor.
func TestAppendDuplicateFallsBackToRefit(t *testing.T) {
	kern := RBF{Variance: 1, Length: []float64{0.3}}
	g := New(kern, 1e-12) // tiny noise so the duplicate actually breaks the pivot
	if err := g.Fit([][]float64{{0.2}, {0.8}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := g.Append([]float64{0.2}, 1); err != nil {
			t.Fatalf("append duplicate %d: %v", i, err)
		}
	}
	if g.N() != 6 {
		t.Fatalf("N = %d, want 6", g.N())
	}
	mean, variance := g.Predict([]float64{0.2})
	if math.IsNaN(mean) || math.IsNaN(variance) || variance <= 0 {
		t.Fatalf("degenerate posterior after duplicates: (%v, %v)", mean, variance)
	}
}

// PredictInto with distinct scratches must be safe from concurrent
// goroutines (run under -race in CI).
func TestPredictIntoConcurrent(t *testing.T) {
	rng := simrand.New(9)
	xs, ys := synth(rng, 40, 3)
	g := New(RBF{Variance: 1, Length: []float64{0.3, 0.3, 0.3}}, 1e-4)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	want, _ := g.Predict([]float64{0.5, 0.5, 0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s Scratch
			for i := 0; i < 500; i++ {
				m, v := g.PredictInto([]float64{0.5, 0.5, 0.5}, &s)
				if m != want || v <= 0 {
					t.Errorf("concurrent predict = (%v, %v), want mean %v", m, v, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := simrand.New(17)
	xs, ys := synth(rng, 25, 2)
	g := New(Matern52{Variance: 1, Length: []float64{0.4, 0.4}}, 1e-4)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	cands, _ := synth(rng, 30, 2)
	means := make([]float64, len(cands))
	vars := make([]float64, len(cands))
	var s Scratch
	g.PredictBatch(cands, means, vars, &s)
	for i, x := range cands {
		m, v := g.Predict(x)
		if means[i] != m || vars[i] != v {
			t.Fatalf("batch[%d] = (%v, %v), Predict = (%v, %v)", i, means[i], vars[i], m, v)
		}
	}
}

// The scheduler must append between selections, re-select on the RefitEvery
// schedule, and fall back to a full selection when the data prefix changes
// retroactively (e.g. a guide model maturing rewrites every feature row).
func TestIncrementalSchedule(t *testing.T) {
	rng := simrand.New(23)
	xs, ys := synth(rng, 30, 3)
	inc := &Incremental{Kind: "rbf", BaseDims: 3, RefitEvery: 4, LMLDrift: -1}

	if err := inc.SetData(xs[:5], ys[:5]); err != nil {
		t.Fatal(err)
	}
	if st := inc.Stats(); st.Fits != 1 {
		t.Fatalf("first SetData: fits = %d, want 1", st.Fits)
	}
	for i := 6; i <= 8; i++ {
		if err := inc.SetData(xs[:i], ys[:i]); err != nil {
			t.Fatal(err)
		}
	}
	if st := inc.Stats(); st.Fits != 1 || st.Appends != 3 {
		t.Fatalf("after 3 streamed points: fits = %d appends = %d, want 1 and 3", st.Fits, st.Appends)
	}
	// The 4th append hits the schedule and triggers a re-selection.
	if err := inc.SetData(xs[:9], ys[:9]); err != nil {
		t.Fatal(err)
	}
	if st := inc.Stats(); st.Fits != 2 {
		t.Fatalf("schedule did not trigger re-selection: fits = %d, want 2", st.Fits)
	}

	// Retroactive feature change: every row gains a dimension.
	wide := make([][]float64, 10)
	for i := range wide {
		wide[i] = append(append([]float64(nil), xs[i]...), 0.5)
	}
	if err := inc.SetData(wide, ys[:10]); err != nil {
		t.Fatal(err)
	}
	if st := inc.Stats(); st.Fits != 3 {
		t.Fatalf("prefix change did not force a re-selection: fits = %d, want 3", st.Fits)
	}
	if got := inc.Model().N(); got != 10 {
		t.Fatalf("model holds %d points, want 10", got)
	}
}

// The scheduled model must stay close to what per-observation re-selection
// would produce: the refit fallback (here forced by drift or schedule)
// equals batch FitBestARD on the same data.
func TestIncrementalRefitMatchesBatchSelection(t *testing.T) {
	rng := simrand.New(31)
	xs, ys := synth(rng, 24, 3)
	inc := &Incremental{Kind: "rbf", BaseDims: 3, RefitEvery: 4, LMLDrift: -1}
	for i := 4; i <= len(xs); i++ {
		if err := inc.SetData(xs[:i], ys[:i]); err != nil {
			t.Fatal(err)
		}
	}
	got := inc.Model()
	// 24 points with RefitEvery=4: the final SetData lands exactly on a
	// scheduled re-selection, so the model must match batch selection.
	want, err := FitBestARD("rbf", xs, ys, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 10; probe++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		gm, gv := got.Predict(x)
		wm, wv := want.Predict(x)
		if math.Abs(gm-wm) > 1e-9 || math.Abs(gv-wv) > 1e-9 {
			t.Fatalf("scheduled refit diverges from batch selection at %v: (%v,%v) vs (%v,%v)",
				x, gm, gv, wm, wv)
		}
	}
}
