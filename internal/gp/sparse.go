package gp

import (
	"math"
	"time"

	"relm/internal/linalg"
	"relm/internal/obs"
)

// DefaultSparseBudget is the default active-set cap of the budgeted Sparse
// surrogate: large enough that short sessions never compress (and therefore
// match the exact model bit-for-bit), small enough that a 10k-observation
// session appends and predicts at the cost of a 256-point model.
const DefaultSparseBudget = 256

// Sparse is the budgeted Surrogate: a subset-of-data GP whose active set is
// capped at Budget points, so appends cost O(m²) and predictions cost the
// same zero-alloc O(m) as an m-point exact model no matter how many
// observations the session has streamed in.
//
// Compression is greedy and factor-driven. While the active set is under
// budget every point is admitted and Sparse behaves exactly like
// Incremental — same append path, same re-selection schedule, same
// hyperparameter search — so short sessions lose nothing. At budget, each
// arriving point is scored by its conditional variance given the active set
// (the pivot a bordered Cholesky append would produce) and compared against
// the smallest diagonal pivot in the cached factor, the greedy proxy for
// the most redundant active point. The candidate either replaces that point
// (row/column deletion plus bordered append, O(m²), no refactorization) or
// is rejected as the most redundant of the m+1. The active point holding
// the incumbent-best (minimum) target is never evicted: the EI incumbent
// must keep its support. Every absorbed observation — admitted or not — is
// recorded in a full-stream copy so SetData can reconcile against callers
// that rewrite history (guide-feature maturation, warm-start prior swaps),
// which triggers a rebuild: re-seed hyperparameters on the first Budget
// points, restream the remainder through the compressor, re-select on the
// compressed active set.
type Sparse struct {
	// Kind selects the kernel family ("rbf" or "matern52").
	Kind string
	// BaseDims is the grouped-length-scale split passed to the grid stage.
	BaseDims int
	// Budget caps the active set (default DefaultSparseBudget).
	Budget int
	// RefitEvery re-selects hyperparameters after this many absorbed
	// observations (default 8), matching Incremental.
	RefitEvery int
	// LMLDrift re-selects early when the per-point log marginal likelihood
	// of the active set drops this much since the last selection
	// (default 0.25; ≤0 disables).
	LMLDrift float64
	// ARDIters bounds the ARD gradient ascent per re-selection (default
	// DefaultARDIters; negative disables ARD).
	ARDIters int
	// AppendHist/RefitHist, when set, record absorb vs. re-selection
	// latency, same split as Incremental.
	AppendHist *obs.Histogram
	RefitHist  *obs.Histogram

	gp      *GP
	appends int
	selLML  float64

	// Full absorbed stream (row copies), for SetData reconciliation.
	allXs [][]float64
	allYs []float64

	kbuf []float64 // candidate kernel column
	vbuf []float64 // triangular-solve scratch

	stats SurrogateStats
}

func (s *Sparse) fill() {
	if s.Budget <= 0 {
		s.Budget = DefaultSparseBudget
	}
	if s.RefitEvery == 0 {
		s.RefitEvery = 8
	}
	if s.LMLDrift == 0 {
		s.LMLDrift = 0.25
	}
	if s.ARDIters == 0 {
		s.ARDIters = DefaultARDIters
	}
}

// SetData reconciles the model with the full observation matrix: unchanged
// prefix means only the new tail streams through the compressor; a rewritten
// prefix rebuilds from scratch. Rows are copied when retained.
func (s *Sparse) SetData(xs [][]float64, ys []float64) error {
	s.fill()
	if s.gp == nil || !s.prefixUnchanged(xs, ys) {
		return s.rebuild(xs, ys)
	}
	var appendStart time.Time
	if s.AppendHist != nil && len(xs) > len(s.allXs) {
		appendStart = time.Now()
	}
	for i := len(s.allXs); i < len(xs); i++ {
		s.record(xs[i], ys[i])
		if err := s.absorbOne(s.allXs[len(s.allXs)-1], s.allYs[len(s.allYs)-1]); err != nil {
			return s.refitActive()
		}
		s.appends++
		s.stats.Appends++
	}
	if !appendStart.IsZero() {
		s.AppendHist.Record(time.Since(appendStart))
	}
	return s.maybeRefit()
}

// Append streams one observation through the compressor and the
// re-selection schedule.
func (s *Sparse) Append(x []float64, y float64) error {
	s.fill()
	if s.gp == nil {
		return s.rebuild([][]float64{x}, []float64{y})
	}
	var appendStart time.Time
	if s.AppendHist != nil {
		appendStart = time.Now()
	}
	s.record(x, y)
	if err := s.absorbOne(s.allXs[len(s.allXs)-1], s.allYs[len(s.allYs)-1]); err != nil {
		return s.refitActive()
	}
	s.appends++
	s.stats.Appends++
	if !appendStart.IsZero() {
		s.AppendHist.Record(time.Since(appendStart))
	}
	return s.maybeRefit()
}

// maybeRefit applies the shared re-selection schedule after an absorb:
// refit when the append budget is spent or the per-point likelihood of the
// active set has drifted below the level at the last selection.
func (s *Sparse) maybeRefit() error {
	if s.appends >= s.RefitEvery {
		return s.refitActive()
	}
	g := s.gp
	if s.LMLDrift > 0 && g.N() > 0 {
		if s.selLML-g.LogMarginalLikelihood()/float64(g.N()) > s.LMLDrift {
			return s.refitActive()
		}
	}
	return nil
}

// absorbOne admits one observation into the active set. Under budget it is
// a plain bordered append. At budget it is an evict-or-reject decision: the
// candidate's conditional variance against the active set (the pivot an
// append would produce) is compared with the smallest squared diagonal
// pivot of the cached factor — the greedy redundancy proxy — and the less
// informative of the two stays out. The incumbent-best (minimum-target)
// point is exempt from eviction.
func (s *Sparse) absorbOne(x []float64, y float64) error {
	g := s.gp
	if g.N() < s.Budget {
		return g.Append(x, y)
	}
	n := g.N()
	s.kbuf = growVec(s.kbuf, n)
	s.vbuf = growVec(s.vbuf, n)
	for i, xi := range g.xs {
		s.kbuf[i] = g.eval.Eval(x, xi)
	}
	d := g.eval.Eval(x, x) + g.Noise
	v := linalg.SolveLowerInto(g.chol, s.kbuf, s.vbuf)
	cond := d - linalg.Dot(v, v)

	protect := 0
	for j := 1; j < n; j++ {
		if g.ys[j] < g.ys[protect] {
			protect = j
		}
	}
	evict, minPiv := -1, math.Inf(1)
	for j := 0; j < n; j++ {
		if j == protect {
			continue
		}
		p := g.chol.At(j, j)
		if p*p < minPiv {
			minPiv, evict = p*p, j
		}
	}
	s.stats.Compactions++
	if evict < 0 || cond <= minPiv {
		// The candidate is the most redundant of the m+1 points; the
		// active set already explains it.
		return nil
	}
	g.deleteAt(evict)
	return g.Append(x, y)
}

// PredictInto evaluates the posterior at x through caller-owned scratch,
// allocation-free and at active-set (not stream) cost. An unfitted model
// predicts the prior (0, 1).
func (s *Sparse) PredictInto(x []float64, sc *Scratch) (mean, variance float64) {
	if s.gp == nil {
		return 0, 1
	}
	return s.gp.PredictInto(x, sc)
}

// PredictBatch scores a batch of candidates through one scratch.
func (s *Sparse) PredictBatch(xs [][]float64, means, vars []float64, sc *Scratch) {
	if s.gp == nil {
		for i := range xs {
			means[i], vars[i] = 0, 1
		}
		return
	}
	s.gp.PredictBatch(xs, means, vars, sc)
}

// LogMarginalLikelihood reports the active set's selection objective
// (-Inf before the first fit).
func (s *Sparse) LogMarginalLikelihood() float64 {
	if s.gp == nil {
		return math.Inf(-1)
	}
	return s.gp.LogMarginalLikelihood()
}

// Model returns the current GP over the active set (nil before the first
// successful SetData or Append).
func (s *Sparse) Model() *GP { return s.gp }

// N returns the number of observations absorbed (the stream length, not the
// active-set size — Model().N() reports the latter).
func (s *Sparse) N() int { return len(s.allXs) }

// Stats reports the cumulative work counters; Compactions counts
// evict-or-reject decisions made at budget.
func (s *Sparse) Stats() SurrogateStats { return s.stats }

func (s *Sparse) record(x []float64, y float64) {
	s.allXs = append(s.allXs, append([]float64(nil), x...))
	s.allYs = append(s.allYs, y)
}

// prefixUnchanged reports whether the absorbed stream is exactly the
// leading rows of (xs, ys), by the same exact-float test as Incremental.
func (s *Sparse) prefixUnchanged(xs [][]float64, ys []float64) bool {
	if len(xs) < len(s.allXs) || len(ys) != len(xs) {
		return false
	}
	for i, have := range s.allXs {
		if s.allYs[i] != ys[i] {
			return false
		}
		row := xs[i]
		if len(row) != len(have) {
			return false
		}
		for d := range have {
			if have[d] != row[d] {
				return false
			}
		}
	}
	return true
}

// rebuild re-derives the whole model from a fresh stream: hyperparameters
// seeded on the first Budget observations, the remainder streamed through
// the compressor, then one re-selection over the compressed active set so
// the length scales reflect the points that actually survived.
func (s *Sparse) rebuild(xs [][]float64, ys []float64) error {
	s.allXs = s.allXs[:0]
	s.allYs = s.allYs[:0]
	for i := range xs {
		s.record(xs[i], ys[i])
	}
	seed := len(xs)
	if seed > s.Budget {
		seed = s.Budget
	}
	var start time.Time
	if s.RefitHist != nil {
		start = time.Now()
	}
	g, err := FitBestARD(s.Kind, xs[:seed], ys[:seed], s.BaseDims, s.ARDIters)
	if !start.IsZero() {
		s.RefitHist.Record(time.Since(start))
	}
	if err != nil {
		return err
	}
	s.gp = g
	s.stats.Fits++
	s.appends = 0
	s.selLML = g.LogMarginalLikelihood() / float64(g.N())
	if seed == len(xs) {
		return nil
	}
	for i := seed; i < len(xs); i++ {
		if err := s.absorbOne(s.allXs[i], s.allYs[i]); err != nil {
			return s.refitActive()
		}
	}
	return s.refitActive()
}

// refitActive re-selects hyperparameters (grid + ARD) over the current
// active set and resets the schedule.
func (s *Sparse) refitActive() error {
	var start time.Time
	if s.RefitHist != nil {
		start = time.Now()
	}
	g, err := FitBestARD(s.Kind, s.gp.xs, s.gp.ys, s.BaseDims, s.ARDIters)
	if !start.IsZero() {
		s.RefitHist.Record(time.Since(start))
	}
	if err != nil {
		return err
	}
	s.gp = g
	s.appends = 0
	s.stats.Fits++
	s.selLML = g.LogMarginalLikelihood() / float64(g.N())
	return nil
}
