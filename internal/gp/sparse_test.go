package gp

import (
	"math"
	"testing"

	"relm/internal/simrand"
)

// Satellite acceptance: while the stream fits inside the budget, the Sparse
// surrogate must be the exact model — same append path, same re-selection
// schedule, same hyperparameter search — under randomized append orders,
// to 1e-9.
func TestSparseMatchesExactUnderBudget(t *testing.T) {
	rng := simrand.New(101)
	for trial := 0; trial < 8; trial++ {
		dim := 2 + rng.Intn(3)
		n := 6 + rng.Intn(30)
		xs, ys := synth(rng, n, dim)

		perm := rng.Perm(n)
		pxs := make([][]float64, n)
		pys := make([]float64, n)
		for i, j := range perm {
			pxs[i], pys[i] = xs[j], ys[j]
		}

		exact := &Incremental{Kind: "rbf", BaseDims: dim, RefitEvery: 4}
		sparse := &Sparse{Kind: "rbf", BaseDims: dim, Budget: 64, RefitEvery: 4}

		seed := 1 + rng.Intn(n)
		if err := exact.SetData(pxs[:seed], pys[:seed]); err != nil {
			t.Fatalf("trial %d: exact seed: %v", trial, err)
		}
		if err := sparse.SetData(pxs[:seed], pys[:seed]); err != nil {
			t.Fatalf("trial %d: sparse seed: %v", trial, err)
		}
		for i := seed; i < n; i++ {
			if err := exact.Append(pxs[i], pys[i]); err != nil {
				t.Fatalf("trial %d: exact append %d: %v", trial, i, err)
			}
			if err := sparse.Append(pxs[i], pys[i]); err != nil {
				t.Fatalf("trial %d: sparse append %d: %v", trial, i, err)
			}
		}

		if sparse.Model().N() != n {
			t.Fatalf("trial %d: under-budget active set holds %d of %d points", trial, sparse.Model().N(), n)
		}
		if st := sparse.Stats(); st.Compactions != 0 {
			t.Fatalf("trial %d: under-budget stream recorded %d compactions", trial, st.Compactions)
		}
		var se, ss Scratch
		for probe := 0; probe < 20; probe++ {
			x := make([]float64, dim)
			for d := range x {
				x[d] = rng.Float64() * 1.2
			}
			em, ev := exact.PredictInto(x, &se)
			sm, sv := sparse.PredictInto(x, &ss)
			if math.Abs(em-sm) > 1e-9 || math.Abs(ev-sv) > 1e-9 {
				t.Fatalf("trial %d: sparse diverges from exact at %v: (%v, %v) vs (%v, %v)",
					trial, x, sm, sv, em, ev)
			}
		}
		if el, sl := exact.LogMarginalLikelihood(), sparse.LogMarginalLikelihood(); math.Abs(el-sl) > 1e-9 {
			t.Fatalf("trial %d: LML diverges: exact %v vs sparse %v", trial, el, sl)
		}
	}
}

// Past the budget the active set stays capped while the stream keeps
// growing, every at-budget absorption is counted as a compaction, and the
// posterior stays well-formed.
func TestSparseCompressesOverBudget(t *testing.T) {
	rng := simrand.New(202)
	const n, budget = 300, 24
	xs, ys := synth(rng, n, 3)

	s := &Sparse{Kind: "rbf", BaseDims: 3, Budget: budget, RefitEvery: 16}
	if err := s.SetData(xs, ys); err != nil {
		t.Fatal(err)
	}
	if got := s.Model().N(); got > budget {
		t.Fatalf("active set %d exceeds budget %d", got, budget)
	}
	if s.N() != n {
		t.Fatalf("stream length %d, want %d", s.N(), n)
	}
	if st := s.Stats(); st.Compactions != n-budget {
		t.Fatalf("compactions = %d, want one per at-budget absorption (%d)", st.Compactions, n-budget)
	}

	// Streaming more observations keeps the cap and keeps counting.
	extra, extraYs := synth(rng, 20, 3)
	for i := range extra {
		if err := s.Append(extra[i], extraYs[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := s.Model().N(); got > budget {
		t.Fatalf("active set %d exceeds budget %d after appends", got, budget)
	}
	if s.N() != n+20 {
		t.Fatalf("stream length %d, want %d", s.N(), n+20)
	}

	var sc Scratch
	for probe := 0; probe < 10; probe++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		mean, variance := s.PredictInto(x, &sc)
		if math.IsNaN(mean) || math.IsNaN(variance) || variance <= 0 {
			t.Fatalf("degenerate posterior at %v: (%v, %v)", x, mean, variance)
		}
	}
}

// The compressed model must still explain the surface it absorbed: its
// predictions at the training inputs track the exact model's within a
// loose tolerance (subset-of-data is an approximation, not a replica).
func TestSparseTracksExactPosterior(t *testing.T) {
	rng := simrand.New(303)
	const n, budget = 200, 32
	xs, ys := synth(rng, n, 2)

	exact := &Incremental{Kind: "rbf", BaseDims: 2}
	if err := exact.SetData(xs, ys); err != nil {
		t.Fatal(err)
	}
	sparse := &Sparse{Kind: "rbf", BaseDims: 2, Budget: budget}
	if err := sparse.SetData(xs, ys); err != nil {
		t.Fatal(err)
	}

	var se, ss Scratch
	var sumSq, sumVar float64
	for probe := 0; probe < 50; probe++ {
		x := []float64{rng.Float64(), rng.Float64()}
		em, _ := exact.PredictInto(x, &se)
		sm, _ := sparse.PredictInto(x, &ss)
		sumSq += (em - sm) * (em - sm)
		sumVar += em * em
	}
	rms := math.Sqrt(sumSq / 50)
	scale := math.Sqrt(sumVar/50) + 1e-9
	if rms > 0.5*scale {
		t.Fatalf("sparse posterior drifted: RMS gap %.4f vs signal scale %.4f", rms, scale)
	}
}

// SetData with a rewritten prefix (guide features maturing) must rebuild
// rather than silently keep the stale stream.
func TestSparseRebuildsOnPrefixChange(t *testing.T) {
	rng := simrand.New(404)
	xs, ys := synth(rng, 40, 3)
	s := &Sparse{Kind: "rbf", BaseDims: 3, Budget: 16, RefitEvery: 8, LMLDrift: -1}
	if err := s.SetData(xs[:30], ys[:30]); err != nil {
		t.Fatal(err)
	}
	fitsBefore := s.Stats().Fits

	wide := make([][]float64, 35)
	for i := range wide {
		wide[i] = append(append([]float64(nil), xs[i]...), 0.5)
	}
	if err := s.SetData(wide, ys[:35]); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Fits <= fitsBefore {
		t.Fatalf("prefix change did not force a re-selection: fits %d -> %d", fitsBefore, s.Stats().Fits)
	}
	if s.N() != 35 {
		t.Fatalf("stream length %d after rebuild, want 35", s.N())
	}
	if got := s.Model().N(); got > 16 {
		t.Fatalf("active set %d exceeds budget 16 after rebuild", got)
	}
}

// The active point holding the incumbent-best (minimum) target is never
// evicted: stream a sharp minimum early, flood with later points, and the
// minimum target must still be in the active set.
func TestSparseProtectsIncumbent(t *testing.T) {
	rng := simrand.New(505)
	const budget = 16
	s := &Sparse{Kind: "rbf", BaseDims: 2, Budget: budget, RefitEvery: 64, LMLDrift: -1}

	xs, ys := synth(rng, budget, 2)
	// Plant an unambiguous incumbent.
	ys[3] = -50
	if err := s.SetData(xs, ys); err != nil {
		t.Fatal(err)
	}
	flood, floodYs := synth(rng, 100, 2)
	for i := range flood {
		if err := s.Append(flood[i], floodYs[i]); err != nil {
			t.Fatal(err)
		}
	}
	g := s.Model()
	found := false
	for _, y := range g.ys {
		if y == -50 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("incumbent-best observation was evicted from the active set")
	}
}
