package gp

// SurrogateStats are the cumulative work counters of a surrogate: full
// hyperparameter selections (grid + ARD refinement, O(n³) each), cheap
// incremental appends (O(n²) factor extensions), and budget compactions
// (evictions or rejections a budgeted model performed to stay within its
// point cap — always zero for exact models). A healthy steady state appends
// far more than it fits.
type SurrogateStats struct {
	Fits        int
	Appends     int
	Compactions int
}

// Surrogate is the response-surface model behind the Bayesian-optimization
// tuners: the seam that lets the exact incremental GP, the budgeted sparse
// GP, and non-GP models (the Random-Forest ablation) slot into the same
// suggest/observe loop.
//
// The two training entry points mirror the two ways observations arrive.
// Append conditions on one new point. SetData reconciles with the full
// (features, targets) matrix each round: implementations absorb only the
// new tail when the leading rows are unchanged and rebuild when a caller
// rewrote history under them (guide-feature maturation, warm-start prior
// swaps) — so the incremental path is never wrong, only sometimes slower.
// Rows passed in are copied when retained; callers may reuse their buffers.
//
// Prediction is allocation-free through a caller-owned Scratch; a Surrogate
// must support concurrent PredictInto/PredictBatch calls with distinct
// scratches. LogMarginalLikelihood reports the model-selection objective
// (NaN for models without a likelihood). Stats exposes the cumulative work
// counters for metrics and tests.
type Surrogate interface {
	Append(x []float64, y float64) error
	SetData(xs [][]float64, ys []float64) error
	PredictInto(x []float64, s *Scratch) (mean, variance float64)
	PredictBatch(xs [][]float64, means, vars []float64, s *Scratch)
	LogMarginalLikelihood() float64
	Stats() SurrogateStats
}

var (
	_ Surrogate = (*Incremental)(nil)
	_ Surrogate = (*Sparse)(nil)
)
