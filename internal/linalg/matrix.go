// Package linalg implements the small dense linear-algebra kernel needed by
// the Gaussian-Process surrogate model: matrices, Cholesky factorization,
// triangular solves and a few vector helpers. It is deliberately minimal and
// allocation-conscious; matrices are row-major []float64 slices.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m × b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := 0; j < b.Cols; j++ {
				oi[j] += a * bk[j]
			}
		}
	}
	return out
}

// MulVec returns m × v as a vector.
func (m *Matrix) MulVec(v []float64) []float64 {
	return m.MulVecInto(v, make([]float64, m.Rows))
}

// MulVecInto computes m × v into dst (which must have length m.Rows and
// must not alias v) and returns dst. It performs no allocation.
func (m *Matrix) MulVecInto(v, dst []float64) []float64 {
	if m.Cols != len(v) {
		panic("linalg: MulVec dimension mismatch")
	}
	if len(dst) != m.Rows {
		panic("linalg: MulVecInto dst length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), v)
	}
	return dst
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AddDiag adds v to each diagonal element in place.
func (m *Matrix) AddDiag(v float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += v
	}
}

// ErrNotPSD is returned by Cholesky when the matrix is not (numerically)
// positive definite even after jitter.
var ErrNotPSD = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular L with L·Lᵀ = m for a symmetric
// positive-definite matrix. It returns ErrNotPSD if the factorization fails.
func Cholesky(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("linalg: Cholesky on non-square matrix")
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			li, lj := l.Row(i), l.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPSD
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	return l, nil
}

// CholeskyJitter is Cholesky with progressively larger diagonal jitter, the
// standard trick to stabilize Gram matrices built from nearly-duplicate
// sample points. It mutates a copy, never its argument.
func CholeskyJitter(m *Matrix) (*Matrix, error) {
	jitter := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		c := m.Clone()
		if jitter > 0 {
			c.AddDiag(jitter)
		}
		l, err := Cholesky(c)
		if err == nil {
			return l, nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
	}
	return nil, ErrNotPSD
}

// SolveLower solves L·x = b for lower-triangular L.
func SolveLower(l *Matrix, b []float64) []float64 {
	return SolveLowerInto(l, b, make([]float64, l.Rows))
}

// SolveLowerInto solves L·x = b into dst and returns dst. Forward
// substitution proceeds in index order, so dst may alias b (in-place
// solve); no allocation is performed.
func SolveLowerInto(l *Matrix, b, dst []float64) []float64 {
	n := l.Rows
	if len(b) != n || len(dst) != n {
		panic("linalg: SolveLower dimension mismatch")
	}
	for i := 0; i < n; i++ {
		sum := b[i]
		li := l.Row(i)
		for k := 0; k < i; k++ {
			sum -= li[k] * dst[k]
		}
		dst[i] = sum / li[i]
	}
	return dst
}

// SolveUpperT solves Lᵀ·x = b given lower-triangular L (i.e. an upper solve
// against the transpose, without materializing it).
func SolveUpperT(l *Matrix, b []float64) []float64 {
	return SolveUpperTInto(l, b, make([]float64, l.Rows))
}

// SolveUpperTInto solves Lᵀ·x = b into dst and returns dst. Backward
// substitution proceeds in reverse index order, so dst may alias b; no
// allocation is performed.
func SolveUpperTInto(l *Matrix, b, dst []float64) []float64 {
	n := l.Rows
	if len(b) != n || len(dst) != n {
		panic("linalg: SolveUpperT dimension mismatch")
	}
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * dst[k]
		}
		dst[i] = sum / l.At(i, i)
	}
	return dst
}

// CholSolve solves (L·Lᵀ)·x = b using a precomputed Cholesky factor.
func CholSolve(l *Matrix, b []float64) []float64 {
	return SolveUpperT(l, SolveLower(l, b))
}

// CholSolveInto solves (L·Lᵀ)·x = b into dst and returns dst. dst may
// alias b; no allocation is performed.
func CholSolveInto(l *Matrix, b, dst []float64) []float64 {
	if len(b) != l.Rows || len(dst) != l.Rows {
		panic("linalg: CholSolve dimension mismatch")
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	SolveLowerInto(l, dst, dst)
	return SolveUpperTInto(l, dst, dst)
}

// CholAppendRow extends the Cholesky factor L of an n×n SPD matrix A to
// the factor of the bordered matrix [[A, k], [kᵀ, d]], where k is the new
// off-diagonal column of A and d its new diagonal entry. The new row is
// exactly the row a fresh batch Cholesky would compute (same arithmetic,
// same rounding), so repeated appends bit-match a full refactorization —
// but cost O(n²) instead of O(n³).
//
// The returned matrix reuses (and re-strides) l's backing array when its
// capacity allows, growing it geometrically otherwise so a sequence of
// appends costs amortized O(n²) with O(log n) allocations. l must not be
// used after a successful call. ErrNotPSD is returned — with l left
// intact — when the new pivot is not positive, i.e. the bordered matrix
// is not numerically positive definite.
func CholAppendRow(l *Matrix, k []float64, d float64) (*Matrix, error) {
	n := l.Rows
	if l.Cols != n {
		panic("linalg: CholAppendRow on non-square factor")
	}
	if len(k) != n {
		panic("linalg: CholAppendRow dimension mismatch")
	}
	need := (n + 1) * (n + 1)
	if cap(l.Data) >= need+n {
		// In-place path. The solved row is staged in the spare capacity
		// at [n², n²+n) — computed against the still-intact old layout —
		// then moved to its final offset before rows re-stride.
		data := l.Data[:need+n]
		row := SolveLowerInto(l, k, data[n*n:n*n+n])
		s := pivot(d, row)
		if s <= 0 || math.IsNaN(s) {
			return nil, ErrNotPSD
		}
		copy(data[n*(n+1):n*(n+1)+n], row)
		data[n*(n+1)+n] = math.Sqrt(s)
		// Re-stride rows last-to-first: row i moves from offset i·n to
		// i·(n+1), which never clobbers a row not yet moved, and copy
		// handles each row's own overlapping shift. The freed slot at
		// column n of every old row is the factor's upper triangle —
		// zero it.
		for i := n - 1; i >= 1; i-- {
			copy(data[i*(n+1):i*(n+1)+n], data[i*n:i*n+n])
		}
		for i := 0; i < n; i++ {
			data[i*(n+1)+n] = 0
		}
		l.Rows, l.Cols, l.Data = n+1, n+1, data[:need]
		return l, nil
	}
	// Growth path: allocate with ~1.5× the linear dimension of headroom
	// (plus staging room for the next in-place append's solved row).
	gd := n + 1 + (n+1)/2 + 1
	data := make([]float64, need, gd*gd)
	out := &Matrix{Rows: n + 1, Cols: n + 1, Data: data}
	for i := 0; i < n; i++ {
		copy(data[i*(n+1):i*(n+1)+n], l.Row(i))
	}
	row := SolveLowerInto(l, k, data[n*(n+1):n*(n+1)+n])
	s := pivot(d, row)
	if s <= 0 || math.IsNaN(s) {
		return nil, ErrNotPSD
	}
	data[n*(n+1)+n] = math.Sqrt(s)
	return out, nil
}

// pivot computes d - Σ row[k]² with the same left-to-right subtraction
// order as Cholesky's diagonal update, so appended factors bit-match the
// batch factorization.
func pivot(d float64, row []float64) float64 {
	for _, v := range row {
		d -= v * v
	}
	return d
}

// CholUpdateRank1 rewrites the lower-triangular factor L of A = L·Lᵀ into
// the factor of A + v·vᵀ, in place, in O(n²). The update is a sequence of
// plane rotations (the classic "cholupdate"), numerically stable for any v.
// v is consumed as scratch and left clobbered.
func CholUpdateRank1(l *Matrix, v []float64) {
	if l.Rows != l.Cols {
		panic("linalg: CholUpdateRank1 on non-square factor")
	}
	if len(v) != l.Rows {
		panic("linalg: CholUpdateRank1 dimension mismatch")
	}
	cholUpdateRank1At(l, 0, v)
}

// cholUpdateRank1At applies the rank-1 update to the trailing principal
// submatrix l[start:, start:]; v has length l.Rows-start and is clobbered.
func cholUpdateRank1At(l *Matrix, start int, v []float64) {
	n := l.Rows
	for k := start; k < n; k++ {
		vk := v[k-start]
		lk := l.Row(k)
		r := math.Hypot(lk[k], vk)
		c := r / lk[k]
		s := vk / lk[k]
		lk[k] = r
		for i := k + 1; i < n; i++ {
			li := l.Row(i)
			vi := v[i-start]
			li[k] = (li[k] + s*vi) / c
			v[i-start] = c*vi - s*li[k]
		}
	}
}

// CholDeleteRowCol shrinks the Cholesky factor L of an n×n SPD matrix A to
// the factor of A with row and column j removed, in O((n-j)²): rows above j
// re-stride unchanged, rows below drop column j, and the trailing block is
// patched by a rank-1 update with the deleted subdiagonal column. Together
// with CholAppendRow this gives a budgeted model constant-cost point
// replacement without ever refactorizing from scratch.
//
// The factor is modified in place (its backing array is reused and
// re-strided); the returned matrix is l itself. scratch, when it has
// capacity ≥ n-1-j, is used for the deleted column and avoids allocation.
func CholDeleteRowCol(l *Matrix, j int, scratch []float64) *Matrix {
	n := l.Rows
	if l.Cols != n {
		panic("linalg: CholDeleteRowCol on non-square factor")
	}
	if j < 0 || j >= n {
		panic("linalg: CholDeleteRowCol index out of range")
	}
	tail := n - 1 - j
	var v []float64
	if cap(scratch) >= tail {
		v = scratch[:tail]
	} else {
		v = make([]float64, tail)
	}
	for i := j + 1; i < n; i++ {
		v[i-j-1] = l.At(i, j)
	}
	// Compact rows first-to-last into the n-1 stride. Each destination
	// region ends before the next source row begins, and copy is
	// memmove-safe for the self-overlap within one row.
	d := l.Data
	for i := 0; i < n; i++ {
		if i == j {
			continue
		}
		ni := i
		if i > j {
			ni = i - 1
		}
		src := d[i*n : i*n+n]
		dst := d[ni*(n-1) : ni*(n-1)+(n-1)]
		if i < j {
			copy(dst[:i+1], src[:i+1])
			for c := i + 1; c < n-1; c++ {
				dst[c] = 0
			}
		} else {
			copy(dst[:j], src[:j])
			copy(dst[j:i], src[j+1:i+1])
			for c := i; c < n-1; c++ {
				dst[c] = 0
			}
		}
	}
	l.Rows, l.Cols, l.Data = n-1, n-1, d[:(n-1)*(n-1)]
	if tail > 0 {
		cholUpdateRank1At(l, j, v)
	}
	return l
}

// LogDetFromChol returns log|A| given A = L·Lᵀ.
func LogDetFromChol(l *Matrix) float64 {
	var s float64
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}

// Scale multiplies every element in place.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Add returns m + b as a new matrix.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: Add dimension mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Sub returns a - b element-wise for vectors.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: Sub length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// AXPY computes y += a·x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
