package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"relm/internal/simrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("At wrong")
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("Set wrong")
	}
	if r := m.Row(1); r[0] != 3 || r[1] != 4 {
		t.Fatal("Row wrong")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T dims %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatal("T values wrong")
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	v := a.MulVec([]float64{1, 1})
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("MulVec = %v", v)
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
}

func TestSubAXPY(t *testing.T) {
	d := Sub([]float64{5, 7}, []float64{2, 3})
	if d[0] != 3 || d[1] != 4 {
		t.Fatal("Sub wrong")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatal("AXPY wrong")
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,2],[2,3]] has L = [[2,0],[1,sqrt(2)]].
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(l.At(0, 0), 2, 1e-12) || !almostEq(l.At(1, 0), 1, 1e-12) ||
		!almostEq(l.At(1, 1), math.Sqrt(2), 1e-12) {
		t.Fatalf("L = %v", l.Data)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrNotPSD")
	}
}

// randomSPD builds A = B·Bᵀ + n·I, guaranteed symmetric positive definite.
func randomSPD(rng *simrand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.Norm(0, 1)
	}
	a := b.Mul(b.T())
	a.AddDiag(float64(n))
	return a
}

// Property: Cholesky round-trips (L·Lᵀ == A) for random SPD matrices.
func TestCholeskyRoundTripProperty(t *testing.T) {
	rng := simrand.New(99)
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		back := l.Mul(l.T())
		for i := range a.Data {
			if !almostEq(a.Data[i], back.Data[i], 1e-8*float64(n)) {
				t.Fatalf("trial %d: L·Lᵀ != A at %d: %v vs %v", trial, i, back.Data[i], a.Data[i])
			}
		}
	}
}

// Property: CholSolve solves A·x = b.
func TestCholSolveProperty(t *testing.T) {
	rng := simrand.New(123)
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Norm(0, 2)
		}
		b := a.MulVec(x)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		got := CholSolve(l, b)
		for i := range x {
			if !almostEq(got[i], x[i], 1e-6) {
				t.Fatalf("trial %d: solve[%d] = %v, want %v", trial, i, got[i], x[i])
			}
		}
	}
}

func TestSolveLowerUpper(t *testing.T) {
	l := FromRows([][]float64{{2, 0}, {1, 3}})
	// L·x = b with b = (4, 11) → x = (2, 3).
	x := SolveLower(l, []float64{4, 11})
	if !almostEq(x[0], 2, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("SolveLower = %v", x)
	}
	// Lᵀ·y = b with b = (7, 9) → y = (2, 3) since Lᵀ = [[2,1],[0,3]].
	y := SolveUpperT(l, []float64{7, 9})
	if !almostEq(y[0], 2, 1e-12) || !almostEq(y[1], 3, 1e-12) {
		t.Fatalf("SolveUpperT = %v", y)
	}
}

func TestLogDetFromChol(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}}) // det = 36
	l, _ := Cholesky(a)
	if !almostEq(LogDetFromChol(l), math.Log(36), 1e-12) {
		t.Fatal("log det wrong")
	}
}

func TestCholeskyJitterRecovers(t *testing.T) {
	// Nearly singular Gram matrix (duplicate rows).
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	l, err := CholeskyJitter(a)
	if err != nil {
		t.Fatalf("jitter should recover: %v", err)
	}
	if l == nil {
		t.Fatal("nil factor")
	}
}

func TestAddScaleClone(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{10, 20}})
	c := a.Add(b)
	if c.At(0, 1) != 22 {
		t.Fatal("Add wrong")
	}
	clone := a.Clone()
	clone.Scale(3)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
	if clone.At(0, 0) != 3 {
		t.Fatal("Scale wrong")
	}
}

// Property via testing/quick: Dot is symmetric (inputs tamed to a finite
// range so products cannot overflow).
func TestDotSymmetry(t *testing.T) {
	f := func(a, b [4]float64) bool {
		x, y := tame(a[:]), tame(b[:])
		return Dot(x, y) == Dot(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// tame maps arbitrary floats into [-100, 100], replacing non-finite values.
func tame(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 1
		}
		out[i] = math.Remainder(v, 100)
	}
	return out
}

func TestDimensionPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Mul":    func() { NewMatrix(2, 2).Mul(NewMatrix(3, 3)) },
		"MulVec": func() { NewMatrix(2, 2).MulVec([]float64{1}) },
		"Dot":    func() { Dot([]float64{1}, []float64{1, 2}) },
		"ragged": func() { FromRows([][]float64{{1, 2}, {3}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: growing a Cholesky factor one bordered row at a time bit-matches
// the batch factorization of the full matrix — CholAppendRow computes the
// exact arithmetic a fresh Cholesky would for that row.
func TestCholAppendRowMatchesBatch(t *testing.T) {
	rng := simrand.New(7)
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(10)
		a := randomSPD(rng, n)
		full, err := Cholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		start := 1 + rng.Intn(n-1)
		// Factor of the leading start×start block.
		sub := NewMatrix(start, start)
		for i := 0; i < start; i++ {
			copy(sub.Row(i), a.Row(i)[:start])
		}
		l, err := Cholesky(sub)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for m := start; m < n; m++ {
			k := make([]float64, m)
			copy(k, a.Row(m)[:m])
			l, err = CholAppendRow(l, k, a.At(m, m))
			if err != nil {
				t.Fatalf("trial %d: append row %d: %v", trial, m, err)
			}
		}
		if l.Rows != n || l.Cols != n {
			t.Fatalf("trial %d: grew to %dx%d, want %dx%d", trial, l.Rows, l.Cols, n, n)
		}
		for i := range full.Data {
			if l.Data[i] != full.Data[i] {
				t.Fatalf("trial %d: factor diverges from batch at %d: %v vs %v",
					trial, i, l.Data[i], full.Data[i])
			}
		}
	}
}

// CholAppendRow must reject a bordered row that makes the matrix indefinite,
// leaving the original factor usable.
func TestCholAppendRowRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 4}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// d - kᵀA⁻¹k = 1 - (4+4)/4·... pick k large enough that the Schur
	// complement is negative: k=(4,4), d=1 → 1 - (4+4) < 0.
	if _, err := CholAppendRow(l, []float64{4, 4}, 1); err != ErrNotPSD {
		t.Fatalf("want ErrNotPSD, got %v", err)
	}
	if l.Rows != 2 || l.Cols != 2 || l.At(0, 0) != 2 || l.At(1, 1) != 2 {
		t.Fatal("failed append must leave the factor intact")
	}
	// The intact factor still accepts a legal append.
	l2, err := CholAppendRow(l, []float64{0, 0}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if l2.At(2, 2) != 3 {
		t.Fatalf("diag = %v, want 3", l2.At(2, 2))
	}
	if l2.At(0, 2) != 0 || l2.At(1, 2) != 0 {
		t.Fatal("upper triangle of grown factor must be zero")
	}
}

// After a growth reallocation, subsequent appends must reuse the spare
// capacity in place (no per-append allocation until capacity runs out).
func TestCholAppendRowReusesCapacity(t *testing.T) {
	rng := simrand.New(21)
	n := 12
	a := randomSPD(rng, n)
	sub := NewMatrix(1, 1)
	sub.Set(0, 0, a.At(0, 0))
	l, err := Cholesky(sub)
	if err != nil {
		t.Fatal(err)
	}
	inPlace := 0
	for m := 1; m < n; m++ {
		prev := l
		k := make([]float64, m)
		copy(k, a.Row(m)[:m])
		l, err = CholAppendRow(l, k, a.At(m, m))
		if err != nil {
			t.Fatal(err)
		}
		if l == prev {
			inPlace++
		}
	}
	if inPlace == 0 {
		t.Fatal("no append reused the factor's backing array in place")
	}
}

func TestSolveIntoVariantsAliasSafe(t *testing.T) {
	rng := simrand.New(33)
	a := randomSPD(rng, 6)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.Norm(0, 1)
	}
	wantLower := SolveLower(l, b)
	wantUpper := SolveUpperT(l, b)
	wantChol := CholSolve(l, b)

	in := append([]float64(nil), b...)
	if got := SolveLowerInto(l, in, in); !equalVec(got, wantLower) {
		t.Fatal("in-place SolveLowerInto mismatch")
	}
	in = append([]float64(nil), b...)
	if got := SolveUpperTInto(l, in, in); !equalVec(got, wantUpper) {
		t.Fatal("in-place SolveUpperTInto mismatch")
	}
	in = append([]float64(nil), b...)
	if got := CholSolveInto(l, in, in); !equalVec(got, wantChol) {
		t.Fatal("in-place CholSolveInto mismatch")
	}
	dst := make([]float64, 6)
	if got := CholSolveInto(l, b, dst); !equalVec(got, wantChol) {
		t.Fatal("out-of-place CholSolveInto mismatch")
	}
}

func TestMulVecInto(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	v := []float64{1, -1}
	dst := make([]float64, 3)
	if got := m.MulVecInto(v, dst); !equalVec(got, []float64{-1, -1, -1}) {
		t.Fatalf("MulVecInto = %v", got)
	}
	if !equalVec(dst, m.MulVec(v)) {
		t.Fatal("MulVecInto disagrees with MulVec")
	}
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: CholUpdateRank1 turns the factor of A into the factor of
// A + v·vᵀ, matching a fresh factorization of the updated matrix.
func TestCholUpdateRank1Property(t *testing.T) {
	rng := simrand.New(77)
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Norm(0, 1)
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		CholUpdateRank1(l, append([]float64(nil), v...))
		// Fresh factorization of A + v·vᵀ.
		up := a.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				up.Set(i, j, up.At(i, j)+v[i]*v[j])
			}
		}
		want, err := Cholesky(up)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if !almostEq(l.At(i, j), want.At(i, j), 1e-8*float64(n)) {
					t.Fatalf("trial %d: updated L[%d][%d] = %v, want %v", trial, i, j, l.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

// Property: CholDeleteRowCol shrinks the factor of A to the factor of A
// with row/column j removed, for every j, matching a fresh factorization.
// The factor's upper triangle must stay zero.
func TestCholDeleteRowColProperty(t *testing.T) {
	rng := simrand.New(55)
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(8)
		a := randomSPD(rng, n)
		j := rng.Intn(n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		got := CholDeleteRowCol(l, j, nil)
		// Fresh factorization of A without row/col j.
		sub := NewMatrix(n-1, n-1)
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			ni := i
			if i > j {
				ni = i - 1
			}
			for k := 0; k < n; k++ {
				if k == j {
					continue
				}
				nk := k
				if k > j {
					nk = k - 1
				}
				sub.Set(ni, nk, a.At(i, k))
			}
		}
		want, err := Cholesky(sub)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n-1; i++ {
			for k := 0; k < n-1; k++ {
				tol := 1e-8 * float64(n)
				if !almostEq(got.At(i, k), want.At(i, k), tol) {
					t.Fatalf("trial %d (n=%d j=%d): L[%d][%d] = %v, want %v", trial, n, j, i, k, got.At(i, k), want.At(i, k))
				}
			}
		}
	}
}

// A delete followed by an append (the budgeted surrogate's eviction cycle)
// must keep tracking the batch factorization across many rounds.
func TestCholDeleteAppendCycle(t *testing.T) {
	rng := simrand.New(910)
	const n, dim = 12, 3
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	kern := func(a, b []float64) float64 {
		var s float64
		for d := 0; d < dim; d++ {
			diff := (a[d] - b[d]) / 0.4
			s += diff * diff
		}
		return math.Exp(-0.5 * s)
	}
	gram := func(pts [][]float64) *Matrix {
		m := NewMatrix(len(pts), len(pts))
		for i := range pts {
			for j := range pts {
				m.Set(i, j, kern(pts[i], pts[j]))
			}
		}
		m.AddDiag(1e-4)
		return m
	}
	l, err := Cholesky(gram(xs))
	if err != nil {
		t.Fatal(err)
	}
	pts := append([][]float64(nil), xs...)
	for round := 0; round < 40; round++ {
		j := rng.Intn(len(pts))
		l = CholDeleteRowCol(l, j, nil)
		pts = append(pts[:j], pts[j+1:]...)
		nx := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		k := make([]float64, len(pts))
		for i := range pts {
			k[i] = kern(nx, pts[i])
		}
		l, err = CholAppendRow(l, k, kern(nx, nx)+1e-4)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		pts = append(pts, nx)
	}
	want, err := Cholesky(gram(pts))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if !almostEq(l.At(i, j), want.At(i, j), 1e-7) {
				t.Fatalf("after cycles: L[%d][%d] = %v, want %v", i, j, l.At(i, j), want.At(i, j))
			}
		}
	}
}
