package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/bits"
	mrand "math/rand/v2"
	"net/http"
	"net/url"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"relm/internal/obs"
	"relm/internal/profile"
	"relm/internal/service"
)

// Options configures a Driver. Zero values select the documented
// defaults.
type Options struct {
	// Target is the base URL of the tier under test — a relm-router front
	// door or a single relm-serve node.
	Target string
	// RunID namespaces this run's session IDs ("lg-<RunID>-<index>"), so
	// the same trace can be replayed repeatedly against a durable cluster
	// without ID collisions. Default: 6 random hex bytes.
	RunID string
	// Concurrency bounds the session worker pool (default 32).
	Concurrency int
	// RequestTimeout is the per-request deadline (default 10s).
	RequestTimeout time.Duration
	// Client overrides the HTTP client (tests). Its Timeout is ignored;
	// deadlines come from per-request contexts.
	Client *http.Client
	// SlowKeep is how many slowest requests are kept with their trace IDs
	// (default 8).
	SlowKeep int
	// Stats is the canned workload profile attached to relm observations
	// and warm-start creates (default: a representative Table 6 profile).
	Stats *profile.Stats
	// Logf, when non-nil, receives progress lines during the run.
	Logf func(format string, args ...any)
	// AckPath, when non-empty, appends one JSON line per acknowledged
	// create/observe/close to this file — the durability ledger a chaos
	// run's invariant checker compares against the surviving WALs.
	AckPath string
}

// Ack is one acknowledged state-changing request, as written to AckPath.
// N is the observation's 1-based ordinal within its session (0 for
// create/close): an acked (session, N) must be recoverable from the WALs.
type Ack struct {
	Op         string  `json:"op"`
	Session    string  `json:"session"`
	N          int     `json:"n,omitempty"`
	RuntimeSec float64 `json:"runtime_sec,omitempty"`
}

// cannedStats is a representative Table 6 profile: plausible cache/shuffle
// footprints with full-GC evidence, so relm sessions complete their
// analytic pipeline and warm-start creates carry a matchable fingerprint.
func cannedStats() *profile.Stats {
	return &profile.Stats{
		N: 1, MhMB: 8192, CPUAvg: 0.62, DiskAvg: 0.18,
		MiMB: 310, McMB: 2400, MsMB: 180, MuMB: 420,
		P: 2, H: 0.85, S: 0.04, HadFullGC: true, CoresPerNode: 8,
	}
}

// errKey indexes the error breakdown.
type errKey struct{ stage, kind string }

// Driver replays a Trace against a target over HTTP. One Driver runs one
// trace; build a fresh one per run.
type Driver struct {
	opts  Options
	hists map[string]*obs.Histogram

	ops      atomic.Int64
	errCount atomic.Int64
	timeouts atomic.Int64

	completed atomic.Int64
	failed    atomic.Int64
	doneEarly atomic.Int64

	dispatched atomic.Int64
	finished   atomic.Int64

	mu   sync.Mutex
	errs map[errKey]*ErrorCount
	slow []SlowOp

	ackMu sync.Mutex
	ackF  *os.File
	ackW  *bufio.Writer
}

// NewDriver validates the options and builds a driver.
func NewDriver(opts Options) (*Driver, error) {
	u, err := url.Parse(opts.Target)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("loadgen: bad target URL %q", opts.Target)
	}
	if opts.RunID == "" {
		var b [6]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("loadgen: mint run ID: %w", err)
		}
		opts.RunID = fmt.Sprintf("%x", b)
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 32
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 10 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: opts.Concurrency,
		}}
	}
	if opts.SlowKeep == 0 {
		opts.SlowKeep = 8
	}
	if opts.Stats == nil {
		opts.Stats = cannedStats()
	}
	d := &Driver{
		opts:  opts,
		hists: make(map[string]*obs.Histogram, len(reportStages)),
		errs:  make(map[errKey]*ErrorCount),
	}
	for _, stage := range reportStages {
		d.hists[stage] = obs.NewHistogram()
	}
	if opts.AckPath != "" {
		f, err := os.Create(opts.AckPath)
		if err != nil {
			return nil, fmt.Errorf("loadgen: ack log: %w", err)
		}
		d.ackF, d.ackW = f, bufio.NewWriter(f)
	}
	return d, nil
}

// ack appends one line to the ack log. Only called after the server
// answered with the expected success status — the request is durable by
// the service's contract, so losing it is an invariant violation.
func (d *Driver) ack(op, session string, n int, runtimeSec float64) {
	if d.ackW == nil {
		return
	}
	line, _ := json.Marshal(Ack{Op: op, Session: session, N: n, RuntimeSec: runtimeSec})
	d.ackMu.Lock()
	d.ackW.Write(line)
	d.ackW.WriteByte('\n')
	d.ackMu.Unlock()
}

// closeAckLog flushes and closes the ack log (no-op without AckPath).
func (d *Driver) closeAckLog() error {
	if d.ackW == nil {
		return nil
	}
	d.ackMu.Lock()
	defer d.ackMu.Unlock()
	if err := d.ackW.Flush(); err != nil {
		d.ackF.Close()
		return fmt.Errorf("loadgen: flush ack log: %w", err)
	}
	if err := d.ackF.Close(); err != nil {
		return fmt.Errorf("loadgen: close ack log: %w", err)
	}
	return nil
}

func (d *Driver) logf(format string, args ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, args...)
	}
}

// Run replays the trace: an open-loop dispatcher releases sessions at
// their recorded offsets into a bounded worker pool. It returns the
// assembled report; the error is non-nil only when the context was
// canceled before the trace finished (the partial report is still
// returned).
func (d *Driver) Run(ctx context.Context, tr *Trace) (*Report, error) {
	start := time.Now()
	jobs := make(chan TraceSession, len(tr.Sessions))
	var wg sync.WaitGroup
	for w := 0; w < d.opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				if ctx.Err() != nil {
					continue // drain: the run was canceled
				}
				lag := time.Since(start.Add(time.Duration(s.AtNs)))
				if lag < 0 {
					lag = 0
				}
				d.hists[SchedLagStage].Record(lag)
				d.runSession(ctx, s)
				d.finished.Add(1)
			}
		}()
	}

	// Progress heartbeat for long soaks.
	hb := make(chan struct{})
	go func() {
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-hb:
				return
			case <-tick.C:
				d.logf("loadgen: t=+%ds dispatched %d/%d finished %d errors %d",
					int(time.Since(start).Seconds()), d.dispatched.Load(), len(tr.Sessions),
					d.finished.Load(), d.errCount.Load())
			}
		}
	}()

	// Open-loop dispatch: arrivals follow the trace clock, never the
	// completion rate. The jobs channel is deep enough to hold the whole
	// trace, so a saturated worker pool delays session starts (visible as
	// sched.lag) without distorting the arrival schedule of later
	// sessions.
	var runErr error
dispatch:
	for _, s := range tr.Sessions {
		if wait := time.Until(start.Add(time.Duration(s.AtNs))); wait > 0 {
			select {
			case <-ctx.Done():
				runErr = ctx.Err()
				break dispatch
			case <-time.After(wait):
			}
		}
		jobs <- s
		d.dispatched.Add(1)
	}
	close(jobs)
	wg.Wait()
	close(hb)
	wall := time.Since(start)
	if runErr == nil && ctx.Err() != nil {
		runErr = ctx.Err()
	}
	if err := d.closeAckLog(); err != nil && runErr == nil {
		runErr = err
	}
	return d.report(tr, start, wall), runErr
}

// runSession drives one traced session's full lifecycle. Any unexpected
// error fails the session and ends its loop early; a close is still
// attempted when the create succeeded, so failed sessions do not linger
// on the cluster.
func (d *Driver) runSession(ctx context.Context, s TraceSession) {
	id := fmt.Sprintf("lg-%s-%06d", d.opts.RunID, s.Index)
	rng := mrand.New(mrand.NewPCG(s.Seed, bits.RotateLeft64(s.Seed, 17)^0xda942042e4dd58b5))

	create := service.CreateRequest{
		ID:            id,
		Backend:       s.Backend,
		Workload:      s.Workload,
		Cluster:       s.Cluster,
		Seed:          s.Seed,
		MaxIterations: s.Iters + 1,
	}
	if s.Backend == "ddpg" {
		create.MaxSteps = s.Iters + 1
	}
	if s.Warm {
		create.WarmStart = true
		create.Stats = d.opts.Stats
		create.DefaultRuntimeSec = 240
	}
	ok := true
	if _, k := d.do(ctx, StageCreate, http.MethodPost, "/v1/sessions", id, &create, nil, http.StatusCreated); !k {
		d.failed.Add(1)
		return
	}
	d.ack("create", id, 0, 0)

	done := false
	for i := 0; i < s.Iters; i++ {
		var sug service.SuggestResponse
		if _, k := d.do(ctx, StageSuggest, http.MethodPost, "/v1/sessions/"+id+"/suggest", id, nil, &sug, http.StatusOK); !k {
			ok = false
			break
		}
		if sug.Done {
			done = true
			break
		}
		obsReq := service.ObserveRequest{
			Config: sug.Config,
			// Synthetic measurement: deterministic per session, slowly
			// improving, so incumbent/repository paths see realistic
			// monotone-ish progress.
			RuntimeSec: 180 + 60*rng.Float64() - 3*float64(i),
		}
		if s.Backend == "relm" {
			obsReq.Stats = d.opts.Stats
		}
		if _, k := d.do(ctx, StageObserve, http.MethodPost, "/v1/sessions/"+id+"/observe", id, &obsReq, nil, http.StatusOK); !k {
			ok = false
			break
		}
		d.ack("observe", id, i+1, obsReq.RuntimeSec)
	}

	if _, k := d.do(ctx, StageClose, http.MethodDelete, "/v1/sessions/"+id, id, nil, nil, http.StatusNoContent); !k {
		ok = false
	} else {
		d.ack("close", id, 0, 0)
	}
	if !ok {
		d.failed.Add(1)
		return
	}
	d.completed.Add(1)
	if done {
		d.doneEarly.Add(1)
	}
}

// do issues one request under the per-request deadline, records its
// latency into the stage histogram on success, and books any failure
// into the error breakdown. It returns the response's X-Relm-Trace ID
// and whether the request succeeded.
func (d *Driver) do(ctx context.Context, stage, method, path, session string, in, out any, wantStatus int) (string, bool) {
	d.ops.Add(1)
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			d.recordError(stage, "encode", err.Error(), "")
			return "", false
		}
		body = bytes.NewReader(buf)
	}
	rctx, cancel := context.WithTimeout(ctx, d.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, method, d.opts.Target+path, body)
	if err != nil {
		d.recordError(stage, "transport", err.Error(), "")
		return "", false
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := time.Now()
	resp, err := d.opts.Client.Do(req)
	elapsed := time.Since(t0)
	if err != nil {
		kind := "transport"
		if errors.Is(err, context.DeadlineExceeded) || rctx.Err() == context.DeadlineExceeded {
			kind = "timeout"
			d.timeouts.Add(1)
		}
		d.recordError(stage, kind, err.Error(), "")
		return "", false
	}
	defer resp.Body.Close()
	traceID := resp.Header.Get(obs.TraceHeader)
	buf, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		d.recordError(stage, "transport", "read body: "+err.Error(), traceID)
		return traceID, false
	}
	if resp.StatusCode != wantStatus {
		d.recordError(stage, fmt.Sprintf("status_%d", resp.StatusCode), snippet(buf), traceID)
		return traceID, false
	}
	if out != nil {
		if err := json.Unmarshal(buf, out); err != nil {
			d.recordError(stage, "decode", err.Error(), traceID)
			return traceID, false
		}
	}
	d.hists[stage].Record(elapsed)
	d.trackSlow(stage, session, elapsed, traceID)
	return traceID, true
}

// snippet trims an error body for the report sample.
func snippet(buf []byte) string {
	s := string(bytes.TrimSpace(buf))
	if len(s) > 160 {
		s = s[:160] + "…"
	}
	if s == "" {
		s = "(empty body)"
	}
	return s
}

// recordError books one failed request into the (stage, kind) breakdown.
func (d *Driver) recordError(stage, kind, sample, traceID string) {
	d.errCount.Add(1)
	d.mu.Lock()
	defer d.mu.Unlock()
	k := errKey{stage, kind}
	e := d.errs[k]
	if e == nil {
		e = &ErrorCount{Stage: stage, Kind: kind, Sample: sample, SampleTrace: traceID}
		d.errs[k] = e
	}
	e.Count++
}

// trackSlow keeps the SlowKeep slowest successful requests.
func (d *Driver) trackSlow(stage, session string, elapsed time.Duration, traceID string) {
	ms := float64(elapsed) / 1e6
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.slow) < d.opts.SlowKeep {
		d.slow = append(d.slow, SlowOp{Stage: stage, Session: session, Ms: ms, Trace: traceID})
		return
	}
	minIdx := 0
	for i, s := range d.slow {
		if s.Ms < d.slow[minIdx].Ms {
			minIdx = i
		}
	}
	if ms > d.slow[minIdx].Ms {
		d.slow[minIdx] = SlowOp{Stage: stage, Session: session, Ms: ms, Trace: traceID}
	}
}

// report assembles the run's Report.
func (d *Driver) report(tr *Trace, start time.Time, wall time.Duration) *Report {
	r := &Report{
		Scenario:  tr.Header.Scenario,
		Seed:      tr.Header.Seed,
		Target:    d.opts.Target,
		RunID:     d.opts.RunID,
		StartedAt: start.UTC(),
		WallSec:   wall.Seconds(),
		Sessions: SessionCounts{
			Total:     len(tr.Sessions),
			Completed: int(d.completed.Load()),
			Failed:    int(d.failed.Load()),
			DoneEarly: int(d.doneEarly.Load()),
		},
		Ops: OpCounts{
			Total:    int(d.ops.Load()),
			Errors:   int(d.errCount.Load()),
			Timeouts: int(d.timeouts.Load()),
		},
		Stages:    make(map[string]obs.Summary),
		StageHist: make(map[string]obs.HistJSON),
	}
	if secs := wall.Seconds(); secs > 0 {
		r.SessionsPerSec = float64(r.Sessions.Completed) / secs
		r.OpsPerSec = float64(r.Ops.Total-r.Ops.Errors) / secs
	}
	for stage, h := range d.hists {
		snap := h.Snapshot()
		if snap.Count == 0 {
			continue
		}
		r.Stages[stage] = snap.Summarize()
		r.StageHist[stage] = snap.JSON()
	}
	d.mu.Lock()
	for _, e := range d.errs {
		r.Errors = append(r.Errors, *e)
	}
	slow := append([]SlowOp(nil), d.slow...)
	d.mu.Unlock()
	sortErrors(r.Errors)
	for i := 1; i < len(slow); i++ {
		for j := i; j > 0 && slow[j].Ms > slow[j-1].Ms; j-- {
			slow[j], slow[j-1] = slow[j-1], slow[j]
		}
	}
	r.Slowest = slow
	return r
}
