package loadgen

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"relm/internal/obs"
	"relm/internal/service"
)

func testScenario(name string) *Scenario {
	return &Scenario{
		Name:     name,
		Seed:     42,
		Sessions: 50,
		Arrival:  Arrival{Process: ArrivalConstant, RatePerSec: 500},
		Lifetime: Lifetime{Dist: LifetimeFixed, MeanIterations: 3},
	}
}

func TestScenarioValidateDefaults(t *testing.T) {
	s := &Scenario{Name: "d", Sessions: 10}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Arrival.Process != ArrivalConstant || s.Arrival.RatePerSec != 10 {
		t.Fatalf("arrival defaults wrong: %+v", s.Arrival)
	}
	if s.Lifetime.Dist != LifetimeFixed || s.Lifetime.MeanIterations != 4 ||
		s.Lifetime.MinIterations != 1 || s.Lifetime.MaxIterations != 64 {
		t.Fatalf("lifetime defaults wrong: %+v", s.Lifetime)
	}
	if len(s.Backends) != 1 || s.Backends["bo"] != 1 {
		t.Fatalf("backend default wrong: %v", s.Backends)
	}
	if len(s.Workloads) != 5 || len(s.Clusters) != 1 {
		t.Fatalf("pool defaults wrong: %v / %v", s.Workloads, s.Clusters)
	}
	if s.Concurrency != 32 || s.RequestTimeoutMS != 10000 {
		t.Fatalf("driver defaults wrong: %d / %d", s.Concurrency, s.RequestTimeoutMS)
	}
}

func TestScenarioValidateRejects(t *testing.T) {
	cases := []Scenario{
		{Sessions: 1}, // no name
		{Name: "x"},   // no sessions
		{Name: "x", Sessions: 1, Arrival: Arrival{Process: "burst"}},
		{Name: "x", Sessions: 1, Arrival: Arrival{Process: ArrivalRamp}},   // ramp without target
		{Name: "x", Sessions: 1, Arrival: Arrival{RampToPerSec: 5}},        // ramp target without ramp
		{Name: "x", Sessions: 1, Backends: map[string]float64{"spark": 1}}, // unknown backend
		{Name: "x", Sessions: 1, Backends: map[string]float64{"bo": -1}},   // negative weight
		{Name: "x", Sessions: 1, WarmFraction: 1.5},                        // bad fraction
		{Name: "x", Sessions: 1, Lifetime: Lifetime{MinIterations: 5, MaxIterations: 2}},
	}
	for i, sc := range cases {
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d: scenario %+v validated, want error", i, sc)
		}
	}
}

// TestPoissonInterArrivalMean: with a fixed seed, the empirical mean
// inter-arrival of a Poisson trace must sit within a few percent of
// 1/rate.
func TestPoissonInterArrivalMean(t *testing.T) {
	sc := &Scenario{
		Name:     "poisson",
		Seed:     7,
		Sessions: 5000,
		Arrival:  Arrival{Process: ArrivalPoisson, RatePerSec: 50},
	}
	tr, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	n := len(tr.Sessions)
	meanNs := float64(tr.Sessions[n-1].AtNs) / float64(n-1)
	wantNs := 1e9 / 50
	if rel := math.Abs(meanNs-wantNs) / wantNs; rel > 0.05 {
		t.Fatalf("poisson mean inter-arrival %.0fns, want %.0fns ±5%% (off by %.1f%%)", meanNs, wantNs, rel*100)
	}
	// Exponential inter-arrivals have CV ≈ 1; a constant process has 0.
	// This guards against accidentally wiring Poisson to the constant path.
	var sum, sumSq float64
	prev := int64(0)
	for _, s := range tr.Sessions[1:] {
		gap := float64(s.AtNs - prev)
		prev = s.AtNs
		sum += gap
		sumSq += gap * gap
	}
	mean := sum / float64(n-1)
	cv := math.Sqrt(sumSq/float64(n-1)-mean*mean) / mean
	if cv < 0.9 || cv > 1.1 {
		t.Fatalf("poisson inter-arrival CV = %.3f, want ≈1", cv)
	}
}

// TestRampArrivalAccelerates: a ramp trace's second half must arrive
// faster than its first half.
func TestRampArrivalAccelerates(t *testing.T) {
	sc := &Scenario{
		Name:     "ramp",
		Seed:     3,
		Sessions: 1000,
		Arrival:  Arrival{Process: ArrivalRamp, RatePerSec: 10, RampToPerSec: 100},
	}
	tr, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	mid := tr.Sessions[len(tr.Sessions)/2].AtNs
	last := tr.Sessions[len(tr.Sessions)-1].AtNs
	if firstHalf, secondHalf := mid, last-mid; secondHalf >= firstHalf {
		t.Fatalf("ramp second half took %dns >= first half %dns", secondHalf, firstHalf)
	}
}

// TestTraceByteForByteReplay: the same scenario + seed must serialize to
// identical bytes, and a read-back trace must re-serialize to the same
// bytes again.
func TestTraceByteForByteReplay(t *testing.T) {
	sc := testScenario("rt")
	sc.Arrival = Arrival{Process: ArrivalPoisson, RatePerSec: 100}
	sc.Lifetime = Lifetime{Dist: LifetimeGeometric, MeanIterations: 5}
	sc.Backends = map[string]float64{"relm": 1, "bo": 2, "gbo": 1, "ddpg": 0.5}
	sc.WarmFraction = 0.5
	sc.Clusters = []string{"A", "B"}

	gen := func() []byte {
		cp := *sc
		tr, err := Generate(&cp)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first, second := gen(), gen()
	if !bytes.Equal(first, second) {
		t.Fatal("two generations from the same scenario+seed differ")
	}

	tr, err := ReadTrace(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if _, err := tr.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatal("read-back trace re-serialized to different bytes")
	}

	// A different seed must actually change the bytes.
	sc.Seed++
	if bytes.Equal(first, gen()) {
		t.Fatal("different seed produced identical trace")
	}
}

func TestReadTraceRejects(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := []byte(`{"format":"not-a-trace/9","scenario":"x","seed":1,"sessions":0}` + "\n")
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown format accepted")
	}
	short := []byte(`{"format":"` + TraceFormat + `","scenario":"x","seed":1,"sessions":2}` + "\n" +
		`{"i":0,"at_ns":0,"backend":"bo","workload":"SVM","cluster":"A","seed":1,"iters":1}` + "\n")
	if _, err := ReadTrace(bytes.NewReader(short)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

// TestReportPercentilesMatchHistogram: the report's per-stage summaries
// must be exactly the obs.Histogram digests of the recorded latencies —
// same buckets, same interpolation.
func TestReportPercentilesMatchHistogram(t *testing.T) {
	h := obs.NewHistogram()
	durs := []time.Duration{
		500 * time.Nanosecond, time.Microsecond, 3 * time.Microsecond,
		100 * time.Microsecond, time.Millisecond, 4 * time.Millisecond,
		50 * time.Millisecond, time.Second,
	}
	for _, d := range durs {
		h.Record(d)
	}
	snap := h.Snapshot()

	// JSON round trip preserves the exact bucket state.
	back := snap.JSON().Snapshot()
	if back != snap {
		t.Fatalf("HistJSON round trip lost state:\n got %+v\nwant %+v", back, snap)
	}

	// MergeHists of two halves equals the whole.
	h1, h2 := obs.NewHistogram(), obs.NewHistogram()
	for i, d := range durs {
		if i%2 == 0 {
			h1.Record(d)
		} else {
			h2.Record(d)
		}
	}
	merged := obs.MergeHists(h1.Snapshot().JSON(), h2.Snapshot().JSON())
	if merged != snap {
		t.Fatalf("MergeHists diverged from single histogram:\n got %+v\nwant %+v", merged, snap)
	}

	sum := snap.Summarize()
	for _, q := range []struct {
		name string
		got  float64
		p    float64
	}{
		{"p50", sum.P50Us, 0.50},
		{"p90", sum.P90Us, 0.90},
		{"p99", sum.P99Us, 0.99},
		{"p999", sum.P999Us, 0.999},
	} {
		want := float64(snap.Quantile(q.p)) / 1e3
		if q.got != want {
			t.Errorf("%s = %.3fµs, want %.3fµs", q.name, q.got, want)
		}
	}
	if sum.Count != uint64(len(durs)) {
		t.Errorf("count = %d, want %d", sum.Count, len(durs))
	}
}

func startService(t testing.TB) *httptest.Server {
	t.Helper()
	m := service.NewManager(service.Options{NodeID: "lg-test", Workers: 2, TTL: time.Hour})
	srv := httptest.NewServer(service.NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return srv
}

// TestDriverEndToEnd replays a mixed-backend trace against a real
// service.Manager over httptest and expects a clean report: every
// session completed, zero errors, and per-stage histograms populated.
func TestDriverEndToEnd(t *testing.T) {
	srv := startService(t)
	sc := testScenario("e2e")
	sc.Backends = map[string]float64{"relm": 1, "bo": 1, "gbo": 1, "ddpg": 1}
	sc.WarmFraction = 0.5
	tr, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}

	d, err := NewDriver(Options{
		Target: srv.URL, RunID: "t1", Concurrency: 16,
		RequestTimeout: 5 * time.Second, Client: srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnexpectedErrors() != 0 {
		t.Fatalf("report has %d errors: %+v", rep.UnexpectedErrors(), rep.Errors)
	}
	if rep.Sessions.Completed != sc.Sessions || rep.Sessions.Failed != 0 {
		t.Fatalf("sessions = %+v, want all %d completed", rep.Sessions, sc.Sessions)
	}
	// relm's analytic pipeline finishes before the traced 3 iterations, so
	// a mixed trace must show early-done sessions.
	if rep.Sessions.DoneEarly == 0 {
		t.Fatal("expected some relm sessions to report done early")
	}
	if rep.Ops.Total > tr.Ops() || rep.Ops.Total < 2*sc.Sessions {
		t.Fatalf("ops total %d outside [%d, %d]", rep.Ops.Total, 2*sc.Sessions, tr.Ops())
	}
	for _, stage := range []string{StageCreate, StageSuggest, StageObserve, StageClose, SchedLagStage} {
		if rep.Stages[stage].Count == 0 {
			t.Errorf("stage %q has no samples", stage)
		}
	}
	if rep.Stages[StageCreate].Count != uint64(sc.Sessions) {
		t.Errorf("create count = %d, want %d", rep.Stages[StageCreate].Count, sc.Sessions)
	}
	if rep.SessionsPerSec <= 0 || rep.OpsPerSec <= 0 {
		t.Errorf("rates not positive: %+v", rep)
	}
	if len(rep.Slowest) == 0 {
		t.Error("no slowest requests retained")
	}
	if rep.Table() == "" {
		t.Error("empty table rendering")
	}
}

// TestDriverErrorAccounting: a target that rejects every request must
// produce a failed-session, status-coded error breakdown — not a hang or
// a false success.
func TestDriverErrorAccounting(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "backend on fire", http.StatusInternalServerError)
	}))
	defer srv.Close()

	sc := testScenario("err")
	sc.Sessions = 10
	tr, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(Options{Target: srv.URL, RunID: "t2", Concurrency: 4, RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions.Failed != sc.Sessions || rep.Sessions.Completed != 0 {
		t.Fatalf("sessions = %+v, want all %d failed", rep.Sessions, sc.Sessions)
	}
	// Each session dies on its create; no retries, no close attempt.
	if rep.Ops.Errors != sc.Sessions {
		t.Fatalf("errors = %d, want %d", rep.Ops.Errors, sc.Sessions)
	}
	if len(rep.Errors) != 1 || rep.Errors[0].Kind != "status_500" || rep.Errors[0].Stage != StageCreate {
		t.Fatalf("error breakdown = %+v, want one create/status_500 row", rep.Errors)
	}
	if rep.Errors[0].Sample == "" {
		t.Fatal("error sample not captured")
	}
}

// TestDriverTimeoutKind: a stalled target shows up as timeouts, bounded
// by the per-request deadline rather than hanging the run.
func TestDriverTimeoutKind(t *testing.T) {
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(stall) // unblock handlers before srv.Close waits on them

	sc := testScenario("timeout")
	sc.Sessions = 3
	tr, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(Options{Target: srv.URL, RunID: "t3", Concurrency: 3, RequestTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops.Timeouts != sc.Sessions {
		t.Fatalf("timeouts = %d, want %d (errors %+v)", rep.Ops.Timeouts, sc.Sessions, rep.Errors)
	}
}

// BenchmarkLoadgenDrive replays sessions end-to-end (create →
// suggest/observe ×2 → close) against an in-process service over
// loopback HTTP — the harness's own overhead plus the service hot path.
func BenchmarkLoadgenDrive(b *testing.B) {
	srv := startService(b)
	sc := &Scenario{
		Name:     "bench",
		Seed:     1,
		Sessions: b.N,
		Arrival:  Arrival{Process: ArrivalConstant, RatePerSec: 1e6},
		Lifetime: Lifetime{Dist: LifetimeFixed, MeanIterations: 2},
	}
	tr, err := Generate(sc)
	if err != nil {
		b.Fatal(err)
	}
	d, err := NewDriver(Options{Target: srv.URL, RunID: "bench", Concurrency: 8, Client: srv.Client()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	rep, err := d.Run(context.Background(), tr)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if rep.UnexpectedErrors() != 0 {
		b.Fatalf("%d errors: %+v", rep.UnexpectedErrors(), rep.Errors)
	}
}

// BenchmarkLoadgenDriveGenerate measures pure trace generation.
func BenchmarkLoadgenDriveGenerate(b *testing.B) {
	sc := &Scenario{
		Name:     "gen",
		Seed:     1,
		Sessions: b.N,
		Arrival:  Arrival{Process: ArrivalPoisson, RatePerSec: 1000},
		Lifetime: Lifetime{Dist: LifetimeGeometric, MeanIterations: 6},
		Backends: map[string]float64{"relm": 1, "bo": 1, "gbo": 1, "ddpg": 1},
	}
	b.ReportAllocs()
	b.ResetTimer()
	tr, err := Generate(sc)
	if err != nil {
		b.Fatal(err)
	}
	if len(tr.Sessions) != b.N {
		b.Fatal("short trace")
	}
}
