package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"relm/internal/obs"
)

// Stage names of the session lifecycle, in lifecycle order. SchedLagStage
// additionally times dispatch lag: how far behind its trace offset a
// session actually started (worker-pool queueing under overload).
const (
	StageCreate  = "create"
	StageSuggest = "suggest"
	StageObserve = "observe"
	StageClose   = "close"

	SchedLagStage = "sched.lag"
)

// reportStages is the rendering order of the per-stage tables.
var reportStages = []string{StageCreate, StageSuggest, StageObserve, StageClose, SchedLagStage}

// SessionCounts breaks down session outcomes.
type SessionCounts struct {
	Total int `json:"total"`
	// Completed sessions ran create → loop → close without an unexpected
	// error (a backend reporting done before the trace's iteration count
	// still completes).
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// DoneEarly counts completed sessions whose backend reported done
	// before the traced iteration count (expected for relm's 2–3-step
	// pipeline).
	DoneEarly int `json:"done_early,omitempty"`
}

// OpCounts breaks down individual HTTP requests.
type OpCounts struct {
	Total    int `json:"total"`
	Errors   int `json:"errors"`
	Timeouts int `json:"timeouts"`
}

// ErrorCount is one (stage, kind) cell of the error breakdown. Kind is
// "timeout", "transport", or "status_<code>"; Sample carries one example
// message and SampleTrace the X-Relm-Trace ID of an offending response
// when one was seen, so the failure is inspectable via /v1/traces.
type ErrorCount struct {
	Stage       string `json:"stage"`
	Kind        string `json:"kind"`
	Count       int    `json:"count"`
	Sample      string `json:"sample,omitempty"`
	SampleTrace string `json:"sample_trace,omitempty"`
}

// SlowOp is one of the slowest successful requests of the run, kept with
// its trace ID so a p999 outlier can be explained span-by-span via
// GET /v1/traces on the router or backend that served it.
type SlowOp struct {
	Stage   string  `json:"stage"`
	Session string  `json:"session"`
	Ms      float64 `json:"ms"`
	Trace   string  `json:"trace,omitempty"`
}

// Report is the run's result: JSON on disk (LOAD_pr8.json by default in
// the CLI), human table via Table.
type Report struct {
	Scenario  string    `json:"scenario"`
	Seed      uint64    `json:"seed"`
	Target    string    `json:"target"`
	RunID     string    `json:"run_id"`
	StartedAt time.Time `json:"started_at"`
	WallSec   float64   `json:"wall_sec"`

	Sessions SessionCounts `json:"sessions"`
	Ops      OpCounts      `json:"ops"`

	// SessionsPerSec and OpsPerSec are sustained rates over the whole
	// run: completed work divided by wall-clock time.
	SessionsPerSec float64 `json:"sessions_per_sec"`
	OpsPerSec      float64 `json:"ops_per_sec"`

	// Stages holds the percentile digests (µs) per lifecycle stage;
	// StageHist the raw power-of-two buckets the digests were computed
	// from, mergeable across runs with obs.MergeHists.
	Stages    map[string]obs.Summary  `json:"stages"`
	StageHist map[string]obs.HistJSON `json:"stage_hist"`

	Errors  []ErrorCount `json:"errors,omitempty"`
	Slowest []SlowOp     `json:"slowest,omitempty"`
}

// UnexpectedErrors is the run's total error count — the number a CI soak
// asserts to be zero.
func (r *Report) UnexpectedErrors() int { return r.Ops.Errors }

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("loadgen: encode report: %w", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("loadgen: write report: %w", err)
	}
	return nil
}

// Table renders the human summary: throughput, per-stage percentiles,
// error and slow-request breakdowns.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %s (seed %d) against %s — run %s\n", r.Scenario, r.Seed, r.Target, r.RunID)
	fmt.Fprintf(&sb, "%d/%d sessions completed (%d failed, %d done early), %d ops, %d errors (%d timeouts) in %.1fs\n",
		r.Sessions.Completed, r.Sessions.Total, r.Sessions.Failed, r.Sessions.DoneEarly,
		r.Ops.Total, r.Ops.Errors, r.Ops.Timeouts, r.WallSec)
	fmt.Fprintf(&sb, "sustained: %.1f sessions/sec, %.1f ops/sec\n\n", r.SessionsPerSec, r.OpsPerSec)

	w := tabwriter.NewWriter(&sb, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "STAGE\tCOUNT\tMEAN\tP50\tP90\tP99\tP999")
	for _, stage := range reportStages {
		s, ok := r.Stages[stage]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n", stage, s.Count,
			fmtUs(s.MeanUs), fmtUs(s.P50Us), fmtUs(s.P90Us), fmtUs(s.P99Us), fmtUs(s.P999Us))
	}
	w.Flush()

	if len(r.Errors) > 0 {
		sb.WriteString("\nerrors:\n")
		for _, e := range r.Errors {
			fmt.Fprintf(&sb, "  %-8s %-14s ×%d", e.Stage, e.Kind, e.Count)
			if e.Sample != "" {
				fmt.Fprintf(&sb, "  e.g. %s", e.Sample)
			}
			if e.SampleTrace != "" {
				fmt.Fprintf(&sb, "  (trace %s)", e.SampleTrace)
			}
			sb.WriteByte('\n')
		}
	}
	if len(r.Slowest) > 0 {
		sb.WriteString("\nslowest requests (explain via GET /v1/traces?id=...):\n")
		for _, s := range r.Slowest {
			fmt.Fprintf(&sb, "  %-8s %8.1fms  session %s", s.Stage, s.Ms, s.Session)
			if s.Trace != "" {
				fmt.Fprintf(&sb, "  trace %s", s.Trace)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// fmtUs renders a microsecond figure with an adaptive unit.
func fmtUs(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.1fms", us/1e3)
	default:
		return fmt.Sprintf("%.0fµs", us)
	}
}

// sortErrors orders the error breakdown most-frequent first, then by
// stage/kind for stable output.
func sortErrors(errs []ErrorCount) {
	sort.Slice(errs, func(i, j int) bool {
		if errs[i].Count != errs[j].Count {
			return errs[i].Count > errs[j].Count
		}
		if errs[i].Stage != errs[j].Stage {
			return errs[i].Stage < errs[j].Stage
		}
		return errs[i].Kind < errs[j].Kind
	})
}
