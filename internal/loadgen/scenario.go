// Package loadgen is the trace-driven load harness of the tuning service:
// it turns a declarative scenario (arrival process, session-lifetime
// distribution, backend mix, warm-start fraction) into a reproducible
// session-lifecycle trace, replays that trace open-loop against a router
// or single node over the ordinary HTTP API, and reports bucket-exact
// percentiles per stage (create / suggest / observe / close) plus
// sustained sessions/sec, ops/sec, and an error breakdown.
//
// The pipeline has three deliberately separable parts:
//
//   - Generate(Scenario) derives a Trace — every session's start offset,
//     backend, workload, iteration count, and seed — deterministically
//     from the scenario seed. The same scenario + seed always produces a
//     byte-for-byte identical trace file, so a benchmark run is
//     reproducible from two small JSON documents.
//   - Trace is the on-disk JSONL form (WriteTo / ReadTrace): one header
//     line, then one line per session in start order. Traces can also be
//     captured once and replayed forever, decoupling "what traffic shape"
//     from "which build handled it".
//   - Driver replays a trace: an open-loop dispatcher releases sessions
//     at their recorded offsets (arrivals never wait for completions —
//     the generator does not slow down when the system does), a bounded
//     worker pool drives each session's create → suggest/observe loop →
//     close against Target, every request carries a deadline, and
//     latencies land in obs.Histogram stage buckets so the report's
//     p50/p99/p999 are exact to bucket resolution. Slow requests keep
//     their X-Relm-Trace IDs, so any p999 outlier is explainable via
//     GET /v1/traces on the serving tier.
//
// cmd/relm-loadgen is the CLI; docs/LOADGEN.md documents the scenario
// schema, the trace format, and an annotated report.
package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Arrival processes.
const (
	ArrivalConstant = "constant" // evenly spaced: session i starts at i/rate
	ArrivalPoisson  = "poisson"  // exponential inter-arrivals with the given mean rate
	ArrivalRamp     = "ramp"     // rate climbs linearly from rate_per_sec to ramp_to_per_sec
)

// Lifetime distributions (number of suggest/observe iterations per session).
const (
	LifetimeFixed     = "fixed"     // every session runs round(mean) iterations
	LifetimeUniform   = "uniform"   // uniform on [min, max]
	LifetimeGeometric = "geometric" // geometric with the given mean, clamped to [min, max]
)

// Arrival declares when sessions start.
type Arrival struct {
	// Process is one of constant, poisson, ramp.
	Process string `json:"process"`
	// RatePerSec is the (initial) session arrival rate.
	RatePerSec float64 `json:"rate_per_sec"`
	// RampToPerSec is the final rate of a ramp (ignored otherwise).
	RampToPerSec float64 `json:"ramp_to_per_sec,omitempty"`
}

// Lifetime declares how long a session lives, in suggest/observe
// iterations.
type Lifetime struct {
	// Dist is one of fixed, uniform, geometric.
	Dist string `json:"dist"`
	// MeanIterations parameterizes fixed and geometric.
	MeanIterations float64 `json:"mean_iterations,omitempty"`
	// MinIterations / MaxIterations bound every distribution (uniform
	// draws between them). Defaults: 1 and 64.
	MinIterations int `json:"min_iterations,omitempty"`
	MaxIterations int `json:"max_iterations,omitempty"`
}

// Scenario is the declarative load-shape config (JSON on disk). Zero
// values select the defaults documented per field; Validate fills them
// in.
type Scenario struct {
	// Name labels the trace and the report.
	Name string `json:"name"`
	// Seed drives every random choice in trace generation. Same scenario
	// + same seed = byte-identical trace.
	Seed uint64 `json:"seed"`
	// Sessions is the total number of sessions in the trace.
	Sessions int `json:"sessions"`
	// Arrival is the arrival process (default: constant at 10/sec).
	Arrival Arrival `json:"arrival"`
	// Lifetime is the session-lifetime distribution (default: fixed 4).
	Lifetime Lifetime `json:"lifetime"`
	// Backends maps backend kind (relm, bo, gbo, ddpg) to a selection
	// weight; weights need not sum to 1 (default: bo only).
	Backends map[string]float64 `json:"backends,omitempty"`
	// Workloads is the pool of workload names sessions draw from
	// uniformly (default: the paper's five Table 2 benchmarks).
	Workloads []string `json:"workloads,omitempty"`
	// Clusters is the pool of cluster names (default: ["A"]).
	Clusters []string `json:"clusters,omitempty"`
	// WarmFraction is the probability a bo/gbo session is created with a
	// warm-start request (fingerprint + default runtime attached).
	WarmFraction float64 `json:"warm_fraction,omitempty"`
	// Concurrency bounds the worker pool driving sessions (default 32).
	// Open-loop arrivals beyond it queue; queueing shows up as
	// sched.lag in the report rather than distorted arrival times.
	Concurrency int `json:"concurrency,omitempty"`
	// RequestTimeoutMS is the per-request deadline (default 10000).
	RequestTimeoutMS int `json:"request_timeout_ms,omitempty"`
}

// defaultWorkloads is the paper's Table 2 benchmark pool.
func defaultWorkloads() []string {
	return []string{"WordCount", "SortByKey", "K-means", "SVM", "PageRank"}
}

// validBackends is the set of service backend kinds a scenario may mix.
var validBackends = map[string]bool{"relm": true, "bo": true, "gbo": true, "ddpg": true}

// Validate checks the scenario and fills defaults in place.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("loadgen: scenario needs a name")
	}
	if s.Sessions <= 0 {
		return fmt.Errorf("loadgen: scenario %q: sessions must be > 0", s.Name)
	}
	if s.Arrival.Process == "" {
		s.Arrival.Process = ArrivalConstant
	}
	switch s.Arrival.Process {
	case ArrivalConstant, ArrivalPoisson, ArrivalRamp:
	default:
		return fmt.Errorf("loadgen: scenario %q: unknown arrival process %q (want constant, poisson, or ramp)", s.Name, s.Arrival.Process)
	}
	if s.Arrival.RatePerSec == 0 {
		s.Arrival.RatePerSec = 10
	}
	if s.Arrival.RatePerSec <= 0 {
		return fmt.Errorf("loadgen: scenario %q: rate_per_sec must be > 0", s.Name)
	}
	if s.Arrival.Process == ArrivalRamp {
		if s.Arrival.RampToPerSec <= 0 {
			return fmt.Errorf("loadgen: scenario %q: ramp needs ramp_to_per_sec > 0", s.Name)
		}
	} else if s.Arrival.RampToPerSec != 0 {
		return fmt.Errorf("loadgen: scenario %q: ramp_to_per_sec only applies to the ramp process", s.Name)
	}
	if s.Lifetime.Dist == "" {
		s.Lifetime.Dist = LifetimeFixed
	}
	switch s.Lifetime.Dist {
	case LifetimeFixed, LifetimeUniform, LifetimeGeometric:
	default:
		return fmt.Errorf("loadgen: scenario %q: unknown lifetime dist %q (want fixed, uniform, or geometric)", s.Name, s.Lifetime.Dist)
	}
	if s.Lifetime.MinIterations == 0 {
		s.Lifetime.MinIterations = 1
	}
	if s.Lifetime.MaxIterations == 0 {
		s.Lifetime.MaxIterations = 64
	}
	if s.Lifetime.MinIterations < 1 || s.Lifetime.MaxIterations < s.Lifetime.MinIterations {
		return fmt.Errorf("loadgen: scenario %q: bad iteration bounds [%d, %d]", s.Name, s.Lifetime.MinIterations, s.Lifetime.MaxIterations)
	}
	if s.Lifetime.MeanIterations == 0 {
		if s.Lifetime.Dist == LifetimeUniform {
			s.Lifetime.MeanIterations = float64(s.Lifetime.MinIterations+s.Lifetime.MaxIterations) / 2
		} else {
			s.Lifetime.MeanIterations = 4
		}
	}
	if s.Lifetime.MeanIterations < 1 {
		return fmt.Errorf("loadgen: scenario %q: mean_iterations must be >= 1", s.Name)
	}
	if len(s.Backends) == 0 {
		s.Backends = map[string]float64{"bo": 1}
	}
	total := 0.0
	for kind, w := range s.Backends {
		if !validBackends[kind] {
			return fmt.Errorf("loadgen: scenario %q: unknown backend %q (want relm, bo, gbo, ddpg)", s.Name, kind)
		}
		if w < 0 {
			return fmt.Errorf("loadgen: scenario %q: backend %q has negative weight", s.Name, kind)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("loadgen: scenario %q: backend weights sum to zero", s.Name)
	}
	if len(s.Workloads) == 0 {
		s.Workloads = defaultWorkloads()
	}
	if len(s.Clusters) == 0 {
		s.Clusters = []string{"A"}
	}
	if s.WarmFraction < 0 || s.WarmFraction > 1 {
		return fmt.Errorf("loadgen: scenario %q: warm_fraction must be in [0, 1]", s.Name)
	}
	if s.Concurrency == 0 {
		s.Concurrency = 32
	}
	if s.Concurrency < 1 {
		return fmt.Errorf("loadgen: scenario %q: concurrency must be >= 1", s.Name)
	}
	if s.RequestTimeoutMS == 0 {
		s.RequestTimeoutMS = 10000
	}
	if s.RequestTimeoutMS < 1 {
		return fmt.Errorf("loadgen: scenario %q: request_timeout_ms must be >= 1", s.Name)
	}
	return nil
}

// RequestTimeout is the per-request deadline as a Duration.
func (s *Scenario) RequestTimeout() time.Duration {
	return time.Duration(s.RequestTimeoutMS) * time.Millisecond
}

// backendKinds returns the scenario's backend kinds in sorted order with
// cumulative normalized weights — map iteration order must never leak
// into trace bytes.
func (s *Scenario) backendKinds() ([]string, []float64) {
	kinds := make([]string, 0, len(s.Backends))
	for k := range s.Backends {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	total := 0.0
	for _, k := range kinds {
		total += s.Backends[k]
	}
	cum := make([]float64, len(kinds))
	run := 0.0
	for i, k := range kinds {
		run += s.Backends[k] / total
		cum[i] = run
	}
	return kinds, cum
}

// LoadScenario reads and validates a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: read scenario: %w", err)
	}
	var s Scenario
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, fmt.Errorf("loadgen: parse scenario %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
