package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"time"
)

// TraceFormat identifies the on-disk trace layout. Bump it when the
// record shape changes; ReadTrace rejects formats it does not know.
const TraceFormat = "relm-loadtrace/1"

// TraceHeader is the first JSONL line of a trace file.
type TraceHeader struct {
	Format   string `json:"format"`
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Sessions int    `json:"sessions"`
}

// TraceSession is one session of the trace: when it starts (offset from
// run start), what it creates, and how long it lives. IDs are not stored
// — the driver derives the wire ID from its run ID plus Index, so one
// trace can be replayed many times against a durable cluster without
// session-ID collisions.
type TraceSession struct {
	Index    int    `json:"i"`
	AtNs     int64  `json:"at_ns"`
	Backend  string `json:"backend"`
	Workload string `json:"workload"`
	Cluster  string `json:"cluster"`
	Seed     uint64 `json:"seed"`
	// Iters is the number of suggest/observe rounds the driver attempts;
	// a backend reporting done earlier (relm's short pipeline) ends the
	// loop early and is not an error.
	Iters int  `json:"iters"`
	Warm  bool `json:"warm,omitempty"`
}

// Trace is a fully materialized session-lifecycle trace, sorted by AtNs.
type Trace struct {
	Header   TraceHeader
	Sessions []TraceSession
}

// Duration is the span from run start to the last session's arrival.
func (t *Trace) Duration() time.Duration {
	if len(t.Sessions) == 0 {
		return 0
	}
	return time.Duration(t.Sessions[len(t.Sessions)-1].AtNs)
}

// Ops is the trace's total request count if every session completes its
// full lifecycle: one create, Iters suggests and observes, one close.
func (t *Trace) Ops() int {
	ops := 0
	for _, s := range t.Sessions {
		ops += 2 + 2*s.Iters
	}
	return ops
}

// Generate derives the trace from a validated scenario, deterministically
// from Scenario.Seed. All randomness flows through one PCG stream in a
// fixed visitation order, so the resulting trace — and its file form —
// is byte-for-byte reproducible.
func Generate(sc *Scenario) (*Trace, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(sc.Seed, sc.Seed^0x9e3779b97f4a7c15))
	kinds, cum := sc.backendKinds()

	tr := &Trace{
		Header: TraceHeader{
			Format:   TraceFormat,
			Scenario: sc.Name,
			Seed:     sc.Seed,
			Sessions: sc.Sessions,
		},
		Sessions: make([]TraceSession, sc.Sessions),
	}
	atNs := int64(0)
	for i := 0; i < sc.Sessions; i++ {
		if i > 0 {
			atNs += interArrivalNs(sc, rng, i)
		}
		kind := kinds[len(kinds)-1]
		u := rng.Float64()
		for j, c := range cum {
			if u < c {
				kind = kinds[j]
				break
			}
		}
		warm := false
		if kind == "bo" || kind == "gbo" {
			warm = rng.Float64() < sc.WarmFraction
		}
		tr.Sessions[i] = TraceSession{
			Index:    i,
			AtNs:     atNs,
			Backend:  kind,
			Workload: sc.Workloads[rng.IntN(len(sc.Workloads))],
			Cluster:  sc.Clusters[rng.IntN(len(sc.Clusters))],
			Seed:     rng.Uint64(),
			Iters:    sampleIters(sc, rng),
			Warm:     warm,
		}
	}
	return tr, nil
}

// interArrivalNs samples the gap before session i (i >= 1).
func interArrivalNs(sc *Scenario, rng *rand.Rand, i int) int64 {
	switch sc.Arrival.Process {
	case ArrivalPoisson:
		// Exponential inter-arrival with mean 1/rate. 1-U keeps the
		// argument in (0, 1] so Log never sees zero.
		gap := -math.Log(1-rng.Float64()) / sc.Arrival.RatePerSec
		return int64(gap * 1e9)
	case ArrivalRamp:
		// The instantaneous rate climbs linearly across the trace; the
		// gap before session i uses the rate at that point of the ramp.
		frac := 0.0
		if sc.Sessions > 1 {
			frac = float64(i) / float64(sc.Sessions-1)
		}
		rate := sc.Arrival.RatePerSec + frac*(sc.Arrival.RampToPerSec-sc.Arrival.RatePerSec)
		return int64(1e9 / rate)
	default: // constant
		return int64(1e9 / sc.Arrival.RatePerSec)
	}
}

// sampleIters draws one session's iteration count from the lifetime
// distribution, clamped to [MinIterations, MaxIterations].
func sampleIters(sc *Scenario, rng *rand.Rand) int {
	lt := sc.Lifetime
	var n int
	switch lt.Dist {
	case LifetimeUniform:
		n = lt.MinIterations + rng.IntN(lt.MaxIterations-lt.MinIterations+1)
	case LifetimeGeometric:
		// Geometric on {1, 2, ...} with mean m: success probability 1/m.
		p := 1 / lt.MeanIterations
		if p >= 1 {
			n = 1
		} else {
			n = 1 + int(math.Floor(math.Log(1-rng.Float64())/math.Log(1-p)))
		}
	default: // fixed
		n = int(math.Round(lt.MeanIterations))
	}
	if n < lt.MinIterations {
		n = lt.MinIterations
	}
	if n > lt.MaxIterations {
		n = lt.MaxIterations
	}
	return n
}

// WriteTo writes the trace as JSONL: the header line, then one line per
// session in start order. Encoding goes through struct marshaling with a
// fixed field order, so identical traces produce identical bytes.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	writeLine := func(v any) error {
		buf, err := json.Marshal(v)
		if err != nil {
			return err
		}
		k, err := bw.Write(append(buf, '\n'))
		n += int64(k)
		return err
	}
	if err := writeLine(t.Header); err != nil {
		return n, fmt.Errorf("loadgen: write trace header: %w", err)
	}
	for i := range t.Sessions {
		if err := writeLine(&t.Sessions[i]); err != nil {
			return n, fmt.Errorf("loadgen: write trace session %d: %w", i, err)
		}
	}
	return n, bw.Flush()
}

// WriteFile writes the trace to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("loadgen: create trace file: %w", err)
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTrace parses a trace written by WriteTo, verifying the format tag,
// the declared session count, and the start-order sort.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("loadgen: read trace header: %w", err)
		}
		return nil, fmt.Errorf("loadgen: empty trace")
	}
	var tr Trace
	if err := json.Unmarshal(sc.Bytes(), &tr.Header); err != nil {
		return nil, fmt.Errorf("loadgen: parse trace header: %w", err)
	}
	if tr.Header.Format != TraceFormat {
		return nil, fmt.Errorf("loadgen: unknown trace format %q (want %q)", tr.Header.Format, TraceFormat)
	}
	tr.Sessions = make([]TraceSession, 0, tr.Header.Sessions)
	for sc.Scan() {
		var s TraceSession
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return nil, fmt.Errorf("loadgen: parse trace session %d: %w", len(tr.Sessions), err)
		}
		if n := len(tr.Sessions); n > 0 && s.AtNs < tr.Sessions[n-1].AtNs {
			return nil, fmt.Errorf("loadgen: trace session %d out of start order", n)
		}
		tr.Sessions = append(tr.Sessions, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: read trace: %w", err)
	}
	if len(tr.Sessions) != tr.Header.Sessions {
		return nil, fmt.Errorf("loadgen: trace holds %d sessions, header declares %d", len(tr.Sessions), tr.Header.Sessions)
	}
	return &tr, nil
}

// ReadTraceFile parses the trace at path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: open trace file: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}
