// Package nn implements the small dense-network substrate DDPG needs:
// fully-connected layers with ReLU/tanh/linear activations, exact
// backpropagation, and the Adam optimizer. Everything is float64 and
// allocation-simple — the networks here are tiny (two hidden layers of 64
// units, as in CDBTune's DDPG configuration).
package nn

import (
	"math"

	"relm/internal/simrand"
)

// Activation selects a layer non-linearity.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	ReLU
	Tanh
)

func actF(a Activation, v float64) float64 {
	switch a {
	case ReLU:
		if v < 0 {
			return 0
		}
		return v
	case Tanh:
		return math.Tanh(v)
	default:
		return v
	}
}

// actDF returns the derivative given the pre-activation value.
func actDF(a Activation, v float64) float64 {
	switch a {
	case ReLU:
		if v < 0 {
			return 0
		}
		return 1
	case Tanh:
		t := math.Tanh(v)
		return 1 - t*t
	default:
		return 1
	}
}

// Net is a fully-connected feed-forward network.
type Net struct {
	sizes []int
	acts  []Activation // one per layer transition
	w     [][]float64  // w[l][out*in+i]
	b     [][]float64

	// Adam state.
	mw, vw, mb, vb [][]float64
	step           int
}

// NewNet builds a network with the given layer sizes. hidden applies to all
// transitions except the last, which uses output.
func NewNet(rng *simrand.Rand, sizes []int, hidden, output Activation) *Net {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	n := &Net{sizes: append([]int(nil), sizes...)}
	layers := len(sizes) - 1
	for l := 0; l < layers; l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		// Xavier/Glorot initialization.
		scale := math.Sqrt(2.0 / float64(in+out))
		for i := range w {
			w[i] = rng.Norm(0, scale)
		}
		n.w = append(n.w, w)
		n.b = append(n.b, make([]float64, out))
		n.mw = append(n.mw, make([]float64, in*out))
		n.vw = append(n.vw, make([]float64, in*out))
		n.mb = append(n.mb, make([]float64, out))
		n.vb = append(n.vb, make([]float64, out))
		act := hidden
		if l == layers-1 {
			act = output
		}
		n.acts = append(n.acts, act)
	}
	return n
}

// Sizes returns the layer sizes.
func (n *Net) Sizes() []int { return append([]int(nil), n.sizes...) }

// ParamCount returns the number of trainable parameters.
func (n *Net) ParamCount() int {
	c := 0
	for l := range n.w {
		c += len(n.w[l]) + len(n.b[l])
	}
	return c
}

// Tape stores the forward-pass intermediates needed by Backward.
type Tape struct {
	inputs  [][]float64 // input to each layer
	preacts [][]float64 // pre-activation of each layer
}

// Forward computes the network output; when tape is non-nil the
// intermediates are recorded for backpropagation.
func (n *Net) Forward(x []float64, tape *Tape) []float64 {
	cur := x
	for l := range n.w {
		in, out := n.sizes[l], n.sizes[l+1]
		pre := make([]float64, out)
		for o := 0; o < out; o++ {
			s := n.b[l][o]
			row := n.w[l][o*in : (o+1)*in]
			for i, v := range cur {
				s += row[i] * v
			}
			pre[o] = s
		}
		if tape != nil {
			tape.inputs = append(tape.inputs, cur)
			tape.preacts = append(tape.preacts, pre)
		}
		next := make([]float64, out)
		for o, v := range pre {
			next[o] = actF(n.acts[l], v)
		}
		cur = next
	}
	return cur
}

// Grads holds parameter gradients with the same shapes as the network.
type Grads struct {
	W [][]float64
	B [][]float64
}

// NewGrads allocates zeroed gradients for n.
func (n *Net) NewGrads() *Grads {
	g := &Grads{}
	for l := range n.w {
		g.W = append(g.W, make([]float64, len(n.w[l])))
		g.B = append(g.B, make([]float64, len(n.b[l])))
	}
	return g
}

// Backward accumulates parameter gradients for one example into g and
// returns the gradient with respect to the input. gradOut is dLoss/dOutput.
func (n *Net) Backward(tape *Tape, gradOut []float64, g *Grads) []float64 {
	grad := append([]float64(nil), gradOut...)
	for l := len(n.w) - 1; l >= 0; l-- {
		in, out := n.sizes[l], n.sizes[l+1]
		pre := tape.preacts[l]
		input := tape.inputs[l]
		// Through the activation.
		for o := 0; o < out; o++ {
			grad[o] *= actDF(n.acts[l], pre[o])
		}
		// Parameter gradients.
		for o := 0; o < out; o++ {
			row := g.W[l][o*in : (o+1)*in]
			for i := 0; i < in; i++ {
				row[i] += grad[o] * input[i]
			}
			g.B[l][o] += grad[o]
		}
		// Input gradient.
		next := make([]float64, in)
		for i := 0; i < in; i++ {
			var s float64
			for o := 0; o < out; o++ {
				s += n.w[l][o*in+i] * grad[o]
			}
			next[i] = s
		}
		grad = next
	}
	return grad
}

// AdamStep applies one Adam update with the accumulated gradients (scaled by
// 1/batch) and zeroes them.
func (n *Net) AdamStep(g *Grads, lr float64, batch int) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	n.step++
	bc1 := 1 - math.Pow(beta1, float64(n.step))
	bc2 := 1 - math.Pow(beta2, float64(n.step))
	scale := 1.0
	if batch > 0 {
		scale = 1 / float64(batch)
	}
	for l := range n.w {
		for i := range n.w[l] {
			grad := g.W[l][i] * scale
			n.mw[l][i] = beta1*n.mw[l][i] + (1-beta1)*grad
			n.vw[l][i] = beta2*n.vw[l][i] + (1-beta2)*grad*grad
			n.w[l][i] -= lr * (n.mw[l][i] / bc1) / (math.Sqrt(n.vw[l][i]/bc2) + eps)
			g.W[l][i] = 0
		}
		for i := range n.b[l] {
			grad := g.B[l][i] * scale
			n.mb[l][i] = beta1*n.mb[l][i] + (1-beta1)*grad
			n.vb[l][i] = beta2*n.vb[l][i] + (1-beta2)*grad*grad
			n.b[l][i] -= lr * (n.mb[l][i] / bc1) / (math.Sqrt(n.vb[l][i]/bc2) + eps)
			g.B[l][i] = 0
		}
	}
}

// CopyFrom hard-copies parameters from src (same architecture required).
func (n *Net) CopyFrom(src *Net) {
	for l := range n.w {
		copy(n.w[l], src.w[l])
		copy(n.b[l], src.b[l])
	}
}

// SoftUpdate moves parameters toward src: θ ← (1−τ)θ + τ·θ_src.
func (n *Net) SoftUpdate(src *Net, tau float64) {
	for l := range n.w {
		for i := range n.w[l] {
			n.w[l][i] = (1-tau)*n.w[l][i] + tau*src.w[l][i]
		}
		for i := range n.b[l] {
			n.b[l][i] = (1-tau)*n.b[l][i] + tau*src.b[l][i]
		}
	}
}

// Snapshot is the serializable form of a network's parameters.
type Snapshot struct {
	Sizes []int
	Acts  []Activation
	W     [][]float64
	B     [][]float64
}

// Snapshot captures the current parameters (weights and biases only; the
// Adam state is training-local).
func (n *Net) Snapshot() Snapshot {
	s := Snapshot{
		Sizes: append([]int(nil), n.sizes...),
		Acts:  append([]Activation(nil), n.acts...),
	}
	for l := range n.w {
		s.W = append(s.W, append([]float64(nil), n.w[l]...))
		s.B = append(s.B, append([]float64(nil), n.b[l]...))
	}
	return s
}

// Restore loads a snapshot into the network; the architecture must match.
func (n *Net) Restore(s Snapshot) error {
	if len(s.Sizes) != len(n.sizes) {
		return errMismatch
	}
	for i, v := range s.Sizes {
		if n.sizes[i] != v {
			return errMismatch
		}
	}
	for l := range n.w {
		if len(s.W[l]) != len(n.w[l]) || len(s.B[l]) != len(n.b[l]) {
			return errMismatch
		}
		copy(n.w[l], s.W[l])
		copy(n.b[l], s.B[l])
	}
	return nil
}

type mismatchError struct{}

func (mismatchError) Error() string { return "nn: snapshot architecture mismatch" }

var errMismatch = mismatchError{}

// Clone returns a deep copy (including a reset Adam state).
func (n *Net) Clone() *Net {
	c := &Net{sizes: append([]int(nil), n.sizes...), acts: append([]Activation(nil), n.acts...)}
	for l := range n.w {
		c.w = append(c.w, append([]float64(nil), n.w[l]...))
		c.b = append(c.b, append([]float64(nil), n.b[l]...))
		c.mw = append(c.mw, make([]float64, len(n.w[l])))
		c.vw = append(c.vw, make([]float64, len(n.w[l])))
		c.mb = append(c.mb, make([]float64, len(n.b[l])))
		c.vb = append(c.vb, make([]float64, len(n.b[l])))
	}
	return c
}
