package nn

import (
	"math"
	"testing"

	"relm/internal/simrand"
)

func TestForwardShapes(t *testing.T) {
	rng := simrand.New(1)
	net := NewNet(rng, []int{3, 8, 2}, ReLU, Linear)
	out := net.Forward([]float64{0.1, -0.2, 0.3}, nil)
	if len(out) != 2 {
		t.Fatalf("output dim = %d", len(out))
	}
}

func TestTanhOutputBounded(t *testing.T) {
	rng := simrand.New(2)
	net := NewNet(rng, []int{4, 16, 4}, ReLU, Tanh)
	for i := 0; i < 50; i++ {
		in := []float64{rng.Norm(0, 5), rng.Norm(0, 5), rng.Norm(0, 5), rng.Norm(0, 5)}
		for _, v := range net.Forward(in, nil) {
			if v < -1 || v > 1 {
				t.Fatalf("tanh output out of range: %v", v)
			}
		}
	}
}

// TestGradientCheck compares backpropagated gradients against numerical
// differentiation — the canonical correctness test for the NN substrate.
func TestGradientCheck(t *testing.T) {
	rng := simrand.New(3)
	net := NewNet(rng, []int{3, 5, 2}, Tanh, Linear)
	x := []float64{0.3, -0.7, 0.2}
	target := []float64{1, -1}

	loss := func() float64 {
		out := net.Forward(x, nil)
		var l float64
		for i := range out {
			d := out[i] - target[i]
			l += d * d
		}
		return l
	}

	// Analytic gradients.
	var tape Tape
	out := net.Forward(x, &tape)
	gradOut := make([]float64, len(out))
	for i := range out {
		gradOut[i] = 2 * (out[i] - target[i])
	}
	grads := net.NewGrads()
	net.Backward(&tape, gradOut, grads)

	// Numerical check over a sample of weights in every layer.
	const eps = 1e-6
	for l := range net.w {
		for _, idx := range []int{0, len(net.w[l]) / 2, len(net.w[l]) - 1} {
			orig := net.w[l][idx]
			net.w[l][idx] = orig + eps
			up := loss()
			net.w[l][idx] = orig - eps
			down := loss()
			net.w[l][idx] = orig
			numeric := (up - down) / (2 * eps)
			analytic := grads.W[l][idx]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d weight %d: numeric %v vs analytic %v", l, idx, numeric, analytic)
			}
		}
		// And one bias per layer.
		origB := net.b[l][0]
		net.b[l][0] = origB + eps
		up := loss()
		net.b[l][0] = origB - eps
		down := loss()
		net.b[l][0] = origB
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-grads.B[l][0]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("layer %d bias: numeric %v vs analytic %v", l, numeric, grads.B[l][0])
		}
	}
}

func TestInputGradient(t *testing.T) {
	rng := simrand.New(4)
	net := NewNet(rng, []int{2, 4, 1}, Tanh, Linear)
	x := []float64{0.5, -0.5}
	var tape Tape
	net.Forward(x, &tape)
	gradIn := net.Backward(&tape, []float64{1}, net.NewGrads())
	if len(gradIn) != 2 {
		t.Fatalf("input gradient dim = %d", len(gradIn))
	}
	// Numerical check on input 0.
	const eps = 1e-6
	f := func(v float64) float64 {
		return net.Forward([]float64{v, -0.5}, nil)[0]
	}
	numeric := (f(0.5+eps) - f(0.5-eps)) / (2 * eps)
	if math.Abs(numeric-gradIn[0]) > 1e-5*(1+math.Abs(numeric)) {
		t.Fatalf("input gradient: numeric %v vs analytic %v", numeric, gradIn[0])
	}
}

func TestAdamLearnsRegression(t *testing.T) {
	rng := simrand.New(5)
	net := NewNet(rng, []int{1, 16, 1}, Tanh, Linear)
	target := func(x float64) float64 { return 2*x - 1 }

	mse := func() float64 {
		var l float64
		for i := 0; i < 20; i++ {
			x := float64(i) / 19
			d := net.Forward([]float64{x}, nil)[0] - target(x)
			l += d * d
		}
		return l / 20
	}
	before := mse()
	for epoch := 0; epoch < 300; epoch++ {
		grads := net.NewGrads()
		for i := 0; i < 20; i++ {
			x := float64(i) / 19
			var tape Tape
			out := net.Forward([]float64{x}, &tape)
			net.Backward(&tape, []float64{2 * (out[0] - target(x))}, grads)
		}
		net.AdamStep(grads, 0.01, 20)
	}
	after := mse()
	if after > before/10 || after > 0.02 {
		t.Fatalf("Adam did not learn: MSE %v → %v", before, after)
	}
}

func TestSoftUpdateMovesTowardSource(t *testing.T) {
	rng := simrand.New(6)
	a := NewNet(rng, []int{2, 3, 1}, ReLU, Linear)
	b := a.Clone()
	// Perturb b, then soft-update a toward b.
	b.w[0][0] += 10
	before := a.w[0][0]
	a.SoftUpdate(b, 0.1)
	if math.Abs(a.w[0][0]-(before+1)) > 1e-9 {
		t.Fatalf("soft update wrong: %v", a.w[0][0])
	}
}

func TestCopyFromAndCloneIndependence(t *testing.T) {
	rng := simrand.New(7)
	a := NewNet(rng, []int{2, 3, 1}, ReLU, Linear)
	c := a.Clone()
	c.w[0][0] += 5
	if a.w[0][0] == c.w[0][0] {
		t.Fatal("clone aliases the original")
	}
	a.CopyFrom(c)
	if a.w[0][0] != c.w[0][0] {
		t.Fatal("CopyFrom did not copy")
	}
}

func TestParamCount(t *testing.T) {
	rng := simrand.New(8)
	net := NewNet(rng, []int{3, 5, 2}, ReLU, Linear)
	// (3·5 + 5) + (5·2 + 2) = 32.
	if net.ParamCount() != 32 {
		t.Fatalf("ParamCount = %d", net.ParamCount())
	}
}

func TestNewNetPanicsOnBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNet(simrand.New(1), []int{3}, ReLU, Linear)
}
