// Package obs is the observability layer shared by the service, store,
// replica, and router subsystems: zero-allocation latency histograms
// recorded at every hot stage, a per-node request tracer propagating
// X-Relm-Trace across router/backend/replica hops, a leveled key=value
// logger, and Prometheus text exposition for all of it.
//
// The histogram is built for the hottest paths in the repository (WAL
// append, GP append, suggest/observe): Record is a few atomic adds on a
// randomly chosen shard — no locks, no allocation, no time formatting —
// so instrumentation can stay on permanently without moving the
// benchmark gates.
package obs

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count: one bucket per power of two of
// nanoseconds. Bucket 0 holds 0ns, bucket b (b >= 1) holds durations in
// [2^(b-1), 2^b) ns; the last bucket absorbs everything above ~73 years,
// i.e. it is effectively +Inf.
const NumBuckets = 64

// histShards stripes the counters to keep concurrent recorders off each
// other's cache lines. Must be a power of two.
const histShards = 8

// histShard is one stripe of a Histogram. The bucket array is updated
// with plain atomic adds; count/sum ride along for mean extraction.
type histShard struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	// Pad the trailing counters onto their own cache line so two shards
	// never share one.
	_ [48]byte
}

// Histogram is a fixed-bucket, power-of-two latency histogram. The zero
// value is ready to use; a nil *Histogram is a valid no-op receiver, so
// instrumented code paths need no "is observability on" branching.
type Histogram struct {
	shards [histShards]histShard
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a non-negative nanosecond duration onto its bucket.
func bucketOf(ns uint64) int {
	b := bits.Len64(ns)
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// Record adds one duration. Nil-safe; negative durations count as zero.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	h.RecordNs(int64(d))
}

// RecordNs is Record for a raw nanosecond count.
func (h *Histogram) RecordNs(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	// rand/v2's top-level generators are per-goroutine and allocation
	// free, so shard choice adds no contention of its own.
	sh := &h.shards[rand.Uint64()&(histShards-1)]
	sh.buckets[bucketOf(uint64(ns))].Add(1)
	sh.count.Add(1)
	sh.sum.Add(uint64(ns))
}

// Snapshot folds the shards into one consistent-enough view. Individual
// bucket reads are atomic; a snapshot taken during concurrent recording
// may be mid-update across buckets, which is fine for monitoring.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.buckets {
			s.Buckets[b] += sh.buckets[b].Load()
		}
		s.Count += sh.count.Load()
		s.SumNs += sh.sum.Load()
	}
	return s
}

// Snapshot is a point-in-time copy of a Histogram — plain values, safe to
// merge across nodes (the router sums per-node snapshots bucket-wise to
// get exact cluster-wide percentiles).
type Snapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	SumNs   uint64
}

// Merge adds another snapshot into this one.
func (s *Snapshot) Merge(o Snapshot) {
	for b := range s.Buckets {
		s.Buckets[b] += o.Buckets[b]
	}
	s.Count += o.Count
	s.SumNs += o.SumNs
}

// BucketUpperNs is bucket b's inclusive upper bound in nanoseconds; the
// last bucket reports +Inf.
func BucketUpperNs(b int) float64 {
	if b >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(b)) - 1
}

// MeanNs is the mean recorded duration in nanoseconds (0 when empty).
func (s Snapshot) MeanNs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}

// Quantile extracts the q-th quantile (0 < q <= 1) in nanoseconds,
// linearly interpolated within the landing bucket. Returns 0 when the
// histogram is empty.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for b := range s.Buckets {
		n := float64(s.Buckets[b])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBoundsNs(b)
			frac := (rank - cum) / n
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	lo, hi := bucketBoundsNs(NumBuckets - 1)
	_ = hi
	return lo
}

// bucketBoundsNs returns bucket b's interpolation bounds. The top bucket
// has no finite upper bound; clamp it to twice its lower bound so
// quantiles stay finite.
func bucketBoundsNs(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 0
	}
	lo = float64(uint64(1) << uint(b-1))
	hi = float64(uint64(1)<<uint(b)) - 1
	if b == NumBuckets-1 {
		hi = 2 * lo
	}
	return lo, hi
}

// Summary is the ready-to-serve percentile digest of one stage.
type Summary struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
}

// Summarize digests a snapshot into microsecond percentiles.
func (s Snapshot) Summarize() Summary {
	const us = 1e3
	return Summary{
		Count:  s.Count,
		MeanUs: s.MeanNs() / us,
		P50Us:  s.Quantile(0.50) / us,
		P90Us:  s.Quantile(0.90) / us,
		P99Us:  s.Quantile(0.99) / us,
		P999Us: s.Quantile(0.999) / us,
	}
}
