package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{math.MaxUint64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramRecordSnapshot(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(100 * time.Nanosecond)
	h.Record(100 * time.Microsecond)
	h.Record(-5) // clamps to zero
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if want := uint64(100 + 100_000); s.SumNs != want {
		t.Fatalf("sum = %d, want %d", s.SumNs, want)
	}
	if s.Buckets[0] != 2 {
		t.Fatalf("bucket 0 = %d, want 2 (zero + clamped negative)", s.Buckets[0])
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Record(time.Second) // must not panic
	h.RecordNs(5)
	s := h.Snapshot()
	if s.Count != 0 {
		t.Fatalf("nil histogram snapshot count = %d", s.Count)
	}
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestQuantileWithinBucketBounds(t *testing.T) {
	h := NewHistogram()
	// 1000 samples at exactly 1µs: all land in bucket covering [512,1023].
	for i := 0; i < 1000; i++ {
		h.Record(time.Microsecond)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		v := s.Quantile(q)
		if v < 512 || v > 1023 {
			t.Errorf("q=%v: %v outside landing bucket [512,1023]", q, v)
		}
	}
	if m := s.MeanNs(); m != 1000 {
		t.Errorf("mean = %v, want 1000", m)
	}
}

func TestQuantileOrdering(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10_000; i++ {
		h.RecordNs(int64(i))
	}
	s := h.Snapshot()
	p50, p90, p99 := s.Quantile(0.5), s.Quantile(0.9), s.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
	// Power-of-two buckets bound the error by 2x; check the right decade.
	if p50 < 2500 || p50 > 10_000 {
		t.Errorf("p50 = %v, expected within 2x of 5000", p50)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.RecordNs(100)
		b.RecordNs(100_000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 200 {
		t.Fatalf("merged count = %d, want 200", sa.Count)
	}
	if want := uint64(100*100 + 100*100_000); sa.SumNs != want {
		t.Fatalf("merged sum = %d, want %d", sa.SumNs, want)
	}
	// Half the mass is at ~100ns, half at ~100µs: p90 must land high.
	if p90 := sa.Quantile(0.90); p90 < 60_000 {
		t.Errorf("merged p90 = %v, want >= 60000", p90)
	}
}

// TestHistogramConcurrentRecordRead is the satellite race test: 64
// goroutines hammer Record while the main goroutine reads percentiles.
// Run under -race this proves the lock-free design is sound.
func TestHistogramConcurrentRecordRead(t *testing.T) {
	h := NewHistogram()
	const writers = 64
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.RecordNs(seed + int64(i))
			}
		}(int64(w + 1))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			_ = s.Quantile(0.5)
			_ = s.Quantile(0.99)
			_ = s.Quantile(0.999)
			_ = s.MeanNs()
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	s := h.Snapshot()
	if want := uint64(writers * perWriter); s.Count != want {
		t.Fatalf("final count = %d, want %d", s.Count, want)
	}
}

func TestSummarize(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(time.Millisecond)
	}
	sum := h.Snapshot().Summarize()
	if sum.Count != 1000 {
		t.Fatalf("count = %d", sum.Count)
	}
	if sum.MeanUs != 1000 {
		t.Errorf("mean_us = %v, want 1000", sum.MeanUs)
	}
	if sum.P99Us < 500 || sum.P99Us > 2100 {
		t.Errorf("p99_us = %v, expected within 2x of 1000", sum.P99Us)
	}
}

func BenchmarkObsHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var ns int64
		for pb.Next() {
			ns += 37
			h.RecordNs(ns)
		}
	})
}
