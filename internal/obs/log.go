package obs

import (
	"fmt"
	"log"
	"strings"
	"sync/atomic"
)

// Level is a log severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel maps a -log-level flag value onto a Level; unknown strings
// fall back to info.
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Logger is a leveled key=value logger over the standard log package, so
// output keeps the familiar timestamp prefix. A nil *Logger drops
// everything.
type Logger struct {
	level atomic.Int32
	node  string
}

// NewLogger builds a logger for node at the given minimum level.
func NewLogger(node string, level Level) *Logger {
	l := &Logger{node: node}
	l.level.Store(int32(level))
	return l
}

// SetLevel changes the minimum level at runtime.
func (l *Logger) SetLevel(level Level) {
	if l != nil {
		l.level.Store(int32(level))
	}
}

func (l *Logger) enabled(level Level) bool {
	return l != nil && level >= Level(l.level.Load())
}

// kv renders alternating key, value pairs as " k=v k=v"; odd trailing
// arguments are rendered under the key "arg".
func kv(args []any) string {
	if len(args) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(args); i += 2 {
		b.WriteByte(' ')
		if i+1 < len(args) {
			fmt.Fprintf(&b, "%v=%v", args[i], args[i+1])
		} else {
			fmt.Fprintf(&b, "arg=%v", args[i])
		}
	}
	return b.String()
}

func (l *Logger) emit(level Level, msg string, args []any) {
	if !l.enabled(level) {
		return
	}
	log.Printf("level=%s node=%s msg=%q%s", level, l.node, msg, kv(args))
}

// Debug logs msg with key=value pairs at debug level.
func (l *Logger) Debug(msg string, args ...any) { l.emit(LevelDebug, msg, args) }

// Info logs msg with key=value pairs at info level.
func (l *Logger) Info(msg string, args ...any) { l.emit(LevelInfo, msg, args) }

// Warn logs msg with key=value pairs at warn level.
func (l *Logger) Warn(msg string, args ...any) { l.emit(LevelWarn, msg, args) }

// Error logs msg with key=value pairs at error level.
func (l *Logger) Error(msg string, args ...any) { l.emit(LevelError, msg, args) }

// Logf adapts the logger to the `func(format, ...any)` hooks used by the
// store, replica, and router packages; lines land at the given level.
func (l *Logger) Logf(level Level) func(format string, args ...any) {
	return func(format string, args ...any) {
		if !l.enabled(level) {
			return
		}
		log.Printf("level=%s node=%s msg=%q", level, l.node, fmt.Sprintf(format, args...))
	}
}
