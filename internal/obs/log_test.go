package obs

import (
	"bytes"
	"log"
	"strings"
	"testing"
)

func captureLog(t *testing.T, fn func()) string {
	t.Helper()
	var buf bytes.Buffer
	old := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(old)
	fn()
	return buf.String()
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug":   LevelDebug,
		"INFO":    LevelInfo,
		" warn ":  LevelWarn,
		"warning": LevelWarn,
		"error":   LevelError,
		"bogus":   LevelInfo,
		"":        LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	l := NewLogger("n1", LevelWarn)
	out := captureLog(t, func() {
		l.Debug("d")
		l.Info("i")
		l.Warn("w", "key", 7)
		l.Error("e")
	})
	if strings.Contains(out, `msg="d"`) || strings.Contains(out, `msg="i"`) {
		t.Fatalf("below-threshold lines emitted: %q", out)
	}
	if !strings.Contains(out, `level=warn node=n1 msg="w" key=7`) {
		t.Fatalf("warn line missing/malformed: %q", out)
	}
	if !strings.Contains(out, `level=error`) {
		t.Fatalf("error line missing: %q", out)
	}
}

func TestLoggerSetLevelAndNil(t *testing.T) {
	var nilLogger *Logger
	nilLogger.Info("dropped") // must not panic
	nilLogger.SetLevel(LevelDebug)

	l := NewLogger("n", LevelError)
	out := captureLog(t, func() {
		l.Info("hidden")
		l.SetLevel(LevelDebug)
		l.Debug("shown")
	})
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("SetLevel not respected: %q", out)
	}
}

func TestLoggerLogfAdapter(t *testing.T) {
	l := NewLogger("n2", LevelInfo)
	infof := l.Logf(LevelInfo)
	debugf := l.Logf(LevelDebug)
	out := captureLog(t, func() {
		infof("shipped %d segments to %s", 3, "b")
		debugf("suppressed")
	})
	if !strings.Contains(out, `msg="shipped 3 segments to b"`) {
		t.Fatalf("Logf line missing: %q", out)
	}
	if strings.Contains(out, "suppressed") {
		t.Fatalf("debug Logf leaked at info level: %q", out)
	}
}
