package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4). It deduplicates HELP/TYPE headers per family so
// several labeled samples of one family can be emitted independently.
type PromWriter struct {
	w    io.Writer
	seen map[string]bool
	err  error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *PromWriter) header(name, help, typ string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// labelString renders alternating key, value pairs as {k="v",...}.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter emits one counter sample; labels are alternating key, value.
func (p *PromWriter) Counter(name, help string, value float64, labels ...string) {
	p.header(name, help, "counter")
	p.printf("%s%s %s\n", name, labelString(labels), formatValue(value))
}

// Gauge emits one gauge sample; labels are alternating key, value.
func (p *PromWriter) Gauge(name, help string, value float64, labels ...string) {
	p.header(name, help, "gauge")
	p.printf("%s%s %s\n", name, labelString(labels), formatValue(value))
}

// StageHistograms emits every stage's snapshot as one Prometheus
// histogram family (seconds), labeled stage="<name>". Only the occupied
// bucket range is rendered (plus +Inf), keeping the scrape compact while
// staying valid cumulative-bucket output.
func (p *PromWriter) StageHistograms(name, help string, snaps map[string]Snapshot) {
	if len(snaps) == 0 {
		return
	}
	p.header(name, help, "histogram")
	stages := make([]string, 0, len(snaps))
	for stage := range snaps {
		stages = append(stages, stage)
	}
	sort.Strings(stages)
	for _, stage := range stages {
		s := snaps[stage]
		first, last := -1, -1
		for b := range s.Buckets {
			if s.Buckets[b] != 0 {
				if first < 0 {
					first = b
				}
				last = b
			}
		}
		var cum uint64
		if first >= 0 {
			for b := first; b <= last && b < NumBuckets-1; b++ {
				cum += s.Buckets[b]
				le := strconv.FormatFloat(BucketUpperNs(b)/1e9, 'g', -1, 64)
				p.printf("%s_bucket{stage=%q,le=%q} %d\n", name, stage, le, cum)
			}
		}
		p.printf("%s_bucket{stage=%q,le=\"+Inf\"} %d\n", name, stage, s.Count)
		p.printf("%s_sum{stage=%q} %s\n", name, stage, formatValue(float64(s.SumNs)/1e9))
		p.printf("%s_count{stage=%q} %d\n", name, stage, s.Count)
	}
}
