package obs

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPromCounterGauge(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Counter("relm_sessions_created_total", "Sessions created.", 42)
	p.Gauge("relm_breaker_open", "Breaker state.", 1, "backend", "b1")
	p.Gauge("relm_breaker_open", "Breaker state.", 0, "backend", "b2")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE relm_sessions_created_total counter") {
		t.Fatalf("missing counter header: %q", out)
	}
	if !strings.Contains(out, "relm_sessions_created_total 42") {
		t.Fatalf("missing counter sample: %q", out)
	}
	if strings.Count(out, "# TYPE relm_breaker_open gauge") != 1 {
		t.Fatalf("gauge header not deduplicated: %q", out)
	}
	if !strings.Contains(out, `relm_breaker_open{backend="b1"} 1`) ||
		!strings.Contains(out, `relm_breaker_open{backend="b2"} 0`) {
		t.Fatalf("missing gauge samples: %q", out)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Gauge("g", "h", 1, "k", `va"l\ue`+"\n")
	if !strings.Contains(sb.String(), `{k="va\"l\\ue\n"}`) {
		t.Fatalf("label not escaped: %q", sb.String())
	}
}

func TestPromStageHistograms(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(time.Microsecond)
	}
	h.Record(time.Millisecond)
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.StageHistograms("relm_stage_latency_seconds", "Per-stage latency.",
		map[string]Snapshot{"wal.append": h.Snapshot()})
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE relm_stage_latency_seconds histogram") {
		t.Fatalf("missing histogram header: %q", out)
	}
	if !strings.Contains(out, `relm_stage_latency_seconds_bucket{stage="wal.append",le="+Inf"} 101`) {
		t.Fatalf("missing +Inf bucket: %q", out)
	}
	if !strings.Contains(out, `relm_stage_latency_seconds_count{stage="wal.append"} 101`) {
		t.Fatalf("missing count: %q", out)
	}
	// Buckets must be cumulative: parse every bucket sample in order and
	// assert the counts never decrease.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "relm_stage_latency_seconds_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("buckets not cumulative at %q (prev %d)", line, prev)
		}
		prev = v
	}
	if prev != 101 {
		t.Fatalf("last cumulative bucket = %d, want 101", prev)
	}
}

func TestPromEmptyStageHistograms(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.StageHistograms("x", "h", nil)
	if sb.Len() != 0 {
		t.Fatalf("empty snapshot map produced output: %q", sb.String())
	}
	// A registered-but-never-recorded stage still emits valid output.
	p.StageHistograms("x", "h", map[string]Snapshot{"idle": {}})
	out := sb.String()
	if !strings.Contains(out, `x_bucket{stage="idle",le="+Inf"} 0`) {
		t.Fatalf("empty stage missing +Inf bucket: %q", out)
	}
}
