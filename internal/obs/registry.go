package obs

import (
	"sort"
	"sync"
)

// Registry is a named collection of histograms — one per pipeline stage.
// A nil *Registry is valid and hands out nil histograms, which record
// into the void, so callers wire `reg.Histogram("wal.append")` without
// caring whether observability is enabled.
type Registry struct {
	mu    sync.RWMutex
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{hists: make(map[string]*Histogram)}
}

// Histogram returns the histogram registered under name, creating it on
// first use. Idempotent: every caller asking for the same stage name
// shares one histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshots returns a stable-ordered copy of every stage's snapshot.
func (r *Registry) Snapshots() map[string]Snapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make(map[string]Snapshot, len(r.hists))
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	r.mu.RUnlock()
	return out
}

// Names returns the registered stage names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}
