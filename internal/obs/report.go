package obs

// HistJSON is the mergeable wire form of one histogram snapshot: the full
// power-of-two bucket array plus count/sum. Adding two of these
// bucket-wise is exact, so multi-node (router fan-out) and multi-run
// (loadgen report) aggregation computes percentiles over the union of
// observations, never an average of percentiles.
type HistJSON struct {
	Count   uint64   `json:"count"`
	SumNs   uint64   `json:"sum_ns"`
	Buckets []uint64 `json:"buckets"`
}

// JSON renders the snapshot for the wire.
func (s Snapshot) JSON() HistJSON {
	return HistJSON{
		Count:   s.Count,
		SumNs:   s.SumNs,
		Buckets: append([]uint64(nil), s.Buckets[:]...),
	}
}

// Snapshot reconstitutes a wire histogram. Buckets beyond NumBuckets fold
// into the last (+Inf) bucket, so a snapshot from a build with more
// buckets still merges losslessly at the top end; missing buckets read as
// zero.
func (h HistJSON) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.Count
	s.SumNs = h.SumNs
	for i, n := range h.Buckets {
		if i >= NumBuckets {
			s.Buckets[NumBuckets-1] += n
			continue
		}
		s.Buckets[i] += n
	}
	return s
}

// MergeHists folds any number of wire histograms into one exact snapshot.
func MergeHists(hs ...HistJSON) Snapshot {
	var out Snapshot
	for _, h := range hs {
		s := h.Snapshot()
		out.Merge(s)
	}
	return out
}
