package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"
	"sync"
	"time"
)

// TraceHeader carries the request trace ID across hops: router → backend
// proxying and primary → follower replica shipping.
const TraceHeader = "X-Relm-Trace"

// Span is one timed step inside a trace: a router hop, a service handler
// stage, a replica ingest, etc.
type Span struct {
	Name    string  `json:"name"`
	StartUs float64 `json:"start_us"` // offset from trace start
	DurUs   float64 `json:"dur_us"`
}

// Trace accumulates the spans of one request on one node. Spans are
// appended from the handler goroutine; the ring reader copies under the
// same mutex.
type Trace struct {
	mu     sync.Mutex
	id     string
	node   string
	method string
	path   string
	start  time.Time
	spans  []Span
}

// maxSpans bounds a runaway trace; beyond this, spans are dropped.
const maxSpans = 64

// ID returns the trace's identifier ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// AddSpan records a span named name that began at start and ends now.
// Nil-safe, so instrumented handlers can call it unconditionally.
func (t *Trace) AddSpan(name string, start time.Time) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, Span{
			Name:    name,
			StartUs: float64(start.Sub(t.start)) / 1e3,
			DurUs:   float64(now.Sub(start)) / 1e3,
		})
	}
	t.mu.Unlock()
}

// TraceRecord is the finished, serializable form of a trace.
type TraceRecord struct {
	ID      string  `json:"id"`
	Node    string  `json:"node"`
	Method  string  `json:"method"`
	Path    string  `json:"path"`
	Start   string  `json:"start"`
	TotalUs float64 `json:"total_us"`
	Spans   []Span  `json:"spans"`
}

func (t *Trace) record(end time.Time) TraceRecord {
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	return TraceRecord{
		ID:      t.id,
		Node:    t.node,
		Method:  t.method,
		Path:    t.path,
		Start:   t.start.UTC().Format(time.RFC3339Nano),
		TotalUs: float64(end.Sub(t.start)) / 1e3,
		Spans:   spans,
	}
}

type traceKey struct{}

// WithTrace attaches a trace to ctx.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// MintTraceID returns a fresh random trace ID ("t-" + 12 hex bytes).
func MintTraceID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "t-000000000000000000000000"
	}
	return "t-" + hex.EncodeToString(b[:])
}

// ringSize bounds the in-memory recent-trace buffer per node.
const ringSize = 256

// Tracer owns a node's recent-trace ring and the HTTP middleware that
// populates it. A nil *Tracer middleware would be useless, so Tracer is
// always constructed; only its slow-log and ring are per-node state.
type Tracer struct {
	node    string
	slow    time.Duration
	slowLog func(format string, args ...any)

	mu   sync.Mutex
	ring [ringSize]TraceRecord
	n    uint64 // total traces recorded
}

// NewTracer builds a tracer for node. slow <= 0 disables slow-request
// logging; slowLog defaults to a no-op when nil.
func NewTracer(node string, slow time.Duration, slowLog func(format string, args ...any)) *Tracer {
	return &Tracer{node: node, slow: slow, slowLog: slowLog}
}

// Start begins a trace for an inbound request, reusing the upstream
// trace ID when the X-Relm-Trace header is present and minting one
// otherwise.
func (tr *Tracer) Start(r *http.Request) *Trace {
	id := strings.TrimSpace(r.Header.Get(TraceHeader))
	if id == "" {
		id = MintTraceID()
	}
	return &Trace{
		id:     id,
		node:   tr.node,
		method: r.Method,
		path:   r.URL.Path,
		start:  time.Now(),
	}
}

// Finish closes a trace: pushes it onto the ring and emits the slow-log
// line when the total exceeds the threshold.
func (tr *Tracer) Finish(t *Trace) {
	if t == nil {
		return
	}
	end := time.Now()
	rec := t.record(end)
	tr.mu.Lock()
	tr.ring[tr.n%ringSize] = rec
	tr.n++
	tr.mu.Unlock()
	if tr.slow > 0 && end.Sub(t.start) >= tr.slow && tr.slowLog != nil {
		tr.slowLog("slow request trace=%s node=%s method=%s path=%s total_us=%.1f spans=%d",
			rec.ID, rec.Node, rec.Method, rec.Path, rec.TotalUs, len(rec.Spans))
		for _, sp := range rec.Spans {
			tr.slowLog("slow request trace=%s span=%s start_us=%.1f dur_us=%.1f",
				rec.ID, sp.Name, sp.StartUs, sp.DurUs)
		}
	}
}

// Recent returns up to limit most-recent traces, newest first.
// limit <= 0 means the full ring.
func (tr *Tracer) Recent(limit int) []TraceRecord {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := tr.n
	avail := int(n)
	if avail > ringSize {
		avail = ringSize
	}
	if limit <= 0 || limit > avail {
		limit = avail
	}
	out := make([]TraceRecord, 0, limit)
	for i := 0; i < limit; i++ {
		out = append(out, tr.ring[(n-1-uint64(i))%ringSize])
	}
	return out
}

// Find returns the most recent trace with the given ID, if any.
func (tr *Tracer) Find(id string) (TraceRecord, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := tr.n
	avail := int(n)
	if avail > ringSize {
		avail = ringSize
	}
	for i := 0; i < avail; i++ {
		rec := tr.ring[(n-1-uint64(i))%ringSize]
		if rec.ID == id {
			return rec, true
		}
	}
	return TraceRecord{}, false
}

// Middleware wraps an HTTP handler so every request carries a *Trace in
// its context, the trace ID is echoed back in the response header, and
// the finished trace lands in the ring.
func (tr *Tracer) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t := tr.Start(r)
		w.Header().Set(TraceHeader, t.ID())
		next.ServeHTTP(w, r.WithContext(WithTrace(r.Context(), t)))
		tr.Finish(t)
	})
}
