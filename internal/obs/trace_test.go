package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTracerMiddlewareMintsAndEchoes(t *testing.T) {
	tr := NewTracer("node-a", 0, nil)
	var seen *Trace
	h := tr.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = TraceFrom(r.Context())
		start := time.Now()
		seen.AddSpan("work", start)
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/sessions/x", nil))
	if seen == nil {
		t.Fatal("no trace in request context")
	}
	id := rec.Header().Get(TraceHeader)
	if id == "" || id != seen.ID() {
		t.Fatalf("response header trace %q != context trace %q", id, seen.ID())
	}
	if !strings.HasPrefix(id, "t-") {
		t.Fatalf("minted id %q lacks t- prefix", id)
	}
	got, ok := tr.Find(id)
	if !ok {
		t.Fatalf("trace %s not in ring", id)
	}
	if got.Node != "node-a" || got.Path != "/v1/sessions/x" {
		t.Fatalf("ring record = %+v", got)
	}
	if len(got.Spans) != 1 || got.Spans[0].Name != "work" {
		t.Fatalf("spans = %+v", got.Spans)
	}
}

func TestTracerMiddlewarePropagatesUpstreamID(t *testing.T) {
	tr := NewTracer("node-b", 0, nil)
	h := tr.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions", nil)
	req.Header.Set(TraceHeader, "t-upstream1234")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(TraceHeader); got != "t-upstream1234" {
		t.Fatalf("echoed trace = %q, want upstream id", got)
	}
	if _, ok := tr.Find("t-upstream1234"); !ok {
		t.Fatal("upstream id not recorded in ring")
	}
}

func TestTracerRingBoundsAndOrder(t *testing.T) {
	tr := NewTracer("n", 0, nil)
	h := tr.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	for i := 0; i < ringSize+10; i++ {
		req := httptest.NewRequest(http.MethodGet, "/ping", nil)
		req.Header.Set(TraceHeader, fmt.Sprintf("t-%06d", i))
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
	all := tr.Recent(0)
	if len(all) != ringSize {
		t.Fatalf("ring holds %d, want %d", len(all), ringSize)
	}
	if all[0].ID != fmt.Sprintf("t-%06d", ringSize+9) {
		t.Fatalf("newest = %s", all[0].ID)
	}
	if _, ok := tr.Find("t-000001"); ok {
		t.Fatal("evicted trace still findable")
	}
	top := tr.Recent(5)
	if len(top) != 5 || top[4].ID != fmt.Sprintf("t-%06d", ringSize+5) {
		t.Fatalf("Recent(5) = %v", top)
	}
}

func TestTracerSlowLog(t *testing.T) {
	var lines []string
	tr := NewTracer("n", time.Nanosecond, func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	h := tr.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		time.Sleep(50 * time.Microsecond)
		TraceFrom(r.Context()).AddSpan("slow.stage", start)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/slow", nil))
	if len(lines) < 2 {
		t.Fatalf("slow log lines = %d, want request line + span line", len(lines))
	}
	if !strings.Contains(lines[0], "slow request") || !strings.Contains(lines[0], "path=/slow") {
		t.Fatalf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "span=slow.stage") {
		t.Fatalf("span line = %q", lines[1])
	}
}

func TestTraceSpanCapAndNilSafety(t *testing.T) {
	var nilTrace *Trace
	nilTrace.AddSpan("x", time.Now()) // must not panic
	if nilTrace.ID() != "" {
		t.Fatal("nil trace has id")
	}
	tr := &Trace{id: "t-cap", start: time.Now()}
	for i := 0; i < maxSpans+20; i++ {
		tr.AddSpan("s", time.Now())
	}
	rec := tr.record(time.Now())
	if len(rec.Spans) != maxSpans {
		t.Fatalf("spans = %d, want cap %d", len(rec.Spans), maxSpans)
	}
}

func BenchmarkTraceSpan(b *testing.B) {
	tr := &Trace{id: "t-bench", start: time.Now(), spans: make([]Span, 0, maxSpans)}
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.AddSpan("stage", start)
		tr.mu.Lock()
		tr.spans = tr.spans[:0]
		tr.mu.Unlock()
	}
}
