// Package profile defines the application-profile data model produced by the
// simulator and consumed by the tuners, mirroring the artifacts the paper
// collects with Thoth, the JMX GC profiler, Intel PAT, and custom Spark
// instrumentation (§4.1):
//
//   - a timeline of JVM pool usage per container,
//   - a timeline of container resource usage (CPU, disk, RSS),
//   - a timeline of the application cache and shuffle pools,
//   - an event log of tasks and GC events.
//
// StatsGenerator turns a Profile into the Table 6 statistics RelM and GBO use.
package profile

import (
	"fmt"

	"relm/internal/conf"
)

// Sample is one point of a timeline: value V at simulated time T (seconds).
type Sample struct {
	T float64
	V float64
}

// Timeline is a time-ordered series of samples.
type Timeline []Sample

// Append adds a sample; callers must append in non-decreasing time order.
func (tl *Timeline) Append(t, v float64) { *tl = append(*tl, Sample{T: t, V: v}) }

// Max returns the maximum value of the timeline (0 if empty).
func (tl Timeline) Max() float64 {
	var m float64
	for _, s := range tl {
		if s.V > m {
			m = s.V
		}
	}
	return m
}

// At returns the value in effect at time t (last sample with T <= t).
func (tl Timeline) At(t float64) float64 {
	var v float64
	for _, s := range tl {
		if s.T > t {
			break
		}
		v = s.V
	}
	return v
}

// Mean returns the time-weighted mean of the timeline over its span.
func (tl Timeline) Mean() float64 {
	if len(tl) == 0 {
		return 0
	}
	if len(tl) == 1 {
		return tl[0].V
	}
	var area, span float64
	for i := 1; i < len(tl); i++ {
		dt := tl[i].T - tl[i-1].T
		area += tl[i-1].V * dt
		span += dt
	}
	if span == 0 {
		return tl[len(tl)-1].V
	}
	return area / span
}

// GCEvent records one garbage collection observed in a container.
type GCEvent struct {
	T          float64 // start time, seconds
	Full       bool    // full GC (vs young GC)
	Pause      float64 // stop-the-world pause, seconds
	HeapBefore float64 // MB used before the collection
	HeapAfter  float64 // MB used after the collection
	OldAfter   float64 // MB in the Old pool after the collection
	CacheAtGC  float64 // MB of cache storage live at the collection
	Running    int     // tasks running in the container at the collection
}

// TaskEvent records one task attempt from the application event log.
type TaskEvent struct {
	Stage     int
	Index     int
	Container int
	Attempt   int
	Start     float64
	End       float64
	GCTime    float64 // seconds this attempt spent in GC pauses
	SpillMB   float64 // shuffle bytes spilled to disk
	ShuffleMB float64 // shuffle bytes processed
	Failed    bool
	OOM       bool // failed with an out-of-memory error
}

// ContainerProfile is the per-container slice of the profile.
type ContainerProfile struct {
	ID        int
	Node      int
	HeapCapMB float64 // JVM heap size
	PhysCapMB float64 // resource-manager physical memory limit

	HeapUsed    Timeline // JVM heap occupancy, MB
	OldUsed     Timeline // Old-generation occupancy, MB
	RSS         Timeline // resident set size, MB
	CacheUsed   Timeline // application cache pool, MB
	ShuffleUsed Timeline // application shuffle pool, MB

	GCEvents []GCEvent

	// FirstTaskHeapMB is the heap occupancy at the first task submission,
	// the paper's estimator for the Code Overhead pool Mi.
	FirstTaskHeapMB float64

	Killed     bool
	KillReason string
	KilledAt   float64
}

// Profile is the complete artifact of one profiled application run.
type Profile struct {
	Workload string
	Config   conf.Config
	// HeapSizeMB is the heap of each container under Config (derived from
	// the cluster's per-node budget).
	HeapSizeMB float64
	// CoresPerNode records the cluster's physical core count, used by the
	// tuners to bound Task Concurrency.
	CoresPerNode int

	Duration float64 // wall-clock seconds
	Aborted  bool    // the job failed permanently

	Containers []*ContainerProfile
	Tasks      []TaskEvent

	CPUUtil  Timeline // cluster-average CPU utilization, 0..1
	DiskUtil Timeline // cluster-average disk utilization, 0..1

	// CPUShareAvg/DiskShareAvg are the raw average resource demands of the
	// application's tasks (without the measurement baseline of OS, GC and
	// service threads included in the utilization timelines). The Eq 4
	// concurrency models divide by per-task shares, so they use these.
	CPUShareAvg  float64
	DiskShareAvg float64

	// CacheHits / CacheRequests give the cache hit ratio H from the
	// application log: partitions served from cache over partitions asked.
	CacheHits     int
	CacheRequests int

	// SpilledMB / ShuffledMB give the data spillage fraction S.
	SpilledMB  float64
	ShuffledMB float64

	ContainerFailures int
}

// HitRatio returns H, the cache hit ratio (1 when the app does not cache).
func (p *Profile) HitRatio() float64 {
	if p.CacheRequests == 0 {
		return 1
	}
	return float64(p.CacheHits) / float64(p.CacheRequests)
}

// SpillFraction returns S, the fraction of shuffle data spilled to disk.
func (p *Profile) SpillFraction() float64 {
	if p.ShuffledMB == 0 {
		return 0
	}
	f := p.SpilledMB / p.ShuffledMB
	if f > 1 {
		f = 1
	}
	return f
}

// MaxHeapUtilization returns the peak heap occupancy across containers as a
// fraction of heap capacity — the metric plotted in Figures 4(b), 6(b), 7(b).
func (p *Profile) MaxHeapUtilization() float64 {
	var m float64
	for _, c := range p.Containers {
		if c.HeapCapMB <= 0 {
			continue
		}
		u := c.HeapUsed.Max() / c.HeapCapMB
		if u > m {
			m = u
		}
	}
	return m
}

// GCOverhead returns the average fraction of task time spent in GC pauses —
// the per-task GC overhead metric of Figures 7(c), 8, 9, 10.
func (p *Profile) GCOverhead() float64 {
	var gc, total float64
	for _, t := range p.Tasks {
		dur := t.End - t.Start
		if dur <= 0 {
			continue
		}
		gc += t.GCTime
		total += dur
	}
	if total == 0 {
		return 0
	}
	f := gc / total
	if f > 1 {
		f = 1
	}
	return f
}

// String summarizes the profile for logs.
func (p *Profile) String() string {
	status := "ok"
	if p.Aborted {
		status = "ABORTED"
	}
	return fmt.Sprintf("%s [%s] %.1fmin %d containers %d tasks H=%.2f S=%.2f failures=%d",
		p.Workload, status, p.Duration/60, len(p.Containers), len(p.Tasks),
		p.HitRatio(), p.SpillFraction(), p.ContainerFailures)
}
