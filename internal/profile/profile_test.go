package profile

import (
	"math"
	"testing"

	"relm/internal/conf"
)

func TestTimelineMaxAtMean(t *testing.T) {
	var tl Timeline
	tl.Append(0, 10)
	tl.Append(10, 30)
	tl.Append(20, 20)
	if tl.Max() != 30 {
		t.Fatalf("Max = %v", tl.Max())
	}
	if tl.At(5) != 10 || tl.At(10) != 30 || tl.At(15) != 30 || tl.At(25) != 20 {
		t.Fatal("At wrong")
	}
	// Time-weighted mean over [0,20]: 10 for 10s, 30 for 10s → 20.
	if m := tl.Mean(); math.Abs(m-20) > 1e-9 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestTimelineEdgeCases(t *testing.T) {
	var empty Timeline
	if empty.Max() != 0 || empty.Mean() != 0 || empty.At(5) != 0 {
		t.Fatal("empty timeline should yield zeros")
	}
	one := Timeline{{T: 0, V: 7}}
	if one.Mean() != 7 {
		t.Fatal("single-sample mean should be the value")
	}
}

func TestHitRatioAndSpill(t *testing.T) {
	p := &Profile{CacheHits: 3, CacheRequests: 10, SpilledMB: 25, ShuffledMB: 100}
	if p.HitRatio() != 0.3 {
		t.Fatalf("H = %v", p.HitRatio())
	}
	if p.SpillFraction() != 0.25 {
		t.Fatalf("S = %v", p.SpillFraction())
	}
	// No cache requests → H = 1 (nothing missed).
	if (&Profile{}).HitRatio() != 1 {
		t.Fatal("no-cache H should be 1")
	}
	if (&Profile{}).SpillFraction() != 0 {
		t.Fatal("no-shuffle S should be 0")
	}
	// Spill fraction is capped at 1.
	over := &Profile{SpilledMB: 200, ShuffledMB: 100}
	if over.SpillFraction() != 1 {
		t.Fatal("S must cap at 1")
	}
}

func TestMaxHeapUtilization(t *testing.T) {
	c := &ContainerProfile{HeapCapMB: 100}
	c.HeapUsed.Append(0, 40)
	c.HeapUsed.Append(1, 80)
	p := &Profile{Containers: []*ContainerProfile{c}}
	if u := p.MaxHeapUtilization(); u != 0.8 {
		t.Fatalf("heap util = %v", u)
	}
}

func TestGCOverhead(t *testing.T) {
	p := &Profile{Tasks: []TaskEvent{
		{Start: 0, End: 10, GCTime: 2},
		{Start: 0, End: 10, GCTime: 4},
	}}
	if o := p.GCOverhead(); math.Abs(o-0.3) > 1e-9 {
		t.Fatalf("GC overhead = %v", o)
	}
	if (&Profile{}).GCOverhead() != 0 {
		t.Fatal("no tasks → 0")
	}
}

// buildProfile fabricates a profile with known pool values to validate the
// §4.1 statistics derivations.
func buildProfile(withFullGC bool) *Profile {
	const (
		mi    = 100.0
		cache = 1000.0
		mu    = 300.0
		shuf  = 50.0
		p     = 2
	)
	c := &ContainerProfile{HeapCapMB: 4404, FirstTaskHeapMB: mi}
	c.CacheUsed.Append(0, cache)
	c.ShuffleUsed.Append(0, float64(p)*shuf)
	c.OldUsed.Append(0, mi+cache+800) // old peak incl. transient garbage
	if withFullGC {
		c.GCEvents = append(c.GCEvents, GCEvent{
			T: 10, Full: true,
			HeapAfter: mi + cache + float64(p)*(mu+shuf),
			CacheAtGC: cache,
			Running:   p,
		})
	}
	return &Profile{
		Workload:      "synthetic",
		Config:        conf.Config{ContainersPerNode: 1, TaskConcurrency: p, NewRatio: 2, SurvivorRatio: 8, CacheCapacity: 0.6},
		HeapSizeMB:    4404,
		CoresPerNode:  8,
		Containers:    []*ContainerProfile{c},
		CacheHits:     3,
		CacheRequests: 10,
	}
}

func TestGenerateWithFullGC(t *testing.T) {
	st := Generate(buildProfile(true))
	if !st.HadFullGC {
		t.Fatal("full GC should be detected")
	}
	if math.Abs(st.MiMB-100) > 1 {
		t.Fatalf("Mi = %v, want 100", st.MiMB)
	}
	if math.Abs(st.McMB-1000) > 1 {
		t.Fatalf("Mc = %v, want 1000", st.McMB)
	}
	// Mu = (heapAfter − Mi − cache)/p − shuffle/p = (700)/2 − 50 = 300.
	if math.Abs(st.MuMB-300) > 1 {
		t.Fatalf("Mu = %v, want 300", st.MuMB)
	}
	if math.Abs(st.MsMB-50) > 1 {
		t.Fatalf("Ms = %v, want 50", st.MsMB)
	}
	if st.H != 0.3 {
		t.Fatalf("H = %v", st.H)
	}
}

func TestGenerateWithoutFullGCOverestimates(t *testing.T) {
	st := Generate(buildProfile(false))
	if st.HadFullGC {
		t.Fatal("no full GC expected")
	}
	// Fallback charges the whole Old peak (minus Mi) to the tasks:
	// (1900 − 100)/2 = 900, a 3× over-estimate of the true 300.
	if st.MuMB < 2*300 {
		t.Fatalf("fallback Mu = %v, expected an over-estimate", st.MuMB)
	}
}

func TestGenerateCarriesRunConfig(t *testing.T) {
	st := Generate(buildProfile(true))
	if st.N != 1 || st.P != 2 || st.MhMB != 4404 || st.CoresPerNode != 8 {
		t.Fatalf("run config not carried: %+v", st)
	}
}

func TestStatsString(t *testing.T) {
	if Generate(buildProfile(true)).String() == "" {
		t.Fatal("Stats.String empty")
	}
	p := buildProfile(true)
	if p.String() == "" {
		t.Fatal("Profile.String empty")
	}
}
