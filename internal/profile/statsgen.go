package profile

import (
	"fmt"

	"relm/internal/stats"
)

// Stats is the set of statistics derived from an application profile —
// Table 6 of the paper. Memory quantities are MB.
type Stats struct {
	N       int     // containers per node in the profiled run
	MhMB    float64 // heap size of the profiled containers
	CPUAvg  float64 // average CPU usage, 0..1
	DiskAvg float64 // average disk usage, 0..1
	MiMB    float64 // Code Overhead, 90th percentile
	McMB    float64 // Cache Storage, 90th percentile of per-container maxima
	MsMB    float64 // per-task Task Shuffle, 90th percentile
	MuMB    float64 // per-task Task Unmanaged, 90th percentile
	P       int     // task concurrency of the profiled run
	H       float64 // cache hit ratio
	S       float64 // data spillage fraction

	// HadFullGC reports whether the profile contained any full GC events.
	// Without them Mu falls back to the maximum Old-pool occupancy, an
	// over-estimate of up to two orders of magnitude (§4.1, Figure 22).
	HadFullGC bool

	// CoresPerNode is carried from the profile for concurrency bounds.
	CoresPerNode int
}

// Generate derives Table 6 statistics from a profile, following §4.1:
//
//   - Mi is the 90th-percentile (across containers) heap occupancy at the
//     first task submission.
//   - Mc is the 90th-percentile of per-container maximum cache usage.
//   - Ms assumes every concurrently running task contributes equally to the
//     observed shuffle pool.
//   - Mu is measured at full-GC events only: heap-after minus code overhead
//     minus live cache, split across the running tasks; the 90th percentile
//     over all full-GC observations is reported. When the profile contains
//     no full GC, the maximum Old-pool occupancy (minus Mi and cache) is
//     used instead and HadFullGC is false.
func Generate(p *Profile) Stats {
	cpu, disk := p.CPUShareAvg, p.DiskShareAvg
	if cpu == 0 {
		cpu = p.CPUUtil.Mean()
	}
	if disk == 0 {
		disk = p.DiskUtil.Mean()
	}
	s := Stats{
		N:            p.Config.ContainersPerNode,
		MhMB:         p.HeapSizeMB,
		CPUAvg:       cpu,
		DiskAvg:      disk,
		P:            p.Config.TaskConcurrency,
		H:            p.HitRatio(),
		S:            p.SpillFraction(),
		CoresPerNode: p.CoresPerNode,
	}

	var mis, mcs, mss, mus, oldPeaks []float64
	for _, c := range p.Containers {
		mis = append(mis, c.FirstTaskHeapMB)
		mcs = append(mcs, c.CacheUsed.Max())
		if peak := c.ShuffleUsed.Max(); peak > 0 {
			mss = append(mss, peak/float64(maxInt(1, s.P)))
		}
		for _, gc := range c.GCEvents {
			if !gc.Full {
				continue
			}
			s.HadFullGC = true
			running := maxInt(1, gc.Running)
			perTask := (gc.HeapAfter - c.FirstTaskHeapMB - gc.CacheAtGC) / float64(running)
			// Subtract the shuffle component: the instantaneous Task Shuffle
			// value is available from instrumentation; the remainder is the
			// unmanaged pool.
			perTask -= c.ShuffleUsed.At(gc.T) / float64(running)
			if perTask < 0 {
				perTask = 0
			}
			mus = append(mus, perTask)
		}
		oldPeaks = append(oldPeaks, c.OldUsed.Max())
	}

	s.MiMB = stats.Percentile(mis, 90)
	s.McMB = stats.Percentile(mcs, 90)
	s.MsMB = stats.Percentile(mss, 90)

	if s.HadFullGC {
		s.MuMB = stats.Percentile(mus, 90)
	} else {
		// Fall back to the maximum Old-pool occupancy. Without full-GC
		// events the Old contents cannot be attributed between cache blocks,
		// prematurely tenured garbage and genuine task data, so everything
		// beyond the code overhead is (over-)charged to the tasks — the up
		// to two-orders-of-magnitude over-estimate of Figure 22.
		old := stats.Percentile(oldPeaks, 90)
		s.MuMB = (old - s.MiMB) / float64(maxInt(1, s.P))
	}
	if s.MuMB < 1 {
		s.MuMB = 1
	}
	return s
}

// String renders the statistics in Table 6's layout.
func (s Stats) String() string {
	return fmt.Sprintf(
		"N=%d Mh=%.0fMB CPUavg=%.0f%% Diskavg=%.0f%% Mi=%.0fMB Mc=%.0fMB Ms=%.0fMB Mu=%.0fMB P=%d H=%.2f S=%.2f fullGC=%v",
		s.N, s.MhMB, s.CPUAvg*100, s.DiskAvg*100, s.MiMB, s.McMB, s.MsMB, s.MuMB, s.P, s.H, s.S, s.HadFullGC)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
