package replica_test

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relm/internal/replica"
	"relm/internal/service"
	"relm/internal/store"
)

// BenchmarkReplicaShipIngest is the follower's hot path: one offset-checked
// fsynced append of a 64 KiB shipped chunk.
func BenchmarkReplicaShipIngest(b *testing.B) {
	s, err := replica.New(replica.Options{Self: "b", Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	chunk := []byte(strings.Repeat("x", 64<<10))
	b.SetBytes(int64(len(chunk)))
	b.ResetTimer()
	var off int64
	for i := 0; i < b.N; i++ {
		size, err := s.Ingest("a", 1, off, 0, chunk)
		if err != nil {
			b.Fatal(err)
		}
		off = size
	}
}

// BenchmarkReplicaShipTail is the shipper's steady state: one WAL append
// on the primary, then a full ship cycle (status fetch + tail chunk over
// HTTP to a real follower handler) that ships just the delta.
func BenchmarkReplicaShipTail(b *testing.B) {
	follower, err := replica.New(replica.Options{Self: "b", Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer follower.Close()
	m := service.NewManager(service.Options{NodeID: "b", Workers: 1, TTL: time.Hour, Replica: follower})
	defer m.Close()
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()

	primary, err := store.OpenFile(b.TempDir(), store.FileOptions{SegmentBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer primary.Close()
	set, err := replica.New(replica.Options{
		Self:     "a",
		Peers:    []replica.Peer{{Name: "b", URL: srv.URL}},
		Source:   primary,
		Interval: time.Hour, // dormant loop; the benchmark drives cycles
	})
	if err != nil {
		b.Fatal(err)
	}
	defer set.Close()

	pad := strings.Repeat("x", 4<<10)
	ev := &store.Event{Type: store.EventClose, ID: pad, Time: time.Unix(0, 0).UTC()}
	if _, err := primary.Append(ev); err != nil {
		b.Fatal(err)
	}
	if err := set.SyncNow(); err != nil {
		b.Fatal(err) // catch-up outside the timed loop
	}
	b.SetBytes(int64(4 << 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := primary.Append(ev); err != nil {
			b.Fatal(err)
		}
		if err := set.SyncNow(); err != nil {
			b.Fatal(err)
		}
	}
}
