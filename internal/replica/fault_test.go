package replica_test

import (
	"errors"
	"strings"
	"testing"

	"relm/internal/fault"
	"relm/internal/replica"
)

// TestInjectedShipFaultSeversAndCatchesUp: an armed replica.ship.chunk
// fault severs replication to the follower — SyncNow cycles fail and the
// follower records ship errors — and after disarm the next cycle resumes
// from the follower's last ack and mirrors the log byte-exactly.
func TestInjectedShipFaultSeversAndCatchesUp(t *testing.T) {
	rig := newShipRig(t, 0)
	rig.append(t, 5)
	t.Cleanup(fault.DisarmAll)

	err := fault.Apply(fault.Schedule{Seed: 3, Rules: []fault.Rule{
		{Point: "replica.ship.chunk", Action: "error", Match: "b", Count: 100, Window: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.set.SyncNow(); err == nil {
		t.Fatal("SyncNow under severed shipping reported success")
	} else if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("SyncNow error %v does not chain fault.ErrInjected", err)
	}
	st := rig.set.Status()
	if len(st.Followers) != 1 || st.Followers[0].ShipErrors == 0 {
		t.Fatalf("severed follower shows no ship errors: %+v", st.Followers)
	}
	if st.Followers[0].LastError == "" || !strings.Contains(st.Followers[0].LastError, "injected") {
		t.Fatalf("follower last error %q does not mention the injected fault", st.Followers[0].LastError)
	}

	// Disarm: the next cycle ships everything the fault held back.
	fault.DisarmAll()
	if err := rig.set.SyncNow(); err != nil {
		t.Fatalf("SyncNow after disarm: %v", err)
	}
	rig.assertMirrored(t)
}

// TestInjectedIngestFaultRefusesChunkCleanly: the follower-side fault
// refuses a chunk before any disk I/O; the shipper's cycle fails, and the
// retry after disarm lands the identical bytes (offset protocol intact).
func TestInjectedIngestFaultRefusesChunkCleanly(t *testing.T) {
	rig := newShipRig(t, 0)
	rig.append(t, 3)
	t.Cleanup(fault.DisarmAll)

	err := fault.Apply(fault.Schedule{Seed: 4, Rules: []fault.Rule{
		{Point: "replica.ingest", Action: "error", Match: "a", Count: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.set.SyncNow(); err == nil {
		t.Fatal("SyncNow with refusing follower reported success")
	}
	fault.DisarmAll()
	if err := rig.set.SyncNow(); err != nil {
		t.Fatalf("SyncNow after disarm: %v", err)
	}
	rig.assertMirrored(t)
}

// TestIngestLatencyFaultStillAcks: latency is observed, not a failure —
// the delayed chunk must still be ingested and acked.
func TestIngestLatencyFaultStillAcks(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	err := fault.Apply(fault.Schedule{Seed: 5, Rules: []fault.Rule{
		{Point: "replica.ingest", Action: "latency", Arg: 1, Count: 10, Window: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := replica.New(replica.Options{Self: "b", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if size, err := s.Ingest("a", 1, 0, 0, []byte("hello ")); err != nil || size != 6 {
		t.Fatalf("delayed chunk: size=%d err=%v", size, err)
	}
}
