package replica_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"relm/internal/service"
)

// TestShipTracePropagation: every request of one ship cycle carries the
// same trace ID, so the follower's trace ring groups a whole catch-up
// pass — the status fetch and each segment chunk — under one identifier.
func TestShipTracePropagation(t *testing.T) {
	rig := newShipRig(t, 512)
	rig.append(t, 10)
	if err := rig.set.SyncNow(); err != nil {
		t.Fatalf("sync: %v", err)
	}

	resp, err := http.Get(rig.srv.URL + "/v1/traces")
	if err != nil {
		t.Fatalf("traces: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces: status %d", resp.StatusCode)
	}
	var tr service.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("decode traces: %v", err)
	}

	// Group the follower's traces by ID and find the ship cycle's: the
	// trace ID that covers both the status fetch and at least one segment
	// ingest.
	paths := make(map[string]map[string]bool)
	for _, rec := range tr.Traces {
		if !strings.HasPrefix(rec.ID, "t-") {
			t.Fatalf("trace without minted ID: %+v", rec)
		}
		if paths[rec.ID] == nil {
			paths[rec.ID] = make(map[string]bool)
		}
		paths[rec.ID][rec.Path] = true
	}
	found := false
	for _, p := range paths {
		if p["/v1/replica/status"] && p["/v1/replica/segments"] {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no single trace ID spans status fetch and segment ingest: %v", paths)
	}
}
