// Package replica is the WAL replication subsystem: an asynchronous
// log-shipping pipeline that keeps a byte-for-byte copy of each node's
// write-ahead log on one or two follower nodes, so a kill -9 of a primary
// loses nothing that was journaled.
//
// Every node runs one Set, which plays both roles at once:
//
//   - shipper (primary role): a background loop streams the local store's
//     snapshot and WAL segments to the node's followers — sealed segments
//     whole, the active segment as a growing tail — using a catch-up
//     protocol: the follower reports its high-water byte offset per
//     segment, the shipper sends only the delta. Follower placement is
//     rendezvous hashing on the primary's node name, so in a cluster every
//     node is primary for its own log and follower for a share of the
//     others'.
//
//   - ingest (follower role): shipped bytes are appended to a per-primary
//     replica directory under the replica root and fsynced before the ack,
//     so a replica is exactly as durable as the log it mirrors. Offset
//     checks make ingest idempotent: a retried or reordered chunk is
//     rejected with the current size and the shipper resumes from there.
//
// Because segments are append-only and the snapshot is installed
// atomically, a replica directory is at all times a valid store directory:
// promotion (see internal/router) fences further ingest and replays it
// with the same store.OpenFile + service restore path a restarting node
// uses, inheriting the store's crash-recovery semantics — a torn tail in
// the replicated active segment is truncated, corruption in a sealed
// replica fails loudly.
package replica

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"relm/internal/fault"
	"relm/internal/obs"
	"relm/internal/store"
)

// fpIngest is the follower-side failpoint, evaluated per ingested chunk
// with the primary's name as the tag. An injected error refuses the chunk
// before any disk I/O: the shipper sees a failed cycle and retries from
// the follower's last ack, so the replica stays consistent — just behind.
var fpIngest = fault.Register("replica.ingest")

// Peer names one node of the replication mesh.
type Peer struct {
	Name string
	URL  string
}

// Source is the local log a Set ships from; *store.File implements it.
type Source interface {
	// Segments lists the live log's segments in index order; every
	// reported byte is stable and readable.
	Segments() []store.SegmentInfo
	// ReadSegmentAt reads segment bytes at an offset (os.ErrNotExist when
	// a concurrent compaction pruned the segment).
	ReadSegmentAt(index uint64, off int64, p []byte) (int, error)
	// ReadSnapshotRaw returns the latest compacted snapshot, nil if none.
	ReadSnapshotRaw() ([]byte, error)
}

// Options configures a Set. Zero values select sensible defaults.
type Options struct {
	// Self is this node's name; it is excluded from follower placement and
	// stamped on status responses.
	Self string
	// Peers is the cluster membership (including or excluding Self — Self
	// is filtered out). Followers are the top Factor peers by rendezvous
	// score on Self's name.
	Peers []Peer
	// Factor is how many followers receive this node's log (default 1,
	// capped at len(Peers) after removing Self).
	Factor int
	// Dir is the replica root this node ingests other primaries' logs
	// into (one subdirectory per primary). Empty disables the follower
	// role: ingest requests are rejected.
	Dir string
	// Source is the local log to ship. Nil disables the shipper role.
	Source Source
	// Interval is the ship poll period (default 500ms): the active
	// segment's tail is shipped at most this stale.
	Interval time.Duration
	// ChunkBytes caps one ship request's body (default 1 MiB).
	ChunkBytes int
	// Client overrides the HTTP client used for shipping.
	Client *http.Client
	// Logf, when non-nil, receives replication log lines.
	Logf func(format string, args ...any)
	// ShipHist, when set, records the latency of each ship cycle (one
	// shipOnce pass across all followers); IngestHist records each ingest
	// append/snapshot install on the follower side.
	ShipHist   *obs.Histogram
	IngestHist *obs.Histogram
}

func (o *Options) fill() {
	if o.Factor <= 0 {
		o.Factor = 1
	}
	if o.Interval <= 0 {
		o.Interval = 500 * time.Millisecond
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 1 << 20
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
}

// ErrFenced rejects ingest into a promoted replica: after promotion the
// replica's sessions live elsewhere, and accepting more of the old
// primary's log would fork history. Surfaced to zombie primaries as HTTP
// 410.
var ErrFenced = errors.New("replica: primary promoted, ingest fenced")

// ErrNoReplica reports a promotion request for a primary this node holds
// no replica of.
var ErrNoReplica = errors.New("replica: no replica of that primary")

// OffsetError rejects an out-of-place ingest chunk, carrying the replica
// segment's current size so the shipper can resume from it (HTTP 409).
type OffsetError struct{ Size int64 }

func (e *OffsetError) Error() string {
	return fmt.Sprintf("replica: offset mismatch, segment has %d bytes", e.Size)
}

// Set is one node's replication state: the shipper feeding this node's
// followers and the ingest side holding other primaries' replicas. Safe
// for concurrent use.
type Set struct {
	opts      Options
	followers []*followerState

	mu        sync.Mutex
	primaries map[string]*primaryState
	promoted  uint64

	quit      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// primaryState is the ingest-side state of one primary's replica.
type primaryState struct {
	mu         sync.Mutex
	name       string
	dir        string
	fenced     bool
	snapHash   string
	lastIngest time.Time
	ingests    uint64
	ingestB    int64
}

// New builds a Set, adopting any replica directories already under
// Options.Dir (a restarted follower resumes where it left off), and
// starts the shipper loop when a Source and at least one follower are
// configured. Call Close to stop shipping.
func New(opts Options) (*Set, error) {
	opts.fill()
	s := &Set{
		opts:      opts,
		primaries: make(map[string]*primaryState),
		quit:      make(chan struct{}),
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("replica: create dir: %w", err)
		}
		entries, err := os.ReadDir(opts.Dir)
		if err != nil {
			return nil, fmt.Errorf("replica: read dir: %w", err)
		}
		for _, e := range entries {
			if !e.IsDir() || !validPrimaryName(e.Name()) {
				continue
			}
			p := &primaryState{name: e.Name(), dir: filepath.Join(opts.Dir, e.Name())}
			if buf, err := os.ReadFile(filepath.Join(p.dir, "snapshot.json")); err == nil {
				p.snapHash = hashHex(buf)
			}
			s.primaries[e.Name()] = p
		}
	}
	for _, peer := range Followers(opts.Self, opts.Peers, opts.Factor) {
		s.followers = append(s.followers, &followerState{peer: peer})
	}
	if opts.Source != nil && len(s.followers) > 0 {
		s.wg.Add(1)
		go s.shipLoop()
	}
	return s, nil
}

// Close stops the shipper loop.
func (s *Set) Close() {
	s.closeOnce.Do(func() { close(s.quit) })
	s.wg.Wait()
}

func (s *Set) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// validPrimaryName rejects names that would escape the replica root or
// collide with file machinery. Node IDs are flag values, not hostile, but
// the ingest endpoint is network-facing.
func validPrimaryName(name string) bool {
	if name == "" || name == "." || name == ".." || len(name) > 128 {
		return false
	}
	return !strings.ContainsAny(name, "/\\\x00")
}

// primary returns (creating if asked) the ingest state for one primary.
func (s *Set) primary(name string, create bool) (*primaryState, error) {
	if !validPrimaryName(name) {
		return nil, fmt.Errorf("replica: bad primary name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.primaries[name]; ok {
		return p, nil
	}
	if !create {
		return nil, ErrNoReplica
	}
	if s.opts.Dir == "" {
		return nil, errors.New("replica: no replica dir configured")
	}
	dir := filepath.Join(s.opts.Dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("replica: create replica dir: %w", err)
	}
	p := &primaryState{name: name, dir: dir}
	s.primaries[name] = p
	return p, nil
}

// Ingest appends one shipped chunk to the replica of primary's segment,
// fsyncing before it returns: once acked, the bytes survive a follower
// machine crash. The append is accepted only at the replica segment's
// exact current size — anything else returns an OffsetError carrying the
// size to resume from, which also makes retries idempotent. min is the
// primary's lowest live segment index; replica segments below it were
// compacted away on the primary (their events are folded into the shipped
// snapshot) and are pruned here.
func (s *Set) Ingest(primaryName string, segment uint64, offset int64, min uint64, data []byte) (int64, error) {
	if s.opts.IngestHist != nil {
		start := time.Now()
		defer func() { s.opts.IngestHist.Record(time.Since(start)) }()
	}
	if segment == 0 {
		return 0, errors.New("replica: segment index must be >= 1")
	}
	if fp := fpIngest.EvalTag(primaryName); fp != nil {
		switch fp.Action {
		case fault.Latency, fault.Stall:
			fp.Sleep()
		default:
			return 0, fmt.Errorf("replica: ingest %s: %w", primaryName, fp.Err)
		}
	}
	p, err := s.primary(primaryName, true)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fenced {
		return 0, ErrFenced
	}
	path := filepath.Join(p.dir, store.SegmentFileName(segment))
	var size int64
	if st, err := os.Stat(path); err == nil {
		size = st.Size()
	} else if !errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("replica: stat segment: %w", err)
	}
	if offset != size {
		return size, &OffsetError{Size: size}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return size, fmt.Errorf("replica: open segment: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return size, fmt.Errorf("replica: append: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return size, fmt.Errorf("replica: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return size, fmt.Errorf("replica: close segment: %w", err)
	}
	p.ingests++
	p.ingestB += int64(len(data))
	p.lastIngest = time.Now()
	if min > 1 {
		s.pruneLocked(p, min)
	}
	return size + int64(len(data)), nil
}

// pruneLocked deletes replica segments below the primary's min live
// index. Safe because the primary only prunes a segment once a snapshot
// covering it is durable — and the snapshot ships before the segment
// deltas that carry the new min. Callers hold p.mu.
func (s *Set) pruneLocked(p *primaryState, min uint64) {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		idx, ok := store.ParseSegmentFileName(e.Name())
		if !ok || idx >= min {
			continue
		}
		_ = os.Remove(filepath.Join(p.dir, e.Name()))
	}
}

// IngestSnapshot installs a shipped snapshot atomically (temp + fsync +
// rename — the same recipe local compaction uses), so the replica never
// holds a torn snapshot. hash is the shipper's content hash, echoed back
// on status so the shipper skips unchanged snapshots.
func (s *Set) IngestSnapshot(primaryName string, hash string, data []byte) error {
	if s.opts.IngestHist != nil {
		start := time.Now()
		defer func() { s.opts.IngestHist.Record(time.Since(start)) }()
	}
	p, err := s.primary(primaryName, true)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fenced {
		return ErrFenced
	}
	if err := store.AtomicWriteFile(filepath.Join(p.dir, "snapshot.json"), data); err != nil {
		return err
	}
	if hash == "" {
		hash = hashHex(data)
	}
	p.snapHash = hash
	p.ingests++
	p.ingestB += int64(len(data))
	p.lastIngest = time.Now()
	return nil
}

// Promote fences the replica of primaryName against further ingest and
// returns its directory for replay. Idempotent: promoting an already
// fenced replica returns the same directory, so a retried failover does
// not error out.
func (s *Set) Promote(primaryName string) (string, error) {
	p, err := s.primary(primaryName, false)
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.fenced {
		p.fenced = true
		s.mu.Lock()
		s.promoted++
		s.mu.Unlock()
		s.logf("replica: promoted replica of %s (%s)", primaryName, p.dir)
	}
	return p.dir, nil
}

// --- status ----------------------------------------------------------------

// SegmentStatus is one replica segment's high-water mark.
type SegmentStatus struct {
	Index uint64 `json:"index"`
	Bytes int64  `json:"bytes"`
}

// PrimaryStatus is the follower's view of one primary it holds a replica
// for — the catch-up protocol's ack: the shipper reads it and sends only
// bytes past the high-water marks.
type PrimaryStatus struct {
	Primary       string          `json:"primary"`
	Segments      []SegmentStatus `json:"segments,omitempty"`
	Bytes         int64           `json:"bytes"`
	SnapshotHash  string          `json:"snapshot_hash,omitempty"`
	SnapshotBytes int64           `json:"snapshot_bytes,omitempty"`
	LastIngest    time.Time       `json:"last_ingest,omitzero"`
	Promoted      bool            `json:"promoted,omitempty"`
}

// FollowerStatus is the shipper's view of one follower it feeds.
type FollowerStatus struct {
	Follower       string    `json:"follower"`
	URL            string    `json:"url"`
	SegmentsBehind int       `json:"segments_behind"`
	BytesBehind    int64     `json:"bytes_behind"`
	LastAck        time.Time `json:"last_ack,omitzero"`
	LastError      string    `json:"last_error,omitempty"`
	Ships          uint64    `json:"ships"`
	ShipErrors     uint64    `json:"ship_errors"`
	Promoted       bool      `json:"promoted,omitempty"`
}

// StatusResponse is the wire form of GET /v1/replica/status: the node's
// two replication roles side by side.
type StatusResponse struct {
	Node      string           `json:"node"`
	Primaries []PrimaryStatus  `json:"primaries"`
	Followers []FollowerStatus `json:"followers"`
}

// IngestResponse is the wire form of a segment/snapshot ingest ack. Size
// is the replica segment's size after (200) or instead of (409) the
// append.
type IngestResponse struct {
	Size  int64  `json:"size"`
	Error string `json:"error,omitempty"`
}

// Status reports both roles: the replicas this node holds (with per-
// segment high-water marks, for the catch-up protocol) and the lag of
// each follower this node ships to.
func (s *Set) Status() StatusResponse {
	out := StatusResponse{Node: s.opts.Self, Primaries: []PrimaryStatus{}, Followers: []FollowerStatus{}}
	s.mu.Lock()
	prims := make([]*primaryState, 0, len(s.primaries))
	for _, p := range s.primaries {
		prims = append(prims, p)
	}
	s.mu.Unlock()
	sort.Slice(prims, func(i, j int) bool { return prims[i].name < prims[j].name })
	for _, p := range prims {
		p.mu.Lock()
		ps := PrimaryStatus{
			Primary:      p.name,
			SnapshotHash: p.snapHash,
			LastIngest:   p.lastIngest,
			Promoted:     p.fenced,
		}
		segs, _ := store.ListSegmentFiles(p.dir)
		for _, seg := range segs {
			ps.Segments = append(ps.Segments, SegmentStatus{Index: seg.Index, Bytes: seg.Bytes})
			ps.Bytes += seg.Bytes
		}
		if st, err := os.Stat(filepath.Join(p.dir, "snapshot.json")); err == nil {
			ps.SnapshotBytes = st.Size()
		}
		p.mu.Unlock()
		out.Primaries = append(out.Primaries, ps)
	}
	for _, f := range s.followers {
		out.Followers = append(out.Followers, f.snapshot())
	}
	return out
}

// Stats are the flattened counters merged into /v1/metrics.
type Stats struct {
	Followers      int     // ship targets configured
	SegmentsBehind int     // total segments not fully acked, all followers
	BytesBehind    int64   // total unacked bytes, all followers
	LastAckAgeSec  float64 // staleness of the oldest follower ack
	Ships          uint64  // successful ship requests
	ShipErrors     uint64  // failed ship requests
	Primaries      int     // replicas held for other nodes
	Ingests        uint64  // ingest requests accepted
	IngestBytes    int64   // bytes ingested
	Promotions     uint64  // replicas this node has had promoted
}

// Stats flattens the Set's state into counters for /v1/metrics.
func (s *Set) Stats() Stats {
	var st Stats
	st.Followers = len(s.followers)
	now := time.Now()
	for _, f := range s.followers {
		fs := f.snapshot()
		st.SegmentsBehind += fs.SegmentsBehind
		st.BytesBehind += fs.BytesBehind
		st.Ships += fs.Ships
		st.ShipErrors += fs.ShipErrors
		if !fs.LastAck.IsZero() {
			if age := now.Sub(fs.LastAck).Seconds(); age > st.LastAckAgeSec {
				st.LastAckAgeSec = age
			}
		}
	}
	s.mu.Lock()
	st.Primaries = len(s.primaries)
	st.Promotions = s.promoted
	prims := make([]*primaryState, 0, len(s.primaries))
	for _, p := range s.primaries {
		prims = append(prims, p)
	}
	s.mu.Unlock()
	for _, p := range prims {
		p.mu.Lock()
		st.Ingests += p.ingests
		st.IngestBytes += p.ingestB
		p.mu.Unlock()
	}
	return st
}
