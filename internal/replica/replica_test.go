package replica

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFollowersPlacement(t *testing.T) {
	peers := []Peer{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}}

	one := Followers("a", peers, 1)
	if len(one) != 1 || one[0].Name == "a" {
		t.Fatalf("factor 1: got %v", one)
	}
	two := Followers("a", peers, 2)
	if len(two) != 2 || two[0].Name != one[0].Name {
		t.Fatalf("factor 2 must extend factor 1's choice: %v then %v", one, two)
	}
	// Deterministic: same inputs, same placement, any peer order.
	rev := []Peer{{Name: "d"}, {Name: "c"}, {Name: "b"}, {Name: "a"}}
	if got := Followers("a", rev, 2); got[0].Name != two[0].Name || got[1].Name != two[1].Name {
		t.Fatalf("placement depends on peer order: %v vs %v", got, two)
	}
	// Factor capped at the peer count, self excluded.
	all := Followers("a", peers, 10)
	if len(all) != 3 {
		t.Fatalf("want 3 followers for 4 peers minus self, got %v", all)
	}
	for _, p := range all {
		if p.Name == "a" {
			t.Fatal("self placed as its own follower")
		}
	}
	// Every primary gets a follower set; loads differ by primary.
	seen := make(map[string]bool)
	for _, self := range []string{"a", "b", "c", "d"} {
		f := Followers(self, peers, 1)
		if len(f) != 1 {
			t.Fatalf("primary %s got %v", self, f)
		}
		seen[f[0].Name] = true
	}
	if len(seen) < 2 {
		t.Fatalf("rendezvous placement parked every primary on one follower: %v", seen)
	}
}

func TestIngestOffsetProtocol(t *testing.T) {
	s, err := New(Options{Self: "b", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if size, err := s.Ingest("a", 1, 0, 0, []byte("hello ")); err != nil || size != 6 {
		t.Fatalf("first chunk: size=%d err=%v", size, err)
	}
	// Wrong offset (replayed chunk): rejected with the current size.
	_, err = s.Ingest("a", 1, 0, 0, []byte("hello "))
	var oe *OffsetError
	if !errors.As(err, &oe) || oe.Size != 6 {
		t.Fatalf("replayed chunk: err=%v", err)
	}
	// Gap (future offset): also rejected with the current size.
	if _, err := s.Ingest("a", 1, 99, 0, []byte("x")); !errors.As(err, &oe) || oe.Size != 6 {
		t.Fatalf("gap chunk: err=%v", err)
	}
	if size, err := s.Ingest("a", 1, 6, 0, []byte("world\n")); err != nil || size != 12 {
		t.Fatalf("resume chunk: size=%d err=%v", size, err)
	}
	data, err := os.ReadFile(filepath.Join(s.opts.Dir, "a", "wal-000001.jsonl"))
	if err != nil || string(data) != "hello world\n" {
		t.Fatalf("replica content %q, err %v", data, err)
	}

	if _, err := s.Ingest("a", 0, 0, 0, []byte("x")); err == nil {
		t.Fatal("segment 0 accepted")
	}
	if _, err := s.Ingest("../evil", 1, 0, 0, []byte("x")); err == nil {
		t.Fatal("path-escaping primary name accepted")
	}
}

func TestIngestPruneBelowMin(t *testing.T) {
	s, err := New(Options{Self: "b", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for seg := uint64(1); seg <= 3; seg++ {
		if _, err := s.Ingest("a", seg, 0, 0, []byte("data\n")); err != nil {
			t.Fatal(err)
		}
	}
	// A chunk carrying min=3 prunes replica segments 1 and 2.
	if _, err := s.Ingest("a", 3, 5, 3, []byte("more\n")); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if len(st.Primaries) != 1 {
		t.Fatalf("primaries: %+v", st.Primaries)
	}
	segs := st.Primaries[0].Segments
	if len(segs) != 1 || segs[0].Index != 3 || segs[0].Bytes != 10 {
		t.Fatalf("after prune: %+v", segs)
	}
}

func TestPromoteFencesIngest(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Self: "b", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.Promote("ghost"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("promoting an unheld primary: %v", err)
	}
	if _, err := s.Ingest("a", 1, 0, 0, []byte("x\n")); err != nil {
		t.Fatal(err)
	}
	pdir, err := s.Promote("a")
	if err != nil || pdir != filepath.Join(dir, "a") {
		t.Fatalf("promote: dir=%q err=%v", pdir, err)
	}
	// Idempotent; further ingest is fenced.
	if again, err := s.Promote("a"); err != nil || again != pdir {
		t.Fatalf("re-promote: dir=%q err=%v", again, err)
	}
	if _, err := s.Ingest("a", 1, 2, 0, []byte("y\n")); !errors.Is(err, ErrFenced) {
		t.Fatalf("ingest after promote: %v", err)
	}
	if err := s.IngestSnapshot("a", "", []byte("{}")); !errors.Is(err, ErrFenced) {
		t.Fatalf("snapshot after promote: %v", err)
	}
	if got := s.Stats().Promotions; got != 1 {
		t.Fatalf("promotions counter %d, want 1", got)
	}
}

func TestRestartAdoptsReplicaDirs(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Options{Self: "b", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Ingest("a", 1, 0, 0, []byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if err := s1.IngestSnapshot("a", "cafe", []byte(`{"fence":1}`)); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2, err := New(Options{Self: "b", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Status()
	if len(st.Primaries) != 1 || st.Primaries[0].Primary != "a" {
		t.Fatalf("restart lost the replica: %+v", st.Primaries)
	}
	// The adopted snapshot hash must reflect the on-disk content, so the
	// shipper's first status fetch does not re-ship an unchanged snapshot.
	if st.Primaries[0].SnapshotHash != hashHex([]byte(`{"fence":1}`)) {
		t.Fatalf("adopted snapshot hash %q", st.Primaries[0].SnapshotHash)
	}
}
