package replica

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"relm/internal/fault"
	"relm/internal/obs"
)

// fpShipChunk is the shipper's failpoint, evaluated per shipped segment
// chunk with the follower's name as the tag — a schedule can delay or
// sever replication to one follower without touching the data path.
// Injected errors fail the ship cycle like any transport error: the
// follower's lag grows and the next cycle retries from its ack.
var fpShipChunk = fault.Register("replica.ship.chunk")

// The shipper half of a Set: one background loop that, every Interval,
// brings each follower up to date with the local log. A cycle per
// follower is: fetch the follower's replica status (its ack: per-segment
// high-water offsets plus the snapshot hash it holds), ship the snapshot
// if it changed, then ship each segment's missing suffix in index order,
// chunked. Shipping the snapshot FIRST matters: segment requests carry
// the primary's minimum live segment index and the follower prunes its
// replica below it — that is only safe once the snapshot that folded
// those segments in has landed.

// followerState tracks one ship target.
type followerState struct {
	peer Peer

	mu          sync.Mutex
	segsBehind  int
	bytesBehind int64
	lastAck     time.Time
	lastErr     string
	ships       uint64
	shipErrors  uint64
	fenced      bool // the follower promoted our replica: stop shipping
	fencedLog   bool
}

func (f *followerState) snapshot() FollowerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FollowerStatus{
		Follower:       f.peer.Name,
		URL:            f.peer.URL,
		SegmentsBehind: f.segsBehind,
		BytesBehind:    f.bytesBehind,
		LastAck:        f.lastAck,
		LastError:      f.lastErr,
		Ships:          f.ships,
		ShipErrors:     f.shipErrors,
		Promoted:       f.fenced,
	}
}

func (f *followerState) ack() {
	f.mu.Lock()
	f.ships++
	f.lastAck = time.Now()
	f.lastErr = ""
	f.mu.Unlock()
}

func (f *followerState) fail(err error) {
	f.mu.Lock()
	f.shipErrors++
	f.lastErr = err.Error()
	f.mu.Unlock()
}

// Followers returns the replication targets for the named primary: the
// top factor peers (self excluded) by rendezvous score on the primary's
// name — the same highest-random-weight recipe the router places sessions
// with, so follower load spreads evenly and deterministically without
// any coordination.
func Followers(self string, peers []Peer, factor int) []Peer {
	var out []Peer
	for _, p := range peers {
		if p.Name != self && p.Name != "" {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := rendezvous(out[i].Name, self), rendezvous(out[j].Name, self)
		if si != sj {
			return si > sj
		}
		return out[i].Name < out[j].Name
	})
	if factor < len(out) {
		out = out[:factor]
	}
	return out
}

// rendezvous scores placing key on the named node: FNV-1a over
// "name\x00key" through a splitmix64 finalizer (shared recipe with
// internal/router — the finalizer keeps short-string hashes from biasing
// toward one node).
func rendezvous(name, key string) uint64 {
	const prime = 1099511628211
	x := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		x ^= uint64(name[i])
		x *= prime
	}
	x *= prime // the \x00 separator (XOR with 0 is identity)
	for i := 0; i < len(key); i++ {
		x ^= uint64(key[i])
		x *= prime
	}
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashHex is the snapshot content hash (FNV-1a of the raw bytes) the
// shipper compares against the follower's ack to skip unchanged
// snapshots.
func hashHex(data []byte) string {
	const prime = 1099511628211
	x := uint64(14695981039346656037)
	for _, c := range data {
		x ^= uint64(c)
		x *= prime
	}
	return fmt.Sprintf("%016x", x)
}

func (s *Set) shipLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
		}
		s.SyncNow()
	}
}

// SyncNow runs one full ship cycle to every follower synchronously and
// returns the first error (the loop ignores it; tests and benchmarks key
// on it). Safe to call concurrently with the background loop only from
// tests that did not start one.
func (s *Set) SyncNow() error {
	var first error
	for _, f := range s.followers {
		if err := s.shipOnce(f); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// errPromotedAway ends a ship cycle when the follower answers 410: it
// promoted our replica, so there is nothing left to ship it.
var errPromotedAway = errors.New("replica: follower promoted our replica")

// shipOnce brings one follower up to date with the local log. Each cycle
// carries one trace ID on its requests, so the follower's ingest traces
// group a whole catch-up pass under one identifier.
func (s *Set) shipOnce(f *followerState) error {
	f.mu.Lock()
	fenced := f.fenced
	f.mu.Unlock()
	if fenced {
		return nil
	}
	var start time.Time
	if s.opts.ShipHist != nil {
		start = time.Now()
	}
	err := s.shipDelta(f, obs.MintTraceID())
	if !start.IsZero() {
		s.opts.ShipHist.Record(time.Since(start))
	}
	if errors.Is(err, errPromotedAway) {
		return nil
	}
	if err != nil {
		f.fail(err)
	}
	return err
}

func (s *Set) shipDelta(f *followerState, trace string) error {
	st, err := s.fetchStatus(f, trace)
	if err != nil {
		return err
	}
	var mine *PrimaryStatus
	for i := range st.Primaries {
		if st.Primaries[i].Primary == s.opts.Self {
			mine = &st.Primaries[i]
			break
		}
	}
	if mine != nil && mine.Promoted {
		s.fence(f)
		return nil
	}
	f.ack()

	// Snapshot first (see the file comment for why the order matters).
	snap, err := s.opts.Source.ReadSnapshotRaw()
	if err != nil {
		return err
	}
	if len(snap) > 0 {
		h := hashHex(snap)
		if mine == nil || mine.SnapshotHash != h {
			if err := s.shipSnapshot(f, trace, h, snap); err != nil {
				return err
			}
		}
	}

	remote := make(map[uint64]int64)
	if mine != nil {
		for _, seg := range mine.Segments {
			remote[seg.Index] = seg.Bytes
		}
	}
	local := s.opts.Source.Segments()
	if len(local) == 0 {
		s.setLag(f, 0, 0)
		return nil
	}
	min := local[0].Index
	buf := make([]byte, s.opts.ChunkBytes)
	for _, seg := range local {
		off := remote[seg.Index]
		for off < seg.Bytes {
			n := int64(len(buf))
			if rest := seg.Bytes - off; rest < n {
				n = rest
			}
			read, err := s.opts.Source.ReadSegmentAt(seg.Index, off, buf[:n])
			if err != nil {
				if errors.Is(err, os.ErrNotExist) {
					break // compacted away mid-cycle; next cycle re-lists
				}
				return err
			}
			size, err := s.shipChunk(f, trace, seg.Index, off, min, buf[:read])
			if err != nil {
				var oe *OffsetError
				if errors.As(err, &oe) && oe.Size != off {
					off = oe.Size // resume where the follower actually is
					if off > seg.Bytes {
						return fmt.Errorf("replica: follower %s ahead of local segment %d (%d > %d)", f.peer.Name, seg.Index, off, seg.Bytes)
					}
					continue
				}
				return err
			}
			off = size
			remote[seg.Index] = size
		}
	}
	s.updateLag(f, remote)
	return nil
}

// updateLag recomputes the follower's lag against a fresh local listing —
// appends that landed during the cycle count as lag until the next one.
func (s *Set) updateLag(f *followerState, remote map[uint64]int64) {
	var segs int
	var b int64
	for _, seg := range s.opts.Source.Segments() {
		if d := seg.Bytes - remote[seg.Index]; d > 0 {
			segs++
			b += d
		}
	}
	s.setLag(f, segs, b)
}

func (s *Set) setLag(f *followerState, segs int, bytesBehind int64) {
	f.mu.Lock()
	f.segsBehind = segs
	f.bytesBehind = bytesBehind
	f.mu.Unlock()
}

// fence marks the follower as having promoted our replica. A fenced
// primary that is still alive is the partition case: it keeps serving its
// local sessions but its log no longer replicates — the README's
// failure-mode walkthrough tells operators to drain or wipe such a node.
func (s *Set) fence(f *followerState) {
	f.mu.Lock()
	logIt := !f.fencedLog
	f.fenced = true
	f.fencedLog = true
	f.mu.Unlock()
	if logIt {
		s.logf("replica: follower %s promoted our replica; shipping to it stopped", f.peer.Name)
	}
}

func (s *Set) fetchStatus(f *followerState, trace string) (*StatusResponse, error) {
	u := f.peer.URL + "/v1/replica/status?primary=" + url.QueryEscape(s.opts.Self)
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := s.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: status from %s: HTTP %d: %s", f.peer.Name, resp.StatusCode, firstLine(body))
	}
	var st StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("replica: status from %s: %w", f.peer.Name, err)
	}
	return &st, nil
}

func (s *Set) shipSnapshot(f *followerState, trace string, hash string, data []byte) error {
	u := f.peer.URL + "/v1/replica/snapshot?primary=" + url.QueryEscape(s.opts.Self) + "&hash=" + hash
	_, err := s.post(f, trace, u, data)
	return err
}

func (s *Set) shipChunk(f *followerState, trace string, segment uint64, offset int64, min uint64, data []byte) (int64, error) {
	if fp := fpShipChunk.EvalTag(f.peer.Name); fp != nil {
		switch fp.Action {
		case fault.Latency, fault.Stall:
			fp.Sleep()
		default:
			return 0, fmt.Errorf("replica: ship to %s: %w", f.peer.Name, fp.Err)
		}
	}
	u := f.peer.URL + "/v1/replica/segments?primary=" + url.QueryEscape(s.opts.Self) +
		"&segment=" + strconv.FormatUint(segment, 10) +
		"&offset=" + strconv.FormatInt(offset, 10) +
		"&min=" + strconv.FormatUint(min, 10)
	return s.post(f, trace, u, data)
}

// post issues one ingest request and interprets the protocol statuses:
// 200 acks with the new size, 409 is an offset mismatch carrying the size
// to resume from, 410 means the replica was promoted out from under us.
func (s *Set) post(f *followerState, trace string, u string, data []byte) (int64, error) {
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := s.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, err
	}
	var ack IngestResponse
	switch resp.StatusCode {
	case http.StatusOK:
		if err := json.Unmarshal(body, &ack); err != nil {
			return 0, fmt.Errorf("replica: ack from %s: %w", f.peer.Name, err)
		}
		f.ack()
		return ack.Size, nil
	case http.StatusConflict:
		if err := json.Unmarshal(body, &ack); err != nil {
			return 0, fmt.Errorf("replica: conflict from %s: %w", f.peer.Name, err)
		}
		return ack.Size, &OffsetError{Size: ack.Size}
	case http.StatusGone:
		s.fence(f)
		return 0, errPromotedAway
	default:
		return 0, fmt.Errorf("replica: ship to %s: HTTP %d: %s", f.peer.Name, resp.StatusCode, firstLine(body))
	}
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
