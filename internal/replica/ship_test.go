package replica_test

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"relm/internal/replica"
	"relm/internal/service"
	"relm/internal/store"
)

// shipRig is one primary (real segmented store) shipping to one follower
// (real service handler with an ingest-role Set) over real HTTP.
type shipRig struct {
	primary     *store.File
	primaryDir  string
	set         *replica.Set
	follower    *replica.Set
	followerDir string
	srv         *httptest.Server
}

func newShipRig(t *testing.T, segmentBytes int64) *shipRig {
	t.Helper()
	rig := &shipRig{primaryDir: t.TempDir(), followerDir: t.TempDir()}

	var err error
	rig.follower, err = replica.New(replica.Options{Self: "b", Dir: rig.followerDir})
	if err != nil {
		t.Fatal(err)
	}
	m := service.NewManager(service.Options{NodeID: "b", Workers: 1, TTL: time.Hour, Replica: rig.follower})
	rig.srv = httptest.NewServer(service.NewHandler(m))

	rig.primary, err = store.OpenFile(rig.primaryDir, store.FileOptions{SegmentBytes: segmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	// A huge interval keeps the background loop dormant; tests drive
	// cycles with SyncNow for determinism.
	rig.set, err = replica.New(replica.Options{
		Self:     "a",
		Peers:    []replica.Peer{{Name: "b", URL: rig.srv.URL}},
		Source:   rig.primary,
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rig.set.Close()
		rig.srv.Close()
		m.Close()
		rig.follower.Close()
		rig.primary.Close()
	})
	return rig
}

func (rig *shipRig) append(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ev := &store.Event{Type: store.EventClose, ID: "sess-pad", Time: time.Unix(int64(i), 0).UTC()}
		if _, err := rig.primary.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
}

// replicaDir is where the follower keeps primary a's replica.
func (rig *shipRig) replicaDir() string { return filepath.Join(rig.followerDir, "a") }

// assertMirrored fails unless every primary segment is byte-identical on
// the follower.
func (rig *shipRig) assertMirrored(t *testing.T) {
	t.Helper()
	segs := rig.primary.Segments()
	if len(segs) == 0 {
		t.Fatal("primary has no segments")
	}
	for _, seg := range segs {
		name := store.SegmentFileName(seg.Index)
		want, err := os.ReadFile(filepath.Join(rig.primaryDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(rig.replicaDir(), name))
		if err != nil {
			t.Fatalf("replica missing %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("replica %s differs: %d bytes vs %d", name, len(got), len(want))
		}
	}
}

func TestShipCatchUpAndTail(t *testing.T) {
	rig := newShipRig(t, 512)
	rig.append(t, 20) // several sealed segments + an active tail
	if err := rig.set.SyncNow(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	rig.assertMirrored(t)

	st := rig.set.Stats()
	if st.SegmentsBehind != 0 || st.BytesBehind != 0 {
		t.Fatalf("lag after full sync: %+v", st)
	}
	if st.Ships == 0 {
		t.Fatal("no ships counted")
	}

	// Tail growth: a second cycle ships only the delta and stays exact.
	rig.append(t, 7)
	if err := rig.set.SyncNow(); err != nil {
		t.Fatalf("tail sync: %v", err)
	}
	rig.assertMirrored(t)

	// Idempotence across shipper restarts: a fresh Set (no memory of what
	// was acked) must converge without corrupting the replica.
	set2, err := replica.New(replica.Options{
		Self:     "a",
		Peers:    []replica.Peer{{Name: "b", URL: rig.srv.URL}},
		Source:   rig.primary,
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set2.Close()
	if err := set2.SyncNow(); err != nil {
		t.Fatalf("restarted shipper sync: %v", err)
	}
	rig.assertMirrored(t)
}

func TestShipSnapshotAndPrune(t *testing.T) {
	rig := newShipRig(t, 512)
	rig.append(t, 20)
	if err := rig.set.SyncNow(); err != nil {
		t.Fatal(err)
	}

	// Compaction folds the sealed prefix into a snapshot and deletes it.
	if err := rig.primary.Compact(&store.Snapshot{Fence: rig.primary.Seq()}); err != nil {
		t.Fatal(err)
	}
	rig.append(t, 3) // new bytes so the next cycle carries the new min
	if err := rig.set.SyncNow(); err != nil {
		t.Fatal(err)
	}
	rig.assertMirrored(t)

	// The replica snapshot is byte-identical to the primary's…
	want, err := os.ReadFile(filepath.Join(rig.primaryDir, "snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(rig.replicaDir(), "snapshot.json"))
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("replica snapshot differs (err %v)", err)
	}
	// …and segments the primary compacted away are pruned on the replica.
	minLive := rig.primary.Segments()[0].Index
	replSegs, err := store.ListSegmentFiles(rig.replicaDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range replSegs {
		if seg.Index < minLive {
			t.Fatalf("replica kept pruned segment %d (min live %d)", seg.Index, minLive)
		}
	}

	// A second cycle with nothing new ships nothing (snapshot hash match).
	before := rig.follower.Stats().Ingests
	if err := rig.set.SyncNow(); err != nil {
		t.Fatal(err)
	}
	if after := rig.follower.Stats().Ingests; after != before {
		t.Fatalf("idle cycle re-shipped: ingests %d -> %d", before, after)
	}
}

func TestShipStopsAfterPromotion(t *testing.T) {
	rig := newShipRig(t, 512)
	rig.append(t, 5)
	if err := rig.set.SyncNow(); err != nil {
		t.Fatal(err)
	}

	// The follower promotes a's replica (fail-over elsewhere decided a is
	// dead). The zombie primary's next cycles must fence cleanly: no
	// error, no counter churn, Promoted surfaced in its follower status.
	if _, err := rig.follower.Promote("a"); err != nil {
		t.Fatal(err)
	}
	rig.append(t, 3)
	if err := rig.set.SyncNow(); err != nil {
		t.Fatalf("fenced cycle errored: %v", err)
	}
	st := rig.set.Status()
	if len(st.Followers) != 1 || !st.Followers[0].Promoted {
		t.Fatalf("follower status after fence: %+v", st.Followers)
	}
	if err := rig.set.SyncNow(); err != nil {
		t.Fatalf("post-fence cycle errored: %v", err)
	}
	// Replica content froze at the promotion point.
	segs, err := store.ListSegmentFiles(rig.replicaDir())
	if err != nil {
		t.Fatal(err)
	}
	var replicaBytes int64
	for _, seg := range segs {
		replicaBytes += seg.Bytes
	}
	var primaryBytes int64
	for _, seg := range rig.primary.Segments() {
		primaryBytes += seg.Bytes
	}
	if replicaBytes >= primaryBytes {
		t.Fatalf("replica kept growing after fence: %d vs primary %d", replicaBytes, primaryBytes)
	}
}
