// Package rf implements a Random-Forest regressor: bagged CART trees with
// random feature subsets at each split. The ensemble spread provides the
// uncertainty estimate that lets the forest stand in for the Gaussian
// Process as a Bayesian-optimization surrogate — the alternative surrogate
// the paper evaluates in Figure 26.
package rf

import (
	"math"
	"sort"

	"relm/internal/simrand"
)

// Options configures training.
type Options struct {
	Trees       int     // number of trees (default 64)
	MinLeaf     int     // minimum samples per leaf (default 2)
	MaxDepth    int     // maximum tree depth (default 12)
	FeatureFrac float64 // fraction of features tried per split (default 1/√d heuristic via 0 → auto)
	Seed        uint64
}

func (o *Options) fill(dim int) {
	if o.Trees == 0 {
		o.Trees = 64
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 2
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 12
	}
	if o.FeatureFrac == 0 {
		o.FeatureFrac = math.Max(0.34, 1/math.Sqrt(float64(dim)))
	}
}

type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	value     float64
	leaf      bool
}

// Forest is a trained random forest.
type Forest struct {
	trees []*node
	dim   int
}

// Train fits a forest on the samples. It panics on empty input.
func Train(xs [][]float64, ys []float64, opts Options) *Forest {
	if len(xs) == 0 || len(xs) != len(ys) {
		panic("rf: bad training data")
	}
	dim := len(xs[0])
	opts.fill(dim)
	rng := simrand.New(opts.Seed ^ 0xda3e39cb94b95bdb)
	f := &Forest{dim: dim}
	n := len(xs)
	for t := 0; t < opts.Trees; t++ {
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		f.trees = append(f.trees, buildTree(xs, ys, idx, 0, opts, rng))
	}
	return f
}

func buildTree(xs [][]float64, ys []float64, idx []int, depth int, opts Options, rng *simrand.Rand) *node {
	if len(idx) <= opts.MinLeaf || depth >= opts.MaxDepth || constantTargets(ys, idx) {
		return &node{leaf: true, value: meanAt(ys, idx)}
	}
	dim := len(xs[0])
	nFeat := int(math.Ceil(opts.FeatureFrac * float64(dim)))
	if nFeat < 1 {
		nFeat = 1
	}

	bestFeat, bestThr := -1, 0.0
	bestScore := math.Inf(1)
	perm := rng.Perm(dim)
	for _, d := range perm[:nFeat] {
		vals := make([]float64, 0, len(idx))
		for _, i := range idx {
			vals = append(vals, xs[i][d])
		}
		sort.Float64s(vals)
		// Candidate thresholds: up to 8 quantile midpoints.
		for q := 1; q <= 8; q++ {
			pos := q * (len(vals) - 1) / 9
			if pos+1 >= len(vals) {
				break
			}
			thr := (vals[pos] + vals[pos+1]) / 2
			if vals[pos] == vals[pos+1] {
				continue
			}
			if score, ok := splitScore(xs, ys, idx, d, thr, opts.MinLeaf); ok && score < bestScore {
				bestScore, bestFeat, bestThr = score, d, thr
			}
		}
	}
	if bestFeat < 0 {
		return &node{leaf: true, value: meanAt(ys, idx)}
	}

	var li, ri []int
	for _, i := range idx {
		if xs[i][bestFeat] <= bestThr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &node{
		feature:   bestFeat,
		threshold: bestThr,
		left:      buildTree(xs, ys, li, depth+1, opts, rng),
		right:     buildTree(xs, ys, ri, depth+1, opts, rng),
	}
}

// splitScore returns the summed squared error of the two sides.
func splitScore(xs [][]float64, ys []float64, idx []int, d int, thr float64, minLeaf int) (float64, bool) {
	var nl, nr int
	var sl, sr, ql, qr float64
	for _, i := range idx {
		y := ys[i]
		if xs[i][d] <= thr {
			nl++
			sl += y
			ql += y * y
		} else {
			nr++
			sr += y
			qr += y * y
		}
	}
	if nl < minLeaf || nr < minLeaf {
		return 0, false
	}
	sseL := ql - sl*sl/float64(nl)
	sseR := qr - sr*sr/float64(nr)
	return sseL + sseR, true
}

func constantTargets(ys []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if ys[i] != ys[idx[0]] {
			return false
		}
	}
	return true
}

func meanAt(ys []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += ys[i]
	}
	return s / float64(len(idx))
}

func (n *node) predict(x []float64) float64 {
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Predict returns the ensemble mean and variance at x.
func (f *Forest) Predict(x []float64) (mean, variance float64) {
	var s, q float64
	for _, t := range f.trees {
		v := t.predict(x)
		s += v
		q += v * v
	}
	n := float64(len(f.trees))
	mean = s / n
	variance = q/n - mean*mean
	if variance < 1e-9 {
		variance = 1e-9
	}
	return mean, variance
}
