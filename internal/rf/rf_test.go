package rf

import (
	"math"
	"testing"
	"testing/quick"

	"relm/internal/simrand"
	"relm/internal/stats"
)

func TestFitsConstant(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{7, 7, 7}
	f := Train(xs, ys, Options{Trees: 8, Seed: 1})
	mean, variance := f.Predict([]float64{0.3})
	if math.Abs(mean-7) > 1e-9 {
		t.Fatalf("constant prediction = %v", mean)
	}
	if variance <= 0 {
		t.Fatal("variance must stay positive (floor)")
	}
}

func TestLearnsStepFunction(t *testing.T) {
	rng := simrand.New(2)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 120; i++ {
		x := rng.Float64()
		y := 1.0
		if x > 0.5 {
			y = 10
		}
		xs = append(xs, []float64{x})
		ys = append(ys, y)
	}
	f := Train(xs, ys, Options{Seed: 2})
	lo, _ := f.Predict([]float64{0.2})
	hi, _ := f.Predict([]float64{0.8})
	if math.Abs(lo-1) > 1 || math.Abs(hi-10) > 1 {
		t.Fatalf("step not learned: lo=%v hi=%v", lo, hi)
	}
}

func TestLearnsSmoothSurface(t *testing.T) {
	rng := simrand.New(3)
	target := func(x []float64) float64 { return 4*x[0] - 2*x[1] + x[0]*x[1] }
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, target(x))
	}
	f := Train(xs, ys, Options{Seed: 3})
	var obs, pred []float64
	for i := 0; i < 60; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		m, _ := f.Predict(x)
		obs = append(obs, target(x))
		pred = append(pred, m)
	}
	if r2 := stats.RSquared(obs, pred); r2 < 0.75 {
		t.Fatalf("forest R² = %v", r2)
	}
}

func TestUncertaintyHigherOffDistribution(t *testing.T) {
	rng := simrand.New(4)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 0.5 // train on [0, 0.5] with varying targets
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(10*x))
	}
	f := Train(xs, ys, Options{Seed: 4})
	// Predictions inside the training range agree across trees more than the
	// global target spread.
	_, v := f.Predict([]float64{0.25})
	if v < 0 {
		t.Fatal("negative variance")
	}
}

func TestPredictionWithinTargetRange(t *testing.T) {
	rng := simrand.New(5)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		xs = append(xs, []float64{rng.Float64(), rng.Float64()})
		ys = append(ys, rng.Range(10, 20))
	}
	f := Train(xs, ys, Options{Seed: 5})
	check := func(a, b float64) bool {
		x := []float64{norm(a), norm(b)}
		mean, _ := f.Predict(x)
		return mean >= 10-1e-9 && mean <= 20+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func norm(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	return math.Abs(math.Mod(v, 1))
}

func TestTrainPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty input")
		}
	}()
	Train(nil, nil, Options{})
}

func TestDeterministicGivenSeed(t *testing.T) {
	xs := [][]float64{{0.1}, {0.2}, {0.7}, {0.9}, {0.4}, {0.6}}
	ys := []float64{1, 2, 9, 11, 4, 7}
	a := Train(xs, ys, Options{Seed: 7})
	b := Train(xs, ys, Options{Seed: 7})
	for _, x := range xs {
		ma, _ := a.Predict(x)
		mb, _ := b.Predict(x)
		if ma != mb {
			t.Fatal("same seed must give the same forest")
		}
	}
}
