package rf

import (
	"math"

	"relm/internal/gp"
)

// Surrogate adapts the Random Forest onto the gp.Surrogate interface, so the
// Figure 26 ablation plugs into the Bayesian-optimization tuners through the
// same seam as the Gaussian-Process models. Forests have no incremental
// conditioning path, so every data change retrains the ensemble from the
// full matrix; Stats therefore counts one Fit per change, the honest cost of
// this surrogate.
type Surrogate struct {
	// Opts configures ensemble training (zero value = package defaults).
	Opts Options

	forest *Forest
	xs     [][]float64
	ys     []float64
	stats  gp.SurrogateStats
}

var _ gp.Surrogate = (*Surrogate)(nil)

// SetData replaces the training matrix and retrains. Rows are copied;
// callers may reuse their buffers.
func (s *Surrogate) SetData(xs [][]float64, ys []float64) error {
	s.xs = s.xs[:0]
	for _, x := range xs {
		s.xs = append(s.xs, append([]float64(nil), x...))
	}
	s.ys = append(s.ys[:0], ys...)
	return s.retrain()
}

// Append adds one observation and retrains.
func (s *Surrogate) Append(x []float64, y float64) error {
	s.xs = append(s.xs, append([]float64(nil), x...))
	s.ys = append(s.ys, y)
	s.stats.Appends++
	return s.retrain()
}

func (s *Surrogate) retrain() error {
	if len(s.xs) == 0 {
		s.forest = nil
		return nil
	}
	s.forest = Train(s.xs, s.ys, s.Opts)
	s.stats.Fits++
	return nil
}

// PredictInto returns the ensemble mean and spread; the scratch is unused
// (tree walks allocate nothing). An untrained surrogate predicts the prior
// (0, 1).
func (s *Surrogate) PredictInto(x []float64, _ *gp.Scratch) (mean, variance float64) {
	if s.forest == nil {
		return 0, 1
	}
	return s.forest.Predict(x)
}

// PredictBatch scores a batch of candidates.
func (s *Surrogate) PredictBatch(xs [][]float64, means, vars []float64, _ *gp.Scratch) {
	for i, x := range xs {
		means[i], vars[i] = s.PredictInto(x, nil)
	}
}

// LogMarginalLikelihood is NaN: forests have no likelihood.
func (s *Surrogate) LogMarginalLikelihood() float64 { return math.NaN() }

// Stats reports the cumulative work counters.
func (s *Surrogate) Stats() gp.SurrogateStats { return s.stats }
