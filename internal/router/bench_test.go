package router

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchRouter builds a router whose nodes are marked healthy by hand (no
// health checkers, no network): pick and dispatch cost only.
func benchRouter(b *testing.B, nodes int, rt http.RoundTripper) *Router {
	b.Helper()
	var backends []Backend
	for i := 0; i < nodes; i++ {
		backends = append(backends, Backend{Name: fmt.Sprintf("node-%02d", i), URL: fmt.Sprintf("http://10.0.0.%d:8080", i+1)})
	}
	r, err := New(Options{Backends: backends, Transport: rt})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	b.Cleanup(r.Close)
	for _, n := range r.nodes {
		n.mu.Lock()
		n.healthy = true
		n.mu.Unlock()
	}
	return r
}

// stubTransport answers every request in-process — proxy dispatch without
// a network.
type stubTransport struct{ body []byte }

func (t *stubTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(bytes.NewReader(t.body)),
		Request:    req,
	}, nil
}

// BenchmarkRouterRoute measures the router hot path with no network:
// rendezvous owner selection across cluster sizes, and one full proxied
// session-request dispatch (mux match, owner pick, outbound request build,
// response copy) against a stub transport.
func BenchmarkRouterRoute(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = mintID()
	}
	for _, nodes := range []int{3, 16} {
		b.Run(fmt.Sprintf("pick/nodes=%d", nodes), func(b *testing.B) {
			r := benchRouter(b, nodes, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r.pick(keys[i%len(keys)]) == nil {
					b.Fatal("no owner")
				}
			}
		})
	}
	b.Run("dispatch", func(b *testing.B) {
		r := benchRouter(b, 3, &stubTransport{body: []byte(`{"id":"s-1","state":"active"}`)})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodGet, "/v1/sessions/"+keys[i%len(keys)], nil)
			rec := httptest.NewRecorder()
			r.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
}
