package router

import (
	"bytes"
	"errors"
	"net/http"
	"time"

	"relm/internal/fault"
	"relm/internal/obs"
)

// fpProxy is the router's data-path failpoint, evaluated per proxied send
// with the backend's name as the tag — so a schedule can partition one
// backend (match), delay it (latency/stall), or black-hole it (error/
// drop). Injected failures run through the same breaker bookkeeping as
// real transport errors.
var fpProxy = fault.Register("router.proxy")

// Per-backend circuit breaker over the data path (proxying and fan-outs).
// The health checker tells the router a node is *down*; the breaker tells
// it a node is *hurting us* — a black-holed backend fails health checks
// only after its own timeout, and until then every proxied request would
// hang for the full client timeout. The breaker cuts that off: after
// BreakerThreshold consecutive transport failures the node is open (no
// data-path traffic at all), after an exponentially growing delay it goes
// half-open (exactly one in-flight probe request), and a data-path
// success closes it. A health-check success deliberately does NOT close
// the breaker: /healthz answering proves the process is up, not that it
// can serve a real request in time.

const (
	brClosed = iota
	brOpen
	brHalfOpen
)

func breakerWord(state int) string {
	switch state {
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// errBreakerOpen reports a send skipped because the node's breaker had no
// capacity (open, or half-open with the probe slot taken).
var errBreakerOpen = errors.New("router: breaker open")

// brAcquire claims the right to send one data-path request to the node.
// Closed always admits; open admits nothing until the probe delay passes,
// then transitions to half-open; half-open admits exactly one in-flight
// probe. The claim must be released by brSuccess or brFailure.
func (n *node) brAcquire(now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.brState {
	case brClosed:
		return true
	case brOpen:
		if now.Before(n.brUntil) {
			return false
		}
		n.brState = brHalfOpen
		n.brProbing = true
		return true
	default: // half-open
		if n.brProbing {
			return false
		}
		n.brProbing = true
		return true
	}
}

// brAvailable reports whether brAcquire could currently succeed, without
// claiming anything — the placement filter.
func (n *node) brAvailable(now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.brState {
	case brClosed:
		return true
	case brOpen:
		return !now.Before(n.brUntil)
	default:
		return !n.brProbing
	}
}

// brSuccess closes the breaker: any served data-path request proves the
// node good again.
func (n *node) brSuccess() (reopened bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	closedNow := n.brState != brClosed
	n.brState = brClosed
	n.brProbing = false
	n.brFails = 0
	n.brDelay = 0
	return closedNow
}

// brFailure records one data-path transport failure and returns the new
// state if the breaker tripped or re-opened (-1 otherwise).
func (n *node) brFailure(threshold int, probe, probeMax time.Duration, now time.Time) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.brProbing = false
	n.brFails++
	switch {
	case n.brState == brHalfOpen:
		// The probe failed: back to open, doubling the wait.
		n.brDelay = minDur(n.brDelay*2, probeMax)
		n.brState = brOpen
		n.brUntil = now.Add(n.brDelay)
		n.brOpens++
		return brOpen
	case n.brState == brClosed && n.brFails >= threshold:
		n.brDelay = probe
		n.brState = brOpen
		n.brUntil = now.Add(n.brDelay)
		n.brOpens++
		return brOpen
	}
	return -1
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// retried bumps the node's retried-away counter: a request aimed at this
// node was served by (or handed to) another candidate.
func (n *node) retried() {
	n.mu.Lock()
	n.retries++
	n.mu.Unlock()
}

// sendTracked is send with the breaker wrapped around it: it claims
// breaker capacity, counts the transport outcome, and reports
// errBreakerOpen when the node is not taking data-path traffic. HTTP
// error statuses are successes to the breaker — the node answered.
func (r *Router) sendTracked(client *http.Client, req *http.Request, n *node, method, path, query string, body []byte) (int, []byte, http.Header, error) {
	if !n.brAcquire(time.Now()) {
		return 0, nil, nil, errBreakerOpen
	}
	if fp := fpProxy.EvalTag(n.name); fp != nil {
		switch fp.Action {
		case fault.Latency, fault.Stall:
			fp.Sleep()
		default:
			// An injected partition: the request never reaches the node,
			// and the breaker counts the failure like any transport error.
			if st := n.brFailure(r.opts.BreakerThreshold, r.opts.BreakerProbe, r.opts.BreakerProbeMax, time.Now()); st >= 0 {
				r.logf("router: node %s breaker %s (%v)", n.name, breakerWord(st), fp.Err)
			}
			return 0, nil, nil, fp.Err
		}
	}
	start := time.Now()
	status, buf, hdr, err := r.send(client, req, n, method, path, query, body)
	r.histProxy.Record(time.Since(start))
	obs.TraceFrom(req.Context()).AddSpan("proxy "+n.name, start)
	if err != nil {
		if st := n.brFailure(r.opts.BreakerThreshold, r.opts.BreakerProbe, r.opts.BreakerProbeMax, time.Now()); st >= 0 {
			r.logf("router: node %s breaker %s (%v)", n.name, breakerWord(st), err)
		}
		return status, buf, hdr, err
	}
	if n.brSuccess() {
		r.logf("router: node %s breaker closed", n.name)
	}
	return status, buf, hdr, nil
}

// isDraining503 recognises a backend refusing a request because it is
// draining — worth spending retry budget on another candidate, unlike
// other 4xx/5xx answers which would repeat anywhere.
func isDraining503(status int, body []byte) bool {
	return status == http.StatusServiceUnavailable && bytes.Contains(body, []byte("draining"))
}

// isRetriable503 recognises a backend that refused a request it could not
// durably acknowledge — store append/fsync failures and injected faults
// are mapped by the service to 503 + Retry-After. The identical request
// may succeed on another candidate or later, so the router spends retry
// budget walking on; and since only a node that actually holds (or would
// accept) the session answers this way, a remembered retriable 503 is
// preferred over a 404 fallthrough when every other candidate misses.
func isRetriable503(status int, hdr http.Header) bool {
	return status == http.StatusServiceUnavailable && hdr != nil && hdr.Get("Retry-After") != ""
}
