package router

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"relm/internal/replica"
	"relm/internal/service"
	"relm/internal/store"
)

// --- circuit breaker unit --------------------------------------------------

func TestBreakerStateMachine(t *testing.T) {
	base, _ := url.Parse("http://x.invalid")
	n := &node{name: "x", base: base}
	now := time.Unix(1000, 0)
	const threshold = 3
	probe, probeMax := time.Second, 8*time.Second

	// Closed admits freely; failures below the threshold keep it closed.
	for i := 0; i < threshold-1; i++ {
		if !n.brAcquire(now) {
			t.Fatalf("closed breaker refused request %d", i)
		}
		if st := n.brFailure(threshold, probe, probeMax, now); st != -1 {
			t.Fatalf("failure %d tripped the breaker early: %v", i, st)
		}
	}
	if !n.brAvailable(now) {
		t.Fatal("breaker unavailable while still closed")
	}
	// The threshold-th consecutive failure opens it.
	if !n.brAcquire(now) {
		t.Fatal("closed breaker refused the tripping request")
	}
	if st := n.brFailure(threshold, probe, probeMax, now); st != brOpen {
		t.Fatalf("threshold failure returned %v, want open", st)
	}
	if n.brAvailable(now) || n.brAcquire(now) {
		t.Fatal("open breaker admitted a request before the probe delay")
	}

	// After the probe delay: exactly one in-flight probe.
	later := now.Add(probe + time.Millisecond)
	if !n.brAvailable(later) {
		t.Fatal("breaker not available after the probe delay")
	}
	if !n.brAcquire(later) {
		t.Fatal("probe not admitted after the delay")
	}
	if n.brAcquire(later) || n.brAvailable(later) {
		t.Fatal("second concurrent probe admitted")
	}
	// A failed probe re-opens with a doubled delay.
	if st := n.brFailure(threshold, probe, probeMax, later); st != brOpen {
		t.Fatalf("failed probe returned %v, want open", st)
	}
	if n.brDelay != 2*probe {
		t.Fatalf("probe delay after one failed probe: %v, want %v", n.brDelay, 2*probe)
	}
	if n.brAcquire(later.Add(probe)) {
		t.Fatal("re-opened breaker ignored the doubled delay")
	}
	// Doubling is capped at probeMax.
	at := later
	for i := 0; i < 8; i++ {
		at = at.Add(n.brDelay + time.Millisecond)
		if !n.brAcquire(at) {
			t.Fatalf("probe %d not admitted", i)
		}
		n.brFailure(threshold, probe, probeMax, at)
	}
	if n.brDelay != probeMax {
		t.Fatalf("probe delay not capped: %v, want %v", n.brDelay, probeMax)
	}
	if got := n.snapshot(); got.Breaker != "open" || got.BreakerOpens == 0 {
		t.Fatalf("snapshot of an open breaker: %+v", got)
	}

	// A served probe closes it and resets the failure history.
	at = at.Add(n.brDelay + time.Millisecond)
	if !n.brAcquire(at) {
		t.Fatal("final probe not admitted")
	}
	if !n.brSuccess() {
		t.Fatal("closing success not reported as a transition")
	}
	if got := n.snapshot(); got.Breaker != "closed" {
		t.Fatalf("after success: %+v", got)
	}
	if st := n.brFailure(threshold, probe, probeMax, at); st != -1 {
		t.Fatal("failure count survived the close")
	}
}

// --- 503-draining retry ----------------------------------------------------

// newSlowCheckCluster is newTestCluster with health checks effectively
// frozen after the initial round, so the router keeps routing to a node
// whose state changed behind its back.
func newSlowCheckCluster(t *testing.T, names ...string) *testCluster {
	t.Helper()
	tc := &testCluster{
		managers: make(map[string]*service.Manager),
		servers:  make(map[string]*httptest.Server),
	}
	var backends []Backend
	for _, name := range names {
		m := service.NewManager(service.Options{NodeID: name, Workers: 1, TTL: time.Hour})
		srv := httptest.NewServer(service.NewHandler(m))
		tc.managers[name] = m
		tc.servers[name] = srv
		backends = append(backends, Backend{Name: name, URL: srv.URL})
	}
	opts := fastCheck(backends...)
	opts.CheckInterval = time.Hour // first check fires immediately, then never again
	opts.BackoffMax = time.Hour
	r, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tc.router = r
	tc.front = httptest.NewServer(r)
	t.Cleanup(func() {
		tc.front.Close()
		r.Close()
		for _, srv := range tc.servers {
			srv.Close()
		}
		for _, m := range tc.managers {
			m.Close()
		}
	})
	tc.waitHealthy(t, len(names))
	return tc
}

// TestCreateRetriesDrainingBackend: a backend that started draining on its
// own (the router has not health-checked it since) answers creates with
// 503 draining; the router must spend retry budget on the next candidate
// instead of surfacing the 503, and account the retry per node.
func TestCreateRetriesDrainingBackend(t *testing.T) {
	tc := newSlowCheckCluster(t, "a", "b")
	tc.managers["a"].Drain() // behind the router's back

	for i := 0; i < 12; i++ {
		var st service.StatusResponse
		code, _ := tc.do(t, http.MethodPost, "/v1/sessions",
			map[string]any{"backend": "bo", "workload": "PageRank", "seed": i}, &st)
		if code != http.StatusCreated {
			t.Fatalf("create %d: status %d (draining backend leaked through)", i, code)
		}
		if st.Node != "b" {
			t.Fatalf("create %d landed on %q, want the non-draining node", i, st.Node)
		}
	}

	// The retries are visible per node in /v1/cluster; the breaker stayed
	// closed — draining is not a transport failure.
	var cl struct {
		Nodes []NodeStatus `json:"nodes"`
	}
	if code, _ := tc.do(t, http.MethodGet, "/v1/cluster", nil, &cl); code != http.StatusOK {
		t.Fatalf("cluster: status %d", code)
	}
	for _, n := range cl.Nodes {
		if n.Name == "a" {
			if n.Retries == 0 {
				t.Fatalf("draining node shows no retried-away requests: %+v", n)
			}
			if n.Breaker != "closed" {
				t.Fatalf("503-draining answers tripped the breaker: %+v", n)
			}
		}
	}
	if got := tc.managers["b"].Len(); got != 12 {
		t.Fatalf("survivor holds %d sessions, want 12", got)
	}
}

// --- breaker end-to-end ----------------------------------------------------

// TestBreakerIsolatesBlackholedBackend: a backend whose /healthz answers
// but whose data path hangs (black hole) must be cut off by the breaker
// after BreakerThreshold timed-out requests — and recovered through the
// half-open probe once it serves again.
func TestBreakerIsolatesBlackholedBackend(t *testing.T) {
	mb := service.NewManager(service.Options{NodeID: "b", Workers: 1, TTL: time.Hour})
	defer mb.Close()
	realB := service.NewHandler(mb)
	var blackhole atomic.Bool
	blackhole.Store(true)
	srvB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if blackhole.Load() && req.URL.Path != "/healthz" {
			time.Sleep(500 * time.Millisecond) // >> router timeout
		}
		realB.ServeHTTP(w, req)
	}))
	defer srvB.Close()

	ma := service.NewManager(service.Options{NodeID: "a", Workers: 1, TTL: time.Hour})
	defer ma.Close()
	srvA := httptest.NewServer(service.NewHandler(ma))
	defer srvA.Close()

	opts := fastCheck(Backend{Name: "a", URL: srvA.URL}, Backend{Name: "b", URL: srvB.URL})
	opts.Timeout = 100 * time.Millisecond
	opts.BreakerThreshold = 2
	opts.BreakerProbe = 50 * time.Millisecond
	opts.BreakerProbeMax = 200 * time.Millisecond
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	front := httptest.NewServer(r)
	defer front.Close()
	tc := &testCluster{router: r, front: front}
	tc.waitHealthy(t, 2)

	// Metrics fan-out touches every node; each round burns one timeout on
	// the black hole and answers 200 partial with b in the failed map —
	// loud, but not blinding monitoring to the healthy node — until the
	// breaker opens; then the node is excluded like an unhealthy one.
	b := r.nodeByName("b")
	sawPartial := false
	deadline := time.Now().Add(5 * time.Second)
	for b.snapshot().Breaker != "open" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened on the black hole: %+v", b.snapshot())
		}
		var pm struct {
			Partial bool              `json:"partial"`
			Failed  map[string]string `json:"failed"`
		}
		code, _ := tc.do(t, http.MethodGet, "/v1/metrics", nil, &pm)
		sawPartial = sawPartial || (code == http.StatusOK && pm.Partial && pm.Failed["b"] != "")
		time.Sleep(20 * time.Millisecond) // let the health check re-admit b between rounds
	}
	if !sawPartial {
		t.Fatal("black-holed fan-outs never surfaced a flagged partial merge")
	}
	if got := b.snapshot(); got.BreakerOpens != 1 {
		t.Fatalf("breaker opens: %+v", got)
	}
	if code, _ := tc.do(t, http.MethodGet, "/v1/metrics", nil, nil); code != http.StatusOK {
		t.Fatal("fan-out still failing with the black hole isolated")
	}
	if !b.eligible() {
		t.Fatal("healthz still answers; the breaker, not the health check, must be what isolates the node")
	}

	// With the breaker open the node is skipped for free: a burst of
	// creates lands on the healthy node without burning timeouts.
	start := time.Now()
	for i := 0; i < 6; i++ {
		var st service.StatusResponse
		code, _ := tc.do(t, http.MethodPost, "/v1/sessions",
			map[string]any{"backend": "bo", "workload": "PageRank", "seed": i}, &st)
		if code != http.StatusCreated || st.Node != "a" {
			t.Fatalf("create %d: status %d on %q", i, code, st.Node)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*opts.Timeout {
		t.Fatalf("creates took %v — the open breaker did not short-circuit the black hole", elapsed)
	}

	// The router fan-out surfaces breaker counters cluster-wide.
	var mt map[string]any
	if code, _ := tc.do(t, http.MethodGet, "/v1/metrics", nil, &mt); code != http.StatusOK {
		t.Fatal("metrics")
	}
	rt, _ := mt["router"].(map[string]any)
	if rt == nil || rt["breaker_opens"].(float64) < 1 || rt["breakers_open"].(float64) < 1 {
		t.Fatalf("router metrics missing breaker counters: %v", mt["router"])
	}

	// Recovery: unplug the black hole; the half-open probe closes the
	// breaker without any operator action.
	blackhole.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	for {
		tc.do(t, http.MethodGet, "/v1/metrics", nil, nil) // probe carrier
		if b.snapshot().Breaker == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after recovery: %+v", b.snapshot())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// --- automatic fail-over ---------------------------------------------------

// promoCluster is three journaled backends with WAL replication between
// them behind a promoting router. The httptest servers are created before
// the managers (the replica sets need every peer's URL), with the handler
// swapped in once the node exists.
type promoCluster struct {
	names    []string
	handlers map[string]*atomic.Value // of http.Handler
	servers  map[string]*httptest.Server
	managers map[string]*service.Manager
	sets     map[string]*replica.Set
	router   *Router
	front    *httptest.Server
}

func newPromoCluster(t *testing.T, names ...string) *promoCluster {
	t.Helper()
	pc := &promoCluster{
		names:    names,
		handlers: make(map[string]*atomic.Value),
		servers:  make(map[string]*httptest.Server),
		managers: make(map[string]*service.Manager),
		sets:     make(map[string]*replica.Set),
	}
	for _, name := range names {
		hv := &atomic.Value{}
		pc.handlers[name] = hv
		pc.servers[name] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			if h, ok := hv.Load().(http.Handler); ok {
				h.ServeHTTP(w, req)
				return
			}
			http.Error(w, "starting", http.StatusServiceUnavailable)
		}))
	}
	var backends []Backend
	for _, name := range names {
		var peers []replica.Peer
		for _, other := range names {
			if other != name {
				peers = append(peers, replica.Peer{Name: other, URL: pc.servers[other].URL})
			}
		}
		st, err := store.OpenFile(t.TempDir(), store.FileOptions{SegmentBytes: 4096})
		if err != nil {
			t.Fatal(err)
		}
		set, err := replica.New(replica.Options{
			Self: name, Peers: peers, Dir: t.TempDir(),
			Source: st, Interval: time.Hour, // tests ship explicitly
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := service.Open(service.Options{NodeID: name, Workers: 1, TTL: time.Hour, Store: st, Replica: set})
		if err != nil {
			t.Fatal(err)
		}
		pc.sets[name] = set
		pc.managers[name] = m
		pc.handlers[name].Store(http.Handler(service.NewHandler(m)))
		backends = append(backends, Backend{Name: name, URL: pc.servers[name].URL})
	}
	opts := fastCheck(backends...)
	opts.Promote = true
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	pc.router = r
	pc.front = httptest.NewServer(r)
	t.Cleanup(func() {
		pc.front.Close()
		r.Close()
		for _, srv := range pc.servers {
			srv.Close()
		}
		for _, set := range pc.sets {
			set.Close()
		}
		for _, m := range pc.managers {
			m.Close()
		}
	})
	tc := &testCluster{router: r, front: pc.front}
	tc.waitHealthy(t, len(names))
	return pc
}

func (pc *promoCluster) do(t *testing.T, method, path string, body, out any) (int, http.Header) {
	t.Helper()
	tc := &testCluster{front: pc.front}
	return tc.do(t, method, path, body, out)
}

// TestAutomaticFailover is the kill-without-drain path end to end: a
// primary dies, the router promotes its WAL replica on a survivor, and
// every non-terminal session resumes under its original ID with the full
// history — the next suggestion identical to what the dead node would
// have produced.
func TestAutomaticFailover(t *testing.T) {
	pc := newPromoCluster(t, "a", "b", "c")

	// Sessions through the router until every node owns at least one.
	type sess struct {
		id, node string
		history  []service.HistoryJSON
		nextSug  string
	}
	var sessions []sess
	byNode := map[string]int{}
	for i := 0; len(byNode) < 3 || len(sessions) < 5; i++ {
		if i > 64 {
			t.Fatalf("placement never spread over 3 nodes: %v", byNode)
		}
		var st service.StatusResponse
		code, _ := pc.do(t, http.MethodPost, "/v1/sessions",
			map[string]any{"backend": "bo", "workload": "K-means", "seed": i, "max_iterations": 30}, &st)
		if code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
		sessions = append(sessions, sess{id: st.ID, node: st.Node})
		byNode[st.Node]++
	}
	// Drive each session a few suggest→observe rounds, then leave a
	// suggestion outstanding — the kill interrupts mid-protocol.
	for si := range sessions {
		s := &sessions[si]
		for step := 0; step < 3; step++ {
			var sug service.SuggestResponse
			if code, _ := pc.do(t, http.MethodPost, "/v1/sessions/"+s.id+"/suggest", nil, &sug); code != http.StatusOK {
				t.Fatalf("suggest %s: status %d", s.id, code)
			}
			if code, _ := pc.do(t, http.MethodPost, "/v1/sessions/"+s.id+"/observe",
				map[string]any{"config": sug.Config, "runtime_sec": 300.0 - float64(10*si+step)}, nil); code != http.StatusOK {
				t.Fatalf("observe %s: status %d", s.id, code)
			}
		}
		var sug service.SuggestResponse
		if code, _ := pc.do(t, http.MethodPost, "/v1/sessions/"+s.id+"/suggest", nil, &sug); code != http.StatusOK {
			t.Fatalf("final suggest %s: status %d", s.id, code)
		}
		s.nextSug = fmt.Sprintf("%+v", sug.Config)
		if code, _ := pc.do(t, http.MethodGet, "/v1/sessions/"+s.id+"/history", nil, &s.history); code != http.StatusOK {
			t.Fatalf("history %s: status %d", s.id, code)
		}
	}

	// Pick the victim, ship its WAL to its follower, then kill -9: close
	// the server so every connection to it dies. No drain, no warning.
	victim := sessions[0].node
	if err := pc.sets[victim].SyncNow(); err != nil {
		t.Fatalf("pre-kill replication sync: %v", err)
	}
	pc.servers[victim].Close()

	// The router must notice the death and promote — no operator action.
	// Wait for last_promotion, not promotions_total: the counter ticks at
	// the fence (point of no return) but the report is only stored once
	// every session has been re-created and replayed on its successor.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var raw map[string]any
		pc.do(t, http.MethodGet, "/v1/cluster", nil, &raw)
		if last, ok := raw["last_promotion"].(map[string]any); ok && last["node"] == victim {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no automatic promotion after victim death: %v", raw)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Every session — including the dead node's — answers under its
	// original ID with its exact history and the exact next suggestion.
	for _, s := range sessions {
		var hist []service.HistoryJSON
		code, hdr := pc.do(t, http.MethodGet, "/v1/sessions/"+s.id+"/history", nil, &hist)
		if code != http.StatusOK {
			t.Fatalf("post-failover history %s (was on %s): status %d", s.id, s.node, code)
		}
		if s.node == victim && hdr.Get("X-Relm-Node") == victim {
			t.Fatalf("session %s still served by the dead node", s.id)
		}
		if !reflect.DeepEqual(hist, s.history) {
			t.Fatalf("session %s (was on %s): history changed across fail-over\n pre: %+v\npost: %+v",
				s.id, s.node, s.history, hist)
		}
		var sug service.SuggestResponse
		if code, _ := pc.do(t, http.MethodPost, "/v1/sessions/"+s.id+"/suggest", nil, &sug); code != http.StatusOK {
			t.Fatalf("post-failover suggest %s: status %d", s.id, code)
		}
		if got := fmt.Sprintf("%+v", sug.Config); got != s.nextSug {
			t.Fatalf("session %s: successor suggests %s, the dead node would have suggested %s", s.id, got, s.nextSug)
		}
	}

	// The dead node is marked promoted (sticky — a revived process holds
	// stale state), and the report names it.
	var raw map[string]any
	pc.do(t, http.MethodGet, "/v1/cluster", nil, &raw)
	last, _ := raw["last_promotion"].(map[string]any)
	if last == nil || last["node"] != victim {
		t.Fatalf("last_promotion: %v", raw["last_promotion"])
	}
	nodes, _ := raw["nodes"].([]any)
	foundPromoted := false
	for _, nv := range nodes {
		n, _ := nv.(map[string]any)
		if n["name"] == victim {
			foundPromoted, _ = n["promoted"].(bool)
		}
	}
	if !foundPromoted {
		t.Fatalf("dead node not marked promoted in /v1/cluster: %v", raw["nodes"])
	}

	// Router metrics fan-out: promotions and replication counters from
	// the survivors are merged in.
	var mt map[string]any
	if code, _ := pc.do(t, http.MethodGet, "/v1/metrics", nil, &mt); code != http.StatusOK {
		t.Fatal("metrics after failover")
	}
	rt, _ := mt["router"].(map[string]any)
	if rt == nil || rt["promotions_total"].(float64) < 1 {
		t.Fatalf("router metrics missing promotions: %v", mt["router"])
	}
	totals, _ := mt["totals"].(map[string]any)
	if v, ok := totals["replica_promotions"].(float64); !ok || v < 1 {
		t.Fatalf("merged metrics missing replica_promotions: %v", totals)
	}
	if v, ok := totals["replica_ingests"].(float64); !ok || v < 1 {
		t.Fatalf("merged metrics missing replica_ingests: %v", totals)
	}
}
