package router

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relm/internal/fault"
	"relm/internal/service"
)

// --- breaker half-open under concurrency -----------------------------------

// openNode returns a node whose breaker is open with brUntil already in the
// past, so the next brAcquire transitions it to half-open.
func openNode(t *testing.T, now time.Time) *node {
	t.Helper()
	base, _ := url.Parse("http://x.invalid")
	n := &node{name: "x", base: base}
	for i := 0; i < 3; i++ {
		if !n.brAcquire(now) {
			t.Fatalf("closed breaker refused acquire %d", i)
		}
		n.brFailure(3, time.Second, 8*time.Second, now)
	}
	if st := n.snapshot(); st.Breaker != "open" {
		t.Fatalf("breaker %q after threshold failures, want open", st.Breaker)
	}
	return n
}

// TestBreakerHalfOpenSingleProbe: when an open breaker's probe delay has
// passed, concurrent acquirers race for the half-open slot — exactly one
// must win, and the losers must be refused immediately (fail fast, no
// blocking). Run with -race: the claim and the refusals touch the same
// state from every goroutine.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	now := time.Now()
	n := openNode(t, now)
	probeAt := now.Add(2 * time.Second) // past brUntil (1s)

	const workers = 64
	var admitted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if n.brAcquire(probeAt) {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d probes, want exactly 1", got)
	}
	if st := n.snapshot(); st.Breaker != "half-open" {
		t.Fatalf("breaker %q after probe claimed, want half-open", st.Breaker)
	}

	// While the probe is in flight every further acquire is refused.
	for i := 0; i < 8; i++ {
		if n.brAcquire(probeAt.Add(time.Duration(i) * time.Second)) {
			t.Fatalf("acquire %d admitted while probe in flight", i)
		}
	}

	// The winning probe succeeds: breaker closes and admits everyone again.
	n.brSuccess()
	if st := n.snapshot(); st.Breaker != "closed" {
		t.Fatalf("breaker %q after probe success, want closed", st.Breaker)
	}
	if !n.brAcquire(probeAt) {
		t.Fatal("closed breaker refused acquire after recovery")
	}
	n.brSuccess()
}

// TestBreakerHalfOpenProbeFailureReopens: the probe loser path under
// concurrency — many goroutines race for the slot, the single winner fails
// its probe, and the breaker must be open again with a doubled delay.
// Repeats the cycle to check the exponential backoff is race-clean too.
func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	now := time.Now()
	n := openNode(t, now)

	at := now
	wantDelay := time.Second
	for round := 0; round < 3; round++ {
		at = at.Add(wantDelay + time.Second) // past brUntil
		var admitted atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if n.brAcquire(at) {
					admitted.Add(1)
					n.brFailure(3, time.Second, 8*time.Second, at)
				}
			}()
		}
		close(start)
		wg.Wait()
		if got := admitted.Load(); got != 1 {
			t.Fatalf("round %d: %d probes admitted, want 1", round, got)
		}
		if st := n.snapshot(); st.Breaker != "open" {
			t.Fatalf("round %d: breaker %q after failed probe, want open", round, st.Breaker)
		}
		wantDelay = minDur(wantDelay*2, 8*time.Second)
		if n.brAvailable(at.Add(wantDelay - time.Millisecond)) {
			t.Fatalf("round %d: breaker available before doubled delay %v", round, wantDelay)
		}
		if !n.brAvailable(at.Add(wantDelay)) {
			t.Fatalf("round %d: breaker still closed off after delay %v", round, wantDelay)
		}
	}
}

// TestBreakerTransitionsRaceClean hammers acquire/success/failure from
// many goroutines at once with no outcome assertions beyond internal
// consistency — its job is to fail under -race if any transition touches
// breaker state outside the lock.
func TestBreakerTransitionsRaceClean(t *testing.T) {
	base, _ := url.Parse("http://x.invalid")
	n := &node{name: "x", base: base}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			now := time.Now()
			for j := 0; j < 200; j++ {
				at := now.Add(time.Duration(j) * 10 * time.Millisecond)
				if n.brAcquire(at) {
					if (worker+j)%3 == 0 {
						n.brFailure(3, time.Millisecond, 8*time.Millisecond, at)
					} else {
						n.brSuccess()
					}
				} else {
					n.brAvailable(at)
				}
			}
		}(i)
	}
	wg.Wait()
	if st := n.snapshot(); st.Breaker == "" {
		t.Fatal("unreachable")
	}
}

// --- retriable 503 walk ----------------------------------------------------

// fakeBackend is an httptest backend that always passes health checks and
// answers the data path via fn.
func fakeBackend(t *testing.T, name string, fn http.HandlerFunc) Backend {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintf(w, `{"ok":true,"node":%q}`, name)
	})
	mux.HandleFunc("/", fn)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return Backend{Name: name, URL: srv.URL}
}

// retriable503 answers like a service whose WAL cannot ack: 503 with
// Retry-After, the shape writeError produces for store/journal faults.
func retriable503(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Retry-After", "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprint(w, `{"error":"store: wal degraded (read-only): injected"}`)
}

func newFakeCluster(t *testing.T, backends ...Backend) *testCluster {
	t.Helper()
	opts := fastCheck(backends...)
	opts.CheckInterval = time.Hour // first check fires immediately, then never
	opts.BackoffMax = time.Hour
	r, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tc := &testCluster{router: r, front: httptest.NewServer(r)}
	t.Cleanup(func() {
		tc.front.Close()
		r.Close()
	})
	tc.waitHealthy(t, len(backends))
	return tc
}

// TestSessionWalkPrefersRetriable503Over404: only the node holding a
// session answers its requests with a retriable 503 — every other node
// 404s. If the router replayed the 404 it would report a live session as
// gone; it must surface the 503 + Retry-After so the client retries.
func TestSessionWalkPrefersRetriable503Over404(t *testing.T) {
	holder := fakeBackend(t, "holder", retriable503)
	other := fakeBackend(t, "other", func(w http.ResponseWriter, req *http.Request) {
		http.Error(w, `{"error":"session not found"}`, http.StatusNotFound)
	})
	tc := newFakeCluster(t, holder, other)

	for i := 0; i < 6; i++ { // both candidate orders get exercised
		code, hdr := tc.do(t, http.MethodGet, "/v1/sessions/s-1", nil, nil)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("walk %d: status %d, want 503 (holder's answer)", i, code)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatalf("walk %d: replayed 503 lost Retry-After", i)
		}
	}
	// The injected refusals were HTTP answers, not transport failures: the
	// breaker must not have tripped on either node.
	for _, n := range tc.router.nodes {
		if st := n.snapshot(); st.Breaker != "closed" {
			t.Fatalf("node %s breaker %q after 503 answers, want closed", st.Name, st.Breaker)
		}
	}
}

// TestCreateWalksPastRetriable503: a node that cannot durably ack refuses
// creates with a retriable 503; the router must spend retry budget and
// place the session on the next candidate instead of surfacing the 503.
func TestCreateWalksPastRetriable503(t *testing.T) {
	refusing := fakeBackend(t, "refusing", retriable503)

	m := service.NewManager(service.Options{NodeID: "good", Workers: 1, TTL: time.Hour})
	t.Cleanup(m.Close)
	srv := httptest.NewServer(service.NewHandler(m))
	t.Cleanup(srv.Close)

	tc := newFakeCluster(t, refusing, Backend{Name: "good", URL: srv.URL})
	for i := 0; i < 10; i++ {
		var st service.StatusResponse
		code, _ := tc.do(t, http.MethodPost, "/v1/sessions",
			map[string]any{"backend": "bo", "workload": "PageRank", "seed": i}, &st)
		if code != http.StatusCreated {
			t.Fatalf("create %d: status %d (retriable 503 leaked through)", i, code)
		}
		if st.Node != "good" {
			t.Fatalf("create %d landed on %q, want the healthy node", i, st.Node)
		}
	}
	if got := m.Len(); got != 10 {
		t.Fatalf("healthy node holds %d sessions, want 10", got)
	}
}

// TestCreateAllRefusedReplaysRetriable503: when every candidate refuses
// with a retriable 503, the router replays that 503 (still retriable for
// the client) rather than inventing a generic 502.
func TestCreateAllRefusedReplaysRetriable503(t *testing.T) {
	a := fakeBackend(t, "a", retriable503)
	b := fakeBackend(t, "b", retriable503)
	tc := newFakeCluster(t, a, b)

	code, hdr := tc.do(t, http.MethodPost, "/v1/sessions",
		map[string]any{"backend": "bo", "workload": "PageRank"}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("all-refused create: status %d, want replayed 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("replayed 503 lost Retry-After")
	}
}

// --- router.proxy failpoint ------------------------------------------------

// TestInjectedPartitionTripsBreakerNotPromotion: an armed router.proxy
// fault matching one backend acts as a partition — its sends fail without
// reaching the node. Health checks bypass the data path, so they keep
// restoring the node after each suspect(); the breaker is what actually
// accumulates the failures and cuts the node off, and promotions stay at
// zero because the node itself is up (partitioned, not dead).
func TestInjectedPartitionTripsBreakerNotPromotion(t *testing.T) {
	tc := &testCluster{
		managers: make(map[string]*service.Manager),
		servers:  make(map[string]*httptest.Server),
	}
	var backends []Backend
	for _, name := range []string{"a", "b"} {
		m := service.NewManager(service.Options{NodeID: name, Workers: 1, TTL: time.Hour})
		srv := httptest.NewServer(service.NewHandler(m))
		tc.managers[name] = m
		tc.servers[name] = srv
		backends = append(backends, Backend{Name: name, URL: srv.URL})
	}
	opts := fastCheck(backends...) // live 10ms health checks
	opts.BreakerProbe = 30 * time.Millisecond
	r, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tc.router = r
	tc.front = httptest.NewServer(r)
	t.Cleanup(func() {
		tc.front.Close()
		r.Close()
		for _, srv := range tc.servers {
			srv.Close()
		}
		for _, m := range tc.managers {
			m.Close()
		}
	})
	tc.waitHealthy(t, 2)
	t.Cleanup(fault.DisarmAll)
	err = fault.Apply(fault.Schedule{Seed: 7, Rules: []fault.Rule{
		{Point: "router.proxy", Action: "error", Match: "a", Count: 10000, Window: 10000},
	}})
	if err != nil {
		t.Fatal(err)
	}

	var a *node
	for _, n := range tc.router.nodes {
		if n.name == "a" {
			a = n
		}
	}

	// Keep creating until the breaker has opened on the partitioned node;
	// each injected failure suspects it and the next health check restores
	// it, so the walk keeps re-offering it to the failpoint. No create may
	// ever land on the partitioned node.
	deadline := time.Now().Add(10 * time.Second)
	for a.snapshot().BreakerOpens == 0 {
		if time.Now().After(deadline) {
			t.Fatal("injected transport failures never opened the breaker")
		}
		var st service.StatusResponse
		code, _ := tc.do(t, http.MethodPost, "/v1/sessions",
			map[string]any{"backend": "bo", "workload": "PageRank"}, &st)
		if code != http.StatusCreated {
			t.Fatalf("create under partition: status %d", code)
		}
		if st.Node == "a" {
			t.Fatal("create landed on the partitioned node")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := tc.router.promotions.Load(); got != 0 {
		t.Fatalf("injected partition caused %d promotions, want 0 (node is up)", got)
	}

	// Disarm: the half-open probe goes through on the data path and the
	// breaker closes again, so creates reach the node once more.
	fault.DisarmAll()
	deadline = time.Now().Add(10 * time.Second)
	for {
		var st service.StatusResponse
		code, _ := tc.do(t, http.MethodPost, "/v1/sessions",
			map[string]any{"backend": "bo", "workload": "PageRank"}, &st)
		if code == http.StatusCreated && st.Node == "a" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partitioned node never recovered after disarm")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := a.snapshot(); st.Breaker != "closed" {
		t.Fatalf("recovered node's breaker is %q, want closed", st.Breaker)
	}
}
