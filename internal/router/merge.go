package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"relm/internal/obs"
	"relm/internal/service"
)

// This file holds the cluster-wide read endpoints — fan out to every
// eligible node, merge — and the drain orchestration. Merges are
// all-or-nothing: a backend failing mid-fan-out yields 502 with per-node
// detail, never a silent partial merge that under-reports the cluster.
// The one exception is /v1/metrics: monitoring must keep seeing the
// reachable majority while a node is down, so it merges what answered and
// flags the rest (partial: true) instead of failing the whole scrape.

// nodeResult is one backend's answer to a fan-out request.
type nodeResult struct {
	node   *node
	status int
	body   []byte
	err    error
}

// emptyIs503 guards a fan-out with no eligible nodes: an empty merge must
// read as "cluster unreachable", never as "cluster is empty" — monitoring
// that trusts a 200 [] would report a dead cluster as a quiet one.
func emptyIs503(w http.ResponseWriter, results []nodeResult) bool {
	if len(results) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no healthy backend"})
		return true
	}
	return false
}

// fanout issues one request to every eligible node concurrently. It rides
// the circuit breakers: a timed-out backend counts toward tripping its
// breaker, and a node whose breaker claims no capacity mid-flight is
// dropped from the merge — the same exclusion the placement filter applies
// before the fan-out, not a silent partial failure.
func (r *Router) fanout(req *http.Request, method, path string, body []byte) []nodeResult {
	start := time.Now()
	defer func() { r.histFanout.Record(time.Since(start)) }()
	nodes := r.eligibleNodes()
	results := make([]nodeResult, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, buf, _, err := r.sendTracked(r.client, req, n, method, path, "", body)
			results[i] = nodeResult{node: n, status: status, body: buf, err: err}
		}()
	}
	wg.Wait()
	kept := results[:0]
	for _, res := range results {
		if !errors.Is(res.err, errBreakerOpen) {
			kept = append(kept, res)
		}
	}
	return kept
}

// gatherErrors collects per-node failures of a fan-out; nil when clean.
func (r *Router) gatherErrors(results []nodeResult) map[string]string {
	var errs map[string]string
	for _, res := range results {
		var detail string
		switch {
		case res.err != nil:
			res.node.suspect(res.err, r.opts.FailAfter)
			detail = res.err.Error()
		case res.status != http.StatusOK:
			detail = fmt.Sprintf("status %d: %s", res.status, truncate(res.body, 200))
		default:
			continue
		}
		if errs == nil {
			errs = make(map[string]string)
		}
		errs[res.node.name] = detail
	}
	return errs
}

func truncate(b []byte, n int) string {
	s := string(b)
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}

// writePartialFailure answers a failed merge: 502 with per-node detail.
func writePartialFailure(w http.ResponseWriter, errs map[string]string) {
	writeJSON(w, http.StatusBadGateway, map[string]any{
		"error": "partial backend failure",
		"nodes": errs,
	})
}

// handleList merges every node's session listing, each entry stamped with
// its serving node, ordered by (node, id) for determinism.
func (r *Router) handleList(w http.ResponseWriter, req *http.Request) {
	results := r.fanout(req, http.MethodGet, "/v1/sessions", nil)
	if emptyIs503(w, results) {
		return
	}
	if errs := r.gatherErrors(results); errs != nil {
		writePartialFailure(w, errs)
		return
	}
	merged := make([]map[string]any, 0, 16)
	for _, res := range results {
		var list []map[string]any
		if err := json.Unmarshal(res.body, &list); err != nil {
			writePartialFailure(w, map[string]string{res.node.name: "bad listing body: " + err.Error()})
			return
		}
		for _, st := range list {
			st["node"] = res.node.name
			merged = append(merged, st)
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		ni, _ := merged[i]["node"].(string)
		nj, _ := merged[j]["node"].(string)
		if ni != nj {
			return ni < nj
		}
		ii, _ := merged[i]["id"].(string)
		ij, _ := merged[j]["id"].(string)
		return ii < ij
	})
	writeJSON(w, http.StatusOK, merged)
}

// handleMetrics merges every node's /v1/metrics: numeric counters summed
// into totals, per-state session counts summed, per-stage histograms
// merged bucket-wise into cluster-exact latency digests, and each node's
// raw snapshot kept under per_node.
//
// Unlike the other fan-outs this merge is partial, not all-or-nothing: a
// node that errored, answered non-200, or was skipped because its breaker
// is open lands in the failed map and flips partial to true, while the
// nodes that answered still merge — a single sick backend must not blind
// monitoring to the rest of the cluster. 502 only when nothing answered.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	results := r.fanout(req, http.MethodGet, "/v1/metrics", nil)
	totals := make(map[string]float64)
	byState := make(map[string]float64)
	perNode := make(map[string]json.RawMessage, len(results))
	stageSnaps := make(map[string]obs.Snapshot)
	failed := make(map[string]string)
	merged := 0
	for _, res := range results {
		switch {
		case res.err != nil:
			res.node.suspect(res.err, r.opts.FailAfter)
			failed[res.node.name] = res.err.Error()
			continue
		case res.status != http.StatusOK:
			failed[res.node.name] = fmt.Sprintf("status %d: %s", res.status, truncate(res.body, 200))
			continue
		}
		var mt map[string]any
		if err := json.Unmarshal(res.body, &mt); err != nil {
			failed[res.node.name] = "bad metrics body: " + err.Error()
			continue
		}
		for k, v := range mt {
			switch val := v.(type) {
			case float64:
				totals[k] += val
			case map[string]any:
				if k == "sessions_by_state" {
					for state, c := range val {
						if f, ok := c.(float64); ok {
							byState[state] += f
						}
					}
				}
			}
		}
		// Stage histograms merge bucket-wise — exact, unlike merging the
		// per-node percentile digests would be.
		var sh struct {
			StageHist map[string]service.StageHistJSON `json:"stage_hist"`
		}
		if err := json.Unmarshal(res.body, &sh); err == nil {
			for stage, h := range sh.StageHist {
				var snap obs.Snapshot
				snap.Count, snap.SumNs = h.Count, h.SumNs
				copy(snap.Buckets[:], h.Buckets)
				cur := stageSnaps[stage]
				cur.Merge(snap)
				stageSnaps[stage] = cur
			}
		}
		perNode[res.node.name] = json.RawMessage(res.body)
		merged++
	}
	// Nodes the placement filter excluded before the fan-out never appear
	// in results at all; a healthy, non-draining node missing from the
	// merge can only mean its breaker is open.
	for _, n := range r.nodes {
		if _, ok := perNode[n.name]; ok {
			continue
		}
		if _, ok := failed[n.name]; ok {
			continue
		}
		if n.eligible() {
			failed[n.name] = "breaker open"
		}
	}
	if merged == 0 {
		if len(failed) == 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no healthy backend"})
			return
		}
		writePartialFailure(w, failed)
		return
	}
	stages := make(map[string]obs.Summary, len(stageSnaps))
	for stage, snap := range stageSnaps {
		stages[stage] = snap.Summarize()
	}
	var opens, retries uint64
	var open, halfOpen int
	for _, n := range r.nodes {
		n.mu.Lock()
		opens += n.brOpens
		retries += n.retries
		switch n.brState {
		case brOpen:
			open++
		case brHalfOpen:
			halfOpen++
		}
		n.mu.Unlock()
	}
	resp := map[string]any{
		"nodes":             merged,
		"totals":            totals,
		"sessions_by_state": byState,
		"per_node":          perNode,
		"router": map[string]any{
			"promotions_total":  r.promotions.Load(),
			"breaker_opens":     opens,
			"breakers_open":     open,
			"breakers_halfopen": halfOpen,
			"retries_total":     retries,
		},
	}
	if len(stages) > 0 {
		resp["stages"] = stages
	}
	if len(failed) > 0 {
		resp["partial"] = true
		resp["failed"] = failed
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRepository merges the repository inspection views: lifecycle
// counters summed, model lists concatenated with their node stamped on.
func (r *Router) handleRepository(w http.ResponseWriter, req *http.Request) {
	results := r.fanout(req, http.MethodGet, "/v1/repository", nil)
	if emptyIs503(w, results) {
		return
	}
	if errs := r.gatherErrors(results); errs != nil {
		writePartialFailure(w, errs)
		return
	}
	var entries, hits, evictions float64
	models := make([]map[string]any, 0, 16)
	for _, res := range results {
		var rep struct {
			Entries   float64          `json:"entries"`
			Hits      float64          `json:"hits"`
			Evictions float64          `json:"evictions"`
			Models    []map[string]any `json:"models"`
		}
		if err := json.Unmarshal(res.body, &rep); err != nil {
			writePartialFailure(w, map[string]string{res.node.name: "bad repository body: " + err.Error()})
			return
		}
		entries += rep.Entries
		hits += rep.Hits
		evictions += rep.Evictions
		for _, mdl := range rep.Models {
			mdl["node"] = res.node.name
			models = append(models, mdl)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes":     len(results),
		"entries":   entries,
		"hits":      hits,
		"evictions": evictions,
		"models":    models,
	})
}

// handleRepoExport concatenates every node's full repository export.
func (r *Router) handleRepoExport(w http.ResponseWriter, req *http.Request) {
	results := r.fanout(req, http.MethodGet, "/v1/repository/export", nil)
	if emptyIs503(w, results) {
		return
	}
	if errs := r.gatherErrors(results); errs != nil {
		writePartialFailure(w, errs)
		return
	}
	merged := make([]json.RawMessage, 0, 16)
	for _, res := range results {
		var exp struct {
			Models []json.RawMessage `json:"models"`
		}
		if err := json.Unmarshal(res.body, &exp); err != nil {
			writePartialFailure(w, map[string]string{res.node.name: "bad export body: " + err.Error()})
			return
		}
		merged = append(merged, exp.Models...)
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": merged})
}

// handleRepoImport broadcasts an import to every eligible node (imports are
// idempotent on the backend, so replaying a partially-failed broadcast is
// safe).
func (r *Router) handleRepoImport(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, 64<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "read body: " + err.Error()})
		return
	}
	results := r.fanout(req, http.MethodPost, "/v1/repository/import", body)
	if len(results) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no healthy backend"})
		return
	}
	if errs := r.gatherErrors(results); errs != nil {
		writePartialFailure(w, errs)
		return
	}
	imported := make(map[string]int, len(results))
	for _, res := range results {
		var imp service.RepoImportResponse
		if err := json.Unmarshal(res.body, &imp); err != nil {
			writePartialFailure(w, map[string]string{res.node.name: "bad import body: " + err.Error()})
			return
		}
		imported[res.node.name] = imp.Imported
	}
	writeJSON(w, http.StatusOK, map[string]any{"imported": imported})
}

// --- drain orchestration ---------------------------------------------------

// reassignment records where one drained session went.
type reassignment struct {
	ID          string `json:"id"`
	Node        string `json:"node"`
	WarmStarted bool   `json:"warm_started"`
}

// recreateBodies renders drained sessions as ready-to-POST /v1/sessions
// bodies (ID included), for hand-off error responses.
func recreateBodies(sessions []service.DrainSessionJSON) []service.CreateRequest {
	out := make([]service.CreateRequest, 0, len(sessions))
	for _, ds := range sessions {
		c := ds.Create
		c.ID = ds.ID
		out = append(out, c)
	}
	return out
}

// handleDrain drains one node and hands its sessions off:
//
//  1. the node is taken out of placement immediately,
//  2. POST /v1/drain closes its sessions, force-harvesting them into the
//     model repository, and returns the hand-off package,
//  3. the exported repository is imported into every surviving node,
//  4. each non-terminal session is re-created — same ID, original spec,
//     warm-start requested — on its new rendezvous owner, which seeds it
//     from the just-imported repository entries (§6.6).
//
// Any hand-off failure yields 502 with detail, and the drain is not rolled
// back (the node is already out of service). Re-running the drain cannot
// recover — a second service Drain returns an empty report — so the 502
// carries everything needed to finish the hand-off by hand: each un-placed
// session as a ready-to-POST /v1/sessions body (ID included; the backend
// answers 409 if a retry already placed it), and the exported models when
// any import failed (re-POST them to /v1/repository/import — idempotent).
func (r *Router) handleDrain(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("node")
	n := r.nodeByName(name)
	if n == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("unknown node %q", name)})
		return
	}
	n.mu.Lock()
	n.draining = true
	n.mu.Unlock()
	r.logf("router: draining node %s", name)

	status, body, _, err := r.send(r.drainClient, req, n, http.MethodPost, "/v1/drain", "", []byte("{}"))
	if err != nil {
		n.suspect(err, r.opts.FailAfter)
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error": "drain request failed: " + err.Error(), "node": name,
		})
		return
	}
	if status != http.StatusOK {
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error": fmt.Sprintf("drain status %d: %s", status, truncate(body, 200)), "node": name,
		})
		return
	}
	var drained service.DrainResponse
	if err := json.Unmarshal(body, &drained); err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error": "bad drain body: " + err.Error(), "node": name,
		})
		return
	}

	survivors := r.eligibleNodes()
	if len(survivors) == 0 {
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":      "no healthy successor: sessions closed; finish the hand-off by POSTing each unassigned create and the models once a node is back",
			"node":       name,
			"closed":     drained.Closed,
			"unassigned": recreateBodies(drained.Sessions),
			"models":     drained.Models,
		})
		return
	}

	// Share the drained node's models so any successor can warm-start.
	errs := make(map[string]string)
	importFailed := false
	if len(drained.Models) > 0 {
		importBody, err := json.Marshal(service.RepoImportRequest{Models: drained.Models})
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": "encode import: " + err.Error()})
			return
		}
		for _, s := range survivors {
			status, buf, _, err := r.send(r.drainClient, req, s, http.MethodPost, "/v1/repository/import", "", importBody)
			if err != nil {
				errs["import "+s.name] = err.Error()
				importFailed = true
			} else if status != http.StatusOK {
				errs["import "+s.name] = fmt.Sprintf("status %d: %s", status, truncate(buf, 200))
				importFailed = true
			}
		}
	}

	// Re-create each non-terminal session on its new rendezvous owner.
	reassigned := make([]reassignment, 0, len(drained.Sessions))
	var unassigned []service.CreateRequest
	for _, ds := range drained.Sessions {
		create := ds.Create
		create.ID = ds.ID
		createBody, err := json.Marshal(create)
		if err != nil {
			errs["reassign "+ds.ID] = "encode: " + err.Error()
			unassigned = append(unassigned, create)
			continue
		}
		placed := false
		for _, succ := range candidates(survivors, ds.ID) {
			if !succ.eligible() {
				continue
			}
			status, buf, _, err := r.send(r.drainClient, req, succ, http.MethodPost, "/v1/sessions", "", createBody)
			if err != nil {
				succ.suspect(err, r.opts.FailAfter)
				continue
			}
			if status != http.StatusCreated {
				errs["reassign "+ds.ID] = fmt.Sprintf("node %s: status %d: %s", succ.name, status, truncate(buf, 200))
				break
			}
			var st service.StatusResponse
			_ = json.Unmarshal(buf, &st)
			reassigned = append(reassigned, reassignment{ID: ds.ID, Node: succ.name, WarmStarted: st.WarmStarted})
			placed = true
			break
		}
		if !placed {
			unassigned = append(unassigned, create)
			if errs["reassign "+ds.ID] == "" {
				errs["reassign "+ds.ID] = "no reachable successor"
			}
		}
	}

	resp := map[string]any{
		"node":       name,
		"closed":     drained.Closed,
		"models":     len(drained.Models),
		"reassigned": reassigned,
	}
	if len(errs) > 0 {
		// The hand-off package for the operator: re-POST each unassigned
		// body to /v1/sessions (409 = a retry already placed it); on
		// import failures, re-POST models_detail to /v1/repository/import.
		resp["error"] = "drain hand-off incomplete"
		resp["nodes"] = errs
		resp["unassigned"] = unassigned
		if importFailed {
			resp["models_detail"] = drained.Models
		}
		writeJSON(w, http.StatusBadGateway, resp)
		return
	}
	r.logf("router: drained %s: %d sessions closed, %d reassigned, %d models shared",
		name, drained.Closed, len(reassigned), len(drained.Models))
	writeJSON(w, http.StatusOK, resp)
}
