package router

import (
	"net/http"
	"strconv"

	"relm/internal/obs"
	"relm/internal/service"
)

// Router-local observability endpoints. The router's Prometheus scrape is
// deliberately local — its own counters, per-backend gauges, and its
// pick/proxy/fanout stage latencies — and never fans out to the backends:
// a monitoring system scrapes each relm-serve's /metrics directly, and a
// scrape must stay cheap and dependency-free. Cluster-merged stage
// digests live on /v1/metrics instead.

// handleProm renders GET /metrics in the Prometheus text format.
func (r *Router) handleProm(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	p.Counter("relm_router_promotions_total", "Replica promotions orchestrated.", float64(r.promotions.Load()))
	var healthy, draining int
	for _, n := range r.nodes {
		st := n.snapshot()
		if st.Healthy {
			healthy++
		}
		if st.Draining {
			draining++
		}
		p.Gauge("relm_router_backend_healthy", "Backend health (1 healthy, 0 not).", b2f(st.Healthy), "backend", st.Name)
		p.Gauge("relm_router_backend_draining", "Backend draining (1 yes, 0 no).", b2f(st.Draining), "backend", st.Name)
		p.Gauge("relm_router_backend_sessions", "Sessions reported by the backend.", float64(st.Sessions), "backend", st.Name)
		p.Gauge("relm_router_backend_breaker_open", "Breaker admitting no traffic (1 open, 0 closed/half-open).", b2f(st.Breaker == "open"), "backend", st.Name)
		p.Counter("relm_router_backend_breaker_opens_total", "Breaker trips.", float64(st.BreakerOpens), "backend", st.Name)
		p.Counter("relm_router_backend_retries_total", "Requests retried away from this backend.", float64(st.Retries), "backend", st.Name)
	}
	p.Gauge("relm_router_backends", "Configured backends.", float64(len(r.nodes)))
	p.Gauge("relm_router_backends_healthy", "Healthy backends.", float64(healthy))
	p.Gauge("relm_router_backends_draining", "Draining backends.", float64(draining))
	p.StageHistograms("relm_router_stage_latency_seconds", "Router stage latency distribution.", r.opts.Obs.Snapshots())
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handleTraces serves GET /v1/traces: the router's recent-trace ring,
// same wire shape as the backend endpoint so tooling reads both.
func (r *Router) handleTraces(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	if id := q.Get("id"); id != "" {
		rec, ok := r.tracer.Find(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "trace not found: " + id})
			return
		}
		writeJSON(w, http.StatusOK, service.TracesResponse{Node: "router", Traces: []obs.TraceRecord{rec}})
		return
	}
	limit, _ := strconv.Atoi(q.Get("limit"))
	writeJSON(w, http.StatusOK, service.TracesResponse{Node: "router", Traces: r.tracer.Recent(limit)})
}
