package router

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"relm/internal/obs"
	"relm/internal/service"
)

// TestTracePropagation drives a session lifecycle through the router and
// follows one trace ID across the hops: the router's response header, the
// router's own trace ring (with its proxy span), and the backend's ring
// (with the service stage span) must all agree on the ID the router
// minted.
func TestTracePropagation(t *testing.T) {
	tc := newTestCluster(t, "a", "b")

	var created service.StatusResponse
	code, hdr := tc.do(t, http.MethodPost, "/v1/sessions",
		map[string]any{"backend": "bo", "workload": "PageRank", "seed": 7}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	traceID := hdr.Get(obs.TraceHeader)
	if !strings.HasPrefix(traceID, "t-") {
		t.Fatalf("router response carries no trace ID: %q", traceID)
	}

	// The router's ring holds the trace with the proxy hop timed.
	var rt service.TracesResponse
	if code, _ := tc.do(t, http.MethodGet, "/v1/traces?id="+traceID, nil, &rt); code != http.StatusOK {
		t.Fatalf("router traces: status %d", code)
	}
	if len(rt.Traces) != 1 || rt.Traces[0].ID != traceID {
		t.Fatalf("router trace lookup: %+v", rt)
	}
	foundProxy := false
	for _, sp := range rt.Traces[0].Spans {
		if sp.Name == "proxy "+created.Node {
			foundProxy = true
		}
	}
	if !foundProxy {
		t.Fatalf("router trace lacks the proxy hop span: %+v", rt.Traces[0].Spans)
	}

	// The backend adopted the same ID and recorded its handler stage.
	resp, err := http.Get(tc.servers[created.Node].URL + "/v1/traces?id=" + traceID)
	if err != nil {
		t.Fatalf("backend traces: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("backend traces: status %d — the trace ID did not survive the proxy hop", resp.StatusCode)
	}
	var bt service.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&bt); err != nil {
		t.Fatalf("decode backend traces: %v", err)
	}
	if len(bt.Traces) != 1 || bt.Traces[0].ID != traceID {
		t.Fatalf("backend trace lookup: %+v", bt)
	}
	foundStage := false
	for _, sp := range bt.Traces[0].Spans {
		if sp.Name == "service.create" {
			foundStage = true
		}
	}
	if !foundStage {
		t.Fatalf("backend trace lacks the service.create span: %+v", bt.Traces[0].Spans)
	}

	// A client-supplied trace ID is adopted, not replaced.
	req, err := http.NewRequest(http.MethodGet, tc.front.URL+"/v1/sessions/"+created.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, "t-cafecafecafecafecafecafe")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("status through router: %v", err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get(obs.TraceHeader); got != "t-cafecafecafecafecafecafe" {
		t.Fatalf("router replaced the upstream trace ID: %q", got)
	}
}

// TestRouterPromEndpoint asserts GET /metrics on the router emits
// parseable Prometheus text covering the backend gauges and the router's
// own stage latencies.
func TestRouterPromEndpoint(t *testing.T) {
	tc := newTestCluster(t, "a", "b")

	// Exercise the data path so the stage histograms have samples.
	var created service.StatusResponse
	if code, _ := tc.do(t, http.MethodPost, "/v1/sessions",
		map[string]any{"backend": "bo", "workload": "PageRank", "seed": 1}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}

	resp, err := http.Get(tc.front.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	want := map[string]bool{
		"relm_router_backends":                    false,
		"relm_router_backends_healthy":            false,
		"relm_router_backend_healthy":             false,
		"relm_router_stage_latency_seconds_count": false,
		"relm_router_promotions_total":            false,
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable sample line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("metrics output missing family %s", name)
		}
	}
}
