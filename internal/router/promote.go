package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"relm/internal/replica"
	"relm/internal/service"
)

// Automatic fail-over. When a backend dies without draining (health-check
// death), the router finds which surviving node holds the dead primary's
// replica — the backends ship their WAL to rendezvous-chosen followers —
// and promotes it: the follower fences the replica against further ingest,
// replays it exactly like a crash recovery, and returns a hand-off package
// of every non-terminal session with full history. The router then imports
// the dead node's model repository into the survivors and re-creates each
// session under its original ID on its new rendezvous owner: remote
// sessions are replayed observation by observation (re-arming suggestions
// where the journal says one was outstanding) so the successor's tuner is
// bit-exact with the lost one; auto sessions restart seeded with their own
// history as a prior and the worker pool re-drives them.
//
// Drain is deliberately NOT a trigger: a drained node hands its sessions
// off itself. Promotion is only for nodes that never got the chance.

// PromotionReport describes one fail-over (GET /v1/cluster,
// "last_promotion").
type PromotionReport struct {
	Node       string            `json:"node"`   // the dead primary
	Holder     string            `json:"holder"` // survivor whose replica was promoted
	Sessions   int               `json:"sessions"`
	Reassigned []reassignment    `json:"reassigned"`
	Models     int               `json:"models"`
	Errors     map[string]string `json:"errors,omitempty"`
	At         time.Time         `json:"at"`
}

// maybePromote starts a promotion for a dead node unless one already ran
// or is running. Called from the health loop on every failed check, so a
// failed attempt (e.g. no survivor holds a replica yet) retries at
// health-check cadence.
func (r *Router) maybePromote(n *node) {
	n.mu.Lock()
	if n.draining || n.promoted || n.promoting {
		n.mu.Unlock()
		return
	}
	n.promoting = true
	n.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ok := r.promote(n)
		n.mu.Lock()
		n.promoting = false
		if ok {
			n.promoted = true
		}
		n.mu.Unlock()
	}()
}

// promote runs one fail-over attempt for dead node n. It returns false
// only while nothing irreversible has happened (no replica found, promote
// call failed) — those attempts retry. Once a follower has fenced and
// replayed the replica the promotion is declared done even if parts of the
// hand-off failed; the remainder is in the report for the operator, and a
// rerun could not recover it anyway (the replica now reports Promoted and
// would be skipped).
func (r *Router) promote(n *node) bool {
	if n.eligible() {
		return false // flapped back to healthy; nothing to do
	}
	survivors := r.survivorsFor(n)
	if len(survivors) == 0 {
		r.logf("router: promote %s: no healthy survivor", n.name)
		return false
	}

	holder, holderBytes := r.findHolder(n.name, survivors)
	if holder == nil {
		r.logf("router: promote %s: no survivor holds an unpromoted replica", n.name)
		return false
	}
	r.logf("router: promoting replica of %s on %s (%d bytes)", n.name, holder.name, holderBytes)

	body, _ := json.Marshal(map[string]string{"primary": n.name})
	status, buf, err := r.call(r.drainClient, holder, http.MethodPost, "/v1/replica/promote", "", body)
	if err != nil {
		holder.suspect(err, r.opts.FailAfter)
		r.logf("router: promote %s on %s: %v", n.name, holder.name, err)
		return false
	}
	if status != http.StatusOK {
		r.logf("router: promote %s on %s: status %d: %s", n.name, holder.name, status, truncate(buf, 200))
		return false
	}
	var handoff service.HandoffResponse
	if err := json.Unmarshal(buf, &handoff); err != nil {
		r.logf("router: promote %s on %s: bad hand-off body: %v", n.name, holder.name, err)
		return false
	}

	// Point of no return: the replica is fenced and replayed.
	r.promotions.Add(1)
	errs := make(map[string]string)

	// Share the dead node's models so any successor can warm-start, same
	// as a drain would have.
	if len(handoff.Models) > 0 {
		importBody, err := json.Marshal(service.RepoImportRequest{Models: handoff.Models})
		if err == nil {
			for _, s := range survivors {
				st, b, err := r.call(r.drainClient, s, http.MethodPost, "/v1/repository/import", "", importBody)
				if err != nil {
					errs["import "+s.name] = err.Error()
				} else if st != http.StatusOK {
					errs["import "+s.name] = fmt.Sprintf("status %d: %s", st, truncate(b, 200))
				}
			}
		} else {
			errs["import"] = "encode: " + err.Error()
		}
	}

	// Re-create every recovered session under its original ID on its new
	// rendezvous owner, then replay its history into it.
	reassigned := make([]reassignment, 0, len(handoff.Sessions))
	for _, hs := range handoff.Sessions {
		create := hs.Create
		create.ID = hs.ID
		createBody, err := json.Marshal(create)
		if err != nil {
			errs["recreate "+hs.ID] = "encode: " + err.Error()
			continue
		}
		placed := false
		for _, succ := range candidates(survivors, hs.ID) {
			st, b, err := r.call(r.drainClient, succ, http.MethodPost, "/v1/sessions", "", createBody)
			if err != nil {
				succ.suspect(err, r.opts.FailAfter)
				continue
			}
			switch st {
			case http.StatusCreated:
				if rerr := r.replaySession(succ, hs); rerr != nil {
					errs["replay "+hs.ID] = rerr.Error()
				}
				reassigned = append(reassigned, reassignment{ID: hs.ID, Node: succ.name, WarmStarted: len(create.PriorPoints) > 0})
				placed = true
			case http.StatusConflict:
				// A concurrent or earlier attempt already placed it.
				reassigned = append(reassigned, reassignment{ID: hs.ID, Node: succ.name})
				placed = true
			default:
				errs["recreate "+hs.ID] = fmt.Sprintf("node %s: status %d: %s", succ.name, st, truncate(b, 200))
			}
			break
		}
		if !placed && errs["recreate "+hs.ID] == "" {
			errs["recreate "+hs.ID] = "no reachable successor"
		}
	}

	if len(errs) == 0 {
		errs = nil
	}
	report := &PromotionReport{
		Node:       n.name,
		Holder:     holder.name,
		Sessions:   len(handoff.Sessions),
		Reassigned: reassigned,
		Models:     len(handoff.Models),
		Errors:     errs,
		At:         time.Now(),
	}
	r.promoMu.Lock()
	r.lastPromo = report
	r.promoMu.Unlock()
	r.logf("router: promoted %s via %s: %d sessions recovered, %d reassigned, %d models, %d errors",
		n.name, holder.name, len(handoff.Sessions), len(reassigned), len(handoff.Models), len(errs))
	return true
}

// survivorsFor returns the eligible nodes other than the dead one.
func (r *Router) survivorsFor(dead *node) []*node {
	var out []*node
	for _, n := range r.eligibleNodes() {
		if n != dead {
			out = append(out, n)
		}
	}
	return out
}

// findHolder asks every survivor whether it holds a replica of the dead
// primary and returns the one with the most replicated bytes (already
// promoted replicas are skipped — they were consumed by a previous
// fail-over and a revived primary has been shipping nowhere since).
func (r *Router) findHolder(dead string, survivors []*node) (*node, int64) {
	type cand struct {
		n     *node
		bytes int64
	}
	var cands []cand
	q := url.Values{"primary": {dead}}.Encode()
	for _, s := range survivors {
		status, buf, err := r.call(r.client, s, http.MethodGet, "/v1/replica/status", q, nil)
		if err != nil || status != http.StatusOK {
			continue
		}
		var st replica.StatusResponse
		if err := json.Unmarshal(buf, &st); err != nil {
			continue
		}
		for _, ps := range st.Primaries {
			if ps.Primary == dead && !ps.Promoted {
				cands = append(cands, cand{n: s, bytes: ps.Bytes})
			}
		}
	}
	if len(cands) == 0 {
		return nil, 0
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].bytes != cands[j].bytes {
			return cands[i].bytes > cands[j].bytes
		}
		return cands[i].n.name < cands[j].n.name
	})
	return cands[0].n, cands[0].bytes
}

// replaySession drives a recreated remote session through its recorded
// history on its new owner: re-arm the suggestion where one was
// outstanding, then report the observation — the exact interleaving the
// journal recorded, which is what makes the successor's tuner bit-exact.
// Auto sessions are not replayed (their history rode in as the create
// prior and a worker re-drives them).
func (r *Router) replaySession(succ *node, hs service.HandoffSessionJSON) error {
	if hs.Create.Mode == "auto" || len(hs.History) == 0 {
		return nil
	}
	base := "/v1/sessions/" + hs.ID
	for i, h := range hs.History {
		if h.Suggested {
			if st, b, err := r.call(r.drainClient, succ, http.MethodPost, base+"/suggest", "", []byte("{}")); err != nil {
				return fmt.Errorf("suggest %d: %w", i, err)
			} else if st != http.StatusOK {
				return fmt.Errorf("suggest %d: status %d: %s", i, st, truncate(b, 200))
			}
		}
		obs, err := json.Marshal(service.ObserveRequest{
			Config:     h.Config,
			RuntimeSec: h.RuntimeSec,
			Aborted:    h.Aborted,
			GCOverhead: h.GCOverhead,
			Stats:      h.Stats,
		})
		if err != nil {
			return fmt.Errorf("observe %d: encode: %w", i, err)
		}
		if st, b, err := r.call(r.drainClient, succ, http.MethodPost, base+"/observe", "", obs); err != nil {
			return fmt.Errorf("observe %d: %w", i, err)
		} else if st != http.StatusOK {
			return fmt.Errorf("observe %d: status %d: %s", i, st, truncate(b, 200))
		}
	}
	return nil
}

// call is send without an inbound request to proxy — the promotion path
// runs from the health loop, not a handler.
func (r *Router) call(client *http.Client, n *node, method, path, query string, body []byte) (int, []byte, error) {
	u := *n.base
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	u.RawQuery = query
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, u.String(), rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, buf, nil
}
