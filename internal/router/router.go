// Package router is the stateless HTTP front door of a multi-node tuning
// deployment: it partitions sessions across N relm-serve backends by
// rendezvous (highest-random-weight) hashing on the session ID, proxies the
// whole /v1/sessions lifecycle to each session's home node, fans out and
// merges the cluster-wide read endpoints (/v1/sessions, /v1/metrics,
// /v1/repository), and health-checks every backend with exponential
// backoff.
//
// Rendezvous hashing keeps the router stateless: the owner of a session is
// a pure function of (session ID, set of healthy nodes), so any number of
// router replicas agree on placement without a shared ring, and removing a
// node remaps only that node's sessions. The router mints session IDs on
// create (the backends honour them via Spec.ID) so the routing key exists
// before the session does.
//
// Node drain/hand-off (POST /v1/cluster/drain/{node}) leans on the
// service's durability: the draining node force-harvests its sessions into
// the model repository and closes them (POST /v1/drain), the router imports
// the exported repository into the surviving nodes, and re-creates each
// non-terminal session — same ID, original spec — on its new rendezvous
// owner with a warm-start request, so the successor seeds the rebuilt
// session from the drained node's observations (§6.6 model re-use).
package router

import (
	"bytes"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"relm/internal/fault"
	"relm/internal/obs"
)

// Backend names one relm-serve node. Name is the node identity the backend
// was started with (-node-id); the health check cross-verifies it against
// the identity the node reports, catching a router pointed at the wrong
// process.
type Backend struct {
	Name string
	URL  string
}

// Options configures a Router. Zero values select sensible defaults.
type Options struct {
	// Backends is the set of relm-serve nodes to partition sessions over.
	Backends []Backend
	// CheckInterval is the healthy-node poll period (default 2s). Failing
	// nodes are polled with exponential backoff from CheckInterval up to
	// BackoffMax (default 30s).
	CheckInterval time.Duration
	BackoffMax    time.Duration
	// FailAfter is how many consecutive health-check failures mark a node
	// unhealthy (default 2). One successful check marks it healthy again.
	FailAfter int
	// Timeout bounds each proxied backend request (default 15s). Drain
	// orchestration uses 4x this, since it closes every session.
	Timeout time.Duration
	// Transport overrides the backend HTTP transport (tests, benchmarks).
	Transport http.RoundTripper
	// Logf, when non-nil, receives health-transition and drain log lines.
	Logf func(format string, args ...any)
	// RetryBudget is how many additional candidates a routed request may be
	// retried on after its first choice fails at the transport level or
	// answers 503-draining (default 2). The budget bounds worst-case
	// latency: a request never waits on more than 1+RetryBudget backends.
	RetryBudget int
	// BreakerThreshold is how many consecutive data-path transport failures
	// open a backend's circuit breaker (default 3). An open breaker admits
	// no data-path traffic; after BreakerProbe (doubling up to
	// BreakerProbeMax on repeated failure, defaults 1s/30s) one half-open
	// probe request is admitted, and its success closes the breaker.
	BreakerThreshold int
	BreakerProbe     time.Duration
	BreakerProbeMax  time.Duration
	// Promote enables automatic fail-over: when a backend dies without
	// draining, the router promotes its replica on a surviving follower and
	// re-creates the lost sessions (requires -replicate-to on the
	// backends).
	Promote bool
	// Obs is the stage-latency registry (router.pick / router.proxy /
	// router.fanout). Created when nil, so instrumentation is always live.
	Obs *obs.Registry
	// SlowLog, when > 0, logs any request slower than this span-by-span
	// through Logf.
	SlowLog time.Duration
}

func (o *Options) fill() {
	if o.CheckInterval == 0 {
		o.CheckInterval = 2 * time.Second
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 30 * time.Second
	}
	if o.FailAfter == 0 {
		o.FailAfter = 2
	}
	if o.Timeout == 0 {
		o.Timeout = 15 * time.Second
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 2
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerProbe == 0 {
		o.BreakerProbe = time.Second
	}
	if o.BreakerProbeMax == 0 {
		o.BreakerProbeMax = 30 * time.Second
	}
	if o.Obs == nil {
		o.Obs = obs.NewRegistry()
	}
}

// node is the router's view of one backend. All mutable fields behind mu.
type node struct {
	name string
	base *url.URL

	mu        sync.Mutex
	healthy   bool
	draining  bool
	fails     int
	sessions  int
	lastErr   string
	lastCheck time.Time

	// Circuit breaker over the data path (see breaker.go).
	brState   int
	brFails   int
	brProbing bool
	brUntil   time.Time
	brDelay   time.Duration
	brOpens   uint64
	retries   uint64

	// Fail-over bookkeeping (see promote.go). promoted is sticky: a node
	// that died and was promoted away stays promoted even if its process
	// revives — its data lives elsewhere now and a revived copy is stale.
	promoting bool
	promoted  bool
}

func (n *node) snapshot() NodeStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	return NodeStatus{
		Name:         n.name,
		URL:          n.base.String(),
		Healthy:      n.healthy,
		Draining:     n.draining,
		Sessions:     n.sessions,
		Fails:        n.fails,
		LastError:    n.lastErr,
		LastCheck:    n.lastCheck,
		Breaker:      breakerWord(n.brState),
		BreakerOpens: n.brOpens,
		Retries:      n.retries,
		Promoted:     n.promoted,
	}
}

// eligible reports whether the node may receive traffic.
func (n *node) eligible() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.healthy && !n.draining
}

// suspect marks a node unhealthy after a failed proxy attempt, without
// waiting for the health checker to notice.
func (n *node) suspect(err error, failAfter int) {
	n.mu.Lock()
	n.healthy = false
	if n.fails < failAfter {
		n.fails = failAfter
	}
	n.lastErr = err.Error()
	n.mu.Unlock()
}

// NodeStatus is the wire form of one backend's state (GET /v1/cluster).
type NodeStatus struct {
	Name      string    `json:"name"`
	URL       string    `json:"url"`
	Healthy   bool      `json:"healthy"`
	Draining  bool      `json:"draining,omitempty"`
	Sessions  int       `json:"sessions"`
	Fails     int       `json:"fails,omitempty"`
	LastError string    `json:"last_error,omitempty"`
	LastCheck time.Time `json:"last_check,omitzero"`
	// Breaker is the node's circuit-breaker state (closed/open/half-open);
	// BreakerOpens counts trips, Retries counts requests retried away from
	// this node onto another candidate.
	Breaker      string `json:"breaker"`
	BreakerOpens uint64 `json:"breaker_opens,omitempty"`
	Retries      uint64 `json:"retries,omitempty"`
	// Promoted reports the node's replica was promoted after it died; a
	// revived process under this name holds stale state.
	Promoted bool `json:"promoted,omitempty"`
}

// Router partitions tuning sessions across backends. It is an http.Handler;
// all methods are safe for concurrent use.
type Router struct {
	opts  Options
	nodes []*node
	// client serves lifecycle proxying and fan-outs; drainClient allows
	// drains the time to close and hand off every session.
	client      *http.Client
	drainClient *http.Client
	mux         http.Handler
	quit        chan struct{}
	wg          sync.WaitGroup
	closeOnce   sync.Once

	// Observability: request tracer plus the stage histograms, resolved
	// once at construction so the data path never takes a registry lock.
	tracer     *obs.Tracer
	histPick   *obs.Histogram
	histProxy  *obs.Histogram
	histFanout *obs.Histogram

	// Fail-over accounting (see promote.go).
	promotions atomic.Uint64
	promoMu    sync.Mutex
	lastPromo  *PromotionReport
}

// New builds a Router over opts.Backends and starts its health checkers.
// Call Close to stop them.
func New(opts Options) (*Router, error) {
	opts.fill()
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("router: no backends configured")
	}
	r := &Router{
		opts: opts,
		client: &http.Client{
			Timeout:   opts.Timeout,
			Transport: opts.Transport,
		},
		drainClient: &http.Client{
			Timeout:   4 * opts.Timeout,
			Transport: opts.Transport,
		},
		quit: make(chan struct{}),
	}
	seen := make(map[string]bool)
	for _, b := range opts.Backends {
		if b.Name == "" {
			return nil, fmt.Errorf("router: backend %q has no name", b.URL)
		}
		if seen[b.Name] {
			return nil, fmt.Errorf("router: duplicate backend name %q", b.Name)
		}
		seen[b.Name] = true
		u, err := url.Parse(b.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: backend %s: bad URL %q", b.Name, b.URL)
		}
		r.nodes = append(r.nodes, &node{name: b.Name, base: u})
	}
	r.tracer = obs.NewTracer("router", opts.SlowLog, opts.Logf)
	r.histPick = opts.Obs.Histogram("router.pick")
	r.histProxy = opts.Obs.Histogram("router.proxy")
	r.histFanout = opts.Obs.Histogram("router.fanout")
	r.mux = r.buildMux()
	for _, n := range r.nodes {
		r.wg.Add(1)
		go r.healthLoop(n)
	}
	return r, nil
}

// Close stops the health checkers.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.quit) })
	r.wg.Wait()
}

func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}

func (r *Router) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// --- placement -------------------------------------------------------------

// score is the rendezvous weight of placing key on the named node: FNV-1a
// over "name\x00key" pushed through a splitmix64 finalizer. The finalizer
// matters: raw FNV of short strings leaves the name's contribution parked
// in the high bits, so one node would outscore the rest for almost every
// key. The owner of a key is the eligible node with the highest score, so
// every router replica agrees on placement statelessly and removing a node
// remaps only the keys it owned.
func score(name, key string) uint64 {
	// FNV-1a inlined: hash/fnv allocates its state on every New64a, and
	// score runs once per node per routed request.
	const prime = 1099511628211
	x := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		x ^= uint64(name[i])
		x *= prime
	}
	x *= prime // the \x00 separator (XOR with 0 is identity)
	for i := 0; i < len(key); i++ {
		x ^= uint64(key[i])
		x *= prime
	}
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// candidates returns the given nodes ordered by descending rendezvous score
// for key (ties broken by name, so ordering is total).
func candidates(nodes []*node, key string) []*node {
	out := append([]*node(nil), nodes...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := score(out[i].name, key), score(out[j].name, key)
		if si != sj {
			return si > sj
		}
		return out[i].name < out[j].name
	})
	return out
}

// eligibleNodes snapshots the nodes currently accepting data-path
// traffic: healthy, not draining, and with breaker capacity (closed, or
// due a half-open probe).
func (r *Router) eligibleNodes() []*node {
	now := time.Now()
	out := make([]*node, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n.eligible() && n.brAvailable(now) {
			out = append(out, n)
		}
	}
	return out
}

// pick returns the owner of key among the eligible nodes (nil when none).
func (r *Router) pick(key string) *node {
	now := time.Now()
	var best *node
	var bestScore uint64
	for _, n := range r.nodes {
		if !n.eligible() || !n.brAvailable(now) {
			continue
		}
		s := score(n.name, key)
		if best == nil || s > bestScore || (s == bestScore && n.name < best.name) {
			best, bestScore = n, s
		}
	}
	return best
}

func (r *Router) nodeByName(name string) *node {
	for _, n := range r.nodes {
		if n.name == name {
			return n
		}
	}
	return nil
}

// mintID generates a cluster-unique session ID: the routing key must exist
// before the session does, so the router (not the backend) assigns it.
func mintID() string {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("router: crypto/rand failed: %v", err))
	}
	return fmt.Sprintf("s-%x", b)
}

// --- health checking -------------------------------------------------------

// backendHealth is the backend /healthz body the checker reads.
type backendHealth struct {
	OK       bool   `json:"ok"`
	Sessions int    `json:"sessions"`
	Node     string `json:"node"`
	Draining bool   `json:"draining"`
}

// healthLoop polls one backend: every CheckInterval while it answers, with
// exponential backoff (doubling up to BackoffMax) while it does not. A node
// is marked unhealthy after FailAfter consecutive failures and healthy
// again on the first success.
func (r *Router) healthLoop(n *node) {
	defer r.wg.Done()
	timer := time.NewTimer(0) // first check immediately
	defer timer.Stop()
	delay := r.opts.CheckInterval
	for {
		select {
		case <-r.quit:
			return
		case <-timer.C:
		}
		err := r.checkNode(n)
		n.mu.Lock()
		wasHealthy := n.healthy
		if err == nil {
			n.fails = 0
			n.healthy = true
			n.lastErr = ""
			delay = r.opts.CheckInterval
		} else {
			n.fails++
			n.lastErr = err.Error()
			if n.fails >= r.opts.FailAfter {
				n.healthy = false
			}
			delay = min(r.opts.CheckInterval<<min(n.fails, 16), r.opts.BackoffMax)
		}
		n.lastCheck = time.Now()
		isHealthy := n.healthy
		n.mu.Unlock()
		if wasHealthy != isHealthy {
			r.logf("router: node %s %s (%v)", n.name, healthWord(isHealthy), err)
		}
		if !isHealthy && r.opts.Promote {
			// Health-check death (not drain) is the promotion trigger.
			// maybePromote single-flights per node and no-ops once done; a
			// failed attempt retries on the next failed check.
			r.maybePromote(n)
		}
		timer.Reset(delay)
	}
}

func healthWord(healthy bool) string {
	if healthy {
		return "healthy"
	}
	return "unhealthy"
}

// checkNode performs one health probe, cross-verifying the node identity
// and adopting a backend-initiated drain.
func (r *Router) checkNode(n *node) error {
	resp, err := r.client.Get(n.base.JoinPath("/healthz").String())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var h backendHealth
	if err := json.Unmarshal(body, &h); err != nil {
		return fmt.Errorf("healthz body: %w", err)
	}
	if !h.OK {
		return fmt.Errorf("healthz reports not ok")
	}
	if h.Node != "" && h.Node != n.name {
		return fmt.Errorf("identity mismatch: configured %q, node reports %q", n.name, h.Node)
	}
	n.mu.Lock()
	n.sessions = h.Sessions
	if h.Draining {
		n.draining = true // a node never un-drains
	}
	n.mu.Unlock()
	return nil
}

// --- proxying --------------------------------------------------------------

// send issues one backend request and returns status + body.
func (r *Router) send(client *http.Client, req *http.Request, n *node, method, path, query string, body []byte) (int, []byte, http.Header, error) {
	u := *n.base
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	u.RawQuery = query
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(req.Context(), method, u.String(), rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		out.Header.Set("Content-Type", "application/json")
	}
	// Propagate the trace ID so the backend's spans join this request's
	// trace. The context trace is authoritative (the middleware minted or
	// adopted it); the raw header is the fallback for internal callers that
	// bypass the middleware.
	if id := obs.TraceFrom(req.Context()).ID(); id != "" {
		out.Header.Set(obs.TraceHeader, id)
	} else if id := req.Header.Get(obs.TraceHeader); id != "" {
		out.Header.Set(obs.TraceHeader, id)
	}
	resp, err := client.Do(out)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, buf, resp.Header, nil
}

// writeProxied passes a backend response through, stamping the serving
// node on the X-Relm-Node response header.
func writeProxied(w http.ResponseWriter, n *node, status int, buf []byte, hdr http.Header) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	// Keep the retriability marker: a replayed 503 without Retry-After
	// would look terminal to the client.
	if ra := hdr.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Relm-Node", n.name)
	w.WriteHeader(status)
	w.Write(buf)
}

// miss remembers a non-final answer seen during a candidate walk (404,
// draining 503, retriable 503) so the most truthful one can be replayed if
// no candidate serves the request.
type miss struct {
	n      *node
	status int
	buf    []byte
	hdr    http.Header
}

// handleSession routes one /v1/sessions/{id}... request to the session's
// rendezvous owner — with a fallback walk. The owner is candidate 0, but a
// session can legitimately live on a lower candidate: it was placed while
// the owner was unhealthy or draining, and the owner has since recovered.
// So a 404 from the owner does not end the search — the remaining eligible
// candidates are tried in rendezvous order and the session is served from
// wherever it actually lives; only when every eligible node reports 404 is
// the session truly gone (and the owner's 404 is what the client sees).
// The walk costs extra hops only on 404s — the healthy path is one hop.
//
// Failures spend retry budget: a transport error or a 503-draining answer
// moves on to the next candidate at most RetryBudget times, so a request
// never waits on more than 1+RetryBudget slow backends. 404s don't spend
// budget — the node answered fast, it just doesn't hold the session.
func (r *Router) handleSession(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	pickStart := time.Now()
	cands := candidates(r.eligibleNodes(), id)
	r.histPick.Record(time.Since(pickStart))
	if len(cands) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no healthy backend"})
		return
	}
	var body []byte
	if req.Method == http.MethodPost {
		var err error
		body, err = io.ReadAll(io.LimitReader(req.Body, 4<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "read body: " + err.Error()})
			return
		}
	}
	var notFound, draining, retriable *miss
	var lastErr error
	retries := 0
	for _, n := range cands {
		status, buf, hdr, err := r.sendTracked(r.client, req, n, req.Method, req.URL.Path, req.URL.RawQuery, body)
		if err != nil {
			if errors.Is(err, errBreakerOpen) {
				continue // breaker race: skipping costs no budget
			}
			n.suspect(err, r.opts.FailAfter)
			lastErr = fmt.Errorf("node %s: %w", n.name, err)
			retries++
			if retries > r.opts.RetryBudget {
				break
			}
			n.retried()
			continue
		}
		if status == http.StatusNotFound {
			if notFound == nil {
				notFound = &miss{n: n, status: status, buf: buf, hdr: hdr}
			}
			continue
		}
		if isDraining503(status, buf) || isRetriable503(status, hdr) {
			if isDraining503(status, buf) {
				if draining == nil {
					draining = &miss{n: n, status: status, buf: buf, hdr: hdr}
				}
			} else if retriable == nil {
				retriable = &miss{n: n, status: status, buf: buf, hdr: hdr}
			}
			retries++
			if retries > r.opts.RetryBudget {
				break
			}
			n.retried()
			continue
		}
		writeProxied(w, n, status, buf, hdr)
		return
	}
	// A remembered retriable 503 wins over 404s from the other candidates:
	// it came from the node that actually holds the session (a candidate
	// without it answers 404 even while degraded), so replaying the 404
	// would misreport a live-but-unwritable session as gone — and turn a
	// retriable fault into a terminal answer.
	if retriable != nil {
		writeProxied(w, retriable.n, retriable.status, retriable.buf, retriable.hdr)
		return
	}
	if notFound != nil {
		writeProxied(w, notFound.n, notFound.status, notFound.buf, notFound.hdr)
		return
	}
	if draining != nil {
		writeProxied(w, draining.n, draining.status, draining.buf, draining.hdr)
		return
	}
	if lastErr == nil {
		lastErr = errors.New("no backend admitted the request")
	}
	writeJSON(w, http.StatusBadGateway, map[string]any{"error": "all backends unreachable: " + lastErr.Error()})
}

// handleCreate places a new session: it mints the session ID (honouring a
// client-supplied one), picks the owner by rendezvous hash, and injects the
// ID into the create body so the backend adopts it. A backend that fails at
// the transport level is marked suspect and the next candidate tried — a
// create is not bound to any node until it succeeds somewhere.
func (r *Router) handleCreate(w http.ResponseWriter, req *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(req.Body, 4<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "read body: " + err.Error()})
		return
	}
	fields := make(map[string]any)
	if len(bytes.TrimSpace(raw)) > 0 {
		if err := json.Unmarshal(raw, &fields); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad request body: " + err.Error()})
			return
		}
	}
	id, _ := fields["id"].(string)
	if id == "" {
		id = mintID()
		fields["id"] = id
	}
	body, err := json.Marshal(fields)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "encode body: " + err.Error()})
		return
	}
	pickStart := time.Now()
	cands := candidates(r.eligibleNodes(), id)
	r.histPick.Record(time.Since(pickStart))
	if len(cands) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no healthy backend"})
		return
	}
	var lastErr error
	var refused *miss
	retries := 0
	for _, n := range cands {
		status, buf, hdr, err := r.sendTracked(r.client, req, n, http.MethodPost, "/v1/sessions", "", body)
		if err != nil {
			if errors.Is(err, errBreakerOpen) {
				continue
			}
			n.suspect(err, r.opts.FailAfter)
			lastErr = fmt.Errorf("node %s: %w", n.name, err)
			r.logf("router: create %s on %s failed, trying next candidate: %v", id, n.name, err)
			retries++
			if retries > r.opts.RetryBudget {
				break
			}
			n.retried()
			continue
		}
		if (isDraining503(status, buf) || isRetriable503(status, hdr)) && retries < r.opts.RetryBudget {
			// Draining or journal-degraded: a create is not bound to any
			// node until it succeeds, so simply place it on the next
			// candidate. The refusal is remembered in case every candidate
			// refuses — replaying a retriable 503 beats a generic 502.
			if refused == nil {
				refused = &miss{n: n, status: status, buf: buf, hdr: hdr}
			}
			retries++
			n.retried()
			lastErr = fmt.Errorf("node %s: refused create (status %d)", n.name, status)
			continue
		}
		if ct := hdr.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.Header().Set("X-Relm-Node", n.name)
		w.WriteHeader(status)
		w.Write(buf)
		return
	}
	if refused != nil {
		writeProxied(w, refused.n, refused.status, refused.buf, refused.hdr)
		return
	}
	if lastErr == nil {
		lastErr = errors.New("no backend admitted the request")
	}
	writeJSON(w, http.StatusBadGateway, map[string]any{"error": "all backends unreachable: " + lastErr.Error()})
}

// buildMux wires the routes, wrapped in the tracing middleware so every
// request carries a trace and lands in the recent-trace ring.
func (r *Router) buildMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", r.handleCreate)
	mux.HandleFunc("GET /v1/sessions", r.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", r.handleSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", r.handleSession)
	mux.HandleFunc("GET /v1/sessions/{id}/history", r.handleSession)
	mux.HandleFunc("POST /v1/sessions/{id}/suggest", r.handleSession)
	mux.HandleFunc("POST /v1/sessions/{id}/observe", r.handleSession)
	mux.HandleFunc("GET /v1/metrics", r.handleMetrics)
	mux.HandleFunc("GET /v1/traces", r.handleTraces)
	mux.HandleFunc("GET /metrics", r.handleProm)
	mux.HandleFunc("GET /v1/repository", r.handleRepository)
	mux.HandleFunc("GET /v1/repository/export", r.handleRepoExport)
	mux.HandleFunc("POST /v1/repository/import", r.handleRepoImport)
	mux.HandleFunc("GET /v1/cluster", r.handleCluster)
	mux.HandleFunc("POST /v1/cluster/drain/{node}", r.handleDrain)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	// Fault-injection control for the router process itself (router.proxy
	// schedules, e.g. injected partitions between router and backends).
	mux.Handle("/v1/faults", fault.Handler())
	return r.tracer.Middleware(mux)
}

func (r *Router) handleCluster(w http.ResponseWriter, req *http.Request) {
	out := make([]NodeStatus, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, n.snapshot())
	}
	resp := map[string]any{
		"nodes":            out,
		"promotions_total": r.promotions.Load(),
	}
	r.promoMu.Lock()
	if r.lastPromo != nil {
		resp["last_promotion"] = r.lastPromo
	}
	r.promoMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz answers 200 while at least one backend can take traffic,
// 503 otherwise — a load balancer in front of router replicas keys on it.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	healthy := len(r.eligibleNodes())
	code := http.StatusOK
	if healthy == 0 {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"ok":      healthy > 0,
		"nodes":   len(r.nodes),
		"healthy": healthy,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":%q}`, "encode response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf)
	w.Write([]byte("\n"))
}
