package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relm/internal/profile"
	"relm/internal/service"
)

// fastCheck are health-check options quick enough for tests.
func fastCheck(backends ...Backend) Options {
	return Options{
		Backends:      backends,
		CheckInterval: 10 * time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
		FailAfter:     2,
		Timeout:       5 * time.Second,
	}
}

// testCluster is two real service managers behind a router.
type testCluster struct {
	managers map[string]*service.Manager
	servers  map[string]*httptest.Server
	router   *Router
	front    *httptest.Server
}

func newTestCluster(t *testing.T, names ...string) *testCluster {
	t.Helper()
	tc := &testCluster{
		managers: make(map[string]*service.Manager),
		servers:  make(map[string]*httptest.Server),
	}
	var backends []Backend
	for _, name := range names {
		m := service.NewManager(service.Options{NodeID: name, Workers: 1, TTL: time.Hour})
		srv := httptest.NewServer(service.NewHandler(m))
		tc.managers[name] = m
		tc.servers[name] = srv
		backends = append(backends, Backend{Name: name, URL: srv.URL})
	}
	r, err := New(fastCheck(backends...))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tc.router = r
	tc.front = httptest.NewServer(r)
	t.Cleanup(func() {
		tc.front.Close()
		r.Close()
		for _, srv := range tc.servers {
			srv.Close()
		}
		for _, m := range tc.managers {
			m.Close()
		}
	})
	tc.waitHealthy(t, len(names))
	return tc
}

// waitHealthy blocks until the router reports n healthy backends.
func (tc *testCluster) waitHealthy(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(tc.router.eligibleNodes()) == n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("router never saw %d healthy backends", n)
}

// do issues one request through the router and decodes the JSON response.
func (tc *testCluster) do(t *testing.T, method, path string, body any, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, tc.front.URL+path, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	buf, _ := io.ReadAll(resp.Body)
	if out != nil && len(buf) > 0 {
		if err := json.Unmarshal(buf, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, buf, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// testStats is a workload fingerprint for warm-start matching.
func testStats() *profile.Stats {
	return &profile.Stats{
		N: 1, MhMB: 8192, CPUAvg: 0.62, DiskAvg: 0.18,
		MiMB: 310, McMB: 2400, MsMB: 180, MuMB: 420,
		P: 2, H: 0.85, S: 0.04, HadFullGC: true, CoresPerNode: 8,
	}
}

func TestRendezvousStability(t *testing.T) {
	nodes := []*node{{name: "a"}, {name: "b"}, {name: "c"}}
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("s-%032x", i)
	}
	owner := func(ns []*node, key string) string { return candidates(ns, key)[0].name }

	before := make(map[string]string, len(keys))
	counts := make(map[string]int)
	for _, k := range keys {
		before[k] = owner(nodes, k)
		counts[before[k]]++
	}
	// Every node owns a reasonable share (binomial around 1/3).
	for _, n := range nodes {
		if counts[n.name] < len(keys)/6 {
			t.Errorf("node %s owns only %d/%d keys — hash badly skewed", n.name, counts[n.name], len(keys))
		}
	}
	// Removing node b remaps exactly b's keys, nothing else.
	survivors := []*node{nodes[0], nodes[2]}
	for _, k := range keys {
		after := owner(survivors, k)
		if before[k] == "b" {
			if after == "b" {
				t.Fatalf("key %s still owned by removed node", k)
			}
		} else if after != before[k] {
			t.Errorf("key %s moved %s→%s though its owner survived", k, before[k], after)
		}
	}
	// Determinism regardless of the node ordering handed in.
	reversed := []*node{nodes[2], nodes[1], nodes[0]}
	for _, k := range keys[:50] {
		if owner(nodes, k) != owner(reversed, k) {
			t.Fatalf("owner of %s depends on node ordering", k)
		}
	}
}

func TestLifecycleThroughRouter(t *testing.T) {
	tc := newTestCluster(t, "a", "b")

	var created service.StatusResponse
	code, hdr := tc.do(t, http.MethodPost, "/v1/sessions",
		map[string]any{"backend": "bo", "workload": "K-means", "seed": 7, "max_iterations": 25}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if created.ID == "" || !strings.HasPrefix(created.ID, "s-") {
		t.Fatalf("create: router did not mint the ID, got %q", created.ID)
	}
	home := hdr.Get("X-Relm-Node")
	if home != "a" && home != "b" {
		t.Fatalf("create: bad X-Relm-Node %q", home)
	}
	if created.Node != home {
		t.Fatalf("create: status node %q != serving node %q", created.Node, home)
	}

	// The session must be reachable where the hash says it lives.
	var sug service.SuggestResponse
	for i := 0; i < 3; i++ {
		code, hdr = tc.do(t, http.MethodPost, "/v1/sessions/"+created.ID+"/suggest", nil, &sug)
		if code != http.StatusOK {
			t.Fatalf("suggest %d: status %d", i, code)
		}
		if got := hdr.Get("X-Relm-Node"); got != home {
			t.Fatalf("suggest routed to %q, home is %q", got, home)
		}
		var st service.StatusResponse
		code, _ = tc.do(t, http.MethodPost, "/v1/sessions/"+created.ID+"/observe",
			map[string]any{"config": sug.Config, "runtime_sec": 120.0 + float64(i)}, &st)
		if code != http.StatusOK {
			t.Fatalf("observe %d: status %d", i, code)
		}
		if st.Evals != i+1 {
			t.Fatalf("observe %d: evals %d", i, st.Evals)
		}
	}

	var hist []service.HistoryJSON
	if code, _ = tc.do(t, http.MethodGet, "/v1/sessions/"+created.ID+"/history", nil, &hist); code != http.StatusOK {
		t.Fatalf("history: status %d", code)
	}
	if len(hist) != 3 {
		t.Fatalf("history: %d entries", len(hist))
	}

	if code, _ = tc.do(t, http.MethodDelete, "/v1/sessions/"+created.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("close: status %d", code)
	}
	if code, _ = tc.do(t, http.MethodGet, "/v1/sessions/"+created.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after close: status %d, want 404", code)
	}
}

func TestListAndMetricsMerge(t *testing.T) {
	tc := newTestCluster(t, "a", "b")

	// Create sessions until both nodes own at least one.
	seen := map[string]int{}
	for i := 0; len(seen) < 2 && i < 64; i++ {
		var st service.StatusResponse
		code, _ := tc.do(t, http.MethodPost, "/v1/sessions",
			map[string]any{"backend": "bo", "workload": "PageRank", "seed": i}, &st)
		if code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
		seen[st.Node]++
	}
	if len(seen) < 2 {
		t.Fatalf("64 creates never landed on both nodes: %v", seen)
	}
	total := seen["a"] + seen["b"]

	var list []map[string]any
	if code, _ := tc.do(t, http.MethodGet, "/v1/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list) != total {
		t.Fatalf("merged list has %d sessions, created %d", len(list), total)
	}
	perNode := map[string]int{}
	for _, st := range list {
		node, _ := st["node"].(string)
		perNode[node]++
	}
	if perNode["a"] != seen["a"] || perNode["b"] != seen["b"] {
		t.Fatalf("merged list per-node %v != created %v", perNode, seen)
	}

	var mt struct {
		Nodes   int                        `json:"nodes"`
		Totals  map[string]float64         `json:"totals"`
		PerNode map[string]json.RawMessage `json:"per_node"`
	}
	if code, _ := tc.do(t, http.MethodGet, "/v1/metrics", nil, &mt); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if mt.Nodes != 2 || len(mt.PerNode) != 2 {
		t.Fatalf("metrics merged %d nodes, per_node %d", mt.Nodes, len(mt.PerNode))
	}
	if int(mt.Totals["sessions"]) != total {
		t.Fatalf("metrics totals sessions %.0f, want %d", mt.Totals["sessions"], total)
	}
}

func TestMergePartialFailure(t *testing.T) {
	// Node c answers health checks but fails everything else. The metrics
	// merge must degrade gracefully — 200 with the healthy node's numbers,
	// partial: true, and per-node failure detail — while the session
	// listing stays all-or-nothing and answers 502 with the same detail.
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"ok":true,"node":"c","sessions":0}`))
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer broken.Close()

	m := service.NewManager(service.Options{NodeID: "a", Workers: 1, TTL: time.Hour})
	defer m.Close()
	good := httptest.NewServer(service.NewHandler(m))
	defer good.Close()

	r, err := New(fastCheck(Backend{Name: "a", URL: good.URL}, Backend{Name: "c", URL: broken.URL}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()
	front := httptest.NewServer(r)
	defer front.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(r.eligibleNodes()) < 2 {
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(front.URL + "/v1/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics with one broken backend: status %d, want 200 partial", resp.StatusCode)
	}
	var mt struct {
		Nodes   int                        `json:"nodes"`
		Partial bool                       `json:"partial"`
		Failed  map[string]string          `json:"failed"`
		PerNode map[string]json.RawMessage `json:"per_node"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mt); err != nil {
		t.Fatalf("decode metrics body: %v", err)
	}
	if !mt.Partial {
		t.Fatalf("partial flag not set: %+v", mt)
	}
	if mt.Nodes != 1 {
		t.Fatalf("merged nodes %d, want 1 (only the healthy backend)", mt.Nodes)
	}
	if mt.Failed["c"] == "" || !strings.Contains(mt.Failed["c"], "500") {
		t.Fatalf("failed map lacks detail for c: %+v", mt.Failed)
	}
	if _, ok := mt.Failed["a"]; ok {
		t.Fatalf("healthy node a blamed in failed map: %+v", mt.Failed)
	}
	if _, ok := mt.PerNode["a"]; !ok {
		t.Fatalf("healthy node a missing from per_node: %+v", mt)
	}

	// The session listing keeps the all-or-nothing contract.
	resp2, err := http.Get(front.URL + "/v1/sessions")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadGateway {
		t.Fatalf("list with broken backend: status %d, want 502", resp2.StatusCode)
	}
	var detail struct {
		Error string            `json:"error"`
		Nodes map[string]string `json:"nodes"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&detail); err != nil {
		t.Fatalf("decode 502 body: %v", err)
	}
	if detail.Nodes["c"] == "" || !strings.Contains(detail.Nodes["c"], "500") {
		t.Fatalf("502 body lacks per-node detail for c: %+v", detail)
	}
}

// TestDrainHandoffWarmStart is the in-process acceptance scenario: a
// session created through the router survives the drain of its home
// backend, and its post-drain incarnation on the successor is warm-started
// from the repository entries the drain exported.
func TestDrainHandoffWarmStart(t *testing.T) {
	tc := newTestCluster(t, "a", "b")

	var created service.StatusResponse
	code, _ := tc.do(t, http.MethodPost, "/v1/sessions", map[string]any{
		"backend": "gbo", "workload": "K-means", "seed": 3, "max_iterations": 40,
		"warm_start": true, "stats": testStats(), "default_runtime_sec": 240.0,
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	home := created.Node
	successor := "b"
	if home == "b" {
		successor = "a"
	}

	// A few real observations so the drained model has something to carry.
	for i := 0; i < 4; i++ {
		var sug service.SuggestResponse
		if code, _ := tc.do(t, http.MethodPost, "/v1/sessions/"+created.ID+"/suggest", nil, &sug); code != http.StatusOK {
			t.Fatalf("suggest: status %d", code)
		}
		if code, _ := tc.do(t, http.MethodPost, "/v1/sessions/"+created.ID+"/observe",
			map[string]any{"config": sug.Config, "runtime_sec": 200.0 - float64(i)*5}, nil); code != http.StatusOK {
			t.Fatalf("observe: status %d", code)
		}
	}

	var drained struct {
		Node       string `json:"node"`
		Closed     int    `json:"closed"`
		Models     int    `json:"models"`
		Reassigned []struct {
			ID          string `json:"id"`
			Node        string `json:"node"`
			WarmStarted bool   `json:"warm_started"`
		} `json:"reassigned"`
	}
	if code, _ := tc.do(t, http.MethodPost, "/v1/cluster/drain/"+home, nil, &drained); code != http.StatusOK {
		t.Fatalf("drain: status %d (%+v)", code, drained)
	}
	if drained.Closed < 1 || drained.Models < 1 {
		t.Fatalf("drain closed %d sessions, exported %d models", drained.Closed, drained.Models)
	}
	found := false
	for _, ra := range drained.Reassigned {
		if ra.ID == created.ID {
			found = true
			if ra.Node != successor {
				t.Fatalf("session reassigned to %q, want successor %q", ra.Node, successor)
			}
			if !ra.WarmStarted {
				t.Fatalf("reassigned session was not warm-started")
			}
		}
	}
	if !found {
		t.Fatalf("session %s missing from reassignments: %+v", created.ID, drained.Reassigned)
	}

	// The same ID keeps working through the router, now on the successor,
	// and its suggestions come from a repository-warm-started model.
	var st service.StatusResponse
	code, hdr := tc.do(t, http.MethodGet, "/v1/sessions/"+created.ID, nil, &st)
	if code != http.StatusOK {
		t.Fatalf("get after drain: status %d", code)
	}
	if got := hdr.Get("X-Relm-Node"); got != successor {
		t.Fatalf("post-drain request served by %q, want %q", got, successor)
	}
	if !st.WarmStarted || st.State != service.StateActive {
		t.Fatalf("post-drain session not warm-started/active: %+v", st)
	}
	var sug service.SuggestResponse
	if code, _ := tc.do(t, http.MethodPost, "/v1/sessions/"+created.ID+"/suggest", nil, &sug); code != http.StatusOK {
		t.Fatalf("post-drain suggest: status %d", code)
	}

	// The drained node takes no new sessions.
	draining := tc.router.nodeByName(home)
	if draining.eligible() {
		t.Fatalf("drained node %s still eligible for placement", home)
	}
	if code, _ := tc.do(t, http.MethodPost, "/v1/sessions",
		map[string]any{"backend": "bo", "workload": "PageRank"}, &st); code != http.StatusCreated {
		t.Fatalf("create after drain: status %d", code)
	} else if st.Node != successor {
		t.Fatalf("post-drain create landed on %q, want %q", st.Node, successor)
	}
}

func TestKilledBackendIsRoutedAround(t *testing.T) {
	tc := newTestCluster(t, "a", "b")

	// Kill b outright — no drain, no goodbye.
	tc.servers["b"].CloseClientConnections()
	tc.servers["b"].Close()
	tc.waitHealthy(t, 1)

	for i := 0; i < 4; i++ {
		var st service.StatusResponse
		code, _ := tc.do(t, http.MethodPost, "/v1/sessions",
			map[string]any{"backend": "bo", "workload": "PageRank", "seed": i}, &st)
		if code != http.StatusCreated {
			t.Fatalf("create %d after kill: status %d", i, code)
		}
		if st.Node != "a" {
			t.Fatalf("create %d landed on dead node %q", i, st.Node)
		}
	}
	// Merged reads exclude the dead node instead of failing.
	var list []map[string]any
	if code, _ := tc.do(t, http.MethodGet, "/v1/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list after kill: status %d", code)
	}
	var health struct {
		OK      bool `json:"ok"`
		Healthy int  `json:"healthy"`
	}
	if code, _ := tc.do(t, http.MethodGet, "/healthz", nil, &health); code != http.StatusOK || health.Healthy != 1 {
		t.Fatalf("healthz after kill: status %d healthy %d", code, health.Healthy)
	}
}

// TestMisplacedSessionFoundByFallbackWalk: a session can live on a lower
// rendezvous candidate (placed while the owner was down, owner since
// recovered). The router must find it by walking candidates on 404 rather
// than stranding it behind the recovered owner.
func TestMisplacedSessionFoundByFallbackWalk(t *testing.T) {
	tc := newTestCluster(t, "a", "b")

	// An ID whose rendezvous owner is a, created directly on b — exactly
	// the state left behind by a create that failed over while a was out.
	var id string
	for i := 0; ; i++ {
		id = fmt.Sprintf("fallback-%d", i)
		if tc.router.pick(id).name == "a" {
			break
		}
	}
	if _, err := tc.managers["b"].Create(service.Spec{ID: id, Backend: "bo", Workload: "SVM", MaxIterations: 20}); err != nil {
		t.Fatalf("create on b: %v", err)
	}

	var st service.StatusResponse
	code, hdr := tc.do(t, http.MethodGet, "/v1/sessions/"+id, nil, &st)
	if code != http.StatusOK {
		t.Fatalf("misplaced session: status %d, want 200 via fallback walk", code)
	}
	if got := hdr.Get("X-Relm-Node"); got != "b" {
		t.Fatalf("misplaced session served by %q, want b", got)
	}
	var sug service.SuggestResponse
	if code, _ := tc.do(t, http.MethodPost, "/v1/sessions/"+id+"/suggest", nil, &sug); code != http.StatusOK {
		t.Fatalf("suggest on misplaced session: status %d", code)
	}
	// A genuinely unknown ID still 404s after the full walk.
	if code, _ := tc.do(t, http.MethodGet, "/v1/sessions/never-created", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", code)
	}
}

// TestNoBackendsReadsAre503: with zero eligible nodes, merged reads must
// say "cluster unreachable", not "cluster empty".
func TestNoBackendsReadsAre503(t *testing.T) {
	tc := newTestCluster(t, "a")
	tc.servers["a"].CloseClientConnections()
	tc.servers["a"].Close()
	tc.waitHealthy(t, 0)

	for _, ep := range []string{"/v1/sessions", "/v1/metrics", "/v1/repository", "/v1/repository/export", "/healthz"} {
		if code, _ := tc.do(t, http.MethodGet, ep, nil, nil); code != http.StatusServiceUnavailable {
			t.Errorf("GET %s with no backends: status %d, want 503", ep, code)
		}
	}
	if code, _ := tc.do(t, http.MethodGet, "/v1/sessions/some-id", nil, nil); code != http.StatusServiceUnavailable {
		t.Errorf("session route with no backends: status %d, want 503", code)
	}
}

func TestClientSuppliedIDAndConflict(t *testing.T) {
	tc := newTestCluster(t, "a", "b")

	var st service.StatusResponse
	code, _ := tc.do(t, http.MethodPost, "/v1/sessions",
		map[string]any{"id": "my-session", "backend": "bo", "workload": "PageRank"}, &st)
	if code != http.StatusCreated || st.ID != "my-session" {
		t.Fatalf("create with client ID: status %d id %q", code, st.ID)
	}
	code, _ = tc.do(t, http.MethodPost, "/v1/sessions",
		map[string]any{"id": "my-session", "backend": "bo", "workload": "PageRank"}, nil)
	if code != http.StatusConflict {
		t.Fatalf("duplicate ID: status %d, want 409", code)
	}
}
