package service

import (
	"testing"
)

func TestDDPGAutoDeterminism(t *testing.T) {
	spec := Spec{Backend: "ddpg", Workload: "K-means", Mode: ModeAuto, Seed: 6, MaxSteps: 5}
	var hists [][]HistoryEntry
	for i := 0; i < 2; i++ {
		m := newTestManager(t, Options{Workers: 1})
		st, err := m.Create(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, st.ID, StateDone)
		h, err := m.History(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		hists = append(hists, h)
	}
	if !historiesEqual(hists[0], hists[1]) {
		t.Fatalf("two identical ddpg runs differ: %d vs %d evals", len(hists[0]), len(hists[1]))
	}
}
