package service

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"relm/internal/store"
)

// These tests are the promotion half of fail-over at the Manager level:
// ExtractHandoff replays a (copied) replica directory exactly like crash
// recovery, and a successor manager rebuilt from the hand-off package must
// be bit-exact with the lost one.

// copyDir clones a store directory — the stand-in for a fully caught-up
// replica (the shipper is byte-exact, see internal/replica).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// driveSessions builds a journaled manager with a few active remote
// sessions (plus suggestions outstanding), and returns everything a
// successor must reproduce.
func driveSessions(t *testing.T, dir string) (ids []string, histories map[string][]HistoryEntry, nextSuggest map[string]string) {
	t.Helper()
	fs, err := store.OpenFile(dir, store.FileOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Open(Options{Workers: 1, Store: fs, NodeID: "a"})
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{
		{Backend: "bo", Workload: "K-means", Seed: 3, MaxIterations: 8},
		{Backend: "gbo", Workload: "SortByKey", Seed: 4, MaxIterations: 8},
		{Backend: "ddpg", Workload: "PageRank", Seed: 5, MaxSteps: 8},
	}
	histories = make(map[string][]HistoryEntry)
	nextSuggest = make(map[string]string)
	for i, spec := range specs {
		st, err := m.Create(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		for step := 0; step < 3; step++ {
			cfg, done, err := m.Suggest(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
			obs := measure(t, spec.Cluster, spec.Workload, Observation{Config: cfg}, uint64(70*i+step))
			if _, err := m.Observe(st.ID, obs); err != nil {
				t.Fatal(err)
			}
		}
		hist, err := m.History(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		histories[st.ID] = hist
		// Leave a suggestion outstanding — the kill happens mid-loop.
		cfg, _, err := m.Suggest(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		nextSuggest[st.ID] = fmt.Sprintf("%+v", cfg)
	}
	crash(m)
	return ids, histories, nextSuggest
}

// recreateFromHandoff replays a hand-off package into a fresh in-memory
// manager the way a promoting router does: create under the original ID
// with the packaged prior, then re-drive the recorded suggest/observe
// interleaving.
func recreateFromHandoff(t *testing.T, rep HandoffReport) *Manager {
	t.Helper()
	m := NewManager(Options{Workers: 1, NodeID: "b"})
	for _, hs := range rep.Sessions {
		spec := hs.Spec
		spec.ID = hs.ID
		if _, err := m.Create(spec); err != nil {
			t.Fatalf("recreate %s: %v", hs.ID, err)
		}
		for i, h := range hs.History {
			if h.Suggested {
				if _, _, err := m.Suggest(hs.ID); err != nil {
					t.Fatalf("replay %s suggest %d: %v", hs.ID, i, err)
				}
			}
			if _, err := m.Observe(hs.ID, Observation{
				Config:     h.Config,
				RuntimeSec: h.RuntimeSec,
				Aborted:    h.Aborted,
				GCOverhead: h.GCOverhead,
				Stats:      h.Stats,
			}); err != nil {
				t.Fatalf("replay %s observe %d: %v", hs.ID, i, err)
			}
		}
	}
	return m
}

// TestPromotionReplayBitMatch is the heart of fail-over correctness: a
// successor rebuilt from the replica's hand-off package serves the same
// histories AND the same next suggestion as the killed node would have.
func TestPromotionReplayBitMatch(t *testing.T) {
	dir := t.TempDir()
	ids, histories, nextSuggest := driveSessions(t, dir)

	rep, err := ExtractHandoff(copyDir(t, dir), "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sessions) != len(ids) {
		t.Fatalf("hand-off recovered %d sessions, want %d", len(rep.Sessions), len(ids))
	}
	m2 := recreateFromHandoff(t, rep)
	defer m2.Close()

	for _, id := range ids {
		hist, err := m2.History(id)
		if err != nil {
			t.Fatal(err)
		}
		if !historiesEqual(hist, histories[id]) {
			t.Fatalf("session %s: replayed history differs", id)
		}
		cfg, _, err := m2.Suggest(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%+v", cfg); got != nextSuggest[id] {
			t.Fatalf("session %s: successor suggests %s, dead node would have suggested %s", id, got, nextSuggest[id])
		}
	}
}

// TestPromotionTornTail: the primary was killed mid-append (or the
// follower mid-ingest), so the replica's active segment ends in a torn
// line. Promotion must truncate it and recover every complete record —
// the same guarantee local crash recovery gives.
func TestPromotionTornTail(t *testing.T) {
	dir := t.TempDir()
	ids, histories, _ := driveSessions(t, dir)

	replica := copyDir(t, dir)
	segs, err := store.ListSegmentFiles(replica)
	if err != nil || len(segs) == 0 {
		t.Fatalf("list segments: %v", err)
	}
	active := filepath.Join(replica, store.SegmentFileName(segs[len(segs)-1].Index))
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":999999,"type":"observe","id":"s`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := ExtractHandoff(replica, "a")
	if err != nil {
		t.Fatalf("torn tail must replay, got %v", err)
	}
	if len(rep.Sessions) != len(ids) {
		t.Fatalf("recovered %d sessions, want %d", len(rep.Sessions), len(ids))
	}
	for _, hs := range rep.Sessions {
		if !historiesEqual(hs.History, histories[hs.ID]) {
			t.Fatalf("session %s: torn tail corrupted the recovered history", hs.ID)
		}
	}
}

// TestPromotionMidRotationPrefix: the replica caught only a byte prefix of
// the log (the primary died mid-rotation, before the tail shipped). The
// prefix must replay cleanly — fewer observations, no errors.
func TestPromotionMidRotationPrefix(t *testing.T) {
	dir := t.TempDir()
	ids, _, _ := driveSessions(t, dir)

	replica := copyDir(t, dir)
	segs, err := store.ListSegmentFiles(replica)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1]
	if err := os.Truncate(filepath.Join(replica, store.SegmentFileName(last.Index)), last.Bytes/2); err != nil {
		t.Fatal(err)
	}

	rep, err := ExtractHandoff(replica, "a")
	if err != nil {
		t.Fatalf("prefix replica must replay, got %v", err)
	}
	if len(rep.Sessions) == 0 || len(rep.Sessions) > len(ids) {
		t.Fatalf("prefix recovered %d sessions, want 1..%d", len(rep.Sessions), len(ids))
	}
}

// TestPromotionSealedCorruptionIsLoud: flipping bytes inside a SEALED
// replica segment is not a crash artifact — it is data loss, and
// promotion must refuse loudly instead of serving silently shortened
// histories.
func TestPromotionSealedCorruptionIsLoud(t *testing.T) {
	dir := t.TempDir()
	driveSessions(t, dir)

	replica := copyDir(t, dir)
	segs, err := store.ListSegmentFiles(replica)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need a sealed segment, got %d segments", len(segs))
	}
	sealed := filepath.Join(replica, store.SegmentFileName(segs[0].Index))
	data, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	// Break the first record: sealed segments are read strictly, so one
	// undecodable line must fail the whole promotion.
	data[0] = 'x'
	if err := os.WriteFile(sealed, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := ExtractHandoff(replica, "a"); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("sealed corruption replayed silently: err=%v", err)
	}
}

// TestCreateWithExplicitPrior covers the hand-off seeding path: Spec.Prior
// bypasses repository matching, counts as a warm start, survives restarts
// (journaled as a warm event), and two managers created from the same
// prior+history suggest identically.
func TestCreateWithExplicitPrior(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Open(Options{Workers: 1, Store: fs})
	if err != nil {
		t.Fatal(err)
	}

	// Harvest a donor session's history into prior points.
	donor, err := m1.Create(Spec{Backend: "bo", Workload: "K-means", Seed: 7, MaxIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		cfg, _, err := m1.Suggest(donor.ID)
		if err != nil {
			t.Fatal(err)
		}
		obs := measure(t, "", "K-means", Observation{Config: cfg}, uint64(step))
		if _, err := m1.Observe(donor.ID, obs); err != nil {
			t.Fatal(err)
		}
	}
	crashRep, err := ExtractHandoff(copyDir(t, dir), "a")
	if err != nil {
		t.Fatal(err)
	}
	// An active non-warm session must still ride its own auto path or, for
	// remote mode, replay by history — the donor is remote, so Prior stays
	// empty and History carries everything.
	if len(crashRep.Sessions) != 1 || len(crashRep.Sessions[0].History) != 3 {
		t.Fatalf("donor hand-off: %+v", crashRep.Sessions)
	}

	prior := historyPrior(mustSession(t, m1, donor.ID))
	st, err := m1.Create(Spec{Backend: "gbo", Workload: "K-means", Seed: 8, MaxIterations: 6,
		Prior: prior, PriorSource: "K-means", PriorDistance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !st.WarmStarted {
		t.Fatal("explicit prior did not count as a warm start")
	}
	cfg1, _, err := m1.Suggest(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	crash(m1)

	// Restart: the journaled warm event must restore the same seeding.
	fs2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Options{Workers: 1, Store: fs2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	st2, err := m2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.WarmStarted {
		t.Fatal("warm start lost across restart")
	}
	cfg2, _, err := m2.Suggest(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", cfg1) != fmt.Sprintf("%+v", cfg2) {
		t.Fatalf("prior-seeded suggestion drifted across restart: %+v vs %+v", cfg1, cfg2)
	}
}

// TestAutoSessionHandoffCarriesPrior: auto sessions are not replayed
// observation by observation — their own history becomes the successor's
// prior and a worker re-drives them. The crashed WAL is journaled by hand
// (create + observes, no terminal event — exactly what a mid-flight worker
// leaves behind) so the test never races a live worker to the stopping
// rule.
func TestAutoSessionHandoffCarriesPrior(t *testing.T) {
	// Generate two measured configurations with a throwaway remote session
	// of the same backend/workload/seed.
	gen := NewManager(Options{Workers: 1})
	gst, err := gen.Create(Spec{Backend: "bo", Workload: "SVM", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var obsns []Observation
	for i := 0; i < 2; i++ {
		cfg, _, err := gen.Suggest(gst.ID)
		if err != nil {
			t.Fatal(err)
		}
		o := measure(t, "", "SVM", Observation{Config: cfg}, uint64(i))
		if _, err := gen.Observe(gst.ID, o); err != nil {
			t.Fatal(err)
		}
		obsns = append(obsns, o)
	}
	crash(gen)

	dir := t.TempDir()
	fs, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Backend: "bo", Workload: "SVM", Mode: ModeAuto, Seed: 2, MaxIterations: 40}
	now := time.Now()
	if _, err := fs.Append(&store.Event{Type: store.EventCreate, ID: "a-sess-1", Time: now, Spec: specRecord(spec)}); err != nil {
		t.Fatal(err)
	}
	for i, o := range obsns {
		ev := &store.Event{Type: store.EventObserve, ID: "a-sess-1", Time: now, N: i, Obs: &store.Observation{
			Config: o.Config, RuntimeSec: o.RuntimeSec, Aborted: o.Aborted, Stats: o.Stats,
		}}
		if _, err := fs.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := ExtractHandoff(dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sessions) != 1 {
		t.Fatalf("hand-off sessions: %+v", rep.Sessions)
	}
	hs := rep.Sessions[0]
	if hs.Spec.Mode != ModeAuto || len(hs.Spec.Prior) == 0 {
		t.Fatalf("auto hand-off must carry its history as a prior: mode=%q prior=%d", hs.Spec.Mode, len(hs.Spec.Prior))
	}
	if len(hs.Spec.Prior) != len(hs.History) {
		t.Fatalf("prior has %d points, history %d entries", len(hs.Spec.Prior), len(hs.History))
	}
	if hs.Spec.WarmStart {
		t.Fatal("explicit prior must disable repository re-matching")
	}
}

// mustSession digs the live session struct out of a manager (test-only).
func mustSession(t *testing.T, m *Manager, id string) *Session {
	t.Helper()
	for _, sh := range m.shards {
		sh.mu.Lock()
		if s, ok := sh.sessions[id]; ok {
			sh.mu.Unlock()
			return s
		}
		sh.mu.Unlock()
	}
	t.Fatalf("session %s not found", id)
	return nil
}

// waitEvals blocks until a session has at least n recorded observations.
func waitEvals(t *testing.T, m *Manager, id string, n int) {
	t.Helper()
	deadline := 2000
	for i := 0; i < deadline; i++ {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Evals >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("session %s never reached %d evals", id, n)
}
