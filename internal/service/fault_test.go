package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"relm/internal/conf"
	"relm/internal/fault"
	"relm/internal/store"
)

// armServiceFault arms one rule and disarms everything at test end.
func armServiceFault(t *testing.T, point, action string, count int) {
	t.Helper()
	err := fault.Apply(fault.Schedule{Seed: 1, Rules: []fault.Rule{
		{Point: point, Action: action, Count: count},
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.DisarmAll)
}

// fileStoreManager builds a Manager over a real file store so store
// failpoints exercise the whole journal path.
func fileStoreManager(t *testing.T, o store.FileOptions) (*Manager, string) {
	t.Helper()
	dir := t.TempDir()
	fs, err := store.OpenFile(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{Workers: 1, Store: fs})
	t.Cleanup(m.Close)
	return m, dir
}

func TestObserveJournalFailureLeavesStateUntouched(t *testing.T) {
	m, dir := fileStoreManager(t, store.FileOptions{})
	st, err := m.Create(Spec{Backend: "bo", Workload: "SVM", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, err := m.Suggest(st.ID)
	if err != nil {
		t.Fatal(err)
	}

	armServiceFault(t, "store.write", "error", 1)
	obs := Observation{Config: cfg, RuntimeSec: 120}
	if _, err := m.Observe(st.ID, obs); !errors.Is(err, ErrJournal) {
		t.Fatalf("observe under journal fault: %v, want ErrJournal", err)
	}
	// Journal-before-apply: the refused observation must not have touched
	// the tuner or history.
	mid, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Evals != 0 {
		t.Fatalf("refused observation mutated state: evals=%d", mid.Evals)
	}
	fault.DisarmAll()

	// The identical retry succeeds and is journaled exactly once.
	if _, err := m.Observe(st.ID, obs); err != nil {
		t.Fatalf("retry after fault cleared: %v", err)
	}
	after, err := m.Get(st.ID)
	if err != nil || after.Evals != 1 {
		t.Fatalf("retried observe: evals=%d err=%v", after.Evals, err)
	}
	m.Close()

	// Recovery agrees with what was acked: exactly one observation.
	fs2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Options{Workers: 1, Store: fs2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	restored, err := m2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Evals != 1 {
		t.Fatalf("restored evals=%d, want 1", restored.Evals)
	}
}

func TestCreateJournalFailureRollsBackWithoutTombstone(t *testing.T) {
	m, _ := fileStoreManager(t, store.FileOptions{})
	armServiceFault(t, "store.write", "error", 1)
	if _, err := m.Create(Spec{ID: "sess-retry", Backend: "bo", Workload: "SVM"}); !errors.Is(err, ErrJournal) {
		t.Fatalf("create under journal fault: %v, want ErrJournal", err)
	}
	fault.DisarmAll()
	// The ID must remain free: nothing reached the log.
	st, err := m.Create(Spec{ID: "sess-retry", Backend: "bo", Workload: "SVM"})
	if err != nil {
		t.Fatalf("retrying the same ID after a refused create: %v", err)
	}
	if st.ID != "sess-retry" {
		t.Fatalf("retried create got ID %q", st.ID)
	}
}

func TestHTTPJournalFaultMapsTo503RetryAfter(t *testing.T) {
	m, _ := fileStoreManager(t, store.FileOptions{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	var created StatusResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Backend: "bo", Workload: "SVM"}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var sug SuggestResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+created.ID+"/suggest", nil, &sug); code != http.StatusOK {
		t.Fatalf("suggest: status %d", code)
	}

	armServiceFault(t, "store.write", "error", 1)
	body, _ := json.Marshal(ObserveRequest{Config: sug.Config, RuntimeSec: 100})
	resp, err := http.Post(srv.URL+"/v1/sessions/"+created.ID+"/observe", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("observe under journal fault: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 from a journal fault must carry Retry-After (retriable)")
	}
	fault.DisarmAll()

	var after StatusResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+created.ID+"/observe", ObserveRequest{Config: sug.Config, RuntimeSec: 100}, &after); code != http.StatusOK {
		t.Fatalf("retry observe: status %d", code)
	}
	if after.Evals != 1 {
		t.Fatalf("after retry: evals=%d, want 1", after.Evals)
	}
}

func TestHTTPInjectedObserveFaultIsRetriable(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	t.Cleanup(m.Close)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	var created StatusResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Backend: "bo", Workload: "SVM"}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	armServiceFault(t, "service.observe", "error", 1)
	body, _ := json.Marshal(ObserveRequest{Config: toConfigJSON(conf.Default()), RuntimeSec: 100})
	resp, err := http.Post(srv.URL+"/v1/sessions/"+created.ID+"/observe", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("injected service.observe fault: status %d Retry-After %q, want retriable 503",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

func TestDegradedWALSurfacesInHealthzAndMetrics(t *testing.T) {
	m, _ := fileStoreManager(t, store.FileOptions{SyncEachAppend: true, NoGroupCommit: true})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	var created StatusResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Backend: "bo", Workload: "SVM"}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var sug SuggestResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+created.ID+"/suggest", nil, &sug); code != http.StatusOK {
		t.Fatalf("suggest: status %d", code)
	}

	// A persistent fsync fault degrades the WAL on the next journaled write.
	armServiceFault(t, "store.fsync", "error", 1)
	code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+created.ID+"/observe", ObserveRequest{Config: sug.Config, RuntimeSec: 100}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("observe during fsync fault: status %d, want 503", code)
	}
	fault.DisarmAll()

	// Degradation is sticky: healthz flips to 503 so the router routes
	// around the node and promotes its replica.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz on degraded node: status %d, want 503", resp.StatusCode)
	}
	if ok, _ := hz["ok"].(bool); ok {
		t.Fatalf("healthz body claims ok on a degraded node: %v", hz)
	}
	if reason, _ := hz["degraded"].(string); reason == "" {
		t.Fatalf("healthz missing degraded reason: %v", hz)
	}

	var mt MetricsResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/metrics", nil, &mt); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if !mt.WALDegraded || mt.WALDegradedReason == "" {
		t.Fatalf("metrics missing degraded state: %+v", mt)
	}

	// Every subsequent write is a retriable 503, and reads still work.
	code = doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+created.ID+"/observe", ObserveRequest{Config: sug.Config, RuntimeSec: 100}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("observe on degraded node: status %d, want 503", code)
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/sessions/"+created.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("read on degraded node: status %d, want 200", code)
	}
}

func TestFaultsEndpointRoundTrip(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	t.Cleanup(m.Close)
	t.Cleanup(fault.DisarmAll)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	// Arm via POST.
	sched := `{"seed": 9, "rules": [{"point": "service.observe", "action": "latency", "arg": 1, "count": 2, "window": 8}]}`
	resp, err := http.Post(srv.URL+"/v1/faults", "application/json", strings.NewReader(sched))
	if err != nil {
		t.Fatal(err)
	}
	var st fault.Status
	_ = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !st.Armed || st.Seed != 9 || len(st.Rules) != 1 {
		t.Fatalf("POST /v1/faults: status %d, %+v", resp.StatusCode, st)
	}

	// Inspect via GET.
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/faults", nil, &st); code != http.StatusOK || st.Rules[0].Planned != 2 {
		t.Fatalf("GET /v1/faults: code %d, %+v", code, st)
	}

	// A bad schedule is rejected and changes nothing.
	resp, err = http.Post(srv.URL+"/v1/faults", "application/json", strings.NewReader(`{"rules":[{"point":"nope","action":"error","count":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad schedule: status %d, want 400", resp.StatusCode)
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/faults", nil, &st); code != http.StatusOK || !st.Armed {
		t.Fatalf("rejected schedule disarmed the good one: %+v", st)
	}

	// Disarm via DELETE.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/faults", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/faults", nil, &st); code != http.StatusOK || st.Armed {
		t.Fatalf("DELETE left faults armed: %+v", st)
	}
}
