package service

import (
	"fmt"
	"sort"

	"relm/internal/bo"
	"relm/internal/store"
)

// This file is the promotion half of fail-over: turning a dead node's
// replicated WAL into a hand-off package a router can re-create the lost
// sessions from. It reuses the restore machinery verbatim — a replica
// directory is a valid store directory, so replaying it is exactly the
// crash recovery the node itself would have run — but into a detached
// Manager shell that never starts goroutines or journals anything.

// HandoffSession is one non-terminal session recovered from a replica:
// everything a successor needs to continue it under its original ID.
type HandoffSession struct {
	ID    string
	State string // state at the primary's death
	Evals int
	// Spec is the re-create spec: ID cleared, Prior seeded with the warm
	// start the lost instance held (or, for auto sessions, its own
	// history) so the successor resumes from equivalent optimizer state.
	Spec Spec
	// History is the full recorded experiment sequence, in order. Remote
	// sessions are replayed into the successor observation by observation
	// (each entry's Suggested bit says whether to re-arm a suggestion
	// first), reproducing the lost tuner bit-exactly.
	History []HistoryEntry
}

// HandoffReport is the product of promoting a replica: the dead node's
// non-terminal sessions plus its model repository.
type HandoffReport struct {
	Node     string // the dead primary the replica belonged to
	Sessions []HandoffSession
	Repo     []bo.RepoEntry
}

// ExtractHandoff replays the replica directory of a dead primary into a
// hand-off package. The directory must be fenced against further ingest
// first (replica.Set.Promote); opening recovers it exactly like a local
// restart — a torn tail in the replicated active segment is truncated,
// corruption in a sealed replica segment fails the promotion loudly.
func ExtractHandoff(dir, node string) (HandoffReport, error) {
	st, err := store.OpenFile(dir)
	if err != nil {
		return HandoffReport{}, fmt.Errorf("service: open replica: %w", err)
	}
	snap, events, err := st.Load()
	if cerr := st.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return HandoffReport{}, fmt.Errorf("service: load replica: %w", err)
	}
	return BuildHandoff(snap, events, node)
}

// BuildHandoff replays a snapshot + log into a detached Manager shell and
// collects the hand-off package: every non-terminal session with its full
// history and a prior to seed its successor, plus the repository.
func BuildHandoff(snap *store.Snapshot, events []store.Event, node string) (HandoffReport, error) {
	m := newManager(Options{})
	if _, err := m.restore(snap, events); err != nil {
		return HandoffReport{}, err
	}
	rep := HandoffReport{Node: node}
	for _, sh := range m.shards {
		for id, s := range sh.sessions {
			if s.state != StateActive && s.state != StateQueued && s.state != StateRunning {
				continue
			}
			hs := HandoffSession{
				ID:      id,
				State:   s.state,
				Evals:   len(s.history),
				Spec:    s.spec,
				History: append([]HistoryEntry(nil), s.history...),
			}
			hs.Spec.ID = ""
			switch {
			case s.warm != nil:
				// Seed the successor with the exact warm start the lost
				// instance held; WarmStart is cleared so the successor does
				// not re-match a repository that may have changed since.
				hs.Spec.Prior = s.warm.Points
				hs.Spec.PriorSource = s.warm.Source
				hs.Spec.PriorCluster = s.warm.Cluster
				hs.Spec.PriorDistance = s.warm.Distance
				hs.Spec.WarmStart = false
			case s.spec.Mode == ModeAuto && len(s.history) > 0:
				// Auto sessions are not replayed observation by observation
				// (a worker re-drives them on the simulator); their own
				// history becomes the prior, so the re-driven session starts
				// from what the lost one had learned.
				hs.Spec.Prior = historyPrior(s)
				hs.Spec.PriorSource = s.spec.Workload
				hs.Spec.PriorCluster = s.spec.Cluster
				hs.Spec.WarmStart = false
			}
			rep.Sessions = append(rep.Sessions, hs)
		}
	}
	sort.Slice(rep.Sessions, func(i, j int) bool { return rep.Sessions[i].ID < rep.Sessions[j].ID })
	rep.Repo = append([]bo.RepoEntry(nil), m.repo.Entries...)
	return rep, nil
}

// historyPrior renders a session's own history as prior points.
func historyPrior(s *Session) []bo.PriorPoint {
	pts := make([]bo.PriorPoint, 0, len(s.history))
	for _, h := range s.history {
		pts = append(pts, bo.PriorPoint{
			X:   s.space.Encode(h.Config),
			Cfg: h.Config,
			Y:   h.Objective,
		})
	}
	return pts
}
