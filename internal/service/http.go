package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"relm/internal/bo"
	"relm/internal/conf"
	"relm/internal/fault"
	"relm/internal/obs"
	"relm/internal/profile"
	"relm/internal/replica"
	"relm/internal/store"
)

// ConfigJSON is the wire form of a configuration (Table 1 knobs).
type ConfigJSON struct {
	ContainersPerNode int     `json:"containers_per_node"`
	TaskConcurrency   int     `json:"task_concurrency"`
	CacheCapacity     float64 `json:"cache_capacity"`
	ShuffleCapacity   float64 `json:"shuffle_capacity"`
	NewRatio          int     `json:"new_ratio"`
	SurvivorRatio     int     `json:"survivor_ratio"`
}

func toConfigJSON(c conf.Config) ConfigJSON {
	return ConfigJSON{
		ContainersPerNode: c.ContainersPerNode,
		TaskConcurrency:   c.TaskConcurrency,
		CacheCapacity:     c.CacheCapacity,
		ShuffleCapacity:   c.ShuffleCapacity,
		NewRatio:          c.NewRatio,
		SurvivorRatio:     c.SurvivorRatio,
	}
}

func (cj ConfigJSON) toConfig() conf.Config {
	return conf.Config{
		ContainersPerNode: cj.ContainersPerNode,
		TaskConcurrency:   cj.TaskConcurrency,
		CacheCapacity:     cj.CacheCapacity,
		ShuffleCapacity:   cj.ShuffleCapacity,
		NewRatio:          cj.NewRatio,
		SurvivorRatio:     cj.SurvivorRatio,
	}
}

// CreateRequest is the body of POST /v1/sessions.
type CreateRequest struct {
	// ID optionally assigns the session ID (Spec.ID): a cluster router
	// mints IDs so it can place sessions by consistent hashing before they
	// exist. Duplicate IDs fail with 409; the node's own "sess-N" counter
	// namespace is reserved and fails with 400.
	ID            string `json:"id,omitempty"`
	Backend       string `json:"backend"`
	Workload      string `json:"workload"`
	Cluster       string `json:"cluster"`
	Mode          string `json:"mode"`
	Seed          uint64 `json:"seed"`
	MaxIterations int    `json:"max_iterations"`
	MaxSteps      int    `json:"max_steps"`

	// WarmStart asks the service to seed the session from the model
	// repository (§6.6). Remote sessions supply their workload
	// fingerprint via stats (+ the default-configuration runtime for
	// rescaling); auto sessions profile the default configuration
	// themselves.
	WarmStart         bool           `json:"warm_start,omitempty"`
	WarmMaxDistance   float64        `json:"warm_max_distance,omitempty"`
	Stats             *profile.Stats `json:"stats,omitempty"`
	DefaultRuntimeSec float64        `json:"default_runtime_sec,omitempty"`

	// PriorPoints explicitly seeds the optimizer, bypassing repository
	// matching — the fail-over hand-off path (Spec.Prior): a promoted
	// session is re-created with the exact points its lost instance held.
	PriorPoints   []bo.PriorPoint `json:"prior_points,omitempty"`
	PriorSource   string          `json:"prior_source,omitempty"`
	PriorCluster  string          `json:"prior_cluster,omitempty"`
	PriorDistance float64         `json:"prior_distance,omitempty"`

	// Surrogate configures the BO/GBO response-surface model (kernel,
	// active-set budget, refit schedule).
	Surrogate *SurrogateSpec `json:"surrogate,omitempty"`

	// Deprecated: flat aliases of the Surrogate object's fields, kept so
	// pre-object clients keep working. Ignored when surrogate is present.
	Kernel          string  `json:"kernel,omitempty"`
	SurrogateBudget int     `json:"surrogate_budget,omitempty"`
	RefitEvery      int     `json:"refit_every,omitempty"`
	RefitDrift      float64 `json:"refit_drift,omitempty"`
}

// surrogateSpec resolves the request's surrogate configuration: the nested
// object when present, otherwise the deprecated flat aliases.
func (req *CreateRequest) surrogateSpec() SurrogateSpec {
	if req.Surrogate != nil {
		return *req.Surrogate
	}
	return SurrogateSpec{
		Kernel:     req.Kernel,
		Budget:     req.SurrogateBudget,
		RefitEvery: req.RefitEvery,
		RefitDrift: req.RefitDrift,
	}
}

// ObserveRequest is the body of POST /v1/sessions/{id}/observe.
type ObserveRequest struct {
	Config     ConfigJSON     `json:"config"`
	RuntimeSec float64        `json:"runtime_sec"`
	Aborted    bool           `json:"aborted"`
	GCOverhead float64        `json:"gc_overhead,omitempty"`
	Stats      *profile.Stats `json:"stats,omitempty"`
}

// SuggestResponse is the body returned by POST /v1/sessions/{id}/suggest.
type SuggestResponse struct {
	Config ConfigJSON `json:"config"`
	Done   bool       `json:"done"`
}

// BestJSON is the wire form of a session's incumbent.
type BestJSON struct {
	Config     ConfigJSON `json:"config"`
	RuntimeSec float64    `json:"runtime_sec"`
	Objective  float64    `json:"objective"`
}

// StatusResponse is the wire form of a session status.
type StatusResponse struct {
	ID       string    `json:"id"`
	Node     string    `json:"node,omitempty"`
	Backend  string    `json:"backend"`
	Workload string    `json:"workload"`
	Cluster  string    `json:"cluster"`
	Mode     string    `json:"mode"`
	State    string    `json:"state"`
	Evals    int       `json:"evals"`
	Done     bool      `json:"done"`
	Best     *BestJSON `json:"best,omitempty"`
	Err      string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	LastUsed time.Time `json:"last_used"`

	WarmStarted  bool    `json:"warm_started,omitempty"`
	WarmSource   string  `json:"warm_source,omitempty"`
	WarmDistance float64 `json:"warm_distance,omitempty"`

	// Surrogate is the resolved surrogate configuration and its work
	// counters (BO/GBO sessions only).
	Surrogate *SurrogateStatus `json:"surrogate,omitempty"`
}

// HistoryJSON is one recorded experiment on the wire. Suggested reports
// whether a suggestion was outstanding when the observation arrived — a
// replayer (fail-over promotion) re-issues Suggest exactly for those
// entries, reproducing the live suggest/observe interleaving.
type HistoryJSON struct {
	Config     ConfigJSON     `json:"config"`
	RuntimeSec float64        `json:"runtime_sec"`
	Objective  float64        `json:"objective"`
	Aborted    bool           `json:"aborted"`
	GCOverhead float64        `json:"gc_overhead,omitempty"`
	Stats      *profile.Stats `json:"stats,omitempty"`
	Suggested  bool           `json:"suggested,omitempty"`
}

// MetricsResponse is the body of GET /v1/metrics.
type MetricsResponse struct {
	Node             string         `json:"node,omitempty"`
	Draining         bool           `json:"draining,omitempty"`
	Sessions         int            `json:"sessions"`
	SessionsByState  map[string]int `json:"sessions_by_state"`
	Observations     int64          `json:"observations"`
	Evictions        int64          `json:"evictions"`
	WarmStarts       int64          `json:"warm_starts"`
	SurrogateFits    int64          `json:"surrogate_fits,omitempty"`
	SurrogateAppends int64          `json:"surrogate_appends,omitempty"`
	// SurrogateCompactions stays a top-level numeric (like fits/appends) so
	// the router's metrics fan-out sums it cluster-wide.
	SurrogateCompactions int64      `json:"surrogate_compactions,omitempty"`
	RepoEntries          int        `json:"repo_entries"`
	RepoCapacity         int        `json:"repo_capacity,omitempty"`
	RepoHits             int64      `json:"repo_hits,omitempty"`
	RepoEvictions        int64      `json:"repo_evictions,omitempty"`
	Persistence          bool       `json:"persistence"`
	Replication          bool       `json:"replication,omitempty"`
	WALBytes             int64      `json:"wal_bytes,omitempty"`
	WALEvents            uint64     `json:"wal_events,omitempty"`
	WALSegments          int        `json:"wal_segments,omitempty"`
	PrunedSegments       uint64     `json:"pruned_segments,omitempty"`
	CommitBatches        uint64     `json:"commit_batches,omitempty"`
	BatchedEvents        uint64     `json:"batched_events,omitempty"`
	Snapshots            uint64     `json:"snapshots,omitempty"`
	SnapshotBytes        int64      `json:"snapshot_bytes,omitempty"`
	LastCompaction       *time.Time `json:"last_compaction,omitempty"`
	JournalError         string     `json:"journal_error,omitempty"`
	// WALDegraded reports a write-ahead log that hit an unrecoverable
	// write/fsync failure and flipped read-only; the node refuses writes
	// with retriable 503s until it is restarted on healthy storage.
	WALDegraded       bool   `json:"wal_degraded,omitempty"`
	WALDegradedReason string `json:"wal_degraded_reason,omitempty"`

	// Replication lag and ingest counters (internal/replica). Top-level
	// numerics so the router's metrics fan-out sums them cluster-wide.
	ReplicaFollowers     int     `json:"replica_followers,omitempty"`
	ReplicaSegsBehind    int     `json:"replica_segments_behind,omitempty"`
	ReplicaBytesBehind   int64   `json:"replica_bytes_behind,omitempty"`
	ReplicaLastAckAgeSec float64 `json:"replica_last_ack_age_sec,omitempty"`
	ReplicaShips         uint64  `json:"replica_ships,omitempty"`
	ReplicaShipErrors    uint64  `json:"replica_ship_errors,omitempty"`
	ReplicaPrimaries     int     `json:"replica_primaries,omitempty"`
	ReplicaIngests       uint64  `json:"replica_ingests,omitempty"`
	ReplicaIngestBytes   int64   `json:"replica_ingest_bytes,omitempty"`
	ReplicaPromotions    uint64  `json:"replica_promotions,omitempty"`

	// Stages carries the per-stage latency digests; StageHist the raw
	// bucket arrays the router merges bucket-wise into cluster-exact
	// percentiles. Both absent when the node runs with NoObs.
	Stages    map[string]obs.Summary   `json:"stages,omitempty"`
	StageHist map[string]StageHistJSON `json:"stage_hist,omitempty"`
}

// StageHistJSON is the mergeable wire form of one stage histogram: the
// full power-of-two bucket array plus count/sum (obs.HistJSON). Adding
// two of these bucket-wise is exact, so cluster-wide percentiles need no
// approximation beyond the buckets themselves.
type StageHistJSON = obs.HistJSON

// stageFields renders a stage-snapshot map into the two wire maps.
func stageFields(stages map[string]obs.Snapshot) (map[string]obs.Summary, map[string]StageHistJSON) {
	if len(stages) == 0 {
		return nil, nil
	}
	sums := make(map[string]obs.Summary, len(stages))
	hists := make(map[string]StageHistJSON, len(stages))
	for name, snap := range stages {
		sums[name] = snap.Summarize()
		hists[name] = snap.JSON()
	}
	return sums, hists
}

// DrainSessionJSON is one drained session on the wire: the state it held,
// and the body a router can POST to a successor node (with the id re-added)
// to re-create it, warm-started from the exported repository when the
// session's fingerprint is known.
type DrainSessionJSON struct {
	ID     string        `json:"id"`
	State  string        `json:"state"`
	Evals  int           `json:"evals"`
	Create CreateRequest `json:"create"`
}

// DrainResponse is the body of POST /v1/drain: the hand-off package.
type DrainResponse struct {
	Node     string             `json:"node,omitempty"`
	Closed   int                `json:"closed"`
	Sessions []DrainSessionJSON `json:"sessions"`
	Models   []bo.RepoEntry     `json:"models"`
}

// RepoExportResponse is the body of GET /v1/repository/export — the full
// repository entries, prior points included, for another node to import.
// RepoImportRequest is the same shape POSTed to /v1/repository/import.
type RepoExportResponse struct {
	Models []bo.RepoEntry `json:"models"`
}

// RepoImportRequest is the body of POST /v1/repository/import.
type RepoImportRequest struct {
	Models []bo.RepoEntry `json:"models"`
}

// RepoImportResponse is the body returned by POST /v1/repository/import.
type RepoImportResponse struct {
	Imported int `json:"imported"`
}

// specToCreateRequest renders a Spec as the wire request that re-creates it.
// The surrogate object is emitted only when set, keeping hand-off bodies for
// default-surrogate sessions byte-identical to previous releases.
func specToCreateRequest(spec Spec) CreateRequest {
	var sur *SurrogateSpec
	if spec.Surrogate != (SurrogateSpec{}) {
		s := spec.Surrogate
		sur = &s
	}
	return CreateRequest{
		Surrogate:         sur,
		Backend:           spec.Backend,
		Workload:          spec.Workload,
		Cluster:           spec.Cluster,
		Mode:              spec.Mode,
		Seed:              spec.Seed,
		MaxIterations:     spec.MaxIterations,
		MaxSteps:          spec.MaxSteps,
		WarmStart:         spec.WarmStart,
		WarmMaxDistance:   spec.WarmMaxDistance,
		Stats:             spec.Stats,
		DefaultRuntimeSec: spec.DefaultRuntimeSec,
		PriorPoints:       spec.Prior,
		PriorSource:       spec.PriorSource,
		PriorCluster:      spec.PriorCluster,
		PriorDistance:     spec.PriorDistance,
	}
}

// HandoffSessionJSON is one recovered session on the wire: the create
// body a router POSTs to the session's new owner (ID re-added) plus the
// history to replay into it.
type HandoffSessionJSON struct {
	ID      string        `json:"id"`
	State   string        `json:"state"`
	Evals   int           `json:"evals"`
	Create  CreateRequest `json:"create"`
	History []HistoryJSON `json:"history,omitempty"`
}

// HandoffResponse is the body of POST /v1/replica/promote: the dead
// node's recovered sessions and model repository.
type HandoffResponse struct {
	Node     string               `json:"node"`
	Sessions []HandoffSessionJSON `json:"sessions"`
	Models   []bo.RepoEntry       `json:"models"`
}

func toHandoffResponse(rep HandoffReport) HandoffResponse {
	resp := HandoffResponse{
		Node:     rep.Node,
		Sessions: make([]HandoffSessionJSON, 0, len(rep.Sessions)),
		Models:   rep.Repo,
	}
	for _, hs := range rep.Sessions {
		hj := HandoffSessionJSON{
			ID:     hs.ID,
			State:  hs.State,
			Evals:  hs.Evals,
			Create: specToCreateRequest(hs.Spec),
		}
		for _, h := range hs.History {
			hj.History = append(hj.History, HistoryJSON{
				Config:     toConfigJSON(h.Config),
				RuntimeSec: h.RuntimeSec,
				Objective:  h.Objective,
				Aborted:    h.Aborted,
				GCOverhead: h.GCOverhead,
				Stats:      h.Stats,
				Suggested:  h.Suggested,
			})
		}
		resp.Sessions = append(resp.Sessions, hj)
	}
	return resp
}

// RepoEntryJSON is the wire form of one repository entry's inspection view.
type RepoEntryJSON struct {
	Workload    string    `json:"workload"`
	Cluster     string    `json:"cluster"`
	Fingerprint []float64 `json:"fingerprint"`
	DefaultSec  float64   `json:"default_sec,omitempty"`
	Points      int       `json:"points"`
	Hits        uint64    `json:"hits"`
	AddedAt     time.Time `json:"added_at,omitzero"`
	LastUsed    time.Time `json:"last_used,omitzero"`
}

// RepositoryResponse is the body of GET /v1/repository.
type RepositoryResponse struct {
	Entries   int             `json:"entries"`
	Capacity  int             `json:"capacity,omitempty"`
	Hits      int64           `json:"hits"`
	Evictions int64           `json:"evictions"`
	Models    []RepoEntryJSON `json:"models"`
}

func toStatusResponse(st Status) StatusResponse {
	resp := StatusResponse{
		ID:       st.ID,
		Node:     st.Node,
		Backend:  st.Backend,
		Workload: st.Workload,
		Cluster:  st.Cluster,
		Mode:     st.Mode,
		State:    st.State,
		Evals:    st.Evals,
		Done:     st.Done,
		Err:      st.Err,
		Created:  st.Created,
		LastUsed: st.LastUsed,
	}
	resp.WarmStarted = st.WarmStarted
	resp.WarmSource = st.WarmSource
	resp.WarmDistance = st.WarmDistance
	resp.Surrogate = st.Surrogate
	if st.Best != nil {
		resp.Best = &BestJSON{
			Config:     toConfigJSON(st.Best.Config),
			RuntimeSec: st.Best.RuntimeSec,
			Objective:  st.Best.Objective,
		}
	}
	return resp
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

// NewHandler exposes a Manager over the JSON API:
//
//	POST   /v1/sessions               create a session
//	GET    /v1/sessions               list sessions
//	GET    /v1/sessions/{id}          session status (incl. best)
//	POST   /v1/sessions/{id}/suggest  next configuration to measure
//	POST   /v1/sessions/{id}/observe  report one measurement
//	GET    /v1/sessions/{id}/history  recorded experiments
//	DELETE /v1/sessions/{id}          close the session (idempotent)
//	GET    /v1/metrics                service + store observability counters, stage digests, raw stage buckets
//	GET    /metrics                   the same in Prometheus text exposition format (scrape target)
//	GET    /v1/traces                 recent request traces with timed spans (?id= for one, ?limit= to cap)
//	GET    /v1/repository             model-repository inspection (entries, fingerprints, hit/evict counters)
//	GET    /v1/repository/export      full repository entries, prior points included
//	POST   /v1/repository/import      merge another node's exported entries (idempotent)
//	POST   /v1/drain                  take the node out of service; returns the hand-off package
//	GET    /v1/replica/status         replication status (shipper + ingest sides); ?primary= filters
//	POST   /v1/replica/segments       ingest one segment chunk (?primary=&segment=&offset=&min=)
//	POST   /v1/replica/snapshot       ingest a snapshot (?primary=&hash=)
//	POST   /v1/replica/promote        fence + replay a dead primary's replica; returns the hand-off
//	GET    /healthz                   liveness + node identity + draining flag
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req CreateRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		spanStart := time.Now()
		st, err := m.Create(Spec{
			ID:                req.ID,
			Backend:           req.Backend,
			Workload:          req.Workload,
			Cluster:           req.Cluster,
			Mode:              req.Mode,
			Seed:              req.Seed,
			MaxIterations:     req.MaxIterations,
			MaxSteps:          req.MaxSteps,
			WarmStart:         req.WarmStart,
			WarmMaxDistance:   req.WarmMaxDistance,
			Stats:             req.Stats,
			DefaultRuntimeSec: req.DefaultRuntimeSec,
			Prior:             req.PriorPoints,
			PriorSource:       req.PriorSource,
			PriorCluster:      req.PriorCluster,
			PriorDistance:     req.PriorDistance,
			Surrogate:         req.surrogateSpec(),
		})
		obs.TraceFrom(r.Context()).AddSpan("service.create", spanStart)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, toStatusResponse(st))
	})

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		all := m.List()
		out := make([]StatusResponse, 0, len(all))
		for _, st := range all {
			out = append(out, toStatusResponse(st))
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, toStatusResponse(st))
	})

	mux.HandleFunc("POST /v1/sessions/{id}/suggest", func(w http.ResponseWriter, r *http.Request) {
		spanStart := time.Now()
		cfg, done, err := m.Suggest(r.PathValue("id"))
		obs.TraceFrom(r.Context()).AddSpan("service.suggest", spanStart)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, SuggestResponse{Config: toConfigJSON(cfg), Done: done})
	})

	mux.HandleFunc("POST /v1/sessions/{id}/observe", func(w http.ResponseWriter, r *http.Request) {
		var req ObserveRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		spanStart := time.Now()
		st, err := m.Observe(r.PathValue("id"), Observation{
			Config:     req.Config.toConfig(),
			RuntimeSec: req.RuntimeSec,
			Aborted:    req.Aborted,
			GCOverhead: req.GCOverhead,
			Stats:      req.Stats,
		})
		obs.TraceFrom(r.Context()).AddSpan("service.observe", spanStart)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, toStatusResponse(st))
	})

	mux.HandleFunc("GET /v1/sessions/{id}/history", func(w http.ResponseWriter, r *http.Request) {
		hist, err := m.History(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		out := make([]HistoryJSON, 0, len(hist))
		for _, h := range hist {
			out = append(out, HistoryJSON{
				Config:     toConfigJSON(h.Config),
				RuntimeSec: h.RuntimeSec,
				Objective:  h.Objective,
				Aborted:    h.Aborted,
				GCOverhead: h.GCOverhead,
				Stats:      h.Stats,
				Suggested:  h.Suggested,
			})
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		mt := m.Metrics()
		resp := MetricsResponse{
			Node:                 mt.Node,
			Draining:             mt.Draining,
			Sessions:             mt.Sessions,
			SessionsByState:      mt.SessionsByState,
			Observations:         mt.Observations,
			Evictions:            mt.Evictions,
			WarmStarts:           mt.WarmStarts,
			SurrogateFits:        mt.SurrogateFits,
			SurrogateAppends:     mt.SurrogateAppends,
			SurrogateCompactions: mt.SurrogateCompactions,
			RepoEntries:          mt.RepoEntries,
			RepoCapacity:         mt.RepoCapacity,
			RepoHits:             mt.RepoHits,
			RepoEvictions:        mt.RepoEvictions,
			Persistence:          mt.Persistence,
			Replication:          mt.Replication,
			JournalError:         mt.JournalError,
		}
		if mt.Replication {
			resp.ReplicaFollowers = mt.Replica.Followers
			resp.ReplicaSegsBehind = mt.Replica.SegmentsBehind
			resp.ReplicaBytesBehind = mt.Replica.BytesBehind
			resp.ReplicaLastAckAgeSec = mt.Replica.LastAckAgeSec
			resp.ReplicaShips = mt.Replica.Ships
			resp.ReplicaShipErrors = mt.Replica.ShipErrors
			resp.ReplicaPrimaries = mt.Replica.Primaries
			resp.ReplicaIngests = mt.Replica.Ingests
			resp.ReplicaIngestBytes = mt.Replica.IngestBytes
			resp.ReplicaPromotions = mt.Replica.Promotions
		}
		if mt.Persistence {
			resp.WALBytes = mt.Store.WALBytes
			resp.WALEvents = mt.Store.WALEvents
			resp.WALSegments = mt.Store.Segments
			resp.PrunedSegments = mt.Store.PrunedSegments
			resp.CommitBatches = mt.Store.Batches
			resp.BatchedEvents = mt.Store.BatchedEvents
			resp.Snapshots = mt.Store.Snapshots
			resp.SnapshotBytes = mt.Store.SnapshotBytes
			resp.WALDegraded = mt.Store.Degraded
			resp.WALDegradedReason = mt.Store.DegradedReason
			if !mt.Store.LastCompaction.IsZero() {
				t := mt.Store.LastCompaction
				resp.LastCompaction = &t
			}
		}
		resp.Stages, resp.StageHist = stageFields(mt.Stages)
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePromMetrics(w, m.Metrics())
	})

	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if id := q.Get("id"); id != "" {
			rec, ok := m.Tracer().Find(id)
			if !ok {
				writeJSON(w, http.StatusNotFound, errorJSON{Error: "trace not found: " + id})
				return
			}
			writeJSON(w, http.StatusOK, TracesResponse{Node: m.NodeID(), Traces: []obs.TraceRecord{rec}})
			return
		}
		limit, _ := strconv.Atoi(q.Get("limit"))
		writeJSON(w, http.StatusOK, TracesResponse{Node: m.NodeID(), Traces: m.Tracer().Recent(limit)})
	})

	mux.HandleFunc("GET /v1/repository", func(w http.ResponseWriter, r *http.Request) {
		rep := m.RepositoryReport()
		resp := RepositoryResponse{
			Entries:   len(rep.Entries),
			Capacity:  rep.Capacity,
			Hits:      rep.Hits,
			Evictions: rep.Evictions,
			Models:    make([]RepoEntryJSON, 0, len(rep.Entries)),
		}
		for _, e := range rep.Entries {
			resp.Models = append(resp.Models, RepoEntryJSON{
				Workload:    e.Workload,
				Cluster:     e.Cluster,
				Fingerprint: e.Fingerprint,
				DefaultSec:  e.DefaultSec,
				Points:      e.Points,
				Hits:        e.Hits,
				AddedAt:     e.AddedAt,
				LastUsed:    e.LastUsed,
			})
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.CloseSession(r.PathValue("id")); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
		rep := m.Drain()
		resp := DrainResponse{
			Node:     rep.Node,
			Closed:   rep.Closed,
			Sessions: make([]DrainSessionJSON, 0, len(rep.Sessions)),
			Models:   rep.Repo,
		}
		for _, ds := range rep.Sessions {
			resp.Sessions = append(resp.Sessions, DrainSessionJSON{
				ID:     ds.ID,
				State:  ds.State,
				Evals:  ds.Evals,
				Create: specToCreateRequest(ds.Spec),
			})
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /v1/repository/export", func(w http.ResponseWriter, r *http.Request) {
		repo := m.Repository()
		writeJSON(w, http.StatusOK, RepoExportResponse{Models: repo.Entries})
	})

	mux.HandleFunc("POST /v1/repository/import", func(w http.ResponseWriter, r *http.Request) {
		var req RepoImportRequest
		// Entries carry whole prior-point sets; allow a larger body than
		// the per-session endpoints.
		if !decodeJSONLimit(w, r, &req, 64<<20) {
			return
		}
		writeJSON(w, http.StatusOK, RepoImportResponse{Imported: m.ImportRepository(req.Models)})
	})

	mux.HandleFunc("GET /v1/replica/status", func(w http.ResponseWriter, r *http.Request) {
		set := m.ReplicaSet()
		if set == nil {
			// Replication off is not an error: shippers probing a peer see an
			// empty status and treat it as "holds nothing of mine".
			writeJSON(w, http.StatusOK, replica.StatusResponse{Node: m.NodeID()})
			return
		}
		st := set.Status()
		if p := r.URL.Query().Get("primary"); p != "" {
			var keep []replica.PrimaryStatus
			for _, ps := range st.Primaries {
				if ps.Primary == p {
					keep = append(keep, ps)
				}
			}
			st.Primaries = keep
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("POST /v1/replica/segments", func(w http.ResponseWriter, r *http.Request) {
		set := m.ReplicaSet()
		if set == nil {
			writeJSON(w, http.StatusServiceUnavailable, replica.IngestResponse{Error: "replication not configured"})
			return
		}
		q := r.URL.Query()
		segment, err1 := strconv.ParseUint(q.Get("segment"), 10, 64)
		offset, err2 := strconv.ParseInt(q.Get("offset"), 10, 64)
		var min uint64
		var err3 error
		if v := q.Get("min"); v != "" {
			min, err3 = strconv.ParseUint(v, 10, 64)
		}
		if err1 != nil || err2 != nil || err3 != nil {
			writeJSON(w, http.StatusBadRequest, replica.IngestResponse{Error: "bad segment/offset/min"})
			return
		}
		data, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, replica.IngestResponse{Error: err.Error()})
			return
		}
		size, err := set.Ingest(q.Get("primary"), segment, offset, min, data)
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, replica.IngestResponse{Size: size})
		case errors.Is(err, replica.ErrFenced):
			writeJSON(w, http.StatusGone, replica.IngestResponse{Error: err.Error()})
		default:
			var oe *replica.OffsetError
			if errors.As(err, &oe) {
				writeJSON(w, http.StatusConflict, replica.IngestResponse{Size: oe.Size, Error: err.Error()})
				return
			}
			writeJSON(w, http.StatusBadRequest, replica.IngestResponse{Error: err.Error()})
		}
	})

	mux.HandleFunc("POST /v1/replica/snapshot", func(w http.ResponseWriter, r *http.Request) {
		set := m.ReplicaSet()
		if set == nil {
			writeJSON(w, http.StatusServiceUnavailable, replica.IngestResponse{Error: "replication not configured"})
			return
		}
		q := r.URL.Query()
		data, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, replica.IngestResponse{Error: err.Error()})
			return
		}
		if err := set.IngestSnapshot(q.Get("primary"), q.Get("hash"), data); err != nil {
			if errors.Is(err, replica.ErrFenced) {
				writeJSON(w, http.StatusGone, replica.IngestResponse{Error: err.Error()})
				return
			}
			writeJSON(w, http.StatusBadRequest, replica.IngestResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, replica.IngestResponse{Size: int64(len(data))})
	})

	mux.HandleFunc("POST /v1/replica/promote", func(w http.ResponseWriter, r *http.Request) {
		set := m.ReplicaSet()
		if set == nil {
			http.Error(w, "replication not configured", http.StatusServiceUnavailable)
			return
		}
		var req struct {
			Primary string `json:"primary"`
		}
		if !decodeJSON(w, r, &req) {
			return
		}
		dir, err := set.Promote(req.Primary)
		if err != nil {
			if errors.Is(err, replica.ErrNoReplica) {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rep, err := ExtractHandoff(dir, req.Primary)
		if err != nil {
			// Promotion replay failing (e.g. a corrupt sealed replica
			// segment) must be loud, not a silent empty hand-off.
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, toHandoffResponse(rep))
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		resp := map[string]any{"ok": true, "sessions": m.Len()}
		if id := m.NodeID(); id != "" {
			resp["node"] = id
		}
		if adv := m.Advertise(); adv != "" {
			resp["advertise"] = adv
		}
		if m.Draining() {
			resp["draining"] = true
		}
		code := http.StatusOK
		if reason, degraded := m.StoreDegraded(); degraded {
			// A degraded WAL cannot ack writes, so the node reports
			// unhealthy: the router stops routing to it and, with
			// replication, promotes a follower's replica — the same
			// recovery path as a crash, minus the data loss.
			resp["ok"] = false
			resp["degraded"] = reason
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, resp)
	})

	// Fault-injection control (internal/fault): inspect, arm, or disarm
	// the process's failpoint schedule.
	mux.Handle("/v1/faults", fault.Handler())

	// The tracer middleware wraps the whole API, so every request — the
	// session lifecycle, replica ingest from a shipping primary, even
	// health checks — carries a trace in its context, echoes its ID in
	// X-Relm-Trace, and lands in the /v1/traces ring.
	return m.Tracer().Middleware(mux)
}

// TracesResponse is the body of GET /v1/traces.
type TracesResponse struct {
	Node   string            `json:"node,omitempty"`
	Traces []obs.TraceRecord `json:"traces"`
}

// writePromMetrics renders a Metrics snapshot in the Prometheus text
// exposition format: lifetime counters, WAL/replica/repository gauges,
// and every stage histogram as cumulative buckets.
func writePromMetrics(w io.Writer, mt Metrics) {
	p := obs.NewPromWriter(w)
	p.Gauge("relm_sessions", "Live sessions.", float64(mt.Sessions))
	for state, n := range mt.SessionsByState {
		p.Gauge("relm_sessions_by_state", "Live sessions by state.", float64(n), "state", state)
	}
	p.Counter("relm_observations_total", "Recorded experiments (including replayed).", float64(mt.Observations))
	p.Counter("relm_evictions_total", "TTL session evictions.", float64(mt.Evictions))
	p.Counter("relm_warm_starts_total", "Repository-seeded sessions.", float64(mt.WarmStarts))
	p.Counter("relm_surrogate_fits_total", "Full surrogate hyperparameter selections.", float64(mt.SurrogateFits))
	p.Counter("relm_surrogate_appends_total", "Incremental surrogate appends.", float64(mt.SurrogateAppends))
	p.Counter("relm_surrogate_compactions_total", "Budgeted surrogate active-set compactions.", float64(mt.SurrogateCompactions))
	p.Gauge("relm_repo_entries", "Model repository entries.", float64(mt.RepoEntries))
	p.Counter("relm_repo_hits_total", "Warm-start repository matches.", float64(mt.RepoHits))
	p.Counter("relm_repo_evictions_total", "Repository capacity evictions.", float64(mt.RepoEvictions))
	drain := 0.0
	if mt.Draining {
		drain = 1
	}
	p.Gauge("relm_draining", "1 while the node is draining.", drain)
	if mt.Persistence {
		p.Gauge("relm_wal_bytes", "WAL size across segments.", float64(mt.Store.WALBytes))
		p.Counter("relm_wal_events_total", "Events journaled to the WAL.", float64(mt.Store.WALEvents))
		p.Gauge("relm_wal_segments", "Live WAL segments.", float64(mt.Store.Segments))
		p.Counter("relm_wal_pruned_segments_total", "Sealed segments deleted by compaction.", float64(mt.Store.PrunedSegments))
		p.Counter("relm_wal_commit_batches_total", "Group-commit batches flushed.", float64(mt.Store.Batches))
		p.Counter("relm_wal_batched_events_total", "Records flushed through group commit.", float64(mt.Store.BatchedEvents))
		p.Counter("relm_snapshots_total", "Compacted snapshots written.", float64(mt.Store.Snapshots))
		p.Gauge("relm_snapshot_bytes", "Latest snapshot size.", float64(mt.Store.SnapshotBytes))
		degraded := 0.0
		if mt.Store.Degraded {
			degraded = 1
		}
		p.Gauge("relm_wal_degraded", "1 while the WAL is degraded (read-only).", degraded)
	}
	if mt.Replication {
		p.Gauge("relm_replica_followers", "Configured ship targets.", float64(mt.Replica.Followers))
		p.Gauge("relm_replica_segments_behind", "Segments with unshipped bytes across followers.", float64(mt.Replica.SegmentsBehind))
		p.Gauge("relm_replica_bytes_behind", "Unshipped WAL bytes across followers.", float64(mt.Replica.BytesBehind))
		p.Counter("relm_replica_ships_total", "Acknowledged ship requests.", float64(mt.Replica.Ships))
		p.Counter("relm_replica_ship_errors_total", "Failed ship requests.", float64(mt.Replica.ShipErrors))
		p.Gauge("relm_replica_primaries", "Primaries this node holds replicas for.", float64(mt.Replica.Primaries))
		p.Counter("relm_replica_ingests_total", "Replica ingest appends.", float64(mt.Replica.Ingests))
		p.Counter("relm_replica_ingest_bytes_total", "Replica bytes ingested.", float64(mt.Replica.IngestBytes))
		p.Counter("relm_replica_promotions_total", "Replicas promoted on this node.", float64(mt.Replica.Promotions))
	}
	p.StageHistograms("relm_stage_latency_seconds", "Per-stage latency distribution.", mt.Stages)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	return decodeJSONLimit(w, r, v, 1<<20)
}

func decodeJSONLimit(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	// Marshal before writing the header so an encoding failure (e.g. a NaN
	// float) surfaces as a 500 instead of a silent empty 200.
	buf, err := json.Marshal(v)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":%q}`, "encode response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(buf)
	_, _ = w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrClosed):
		code = http.StatusGone
	case errors.Is(err, ErrBusy), errors.Is(err, ErrTooMany):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrExists):
		code = http.StatusConflict
	case errors.Is(err, ErrManagerDown), errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrJournal), errors.Is(err, store.ErrDegraded), errors.Is(err, fault.ErrInjected):
		// Store append/fsync failures (and injected faults) refused the
		// operation before mutating anything: the request is retriable —
		// here after the fault clears, or on another node via the router's
		// next-candidate walk. Retry-After marks it as such.
		w.Header().Set("Retry-After", "1")
		code = http.StatusServiceUnavailable
	default:
		code = http.StatusBadRequest
	}
	writeJSON(w, code, errorJSON{Error: err.Error()})
}
