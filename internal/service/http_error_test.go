package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relm/internal/profile"
)

// This file pins the HTTP error contract — malformed bodies, unknown
// sessions, idempotent double-closes — and the node-identity / drain /
// repository-transfer endpoints the cluster router depends on.

// doRaw posts a raw (possibly malformed) body and returns the status.
func doRaw(t *testing.T, method, url, body string) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func clusterStats() *profile.Stats {
	return &profile.Stats{
		N: 1, MhMB: 8192, CPUAvg: 0.55, DiskAvg: 0.2,
		MiMB: 300, McMB: 2000, MsMB: 150, MuMB: 400,
		P: 2, H: 0.8, S: 0.05, HadFullGC: true, CoresPerNode: 8,
	}
}

func TestHTTPBadJSONBodies(t *testing.T) {
	srv := newTestServer(t)

	for name, tc := range map[string]struct{ method, path, body string }{
		"create truncated":       {http.MethodPost, "/v1/sessions", `{"backend":"bo"`},
		"create not json":        {http.MethodPost, "/v1/sessions", `not json at all`},
		"create unknown field":   {http.MethodPost, "/v1/sessions", `{"backend":"bo","flavor":"mint"}`},
		"create wrong type":      {http.MethodPost, "/v1/sessions", `{"seed":"seven"}`},
		"import truncated":       {http.MethodPost, "/v1/repository/import", `{"models":[`},
		"import unknown field":   {http.MethodPost, "/v1/repository/import", `{"entries":[]}`},
		"observe missing config": {http.MethodPost, "/v1/sessions/sess-1/observe", `{"runtime_sec":`},
	} {
		if code := doRaw(t, tc.method, srv.URL+tc.path, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
}

func TestHTTPUnknownSessionEverywhere(t *testing.T) {
	srv := newTestServer(t)

	for _, ep := range []struct{ method, path string }{
		{http.MethodGet, "/v1/sessions/sess-404"},
		{http.MethodPost, "/v1/sessions/sess-404/suggest"},
		{http.MethodGet, "/v1/sessions/sess-404/history"},
		{http.MethodDelete, "/v1/sessions/sess-404"},
	} {
		if code := doJSON(t, ep.method, srv.URL+ep.path, nil, nil); code != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", ep.method, ep.path, code)
		}
	}
	// Observe validates the body before the session lookup can matter;
	// a valid body against a missing session must still 404.
	var sug SuggestResponse
	var created StatusResponse
	doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Backend: "bo", Workload: "SVM"}, &created)
	doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+created.ID+"/suggest", nil, &sug)
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/sess-404/observe",
		ObserveRequest{Config: sug.Config, RuntimeSec: 100}, nil); code != http.StatusNotFound {
		t.Errorf("observe unknown session: status %d, want 404", code)
	}
}

func TestHTTPDoubleCloseIsIdempotent(t *testing.T) {
	srv := newTestServer(t)

	var created StatusResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Backend: "bo", Workload: "SVM"}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	for i := 0; i < 3; i++ {
		if code := doJSON(t, http.MethodDelete, srv.URL+"/v1/sessions/"+created.ID, nil, nil); code != http.StatusNoContent {
			t.Fatalf("close #%d: status %d, want 204 every time", i+1, code)
		}
	}
}

func TestHTTPCreateWithIDConflictsAndValidates(t *testing.T) {
	srv := newTestServer(t)

	var created StatusResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions",
		CreateRequest{ID: "router-minted-1", Backend: "bo", Workload: "SVM"}, &created); code != http.StatusCreated {
		t.Fatalf("create with ID: status %d", code)
	}
	if created.ID != "router-minted-1" {
		t.Fatalf("assigned ID not honoured: %q", created.ID)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions",
		CreateRequest{ID: "router-minted-1", Backend: "bo", Workload: "SVM"}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate ID: status %d, want 409", code)
	}
	// A closed ID stays burned: re-creating it would resurrect history.
	doJSON(t, http.MethodDelete, srv.URL+"/v1/sessions/router-minted-1", nil, nil)
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions",
		CreateRequest{ID: "router-minted-1", Backend: "bo", Workload: "SVM"}, nil); code != http.StatusConflict {
		t.Fatalf("recreate closed ID: status %d, want 409", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions",
		CreateRequest{ID: "bad/id", Backend: "bo", Workload: "SVM"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad ID characters: status %d, want 400", code)
	}
	// The counter namespace is reserved: "sess-N" could collide with a
	// counter-assigned ID (issued, pruned, or future).
	for _, id := range []string{"sess-1", "sess-99999"} {
		if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions",
			CreateRequest{ID: id, Backend: "bo", Workload: "SVM"}, nil); code != http.StatusBadRequest {
			t.Fatalf("reserved counter ID %q: status %d, want 400", id, code)
		}
	}
}

func TestHTTPNodeIdentityAndDrain(t *testing.T) {
	m, err := Open(Options{NodeID: "node-a", Advertise: "http://10.0.0.1:8080", Workers: 1, TTL: time.Hour})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(m.Close)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)

	var health map[string]any
	if code := doJSON(t, http.MethodGet, srv.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if health["node"] != "node-a" || health["advertise"] != "http://10.0.0.1:8080" {
		t.Fatalf("healthz identity: %+v", health)
	}
	if _, ok := health["draining"]; ok {
		t.Fatalf("healthz reports draining before any drain: %+v", health)
	}

	// Node-prefixed counter IDs, and the node stamped on every status.
	var created StatusResponse
	doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{
		Backend: "gbo", Workload: "K-means", MaxIterations: 30,
		WarmStart: true, Stats: clusterStats(), DefaultRuntimeSec: 240,
	}, &created)
	if created.ID != "node-a-sess-1" || created.Node != "node-a" {
		t.Fatalf("node identity on session: id %q node %q", created.ID, created.Node)
	}
	// The reserved counter namespace is the node-prefixed one here; a bare
	// "sess-N" is foreign on this node and therefore allowed.
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions",
		CreateRequest{ID: "node-a-sess-9", Backend: "bo", Workload: "SVM"}, nil); code != http.StatusBadRequest {
		t.Fatalf("reserved node-prefixed counter ID: status %d, want 400", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions",
		CreateRequest{ID: "sess-9", Backend: "bo", Workload: "SVM"}, nil); code != http.StatusCreated {
		t.Fatalf("foreign bare counter ID on a named node: status %d, want 201", code)
	}
	// Closed again so the drain below sees exactly one live session.
	doJSON(t, http.MethodDelete, srv.URL+"/v1/sessions/sess-9", nil, nil)
	var sug SuggestResponse
	doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+created.ID+"/suggest", nil, &sug)
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+created.ID+"/observe",
		ObserveRequest{Config: sug.Config, RuntimeSec: 200}, nil); code != http.StatusOK {
		t.Fatalf("observe: status %d", code)
	}

	var drain DrainResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/drain", nil, &drain); code != http.StatusOK {
		t.Fatalf("drain: status %d", code)
	}
	if drain.Node != "node-a" || drain.Closed != 1 || len(drain.Sessions) != 1 || len(drain.Models) != 1 {
		t.Fatalf("drain report: %+v", drain)
	}
	ds := drain.Sessions[0]
	if ds.ID != created.ID || ds.State != StateActive || ds.Evals != 1 {
		t.Fatalf("drained session: %+v", ds)
	}
	if !ds.Create.WarmStart || ds.Create.Stats == nil || ds.Create.ID != "" {
		t.Fatalf("drained re-create spec not warm-start-ready: %+v", ds.Create)
	}

	// Draining is terminal and visible.
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Backend: "bo", Workload: "SVM"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: status %d, want 503", code)
	}
	health = nil
	doJSON(t, http.MethodGet, srv.URL+"/healthz", nil, &health)
	if health["draining"] != true {
		t.Fatalf("healthz after drain: %+v", health)
	}
	var drain2 DrainResponse
	doJSON(t, http.MethodPost, srv.URL+"/v1/drain", nil, &drain2)
	if drain2.Closed != 0 || len(drain2.Sessions) != 0 {
		t.Fatalf("second drain not empty: %+v", drain2)
	}
}

// TestHTTPRepositoryTransfer moves models from one node to another over
// export/import and checks the receiver warm-starts from them.
func TestHTTPRepositoryTransfer(t *testing.T) {
	a := NewManager(Options{NodeID: "a", Workers: 1, TTL: time.Hour})
	t.Cleanup(a.Close)
	srvA := httptest.NewServer(NewHandler(a))
	t.Cleanup(srvA.Close)
	b := NewManager(Options{NodeID: "b", Workers: 1, TTL: time.Hour})
	t.Cleanup(b.Close)
	srvB := httptest.NewServer(NewHandler(b))
	t.Cleanup(srvB.Close)

	// A completed session on a populates its repository.
	var created StatusResponse
	doJSON(t, http.MethodPost, srvA.URL+"/v1/sessions", CreateRequest{
		Backend: "bo", Workload: "K-means", MaxIterations: 2,
		WarmStart: true, Stats: clusterStats(), DefaultRuntimeSec: 240,
	}, &created)
	for i := 0; created.State != StateDone && i < 40; i++ {
		var sug SuggestResponse
		doJSON(t, http.MethodPost, srvA.URL+"/v1/sessions/"+created.ID+"/suggest", nil, &sug)
		doJSON(t, http.MethodPost, srvA.URL+"/v1/sessions/"+created.ID+"/observe",
			ObserveRequest{Config: sug.Config, RuntimeSec: 300 - float64(i)}, &created)
	}
	if created.State != StateDone {
		t.Fatalf("session never completed: %+v", created)
	}

	var exported RepoExportResponse
	if code := doJSON(t, http.MethodGet, srvA.URL+"/v1/repository/export", nil, &exported); code != http.StatusOK {
		t.Fatalf("export: status %d", code)
	}
	if len(exported.Models) != 1 || len(exported.Models[0].Points) == 0 {
		t.Fatalf("export: %d models", len(exported.Models))
	}

	var imported RepoImportResponse
	if code := doJSON(t, http.MethodPost, srvB.URL+"/v1/repository/import",
		RepoImportRequest{Models: exported.Models}, &imported); code != http.StatusOK || imported.Imported != 1 {
		t.Fatalf("import: status %d imported %d", code, imported.Imported)
	}
	// Idempotent: a replayed broadcast adds nothing.
	doJSON(t, http.MethodPost, srvB.URL+"/v1/repository/import",
		RepoImportRequest{Models: exported.Models}, &imported)
	if imported.Imported != 0 {
		t.Fatalf("re-import added %d entries, want 0", imported.Imported)
	}

	// The receiver warm-starts a matching workload from the import.
	var warm StatusResponse
	doJSON(t, http.MethodPost, srvB.URL+"/v1/sessions", CreateRequest{
		Backend: "gbo", Workload: "K-means", MaxIterations: 30,
		WarmStart: true, Stats: clusterStats(), DefaultRuntimeSec: 240,
	}, &warm)
	if !warm.WarmStarted || warm.WarmSource != "K-means" {
		t.Fatalf("import did not enable warm start: %+v", warm)
	}
}
