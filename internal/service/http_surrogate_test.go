package service

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"relm/internal/store"
)

// Satellite acceptance: the surrogate configuration round-trips through the
// HTTP API in both spellings — the nested `surrogate` object and the
// deprecated flat fields — and the session status reports the resolved
// configuration plus live work counters.
func TestHTTPSurrogateRoundTrip(t *testing.T) {
	srv := newTestServer(t)

	t.Run("nested object", func(t *testing.T) {
		final := driveHTTPSession(t, srv.URL, CreateRequest{
			Backend:  "bo",
			Workload: "K-means",
			Cluster:  "A",
			Seed:     31,
			Surrogate: &SurrogateSpec{
				Kernel:     "matern52",
				Budget:     8,
				RefitEvery: 3,
			},
		}, 25)
		if final.Surrogate == nil {
			t.Fatal("status carries no surrogate object")
		}
		if final.Surrogate.Kind != "matern52" {
			t.Fatalf("surrogate kind = %q, want matern52", final.Surrogate.Kind)
		}
		if final.Surrogate.Budget != 8 {
			t.Fatalf("surrogate budget = %d, want 8", final.Surrogate.Budget)
		}
		if final.Surrogate.Fits == 0 {
			t.Fatal("surrogate recorded no fits after a full session")
		}
		if final.Evals > 8 && final.Surrogate.Compactions == 0 {
			t.Fatalf("%d evals against budget 8 recorded no compactions", final.Evals)
		}
	})

	t.Run("deprecated flat fields", func(t *testing.T) {
		final := driveHTTPSession(t, srv.URL, CreateRequest{
			Backend:         "bo",
			Workload:        "K-means",
			Cluster:         "A",
			Seed:            31,
			Kernel:          "matern52",
			SurrogateBudget: 8,
			RefitEvery:      3,
		}, 25)
		if final.Surrogate == nil || final.Surrogate.Kind != "matern52" || final.Surrogate.Budget != 8 {
			t.Fatalf("flat fields did not configure the surrogate: %+v", final.Surrogate)
		}
	})

	t.Run("nested wins over flat", func(t *testing.T) {
		var created StatusResponse
		code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{
			Backend:   "bo",
			Workload:  "K-means",
			Kernel:    "matern52",
			Surrogate: &SurrogateSpec{Kernel: "rbf"},
		}, &created)
		if code != http.StatusCreated {
			t.Fatalf("create: status %d", code)
		}
		if created.Surrogate == nil || created.Surrogate.Kind != "rbf" {
			t.Fatalf("nested object should win over flat alias: %+v", created.Surrogate)
		}
	})

	t.Run("default is exact rbf", func(t *testing.T) {
		var created StatusResponse
		code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{
			Backend: "bo", Workload: "K-means",
		}, &created)
		if code != http.StatusCreated {
			t.Fatalf("create: status %d", code)
		}
		if created.Surrogate == nil || created.Surrogate.Kind != "rbf" || created.Surrogate.Budget != 0 {
			t.Fatalf("default surrogate should be exact rbf: %+v", created.Surrogate)
		}
	})

	t.Run("unknown kernel rejected", func(t *testing.T) {
		code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{
			Backend: "bo", Workload: "K-means",
			Surrogate: &SurrogateSpec{Kernel: "periodic"},
		}, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("unknown kernel: status %d, want 400", code)
		}
	})

	t.Run("non-bo backends omit the object", func(t *testing.T) {
		var created StatusResponse
		code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{
			Backend: "relm", Workload: "K-means",
		}, &created)
		if code != http.StatusCreated {
			t.Fatalf("create: status %d", code)
		}
		if created.Surrogate != nil {
			t.Fatalf("relm session reports a surrogate: %+v", created.Surrogate)
		}
	})
}

// Options.SurrogateBudget is the manager-wide default: spec budget 0
// inherits it, a negative spec budget forces the exact model back.
func TestManagerDefaultSurrogateBudget(t *testing.T) {
	m := NewManager(Options{Workers: 1, SurrogateBudget: 32})
	t.Cleanup(m.Close)

	st, err := m.Create(Spec{Backend: "bo", Workload: "K-means"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Surrogate == nil || st.Surrogate.Budget != 32 {
		t.Fatalf("spec budget 0 should inherit the manager default 32: %+v", st.Surrogate)
	}

	st, err = m.Create(Spec{Backend: "bo", Workload: "K-means", Surrogate: SurrogateSpec{Budget: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Surrogate == nil || st.Surrogate.Budget != 0 {
		t.Fatalf("negative spec budget should force the exact model: %+v", st.Surrogate)
	}

	st, err = m.Create(Spec{Backend: "bo", Workload: "K-means", Surrogate: SurrogateSpec{Budget: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Surrogate == nil || st.Surrogate.Budget != 16 {
		t.Fatalf("explicit spec budget should win: %+v", st.Surrogate)
	}
}

// Cumulative surrogate counters surface in /v1/metrics (JSON) and the
// Prometheus exposition, including the new compactions counter.
func TestHTTPMetricsSurrogateCounters(t *testing.T) {
	srv := newTestServer(t)
	driveHTTPSession(t, srv.URL, CreateRequest{
		Backend: "bo", Workload: "K-means", Seed: 7,
		Surrogate: &SurrogateSpec{Budget: 6},
	}, 25)

	var mt MetricsResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/metrics", nil, &mt); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if mt.SurrogateFits == 0 {
		t.Fatal("metrics report no surrogate fits")
	}
	if mt.SurrogateCompactions == 0 {
		t.Fatal("metrics report no surrogate compactions for a budget-6 session")
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "relm_surrogate_compactions_total") {
		t.Fatal("Prometheus exposition lacks relm_surrogate_compactions_total")
	}
}

// The surrogate spec must survive the WAL: a budgeted session restored
// from the journal keeps its resolved configuration.
func TestSurrogateSpecSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Open(Options{Workers: 1, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Create(Spec{Backend: "bo", Workload: "K-means",
		Surrogate: SurrogateSpec{Kernel: "matern52", Budget: 48, RefitEvery: 5}})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()

	fs2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Options{Workers: 1, Store: fs2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m2.Close)
	st2, err := m2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Surrogate == nil || st2.Surrogate.Kind != "matern52" || st2.Surrogate.Budget != 48 {
		t.Fatalf("surrogate spec lost across restart: %+v", st2.Surrogate)
	}
}
