package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"relm/internal/profile"
	"relm/internal/sim"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/store"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	m := NewManager(Options{Workers: 2})
	t.Cleanup(m.Close)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)
	return srv
}

func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// driveHTTPSession runs one complete remote tuning loop over the wire and
// returns the final status.
func driveHTTPSession(t *testing.T, base string, create CreateRequest, maxSteps int) StatusResponse {
	t.Helper()
	var created StatusResponse
	if code := doJSON(t, http.MethodPost, base+"/v1/sessions", create, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if created.ID == "" {
		t.Fatal("create returned no id")
	}

	cl := cluster.A()
	if create.Cluster == "B" {
		cl = cluster.B()
	}
	wl, ok := workload.ByName(create.Workload)
	if !ok {
		t.Fatalf("unknown workload %q", create.Workload)
	}

	for step := 0; step < maxSteps; step++ {
		var sug SuggestResponse
		if code := doJSON(t, http.MethodPost, fmt.Sprintf("%s/v1/sessions/%s/suggest", base, created.ID), nil, &sug); code != http.StatusOK {
			t.Fatalf("suggest: status %d", code)
		}
		if sug.Done {
			break
		}
		// The client "measures" the suggested configuration (simulator
		// stands in for the real cluster) and reports back.
		res, prof := sim.Run(cl, wl, sug.Config.toConfig(), uint64(1000+step))
		st := profile.Generate(prof)
		obs := ObserveRequest{Config: sug.Config, RuntimeSec: res.RuntimeSec, Aborted: res.Aborted, Stats: &st}
		var after StatusResponse
		if code := doJSON(t, http.MethodPost, fmt.Sprintf("%s/v1/sessions/%s/observe", base, created.ID), obs, &after); code != http.StatusOK {
			t.Fatalf("observe: status %d", code)
		}
	}

	var final StatusResponse
	if code := doJSON(t, http.MethodGet, base+"/v1/sessions/"+created.ID, nil, &final); code != http.StatusOK {
		t.Fatalf("get: status %d", code)
	}
	return final
}

// TestHTTPFullLoopAllBackends is the acceptance loop: every backend is
// drivable to completion over HTTP.
func TestHTTPFullLoopAllBackends(t *testing.T) {
	srv := newTestServer(t)
	for _, backend := range []string{"relm", "bo", "gbo", "ddpg"} {
		t.Run(backend, func(t *testing.T) {
			final := driveHTTPSession(t, srv.URL, CreateRequest{
				Backend:       backend,
				Workload:      "K-means",
				Cluster:       "A",
				Seed:          11,
				MaxIterations: 2,
				MaxSteps:      2,
			}, 40)
			if !final.Done || final.State != StateDone {
				t.Fatalf("final status: %+v", final)
			}
			if final.Best == nil || final.Best.RuntimeSec <= 0 {
				t.Fatalf("no best: %+v", final)
			}
		})
	}
}

// TestHTTPConcurrentSessions drives 8 independent HTTP tuning loops in
// parallel — the service's headline scenario. Run with -race.
func TestHTTPConcurrentSessions(t *testing.T) {
	srv := newTestServer(t)
	backends := []string{"relm", "bo", "gbo", "ddpg"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			final := driveHTTPSession(t, srv.URL, CreateRequest{
				Backend:       backends[g%len(backends)],
				Workload:      "WordCount",
				Seed:          uint64(g),
				MaxIterations: 2,
				MaxSteps:      2,
			}, 40)
			if !final.Done {
				t.Errorf("goroutine %d: session not done: %+v", g, final)
			}
		}(g)
	}
	wg.Wait()
}

func TestHTTPErrors(t *testing.T) {
	srv := newTestServer(t)

	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/sessions/nope", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing session: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Backend: "astrology"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad backend: status %d", code)
	}

	var created StatusResponse
	doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Backend: "bo", Workload: "SVM"}, &created)
	if code := doJSON(t, http.MethodDelete, srv.URL+"/v1/sessions/"+created.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+created.ID+"/suggest", nil, nil); code != http.StatusNotFound {
		t.Fatalf("suggest after delete: status %d", code)
	}
}

func TestHTTPListAndHealth(t *testing.T) {
	srv := newTestServer(t)
	doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Backend: "bo", Workload: "SVM"}, nil)

	var list []StatusResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/sessions", nil, &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("list: status %d len %d", code, len(list))
	}
	var health map[string]any
	if code := doJSON(t, http.MethodGet, srv.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
}

// TestHTTPMetrics exercises the observability endpoint against a
// persistent manager: session counts by state, observation totals, and the
// store's WAL counters.
func TestHTTPMetrics(t *testing.T) {
	m := NewManager(Options{Workers: 2, Store: store.NewMem()})
	t.Cleanup(m.Close)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)

	var created StatusResponse
	doJSON(t, http.MethodPost, srv.URL+"/v1/sessions", CreateRequest{Backend: "bo", Workload: "SVM", Seed: 1}, &created)
	var sug SuggestResponse
	doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+created.ID+"/suggest", nil, &sug)
	res, prof := sim.Run(cluster.A(), mustWorkload(t, "SVM"), sug.Config.toConfig(), 77)
	st := profile.Generate(prof)
	doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+created.ID+"/observe",
		ObserveRequest{Config: sug.Config, RuntimeSec: res.RuntimeSec, Aborted: res.Aborted, Stats: &st}, nil)

	var mt MetricsResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/metrics", nil, &mt); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if mt.Sessions != 1 || mt.SessionsByState[StateActive] != 1 {
		t.Fatalf("session counts wrong: %+v", mt)
	}
	if mt.Observations != 1 {
		t.Fatalf("observations = %d, want 1", mt.Observations)
	}
	if !mt.Persistence || mt.WALEvents == 0 || mt.WALBytes == 0 {
		t.Fatalf("store counters missing: %+v", mt)
	}
}

func mustWorkload(t *testing.T, name string) workload.Spec {
	t.Helper()
	wl, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	return wl
}

// TestHTTPRepository: GET /v1/repository exposes the model repository's
// entries, fingerprints, and lifecycle counters; WAL segmentation counters
// show up under /v1/metrics.
func TestHTTPRepository(t *testing.T) {
	m := NewManager(Options{Workers: 2, RepoCapacity: 8, Store: store.NewMem()})
	t.Cleanup(m.Close)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)

	var rep RepositoryResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/repository", nil, &rep); code != http.StatusOK {
		t.Fatalf("repository: status %d", code)
	}
	if rep.Entries != 0 || rep.Capacity != 8 || len(rep.Models) != 0 {
		t.Fatalf("empty repository report: %+v", rep)
	}

	// A completed session is harvested into the repository and shows up.
	final := driveHTTPSession(t, srv.URL, CreateRequest{
		Backend: "bo", Workload: "K-means", Cluster: "A", Seed: 5, MaxIterations: 2,
	}, 40)
	if final.State != StateDone {
		t.Fatalf("session not done: %+v", final)
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/repository", nil, &rep); code != http.StatusOK {
		t.Fatalf("repository: status %d", code)
	}
	if rep.Entries != 1 || len(rep.Models) != 1 {
		t.Fatalf("repository after harvest: %+v", rep)
	}
	mdl := rep.Models[0]
	if mdl.Workload != "K-means" || mdl.Cluster != "A" || mdl.Points == 0 || len(mdl.Fingerprint) == 0 {
		t.Fatalf("harvested model mangled: %+v", mdl)
	}

	var mt MetricsResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/metrics", nil, &mt); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if mt.RepoEntries != 1 || mt.RepoCapacity != 8 {
		t.Fatalf("repository counters missing from metrics: %+v", mt)
	}
	if mt.WALSegments == 0 {
		t.Fatalf("segment counters missing from metrics: %+v", mt)
	}
}
