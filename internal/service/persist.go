package service

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"relm/internal/bo"
	"relm/internal/store"
	"relm/internal/tune"
)

// This file is the persistence layer of the Manager: journaling session
// events to the write-ahead log, replaying snapshot + log into a fresh
// Manager (crash recovery), and compacting the log into snapshots.
//
// Replay is idempotent: observe events carry a per-session ordinal and are
// applied only when they extend the session's history, create/warm/close
// events are no-ops when already reflected, and harvest events are keyed
// by session ID. The snapshot and the log may therefore overlap — the
// snapshotter never stops the world, and a crash between the snapshot
// rename and the log rewrite loses nothing.

// specRecord converts a Spec to its durable form. The surrogate block is
// journaled only when set, so sessions on the default surrogate produce
// the same record bytes as before the field existed.
func specRecord(spec Spec) *store.SessionSpec {
	rec := &store.SessionSpec{
		Backend:         spec.Backend,
		Workload:        spec.Workload,
		Cluster:         spec.Cluster,
		Mode:            spec.Mode,
		Seed:            spec.Seed,
		MaxIterations:   spec.MaxIterations,
		MaxSteps:        spec.MaxSteps,
		WarmStart:       spec.WarmStart,
		WarmMaxDistance: spec.WarmMaxDistance,
		Stats:           spec.Stats,
		DefaultSec:      spec.DefaultRuntimeSec,
	}
	if spec.Surrogate != (SurrogateSpec{}) {
		rec.Surrogate = &store.SurrogateSpec{
			Kernel:     spec.Surrogate.Kernel,
			Budget:     spec.Surrogate.Budget,
			RefitEvery: spec.Surrogate.RefitEvery,
			RefitDrift: spec.Surrogate.RefitDrift,
		}
	}
	return rec
}

// specFromRecord is the inverse of specRecord.
func specFromRecord(rec store.SessionSpec) Spec {
	spec := Spec{
		Backend:           rec.Backend,
		Workload:          rec.Workload,
		Cluster:           rec.Cluster,
		Mode:              rec.Mode,
		Seed:              rec.Seed,
		MaxIterations:     rec.MaxIterations,
		MaxSteps:          rec.MaxSteps,
		WarmStart:         rec.WarmStart,
		WarmMaxDistance:   rec.WarmMaxDistance,
		Stats:             rec.Stats,
		DefaultRuntimeSec: rec.DefaultSec,
	}
	if rec.Surrogate != nil {
		spec.Surrogate = SurrogateSpec{
			Kernel:     rec.Surrogate.Kernel,
			Budget:     rec.Surrogate.Budget,
			RefitEvery: rec.Surrogate.RefitEvery,
			RefitDrift: rec.Surrogate.RefitDrift,
		}
	}
	return spec
}

// journal appends one event to the store, returning its sequence number
// (0 without a store or during replay) and the append error. Callers on
// the durability path — Create and Observe, whose acks promise the event
// survives recovery — fail the operation on error (journal-before-apply);
// advisory events (suggest, harvest, close tombstones) ignore it. Either
// way the last failure is surfaced through Metrics.
func (m *Manager) journal(ev *store.Event) (uint64, error) {
	if m.opts.Store == nil || m.replaying {
		return 0, nil
	}
	seq, err := m.opts.Store.Append(ev)
	if err != nil {
		msg := err.Error()
		m.journalErr.Store(&msg)
		return 0, err
	}
	if m.sinceSnap.Add(1) >= int64(m.opts.SnapshotEvery) {
		m.sinceSnap.Store(0)
		select {
		case m.snapCh <- struct{}{}:
		default: // a compaction is already pending
		}
	}
	return seq, nil
}

// journalClose journals a close tombstone for a removed session and
// records its sequence number, so compaction can prune the tombstone once
// the log no longer holds events that could resurrect the ID. Callers
// must have tombstoned the ID (tombstoneKept) when removing the session.
func (m *Manager) journalClose(id string, now time.Time) {
	seq, err := m.journal(&store.Event{Type: store.EventClose, ID: id, Time: now})
	if err != nil || seq == 0 {
		return // no store or append failed: the sentinel tombstone stays
	}
	sh := m.shardFor(id)
	sh.mu.Lock()
	sh.closed[id] = seq
	sh.mu.Unlock()
}

// snapshotter compacts the log whenever journal signals it has grown past
// SnapshotEvery events.
func (m *Manager) snapshotter() {
	defer m.wg.Done()
	for {
		select {
		case <-m.quit:
			return
		case <-m.snapCh:
			if err := m.Snapshot(); err != nil {
				msg := err.Error()
				m.journalErr.Store(&msg)
			}
		}
	}
}

// Snapshot compacts the store: it collects every live session and the
// model repository into a store.Snapshot and folds the log into it. The
// service keeps running while the snapshot is collected; events journaled
// concurrently simply survive in the log and replay idempotently.
func (m *Manager) Snapshot() error {
	if m.opts.Store == nil {
		return nil
	}
	// Serialize whole snapshots: two concurrent compactions could
	// otherwise land out of order, replacing a newer snapshot with a
	// staler one after the log was already truncated past its fence.
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	// Events appended after this fence are retained by the compaction
	// even when the collection below already includes them.
	snap := &store.Snapshot{
		TakenAt:       m.opts.Now(),
		Fence:         m.opts.Store.Seq(),
		NextID:        m.nextID.Load(),
		Evictions:     m.evictions.Load(),
		Observations:  m.observations.Load(),
		WarmStarts:    m.warmStarts.Load(),
		RepoHits:      m.repoHits.Load(),
		RepoEvictions: m.repoEvictions.Load(),
	}
	// A tombstone whose close event is at or below the fence is only
	// needed until this compaction drops the matching create event; prune
	// it once the compaction succeeds.
	type tombstoneRef struct {
		sh *shard
		id string
	}
	var prunable []tombstoneRef
	for _, sh := range m.shards {
		sh.mu.RLock()
		sessions := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			sessions = append(sessions, s)
		}
		for id, seq := range sh.closed {
			if seq > snap.Fence {
				snap.Closed = append(snap.Closed, id)
			} else {
				prunable = append(prunable, tombstoneRef{sh, id})
			}
		}
		sh.mu.RUnlock()
		for _, s := range sessions {
			s.mu.Lock()
			if s.state != StateClosed {
				snap.Sessions = append(snap.Sessions, sessionSnapshot(s))
			}
			s.mu.Unlock()
		}
	}
	m.repoMu.Lock()
	if len(m.repo.Entries) > 0 {
		snap.Repo = &bo.Repository{Entries: append([]bo.RepoEntry(nil), m.repo.Entries...)}
	}
	for id := range m.harvested {
		snap.Harvested = append(snap.Harvested, id)
	}
	m.repoMu.Unlock()
	if err := m.opts.Store.Compact(snap); err != nil {
		return err
	}
	// The compaction dropped every event at or below the fence; the
	// tombstones guarding against them can go. Re-check under the write
	// lock — never prune an entry re-tombstoned at a higher seq meanwhile.
	for _, tr := range prunable {
		tr.sh.mu.Lock()
		if seq, ok := tr.sh.closed[tr.id]; ok && seq <= snap.Fence {
			delete(tr.sh.closed, tr.id)
		}
		tr.sh.mu.Unlock()
	}
	m.sinceSnap.Store(0)
	return nil
}

// sessionSnapshot captures one session; callers hold s.mu.
func sessionSnapshot(s *Session) store.SessionSnapshot {
	ss := store.SessionSnapshot{
		ID:        s.id,
		Spec:      *specRecord(s.spec),
		State:     s.state,
		Created:   s.created,
		LastUsed:  s.lastUsed,
		Warm:      s.warm,
		Harvested: s.harvested,
	}
	for _, h := range s.history {
		ss.History = append(ss.History, store.HistoryRecord{
			Config:     h.Config,
			RuntimeSec: h.RuntimeSec,
			Objective:  h.Objective,
			Aborted:    h.Aborted,
			GCOverhead: h.GCOverhead,
			Stats:      h.Stats,
			Suggested:  h.Suggested,
		})
	}
	return ss
}

// restore rebuilds the Manager from a snapshot and the write-ahead log,
// returning the auto sessions that must be re-queued on the worker pool.
// It runs before the Manager's goroutines start, with journaling
// suppressed.
func (m *Manager) restore(snap *store.Snapshot, events []store.Event) ([]*Session, error) {
	m.replaying = true
	defer func() { m.replaying = false }()

	if snap != nil {
		m.nextID.Store(snap.NextID)
		m.evictions.Store(snap.Evictions)
		// The counters resume from the snapshot; events the log replays on
		// top (only those not already reflected) add to them.
		m.observations.Store(snap.Observations)
		m.warmStarts.Store(snap.WarmStarts)
		m.repoHits.Store(snap.RepoHits)
		m.repoEvictions.Store(snap.RepoEvictions)
		// Snapshotted tombstones outlived their compaction fence, so their
		// close events are still in the log; replay rebinds the real seq.
		for _, id := range snap.Closed {
			m.shardFor(id).closed[id] = tombstoneKept
		}
		if snap.Repo != nil {
			m.repo = snap.Repo
		}
		for _, id := range snap.Harvested {
			m.harvested[id] = struct{}{}
		}
		for _, ss := range snap.Sessions {
			s, err := m.rebuildSession(ss)
			if err != nil {
				// A session this build can no longer rebuild (e.g. a
				// removed workload) must not brick recovery of the rest —
				// same degradation as the EventCreate replay path.
				msg := fmt.Sprintf("restore session %s: %v", ss.ID, err)
				m.journalErr.Store(&msg)
				continue
			}
			sh := m.shardFor(s.id)
			sh.sessions[s.id] = s
			m.count.Add(1)
		}
	}
	for i := range events {
		m.applyEvent(&events[i])
	}
	// Replayed harvest events may have refilled the repository past its
	// bound (an eviction is durable only once the next snapshot lands);
	// re-converge on the capacity. These re-evictions are not new lifetime
	// evictions — the counter was restored above.
	m.repoMu.Lock()
	m.repo.EvictDown(m.opts.RepoCapacity)
	m.repoMu.Unlock()

	// Post-replay pass: align evaluator bookkeeping, recompute terminal
	// states, and collect interrupted auto sessions for re-queueing.
	var autos []*Session
	for _, sh := range m.shards {
		for _, s := range sh.sessions {
			if s.ev != nil {
				s.ev.Resume(len(s.history), worstRuntime(s.history))
			}
			m.refreshStateLocked(s)
			if s.spec.Mode == ModeAuto && (s.state == StateQueued || s.state == StateRunning) {
				s.state = StateQueued
				autos = append(autos, s)
			}
		}
	}
	return autos, nil
}

// rebuildSession reconstructs one session from its snapshot: a fresh tuner
// replays the recorded history observation by observation, arriving at the
// same internal state (surrogate data, guide model, stopping rule) the
// tuner held when the snapshot was taken.
func (m *Manager) rebuildSession(ss store.SessionSnapshot) (*Session, error) {
	spec := specFromRecord(ss.Spec)
	s, err := m.buildSession(ss.ID, spec, ss.Created)
	if err != nil {
		return nil, err
	}
	s.state = ss.State
	if s.state == StateRunning {
		s.state = StateQueued // the worker driving it did not survive
	}
	s.lastUsed = ss.LastUsed
	s.harvested = ss.Harvested
	// No counter bump: snapshot-restored warm starts are already in the
	// snapshot's WarmStarts total.
	if ss.Warm != nil && applyWarm(s.tuner, ss.Warm) {
		s.warm = ss.Warm
	}
	for _, h := range ss.History {
		s.replayObservation(store.Observation{
			Config:     h.Config,
			RuntimeSec: h.RuntimeSec,
			Aborted:    h.Aborted,
			GCOverhead: h.GCOverhead,
			Stats:      h.Stats,
			Suggested:  h.Suggested,
		})
	}
	return s, nil
}

// buildSession constructs an un-observed session shell for a known ID —
// the replay-time twin of Create.
func (m *Manager) buildSession(id string, spec Spec, created time.Time) (*Session, error) {
	cl, wl, err := resolve(spec)
	if err != nil {
		return nil, err
	}
	if spec.Mode == "" {
		spec.Mode = ModeRemote
	}
	sp := tune.NewSpace(cl, wl)
	t, err := m.newTuner(spec, cl, sp)
	if err != nil {
		return nil, err
	}
	s := &Session{
		id:       id,
		spec:     spec,
		tuner:    t,
		space:    sp,
		state:    StateActive,
		created:  created,
		lastUsed: created,
	}
	if spec.Mode == ModeAuto {
		s.ev = tune.NewEvaluator(cl, wl, spec.Seed)
		s.state = StateQueued
	}
	return s, nil
}

// replayObservation re-observes one recorded experiment into the session's
// tuner and history. The objective is re-derived through the session's
// abort-penalty watermark, reproducing the original assignment exactly
// (the watermark is a deterministic function of the observation sequence).
//
// The recorded Suggested bit replays the suggest/observe interleaving: a
// suggestion is re-armed via Suggest exactly when one was outstanding
// live. DDPG's solicited/unsolicited/no-pending branches (replay buffer,
// training, state folding) all depend on that distinction; BO/GBO/RelM
// suggestions are cached between observations, so arming is state-neutral
// for them.
func (s *Session) replayObservation(obs store.Observation) {
	if obs.Suggested && !s.suggested {
		s.tuner.Suggest()
		s.suggested = true
	}
	smp := tune.Sample{
		Config:     obs.Config,
		X:          s.space.Encode(obs.Config),
		RuntimeSec: obs.RuntimeSec,
		Objective:  s.obj.Assign(obs.RuntimeSec, obs.Aborted),
		Stats:      obs.Stats,
	}
	smp.Result.RuntimeSec = obs.RuntimeSec
	smp.Result.Aborted = obs.Aborted
	smp.Result.GCOverhead = obs.GCOverhead
	if s.suggested && s.tuner.Suggest() == smp.Config {
		s.suggested = false // consumed, as live
	}
	s.tuner.Observe(smp)
	s.history = append(s.history, HistoryEntry{
		Config:     smp.Config,
		RuntimeSec: smp.RuntimeSec,
		Objective:  smp.Objective,
		Aborted:    obs.Aborted,
		GCOverhead: obs.GCOverhead,
		Stats:      obs.Stats,
		Suggested:  obs.Suggested,
	})
}

// applyEvent folds one journaled event into the Manager during replay.
// Events already reflected by the snapshot (or by an earlier duplicate)
// are skipped.
func (m *Manager) applyEvent(ev *store.Event) {
	sh := m.shardFor(ev.ID)
	switch ev.Type {
	case store.EventCreate:
		m.bumpNextID(ev.ID)
		if _, ok := sh.sessions[ev.ID]; ok {
			return // already in the snapshot
		}
		if _, ok := sh.closed[ev.ID]; ok {
			return // tombstoned later in the log or by the snapshot
		}
		if ev.Spec == nil {
			return
		}
		spec := specFromRecord(*ev.Spec)
		s, err := m.buildSession(ev.ID, spec, ev.Time)
		if err != nil {
			// An undecodable spec (e.g. a workload this build no longer
			// ships) must not block recovery of every other session.
			msg := fmt.Sprintf("replay create %s: %v", ev.ID, err)
			m.journalErr.Store(&msg)
			return
		}
		sh.sessions[ev.ID] = s
		m.count.Add(1)

	case store.EventWarm:
		s := sh.sessions[ev.ID]
		if s == nil || s.warm != nil || ev.Warm == nil {
			return
		}
		if applyWarm(s.tuner, ev.Warm) {
			s.warm = ev.Warm
			m.warmStarts.Add(1)
		}

	case store.EventSuggest:
		if s := sh.sessions[ev.ID]; s != nil {
			s.lastUsed = ev.Time
			// Re-arm the suggestion as live did: trailing suggests (after
			// the last observation) leave the same pending action and RNG
			// position the pre-crash tuner held. Arming is idempotent —
			// suggestions are cached until consumed.
			s.tuner.Suggest()
			s.suggested = true
		}

	case store.EventObserve:
		s := sh.sessions[ev.ID]
		if s == nil || ev.Obs == nil {
			return
		}
		if ev.N != len(s.history) {
			return // duplicate of a snapshotted observation
		}
		s.replayObservation(*ev.Obs)
		s.lastUsed = ev.Time
		m.observations.Add(1)

	case store.EventClose:
		if s, ok := sh.sessions[ev.ID]; ok {
			delete(sh.sessions, ev.ID)
			m.count.Add(-1)
			s.state = StateClosed
		}
		sh.closed[ev.ID] = ev.Seq

	case store.EventHarvest:
		if ev.Repo == nil {
			return
		}
		if _, ok := m.harvested[ev.ID]; ok {
			return // already folded into the snapshot repository
		}
		m.repo.Entries = append(m.repo.Entries, *ev.Repo)
		m.harvested[ev.ID] = struct{}{}
		if s := sh.sessions[ev.ID]; s != nil {
			s.harvested = true
		}
	}
}

// sessionNum parses the numeric component of a "sess-N" ID.
func sessionNum(id string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, "sess-")
	if !ok {
		return 0, false
	}
	num, err := strconv.ParseUint(rest, 10, 64)
	return num, err == nil
}

// bumpNextID advances the session-ID counter past a replayed ID so new
// sessions never collide with journaled ones.
func (m *Manager) bumpNextID(id string) {
	num, ok := m.sessionNum(id)
	if !ok {
		return
	}
	for {
		cur := m.nextID.Load()
		if cur >= num || m.nextID.CompareAndSwap(cur, num) {
			return
		}
	}
}

// worstRuntime returns the abort-penalty watermark implied by a history.
func worstRuntime(history []HistoryEntry) float64 {
	var worst float64
	for _, h := range history {
		if h.RuntimeSec > worst {
			worst = h.RuntimeSec
		}
	}
	return worst
}
