package service

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"relm/internal/conf"
	"relm/internal/store"
)

// crash stops a Manager's goroutines without snapshotting or closing the
// store — the in-process stand-in for SIGKILL. Everything the restarted
// manager may rely on must already be in the write-ahead log.
func crash(m *Manager) {
	m.closed.Store(true)
	close(m.quit)
	m.wg.Wait()
}

// historiesEqual compares two session histories entry by entry (DeepEqual
// covers configs, runtimes, objectives, abort flags, and stats values).
func historiesEqual(a, b []HistoryEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func waitState(t *testing.T, m *Manager, id, want string) Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if st.State == want {
			return st
		}
		if st.State == StateFailed {
			t.Fatalf("session %s failed: %+v", id, st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s stuck in %q waiting for %q", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestKillAndRestoreRemote journals a multi-session remote run, drops the
// Manager mid-flight, restores into a fresh Manager, and asserts identical
// histories and statuses — then keeps driving the restored sessions
// concurrently (run with -race).
func TestKillAndRestoreRemote(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Open(Options{Workers: 1, Store: fs})
	if err != nil {
		t.Fatal(err)
	}

	// Three remote sessions on different backends, each fed a few real
	// (simulated) measurements; one is closed before the crash.
	specs := []Spec{
		{Backend: "bo", Workload: "K-means", Seed: 3, MaxIterations: 6},
		{Backend: "gbo", Workload: "SortByKey", Seed: 4, MaxIterations: 6},
		{Backend: "relm", Workload: "PageRank", Seed: 5},
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		st, err := m1.Create(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
		for step := 0; step < 3; step++ {
			cfg, done, err := m1.Suggest(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
			obs := measure(t, spec.Cluster, spec.Workload, Observation{Config: cfg}, uint64(50*i+step))
			if _, err := m1.Observe(st.ID, obs); err != nil {
				t.Fatal(err)
			}
		}
	}
	closedSt, err := m1.Create(Spec{Backend: "bo", Workload: "SVM", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.CloseSession(closedSt.ID); err != nil {
		t.Fatal(err)
	}

	before := make(map[string]Status)
	histories := make(map[string][]HistoryEntry)
	nextSuggest := make(map[string]string)
	for _, id := range ids {
		st, err := m1.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		before[id] = st
		hist, err := m1.History(id)
		if err != nil {
			t.Fatal(err)
		}
		histories[id] = hist
		cfg, _, err := m1.Suggest(id)
		if err != nil {
			t.Fatal(err)
		}
		nextSuggest[id] = fmt.Sprintf("%+v", cfg)
	}

	crash(m1)

	fs2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Options{Workers: 1, Store: fs2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	if m2.Len() != len(ids) {
		t.Fatalf("restored %d sessions, want %d (closed one must stay closed)", m2.Len(), len(ids))
	}
	if _, err := m2.Get(closedSt.ID); err != ErrNotFound {
		t.Fatalf("tombstoned session resurrected: err=%v", err)
	}
	if err := m2.CloseSession(closedSt.ID); err != nil {
		t.Fatalf("close of tombstoned session after restart: %v, want idempotent nil", err)
	}

	for _, id := range ids {
		st, err := m2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		want := before[id]
		if st.State != want.State || st.Evals != want.Evals || st.Done != want.Done || st.Backend != want.Backend {
			t.Fatalf("restored status mismatch for %s:\n got %+v\nwant %+v", id, st, want)
		}
		if (st.Best == nil) != (want.Best == nil) {
			t.Fatalf("restored best presence mismatch for %s", id)
		}
		if st.Best != nil && (*st.Best != *want.Best) {
			t.Fatalf("restored best mismatch for %s: %+v vs %+v", id, st.Best, want.Best)
		}
		hist, err := m2.History(id)
		if err != nil {
			t.Fatal(err)
		}
		if !historiesEqual(hist, histories[id]) {
			t.Fatalf("restored history differs for %s:\n got %+v\nwant %+v", id, hist, histories[id])
		}
		// The rebuilt tuner continues exactly where the original stood.
		cfg, _, err := m2.Suggest(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%+v", cfg); got != nextSuggest[id] {
			t.Fatalf("restored suggestion differs for %s: %s vs %s", id, got, nextSuggest[id])
		}
	}

	// New sessions never collide with journaled IDs.
	st, err := m2.Create(Spec{Backend: "bo", Workload: "SVM", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range append(append([]string(nil), ids...), closedSt.ID) {
		if st.ID == id {
			t.Fatalf("new session reused journaled ID %s", id)
		}
	}

	// Suggest/observe keeps working on the restored sessions, concurrently.
	var wg sync.WaitGroup
	errs := make(chan error, len(ids)*8)
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for step := 0; step < 4; step++ {
				cfg, done, err := m2.Suggest(id)
				if err != nil {
					errs <- fmt.Errorf("suggest %s: %w", id, err)
					return
				}
				if done {
					return
				}
				if _, err := m2.Observe(id, Observation{Config: cfg, RuntimeSec: 120 + float64(step)}); err != nil {
					errs <- fmt.Errorf("observe %s: %w", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRestoredAutoSessionMatchesUninterrupted crashes an auto session
// mid-flight, restores it, lets the worker pool finish it, and asserts the
// stitched history is identical to an uninterrupted run — replay fidelity
// down to the simulator seeds and the tuner's RNG stream, for the
// surrogate-based backends and the stateful DDPG agent alike.
func TestRestoredAutoSessionMatchesUninterrupted(t *testing.T) {
	for _, backend := range []string{"bo", "gbo", "ddpg"} {
		t.Run(backend, func(t *testing.T) {
			testRestoredAutoMatches(t, Spec{
				Backend: backend, Workload: "K-means", Mode: ModeAuto,
				Seed: 6, MaxIterations: 4, MaxSteps: 5,
			})
		})
	}
}

func testRestoredAutoMatches(t *testing.T, spec Spec) {
	testRestoredAutoMatchesStore(t, spec, store.FileOptions{}, nil)
}

// testRestoredAutoMatchesStore is the crash-matrix core: run an auto
// session against a file store with the given options, kill the manager
// mid-flight, optionally mangle the on-disk state (simulating what a
// machine crash leaves behind), restore, finish, and require the stitched
// history to bit-match an uninterrupted run.
func testRestoredAutoMatchesStore(t *testing.T, spec Spec, fopts store.FileOptions, mangle func(t *testing.T, dir string)) {
	// Reference: the same session driven to completion with no restart.
	ref := newTestManager(t, Options{Workers: 1})
	refSt, err := ref.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	refFinal := waitState(t, ref, refSt.ID, StateDone)
	refHist, err := ref.History(refSt.ID)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	fs, err := store.OpenFile(dir, fopts)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Open(Options{Workers: 1, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let the worker record at least one experiment, then pull the plug.
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, err := m1.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Evals >= 1 || cur.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("auto session never recorded an experiment")
		}
		time.Sleep(2 * time.Millisecond)
	}
	crash(m1)
	if mangle != nil {
		mangle(t, dir)
	}

	fs2, err := store.OpenFile(dir, fopts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Options{Workers: 1, Store: fs2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	final := waitState(t, m2, st.ID, StateDone)
	hist, err := m2.History(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !historiesEqual(hist, refHist) {
		t.Fatalf("restored-and-continued history differs from uninterrupted run:\n got %d evals %+v\nwant %d evals %+v",
			len(hist), hist, len(refHist), refHist)
	}
	if refFinal.Best == nil || final.Best == nil || *final.Best != *refFinal.Best {
		t.Fatalf("best mismatch: %+v vs %+v", final.Best, refFinal.Best)
	}
}

// TestRestoredAutoMatchesCrashMatrix re-runs the bit-match acceptance
// under the segmented WAL's crash windows: 512-byte segments put the kill
// mid-rotation (the log spans many segments, the last possibly empty);
// the group-commit case fsyncs batches and then loses the tail of the
// final batch (a machine crash mid-group-commit leaves exactly such a
// partial batch on disk) — the lost observation is deterministically
// re-measured, so the stitched history still bit-matches.
func TestRestoredAutoMatchesCrashMatrix(t *testing.T) {
	spec := Spec{Backend: "bo", Workload: "K-means", Mode: ModeAuto, Seed: 6, MaxIterations: 4}
	t.Run("mid-segment-rotation", func(t *testing.T) {
		testRestoredAutoMatchesStore(t, spec, store.FileOptions{SegmentBytes: 512}, nil)
	})
	t.Run("mid-group-commit-partial-batch", func(t *testing.T) {
		fopts := store.FileOptions{
			SyncEachAppend: true,
			CommitInterval: 200 * time.Microsecond,
			CommitBatch:    4,
		}
		testRestoredAutoMatchesStore(t, spec, fopts, func(t *testing.T, dir string) {
			truncateActiveSegmentTail(t, dir, 12)
		})
	})
	t.Run("gbo-mid-rotation-and-partial-batch", func(t *testing.T) {
		gspec := Spec{Backend: "gbo", Workload: "K-means", Mode: ModeAuto, Seed: 6, MaxIterations: 4}
		testRestoredAutoMatchesStore(t, gspec, store.FileOptions{SegmentBytes: 512}, func(t *testing.T, dir string) {
			truncateActiveSegmentTail(t, dir, 12)
		})
	})
}

// truncateActiveSegmentTail cuts n bytes off the highest-numbered WAL
// segment, tearing its last record in half.
func truncateActiveSegmentTail(t *testing.T, dir string, n int64) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".jsonl") && name > last {
			last = name
		}
	}
	if last == "" {
		t.Fatal("no WAL segment to truncate")
	}
	path := filepath.Join(dir, last)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	size := st.Size() - n
	if size < 0 {
		size = 0
	}
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartFewerSteps is the §6.6 acceptance test: after a cold
// session completes on a workload, a new session with a matching
// fingerprint must be seeded from the repository, reach the completed
// session's best runtime, and use measurably fewer suggest/observe steps.
func TestWarmStartFewerSteps(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2, Store: store.NewMem()})

	// The cold session opts into the §6.6 protocol too: the repository is
	// empty so it stays cold, but its fingerprinting run of the default
	// configuration makes it matchable once harvested.
	cold, err := m.Create(Spec{Backend: "bo", Workload: "PageRank", Mode: ModeAuto, Seed: 1, MaxIterations: 8, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	coldFinal := waitState(t, m, cold.ID, StateDone)
	if coldFinal.WarmStarted {
		t.Fatalf("cold session claims a warm start: %+v", coldFinal)
	}
	if coldFinal.Best == nil {
		t.Fatal("cold session found no best")
	}
	mt := m.Metrics()
	if mt.RepoEntries != 1 {
		t.Fatalf("completed session not harvested: %d repo entries", mt.RepoEntries)
	}

	warm, err := m.Create(Spec{Backend: "bo", Workload: "PageRank", Mode: ModeAuto, Seed: 2, MaxIterations: 8, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	warmFinal := waitState(t, m, warm.ID, StateDone)
	if !warmFinal.WarmStarted {
		t.Fatalf("matching session was not warm-started: %+v", warmFinal)
	}
	if warmFinal.WarmSource != "PageRank" {
		t.Fatalf("warm source = %q, want PageRank", warmFinal.WarmSource)
	}
	if warmFinal.WarmDistance < 0 || warmFinal.WarmDistance > 0.25 {
		t.Fatalf("warm distance = %v, want within the 0.25 threshold", warmFinal.WarmDistance)
	}
	if warmFinal.Evals >= coldFinal.Evals {
		t.Fatalf("warm start took %d evals, cold took %d — no savings", warmFinal.Evals, coldFinal.Evals)
	}
	if warmFinal.Best == nil {
		t.Fatal("warm session found no best")
	}
	// The warm session confirms the transferred optimum, so its best
	// runtime matches the cold session's up to simulator noise.
	if warmFinal.Best.RuntimeSec > coldFinal.Best.RuntimeSec*1.10 {
		t.Fatalf("warm best %.1fs does not reach cold best %.1fs",
			warmFinal.Best.RuntimeSec, coldFinal.Best.RuntimeSec)
	}
	if m.Metrics().WarmStarts != 1 {
		t.Fatalf("warm-start counter = %d, want 1", m.Metrics().WarmStarts)
	}

	// A non-matching cluster must not be warm-started (§6.6: models do not
	// transfer across hardware).
	other, err := m.Create(Spec{Backend: "bo", Workload: "PageRank", Cluster: "B", Mode: ModeAuto, Seed: 3, MaxIterations: 2, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	otherFinal := waitState(t, m, other.ID, StateDone)
	if otherFinal.WarmStarted {
		t.Fatalf("cluster-B session warm-started from a cluster-A model: %+v", otherFinal)
	}
}

// TestWarmStartSurvivesRestart: the repository is part of the durable
// state — a completed session's model warm-starts sessions created after a
// restart.
func TestWarmStartSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Open(Options{Workers: 1, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := m1.Create(Spec{Backend: "bo", Workload: "K-means", Mode: ModeAuto, Seed: 1, MaxIterations: 4, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, cold.ID, StateDone)
	crash(m1)

	fs2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Options{Workers: 1, Store: fs2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if n := m2.Metrics().RepoEntries; n != 1 {
		t.Fatalf("repository lost across restart: %d entries", n)
	}
	warm, err := m2.Create(Spec{Backend: "gbo", Workload: "K-means", Mode: ModeAuto, Seed: 2, MaxIterations: 4, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	warmFinal := waitState(t, m2, warm.ID, StateDone)
	if !warmFinal.WarmStarted {
		t.Fatalf("post-restart session not warm-started: %+v", warmFinal)
	}
}

// TestRestoreAfterCompaction forces snapshots mid-run and verifies restore
// stitches snapshot + log correctly.
func TestRestoreAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Open(Options{Workers: 1, Store: fs, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}

	st, err := m1.Create(Spec{Backend: "bo", Workload: "WordCount", Seed: 8, MaxIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5; step++ {
		cfg, done, err := m1.Suggest(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if _, err := m1.Observe(st.ID, Observation{Config: cfg, RuntimeSec: 200 - float64(step)}); err != nil {
			t.Fatal(err)
		}
	}
	// The snapshotter runs asynchronously; wait for at least one compaction.
	deadline := time.Now().Add(30 * time.Second)
	for fs.Metrics().Snapshots == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no compaction happened")
		}
		time.Sleep(2 * time.Millisecond)
	}
	hist, err := m1.History(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	crash(m1)

	fs2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Options{Workers: 1, Store: fs2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got, err := m2.History(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !historiesEqual(got, hist) {
		t.Fatalf("post-compaction restore differs:\n got %+v\nwant %+v", got, hist)
	}
}

// TestEvictionTombstoneSurvivesRestart: a TTL-evicted session must not be
// resurrected by replay, and the eviction counter carries over.
func TestEvictionTombstoneSurvivesRestart(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	dir := t.TempDir()
	fs, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Open(Options{Workers: 1, TTL: time.Minute, Now: clock, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Create(Spec{Backend: "bo", Workload: "SVM"})
	if err != nil {
		t.Fatal(err)
	}
	keep, err := m1.Create(Spec{Backend: "bo", Workload: "SVM", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	// Touch the keeper so only the first session is idle.
	if _, _, err := m1.Suggest(keep.ID); err != nil {
		t.Fatal(err)
	}
	if n := m1.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1", n)
	}
	// Take a snapshot too: the tombstone must survive compaction.
	if err := m1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	crash(m1)

	fs2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Options{Workers: 1, TTL: time.Minute, Now: clock, Store: fs2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, err := m2.Get(st.ID); err != ErrNotFound {
		t.Fatalf("evicted session resurrected: err=%v", err)
	}
	if _, err := m2.Get(keep.ID); err != nil {
		t.Fatalf("live session lost: %v", err)
	}
	if n := m2.Metrics().Evictions; n != 1 {
		t.Fatalf("eviction counter lost: %d", n)
	}
}

// TestCleanCloseRestoresFromSnapshot: Close takes a final snapshot, so the
// next Open restores sessions without any log to replay.
func TestCleanCloseRestoresFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Open(Options{Workers: 1, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Create(Spec{Backend: "bo", Workload: "K-means", Seed: 12, MaxIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2; step++ {
		cfg, _, err := m1.Suggest(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m1.Observe(st.ID, Observation{Config: cfg, RuntimeSec: 150 + float64(step)}); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := m1.History(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	m1.Close() // snapshots and closes the store

	fs2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, events, err := fs2.Load(); err != nil {
		t.Fatal(err)
	} else if len(events) != 0 {
		t.Fatalf("clean close left %d unreplayed events", len(events))
	}
	m2, err := Open(Options{Workers: 1, Store: fs2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got, err := m2.History(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !historiesEqual(got, hist) {
		t.Fatalf("snapshot-only restore differs:\n got %+v\nwant %+v", got, hist)
	}
	if cur, err := m2.Get(st.ID); err != nil || cur.State != StateActive {
		t.Fatalf("restored session not active: %+v err=%v", cur, err)
	}
}

// BenchmarkStoreReplay measures crash recovery: loading the log and
// rebuilding every session's tuner from its journaled history.
func BenchmarkStoreReplay(b *testing.B) {
	dir := b.TempDir()
	fs, err := store.OpenFile(dir)
	if err != nil {
		b.Fatal(err)
	}
	m, err := Open(Options{Workers: 1, Store: fs, SnapshotEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	const sessions, observes = 16, 6
	for i := 0; i < sessions; i++ {
		st, err := m.Create(Spec{Backend: "bo", Workload: "K-means", Seed: uint64(i), MaxIterations: 8})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < observes; j++ {
			cfg, done, err := m.Suggest(st.ID)
			if err != nil {
				b.Fatal(err)
			}
			if done {
				break
			}
			if _, err := m.Observe(st.ID, Observation{Config: cfg, RuntimeSec: 100 + float64(i*7+j)}); err != nil {
				b.Fatal(err)
			}
		}
	}
	crash(m)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs2, err := store.OpenFile(dir)
		if err != nil {
			b.Fatal(err)
		}
		m2 := newManager(Options{Workers: 1, Store: fs2})
		snap, events, err := fs2.Load()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m2.restore(snap, events); err != nil {
			b.Fatal(err)
		}
		if m2.Len() != sessions {
			b.Fatalf("restored %d sessions, want %d", m2.Len(), sessions)
		}
		if err := fs2.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestObservationCounterSurvivesSnapshotRestore: the lifetime observation
// counter is carried by the snapshot, not recounted from live histories.
func TestObservationCounterSurvivesSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Open(Options{Workers: 1, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Create(Spec{Backend: "bo", Workload: "SVM", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		cfg, _, err := m1.Suggest(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m1.Observe(st.ID, Observation{Config: cfg, RuntimeSec: 90 + float64(step)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// One more observation after the snapshot: replay stitches log on top.
	cfg, _, err := m1.Suggest(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Observe(st.ID, Observation{Config: cfg, RuntimeSec: 89}); err != nil {
		t.Fatal(err)
	}
	crash(m1)

	fs2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Options{Workers: 1, Store: fs2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if n := m2.Metrics().Observations; n != 4 {
		t.Fatalf("observation counter after snapshot+log restore = %d, want 4", n)
	}
}

// TestTombstonePruning: compaction drops tombstones whose close event it
// folded in (the log can no longer resurrect them) and keeps the rest, so
// the tombstone set does not grow with lifetime session count.
func TestTombstonePruning(t *testing.T) {
	fs := store.NewMem()
	m, err := Open(Options{Workers: 1, Store: fs, SnapshotEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var closed []string
	for i := 0; i < 6; i++ {
		st, err := m.Create(Spec{Backend: "bo", Workload: "SVM", Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CloseSession(st.ID); err != nil {
			t.Fatal(err)
		}
		closed = append(closed, st.ID)
	}
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sh := range m.shards {
		sh.mu.RLock()
		total += len(sh.closed)
		sh.mu.RUnlock()
	}
	if total != 0 {
		t.Fatalf("%d tombstones survived compaction, want 0 (all close events folded in)", total)
	}
	// Pruned tombstones lose close-idempotency (ErrNotFound again), but
	// replay safety holds: the compacted log has no creates to resurrect.
	snap, events, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Closed) != 0 || len(events) != 0 {
		t.Fatalf("snapshot kept %d tombstones, log kept %d events", len(snap.Closed), len(events))
	}
	m2 := newManager(Options{Workers: 1, Store: fs})
	if _, err := m2.restore(snap, events); err != nil {
		t.Fatal(err)
	}
	for _, id := range closed {
		if _, err := m2.get(id); err != ErrNotFound {
			t.Fatalf("closed session %s resurrected after pruning", id)
		}
	}

	// Close + compact again: whether the tombstone is pruned or kept, the
	// session must stay gone after another restore.
	st, err := m.Create(Spec{Backend: "bo", Workload: "SVM", Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CloseSession(st.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snap2, events2, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	m3 := newManager(Options{Workers: 1, Store: fs})
	if _, err := m3.restore(snap2, events2); err != nil {
		t.Fatal(err)
	}
	if _, err := m3.get(st.ID); err != ErrNotFound {
		t.Fatalf("closed session %s resurrected", st.ID)
	}
}

// TestRestoredUnsolicitedDDPG: a DDPG client that only reports unsolicited
// observations (never calls suggest) folds them into the RL state; the
// restored tuner must land in the same state and produce the same next
// suggestion as the live one.
func TestRestoredUnsolicitedDDPG(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Open(Options{Workers: 1, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Create(Spec{Backend: "ddpg", Workload: "K-means", Seed: 3, MaxSteps: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Replay historical runs without ever asking for a suggestion.
	for i, o := range []Observation{
		measure(t, "", "K-means", Observation{Config: conf.Default()}, 21),
		measure(t, "", "K-means", Observation{Config: conf.DefaultShuffle()}, 22),
	} {
		if _, err := m1.Observe(st.ID, o); err != nil {
			t.Fatalf("unsolicited observe %d: %v", i, err)
		}
	}
	cfg1, _, err := m1.Suggest(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	crash(m1)

	fs2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Options{Workers: 1, Store: fs2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	cfg2, _, err := m2.Suggest(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cfg1 != cfg2 {
		t.Fatalf("restored ddpg suggestion differs after unsolicited-only history:\n got %+v\nwant %+v", cfg2, cfg1)
	}
}

// TestRepositoryLifecyclePersists: the model repository is bounded by
// RepoCapacity with least-recently-matched eviction, warm-start matches
// bump the hit counters, and both counters survive a snapshot + restart.
// Evicted entries stay gone even though their harvest events may outlive
// them in the log.
func TestRepositoryLifecyclePersists(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Workers: 1, RepoCapacity: 2}
	optsWithStore := opts
	optsWithStore.Store = fs
	m1, err := Open(optsWithStore)
	if err != nil {
		t.Fatal(err)
	}

	run := func(m *Manager, spec Spec) Status {
		st, err := m.Create(spec)
		if err != nil {
			t.Fatal(err)
		}
		return waitState(t, m, st.ID, StateDone)
	}
	// Entry 1: a cold PageRank model. Entry 2 warm-starts from it (one
	// repository hit). Entry 3 (K-means) overflows the capacity of 2.
	run(m1, Spec{Backend: "bo", Workload: "PageRank", Mode: ModeAuto, Seed: 1, MaxIterations: 4, WarmStart: true})
	warm := run(m1, Spec{Backend: "bo", Workload: "PageRank", Mode: ModeAuto, Seed: 2, MaxIterations: 4, WarmStart: true})
	if !warm.WarmStarted {
		t.Fatalf("second PageRank session not warm-started: %+v", warm)
	}
	// The matched entry carries its hit while both entries are live.
	var hits uint64
	for _, e := range m1.RepositoryReport().Entries {
		hits += e.Hits
	}
	if hits != 1 {
		t.Fatalf("entry hit bookkeeping: %d total hits, want 1", hits)
	}
	run(m1, Spec{Backend: "bo", Workload: "K-means", Mode: ModeAuto, Seed: 3, MaxIterations: 4})

	mt := m1.Metrics()
	if mt.RepoEntries != 2 || mt.RepoCapacity != 2 {
		t.Fatalf("repository not capped: %+v", mt)
	}
	if mt.RepoHits != 1 || mt.RepoEvictions != 1 {
		t.Fatalf("lifecycle counters: hits=%d evictions=%d, want 1/1", mt.RepoHits, mt.RepoEvictions)
	}
	rep := m1.RepositoryReport()
	if len(rep.Entries) != 2 || rep.Hits != 1 || rep.Evictions != 1 || rep.Capacity != 2 {
		t.Fatalf("repository report: %+v", rep)
	}
	for _, e := range rep.Entries {
		if len(e.Fingerprint) == 0 || e.Points == 0 || e.AddedAt.IsZero() {
			t.Fatalf("report entry incomplete: %+v", e)
		}
	}

	if err := m1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	crash(m1)

	fs2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	optsWithStore2 := opts
	optsWithStore2.Store = fs2
	m2, err := Open(optsWithStore2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	mt2 := m2.Metrics()
	if mt2.RepoEntries != 2 || mt2.RepoHits != 1 || mt2.RepoEvictions != 1 {
		t.Fatalf("lifecycle state lost across restart: %+v", mt2)
	}
}
