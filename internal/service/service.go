// Package service turns the tuners into a long-lived tuning-as-a-service
// subsystem: a concurrent session Manager multiplexes many simultaneous
// tuning sessions — each one an incremental tune.Tuner driven step by step —
// across remote clients reporting real measurements and a worker pool
// running simulator-backed sessions for batch auto-tuning. Package
// service/http (http.go) exposes the Manager over a JSON API; cmd/relm-serve
// is the server binary.
//
// The session life cycle:
//
//	create (remote) → suggest → observe → … → done → close/evict
//	create (auto)   → queued  → running (worker pool) → done
//
// All Manager and Session methods are safe for concurrent use.
package service

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"relm/internal/bo"
	"relm/internal/conf"
	"relm/internal/core"
	"relm/internal/ddpg"
	"relm/internal/gbo"
	"relm/internal/profile"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/tune"
)

// Session states.
const (
	StateActive  = "active"  // remote session awaiting suggest/observe calls
	StateQueued  = "queued"  // auto session waiting for a worker
	StateRunning = "running" // auto session being driven by a worker
	StateDone    = "done"    // stopping rule fired
	StateFailed  = "failed"  // pipeline error (e.g. RelM infeasibility)
	StateClosed  = "closed"  // closed by the client or evicted by TTL
)

// Session modes.
const (
	ModeRemote = "remote" // the client measures configurations and reports back
	ModeAuto   = "auto"   // the worker pool drives the session on the simulator
)

// Errors surfaced by the Manager.
var (
	ErrNotFound    = errors.New("service: session not found")
	ErrClosed      = errors.New("service: session closed")
	ErrBusy        = errors.New("service: session queue full")
	ErrTooMany     = errors.New("service: session limit reached")
	ErrManagerDown = errors.New("service: manager closed")
)

// Options configures a Manager. Zero values select sensible defaults.
type Options struct {
	// TTL evicts sessions idle for longer than this (default 30 minutes).
	TTL time.Duration
	// Workers is the size of the auto-tuning worker pool (default 4).
	Workers int
	// MaxSessions bounds the number of live sessions (default 4096).
	MaxSessions int
	// MaxAutoEvals caps the experiments one auto session may run
	// (default 200) as a guard against non-terminating tuners.
	MaxAutoEvals int
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (o *Options) fill() {
	if o.TTL == 0 {
		o.TTL = 30 * time.Minute
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.MaxSessions == 0 {
		o.MaxSessions = 4096
	}
	if o.MaxAutoEvals == 0 {
		o.MaxAutoEvals = 200
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// Spec describes one tuning session to create.
type Spec struct {
	// Backend selects the policy: "relm" (default), "bo", "gbo", or "ddpg".
	Backend string
	// Workload is a Table 2 / TPC-H workload name (default "PageRank").
	Workload string
	// Cluster is "A" (default) or "B".
	Cluster string
	// Mode is "remote" (default) or "auto".
	Mode string
	// Seed drives the policy's stochastic choices and, in auto mode, the
	// simulator.
	Seed uint64
	// MaxIterations caps BO/GBO adaptive samples (0 = paper default).
	MaxIterations int
	// MaxSteps caps DDPG steps (0 = paper default).
	MaxSteps int
}

// Observation is one measured experiment reported to a session.
type Observation struct {
	Config     conf.Config
	RuntimeSec float64
	Aborted    bool
	// Stats optionally carries the client's Table 6 profile statistics;
	// RelM requires them, GBO and DDPG use them when present.
	Stats *profile.Stats
}

// BestReport is the incumbent of a session.
type BestReport struct {
	Config     conf.Config
	RuntimeSec float64
	Objective  float64
}

// Status is a point-in-time snapshot of one session.
type Status struct {
	ID       string
	Backend  string
	Workload string
	Cluster  string
	Mode     string
	State    string
	Evals    int
	Done     bool
	Best     *BestReport
	Err      string
	Created  time.Time
	LastUsed time.Time
}

// HistoryEntry is one recorded experiment of a session.
type HistoryEntry struct {
	Config     conf.Config
	RuntimeSec float64
	Objective  float64
	Aborted    bool
}

// Session is one live tuning session. All fields behind mu.
type Session struct {
	mu sync.Mutex

	id    string
	spec  Spec
	tuner tune.Tuner
	space tune.Space
	ev    *tune.Evaluator // simulator harness (auto mode)

	history  []HistoryEntry
	obj      tune.Objectives // the paper's abort-penalty objective (§6.1)
	state    string
	err      error
	created  time.Time
	lastUsed time.Time
}

// Manager multiplexes concurrent tuning sessions.
type Manager struct {
	opts Options

	mu       sync.RWMutex
	sessions map[string]*Session
	nextID   uint64
	closed   bool

	jobs chan *Session
	quit chan struct{}
	wg   sync.WaitGroup
}

// NewManager starts a manager with its worker pool and TTL janitor.
func NewManager(opts Options) *Manager {
	opts.fill()
	m := &Manager{
		opts:     opts,
		sessions: make(map[string]*Session),
		jobs:     make(chan *Session, 256),
		quit:     make(chan struct{}),
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.janitor()
	return m
}

// Close stops the worker pool and janitor and closes every session.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()

	close(m.quit)
	for _, s := range sessions {
		s.mu.Lock()
		s.state = StateClosed
		s.mu.Unlock()
	}
	m.wg.Wait()
}

// resolve maps a Spec's symbolic names onto concrete cluster, workload, and
// tuner instances.
func resolve(spec Spec) (cluster.Spec, workload.Spec, error) {
	var cl cluster.Spec
	switch strings.ToUpper(spec.Cluster) {
	case "", "A":
		cl = cluster.A()
	case "B":
		cl = cluster.B()
	default:
		return cluster.Spec{}, workload.Spec{}, fmt.Errorf("service: unknown cluster %q (want A or B)", spec.Cluster)
	}
	name := spec.Workload
	if name == "" {
		name = "PageRank"
	}
	wl, ok := workload.ByName(name)
	if !ok {
		return cluster.Spec{}, workload.Spec{}, fmt.Errorf("service: unknown workload %q", name)
	}
	return cl, wl, nil
}

// newTuner builds the incremental tuner for a session spec.
func newTuner(spec Spec, cl cluster.Spec, sp tune.Space) (tune.Tuner, error) {
	boOpts := bo.Options{Seed: spec.Seed, MaxIterations: spec.MaxIterations}
	switch strings.ToLower(spec.Backend) {
	case "", "relm":
		return core.New(cl).Incremental(sp), nil
	case "bo":
		return bo.NewTuner(sp, boOpts, nil, nil), nil
	case "gbo":
		return gbo.NewTuner(cl, sp, boOpts), nil
	case "ddpg":
		return ddpg.NewTuner(cl, sp, nil, ddpg.TuneOptions{MaxSteps: spec.MaxSteps, Seed: spec.Seed}), nil
	default:
		return nil, fmt.Errorf("service: unknown backend %q (want relm, bo, gbo, or ddpg)", spec.Backend)
	}
}

// Create opens a new session and, in auto mode, enqueues it on the worker
// pool.
func (m *Manager) Create(spec Spec) (Status, error) {
	cl, wl, err := resolve(spec)
	if err != nil {
		return Status{}, err
	}
	mode := spec.Mode
	if mode == "" {
		mode = ModeRemote
	}
	if mode != ModeRemote && mode != ModeAuto {
		return Status{}, fmt.Errorf("service: unknown mode %q (want remote or auto)", spec.Mode)
	}
	spec.Mode = mode
	sp := tune.NewSpace(cl, wl)
	t, err := newTuner(spec, cl, sp)
	if err != nil {
		return Status{}, err
	}

	now := m.opts.Now()
	s := &Session{
		spec:     spec,
		tuner:    t,
		space:    sp,
		state:    StateActive,
		created:  now,
		lastUsed: now,
	}
	if mode == ModeAuto {
		s.ev = tune.NewEvaluator(cl, wl, spec.Seed)
		s.state = StateQueued
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Status{}, ErrManagerDown
	}
	if len(m.sessions) >= m.opts.MaxSessions {
		m.mu.Unlock()
		return Status{}, ErrTooMany
	}
	m.nextID++
	s.id = fmt.Sprintf("sess-%d", m.nextID)
	m.sessions[s.id] = s
	m.mu.Unlock()

	if mode == ModeAuto {
		select {
		case m.jobs <- s:
		default:
			m.mu.Lock()
			delete(m.sessions, s.id)
			m.mu.Unlock()
			return Status{}, ErrBusy
		}
	}
	return m.statusOf(s), nil
}

// get looks a live session up.
func (m *Manager) get(id string) (*Session, error) {
	m.mu.RLock()
	s, ok := m.sessions[id]
	m.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return s, nil
}

// Suggest returns the session's next configuration to measure and whether
// the session's stopping rule has fired.
func (m *Manager) Suggest(id string) (conf.Config, bool, error) {
	s, err := m.get(id)
	if err != nil {
		return conf.Config{}, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == StateClosed {
		return conf.Config{}, false, ErrClosed
	}
	s.lastUsed = m.opts.Now()
	return s.tuner.Suggest(), s.tuner.Done(), nil
}

// Observe reports one measured experiment to the session and returns its
// refreshed status.
func (m *Manager) Observe(id string, obs Observation) (Status, error) {
	s, err := m.get(id)
	if err != nil {
		return Status{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == StateClosed {
		return Status{}, ErrClosed
	}
	if err := obs.Config.Validate(); err != nil {
		return Status{}, fmt.Errorf("service: invalid observed configuration: %w", err)
	}
	if !(obs.RuntimeSec > 0) || math.IsInf(obs.RuntimeSec, 0) {
		// Zero, negative, NaN, or infinite runtimes would corrupt the
		// incumbent, the surrogate, and the stopping rule.
		return Status{}, fmt.Errorf("service: runtime_sec must be a positive finite number, got %v", obs.RuntimeSec)
	}

	smp := tune.Sample{
		Config:     obs.Config,
		X:          s.space.Encode(obs.Config),
		RuntimeSec: obs.RuntimeSec,
		Objective:  s.obj.Assign(obs.RuntimeSec, obs.Aborted),
		Stats:      obs.Stats,
	}
	smp.Result.RuntimeSec = obs.RuntimeSec
	smp.Result.Aborted = obs.Aborted

	s.tuner.Observe(smp)
	s.record(smp)
	s.lastUsed = m.opts.Now()
	s.refreshStateLocked()
	return m.statusLocked(s), nil
}

// Best returns the session's incumbent.
func (m *Manager) Best(id string) (BestReport, bool, error) {
	s, err := m.get(id)
	if err != nil {
		return BestReport{}, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	best, ok := s.tuner.Best()
	if !ok {
		return BestReport{}, false, nil
	}
	return BestReport{Config: best.Config, RuntimeSec: best.RuntimeSec, Objective: best.Objective}, true, nil
}

// Get returns a session's status snapshot.
func (m *Manager) Get(id string) (Status, error) {
	s, err := m.get(id)
	if err != nil {
		return Status{}, err
	}
	return m.statusOf(s), nil
}

// History returns the session's recorded experiments.
func (m *Manager) History(id string) ([]HistoryEntry, error) {
	s, err := m.get(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]HistoryEntry(nil), s.history...), nil
}

// CloseSession closes a session and removes it from the store. A worker
// currently driving it notices the state flip and abandons it.
func (m *Manager) CloseSession(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	s.mu.Lock()
	s.state = StateClosed
	s.mu.Unlock()
	return nil
}

// List returns a status snapshot of every live session.
func (m *Manager) List() []Status {
	m.mu.RLock()
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.RUnlock()
	out := make([]Status, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, m.statusOf(s))
	}
	return out
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.sessions)
}

// Sweep evicts sessions idle past the TTL and returns how many it removed.
// The janitor calls it periodically; tests call it directly.
func (m *Manager) Sweep() int {
	now := m.opts.Now()
	m.mu.Lock()
	var evict []*Session
	for id, s := range m.sessions {
		s.mu.Lock()
		idle := now.Sub(s.lastUsed) > m.opts.TTL
		s.mu.Unlock()
		if idle {
			evict = append(evict, s)
			delete(m.sessions, id)
		}
	}
	m.mu.Unlock()
	for _, s := range evict {
		s.mu.Lock()
		s.state = StateClosed
		s.mu.Unlock()
	}
	return len(evict)
}

// --- internals -------------------------------------------------------------

func (s *Session) record(smp tune.Sample) {
	s.history = append(s.history, HistoryEntry{
		Config:     smp.Config,
		RuntimeSec: smp.RuntimeSec,
		Objective:  smp.Objective,
		Aborted:    smp.Result.Aborted,
	})
}

// refreshStateLocked moves a non-terminal session to done/failed once its
// tuner stops. Callers hold s.mu.
func (s *Session) refreshStateLocked() {
	if s.state == StateClosed || s.state == StateFailed {
		return
	}
	if !s.tuner.Done() {
		return
	}
	if inc, ok := s.tuner.(*core.Incremental); ok && inc.Err() != nil {
		s.state, s.err = StateFailed, inc.Err()
		return
	}
	s.state = StateDone
}

func (m *Manager) statusOf(s *Session) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.statusLocked(s)
}

func (m *Manager) statusLocked(s *Session) Status {
	st := Status{
		ID:       s.id,
		Backend:  s.spec.Backend,
		Workload: s.spec.Workload,
		Cluster:  s.spec.Cluster,
		Mode:     s.spec.Mode,
		State:    s.state,
		Evals:    len(s.history),
		Done:     s.tuner.Done(),
		Created:  s.created,
		LastUsed: s.lastUsed,
	}
	if st.Backend == "" {
		st.Backend = "relm"
	}
	if st.Workload == "" {
		st.Workload = "PageRank"
	}
	if st.Cluster == "" {
		st.Cluster = "A"
	}
	if best, ok := s.tuner.Best(); ok {
		st.Best = &BestReport{Config: best.Config, RuntimeSec: best.RuntimeSec, Objective: best.Objective}
	}
	if s.err != nil {
		st.Err = s.err.Error()
	}
	return st
}

// worker drains the auto-tuning queue, driving each simulator-backed
// session's suggest/observe loop to completion.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.quit:
			return
		case s := <-m.jobs:
			m.drive(s)
		}
	}
}

// drive runs one auto session. The simulation itself runs outside the
// session lock so status queries stay responsive; the shared evaluator is
// itself concurrency-safe.
func (m *Manager) drive(s *Session) {
	s.mu.Lock()
	if s.state == StateQueued {
		s.state = StateRunning
	}
	s.mu.Unlock()

	for {
		select {
		case <-m.quit:
			return
		default:
		}

		s.mu.Lock()
		if s.state == StateClosed {
			s.mu.Unlock()
			return
		}
		if s.tuner.Done() || len(s.history) >= m.opts.MaxAutoEvals {
			s.refreshStateLocked()
			if s.state == StateRunning { // eval cap hit before the tuner stopped
				s.state = StateDone
			}
			s.mu.Unlock()
			return
		}
		cfg := s.tuner.Suggest()
		ev := s.ev
		s.mu.Unlock()

		smp := ev.Eval(cfg)

		s.mu.Lock()
		if s.state == StateClosed {
			s.mu.Unlock()
			return
		}
		s.tuner.Observe(smp)
		s.record(smp)
		s.lastUsed = m.opts.Now()
		s.mu.Unlock()
	}
}

// janitor periodically evicts idle sessions.
func (m *Manager) janitor() {
	defer m.wg.Done()
	period := m.opts.TTL / 4
	if period < time.Second {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-m.quit:
			return
		case <-ticker.C:
			m.Sweep()
		}
	}
}
