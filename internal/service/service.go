// Package service turns the tuners into a long-lived tuning-as-a-service
// subsystem: a concurrent session Manager multiplexes many simultaneous
// tuning sessions — each one an incremental tune.Tuner driven step by step —
// across remote clients reporting real measurements and a worker pool
// running simulator-backed sessions for batch auto-tuning. Package
// service/http (http.go) exposes the Manager over a JSON API; cmd/relm-serve
// is the server binary.
//
// The session life cycle:
//
//	create (remote) → suggest → observe → … → done → close/evict
//	create (auto)   → queued  → running (worker pool) → done
//
// Two durable layers ride on an optional store.Store (persist.go):
//
//   - Session persistence: every state transition is journaled to a
//     write-ahead log with periodic compacted snapshots, and Open replays
//     the log so a restarted server resumes every open session with full
//     history and a tuner rebuilt to its exact replayed state.
//   - Cross-session warm starts: completed sessions feed a shared
//     bo.Repository keyed by workload fingerprint (§6.6 model re-use), and
//     Create consults it to warm-start new BO/GBO sessions whose
//     fingerprint matches within a distance threshold.
//
// All Manager and Session methods are safe for concurrent use. The session
// map is striped across lock shards, so sessions on different shards never
// contend.
package service

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"relm/internal/bo"
	"relm/internal/conf"
	"relm/internal/core"
	"relm/internal/ddpg"
	"relm/internal/fault"
	"relm/internal/gbo"
	"relm/internal/gp"
	"relm/internal/obs"
	"relm/internal/profile"
	"relm/internal/replica"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
	"relm/internal/store"
	"relm/internal/tune"
)

// Session states.
const (
	StateActive  = "active"  // remote session awaiting suggest/observe calls
	StateQueued  = "queued"  // auto session waiting for a worker
	StateRunning = "running" // auto session being driven by a worker
	StateDone    = "done"    // stopping rule fired
	StateFailed  = "failed"  // pipeline error (e.g. RelM infeasibility)
	StateClosed  = "closed"  // closed by the client or evicted by TTL
)

// Session modes.
const (
	ModeRemote = "remote" // the client measures configurations and reports back
	ModeAuto   = "auto"   // the worker pool drives the session on the simulator
)

// Errors surfaced by the Manager.
var (
	ErrNotFound    = errors.New("service: session not found")
	ErrClosed      = errors.New("service: session closed")
	ErrBusy        = errors.New("service: session queue full")
	ErrTooMany     = errors.New("service: session limit reached")
	ErrManagerDown = errors.New("service: manager closed")
	ErrExists      = errors.New("service: session ID already in use")
	ErrDraining    = errors.New("service: node draining, not accepting sessions")
	// ErrJournal wraps a WAL append failure on the durability path: the
	// operation was refused BEFORE mutating tuner state, so the client can
	// retry it (here after the fault clears, or on another node via the
	// router). HTTP maps it to 503 + Retry-After.
	ErrJournal = errors.New("service: journal append failed")
)

// fpObserve is the service-layer failpoint on the observe path, evaluated
// at the top of Manager.Observe — upstream of validation, journaling, and
// tuner mutation, so an injected failure is always cleanly retriable.
var fpObserve = fault.Register("service.observe")

// Options configures a Manager. Zero values select sensible defaults.
type Options struct {
	// TTL evicts sessions idle for longer than this (default 30 minutes).
	TTL time.Duration
	// Workers is the size of the auto-tuning worker pool (default 4).
	Workers int
	// MaxSessions bounds the number of live sessions (default 4096).
	MaxSessions int
	// MaxAutoEvals caps the experiments one auto session may run
	// (default 200) as a guard against non-terminating tuners.
	MaxAutoEvals int
	// Shards is the number of lock stripes of the session map (default 16).
	Shards int
	// Store, when non-nil, journals every session event to a write-ahead
	// log and persists the shared model repository. Open replays it on
	// startup; the Manager takes ownership and closes it on Close.
	Store store.Store
	// SnapshotEvery compacts the log into a snapshot once it holds this
	// many events (default 1024). Ignored without a Store.
	SnapshotEvery int
	// WarmMaxDistance is the default fingerprint-distance threshold for
	// warm-start matching (default 0.25; per-session Spec overrides it).
	// Re-profiles of one workload land within ~0.05 of each other;
	// different workload classes differ by 0.5 or more.
	WarmMaxDistance float64
	// RepoCapacity bounds the shared model repository (default 1024,
	// negative = unbounded): past it, the least-recently-matched entries
	// are evicted so fingerprint matching stays fast as the repository
	// grows. Harvested session IDs stay tombstoned, so an evicted entry is
	// never resurrected by log replay.
	RepoCapacity int
	// SurrogateBudget is the default active-set cap applied to BO/GBO
	// sessions whose Spec.Surrogate.Budget is 0: positive selects the
	// budgeted sparse GP compressing to at most this many points, 0 (the
	// default) keeps the exact incremental GP. Long-running auto sessions
	// with thousands of observations should set this (256 is the paper's
	// working point) so appends and predictions stay O(budget²).
	SurrogateBudget int
	// NodeID names this manager in a multi-node deployment. When set, it
	// prefixes generated session IDs ("<node>-sess-N", cluster-unique
	// without coordination) and is reported by /healthz, /v1/metrics, and
	// every session status, so a router can verify it is talking to the
	// node it thinks it is. Letters, digits, '.', '_', and '-' only.
	NodeID string
	// Advertise is the URL this node wants routers and operators to reach
	// it at; purely informational, surfaced by /healthz.
	Advertise string
	// Replica, when non-nil, is this node's WAL replication state (log
	// shipping out, replica ingest in — see internal/replica). NewHandler
	// exposes its /v1/replica endpoints and Metrics folds its lag and
	// ingest counters in. The Manager does not take ownership: the caller
	// that wired the Set to the store closes it.
	Replica *replica.Set
	// Obs is the per-stage latency registry. When nil (and NoObs is
	// unset) the manager creates one, so stage histograms are on by
	// default; pass a shared registry to fold in WAL and replica stages
	// recorded outside the manager.
	Obs *obs.Registry
	// NoObs disables stage histograms and leaves Obs nil — the
	// uninstrumented baseline the benchgate overhead ratio compares
	// against.
	NoObs bool
	// SlowLog, when positive, logs any HTTP request slower than this
	// span-by-span (through SlowLogf, defaulting to log.Printf).
	SlowLog time.Duration
	// SlowLogf receives slow-request log lines (default log.Printf).
	SlowLogf func(format string, args ...any)
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (o *Options) fill() {
	if o.TTL == 0 {
		o.TTL = 30 * time.Minute
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.MaxSessions == 0 {
		o.MaxSessions = 4096
	}
	if o.MaxAutoEvals == 0 {
		o.MaxAutoEvals = 200
	}
	if o.Shards == 0 {
		o.Shards = 16
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 1024
	}
	if o.WarmMaxDistance == 0 {
		o.WarmMaxDistance = 0.25
	}
	if o.RepoCapacity == 0 {
		o.RepoCapacity = 1024
	}
	if o.Obs == nil && !o.NoObs {
		o.Obs = obs.NewRegistry()
	}
	if o.SlowLogf == nil {
		o.SlowLogf = log.Printf
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// Spec describes one tuning session to create.
type Spec struct {
	// ID optionally assigns the session's ID instead of the manager's
	// "sess-N" counter. A cluster router uses it to place sessions by
	// consistent hashing: the routing key must be known before the session
	// exists, so the router mints the ID and every node honours it.
	// Creating an ID the manager has already seen (live or tombstoned)
	// fails with ErrExists; the manager's own counter namespace
	// ("sess-N", node-prefixed when NodeID is set) is reserved and
	// rejected outright. Same character set as Options.NodeID.
	ID string
	// Backend selects the policy: "relm" (default), "bo", "gbo", or "ddpg".
	Backend string
	// Workload is a Table 2 / TPC-H workload name (default "PageRank").
	Workload string
	// Cluster is "A" (default) or "B".
	Cluster string
	// Mode is "remote" (default) or "auto".
	Mode string
	// Seed drives the policy's stochastic choices and, in auto mode, the
	// simulator.
	Seed uint64
	// MaxIterations caps BO/GBO adaptive samples (0 = paper default).
	MaxIterations int
	// MaxSteps caps DDPG steps (0 = paper default).
	MaxSteps int

	// WarmStart asks the Manager to match this session's workload
	// fingerprint against the shared model repository and, on a hit,
	// warm-start the optimizer with the matched session's observations
	// (§6.6 model re-use; BO and GBO backends only). Remote sessions
	// supply the fingerprint via Stats; auto sessions profile the default
	// configuration on the simulator as their first experiment.
	WarmStart bool
	// WarmMaxDistance overrides the Manager's fingerprint-distance
	// threshold for this session (0 = manager default).
	WarmMaxDistance float64
	// Stats is the session's workload fingerprint: the Table 6 statistics
	// of a default-configuration run, measured by the client. Used for
	// warm-start matching of remote sessions and as the harvest
	// fingerprint when the session completes.
	Stats *profile.Stats
	// DefaultRuntimeSec is the default-configuration runtime matching
	// Stats; matched prior observations are rescaled by the ratio of
	// default runtimes before seeding the optimizer.
	DefaultRuntimeSec float64

	// Prior explicitly seeds the optimizer with these points, bypassing
	// repository matching. This is the fail-over hand-off path: a session
	// re-created after its node died is seeded with the exact points the
	// lost instance held (its applied warm start, or its own history), so
	// the successor continues from the same optimizer state instead of
	// hoping for a repository match. The applied prior is journaled as a
	// warm event, exactly like a repository warm start, so the re-created
	// session restores identically from its new node's log.
	// PriorSource/PriorCluster/PriorDistance carry its provenance into the
	// session status.
	Prior         []bo.PriorPoint
	PriorSource   string
	PriorCluster  string
	PriorDistance float64

	// Surrogate configures the BO/GBO response-surface model. The zero
	// value selects the manager defaults (exact incremental GP, RBF
	// kernel, Options.SurrogateBudget).
	Surrogate SurrogateSpec
}

// SurrogateSpec configures a session's surrogate model (BO and GBO
// backends; ignored by relm and ddpg). Doubles as the `surrogate` JSON
// object on the HTTP wire.
type SurrogateSpec struct {
	// Kernel selects the kernel family: "rbf" (default) or "matern52".
	Kernel string `json:"kernel,omitempty"`
	// Budget caps the GP's active set: >0 selects the budgeted sparse GP
	// compressing to at most Budget points, 0 inherits the manager's
	// Options.SurrogateBudget, negative forces the exact GP.
	Budget int `json:"budget,omitempty"`
	// RefitEvery throttles hyperparameter re-selection to once per this
	// many observations (0 = paper default of 8).
	RefitEvery int `json:"refit_every,omitempty"`
	// RefitDrift re-selects early on per-point log-marginal-likelihood
	// drift (0 = default 0.25; negative disables).
	RefitDrift float64 `json:"refit_drift,omitempty"`
}

// SurrogateStatus is the live surrogate picture of one BO/GBO session:
// the resolved configuration plus the cumulative work counters. Doubles as
// the `surrogate` JSON object in session status responses.
type SurrogateStatus struct {
	// Kind is the resolved kernel family ("rbf" or "matern52").
	Kind string `json:"kind"`
	// Budget is the resolved active-set cap (0 = exact, unbudgeted).
	Budget int `json:"budget,omitempty"`
	// Fits counts full hyperparameter selections (grid + ARD, O(n³)).
	Fits int `json:"fits"`
	// Appends counts O(n²) incremental absorptions.
	Appends int `json:"appends"`
	// Compactions counts evict-or-reject decisions a budgeted surrogate
	// made to stay within its cap (always 0 for exact models).
	Compactions int `json:"compactions,omitempty"`
}

// Observation is one measured experiment reported to a session.
type Observation struct {
	Config     conf.Config
	RuntimeSec float64
	Aborted    bool
	// GCOverhead optionally reports the run's average fraction of task
	// time spent in GC; DDPG folds it into its state vector.
	GCOverhead float64
	// Stats optionally carries the client's Table 6 profile statistics;
	// RelM requires them, GBO and DDPG use them when present.
	Stats *profile.Stats
}

// BestReport is the incumbent of a session.
type BestReport struct {
	Config     conf.Config
	RuntimeSec float64
	Objective  float64
}

// Status is a point-in-time snapshot of one session.
type Status struct {
	ID       string
	Node     string // the serving node's identity (empty single-node)
	Backend  string
	Workload string
	Cluster  string
	Mode     string
	State    string
	Evals    int
	Done     bool
	Best     *BestReport
	Err      string
	Created  time.Time
	LastUsed time.Time

	// WarmStarted reports whether the session was seeded from the model
	// repository; WarmSource and WarmDistance identify the matched entry.
	WarmStarted  bool
	WarmSource   string
	WarmDistance float64

	// Surrogate is the session's surrogate configuration and work counters
	// (BO/GBO backends; nil otherwise).
	Surrogate *SurrogateStatus
}

// HistoryEntry is one recorded experiment of a session.
type HistoryEntry struct {
	Config     conf.Config
	RuntimeSec float64
	Objective  float64
	Aborted    bool
	// GCOverhead is the run's average fraction of task time spent in GC
	// (simulator-measured or client-reported); DDPG folds it into its
	// state vector.
	GCOverhead float64
	// Stats are the Table 6 statistics attached to or derived from the
	// observation, when available.
	Stats *profile.Stats
	// Suggested reports whether a suggestion was outstanding when the
	// observation arrived; restore replays the suggest/observe
	// interleaving from it.
	Suggested bool
}

// Session is one live tuning session. All fields behind mu.
type Session struct {
	mu sync.Mutex

	id    string
	spec  Spec
	tuner tune.Tuner
	space tune.Space
	ev    *tune.Evaluator // simulator harness (auto mode)

	history   []HistoryEntry
	obj       tune.Objectives // the paper's abort-penalty objective (§6.1)
	state     string
	err       error
	created   time.Time
	lastUsed  time.Time
	warm      *store.Warm // applied warm start, nil if none
	harvested bool        // session already fed the model repository
	suggested bool        // a suggestion is outstanding (armed, unconsumed)
}

// surrogateStatser is implemented by the bo/gbo tuners: the session
// surrogate's cumulative work counters (full hyperparameter selections,
// incremental appends, budget compactions), surfaced through Metrics and
// session status.
type surrogateStatser interface {
	SurrogateInfo() gp.SurrogateStats
}

// shard is one lock stripe of the session map. closed maps tombstoned
// session IDs to the sequence number of their journaled close event (or
// tombstoneKept while the event is in flight / absent); compaction prunes
// a tombstone once the log no longer holds events that could resurrect
// the ID.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	closed   map[string]uint64
}

// tombstoneKept marks a tombstone that must survive every compaction:
// its close event is not (yet) known to be folded into a snapshot.
const tombstoneKept = ^uint64(0)

// Manager multiplexes concurrent tuning sessions.
type Manager struct {
	opts Options

	shards   []*shard
	count    atomic.Int64  // live sessions (MaxSessions gate)
	nextID   atomic.Uint64 // session-ID counter
	closed   atomic.Bool
	draining atomic.Bool // Drain ran: Create rejects new sessions
	// life fences Create against Close: Create registers and journals a
	// session under the read lock, Close takes the write lock once after
	// flipping closed — so no create event can reach the store after Close
	// starts tearing it down (a journaled create with no tombstone would
	// resurrect a session its caller was told failed).
	life sync.RWMutex

	repoMu    sync.Mutex
	repo      *bo.Repository
	harvested map[string]struct{} // session IDs already in repo

	evictions     atomic.Int64
	observations  atomic.Int64
	warmStarts    atomic.Int64
	repoHits      atomic.Int64
	repoEvictions atomic.Int64
	sinceSnap     atomic.Int64 // events journaled since the last compaction signal
	snapMu        sync.Mutex   // serializes whole Snapshot calls
	journalErr    atomic.Pointer[string]
	replaying     bool // set during Open's replay; suppresses journaling

	// Stage histograms, resolved once at construction so the hot path
	// never takes the registry lock. All nil when Options.NoObs is set.
	obsSuggest *obs.Histogram
	obsObserve *obs.Histogram
	obsCreate  *obs.Histogram
	tracer     *obs.Tracer

	jobs   chan *Session
	quit   chan struct{}
	snapCh chan struct{}
	wg     sync.WaitGroup
}

// NewManager starts a manager with its worker pool and TTL janitor. It is
// the store-less constructor: for a persistent manager use Open, which can
// report a recovery failure — NewManager panics on one.
func NewManager(opts Options) *Manager {
	m, err := Open(opts)
	if err != nil {
		panic(fmt.Sprintf("service: NewManager: %v (use Open with a Store)", err))
	}
	return m
}

// Open starts a manager, restoring every session journaled in opts.Store:
// it loads the latest snapshot, replays the write-ahead log on top (see
// persist.go), rebuilds each open session's tuner by re-observing its
// history, and re-queues interrupted auto sessions on the worker pool. The
// Manager takes ownership of the Store and closes it on Close.
func Open(opts Options) (*Manager, error) {
	if opts.NodeID != "" && !validIdent(opts.NodeID) {
		return nil, fmt.Errorf("service: bad node ID %q (want letters, digits, '.', '_', '-')", opts.NodeID)
	}
	m := newManager(opts)
	var autos []*Session
	if m.opts.Store != nil {
		snap, events, err := m.opts.Store.Load()
		if err != nil {
			return nil, err
		}
		autos, err = m.restore(snap, events)
		if err != nil {
			return nil, err
		}
		// A log already past the threshold gets compacted as soon as the
		// snapshotter starts instead of waiting for SnapshotEvery more.
		m.sinceSnap.Store(int64(len(events)))
		if len(events) >= m.opts.SnapshotEvery {
			m.snapCh <- struct{}{}
		}
	}
	m.start(autos)
	return m, nil
}

// newManager builds the Manager shell: shards, repository, channels — no
// goroutines and no recovery. Open composes it with restore and start.
func newManager(opts Options) *Manager {
	opts.fill()
	m := &Manager{
		opts:      opts,
		shards:    make([]*shard, opts.Shards),
		repo:      &bo.Repository{},
		harvested: make(map[string]struct{}),
		quit:      make(chan struct{}),
		snapCh:    make(chan struct{}, 1),
	}
	for i := range m.shards {
		m.shards[i] = &shard{sessions: make(map[string]*Session), closed: make(map[string]uint64)}
	}
	m.obsSuggest = m.opts.Obs.Histogram("service.suggest")
	m.obsObserve = m.opts.Obs.Histogram("service.observe")
	m.obsCreate = m.opts.Obs.Histogram("service.create")
	node := m.opts.NodeID
	if node == "" {
		node = "serve"
	}
	m.tracer = obs.NewTracer(node, m.opts.SlowLog, m.opts.SlowLogf)
	return m
}

// start launches the worker pool, janitor, and snapshotter, then re-queues
// restored auto sessions.
func (m *Manager) start(autos []*Session) {
	opts := m.opts
	jobsCap := 256
	if n := len(autos) + opts.Workers; n > jobsCap {
		jobsCap = n
	}
	m.jobs = make(chan *Session, jobsCap)

	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.janitor()
	if opts.Store != nil {
		m.wg.Add(1)
		go m.snapshotter()
	}
	for _, s := range autos {
		m.jobs <- s
	}
}

// Close stops the worker pool and janitor, takes a final snapshot (so a
// later Open restores instantly, without replaying the log), closes the
// store, and closes every in-memory session.
func (m *Manager) Close() {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	// Barrier: wait out in-flight Creates so every journaled create is
	// either visible to the final snapshot or rolled back with a tombstone
	// before the store closes.
	m.life.Lock()
	m.life.Unlock() //nolint:staticcheck // empty critical section is the barrier
	close(m.quit)
	m.wg.Wait()

	// Snapshot with live states — shutdown is not session close; a
	// restarted manager resumes these sessions.
	if m.opts.Store != nil {
		_ = m.Snapshot()
		_ = m.opts.Store.Close()
	}

	for _, sh := range m.shards {
		sh.mu.Lock()
		sessions := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			sessions = append(sessions, s)
		}
		sh.mu.Unlock()
		for _, s := range sessions {
			s.mu.Lock()
			s.state = StateClosed
			s.mu.Unlock()
		}
	}
}

// shardFor maps a session ID onto its lock stripe.
func (m *Manager) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return m.shards[h.Sum32()%uint32(len(m.shards))]
}

// sessionID renders the n-th counter-assigned session ID, namespaced by the
// node identity so IDs from different nodes never collide in a cluster.
func (m *Manager) sessionID(n uint64) string {
	if m.opts.NodeID != "" {
		return fmt.Sprintf("%s-sess-%d", m.opts.NodeID, n)
	}
	return fmt.Sprintf("sess-%d", n)
}

// sessionNum parses the counter of an ID in this manager's namespace; false
// for foreign IDs (other nodes' prefixes, router-minted IDs).
func (m *Manager) sessionNum(id string) (uint64, bool) {
	if m.opts.NodeID != "" {
		rest, ok := strings.CutPrefix(id, m.opts.NodeID+"-")
		if !ok {
			return 0, false
		}
		id = rest
	}
	return sessionNum(id)
}

// validIdent reports whether s is a legal node or session identifier:
// letters, digits, '.', '_', and '-', at most 128 bytes.
func validIdent(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// resolve maps a Spec's symbolic names onto concrete cluster, workload, and
// tuner instances.
func resolve(spec Spec) (cluster.Spec, workload.Spec, error) {
	var cl cluster.Spec
	switch strings.ToUpper(spec.Cluster) {
	case "", "A":
		cl = cluster.A()
	case "B":
		cl = cluster.B()
	default:
		return cluster.Spec{}, workload.Spec{}, fmt.Errorf("service: unknown cluster %q (want A or B)", spec.Cluster)
	}
	name := spec.Workload
	if name == "" {
		name = "PageRank"
	}
	wl, ok := workload.ByName(name)
	if !ok {
		return cluster.Spec{}, workload.Spec{}, fmt.Errorf("service: unknown workload %q", name)
	}
	return cl, wl, nil
}

// resolveSurrogate validates a session's surrogate spec against the
// manager defaults and returns the bo-layer configuration: the kernel
// family normalized to "rbf"/"matern52" and the active-set budget with
// 0 meaning exact (spec 0 inherits Options.SurrogateBudget, negative
// forces exact).
func (m *Manager) resolveSurrogate(ss SurrogateSpec) (bo.SurrogateConfig, error) {
	kernel := strings.ToLower(ss.Kernel)
	switch kernel {
	case "":
		kernel = "rbf"
	case "rbf", "matern52":
	default:
		return bo.SurrogateConfig{}, fmt.Errorf("service: unknown surrogate kernel %q (want rbf or matern52)", ss.Kernel)
	}
	budget := ss.Budget
	if budget == 0 {
		budget = m.opts.SurrogateBudget
	}
	if budget < 0 {
		budget = 0
	}
	return bo.SurrogateConfig{
		Kernel:     kernel,
		Budget:     budget,
		RefitEvery: ss.RefitEvery,
		RefitDrift: ss.RefitDrift,
	}, nil
}

// newTuner builds the incremental tuner for a session spec, wiring the
// manager's surrogate/acquisition histograms into BO-family backends.
func (m *Manager) newTuner(spec Spec, cl cluster.Spec, sp tune.Space) (tune.Tuner, error) {
	sur, err := m.resolveSurrogate(spec.Surrogate)
	if err != nil {
		return nil, err
	}
	boOpts := bo.Options{
		Seed:                spec.Seed,
		MaxIterations:       spec.MaxIterations,
		Surrogate:           sur,
		SurrogateAppendHist: m.opts.Obs.Histogram("surrogate.append"),
		SurrogateRefitHist:  m.opts.Obs.Histogram("surrogate.refit"),
		AcquisitionHist:     m.opts.Obs.Histogram("acquisition"),
	}
	switch strings.ToLower(spec.Backend) {
	case "", "relm":
		return core.New(cl).Incremental(sp), nil
	case "bo":
		return bo.NewTuner(sp, boOpts, nil, nil), nil
	case "gbo":
		return gbo.NewTuner(cl, sp, boOpts), nil
	case "ddpg":
		return ddpg.NewTuner(cl, sp, nil, ddpg.TuneOptions{MaxSteps: spec.MaxSteps, Seed: spec.Seed}), nil
	default:
		return nil, fmt.Errorf("service: unknown backend %q (want relm, bo, gbo, or ddpg)", spec.Backend)
	}
}

// warmStarter is implemented by tuners that accept repository priors
// (bo.Tuner and gbo.Tuner).
type warmStarter interface {
	WarmStart([]bo.PriorPoint)
}

// applyWarm seeds a tuner with a recorded warm start; false when the
// backend does not support priors.
func applyWarm(t tune.Tuner, w *store.Warm) bool {
	ws, ok := t.(warmStarter)
	if !ok {
		return false
	}
	ws.WarmStart(w.Points)
	return true
}

// matchWarm consults the model repository for a same-cluster entry within
// the distance threshold and returns the rescaled prior, or nil on a miss.
func (m *Manager) matchWarm(clusterName string, fp profile.Stats, maxDistance, defaultSec float64) *store.Warm {
	if maxDistance <= 0 {
		maxDistance = m.opts.WarmMaxDistance
	}
	m.repoMu.Lock()
	defer m.repoMu.Unlock()
	entry, d, ok := m.repo.Match(clusterName, fp, maxDistance)
	if !ok {
		return nil
	}
	entry.Touch(m.opts.Now())
	m.repoHits.Add(1)
	return &store.Warm{
		Source:   entry.Workload,
		Cluster:  entry.ClusterName,
		Distance: d,
		Points:   entry.RescaledPoints(defaultSec),
	}
}

// Create opens a new session and, in auto mode, enqueues it on the worker
// pool.
func (m *Manager) Create(spec Spec) (Status, error) {
	var start time.Time
	if m.obsCreate != nil {
		start = time.Now()
	}
	st, err := m.create(spec)
	if !start.IsZero() {
		m.obsCreate.Record(time.Since(start))
	}
	return st, err
}

func (m *Manager) create(spec Spec) (Status, error) {
	cl, wl, err := resolve(spec)
	if err != nil {
		return Status{}, err
	}
	mode := spec.Mode
	if mode == "" {
		mode = ModeRemote
	}
	if mode != ModeRemote && mode != ModeAuto {
		return Status{}, fmt.Errorf("service: unknown mode %q (want remote or auto)", spec.Mode)
	}
	spec.Mode = mode
	sp := tune.NewSpace(cl, wl)
	t, err := m.newTuner(spec, cl, sp)
	if err != nil {
		return Status{}, err
	}

	now := m.opts.Now()
	s := &Session{
		spec:     spec,
		tuner:    t,
		space:    sp,
		state:    StateActive,
		created:  now,
		lastUsed: now,
	}
	if mode == ModeAuto {
		s.ev = tune.NewEvaluator(cl, wl, spec.Seed)
		s.state = StateQueued
	}

	// Warm start with a client-supplied fingerprint: match before the
	// session becomes visible, so its first suggestion is already the
	// transferred optimum. Auto sessions without a fingerprint profile the
	// default configuration in the worker instead (drive). An explicit
	// prior (fail-over hand-off) short-circuits the matching and seeds the
	// given points directly.
	if len(spec.Prior) > 0 {
		w := &store.Warm{
			Source:   spec.PriorSource,
			Cluster:  spec.PriorCluster,
			Distance: spec.PriorDistance,
			Points:   spec.Prior,
		}
		if applyWarm(t, w) {
			s.warm = w
			m.warmStarts.Add(1)
		}
	} else if spec.WarmStart && spec.Stats != nil {
		if w := m.matchWarm(cl.Name, *spec.Stats, spec.WarmMaxDistance, spec.DefaultRuntimeSec); w != nil {
			if applyWarm(t, w) {
				s.warm = w
				m.warmStarts.Add(1)
			}
		}
	}

	m.life.RLock()
	defer m.life.RUnlock()
	if m.closed.Load() {
		return Status{}, ErrManagerDown
	}
	if m.draining.Load() {
		return Status{}, ErrDraining
	}
	if m.count.Add(1) > int64(m.opts.MaxSessions) {
		m.count.Add(-1)
		return Status{}, ErrTooMany
	}
	if spec.ID != "" {
		// Caller-assigned ID (a router placing sessions by consistent
		// hash). Refuse IDs this manager has seen before — a duplicate
		// would either shadow a live session or resurrect a closed one.
		if !validIdent(spec.ID) {
			m.count.Add(-1)
			return Status{}, fmt.Errorf("service: bad session ID %q (want letters, digits, '.', '_', '-')", spec.ID)
		}
		s.id = spec.ID
		if num, ok := m.sessionNum(s.id); ok && s.id == m.sessionID(num) {
			// The counter namespace is reserved outright: an ID the counter
			// already issued may have had its tombstone pruned by
			// compaction, and an ID it has not issued yet would collide
			// with a concurrent counter-assigned create the moment the
			// counter catches up.
			m.count.Add(-1)
			return Status{}, fmt.Errorf("service: bad session ID %q (the counter namespace %q is reserved)", s.id, m.sessionID(0))
		}
		sh := m.shardFor(s.id)
		sh.mu.Lock()
		_, live := sh.sessions[s.id]
		_, dead := sh.closed[s.id]
		if live || dead {
			sh.mu.Unlock()
			m.count.Add(-1)
			return Status{}, fmt.Errorf("%w: %s", ErrExists, s.id)
		}
		sh.sessions[s.id] = s
		sh.mu.Unlock()
	} else {
		s.id = m.sessionID(m.nextID.Add(1))
		sh := m.shardFor(s.id)
		sh.mu.Lock()
		sh.sessions[s.id] = s
		sh.mu.Unlock()
	}

	// Journal-before-ack: a created session must survive recovery, so a
	// journal failure rolls the registration back and refuses the create
	// with a retriable error instead of acking state that would vanish.
	if _, err := m.journal(&store.Event{Type: store.EventCreate, ID: s.id, Time: now, Spec: specRecord(spec)}); err != nil {
		// Roll the registration back WITHOUT a tombstone: nothing reached
		// the log, so the ID must stay free for the client's retry.
		sh := m.shardFor(s.id)
		sh.mu.Lock()
		delete(sh.sessions, s.id)
		sh.mu.Unlock()
		m.count.Add(-1)
		return Status{}, fmt.Errorf("%w: %w", ErrJournal, err)
	}
	if s.warm != nil {
		// Best-effort: losing the warm event costs a restored session its
		// warm start, not any acked history.
		m.journal(&store.Event{Type: store.EventWarm, ID: s.id, Time: now, Warm: s.warm})
	}

	if mode == ModeAuto {
		select {
		case m.jobs <- s:
		default:
			m.removeSession(s.id)
			m.journalClose(s.id, now)
			return Status{}, ErrBusy
		}
	}
	return m.statusOf(s), nil
}

// removeSession drops a session from its shard, leaving a tombstone.
func (m *Manager) removeSession(id string) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	if _, ok := sh.sessions[id]; ok {
		delete(sh.sessions, id)
		sh.closed[id] = tombstoneKept
		m.count.Add(-1)
	}
	sh.mu.Unlock()
}

// get looks a live session up.
func (m *Manager) get(id string) (*Session, error) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return s, nil
}

// Suggest returns the session's next configuration to measure and whether
// the session's stopping rule has fired.
func (m *Manager) Suggest(id string) (conf.Config, bool, error) {
	var start time.Time
	if m.obsSuggest != nil {
		start = time.Now()
	}
	s, err := m.get(id)
	if err != nil {
		return conf.Config{}, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == StateClosed {
		return conf.Config{}, false, ErrClosed
	}
	s.lastUsed = m.opts.Now()
	m.journal(&store.Event{Type: store.EventSuggest, ID: s.id, Time: s.lastUsed})
	cfg := s.tuner.Suggest()
	s.suggested = true
	if !start.IsZero() {
		m.obsSuggest.Record(time.Since(start))
	}
	return cfg, s.tuner.Done(), nil
}

// Observe reports one measured experiment to the session and returns its
// refreshed status.
func (m *Manager) Observe(id string, obs Observation) (Status, error) {
	var start time.Time
	if m.obsObserve != nil {
		start = time.Now()
	}
	s, err := m.get(id)
	if err != nil {
		return Status{}, err
	}
	if fp := fpObserve.Eval(); fp != nil {
		switch fp.Action {
		case fault.Latency, fault.Stall:
			fp.Sleep()
		default:
			// Nothing has been journaled or mutated: the injected failure
			// is retriable by construction.
			return Status{}, fmt.Errorf("service: observe: %w", fp.Err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == StateClosed {
		return Status{}, ErrClosed
	}
	if err := obs.Config.Validate(); err != nil {
		return Status{}, fmt.Errorf("service: invalid observed configuration: %w", err)
	}
	if !(obs.RuntimeSec > 0) || math.IsInf(obs.RuntimeSec, 0) {
		// Zero, negative, NaN, or infinite runtimes would corrupt the
		// incumbent, the surrogate, and the stopping rule.
		return Status{}, fmt.Errorf("service: runtime_sec must be a positive finite number, got %v", obs.RuntimeSec)
	}

	smp := tune.Sample{
		Config:     obs.Config,
		X:          s.space.Encode(obs.Config),
		RuntimeSec: obs.RuntimeSec,
		Objective:  s.obj.Assign(obs.RuntimeSec, obs.Aborted),
		Stats:      obs.Stats,
	}
	smp.Result.RuntimeSec = obs.RuntimeSec
	smp.Result.Aborted = obs.Aborted
	smp.Result.GCOverhead = obs.GCOverhead

	if err := m.observeLocked(s, smp); err != nil {
		return Status{}, err
	}
	s.lastUsed = m.opts.Now()
	m.refreshStateLocked(s)
	st := m.statusLocked(s)
	if !start.IsZero() {
		m.obsObserve.Record(time.Since(start))
	}
	return st, nil
}

// Best returns the session's incumbent.
func (m *Manager) Best(id string) (BestReport, bool, error) {
	s, err := m.get(id)
	if err != nil {
		return BestReport{}, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	best, ok := s.tuner.Best()
	if !ok {
		return BestReport{}, false, nil
	}
	return BestReport{Config: best.Config, RuntimeSec: best.RuntimeSec, Objective: best.Objective}, true, nil
}

// Get returns a session's status snapshot.
func (m *Manager) Get(id string) (Status, error) {
	s, err := m.get(id)
	if err != nil {
		return Status{}, err
	}
	return m.statusOf(s), nil
}

// History returns the session's recorded experiments.
func (m *Manager) History(id string) ([]HistoryEntry, error) {
	s, err := m.get(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]HistoryEntry(nil), s.history...), nil
}

// CloseSession closes a session, removes it from the store, and journals a
// tombstone so replay does not resurrect it. Closing an already-closed
// session is a no-op; only a session the manager has never seen reports
// ErrNotFound. A worker currently driving the session notices the state
// flip and abandons it.
func (m *Manager) CloseSession(id string) error {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
		sh.closed[id] = tombstoneKept
		m.count.Add(-1)
	} else if _, was := sh.closed[id]; was {
		sh.mu.Unlock()
		return nil // idempotent: already closed or evicted
	}
	sh.mu.Unlock()
	if !ok {
		// Tombstones are pruned once compaction makes them unnecessary, so
		// an absent entry does not mean the ID is foreign: every ID this
		// manager lineage has issued (persisted via NextID) that is no
		// longer live must have been closed or evicted — stay idempotent
		// for those, and report ErrNotFound only for IDs never issued.
		if num, ok := m.sessionNum(id); ok && num > 0 && num <= m.nextID.Load() &&
			id == m.sessionID(num) { // canonical form only: "sess-007" was never issued
			return nil
		}
		return ErrNotFound
	}
	s.mu.Lock()
	s.state = StateClosed
	s.mu.Unlock()
	// Journaled after the state flip: any in-flight observe either
	// journaled before the flip (under s.mu) or sees the closed state, so
	// the tombstone is always the session's last event in the log.
	m.journalClose(id, m.opts.Now())
	return nil
}

// List returns a status snapshot of every live session.
func (m *Manager) List() []Status {
	var sessions []*Session
	for _, sh := range m.shards {
		sh.mu.RLock()
		for _, s := range sh.sessions {
			sessions = append(sessions, s)
		}
		sh.mu.RUnlock()
	}
	out := make([]Status, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, m.statusOf(s))
	}
	return out
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}

// Sweep evicts sessions idle past the TTL, journaling a tombstone for each
// so replay does not resurrect them, and returns how many it removed. The
// janitor calls it periodically; tests call it directly.
func (m *Manager) Sweep() int {
	now := m.opts.Now()
	var evict []*Session
	for _, sh := range m.shards {
		sh.mu.Lock()
		for id, s := range sh.sessions {
			s.mu.Lock()
			idle := now.Sub(s.lastUsed) > m.opts.TTL
			s.mu.Unlock()
			if idle {
				evict = append(evict, s)
				delete(sh.sessions, id)
				sh.closed[id] = tombstoneKept
			}
		}
		sh.mu.Unlock()
	}
	for _, s := range evict {
		m.count.Add(-1)
		m.evictions.Add(1)
		s.mu.Lock()
		s.state = StateClosed
		s.mu.Unlock()
		m.journalClose(s.id, now)
	}
	return len(evict)
}

// DrainedSession is one session a Drain closed, carrying everything a
// router needs to re-create it on a successor node: the original spec,
// augmented into a warm-start request when the session's workload
// fingerprint is known (the §6.6 hand-off — the successor matches the
// fingerprint against the repository entries the drain exported and seeds
// the rebuilt session with the drained one's observations).
type DrainedSession struct {
	ID    string
	State string // state at drain time, before the close
	Evals int
	Spec  Spec // re-create spec; ID cleared, warm-start fields filled when possible
}

// DrainReport is the result of draining a node.
type DrainReport struct {
	Node     string
	Sessions []DrainedSession // non-terminal sessions eligible for hand-off
	Closed   int              // every session the drain closed, terminal ones included
	Repo     []bo.RepoEntry   // full model repository, drained-session harvests included
}

// Drain takes this node out of service: it stops accepting new sessions
// (Create fails with ErrDraining), force-harvests every live session into
// the model repository — a partial model still transfers (§6.6) — closes
// them all with journaled tombstones, and returns the hand-off report: the
// re-create specs of the non-terminal sessions plus the full repository for
// the successors to import. Draining is terminal for the process and
// idempotent: a second Drain returns an empty report.
func (m *Manager) Drain() DrainReport {
	m.draining.Store(true)
	// Barrier: in-flight Creates registered under life.RLock before the
	// flag flipped; wait them out so the sweep below sees every session.
	m.life.Lock()
	m.life.Unlock() //nolint:staticcheck // empty critical section is the barrier

	now := m.opts.Now()
	rep := DrainReport{Node: m.opts.NodeID}
	for _, sh := range m.shards {
		sh.mu.Lock()
		sessions := make([]*Session, 0, len(sh.sessions))
		for id, s := range sh.sessions {
			sessions = append(sessions, s)
			delete(sh.sessions, id)
			sh.closed[id] = tombstoneKept
		}
		sh.mu.Unlock()
		for _, s := range sessions {
			m.count.Add(-1)
			s.mu.Lock()
			state := s.state
			if state != StateFailed {
				m.harvestLocked(s) // idempotent; done sessions already harvested
			}
			if state == StateActive || state == StateQueued || state == StateRunning {
				ds := DrainedSession{ID: s.id, State: state, Evals: len(s.history), Spec: s.spec}
				ds.Spec.ID = ""
				if fp, sec, ok := s.fingerprintLocked(); ok {
					fpCopy := fp
					ds.Spec.WarmStart = true
					ds.Spec.Stats = &fpCopy
					ds.Spec.DefaultRuntimeSec = sec
				}
				rep.Sessions = append(rep.Sessions, ds)
			}
			s.state = StateClosed
			s.mu.Unlock()
			rep.Closed++
			m.journalClose(s.id, now)
		}
	}
	m.repoMu.Lock()
	rep.Repo = append([]bo.RepoEntry(nil), m.repo.Entries...)
	m.repoMu.Unlock()
	return rep
}

// Draining reports whether Drain has run.
func (m *Manager) Draining() bool { return m.draining.Load() }

// NodeID returns the manager's node identity (empty single-node).
func (m *Manager) NodeID() string { return m.opts.NodeID }

// Advertise returns the URL the node asks routers to reach it at.
func (m *Manager) Advertise() string { return m.opts.Advertise }

// ImportRepository merges foreign model-repository entries (another node's
// Drain export) into this manager's repository, journaling each new entry
// so it survives restarts. Entries already present — matched by workload,
// cluster, fingerprint, default runtime, and size — are skipped, so imports
// are idempotent and a mesh of nodes cross-importing converges. Returns how
// many entries were added.
func (m *Manager) ImportRepository(entries []bo.RepoEntry) int {
	added := 0
	now := m.opts.Now()
	for i := range entries {
		e := entries[i]
		key := importKey(&e)
		m.repoMu.Lock()
		if _, ok := m.harvested[key]; ok {
			m.repoMu.Unlock()
			continue
		}
		dup := false
		for j := range m.repo.Entries {
			if importKey(&m.repo.Entries[j]) == key {
				dup = true
				break
			}
		}
		if dup {
			// A locally-harvested twin: remember the key so replays of the
			// import journal stay no-ops, but add nothing.
			m.harvested[key] = struct{}{}
			m.repoMu.Unlock()
			continue
		}
		m.repo.Entries = append(m.repo.Entries, e)
		m.harvested[key] = struct{}{}
		m.repoEvictions.Add(int64(len(m.repo.EvictDown(m.opts.RepoCapacity))))
		m.repoMu.Unlock()
		m.journal(&store.Event{Type: store.EventHarvest, ID: key, Time: now, Repo: &e})
		added++
	}
	return added
}

// importKey derives the stable identity of a repository entry for import
// deduplication; it doubles as the journal ID of imported harvest events.
func importKey(e *bo.RepoEntry) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%.9g|%d", e.Workload, e.ClusterName, e.DefaultSec, len(e.Points))
	for _, v := range bo.FingerprintVector(e.Fingerprint) {
		fmt.Fprintf(h, "|%.9g", v)
	}
	return fmt.Sprintf("import-%016x", h.Sum64())
}

// Metrics is the service's observability snapshot.
type Metrics struct {
	// Node is the manager's identity in a multi-node deployment (empty
	// single-node); Draining reports whether Drain has taken it out of
	// service.
	Node     string
	Draining bool
	// Sessions is the number of live sessions; SessionsByState breaks
	// them down (active/queued/running/done/failed).
	Sessions        int
	SessionsByState map[string]int
	// Observations counts every recorded experiment, including replayed
	// ones; Evictions counts TTL evictions (carried across restarts);
	// WarmStarts counts repository-seeded sessions.
	Observations int64
	Evictions    int64
	WarmStarts   int64
	// SurrogateFits / SurrogateAppends aggregate the live sessions'
	// surrogate work: full hyperparameter grid selections (O(n³) per grid
	// cell) vs incremental O(n²) appends. A healthy steady state appends
	// far more than it fits.
	SurrogateFits    int64
	SurrogateAppends int64
	// SurrogateCompactions counts evict-or-reject decisions budgeted
	// surrogates made to stay within their active-set caps.
	SurrogateCompactions int64
	// RepoEntries is the size of the shared model repository; RepoCapacity
	// is its eviction bound (<= 0 unbounded). RepoHits counts warm-start
	// matches served; RepoEvictions counts entries evicted past capacity
	// (both carried across restarts).
	RepoEntries   int
	RepoCapacity  int
	RepoHits      int64
	RepoEvictions int64
	// Persistence reports whether a store is attached; Store carries its
	// WAL size, segmentation, group-commit, and compaction counters.
	// JournalError is the most recent journaling failure, if any.
	Persistence  bool
	Store        store.Metrics
	JournalError string
	// Replication reports whether a replica.Set is attached; Replica
	// carries its shipping lag and ingest counters.
	Replication bool
	Replica     replica.Stats
	// Stages holds the per-stage latency snapshots (service.suggest,
	// wal.append, surrogate.refit, …). Nil when Options.NoObs disabled
	// stage histograms.
	Stages map[string]obs.Snapshot
}

// Metrics reports the service's observability counters.
func (m *Manager) Metrics() Metrics {
	mt := Metrics{
		Node:            m.opts.NodeID,
		Draining:        m.draining.Load(),
		SessionsByState: make(map[string]int),
		Observations:    m.observations.Load(),
		Evictions:       m.evictions.Load(),
		WarmStarts:      m.warmStarts.Load(),
		RepoCapacity:    m.opts.RepoCapacity,
		RepoHits:        m.repoHits.Load(),
		RepoEvictions:   m.repoEvictions.Load(),
	}
	for _, sh := range m.shards {
		sh.mu.RLock()
		sessions := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			sessions = append(sessions, s)
		}
		sh.mu.RUnlock()
		for _, s := range sessions {
			s.mu.Lock()
			state := s.state
			if ss, ok := s.tuner.(surrogateStatser); ok {
				st := ss.SurrogateInfo()
				mt.SurrogateFits += int64(st.Fits)
				mt.SurrogateAppends += int64(st.Appends)
				mt.SurrogateCompactions += int64(st.Compactions)
			}
			s.mu.Unlock()
			mt.Sessions++
			mt.SessionsByState[state]++
		}
	}
	m.repoMu.Lock()
	mt.RepoEntries = len(m.repo.Entries)
	m.repoMu.Unlock()
	if m.opts.Store != nil {
		mt.Persistence = true
		mt.Store = m.opts.Store.Metrics()
	}
	if m.opts.Replica != nil {
		mt.Replication = true
		mt.Replica = m.opts.Replica.Stats()
	}
	if p := m.journalErr.Load(); p != nil {
		mt.JournalError = *p
	}
	mt.Stages = m.opts.Obs.Snapshots()
	return mt
}

// StoreDegraded reports whether the attached store's WAL has flipped
// read-only (see store.ErrDegraded), and the first failure that tripped
// it. Cheap enough to sit on the healthz path.
func (m *Manager) StoreDegraded() (string, bool) {
	if m.opts.Store == nil {
		return "", false
	}
	mt := m.opts.Store.Metrics()
	return mt.DegradedReason, mt.Degraded
}

// Obs returns the manager's stage-histogram registry (nil under NoObs).
func (m *Manager) Obs() *obs.Registry { return m.opts.Obs }

// Tracer returns the manager's request tracer; NewHandler wraps the API
// mux in its middleware.
func (m *Manager) Tracer() *obs.Tracer { return m.tracer }

// ReplicaSet returns the node's replication state (nil when replication
// is not configured).
func (m *Manager) ReplicaSet() *replica.Set { return m.opts.Replica }

// Repository returns a point-in-time copy of the shared model repository.
func (m *Manager) Repository() bo.Repository {
	m.repoMu.Lock()
	defer m.repoMu.Unlock()
	return bo.Repository{Entries: append([]bo.RepoEntry(nil), m.repo.Entries...)}
}

// RepoEntryInfo is the inspection view of one repository entry: provenance,
// fingerprint coordinates, and lifecycle counters — everything except the
// prior points themselves, which can be large.
type RepoEntryInfo struct {
	Workload    string
	Cluster     string
	Fingerprint []float64
	DefaultSec  float64
	Points      int
	Hits        uint64
	AddedAt     time.Time
	LastUsed    time.Time
}

// RepositoryReport is the point-in-time inspection snapshot of the model
// repository, served by GET /v1/repository.
type RepositoryReport struct {
	Capacity  int
	Hits      int64
	Evictions int64
	Entries   []RepoEntryInfo
}

// RepositoryReport summarizes the shared model repository for inspection.
func (m *Manager) RepositoryReport() RepositoryReport {
	rep := RepositoryReport{
		Capacity:  m.opts.RepoCapacity,
		Hits:      m.repoHits.Load(),
		Evictions: m.repoEvictions.Load(),
	}
	m.repoMu.Lock()
	defer m.repoMu.Unlock()
	rep.Entries = make([]RepoEntryInfo, 0, len(m.repo.Entries))
	for i := range m.repo.Entries {
		e := &m.repo.Entries[i]
		rep.Entries = append(rep.Entries, RepoEntryInfo{
			Workload:    e.Workload,
			Cluster:     e.ClusterName,
			Fingerprint: bo.FingerprintVector(e.Fingerprint),
			DefaultSec:  e.DefaultSec,
			Points:      len(e.Points),
			Hits:        e.Hits,
			AddedAt:     e.AddedAt,
			LastUsed:    e.LastUsed,
		})
	}
	return rep
}

// --- internals -------------------------------------------------------------

// observeLocked journals one sample and then feeds it to the session's
// tuner and history, tracking the suggest/observe interleaving (whether a
// suggestion was outstanding, and whether this observation consumed it) so
// restore can replay it faithfully. Journal-before-apply: the observe
// event must be durable before any state the ack exposes is mutated, so on
// an append failure the tuner, history, and suggest arming are untouched
// and the caller surfaces a retriable ErrJournal — the client retries the
// identical observation (here once the fault clears, or on the promoted
// replica via the router) without the tuner ever double-counting it.
// Table 6 statistics are derived from the profile when the sample carries
// one. Callers hold s.mu.
func (m *Manager) observeLocked(s *Session, smp tune.Sample) error {
	armed := s.suggested
	var st *profile.Stats
	if smp.Stats != nil {
		st = smp.Stats
	} else if smp.Profile != nil {
		g := profile.Generate(smp.Profile)
		st = &g
	}
	n := len(s.history)
	if _, err := m.journal(&store.Event{
		Type: store.EventObserve,
		ID:   s.id,
		Time: m.opts.Now(),
		N:    n,
		Obs: &store.Observation{
			Config:     smp.Config,
			RuntimeSec: smp.RuntimeSec,
			Aborted:    smp.Result.Aborted,
			GCOverhead: smp.Result.GCOverhead,
			Stats:      st,
			Suggested:  armed,
		},
	}); err != nil {
		return fmt.Errorf("%w: %w", ErrJournal, err)
	}
	if armed && s.tuner.Suggest() == smp.Config {
		// Suggest is pure while a suggestion is outstanding; the tuner is
		// about to consume it.
		s.suggested = false
	}
	s.tuner.Observe(smp)
	s.history = append(s.history, HistoryEntry{
		Config:     smp.Config,
		RuntimeSec: smp.RuntimeSec,
		Objective:  smp.Objective,
		Aborted:    smp.Result.Aborted,
		GCOverhead: smp.Result.GCOverhead,
		Stats:      st,
		Suggested:  armed,
	})
	m.observations.Add(1)
	return nil
}

// refreshStateLocked moves a non-terminal session to done/failed once its
// tuner stops, harvesting completed sessions into the model repository.
// Callers hold s.mu.
func (m *Manager) refreshStateLocked(s *Session) {
	if s.state == StateClosed || s.state == StateFailed {
		return
	}
	if !s.tuner.Done() {
		return
	}
	if inc, ok := s.tuner.(*core.Incremental); ok && inc.Err() != nil {
		s.state, s.err = StateFailed, inc.Err()
		return
	}
	s.state = StateDone
	m.harvestLocked(s)
}

// harvestLocked feeds a completed session into the shared model repository
// (§6.6): its fingerprint — the client-supplied default-run statistics, or
// the first observation carrying statistics — plus every observation as a
// prior point. Callers hold s.mu.
func (m *Manager) harvestLocked(s *Session) {
	if s.harvested || len(s.history) == 0 {
		return
	}
	fp, defaultSec, ok := s.fingerprintLocked()
	if !ok {
		return
	}
	cl, wl, err := resolve(s.spec)
	if err != nil {
		return
	}
	now := m.opts.Now()
	entry := bo.RepoEntry{
		Workload:    wl.Name,
		ClusterName: cl.Name,
		Fingerprint: fp,
		DefaultSec:  defaultSec,
		AddedAt:     now,
		LastUsed:    now,
	}
	for _, h := range s.history {
		entry.Points = append(entry.Points, bo.PriorPoint{
			X:   s.space.Encode(h.Config),
			Cfg: h.Config,
			Y:   h.Objective,
		})
	}
	s.harvested = true
	m.repoMu.Lock()
	m.repo.Entries = append(m.repo.Entries, entry)
	m.harvested[s.id] = struct{}{}
	// Capacity eviction: drop the least-recently-matched entries. Their
	// session IDs stay in m.harvested, so a harvest event still in the log
	// cannot resurrect them on replay.
	m.repoEvictions.Add(int64(len(m.repo.EvictDown(m.opts.RepoCapacity))))
	m.repoMu.Unlock()
	m.journal(&store.Event{Type: store.EventHarvest, ID: s.id, Time: now, Repo: &entry})
}

// fingerprintLocked returns the session's workload fingerprint and the
// runtime of the run it was measured on: the client-supplied default-run
// statistics, else a default-configuration experiment from the history
// (the §6.6 protocol — warm-start-enabled auto sessions always run one),
// else the first profiled experiment as an approximation. Callers hold
// s.mu.
func (s *Session) fingerprintLocked() (profile.Stats, float64, bool) {
	if s.spec.Stats != nil {
		sec := s.spec.DefaultRuntimeSec
		if sec <= 0 && len(s.history) > 0 {
			sec = s.history[0].RuntimeSec
		}
		return *s.spec.Stats, sec, true
	}
	def := s.space.Default()
	for _, h := range s.history {
		if h.Stats != nil && h.Config == def {
			return *h.Stats, h.RuntimeSec, true
		}
	}
	for _, h := range s.history {
		if h.Stats != nil {
			return *h.Stats, h.RuntimeSec, true
		}
	}
	return profile.Stats{}, 0, false
}

func (m *Manager) statusOf(s *Session) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.statusLocked(s)
}

func (m *Manager) statusLocked(s *Session) Status {
	st := Status{
		ID:       s.id,
		Node:     m.opts.NodeID,
		Backend:  s.spec.Backend,
		Workload: s.spec.Workload,
		Cluster:  s.spec.Cluster,
		Mode:     s.spec.Mode,
		State:    s.state,
		Evals:    len(s.history),
		Done:     s.tuner.Done(),
		Created:  s.created,
		LastUsed: s.lastUsed,
	}
	if st.Backend == "" {
		st.Backend = "relm"
	}
	if st.Workload == "" {
		st.Workload = "PageRank"
	}
	if st.Cluster == "" {
		st.Cluster = "A"
	}
	if best, ok := s.tuner.Best(); ok {
		st.Best = &BestReport{Config: best.Config, RuntimeSec: best.RuntimeSec, Objective: best.Objective}
	}
	if s.err != nil {
		st.Err = s.err.Error()
	}
	if s.warm != nil {
		st.WarmStarted = true
		st.WarmSource = s.warm.Source
		st.WarmDistance = s.warm.Distance
	}
	if ss, ok := s.tuner.(surrogateStatser); ok {
		// resolveSurrogate already validated the spec at create time, so it
		// cannot fail here.
		sur, _ := m.resolveSurrogate(s.spec.Surrogate)
		info := ss.SurrogateInfo()
		st.Surrogate = &SurrogateStatus{
			Kind:        sur.Kernel,
			Budget:      sur.Budget,
			Fits:        info.Fits,
			Appends:     info.Appends,
			Compactions: info.Compactions,
		}
	}
	return st
}

// worker drains the auto-tuning queue, driving each simulator-backed
// session's suggest/observe loop to completion.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.quit:
			return
		case s := <-m.jobs:
			m.drive(s)
		}
	}
}

// drive runs one auto session. The simulation itself runs outside the
// session lock so status queries stay responsive; the shared evaluator is
// itself concurrency-safe.
func (m *Manager) drive(s *Session) {
	s.mu.Lock()
	if s.state == StateQueued {
		s.state = StateRunning
	}
	// A warm-start request without a client fingerprint: profile the
	// default configuration first (the fingerprinting run of §6.6), match
	// the repository, and seed the tuner before the regular loop.
	needWarm := s.spec.WarmStart && s.warm == nil && s.spec.Stats == nil && len(s.history) == 0 && s.ev != nil
	ev := s.ev
	s.mu.Unlock()

	if needWarm {
		def := ev.Space.Default()
		smp := ev.Eval(def)
		var w *store.Warm
		// An aborted default run still fingerprints the workload (its
		// profile covers the portion that ran); RunWithReuse matches on it
		// the same way.
		if fp, ok := smp.DeriveStats(); ok {
			w = m.matchWarm(ev.Cluster.Name, fp, s.spec.WarmMaxDistance, smp.RuntimeSec)
		}
		s.mu.Lock()
		if s.state == StateClosed {
			s.mu.Unlock()
			return
		}
		if w != nil && applyWarm(s.tuner, w) {
			s.warm = w
			m.warmStarts.Add(1)
			m.journal(&store.Event{Type: store.EventWarm, ID: s.id, Time: m.opts.Now(), Warm: w})
		}
		// The fingerprinting run is a real experiment: feed it to the
		// tuner (unsolicited observations are incorporated) and the log.
		if err := m.observeLocked(s, smp); err != nil {
			// The journal refused the observation; the auto session cannot
			// make durable progress, so it fails rather than silently
			// diverging from its log.
			s.state, s.err = StateFailed, err
			s.mu.Unlock()
			return
		}
		s.lastUsed = m.opts.Now()
		s.mu.Unlock()
	}

	for {
		select {
		case <-m.quit:
			return
		default:
		}

		s.mu.Lock()
		if s.state == StateClosed {
			s.mu.Unlock()
			return
		}
		if s.tuner.Done() || len(s.history) >= m.opts.MaxAutoEvals {
			m.refreshStateLocked(s)
			if s.state == StateRunning { // eval cap hit before the tuner stopped
				s.state = StateDone
				m.harvestLocked(s)
			}
			s.mu.Unlock()
			return
		}
		cfg := s.tuner.Suggest()
		s.suggested = true
		s.mu.Unlock()

		smp := ev.Eval(cfg)

		s.mu.Lock()
		if s.state == StateClosed {
			s.mu.Unlock()
			return
		}
		if err := m.observeLocked(s, smp); err != nil {
			s.state, s.err = StateFailed, err
			s.mu.Unlock()
			return
		}
		s.lastUsed = m.opts.Now()
		s.mu.Unlock()
	}
}

// janitor periodically evicts idle sessions.
func (m *Manager) janitor() {
	defer m.wg.Done()
	period := m.opts.TTL / 4
	if period < time.Second {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-m.quit:
			return
		case <-ticker.C:
			m.Sweep()
		}
	}
}
