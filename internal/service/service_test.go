package service

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"relm/internal/conf"
	"relm/internal/profile"
	"relm/internal/sim"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
)

func newTestManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	m := NewManager(opts)
	t.Cleanup(m.Close)
	return m
}

// measure simulates one real experiment for a remote session's observation.
func measure(t *testing.T, clName, wlName string, o Observation, seed uint64) Observation {
	t.Helper()
	cl := cluster.A()
	if clName == "B" {
		cl = cluster.B()
	}
	wl, ok := workload.ByName(wlName)
	if !ok {
		t.Fatalf("unknown workload %q", wlName)
	}
	res, prof := sim.Run(cl, wl, o.Config, seed)
	st := profile.Generate(prof)
	return Observation{Config: o.Config, RuntimeSec: res.RuntimeSec, Aborted: res.Aborted, Stats: &st}
}

func TestCreateRejectsUnknownSpecs(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	cases := []Spec{
		{Backend: "simulated-annealing"},
		{Workload: "NoSuchApp"},
		{Cluster: "C"},
		{Mode: "psychic"},
	}
	for _, spec := range cases {
		if _, err := m.Create(spec); err == nil {
			t.Errorf("Create(%+v) succeeded, want error", spec)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("failed creates leaked sessions: %d", m.Len())
	}
}

// TestRemoteLoopAllBackends drives one full suggest→observe→best loop per
// backend through the Manager, the way a remote client reporting real
// measurements would (the "measurements" come from the simulator here).
func TestRemoteLoopAllBackends(t *testing.T) {
	for _, backend := range []string{"relm", "bo", "gbo", "ddpg"} {
		t.Run(backend, func(t *testing.T) {
			m := newTestManager(t, Options{Workers: 1})
			st, err := m.Create(Spec{
				Backend:       backend,
				Workload:      "K-means",
				Seed:          7,
				MaxIterations: 3, // BO/GBO: keep the loop short
				MaxSteps:      3, // DDPG
			})
			if err != nil {
				t.Fatal(err)
			}
			id := st.ID

			for step := 0; step < 40; step++ {
				cfg, done, err := m.Suggest(id)
				if err != nil {
					t.Fatal(err)
				}
				if done {
					break
				}
				obs := measure(t, "A", "K-means", Observation{Config: cfg}, uint64(100+step))
				if _, err := m.Observe(id, obs); err != nil {
					t.Fatal(err)
				}
			}

			final, err := m.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if !final.Done {
				t.Fatalf("%s session never finished: %+v", backend, final)
			}
			if final.State != StateDone {
				t.Fatalf("state = %q, want %q (err=%q)", final.State, StateDone, final.Err)
			}
			best, ok, err := m.Best(id)
			if err != nil || !ok {
				t.Fatalf("Best: ok=%v err=%v", ok, err)
			}
			if best.RuntimeSec <= 0 {
				t.Fatalf("best runtime %v", best.RuntimeSec)
			}
			if final.Evals == 0 || final.Best == nil {
				t.Fatalf("status missing evals/best: %+v", final)
			}
			hist, err := m.History(id)
			if err != nil || len(hist) != final.Evals {
				t.Fatalf("history len %d want %d (err=%v)", len(hist), final.Evals, err)
			}
		})
	}
}

// TestRelMRemoteWithoutStatsFails: RelM is white-box; a remote client that
// reports only runtimes cannot feed it, and the session must fail loudly
// instead of looping.
func TestRelMRemoteWithoutStatsFails(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	st, err := m.Create(Spec{Backend: "relm", Workload: "PageRank"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, err := m.Suggest(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	after, err := m.Observe(st.ID, Observation{Config: cfg, RuntimeSec: 120})
	if err != nil {
		t.Fatal(err)
	}
	if after.State != StateFailed || after.Err == "" {
		t.Fatalf("want failed state with error, got %+v", after)
	}
}

func TestAutoSessionsCompleteInWorkerPool(t *testing.T) {
	m := newTestManager(t, Options{Workers: 3})
	ids := make([]string, 0, 3)
	for i, backend := range []string{"relm", "bo", "gbo"} {
		st, err := m.Create(Spec{
			Backend:       backend,
			Workload:      "SVM",
			Mode:          ModeAuto,
			Seed:          uint64(i + 1),
			MaxIterations: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			st, err := m.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.State == StateDone {
				if st.Best == nil || st.Evals == 0 {
					t.Fatalf("done session without best/evals: %+v", st)
				}
				break
			}
			if st.State == StateFailed {
				t.Fatalf("auto session failed: %+v", st)
			}
			if time.Now().After(deadline) {
				t.Fatalf("auto session %s stuck in %q", id, st.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestConcurrentSessions drives suggest/observe from 12 goroutines — 8 on
// their own sessions, 4 hammering two shared sessions — while auto sessions
// run in the worker pool. Run with -race.
func TestConcurrentSessions(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2})

	shared := make([]string, 2)
	for i := range shared {
		st, err := m.Create(Spec{Backend: "bo", Workload: "WordCount", Seed: uint64(i), MaxIterations: 4})
		if err != nil {
			t.Fatal(err)
		}
		shared[i] = st.ID
	}
	if _, err := m.Create(Spec{Backend: "relm", Workload: "PageRank", Mode: ModeAuto, Seed: 3}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	driveRemote := func(id string, worker int, steps int) {
		defer wg.Done()
		for i := 0; i < steps; i++ {
			cfg, done, err := m.Suggest(id)
			if err != nil {
				errs <- fmt.Errorf("suggest %s: %w", id, err)
				return
			}
			if done {
				return
			}
			// Synthetic measurement: cheap, deterministic, goroutine-dependent.
			rt := 100 + 10*math.Sin(float64(worker*steps+i))
			if _, err := m.Observe(id, Observation{Config: cfg, RuntimeSec: rt}); err != nil {
				errs <- fmt.Errorf("observe %s: %w", id, err)
				return
			}
			if _, err := m.Get(id); err != nil {
				errs <- fmt.Errorf("get %s: %w", id, err)
				return
			}
		}
	}

	// 8 goroutines, each with its own session.
	for g := 0; g < 8; g++ {
		st, err := m.Create(Spec{Backend: "bo", Workload: "SortByKey", Seed: uint64(10 + g), MaxIterations: 3})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go driveRemote(st.ID, g, 6)
	}
	// 4 goroutines sharing two sessions.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go driveRemote(shared[g%2], 100+g, 6)
	}
	// One goroutine reading global state throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			m.List()
			m.Len()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	for _, id := range shared {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Evals == 0 {
			t.Fatalf("shared session %s saw no observations", id)
		}
		hist, err := m.History(id)
		if err != nil || len(hist) != st.Evals {
			t.Fatalf("history mismatch for %s: %d vs %d", id, len(hist), st.Evals)
		}
	}
}

func TestTTLEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	m := newTestManager(t, Options{Workers: 1, TTL: time.Minute, Now: clock})

	st, err := m.Create(Spec{Backend: "bo", Workload: "SVM"})
	if err != nil {
		t.Fatal(err)
	}
	if n := m.Sweep(); n != 0 {
		t.Fatalf("fresh session evicted: %d", n)
	}

	now = now.Add(2 * time.Minute)
	if n := m.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d sessions, want 1", n)
	}
	if _, _, err := m.Suggest(st.ID); err != ErrNotFound {
		t.Fatalf("Suggest after eviction: %v, want ErrNotFound", err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after eviction", m.Len())
	}
}

func TestCloseSession(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	st, err := m.Create(Spec{Backend: "bo", Workload: "SVM"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CloseSession(st.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.CloseSession(st.ID); err != nil {
		t.Fatalf("double close: %v, want idempotent nil", err)
	}
	if _, err := m.Observe(st.ID, Observation{Config: conf.Default(), RuntimeSec: 1}); err != ErrNotFound {
		t.Fatalf("observe after close: %v, want ErrNotFound", err)
	}
	if err := m.CloseSession("sess-999"); err != ErrNotFound {
		t.Fatalf("close of unknown session: %v, want ErrNotFound", err)
	}
}

func TestObserveRejectsBadRuntimes(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	st, err := m.Create(Spec{Backend: "bo", Workload: "SVM"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, err := m.Suggest(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if _, err := m.Observe(st.ID, Observation{Config: cfg, RuntimeSec: rt}); err == nil {
			t.Errorf("Observe accepted runtime %v", rt)
		}
	}
	// Rejected observations must not consume the suggestion.
	again, _, err := m.Suggest(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again != cfg {
		t.Fatalf("suggestion changed after rejected observes: %v vs %v", again, cfg)
	}
}

func TestSessionLimit(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, MaxSessions: 2})
	for i := 0; i < 2; i++ {
		if _, err := m.Create(Spec{Backend: "bo"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Create(Spec{Backend: "bo"}); err != ErrTooMany {
		t.Fatalf("third create: %v, want ErrTooMany", err)
	}
}

// TestConcurrentSessionsSurrogateScratch hammers many sessions from
// concurrent goroutines through the incremental surrogate hot path — each
// session's tuner owns its acquisition/prediction scratch, so parallel
// observes must neither race (verified under -race in CI) nor cross-wire
// suggestions between sessions.
func TestConcurrentSessionsSurrogateScratch(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	const sessions = 6
	ids := make([]string, sessions)
	for i := range ids {
		backend := "bo"
		if i%2 == 1 {
			backend = "gbo"
		}
		st, err := m.Create(Spec{Backend: backend, Workload: "SVM", Seed: uint64(i + 1), MaxIterations: 40})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for step := 0; step < 18; step++ {
				cfg, done, err := m.Suggest(id)
				if err != nil {
					t.Errorf("session %s: suggest: %v", id, err)
					return
				}
				if done {
					return
				}
				obs := measure(t, "A", "SVM", Observation{Config: cfg}, uint64(i*100+step))
				if _, err := m.Observe(id, obs); err != nil {
					t.Errorf("session %s: observe: %v", id, err)
					return
				}
			}
		}(i, id)
	}
	wg.Wait()

	mt := m.Metrics()
	if mt.SurrogateAppends == 0 {
		t.Fatal("no incremental surrogate appends recorded across concurrent sessions")
	}
	if mt.SurrogateFits == 0 {
		t.Fatal("no surrogate hyperparameter selections recorded")
	}
	if mt.SurrogateAppends < mt.SurrogateFits {
		t.Fatalf("appends (%d) should dominate full fits (%d) on the incremental path",
			mt.SurrogateAppends, mt.SurrogateFits)
	}
}
