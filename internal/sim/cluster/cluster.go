// Package cluster describes the physical resources of a data-analytics
// cluster and the YARN-style carving of node memory into homogeneous
// containers (Figure 1 of the paper). Two specs mirror the paper's
// evaluation clusters (Table 3): an 8-node physical cluster with 6GB nodes
// (Cluster A) and a 4-node virtual cluster with 32GB nodes (Cluster B).
package cluster

import "fmt"

// Spec describes one cluster.
type Spec struct {
	Name  string
	Nodes int
	// MemoryPerNodeMB is the node's physical memory.
	MemoryPerNodeMB float64
	// AllocatableHeapMB is the per-node JVM heap budget the resource manager
	// hands out (node memory minus OS/NodeManager overheads). On the paper's
	// Cluster A this is 4404MB: the MaxResourceAllocation heap for one
	// container.
	AllocatableHeapMB float64
	// OSReserveMB is memory kept for the OS and the node manager; the
	// remainder bounds the physical (RSS) usage of the containers.
	OSReserveMB  float64
	CoresPerNode int
	// DiskMBps is the aggregate disk bandwidth of one node.
	DiskMBps float64
	// NetworkMBps is the network bandwidth of one node.
	NetworkMBps float64
}

// A returns the paper's Cluster A: 8 physical nodes, 6GB memory and 8 cores
// each, 1Gbps network.
func A() Spec {
	return Spec{
		Name:              "A",
		Nodes:             8,
		MemoryPerNodeMB:   6144,
		AllocatableHeapMB: 4404,
		OSReserveMB:       614,
		CoresPerNode:      8,
		DiskMBps:          140,
		NetworkMBps:       110, // ~1Gbps
	}
}

// B returns the paper's Cluster B: 4 virtual EC2 nodes, 32GB memory,
// 31 ECU (~16 vcores), 10Gbps network.
func B() Spec {
	return Spec{
		Name:              "B",
		Nodes:             4,
		MemoryPerNodeMB:   32768,
		AllocatableHeapMB: 16384,
		OSReserveMB:       2048,
		CoresPerNode:      16,
		DiskMBps:          250,
		NetworkMBps:       1100, // ~10Gbps
	}
}

// HeapPerContainer returns the JVM heap of each of n homogeneous containers
// on one node: the node heap budget divided equally (the paper's example:
// 4404, 2202, 1468, 1101MB for n = 1..4).
func (s Spec) HeapPerContainer(n int) float64 {
	if n < 1 {
		n = 1
	}
	return s.AllocatableHeapMB / float64(n)
}

// PhysCapPerContainer returns the resource manager's physical-memory limit
// for each of n containers: the node memory minus the OS reserve, split
// equally. A container whose RSS exceeds this is killed (§3.1, Figure 11).
func (s Spec) PhysCapPerContainer(n int) float64 {
	if n < 1 {
		n = 1
	}
	return (s.MemoryPerNodeMB - s.OSReserveMB) / float64(n)
}

// MaxConcurrencyPerContainer bounds Task Concurrency: the number of
// concurrently running tasks on a node is limited by its physical cores
// (§6.1), so each of n containers gets cores/n slots at most.
func (s Spec) MaxConcurrencyPerContainer(n int) int {
	if n < 1 {
		n = 1
	}
	m := s.CoresPerNode / n
	if m < 1 {
		m = 1
	}
	return m
}

// Containers returns the total container count for n containers per node.
func (s Spec) Containers(n int) int { return s.Nodes * n }

// String names the cluster for logs.
func (s Spec) String() string {
	return fmt.Sprintf("cluster %s: %d nodes × (%.0fMB mem, %d cores)",
		s.Name, s.Nodes, s.MemoryPerNodeMB, s.CoresPerNode)
}
