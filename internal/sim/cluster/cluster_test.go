package cluster

import (
	"math"
	"testing"
)

func TestClusterAMatchesPaper(t *testing.T) {
	a := A()
	if a.Nodes != 8 || a.CoresPerNode != 8 {
		t.Fatalf("Cluster A shape wrong: %+v", a)
	}
	// Table 3 / §4's example: heap per container for n=1..4.
	want := []float64{4404, 2202, 1468, 1101}
	for n := 1; n <= 4; n++ {
		if got := a.HeapPerContainer(n); math.Abs(got-want[n-1]) > 0.5 {
			t.Errorf("HeapPerContainer(%d) = %v, want %v", n, got, want[n-1])
		}
	}
}

func TestClusterBMatchesPaper(t *testing.T) {
	b := B()
	if b.Nodes != 4 {
		t.Fatalf("Cluster B nodes = %d", b.Nodes)
	}
	if b.MemoryPerNodeMB != 32768 {
		t.Fatalf("Cluster B memory = %v", b.MemoryPerNodeMB)
	}
	if b.NetworkMBps <= A().NetworkMBps {
		t.Fatal("Cluster B must have the faster network (10Gbps vs 1Gbps)")
	}
}

func TestPhysCapExceedsHeap(t *testing.T) {
	for _, s := range []Spec{A(), B()} {
		for n := 1; n <= 4; n++ {
			if s.PhysCapPerContainer(n) <= s.HeapPerContainer(n) {
				t.Errorf("%s n=%d: physical cap must exceed heap", s.Name, n)
			}
		}
	}
}

func TestMaxConcurrency(t *testing.T) {
	a := A()
	cases := map[int]int{1: 8, 2: 4, 3: 2, 4: 2}
	for n, want := range cases {
		if got := a.MaxConcurrencyPerContainer(n); got != want {
			t.Errorf("MaxConcurrency(%d) = %d, want %d", n, got, want)
		}
	}
	// Never below 1, even for absurd container counts.
	if a.MaxConcurrencyPerContainer(100) != 1 {
		t.Error("MaxConcurrency floor broken")
	}
}

func TestContainers(t *testing.T) {
	if A().Containers(3) != 24 {
		t.Fatal("Containers(3) wrong for 8 nodes")
	}
}

func TestDefensiveBounds(t *testing.T) {
	a := A()
	if a.HeapPerContainer(0) != a.HeapPerContainer(1) {
		t.Error("n=0 should behave like n=1")
	}
	if a.PhysCapPerContainer(-1) != a.PhysCapPerContainer(1) {
		t.Error("negative n should behave like n=1")
	}
}

func TestString(t *testing.T) {
	if A().String() == "" || B().String() == "" {
		t.Error("String must describe the cluster")
	}
}
