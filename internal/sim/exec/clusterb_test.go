package exec

import (
	"testing"

	"relm/internal/conf"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
)

func TestClusterBRuns(t *testing.T) {
	// Every TPC-H query completes on Cluster B under the defaults (the
	// Figure 21 baseline): the 16GB heaps are roomy for SQL shuffles.
	for _, q := range workload.TPCH() {
		r, prof := Run(cluster.B(), q, conf.DefaultShuffle(), 5)
		if r.Aborted {
			t.Errorf("%s aborted under defaults on Cluster B", q.Name)
		}
		if prof.HeapSizeMB != 16384 {
			t.Fatalf("heap = %v", prof.HeapSizeMB)
		}
	}
}

func TestClusterBRoomyForSortByKey(t *testing.T) {
	// Cluster B's 16GB heaps hold SortByKey's sort working sets without the
	// memory failures the 4.4GB heaps of Cluster A risk at high shuffle
	// capacity (§3.1's unsafe setup is safe on B).
	cfg := conf.DefaultShuffle()
	cfg.ShuffleCapacity = 0.7
	for seed := uint64(0); seed < 4; seed++ {
		r, _ := Run(cluster.B(), workload.SortByKey(), cfg, seed)
		if r.Aborted {
			t.Fatalf("seed %d: SortByKey aborted on Cluster B", seed)
		}
	}
}

func TestScaledWorkloadRunsLonger(t *testing.T) {
	base, _ := Run(cluster.B(), workload.SVM(), conf.Default(), 9)
	big, _ := Run(cluster.B(), workload.Scale(workload.SVM(), 2), conf.Default(), 9)
	if big.RuntimeSec <= base.RuntimeSec {
		t.Fatalf("doubled dataset should run longer: %v vs %v", big.RuntimeSec, base.RuntimeSec)
	}
}

func TestHigherConcurrencyHelpsTPCHOnB(t *testing.T) {
	// The Figure 21 mechanism: the defaults (2 slots of 16 cores) leave
	// Cluster B underutilized; more concurrency pays.
	q := workload.TPCHQuery(9)
	lazy := conf.DefaultShuffle()
	busy := conf.DefaultShuffle()
	busy.TaskConcurrency = 8
	a, _ := Run(cluster.B(), q, lazy, 11)
	b, _ := Run(cluster.B(), q, busy, 11)
	if b.Aborted || b.RuntimeSec >= a.RuntimeSec {
		t.Fatalf("concurrency 8 should beat 2 on Cluster B: %v vs %v", b.RuntimeSec, a.RuntimeSec)
	}
}
