// Package exec implements the Spark-like execution engine of the simulator:
// stage-by-stage, wave-by-wave scheduling of tasks onto container slots,
// unified cache/shuffle memory arbitration, external-sort spilling, cache
// storage with block rejection under memory pressure, out-of-memory task
// failures with Spark's retry semantics (container replacement, job abort),
// resource-manager kills of containers whose RSS exceeds the physical limit,
// and CPU/disk/network contention.
//
// A run produces both a Result (the scalar metrics the figures plot) and a
// full profile.Profile (the artifact RelM and GBO consume).
package exec

import (
	"math"

	"relm/internal/conf"
	"relm/internal/profile"
	"relm/internal/sim/cluster"
	"relm/internal/sim/jvm"
	"relm/internal/sim/unified"
	"relm/internal/sim/workload"
	"relm/internal/simrand"
)

// Result summarizes one simulated application run.
type Result struct {
	RuntimeSec        float64
	Aborted           bool
	ContainerFailures int
	MaxHeapUtil       float64 // peak heap occupancy / heap capacity
	CPUAvg            float64 // average CPU utilization, 0..1
	DiskAvg           float64 // average disk utilization, 0..1
	GCOverhead        float64 // average fraction of task time in GC
	CacheHitRatio     float64
	SpillFraction     float64
}

// RuntimeMin returns the runtime in minutes.
func (r Result) RuntimeMin() float64 { return r.RuntimeSec / 60 }

// heapReserve is the fraction of heap the JVM keeps for its own internal
// objects and an empty survivor space (Figure 3's reserved area).
const heapReserve = 0.03

// shuffleExpansion is the deserialization slack of in-memory shuffle
// structures: the heap footprint exceeds the accounted bytes, the classic
// cause of shuffle-memory OOMs the paper's §3.1 failure study observes.
const shuffleExpansion = 1.35

// engine carries the state of one simulated run.
type engine struct {
	cl  cluster.Spec
	wl  workload.Spec
	cfg conf.Config
	rng *simrand.Rand

	heapMB     float64
	physCap    float64
	containers int
	slotsNode  int // concurrently running task slots per node
	prof       *profile.Profile
	heaps      []*jvm.Heap

	now           float64
	aborted       bool
	failures      int
	cacheStored   float64 // per-container cache storage actually held, MB
	cacheNeedPerC float64
	hitRatio      float64
	cacheWritten  float64 // cluster-wide cache bytes written so far

	cpuUtilSum, diskUtilSum, utilWeight float64
	cpuShareSum, diskShareSum           float64
}

// Run simulates workload wl under configuration cfg on cluster cl with the
// given random seed, returning the run metrics and the full profile.
func Run(cl cluster.Spec, wl workload.Spec, cfg conf.Config, seed uint64) (Result, *profile.Profile) {
	if err := cfg.Validate(); err != nil {
		// Structurally invalid configurations behave like immediate aborts.
		return Result{Aborted: true, RuntimeSec: 60}, &profile.Profile{
			Workload: wl.Name, Config: cfg, Aborted: true, Duration: 60,
			CoresPerNode: cl.CoresPerNode,
		}
	}
	e := &engine{
		cl:         cl,
		wl:         wl,
		cfg:        cfg,
		rng:        simrand.New(seed ^ hashString(wl.Name)),
		heapMB:     cl.HeapPerContainer(cfg.ContainersPerNode),
		physCap:    cl.PhysCapPerContainer(cfg.ContainersPerNode),
		containers: cl.Containers(cfg.ContainersPerNode),
		slotsNode:  cfg.ContainersPerNode * cfg.TaskConcurrency,
	}
	e.setup()
	e.run()
	return e.finish()
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (e *engine) setup() {
	e.prof = &profile.Profile{
		Workload:     e.wl.Name,
		Config:       e.cfg,
		HeapSizeMB:   e.heapMB,
		CoresPerNode: e.cl.CoresPerNode,
	}
	layout := jvm.Layout{HeapMB: e.heapMB, NewRatio: e.cfg.NewRatio, SurvivorRatio: e.cfg.SurvivorRatio}
	cost := jvm.DefaultCostModel()
	for i := 0; i < e.containers; i++ {
		h := jvm.New(layout, cost)
		h.Tenure(e.wl.CodeOverheadMB)
		e.heaps = append(e.heaps, h)
		cp := &profile.ContainerProfile{
			ID:              i,
			Node:            i % e.cl.Nodes,
			HeapCapMB:       e.heapMB,
			PhysCapMB:       e.physCap,
			FirstTaskHeapMB: e.wl.CodeOverheadMB * e.rng.Norm(1, 0.02),
		}
		cp.HeapUsed.Append(0, e.wl.CodeOverheadMB)
		cp.OldUsed.Append(0, e.wl.CodeOverheadMB)
		cp.RSS.Append(0, e.heapMB*0.4+cost.NativeBaseMB)
		e.prof.Containers = append(e.prof.Containers, cp)
	}
	e.planCache()
}

// planCache decides how much cache storage each container ends up holding.
// The cache capacity bounds it from above; under memory pressure the block
// manager rejects/evicts blocks down to the protected storage region
// (spark.memory.storageFraction of the pool), mirroring Observation 4:
// cache competes with task memory.
func (e *engine) planCache() {
	if e.wl.CacheNeedMB <= 0 {
		e.hitRatio = 1
		return
	}
	e.cacheNeedPerC = e.wl.CacheNeedMB / float64(e.containers)
	capMB := e.cfg.CacheCapacity * e.heapMB
	taskDemand := float64(e.cfg.TaskConcurrency) * e.peakUnmanaged() * 1.15
	fit := e.heapMB*(1-heapReserve) - e.wl.CodeOverheadMB - taskDemand
	protected := 0.5 * capMB
	stored := math.Min(capMB, e.cacheNeedPerC)
	if stored > fit {
		// Reject blocks under pressure, but never below the protected region.
		stored = math.Max(math.Min(protected, e.cacheNeedPerC), fit)
	}
	if stored < 0 {
		stored = 0
	}
	e.cacheStored = stored
	e.hitRatio = math.Min(1, stored/e.cacheNeedPerC)
}

// peakUnmanaged returns the largest per-task unmanaged working set across
// stages — what the block manager sees competing with storage.
func (e *engine) peakUnmanaged() float64 {
	var m float64
	for _, s := range e.wl.Stages {
		if s.UnmanagedMBPerTask > m {
			m = s.UnmanagedMBPerTask
		}
	}
	return m
}

// shuffleShare returns the per-task shuffle memory grant under Spark's
// unified-pool arbitration: execution gets whatever the pool holds beyond
// the cached blocks the configuration protects. A small floor remains even
// when storage fills the pool (Spark never starves a task to zero).
func (e *engine) shuffleShare() float64 {
	p := e.cfg.TaskConcurrency
	pool := e.cfg.UnifiedFraction() * e.heapMB
	keep := math.Min(e.cacheStored, e.cfg.CacheCapacity*e.heapMB)
	share := unified.ExecutionShare(pool, keep, keep, p)
	floor := 0.015 * e.heapMB / float64(p)
	return math.Max(share, floor)
}

func (e *engine) run() {
	for si, st := range e.wl.Stages {
		repeat := st.Repeat
		if repeat < 1 {
			repeat = 1
		}
		for it := 0; it < repeat; it++ {
			if e.aborted {
				return
			}
			e.runStage(si, it, st)
		}
	}
}

// stageLoad captures the per-task load parameters computed once per stage.
type stageLoad struct {
	held       float64 // shuffle memory held per task (accounted bytes)
	heldEff    float64 // actual heap footprint of the held shuffle memory
	spilled    bool    // the task spills (share below need)
	batches    int     // shuffle batches processed per task
	spillMBPer float64 // serialized MB spilled to disk per task
	missFrac   float64
	cpuSec     float64
	diskMB     float64
	netMB      float64
	unmanaged  float64
}

func (e *engine) computeLoad(st workload.StageSpec) stageLoad {
	var l stageLoad
	l.unmanaged = st.UnmanagedMBPerTask

	// Shuffle memory: sort/aggregation structures expand to use the granted
	// share (TimSort/AppendOnlyMap grow opportunistically), so the held
	// buffer grows with the grant even past the minimum need.
	if st.ShuffleNeedMBPerTask > 0 {
		share := e.shuffleShare()
		expandCap := st.ShuffleNeedMBPerTask * 1.8
		l.held = math.Min(share, expandCap)
		if l.held < 4 {
			l.held = math.Min(4, st.ShuffleNeedMBPerTask)
		}
		if share < st.ShuffleNeedMBPerTask {
			l.spilled = true
			l.batches = int(math.Ceil(st.ShuffleNeedMBPerTask / math.Max(l.held, 1)))
			// Spilled data is written serialized (the deserialization
			// expansion reversed).
			l.spillMBPer = (st.ShuffleNeedMBPerTask - l.held) * 0.45
			l.heldEff = l.held
		} else {
			l.batches = 1 // one final in-memory batch
			// Large in-memory batches carry the full deserialization slack.
			l.heldEff = l.held * shuffleExpansion
		}
	}

	// Cache misses: missed partitions are recomputed through the lineage.
	if st.CacheReadMBPerTask > 0 {
		l.missFrac = 1 - e.hitRatio
	}
	missMB := st.CacheReadMBPerTask * l.missFrac

	l.cpuSec = st.CPUSecPerTask + missMB*e.wl.RecomputeCPUSecPerMB
	l.diskMB = st.InputMBPerTask + st.OutputMBPerTask + 2*l.spillMBPer + missMB*0.6
	l.netMB = st.ShuffleReadMBPerTask + st.NetworkMBPerTask + missMB*e.wl.RecomputeNetMBPerMB
	return l
}

// runStage executes one (repeat of a) stage: all waves, then the stage-level
// failure model.
func (e *engine) runStage(si, iter int, st workload.StageSpec) {
	l := e.computeLoad(st)
	p := e.cfg.TaskConcurrency
	slots := e.containers * p
	tasks := st.Tasks
	taskIdx := iter * st.Tasks
	cacheLiveAtStart := math.Min(e.cacheWritten/float64(e.containers), e.cacheStored)

	var stageTaskDur float64
	var lastGC waveGC
	waves := 0
	for tasks > 0 {
		waveTasks := slots
		if tasks < waveTasks {
			waveTasks = tasks
		}
		tasks -= waveTasks
		_, taskDur, gc := e.runWave(si, st, l, waveTasks, &taskIdx)
		stageTaskDur = taskDur
		waves++
		if gc.Tasks() > 0 {
			lastGC = gc
		}
	}

	// Shuffle/cache accounting for the S and H statistics.
	if st.ShuffleNeedMBPerTask > 0 {
		e.prof.ShuffledMB += st.ShuffleNeedMBPerTask * float64(st.Tasks)
		e.prof.SpilledMB += (l.spillMBPer / 0.45) * float64(st.Tasks)
	}
	if st.CacheReadMBPerTask > 0 {
		e.prof.CacheRequests += st.Tasks
		e.prof.CacheHits += int(math.Round(e.hitRatio * float64(st.Tasks)))
	}

	e.applyStageFailures(l, lastGC, waves, stageTaskDur, cacheLiveAtStart)
}

// waveGC decorates jvm.WaveResult with the wave's task count for the
// stage-level failure model.
type waveGC struct {
	jvm.WaveResult
	tasksPerC int
}

func (w waveGC) Tasks() int { return w.tasksPerC }

func (e *engine) runWave(si int, st workload.StageSpec, l stageLoad, waveTasks int, taskIdx *int) (waveDur, taskDur float64, gcOut waveGC) {
	p := e.cfg.TaskConcurrency
	cores := float64(e.cl.CoresPerNode)

	// Tasks running per node during this wave (last waves may be partial).
	nodeTasks := math.Min(float64(e.slotsNode), float64(waveTasks)/float64(e.cl.Nodes))
	if nodeTasks < 1 {
		nodeTasks = 1
	}

	// --- Contention. ---
	// Beyond the hard core limit, co-running tasks interfere softly (memory
	// bandwidth, GC threads, OS noise), so the slowdown starts before 100%.
	cpuDemand := nodeTasks * st.CPUCoresPerTask
	cpuShare := cpuDemand / cores
	cpuUtil := math.Min(1, 0.2+0.75*cpuShare)
	cpuFactor := math.Max(1, cpuShare) * (1 + 0.8*math.Min(1, cpuShare)*math.Min(1, cpuShare))
	durCPU := l.cpuSec * cpuFactor

	diskRate := 0.0
	if base := l.cpuSec + 1e-9; base > 0 {
		diskRate = nodeTasks * l.diskMB / base
	}
	diskUtil := math.Min(1, 0.03+diskRate/e.cl.DiskMBps)
	durDisk := l.diskMB / (e.cl.DiskMBps / math.Max(nodeTasks, 1))
	durNet := l.netMB / (e.cl.NetworkMBps / math.Max(nodeTasks, 1))

	taskDur = (durCPU + durDisk + durNet) * e.rng.Norm(1, 0.02)
	if taskDur < 0.2 {
		taskDur = 0.2
	}

	// --- Heap behaviour: containers are homogeneous, so one representative
	// heap is simulated and mirrored. ---
	tasksPerC := p
	if waveTasks < e.containers*p {
		tasksPerC = (waveTasks + e.containers - 1) / e.containers
		if tasksPerC < 1 {
			tasksPerC = 1
		}
	}
	promotePerC := 0.0
	if st.CacheWriteMBPerTask > 0 {
		room := e.cacheStored*float64(e.containers) - e.cacheWritten
		want := st.CacheWriteMBPerTask * float64(waveTasks)
		grant := math.Max(0, math.Min(want, room))
		e.cacheWritten += grant
		promotePerC = grant / float64(e.containers)
	}
	cacheLive := math.Min(e.cacheWritten/float64(e.containers), e.cacheStored)
	load := jvm.WaveLoad{
		Duration:     taskDur,
		AllocMB:      float64(tasksPerC) * (st.BytesProcessed() + st.NetworkMBPerTask*0.3) * st.AllocFactor,
		LiveShortMB:  float64(tasksPerC) * (l.unmanaged + l.heldEff),
		PromoteMB:    promotePerC,
		LongLivedMB:  e.wl.CodeOverheadMB + cacheLive,
		Spills:       l.batches * tasksPerC,
		SpillBatchMB: l.held,
		Tasks:        tasksPerC,
	}
	if taskDur > 0 {
		// Native buffers accumulate per fetch stream; each task's stream is
		// bounded by the remote serving rate, so concurrency (not bandwidth)
		// governs the backlog growth.
		perTask := math.Min(l.netMB/taskDur, 30)
		load.NativeRateMBps = float64(tasksPerC) * perTask
	}

	gc := e.heaps[0].SimulateWave(load)
	for i := 1; i < len(e.heaps); i++ {
		e.heaps[i].OldUsedMB = e.heaps[0].OldUsedMB
	}

	pause := gc.PauseSec
	waveDur = taskDur + pause
	start := e.now
	e.now += waveDur

	e.recordWave(si, st, l, gc, start, waveDur, taskDur, pause, waveTasks, tasksPerC, cacheLive, taskIdx)

	e.cpuUtilSum += cpuUtil * waveDur
	e.diskUtilSum += diskUtil * waveDur
	e.cpuShareSum += math.Min(1, cpuShare) * waveDur
	e.diskShareSum += math.Min(1, diskRate/e.cl.DiskMBps) * waveDur
	e.utilWeight += waveDur
	return waveDur, taskDur, waveGC{WaveResult: gc, tasksPerC: tasksPerC}
}

// applyStageFailures runs the stage-level reliability model: out-of-memory
// failures when the heap demand approaches capacity (each container-wave is
// a failure opportunity; the boundary is a soft normal CDF so runs near the
// edge vary wildly — Observation 2), GC-churn-induced allocation failures,
// and resource-manager kills when the RSS overshoots the physical limit.
// Each failure costs a retry on a replacement container; OOM failures that
// recur on one task abort the job (Spark's four-attempt rule).
func (e *engine) applyStageFailures(l stageLoad, gc waveGC, waves int, taskDur, cacheLiveAtStart float64) {
	tasksPerC := gc.tasksPerC
	if tasksPerC == 0 {
		tasksPerC = e.cfg.TaskConcurrency
	}
	demand := e.wl.CodeOverheadMB + cacheLiveAtStart +
		float64(tasksPerC)*(l.unmanaged*e.rng.Norm(1, 0.03)+l.heldEff)
	headroom := e.heapMB * (1 - heapReserve)
	ratio := demand / headroom

	// Out-of-memory opportunities: one per container per wave; the per-
	// opportunity probability ramps through a soft boundary centred just
	// above full occupancy. Old-generation slack modulates the risk — with a
	// roomy Old pool, full collections recover allocation pressure that a
	// thrashing one cannot (the NewRatio reliability lever of Observation 6).
	opportunities := float64(e.containers * waves)
	if opportunities > 24 {
		opportunities = 24
	}
	perP := normCDF((ratio - 1.005) / 0.02)
	if perP > 0.5 {
		perP = 0.5
	}
	perP *= 0.5 + 0.5*gc.EscFraction
	lambdaOOM := math.Min(4, opportunities*perP)
	// GC churn (allocation stalls while Old thrashes) adds failure pressure
	// proportional to the escalation intensity — but only when the heap is
	// actually tight; churn with headroom is slow, not fatal.
	if ratio > 0.85 {
		e3 := gc.EscFraction * gc.EscFraction * gc.EscFraction
		lambdaOOM += math.Min(1.2, e3*1.2)
	}
	// Blacklisting/adaptation: repeated failures teach the scheduler to
	// avoid the pattern, attenuating later stages' failure intensity.
	lambdaOOM /= 1 + 0.3*float64(e.failures)

	// Resource-manager kill intensity from RSS overshoot.
	lambdaKill := 0.0
	if over := gc.PeakRSS - e.physCap; over > 0 {
		lambdaKill = math.Min(6, over/(0.10*e.physCap)*3)
	}

	oomFails := e.rng.Poisson(lambdaOOM)
	killFails := e.rng.Poisson(lambdaKill)
	fails := oomFails + killFails
	if fails == 0 {
		return
	}
	e.failures += fails
	// Each failure re-runs work on a replacement container (JVM restart,
	// shuffle refetch, lost cached blocks recomputed).
	e.now += float64(fails) * (taskDur*1.2 + 15)

	// A task that keeps failing on every attempt aborts the job. OOM
	// failures recur on the same task and dominate the abort risk; RM kills
	// land on fresh containers and rarely exhaust one task's attempts.
	// A single isolated OOM is usually absorbed by a retry; the risk grows
	// with repeated failures in the same stage.
	abortP := 1 - math.Exp(-(0.13*math.Max(0, float64(oomFails)-0.5) + 0.03*float64(killFails)))
	if ratio > 1.12 {
		abortP = math.Max(abortP, 0.9) // hopeless overload
	}
	if e.rng.Bool(abortP) {
		e.aborted = true
		// The final failing attempts burn a sizeable share of the elapsed
		// time before the driver gives up.
		e.now *= 1.45
	}
}

// normCDF is the standard normal cumulative distribution function.
func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// recordWave appends timeline samples, GC events and task events for a wave.
func (e *engine) recordWave(si int, st workload.StageSpec, l stageLoad, gc jvm.WaveResult,
	start, waveDur, taskDur, pause float64, waveTasks, tasksPerC int, cacheLive float64, taskIdx *int) {

	end := start + waveDur
	for ci, cp := range e.prof.Containers {
		cp.HeapUsed.Append(start, gc.PeakHeap*0.8)
		cp.HeapUsed.Append(end, gc.PeakHeap)
		cp.OldUsed.Append(end, gc.OldAfter)
		cp.RSS.Append(start, e.heapMB*0.9+e.heaps[0].Cost.NativeBaseMB)
		cp.RSS.Append(end, gc.PeakRSS)
		cp.CacheUsed.Append(end, cacheLive)
		cp.ShuffleUsed.Append(start, float64(tasksPerC)*l.held)
		cp.ShuffleUsed.Append(end, 0)

		// Representative GC events: one young event plus the full events
		// (capped per wave) with the post-collection residency that the
		// statistics generator reads Mu from.
		if gc.YoungGCs > 0 && ci == 0 {
			cp.GCEvents = append(cp.GCEvents, profile.GCEvent{
				T: start + waveDur*0.4, Full: false,
				Pause:      pause / float64(gc.YoungGCs+gc.FullGCs+1),
				HeapBefore: gc.PeakHeap, HeapAfter: gc.PeakHeap * 0.75,
				OldAfter: gc.OldAfter, CacheAtGC: cacheLive, Running: tasksPerC,
			})
		}
		fulls := gc.FullGCs
		if fulls > 3 {
			fulls = 3
		}
		for f := 0; f < fulls; f++ {
			frac := (float64(f) + 0.6) / (float64(fulls) + 0.6)
			after := e.wl.CodeOverheadMB + cacheLive +
				float64(tasksPerC)*(l.unmanaged*e.rng.Norm(1, 0.03)+l.held)
			if after > e.heapMB {
				after = e.heapMB
			}
			cp.GCEvents = append(cp.GCEvents, profile.GCEvent{
				T: start + waveDur*frac, Full: true,
				Pause:      pause / float64(gc.YoungGCs+gc.FullGCs+1),
				HeapBefore: math.Min(e.heapMB, after*1.15), HeapAfter: after,
				OldAfter: gc.OldAfter, CacheAtGC: cacheLive, Running: tasksPerC,
			})
		}
	}

	// Task events, distributed across containers round-robin.
	for t := 0; t < waveTasks; t++ {
		e.prof.Tasks = append(e.prof.Tasks, profile.TaskEvent{
			Stage:     si,
			Index:     *taskIdx,
			Container: t % e.containers,
			Start:     start,
			End:       start + taskDur + pause,
			GCTime:    pause,
			SpillMB:   l.spillMBPer,
			ShuffleMB: st.ShuffleNeedMBPerTask,
		})
		*taskIdx++
	}
}

func (e *engine) finish() (Result, *profile.Profile) {
	e.prof.Duration = e.now * e.rng.Norm(1, 0.015)
	if e.prof.Duration < 0.5 {
		e.prof.Duration = 0.5
	}
	e.prof.Aborted = e.aborted
	e.prof.ContainerFailures = e.failures

	res := Result{
		RuntimeSec:        e.prof.Duration,
		Aborted:           e.aborted,
		ContainerFailures: e.failures,
		MaxHeapUtil:       e.prof.MaxHeapUtilization(),
		GCOverhead:        e.prof.GCOverhead(),
		CacheHitRatio:     e.prof.HitRatio(),
		SpillFraction:     e.prof.SpillFraction(),
	}
	if e.utilWeight > 0 {
		res.CPUAvg = e.cpuUtilSum / e.utilWeight
		res.DiskAvg = e.diskUtilSum / e.utilWeight
		e.prof.CPUShareAvg = e.cpuShareSum / e.utilWeight
		e.prof.DiskShareAvg = e.diskShareSum / e.utilWeight
	}
	e.prof.CPUUtil.Append(0, res.CPUAvg)
	e.prof.CPUUtil.Append(e.prof.Duration, res.CPUAvg)
	e.prof.DiskUtil.Append(0, res.DiskAvg)
	e.prof.DiskUtil.Append(e.prof.Duration, res.DiskAvg)
	return res, e.prof
}
