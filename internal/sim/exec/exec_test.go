package exec

import (
	"math"
	"testing"
	"testing/quick"

	"relm/internal/conf"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
)

func run(t *testing.T, wl workload.Spec, cfg conf.Config, seed uint64) Result {
	t.Helper()
	r, _ := Run(cluster.A(), wl, cfg, seed)
	return r
}

func TestDeterminism(t *testing.T) {
	for _, wl := range workload.Benchmarks() {
		a, _ := Run(cluster.A(), wl, conf.Default(), 42)
		b, _ := Run(cluster.A(), wl, conf.Default(), 42)
		if a != b {
			t.Errorf("%s: same seed produced different results:\n%+v\n%+v", wl.Name, a, b)
		}
	}
}

func TestSeedsVaryRuntime(t *testing.T) {
	a := run(t, workload.WordCount(), conf.DefaultShuffle(), 1)
	b := run(t, workload.WordCount(), conf.DefaultShuffle(), 2)
	if a.RuntimeSec == b.RuntimeSec {
		t.Fatal("different seeds should produce (slightly) different runtimes")
	}
}

func TestInvalidConfigAborts(t *testing.T) {
	bad := conf.Config{} // zero values are structurally invalid
	r, prof := Run(cluster.A(), workload.WordCount(), bad, 1)
	if !r.Aborted || !prof.Aborted {
		t.Fatal("invalid configuration must abort")
	}
}

func TestResultRanges(t *testing.T) {
	for _, wl := range workload.Benchmarks() {
		cfg := conf.Default()
		if !wl.UsesCache {
			cfg = conf.DefaultShuffle()
		}
		r, prof := Run(cluster.A(), wl, cfg, 7)
		if r.RuntimeSec <= 0 {
			t.Errorf("%s: non-positive runtime", wl.Name)
		}
		for name, v := range map[string]float64{
			"heapUtil": r.MaxHeapUtil, "cpu": r.CPUAvg, "disk": r.DiskAvg,
			"gc": r.GCOverhead, "hit": r.CacheHitRatio, "spill": r.SpillFraction,
		} {
			if v < 0 || v > 1.0001 || math.IsNaN(v) {
				t.Errorf("%s: %s = %v out of [0,1]", wl.Name, name, v)
			}
		}
		if len(prof.Containers) != cluster.A().Containers(cfg.ContainersPerNode) {
			t.Errorf("%s: %d container profiles", wl.Name, len(prof.Containers))
		}
		if len(prof.Tasks) == 0 {
			t.Errorf("%s: no task events", wl.Name)
		}
	}
}

func TestContainerCountFollowsConfig(t *testing.T) {
	cfg := conf.Default()
	cfg.ContainersPerNode = 3
	_, prof := Run(cluster.A(), workload.KMeans(), cfg, 1)
	if len(prof.Containers) != 24 {
		t.Fatalf("containers = %d, want 24", len(prof.Containers))
	}
	if math.Abs(prof.HeapSizeMB-1468) > 1 {
		t.Fatalf("heap = %v, want 1468", prof.HeapSizeMB)
	}
}

// Observation 1: non-caching map/reduce apps speed up on thin containers.
func TestThinContainersHelpWordCount(t *testing.T) {
	fat := conf.DefaultShuffle()
	thin := conf.DefaultShuffle()
	thin.ContainersPerNode = 4
	a := run(t, workload.WordCount(), fat, 5)
	b := run(t, workload.WordCount(), thin, 5)
	if b.Aborted || b.RuntimeSec >= a.RuntimeSec {
		t.Fatalf("thin containers should speed WordCount up: %v vs %v", b.RuntimeSec, a.RuntimeSec)
	}
}

// Observation 1/§3.1: K-means runs out of memory with 4 containers per node.
func TestKMeansFailsOnFourContainers(t *testing.T) {
	cfg := conf.Default()
	cfg.ContainersPerNode = 4
	aborts := 0
	for seed := uint64(0); seed < 6; seed++ {
		r := run(t, workload.KMeans(), cfg, seed)
		if r.Aborted {
			aborts++
		}
	}
	if aborts < 3 {
		t.Fatalf("K-means at n=4 should usually abort; got %d/6", aborts)
	}
}

// Observation 2: the default PageRank setup is unreliable — container
// failures and occasional job aborts.
func TestPageRankDefaultUnreliable(t *testing.T) {
	failures, aborts := 0, 0
	for seed := uint64(0); seed < 6; seed++ {
		r := run(t, workload.PageRank(), conf.Default(), seed)
		failures += r.ContainerFailures
		if r.Aborted {
			aborts++
		}
	}
	if failures == 0 {
		t.Fatal("default PageRank should see container failures")
	}
	if aborts == 0 {
		t.Fatal("default PageRank should abort on some runs")
	}
	if aborts == 6 {
		t.Fatal("default PageRank should complete on some runs")
	}
}

// §3.5 row 2: Task Concurrency 1 makes PageRank reliable.
func TestPageRankConcurrencyOneReliable(t *testing.T) {
	cfg := conf.Default()
	cfg.TaskConcurrency = 1
	for seed := uint64(0); seed < 5; seed++ {
		if r := run(t, workload.PageRank(), cfg, seed); r.Aborted {
			t.Fatalf("seed %d: p=1 PageRank aborted", seed)
		}
	}
}

// Observation 4: SVM's cache fits fully once capacity reaches ~0.5.
func TestSVMCacheFitsAtHalf(t *testing.T) {
	cfg := conf.Default()
	cfg.CacheCapacity = 0.55
	r := run(t, workload.SVM(), cfg, 3)
	if r.CacheHitRatio < 0.99 {
		t.Fatalf("SVM hit ratio = %v at capacity 0.55", r.CacheHitRatio)
	}
	low := conf.Default()
	low.CacheCapacity = 0.2
	r2 := run(t, workload.SVM(), low, 3)
	if r2.CacheHitRatio >= 0.95 {
		t.Fatalf("SVM hit ratio = %v at capacity 0.2, expected misses", r2.CacheHitRatio)
	}
}

// §3.3: more shuffle memory degrades SortByKey (GC pressure).
func TestShuffleMemoryHurtsSortByKey(t *testing.T) {
	lean := conf.DefaultShuffle()
	lean.ShuffleCapacity = 0.2
	greedy := conf.DefaultShuffle()
	greedy.ShuffleCapacity = 0.6
	a := run(t, workload.SortByKey(), lean, 9)
	b := run(t, workload.SortByKey(), greedy, 9)
	if b.GCOverhead <= a.GCOverhead {
		t.Fatalf("more shuffle memory must raise GC overhead: %v vs %v", b.GCOverhead, a.GCOverhead)
	}
	if b.RuntimeSec <= a.RuntimeSec {
		t.Fatalf("more shuffle memory should slow SortByKey: %v vs %v", b.RuntimeSec, a.RuntimeSec)
	}
}

// Observation 5: Old smaller than Cache Storage causes huge GC overheads.
func TestOldSmallerThanCacheThrashes(t *testing.T) {
	small := conf.Default() // cache 0.6
	small.NewRatio = 1      // Old = 50% < cache+code
	big := conf.Default()
	big.NewRatio = 3
	a := run(t, workload.KMeans(), small, 11)
	b := run(t, workload.KMeans(), big, 11)
	if a.GCOverhead <= b.GCOverhead {
		t.Fatalf("NR=1 must thrash vs NR=3: %v vs %v", a.GCOverhead, b.GCOverhead)
	}
	if a.GCOverhead < 0.3 {
		t.Fatalf("thrashing GC overhead = %v, expected large", a.GCOverhead)
	}
}

func TestSpillFractionAppearsWhenStarved(t *testing.T) {
	cfg := conf.DefaultShuffle()
	cfg.ShuffleCapacity = 0.05
	r := run(t, workload.SortByKey(), cfg, 13)
	if r.SpillFraction <= 0 {
		t.Fatal("starved shuffle memory must spill")
	}
	roomy := conf.DefaultShuffle()
	roomy.ShuffleCapacity = 0.7
	r2 := run(t, workload.SortByKey(), roomy, 13)
	if r2.SpillFraction != 0 {
		t.Fatalf("roomy shuffle memory should not spill, S=%v", r2.SpillFraction)
	}
}

func TestProfileStatsConsistency(t *testing.T) {
	_, prof := Run(cluster.A(), workload.PageRank(), conf.Default(), 17)
	if prof.Duration <= 0 {
		t.Fatal("profile duration")
	}
	for _, c := range prof.Containers {
		if c.FirstTaskHeapMB <= 0 {
			t.Fatal("code overhead missing")
		}
		if c.HeapUsed.Max() > c.HeapCapMB+1 {
			t.Fatal("heap timeline exceeds capacity")
		}
	}
}

// Property: the engine never panics or returns nonsense for random legal
// configurations.
func TestRunSanityProperty(t *testing.T) {
	wls := workload.Benchmarks()
	f := func(n, p, nr uint8, cap float64, wi uint8, seed uint16) bool {
		wl := wls[int(wi)%len(wls)]
		capacity := math.Mod(math.Abs(cap), 0.9)
		if math.IsNaN(capacity) {
			capacity = 0.5
		}
		cfg := conf.Config{
			ContainersPerNode: int(n%4) + 1,
			TaskConcurrency:   int(p%8) + 1,
			CacheCapacity:     capacity * 0.5,
			ShuffleCapacity:   capacity * 0.4,
			NewRatio:          int(nr%9) + 1,
			SurvivorRatio:     8,
		}
		r, prof := Run(cluster.A(), wl, cfg, uint64(seed))
		if r.RuntimeSec <= 0 || math.IsNaN(r.RuntimeSec) || math.IsInf(r.RuntimeSec, 0) {
			return false
		}
		return prof != nil && prof.Duration > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
