// Package jvm models the memory behaviour of a HotSpot-style JVM running
// ParallelGC, at the granularity the paper's analysis needs: generational
// pool sizing from NewRatio and SurvivorRatio, young and full collection
// triggering, stop-the-world pause costs, promotion of long-lived data to
// the Old generation, and the growth of native (off-heap) memory between
// collections that drives the container's resident set size.
//
// The model is analytic rather than object-level: the execution engine
// describes a *wave* of work (allocation volume, live working set, data to
// promote, spill pattern) and the heap answers with the garbage collections
// that wave induces and their cost. This is exactly the level at which the
// paper reasons (Observations 5, 6 and 7 in §3.4).
package jvm

import (
	"fmt"
	"math"
)

// Layout gives the generational pool capacities for a heap configured with
// a given NewRatio and SurvivorRatio.
type Layout struct {
	HeapMB        float64
	NewRatio      int // Old:Young capacity ratio
	SurvivorRatio int // Eden:Survivor capacity ratio
}

// Old returns the Old-generation capacity: heap · NR/(NR+1).
func (l Layout) Old() float64 {
	return l.HeapMB * float64(l.NewRatio) / float64(l.NewRatio+1)
}

// Young returns the Young-generation capacity: heap / (NR+1).
func (l Layout) Young() float64 {
	return l.HeapMB / float64(l.NewRatio+1)
}

// Eden returns the Eden capacity within Young. ParallelGC splits Young into
// one Eden and two Survivor spaces with Eden = SR·Survivor, so
// Eden = Young·SR/(SR+2).
func (l Layout) Eden() float64 {
	sr := float64(l.SurvivorRatio)
	return l.Young() * sr / (sr + 2)
}

// Survivor returns the capacity of one survivor space.
func (l Layout) Survivor() float64 {
	return l.Young() / (float64(l.SurvivorRatio) + 2)
}

// Validate reports structural problems with the layout.
func (l Layout) Validate() error {
	if l.HeapMB <= 0 {
		return fmt.Errorf("jvm: non-positive heap %.1fMB", l.HeapMB)
	}
	if l.NewRatio < 1 {
		return fmt.Errorf("jvm: NewRatio %d < 1", l.NewRatio)
	}
	if l.SurvivorRatio < 1 {
		return fmt.Errorf("jvm: SurvivorRatio %d < 1", l.SurvivorRatio)
	}
	return nil
}

// CostModel holds the pause-time coefficients of the collector. The defaults
// approximate ParallelGC on the paper's Cluster A hardware; the absolute
// values matter less than their ratios (full collections are an order of
// magnitude more expensive than young ones per live byte, because they scan
// and compact the Old generation).
type CostModel struct {
	YoungBase    float64 // fixed cost of a young GC, seconds
	YoungPerMB   float64 // cost per MB of live young data copied, seconds
	FullBase     float64 // fixed cost of a full GC, seconds
	FullPerMB    float64 // cost per MB of live heap scanned+compacted, seconds
	NativeBaseMB float64 // constant JVM off-heap overhead (metaspace, stacks)
}

// DefaultCostModel returns coefficients calibrated so that the paper's
// headline overheads reproduce: tasks spending >50% of their time in GC when
// Old is undersized versus cache, and young-GC overheads of a few percent in
// well-sized configurations.
func DefaultCostModel() CostModel {
	return CostModel{
		YoungBase:    0.015,
		YoungPerMB:   0.00025,
		FullBase:     0.12,
		FullPerMB:    0.0015,
		NativeBaseMB: 120,
	}
}

// WaveLoad describes the heap work done by one wave of task execution inside
// a container, as the execution engine sees it.
type WaveLoad struct {
	// Duration is the pure compute+IO time of the wave (seconds), before GC
	// pauses are added.
	Duration float64
	// AllocMB is the total transient allocation volume of the wave.
	AllocMB float64
	// LiveShortMB is the concurrently live short-lived working set
	// (task-unmanaged data plus in-flight shuffle buffers of all slots).
	LiveShortMB float64
	// PromoteMB is data the wave tenures to the Old generation and that
	// stays live afterwards (cached partitions being unrolled).
	PromoteMB float64
	// LongLivedMB is the total long-term residency the application intends
	// (code overhead plus its cache storage target). When it exceeds the
	// Old capacity, young collections keep finding an almost-full Old
	// generation and escalate to full collections (Observation 5).
	LongLivedMB float64
	// Spills is the number of shuffle batches processed by the wave and
	// SpillBatchMB the size of each per-task batch. Batches larger than
	// half of a task's Eden share survive young collections and force
	// full collections (Observation 7).
	Spills       int
	SpillBatchMB float64
	// NativeRateMBps is the rate at which native byte buffers (network
	// fetches) accumulate off-heap; they are only released when garbage
	// collections run the reference processing that frees them
	// (Observation 6).
	NativeRateMBps float64
	// Tasks is the number of concurrently running tasks in the wave.
	Tasks int
}

// WaveResult is the collector's answer for one wave.
type WaveResult struct {
	YoungGCs     int
	FullGCs      int
	PauseSec     float64 // total stop-the-world time of the wave
	PeakHeap     float64 // peak heap occupancy during the wave, MB
	PeakRSS      float64 // peak resident set size, MB
	NativePeakMB float64 // peak native-buffer backlog, MB
	GCEvery      float64 // mean interval between effective collections, sec
	OldAfter     float64 // Old occupancy after the wave
	Promoted     float64 // MB actually promoted (capped by Old capacity)
	ChurnFull    bool    // true when Old thrashes under the long-lived data
	EscFraction  float64 // fraction of young GCs escalated by Old pressure
}

// Heap is the mutable per-container heap state across an application run.
type Heap struct {
	Layout Layout
	Cost   CostModel

	// OldUsedMB is the long-lived data tenured so far: code overhead plus
	// the cached partitions that have been unrolled.
	OldUsedMB float64

	// transientOldMB is short-lived data that overflowed the survivor space
	// during young collections and was prematurely tenured. It is garbage
	// from the application's point of view but occupies Old until a full
	// collection cleans it — the mechanism by which even non-caching
	// workloads eventually see full GCs.
	transientOldMB float64
}

// New returns a heap with the given layout and cost model.
func New(layout Layout, cost CostModel) *Heap {
	return &Heap{Layout: layout, Cost: cost}
}

// Tenure adds long-lived data (e.g. application code objects at JVM start)
// directly to the Old generation, capped at its capacity.
func (h *Heap) Tenure(mb float64) {
	h.OldUsedMB += mb
	if cap := h.Layout.Old(); h.OldUsedMB > cap {
		h.OldUsedMB = cap
	}
}

// survivorOverflowFraction is the share of the survivor-overflowing live set
// prematurely tenured at each young collection.
const survivorOverflowFraction = 0.15

// SimulateWave runs one execution wave against the heap and returns the
// collections it induces. The heap's Old occupancy is advanced by the
// promoted data.
func (h *Heap) SimulateWave(load WaveLoad) WaveResult {
	var res WaveResult
	if load.Duration <= 0 {
		load.Duration = 1e-3
	}
	eden := h.Layout.Eden()
	oldCap := h.Layout.Old()
	survivor := h.Layout.Survivor()

	// Live short-term data beyond Eden is continuously promoted and churned;
	// Eden never collects at less than ~40% of its capacity free, because
	// the overflow migrates to Old rather than pinning Eden.
	liveInYoung := math.Min(load.LiveShortMB, eden*0.95)
	freeEden := eden - liveInYoung
	if floor := eden * 0.4; freeEden < floor {
		freeEden = floor
	}

	// --- Young collections driven by allocation volume. ---
	youngGCs := 0
	if load.AllocMB > 0 {
		youngGCs = int(math.Ceil(load.AllocMB / freeEden))
	}

	// --- Full collections. ---
	fullGCs := 0

	// (a) Promotion pressure: cached data unrolled during the wave tenures
	// into Old; promotions beyond the free Old space churn — every attempt
	// triggers a full GC that reclaims none of the long-lived data
	// (Observation 5).
	oldFree := oldCap - h.OldUsedMB
	promote := load.PromoteMB
	if promote > oldFree {
		overflow := promote - math.Max(0, oldFree)
		churn := int(math.Ceil(overflow / math.Max(1, eden)))
		fullGCs += churn
		res.ChurnFull = churn > 0
		promote = math.Max(0, oldFree)
	}
	if promote > 0 && (h.OldUsedMB+promote)/oldCap > 0.85 {
		// Tenuring into a nearly-full Old triggers compacting collections;
		// comfortable promotions ride along with young collections.
		fullGCs += int(math.Ceil(promote / math.Max(oldCap*0.5, 1)))
	}
	h.OldUsedMB += promote
	res.Promoted = promote

	// (b) Old-generation pressure: the long-lived residency plus the part of
	// the live working set that does not fit in Young must reside in Old.
	// As this effective long-lived footprint approaches the Old capacity, a
	// graded fraction of young collections escalate to full collections,
	// reaching all of them past the thrash point (Observation 5's >50%
	// GC-overhead regime).
	esc := 0.0
	overflowLong := 0.0
	if oldCap > 0 {
		// Half of the young-overflowing working set is churning through Old
		// at any time (the other half is in flight through Eden/Survivor).
		effLong := load.LongLivedMB + 0.5*math.Max(0, load.LiveShortMB-h.Layout.Young())
		if fill := effLong / oldCap; fill > 0.90 {
			esc = math.Min(1, (fill-0.90)/0.15)
		}
		overflowLong = math.Max(0, effLong-oldCap)
	}
	if esc > 0 {
		n := int(math.Round(esc * float64(youngGCs)))
		// Long-lived data that permanently exceeds Old keeps re-promoting
		// through the survivor space: each escalated collection multiplies
		// into several full collections proportional to the overflow.
		perGC := 1
		if overflowLong > 0 {
			perGC += int(overflowLong / math.Max(survivor, 1))
			if perGC > 6 {
				perGC = 6
			}
		}
		fullGCs += n * perGC
		youngGCs -= n
		if esc >= 0.8 {
			res.ChurnFull = true
		}
	}
	res.EscFraction = esc

	// (c) Spill/batch-triggered full collections: a shuffle batch larger
	// than half of the per-task Eden share cannot be reclaimed young — the
	// surplus thrashes through the survivor space and forces full
	// collections proportional to the overflow (Observation 7).
	if load.Spills > 0 && load.Tasks > 0 && load.SpillBatchMB > 0 {
		edenPerTask := eden / float64(load.Tasks)
		if overflow := load.SpillBatchMB - 0.5*edenPerTask; overflow > 0 {
			perBatch := int(math.Ceil(overflow / math.Max(survivor, 1)))
			if perBatch > 12 {
				perBatch = 12
			}
			fullGCs += load.Spills * perBatch
		}
	}

	// (d) Survivor overflow: a live short-term working set larger than one
	// survivor space is partially tenured at every young collection. The
	// prematurely tenured garbage accumulates in Old until a full collection
	// cleans it — the reason even shuffle-free, cache-free workloads see
	// occasional full GCs, and why smaller heaps, higher concurrency and
	// higher NewRatio make them more frequent (§4.1's profiling heuristics).
	if youngGCs > 0 {
		liveYoung := math.Min(load.LiveShortMB, eden)
		overflowPerGC := survivorOverflowFraction * math.Max(0, liveYoung-survivor)
		h.transientOldMB += overflowPerGC * float64(youngGCs)
		headroom := math.Max(oldCap*0.9-h.OldUsedMB, eden)
		if n := int(h.transientOldMB / headroom); n > 0 {
			fullGCs += n
			h.transientOldMB -= float64(n) * headroom
		}
	}

	// --- Pause accounting. ---
	liveYoungAtGC := math.Min(load.LiveShortMB, eden)
	youngPause := h.Cost.YoungBase + h.Cost.YoungPerMB*liveYoungAtGC
	liveHeap := h.OldUsedMB + liveYoungAtGC
	fullPause := h.Cost.FullBase + h.Cost.FullPerMB*liveHeap
	res.YoungGCs = youngGCs
	res.FullGCs = fullGCs
	res.PauseSec = float64(youngGCs)*youngPause + float64(fullGCs)*fullPause

	// --- Peaks. ---
	res.PeakHeap = math.Min(h.Layout.HeapMB, h.OldUsedMB+h.transientOldMB+liveInYoung+freeEden)
	res.OldAfter = h.OldUsedMB

	// --- RSS: native buffers accumulate between effective collections.
	// Young collections only release the references that died young, so they
	// count at half weight against the native backlog (Observation 6: a
	// lower NewRatio means a larger, less frequently collected Young and a
	// faster-growing resident set).
	effective := 0.5*float64(youngGCs) + float64(fullGCs)
	res.GCEvery = load.Duration / (effective + 1)
	res.NativePeakMB = load.NativeRateMBps * res.GCEvery
	// The constant off-heap overhead (metaspace, code cache, GC structures,
	// thread stacks) scales mildly with the heap.
	res.PeakRSS = h.Layout.HeapMB + h.Cost.NativeBaseMB + 0.03*h.Layout.HeapMB + res.NativePeakMB

	return res
}

// ReleaseOld removes long-lived data from Old (cache eviction between
// application phases).
func (h *Heap) ReleaseOld(mb float64) {
	h.OldUsedMB -= mb
	if h.OldUsedMB < 0 {
		h.OldUsedMB = 0
	}
}
