package jvm

import (
	"math"
	"testing"
	"testing/quick"
)

func defaultLayout() Layout {
	return Layout{HeapMB: 4404, NewRatio: 2, SurvivorRatio: 8}
}

func TestLayoutPartition(t *testing.T) {
	l := defaultLayout()
	if math.Abs(l.Old()+l.Young()-l.HeapMB) > 1e-9 {
		t.Fatalf("Old+Young = %v, want %v", l.Old()+l.Young(), l.HeapMB)
	}
	if math.Abs(l.Eden()+2*l.Survivor()-l.Young()) > 1e-9 {
		t.Fatal("Eden + 2·Survivor != Young")
	}
	// NewRatio=2: Old is 2/3 of heap.
	if math.Abs(l.Old()-4404.0*2/3) > 1e-9 {
		t.Fatalf("Old = %v", l.Old())
	}
	// SurvivorRatio=8: Eden = 8·Survivor.
	if math.Abs(l.Eden()-8*l.Survivor()) > 1e-9 {
		t.Fatal("Eden != 8·Survivor")
	}
}

func TestLayoutNewRatioDirection(t *testing.T) {
	lo := Layout{HeapMB: 1000, NewRatio: 1, SurvivorRatio: 8}
	hi := Layout{HeapMB: 1000, NewRatio: 8, SurvivorRatio: 8}
	if lo.Old() >= hi.Old() {
		t.Fatal("higher NewRatio must mean larger Old")
	}
	if lo.Young() <= hi.Young() {
		t.Fatal("higher NewRatio must mean smaller Young")
	}
}

// Property: pools are positive and partition the heap for all legal knobs.
func TestLayoutProperty(t *testing.T) {
	f := func(nr, sr uint8, heap uint16) bool {
		l := Layout{
			HeapMB:        float64(heap%60000) + 256,
			NewRatio:      int(nr%9) + 1,
			SurvivorRatio: int(sr%14) + 1,
		}
		if l.Validate() != nil {
			return false
		}
		ok := l.Old() > 0 && l.Young() > 0 && l.Eden() > 0 && l.Survivor() > 0
		ok = ok && math.Abs(l.Old()+l.Young()-l.HeapMB) < 1e-6
		ok = ok && math.Abs(l.Eden()+2*l.Survivor()-l.Young()) < 1e-6
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Layout{
		{HeapMB: 0, NewRatio: 2, SurvivorRatio: 8},
		{HeapMB: 100, NewRatio: 0, SurvivorRatio: 8},
		{HeapMB: 100, NewRatio: 2, SurvivorRatio: 0},
	}
	for i, l := range bad {
		if l.Validate() == nil {
			t.Errorf("layout %d should be invalid", i)
		}
	}
	if defaultLayout().Validate() != nil {
		t.Error("default layout should be valid")
	}
}

func TestTenureCapsAtOld(t *testing.T) {
	h := New(defaultLayout(), DefaultCostModel())
	h.Tenure(1e9)
	if h.OldUsedMB != h.Layout.Old() {
		t.Fatalf("Tenure should cap at Old: %v vs %v", h.OldUsedMB, h.Layout.Old())
	}
}

func TestReleaseOldFloorsAtZero(t *testing.T) {
	h := New(defaultLayout(), DefaultCostModel())
	h.Tenure(100)
	h.ReleaseOld(1e9)
	if h.OldUsedMB != 0 {
		t.Fatal("ReleaseOld should floor at 0")
	}
}

func TestYoungGCCountScalesWithAllocation(t *testing.T) {
	h := New(defaultLayout(), DefaultCostModel())
	small := h.SimulateWave(WaveLoad{Duration: 10, AllocMB: 500, LiveShortMB: 100, Tasks: 2})
	h2 := New(defaultLayout(), DefaultCostModel())
	big := h2.SimulateWave(WaveLoad{Duration: 10, AllocMB: 5000, LiveShortMB: 100, Tasks: 2})
	if big.YoungGCs <= small.YoungGCs {
		t.Fatalf("more allocation must mean more young GCs: %d vs %d", big.YoungGCs, small.YoungGCs)
	}
}

func TestNoAllocationNoGC(t *testing.T) {
	h := New(defaultLayout(), DefaultCostModel())
	r := h.SimulateWave(WaveLoad{Duration: 10, Tasks: 1})
	if r.YoungGCs != 0 || r.FullGCs != 0 || r.PauseSec != 0 {
		t.Fatalf("idle wave should not collect: %+v", r)
	}
}

// Observation 5: long-lived data beyond Old escalates young GCs to full.
func TestOldPressureEscalation(t *testing.T) {
	h := New(defaultLayout(), DefaultCostModel())
	oldCap := h.Layout.Old()
	safe := h.SimulateWave(WaveLoad{
		Duration: 10, AllocMB: 3000, LiveShortMB: 400, Tasks: 2,
		LongLivedMB: 0.5 * oldCap,
	})
	h2 := New(defaultLayout(), DefaultCostModel())
	thrash := h2.SimulateWave(WaveLoad{
		Duration: 10, AllocMB: 3000, LiveShortMB: 400, Tasks: 2,
		LongLivedMB: 1.2 * oldCap,
	})
	if safe.EscFraction != 0 {
		t.Fatalf("no escalation expected below 90%% fill, got %v", safe.EscFraction)
	}
	if thrash.EscFraction != 1 || !thrash.ChurnFull {
		t.Fatalf("full escalation expected past the thrash point: esc=%v churn=%v", thrash.EscFraction, thrash.ChurnFull)
	}
	if thrash.FullGCs <= safe.FullGCs {
		t.Fatal("thrashing must cause more full GCs")
	}
	if thrash.PauseSec <= safe.PauseSec {
		t.Fatal("thrashing must cost more pause time")
	}
}

// Observation 7: shuffle batches beyond half the per-task Eden share force
// full collections.
func TestSpillBatchFullGCs(t *testing.T) {
	h := New(defaultLayout(), DefaultCostModel())
	eden := h.Layout.Eden()
	smallBatch := h.SimulateWave(WaveLoad{
		Duration: 10, AllocMB: 1000, LiveShortMB: 200, Tasks: 2,
		Spills: 4, SpillBatchMB: 0.2 * eden / 2,
	})
	h2 := New(defaultLayout(), DefaultCostModel())
	bigBatch := h2.SimulateWave(WaveLoad{
		Duration: 10, AllocMB: 1000, LiveShortMB: 200, Tasks: 2,
		Spills: 4, SpillBatchMB: 1.5 * eden / 2,
	})
	if smallBatch.FullGCs != 0 {
		t.Fatalf("small batches should not force full GCs, got %d", smallBatch.FullGCs)
	}
	if bigBatch.FullGCs < 4 {
		t.Fatalf("oversized batches should force at least one full GC per batch, got %d", bigBatch.FullGCs)
	}
}

// Survivor overflow: a large live working set eventually forces full GCs
// even without caching or spilling.
func TestSurvivorOverflowAccumulates(t *testing.T) {
	h := New(defaultLayout(), DefaultCostModel())
	load := WaveLoad{Duration: 10, AllocMB: 2000, LiveShortMB: 800, Tasks: 2, LongLivedMB: 100}
	total := 0
	for i := 0; i < 50; i++ {
		total += h.SimulateWave(load).FullGCs
	}
	if total == 0 {
		t.Fatal("sustained survivor overflow should eventually trigger full GCs")
	}

	// A small working set (below one survivor space) never overflows.
	h2 := New(defaultLayout(), DefaultCostModel())
	small := WaveLoad{Duration: 10, AllocMB: 500, LiveShortMB: 100, Tasks: 2, LongLivedMB: 100}
	total2 := 0
	for i := 0; i < 50; i++ {
		total2 += h2.SimulateWave(small).FullGCs
	}
	if total2 != 0 {
		t.Fatalf("small working sets should not promote: %d full GCs", total2)
	}
}

// Observation 6: fewer collections mean a larger native-buffer backlog.
func TestNativeBacklogVsGCFrequency(t *testing.T) {
	// NewRatio 2 (big young, few GCs) vs NewRatio 5 under identical load.
	mk := func(nr int) WaveResult {
		h := New(Layout{HeapMB: 4404, NewRatio: nr, SurvivorRatio: 8}, DefaultCostModel())
		h.Tenure(115)
		return h.SimulateWave(WaveLoad{
			Duration: 40, AllocMB: 1200, LiveShortMB: 1500, Tasks: 2,
			NativeRateMBps: 60,
		})
	}
	nr2, nr5 := mk(2), mk(5)
	if nr2.GCEvery <= nr5.GCEvery {
		t.Fatalf("NewRatio 2 should collect less frequently: %v vs %v", nr2.GCEvery, nr5.GCEvery)
	}
	if nr2.NativePeakMB <= nr5.NativePeakMB {
		t.Fatalf("NewRatio 2 should accumulate more native memory: %v vs %v", nr2.NativePeakMB, nr5.NativePeakMB)
	}
	if nr2.PeakRSS <= nr5.PeakRSS {
		t.Fatal("RSS ordering wrong")
	}
}

func TestPromotionCapsAtOld(t *testing.T) {
	h := New(defaultLayout(), DefaultCostModel())
	h.Tenure(100)
	r := h.SimulateWave(WaveLoad{
		Duration: 10, AllocMB: 100, LiveShortMB: 50, Tasks: 1,
		PromoteMB: 1e6, LongLivedMB: 1e6,
	})
	if h.OldUsedMB > h.Layout.Old()+1e-9 {
		t.Fatalf("Old overfilled: %v > %v", h.OldUsedMB, h.Layout.Old())
	}
	if !r.ChurnFull {
		t.Fatal("promotion far beyond Old must churn")
	}
	if r.Promoted > h.Layout.Old() {
		t.Fatal("promoted more than Old capacity")
	}
}

// Property: SimulateWave never returns negative or non-finite quantities.
func TestWaveResultSanityProperty(t *testing.T) {
	f := func(alloc, live, promote uint16, nr uint8, spills uint8) bool {
		h := New(Layout{HeapMB: 2048, NewRatio: int(nr%9) + 1, SurvivorRatio: 8}, DefaultCostModel())
		r := h.SimulateWave(WaveLoad{
			Duration:     5,
			AllocMB:      float64(alloc % 10000),
			LiveShortMB:  float64(live % 4000),
			PromoteMB:    float64(promote % 4000),
			LongLivedMB:  float64(promote % 4000),
			Spills:       int(spills % 8),
			SpillBatchMB: float64(live%1000) + 1,
			Tasks:        2,
		})
		vals := []float64{r.PauseSec, r.PeakHeap, r.PeakRSS, r.GCEvery, r.OldAfter, r.Promoted, float64(r.YoungGCs), float64(r.FullGCs)}
		for _, v := range vals {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return r.PeakHeap <= h.Layout.HeapMB+1e-9 && r.EscFraction >= 0 && r.EscFraction <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFullPauseCostlierThanYoung(t *testing.T) {
	c := DefaultCostModel()
	if c.FullBase <= c.YoungBase || c.FullPerMB <= c.YoungPerMB {
		t.Fatal("full collections must cost more than young ones")
	}
}
