// Package sim is the facade over the cluster simulator: it runs a workload
// under a configuration on a cluster and returns both the run metrics and
// the profile artifact. The simulator substitutes for the paper's physical
// Spark/YARN testbed (see DESIGN.md §1).
package sim

import (
	"relm/internal/conf"
	"relm/internal/profile"
	"relm/internal/sim/cluster"
	"relm/internal/sim/exec"
	"relm/internal/sim/workload"
)

// Result re-exports the execution engine's run summary.
type Result = exec.Result

// Run simulates one application run. The seed controls all stochastic
// behaviour (task-time noise, failure sampling); the same inputs and seed
// reproduce the same run exactly.
func Run(cl cluster.Spec, wl workload.Spec, cfg conf.Config, seed uint64) (Result, *profile.Profile) {
	return exec.Run(cl, wl, cfg, seed)
}

// RunN executes n independent runs with derived seeds and returns all
// results, mirroring the paper's repeated executions of a setup (Figure 5).
func RunN(cl cluster.Spec, wl workload.Spec, cfg conf.Config, seed uint64, n int) []Result {
	out := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		r, _ := Run(cl, wl, cfg, seed+uint64(i)*7919)
		out = append(out, r)
	}
	return out
}
