package sim

import (
	"testing"

	"relm/internal/conf"
	"relm/internal/sim/cluster"
	"relm/internal/sim/workload"
)

func TestRunNProducesIndependentRuns(t *testing.T) {
	results := RunN(cluster.A(), workload.SortByKey(), conf.DefaultShuffle(), 1, 5)
	if len(results) != 5 {
		t.Fatalf("runs = %d", len(results))
	}
	distinct := map[float64]bool{}
	for _, r := range results {
		if r.RuntimeSec <= 0 {
			t.Fatal("bad runtime")
		}
		distinct[r.RuntimeSec] = true
	}
	if len(distinct) < 2 {
		t.Fatal("repeated runs should vary (seeded noise)")
	}
}

func TestRunMatchesExec(t *testing.T) {
	a, profA := Run(cluster.A(), workload.SVM(), conf.Default(), 7)
	b, profB := Run(cluster.A(), workload.SVM(), conf.Default(), 7)
	if a != b {
		t.Fatal("facade runs not deterministic")
	}
	if profA.Duration != profB.Duration {
		t.Fatal("profiles not deterministic")
	}
}
